// Command qcrank runs the quantum image-encoding pipeline of the
// paper's §3/Appendix D.3: generate (or load) a grayscale image,
// encode it as a QCrank circuit, simulate with shots on a chosen
// target, decode the measured counts back into an image, and report
// the Fig. 6 reconstruction metrics. Optionally writes the input and
// reconstructed images as PGM files.
//
// Usage:
//
//	qcrank -image finger -width 32 -height 20 -addr 6 -shots-per-addr 3000
//	qcrank -image zebra -width 64 -height 40 -addr 8 -out-dir /tmp/imgs
//	qcrank -in photo.pgm -addr 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qgear/internal/backend"
	"qgear/internal/qcrank"
	"qgear/internal/qimage"
)

func main() {
	kind := flag.String("image", "finger", "synthetic image kind: finger | shoes | building | zebra")
	in := flag.String("in", "", "load a PGM file instead of generating")
	width := flag.Int("width", 32, "synthetic image width")
	height := flag.Int("height", 20, "synthetic image height")
	addr := flag.Int("addr", 6, "address qubits")
	shotsPerAddr := flag.Int("shots-per-addr", qcrank.DefaultShotsPerAddress, "shots per address (paper: 3000)")
	target := flag.String("target", "nvidia", "execution target")
	seed := flag.Uint64("seed", 42, "seed")
	outDir := flag.String("out-dir", "", "write input/reconstructed PGMs here")
	flag.Parse()

	if err := run(*kind, *in, *width, *height, *addr, *shotsPerAddr, *target, *seed, *outDir); err != nil {
		fmt.Fprintf(os.Stderr, "qcrank: %v\n", err)
		os.Exit(1)
	}
}

func run(kind, in string, width, height, addr, shotsPerAddr int, target string, seed uint64, outDir string) error {
	var img *qimage.Image
	var err error
	if in != "" {
		img, err = qimage.LoadPGM(in)
	} else {
		img, err = qimage.Synthetic(kind, width, height, seed)
	}
	if err != nil {
		return err
	}

	plan, err := qcrank.NewPlan(img.Pixels(), addr, shotsPerAddr)
	if err != nil {
		return err
	}
	fmt.Printf("image: %s %dx%d (%d px)\n", img.Name, img.W, img.H, img.Pixels())
	fmt.Printf("plan: %d address + %d data = %d qubits, %d 2q-gates, %d shots\n",
		plan.AddrQubits, plan.DataQubits, plan.TotalQubits(), plan.TwoQubitGates(), plan.Shots)

	c, err := qcrank.Encode(img.Pix, plan, true)
	if err != nil {
		return err
	}
	res, err := backend.Run(c, backend.Config{
		Target: backend.Target(target), Shots: plan.Shots, Seed: seed, FusionWindow: 4,
	})
	if err != nil {
		return err
	}
	vals, missing, err := qcrank.DecodeCounts(res.Counts, plan)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		fmt.Printf("warning: %d addresses received no shots\n", len(missing))
	}
	reco := img.Clone()
	copy(reco.Pix, vals)
	m, err := qimage.Compare(img, reco)
	if err != nil {
		return err
	}
	fmt.Printf("simulated in %v on %s\n", res.Duration.Round(1e6), res.Target)
	fmt.Printf("reconstruction: MAE %.4f  RMSE %.4f  max|err| %.4f  correlation %.4f\n",
		m.MAE, m.RMSE, m.MaxAbsErr, m.Correlation)

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		inPath := filepath.Join(outDir, "input.pgm")
		outPath := filepath.Join(outDir, "reconstructed.pgm")
		if err := img.SavePGM(inPath); err != nil {
			return err
		}
		if err := reco.SavePGM(outPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", inPath, outPath)
	}
	return nil
}
