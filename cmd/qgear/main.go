// Command qgear is the CLI front end of the Q-GEAR pipeline: generate
// workload circuits, save/load them as QPY or HDF5 tensors, transform
// them into kernels, and execute them on any target — the same flow as
// the paper's run.py driver (§E.3).
//
// Usage:
//
//	qgear generate -kind random -qubits 8 -blocks 100 -count 4 -out circuits.qpy
//	qgear generate -kind qft -qubits 12 -out qft.qpy
//	qgear transform -in circuits.qpy -fusion 5 -prune 1e-6
//	qgear run -in circuits.qpy -target nvidia -shots 1000
//	qgear expect -in qft.qpy -tfim-j 1 -tfim-g 0.7 -store-dir /tmp/qgear-store
//	qgear info -in circuits.qpy
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/core"
	"qgear/internal/observable"
	"qgear/internal/qasm"
	"qgear/internal/qft"
	"qgear/internal/randcirc"
	"qgear/internal/service"
	"qgear/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "transform":
		err = cmdTransform(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "expect":
		err = cmdExpect(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "qgear: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgear: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `qgear <command> [flags]
commands:
  generate   build workload circuits (random | qft | ghz) and save them
  transform  convert saved circuits to kernels, print transformation stats
  run        transform and execute saved circuits on a target
  expect     evaluate exact Hamiltonian expectation values on saved circuits
  sweep      evaluate a parameterized circuit at many points (compile once, rebind per point)
  info       describe a saved circuit file`)
}

// loadAny reads circuits from .qpy, .h5 or .qasm by extension.
func loadAny(path string) ([]*circuit.Circuit, error) {
	switch {
	case strings.HasSuffix(path, ".h5"):
		return core.LoadTensors(path)
	case strings.HasSuffix(path, ".qasm"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		c, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return []*circuit.Circuit{c}, nil
	default:
		return core.LoadQPY(path)
	}
}

func saveAny(path string, cs []*circuit.Circuit) error {
	switch {
	case strings.HasSuffix(path, ".h5"):
		return core.SaveTensors(path, cs, 0)
	case strings.HasSuffix(path, ".qasm"):
		if len(cs) != 1 {
			return fmt.Errorf("qasm files hold one circuit; have %d (use .qpy or .h5)", len(cs))
		}
		src, err := qasm.Export(cs[0])
		if err != nil {
			return err
		}
		return os.WriteFile(path, []byte(src), 0o644)
	default:
		return core.SaveQPY(path, cs)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "random", "workload kind: random | qft | ghz")
	qubits := fs.Int("qubits", 8, "number of qubits")
	blocks := fs.Int("blocks", randcirc.ShortBlocks, "CX blocks for random circuits")
	count := fs.Int("count", 1, "number of circuits")
	seed := fs.Uint64("seed", 42, "generator seed")
	reverse := fs.Bool("reverse", false, "QFT bit-order reversal swaps")
	measure := fs.Bool("measure", false, "append measure_all")
	out := fs.String("out", "circuits.qpy", "output path (.qpy or .h5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cs []*circuit.Circuit
	switch *kind {
	case "random":
		list, err := randcirc.GenerateList(*qubits, *blocks, *count, *seed)
		if err != nil {
			return err
		}
		cs = list
	case "qft":
		c, err := qft.Circuit(*qubits, *reverse)
		if err != nil {
			return err
		}
		cs = []*circuit.Circuit{c}
	case "ghz":
		cs = []*circuit.Circuit{circuit.GHZ(*qubits, *measure)}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if *measure && *kind != "ghz" {
		for _, c := range cs {
			c.MeasureAll()
		}
	}
	if err := saveAny(*out, cs); err != nil {
		return err
	}
	fmt.Printf("wrote %d circuit(s) to %s\n", len(cs), *out)
	return nil
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	in := fs.String("in", "", "input circuits (.qpy or .h5)")
	fusion := fs.Int("fusion", 0, "gate fusion window (paper default for QFT: 5)")
	prune := fs.Float64("prune", 0, "prune rotations below this angle")
	verbose := fs.Bool("v", false, "print kernel listings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("transform: -in is required")
	}
	cs, err := loadAny(*in)
	if err != nil {
		return err
	}
	kernels, stats, err := core.Transform(cs, core.Options{FusionWindow: *fusion, PruneAngle: *prune})
	if err != nil {
		return err
	}
	for i, k := range kernels {
		st := stats[i]
		fmt.Printf("%-28s %3d qubits  %6d ops -> %6d instrs  (fused %d groups/%d gates, pruned %d)\n",
			k.Name, k.NumQubits, st.SourceOps, st.EmittedOps, st.FusedGroups, st.FusedGates, st.PrunedGates)
		if *verbose {
			fmt.Print(k.String())
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "", "input circuits (.qpy or .h5)")
	target := fs.String("target", "nvidia", "execution target: aer | nvidia | nvidia-mgpu | nvidia-mqpu | pennylane")
	devices := fs.Int("devices", 1, "simulated devices for mgpu/mqpu")
	shots := fs.Int("shots", 0, "measurement shots (0 = probabilities only)")
	seed := fs.Uint64("seed", 42, "sampling seed")
	fusion := fs.Int("fusion", 0, "gate fusion window")
	tile := fs.Int("tile", 0, "tiled-executor tile width in qubits (0 = auto from cache geometry, negative = per-gate sweeps)")
	planFusion := fs.Bool("plan-fusion", false, "pre-multiply adjacent same-target 1q gates in the plan compiler")
	storeDir := fs.String("store-dir", "", "persistent result store: reuse bit-identical results across invocations (same content address = no re-simulation)")
	top := fs.Int("top", 8, "top outcomes to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("run: -in is required")
	}
	cs, err := loadAny(*in)
	if err != nil {
		return err
	}
	opts := core.Options{
		Target: backend.Target(*target), Devices: *devices,
		Shots: *shots, Seed: *seed, FusionWindow: *fusion,
		TileBits: *tile, PlanFusion: *planFusion,
	}
	results, stored, err := runWithStore(cs, opts, *storeDir)
	if err != nil {
		return err
	}
	for i, res := range results {
		fromStore := ""
		if stored[i] {
			fromStore = "  (store hit)"
		}
		fmt.Printf("%-28s target=%-12s %v%s", cs[i].Name, res.Target, res.Duration.Round(1e3), fromStore)
		if res.Exchanges > 0 {
			fmt.Printf("  exchanges=%d bytes=%d", res.Exchanges, res.BytesSent)
		}
		if res.AvoidedExchanges > 0 {
			fmt.Printf("  avoided=%d", res.AvoidedExchanges)
		}
		fmt.Println()
		if st := res.PlanStats; st != nil {
			fmt.Printf("    plan: tile=%d runs=%d local=%d global=%d fused=%d relabels=%d free-swaps=%d",
				res.TileBits, st.Runs, st.TileLocal, st.Global, st.FusedOps, st.BitSwaps, st.PermSwaps)
			if st.ExchangeSegs > 0 || st.RankLocal > 0 {
				fmt.Printf(" exch-segs=%d/%dg rank-local=%d", st.ExchangeSegs, st.ExchangeGates, st.RankLocal)
			}
			fmt.Println()
		}
		if res.Counts != nil {
			for _, key := range res.Counts.TopK(*top) {
				fmt.Printf("    %0*b  %d\n", cs[i].NumQubits, key, res.Counts[key])
			}
		} else {
			for j, p := range res.Probabilities {
				if p > 0.01 && j < 1<<16 {
					fmt.Printf("    |%0*b>  %.4f\n", cs[i].NumQubits, j, p)
				}
			}
		}
	}
	return nil
}

// runWithStore executes circuits, serving any whose content address is
// already in the persistent store from disk (bit-identical by the
// store's integrity checks) and writing fresh results back, so repeat
// CLI invocations — like repeat service submissions — never re-simulate
// known work. With no store directory it is a plain core.Run.
func runWithStore(cs []*circuit.Circuit, opts core.Options, storeDir string) ([]*backend.Result, []bool, error) {
	stored := make([]bool, len(cs))
	if storeDir == "" {
		results, err := core.Run(cs, opts)
		return results, stored, err
	}
	if opts.Shots == 0 {
		// The seed only drives shot sampling; normalize it out of the
		// content address (as the service does) so probabilities-only
		// runs share a key regardless of -seed.
		opts.Seed = 0
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, nil, err
	}
	sig := opts.StoreSignature()
	results := make([]*backend.Result, len(cs))
	var fresh []*circuit.Circuit
	var freshIdx []int
	for i, c := range cs {
		key := core.CacheKey(c, opts)
		if st.HasResult(key) {
			res, err := st.LoadResult(key, sig)
			if err == nil {
				results[i], stored[i] = res, true
				continue
			}
			if errors.Is(err, store.ErrIntegrity) {
				// Corrupt or mismatched artifact: quarantine and re-simulate.
				st.DropResult(key)
			}
		}
		fresh = append(fresh, c)
		freshIdx = append(freshIdx, i)
	}
	if len(fresh) > 0 {
		ran, err := core.Run(fresh, opts)
		if err != nil {
			return nil, nil, err
		}
		for j, res := range ran {
			i := freshIdx[j]
			results[i] = res
			if err := st.SaveResult(core.CacheKey(cs[i], opts), sig, res); err != nil {
				fmt.Fprintf(os.Stderr, "qgear: warning: persisting %s: %v\n", cs[i].Name, err)
			}
		}
	}
	return results, stored, nil
}

// cmdExpect is the expectation-value job kind on the CLI: load
// circuits, build a Hamiltonian (a JSON spec, a ZZ chain, or the
// built-in transverse-field Ising model), and print the exact ⟨H⟩ per
// circuit. With -store-dir, repeat invocations answer from the
// persistent store under the (fingerprint, hamiltonian hash, options)
// content address — the same artifacts qgear-serve warm-starts from.
func cmdExpect(args []string) error {
	fs := flag.NewFlagSet("expect", flag.ExitOnError)
	in := fs.String("in", "", "input circuits (.qpy, .h5 or .qasm)")
	target := fs.String("target", "nvidia", "execution target: aer | nvidia | nvidia-mgpu | nvidia-mqpu | pennylane")
	devices := fs.Int("devices", 1, "simulated devices for mgpu (memory pooling) / mqpu (term-parallel evaluation)")
	fusion := fs.Int("fusion", 0, "gate fusion window")
	tile := fs.Int("tile", 0, "tiled-executor tile width in qubits (0 = auto, negative = per-gate sweeps)")
	hamFile := fs.String("hamiltonian", "", "Hamiltonian JSON file ({\"qubits\":n,\"terms\":[{\"coef\":c,\"paulis\":[{\"q\":0,\"p\":\"Z\"},...]}]})")
	zz := fs.Float64("zz", 0, "build a ZZ-chain Hamiltonian -J·ΣZiZi+1 with this coupling instead of a file")
	tfimJ := fs.Float64("tfim-j", 1, "built-in transverse-field Ising coupling J (used when no -hamiltonian/-zz)")
	tfimG := fs.Float64("tfim-g", 1, "built-in transverse-field Ising field g")
	storeDir := fs.String("store-dir", "", "persistent store: reuse bit-identical expectation values across invocations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("expect: -in is required")
	}
	cs, err := loadAny(*in)
	if err != nil {
		return err
	}
	opts := core.Options{
		Target: backend.Target(*target), Devices: *devices,
		FusionWindow: *fusion, TileBits: *tile,
	}

	// The Hamiltonian spans the widest loaded circuit unless a JSON
	// spec pins its own width.
	width := 0
	for _, c := range cs {
		if c.NumQubits > width {
			width = c.NumQubits
		}
	}
	h, hname, err := buildHamiltonian(*hamFile, *zz, *tfimJ, *tfimG, width)
	if err != nil {
		return err
	}

	var st *store.Store
	var sig string
	if *storeDir != "" {
		if st, err = store.Open(*storeDir); err != nil {
			return err
		}
		sig = opts.StoreSignature()
	}
	fmt.Printf("hamiltonian: %s (%d terms, hash %.12s…)\n", hname, len(h.Terms), h.Fingerprint())
	for _, c := range cs {
		if c.NumQubits < h.NumQubits {
			return fmt.Errorf("expect: hamiltonian spans %d qubits, circuit %q has %d", h.NumQubits, c.Name, c.NumQubits)
		}
		res, hit, err := expectWithStore(c, h, opts, st, sig)
		if err != nil {
			return err
		}
		fromStore := ""
		if hit {
			fromStore = "  (store hit)"
		}
		fmt.Printf("%-28s target=%-12s ⟨H⟩ = %+.12f  terms=%d  %v%s\n",
			c.Name, res.Target, *res.ExpValue, res.ExpTerms, res.Duration.Round(1e3), fromStore)
	}
	return nil
}

// cmdSweep is the sweep job kind on the CLI: load one parameterized
// circuit, evaluate it at many parameter points under a single
// compile-once execution (the plan compiles once and is rebound per
// point), and print per-point ⟨H⟩ values or sampled counts. With
// -gradient it computes the exact parameter-shift gradient at the
// circuit's stored parameter values instead.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	in := fs.String("in", "", "input circuit (.qpy, .h5 or .qasm; first circuit is swept)")
	target := fs.String("target", "nvidia", "execution target: aer | nvidia | nvidia-mgpu | nvidia-mqpu | pennylane")
	devices := fs.Int("devices", 1, "simulated devices for mgpu / mqpu (mqpu fans sweep points across devices)")
	tile := fs.Int("tile", 0, "tiled-executor tile width in qubits (0 = auto, negative = per-gate sweeps)")
	pointsFile := fs.String("points", "", "JSON point matrix [[θ0,...],[θ0,...],...]; one row per sweep point")
	grid := fs.String("grid", "", "linear grid start:stop:count for single-parameter circuits (e.g. 0:6.28:100)")
	gradient := fs.Bool("gradient", false, "compute the parameter-shift gradient at the circuit's own parameter values")
	counts := fs.Bool("counts", false, "sample measurement counts per point instead of ⟨H⟩ (requires -shots)")
	shots := fs.Int("shots", 0, "measurement shots per point for -counts mode")
	seed := fs.Uint64("seed", 42, "base sampling seed (each point derives its own)")
	hamFile := fs.String("hamiltonian", "", "Hamiltonian JSON file (see qgear expect)")
	zz := fs.Float64("zz", 0, "ZZ-chain Hamiltonian coupling instead of a file")
	tfimJ := fs.Float64("tfim-j", 1, "built-in transverse-field Ising coupling J")
	tfimG := fs.Float64("tfim-g", 1, "built-in transverse-field Ising field g")
	top := fs.Int("top", 4, "top outcomes to print per point in -counts mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("sweep: -in is required")
	}
	cs, err := loadAny(*in)
	if err != nil {
		return err
	}
	c := cs[0]
	nParams := c.NumParams()
	if nParams == 0 {
		return fmt.Errorf("sweep: circuit %q has no parameterized gates", c.Name)
	}
	opts := core.Options{
		Target: backend.Target(*target), Devices: *devices, TileBits: *tile,
	}

	if *gradient {
		h, hname, err := buildHamiltonian(*hamFile, *zz, *tfimJ, *tfimG, c.NumQubits)
		if err != nil {
			return err
		}
		res, err := core.RunGradient(c, h, c.ParamValues(), opts)
		if err != nil {
			return err
		}
		fmt.Printf("hamiltonian: %s   points=%d rebinds=%d compiles=%d   %v\n",
			hname, res.SweepPoints, res.Rebinds, res.SweepCompiles, res.Duration.Round(1e3))
		fmt.Printf("⟨H⟩ = %+.12f\n", *res.ExpValue)
		for j, g := range res.Gradient {
			fmt.Printf("  ∂⟨H⟩/∂θ%-3d = %+.12f\n", j, g)
		}
		return nil
	}

	points, err := sweepPoints(*pointsFile, *grid, nParams)
	if err != nil {
		return err
	}
	var h *observable.Hamiltonian
	hname := "(none: sampling counts)"
	if *counts {
		if *shots <= 0 {
			return fmt.Errorf("sweep: -counts requires -shots > 0")
		}
		opts.Shots, opts.Seed = *shots, *seed
	} else {
		if h, hname, err = buildHamiltonian(*hamFile, *zz, *tfimJ, *tfimG, c.NumQubits); err != nil {
			return err
		}
	}
	res, err := core.RunSweep(c, h, points, opts)
	if err != nil {
		return err
	}
	name := c.Name
	if name == "" {
		name = filepath.Base(*in)
	}
	fmt.Printf("%s: %d params, %d points   hamiltonian: %s\n", name, nParams, len(points), hname)
	fmt.Printf("compile-once: rebinds=%d compiles=%d   target=%s   %v\n",
		res.Rebinds, res.SweepCompiles, res.Target, res.Duration.Round(1e3))
	for i, pt := range points {
		if h != nil {
			fmt.Printf("  point %-5d %v  ⟨H⟩ = %+.12f\n", i, fmtPoint(pt), res.SweepValues[i])
			continue
		}
		fmt.Printf("  point %-5d %v\n", i, fmtPoint(pt))
		for _, key := range res.SweepCounts[i].TopK(*top) {
			fmt.Printf("    %0*b  %d\n", c.NumQubits, key, res.SweepCounts[i][key])
		}
	}
	return nil
}

// sweepPoints resolves the CLI's point-matrix sources: an explicit
// JSON file, or a start:stop:count linear grid for single-parameter
// circuits.
func sweepPoints(pointsFile, grid string, nParams int) ([][]float64, error) {
	switch {
	case pointsFile != "" && grid != "":
		return nil, fmt.Errorf("sweep: -points and -grid are mutually exclusive")
	case pointsFile != "":
		raw, err := os.ReadFile(pointsFile)
		if err != nil {
			return nil, err
		}
		var points [][]float64
		if err := json.Unmarshal(raw, &points); err != nil {
			return nil, fmt.Errorf("sweep: parsing %s: %w", pointsFile, err)
		}
		return points, nil
	case grid != "":
		var start, stop float64
		var count int
		if _, err := fmt.Sscanf(grid, "%g:%g:%d", &start, &stop, &count); err != nil || count < 1 {
			return nil, fmt.Errorf("sweep: -grid wants start:stop:count, got %q", grid)
		}
		if nParams != 1 {
			return nil, fmt.Errorf("sweep: -grid is for single-parameter circuits; this one has %d (use -points)", nParams)
		}
		points := make([][]float64, count)
		for i := range points {
			t := 0.0
			if count > 1 {
				t = float64(i) / float64(count-1)
			}
			points[i] = []float64{start + t*(stop-start)}
		}
		return points, nil
	default:
		return nil, fmt.Errorf("sweep: one of -points or -grid is required")
	}
}

func fmtPoint(pt []float64) string {
	parts := make([]string, len(pt))
	for i, v := range pt {
		parts[i] = fmt.Sprintf("%.4f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// buildHamiltonian resolves the CLI's Hamiltonian source precedence:
// explicit JSON file, then ZZ chain, then the built-in TFIM.
func buildHamiltonian(hamFile string, zz, tfimJ, tfimG float64, width int) (*observable.Hamiltonian, string, error) {
	switch {
	case hamFile != "":
		raw, err := os.ReadFile(hamFile)
		if err != nil {
			return nil, "", err
		}
		var wire service.WireHamiltonian
		if err := json.Unmarshal(raw, &wire); err != nil {
			return nil, "", fmt.Errorf("expect: parsing %s: %w", hamFile, err)
		}
		if wire.Qubits == 0 {
			wire.Qubits = width
		}
		h, err := wire.ToHamiltonian()
		if err != nil {
			return nil, "", fmt.Errorf("expect: %s: %w", hamFile, err)
		}
		return h, hamFile, nil
	case zz != 0:
		h := &observable.Hamiltonian{NumQubits: width}
		for i := 0; i+1 < width; i++ {
			h.Add(observable.NewTerm(-zz, map[int]observable.Pauli{i: observable.Z, i + 1: observable.Z}))
		}
		return h, fmt.Sprintf("zz-chain(J=%g)", zz), nil
	default:
		return observable.TransverseFieldIsing(width, tfimJ, tfimG),
			fmt.Sprintf("tfim(J=%g, g=%g)", tfimJ, tfimG), nil
	}
}

// expectWithStore answers one expectation job from the persistent
// store when its content address is known, simulating (and persisting)
// otherwise — the CLI mirror of the server's warm-start path.
func expectWithStore(c *circuit.Circuit, h *observable.Hamiltonian, opts core.Options, st *store.Store, sig string) (*backend.Result, bool, error) {
	if st == nil {
		res, err := core.RunExpectation(c, h, opts)
		return res, false, err
	}
	key := core.ExpectationCacheKey(c, h, opts)
	if st.HasResult(key) {
		res, err := st.LoadResult(key, sig)
		if err == nil && res.ExpValue != nil {
			return res, true, nil
		}
		if errors.Is(err, store.ErrIntegrity) {
			st.DropResult(key)
		}
	}
	res, err := core.RunExpectation(c, h, opts)
	if err != nil {
		return nil, false, err
	}
	if err := st.SaveResult(key, sig, res); err != nil {
		fmt.Fprintf(os.Stderr, "qgear: warning: persisting %s: %v\n", c.Name, err)
	}
	return res, false, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "input circuits (.qpy or .h5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -in is required")
	}
	cs, err := loadAny(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d circuit(s)\n", *in, len(cs))
	for _, c := range cs {
		fmt.Printf("  %-28s %3d qubits  %6d ops  depth %5d  2q-gates %6d  2q-depth %5d\n",
			c.Name, c.NumQubits, c.NumOps(), c.Depth(), c.CountTwoQubit(), c.TwoQubitDepth())
	}
	return nil
}
