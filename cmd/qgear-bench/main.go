// Command qgear-bench regenerates the paper's evaluation artifacts:
// every figure series and table row from §3, the appendix experiments,
// and this reproduction's shape notes. See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	qgear-bench -exp all            # everything (several minutes)
//	qgear-bench -exp fig4a          # one artifact
//	qgear-bench -exp fig4b -seed 7
//	qgear-bench -exp fig5 -large    # wider, slower local sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qgear/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	seed := flag.Uint64("seed", 2026, "seed for generators and sampling")
	large := flag.Bool("large", os.Getenv("QGEAR_LARGE") == "1", "widen the measured local sweeps")
	workers := flag.Int("workers", 0, "GPU-stand-in worker goroutines (0 = all cores)")
	jsonDir := flag.String("json-dir", "", "directory for BENCH_*.json artifacts (empty = don't write)")
	gateBaseline := flag.String("gate-baseline", "", "baseline directory with committed BENCH_*.json; after the run, fail if the fresh -json-dir artifacts regress (bench-regression gate)")
	gateTol := flag.Float64("gate-tol", bench.DefaultGateTolerance, "fraction of baseline speedup a fresh run may lose before the gate fails")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	r := bench.NewRunner(*seed)
	r.Large = *large
	r.Workers = *workers
	r.JSONDir = *jsonDir

	if *list {
		fmt.Println(strings.Join(r.IDs(), "\n"))
		return
	}
	if *gateBaseline != "" && *jsonDir == "" {
		fmt.Fprintln(os.Stderr, "qgear-bench: -gate-baseline needs -json-dir for the fresh artifacts")
		os.Exit(2)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qgear-bench: %v\n", err)
			os.Exit(1)
		}
	}
	var err error
	if *exp == "all" {
		err = r.RunAll(os.Stdout)
	} else {
		err = r.Run(*exp, os.Stdout)
	}
	if err == nil && *gateBaseline != "" {
		err = bench.Gate(*jsonDir, *gateBaseline, *gateTol)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgear-bench: %v\n", err)
		os.Exit(1)
	}
}
