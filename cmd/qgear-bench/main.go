// Command qgear-bench regenerates the paper's evaluation artifacts:
// every figure series and table row from §3, the appendix experiments,
// and this reproduction's shape notes. See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
//
// Usage:
//
//	qgear-bench -exp all            # everything (several minutes)
//	qgear-bench -exp fig4a          # one artifact
//	qgear-bench -exp fig4b -seed 7
//	qgear-bench -exp fig5 -large    # wider, slower local sweeps
//
// The load subcommand is the serving-layer percentile harness: mixed
// simulate/expectation HTTP load with per-kind p50/p95/p99 and a
// /metrics-vs-/v1/stats cross-check (the CI load gate):
//
//	qgear-bench load -clients 50 -requests 6 -qubits 14 -expect-every 3 -out BENCH_load.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qgear/internal/bench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "load" {
		if err := cmdLoad(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "qgear-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	exp := flag.String("exp", "all", "experiment id or 'all'")
	seed := flag.Uint64("seed", 2026, "seed for generators and sampling")
	large := flag.Bool("large", os.Getenv("QGEAR_LARGE") == "1", "widen the measured local sweeps")
	workers := flag.Int("workers", 0, "GPU-stand-in worker goroutines (0 = all cores)")
	jsonDir := flag.String("json-dir", "", "directory for BENCH_*.json artifacts (empty = don't write)")
	gateBaseline := flag.String("gate-baseline", "", "baseline directory with committed BENCH_*.json; after the run, fail if the fresh -json-dir artifacts regress (bench-regression gate)")
	gateTol := flag.Float64("gate-tol", bench.DefaultGateTolerance, "fraction of baseline speedup a fresh run may lose before the gate fails")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	r := bench.NewRunner(*seed)
	r.Large = *large
	r.Workers = *workers
	r.JSONDir = *jsonDir

	if *list {
		fmt.Println(strings.Join(r.IDs(), "\n"))
		return
	}
	if *gateBaseline != "" && *jsonDir == "" {
		fmt.Fprintln(os.Stderr, "qgear-bench: -gate-baseline needs -json-dir for the fresh artifacts")
		os.Exit(2)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qgear-bench: %v\n", err)
			os.Exit(1)
		}
	}
	var err error
	if *exp == "all" {
		err = r.RunAll(os.Stdout)
	} else {
		err = r.Run(*exp, os.Stdout)
	}
	if err == nil && *gateBaseline != "" {
		err = bench.Gate(*jsonDir, *gateBaseline, *gateTol)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgear-bench: %v\n", err)
		os.Exit(1)
	}
}

// cmdLoad runs the percentile load harness against a live server (or
// an embedded one when -addr is empty).
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	cfg := bench.LoadConfig{}
	fs.StringVar(&cfg.Addr, "addr", "", "server base URL (empty = run an embedded server)")
	fs.IntVar(&cfg.Clients, "clients", 20, "concurrent clients")
	fs.IntVar(&cfg.Requests, "requests", 4, "sequential requests per client")
	fs.IntVar(&cfg.Qubits, "qubits", 12, "GHZ workload width")
	fs.IntVar(&cfg.Shots, "shots", 0, "shots per simulate job (0 = probabilities only)")
	fs.IntVar(&cfg.ExpectEvery, "expect-every", 3, "every Nth request per client is an expectation job (0 = simulate only)")
	fs.IntVar(&cfg.SeedCycle, "seed-cycle", 4, "distinct seeds a client cycles through (controls cache-hit mix)")
	fs.StringVar(&cfg.OutPath, "out", "", "write the JSON LoadReport here (e.g. BENCH_load.json)")
	fs.BoolVar(&cfg.RequireMetrics, "require-metrics", false, "fail when /metrics is missing required families or disagrees with /v1/stats")
	// Embedded-server knobs (ignored with -addr).
	fs.StringVar((*string)(&cfg.Service.Target), "target", "", "embedded server target (default nvidia; nvidia-mqpu when -devices > 1)")
	fs.IntVar(&cfg.Service.Devices, "devices", 1, "embedded server simulated device count")
	fs.IntVar(&cfg.Service.WorkerPool, "pool", 2, "embedded server worker pool size")
	fs.IntVar(&cfg.Service.Workers, "workers", 0, "embedded server per-device parallelism (0 = NumCPU)")
	fs.IntVar(&cfg.Service.TileBits, "tile", 0, "embedded server tile width")
	fs.IntVar(&cfg.Service.QueueSize, "queue", 256, "embedded server queue bound")
	fs.Int64Var(&cfg.Service.MaxCacheBytes, "max-cache-bytes", 0, "embedded server result-cache byte budget")
	fs.StringVar(&cfg.Service.StoreDir, "store-dir", "", "embedded server persistent store directory")
	fs.DurationVar(&cfg.Service.BatchWindow, "window", 2*time.Millisecond, "embedded server batch coalescing window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, err := bench.RunLoad(cfg, os.Stdout)
	return err
}
