package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"qgear/internal/bench"
	"qgear/internal/circuit"
	"qgear/internal/core"
	"qgear/internal/observable"
	"qgear/internal/service"
)

// The warm-restart acceptance check: phase "seed" starts a server with
// -store-dir, pushes a deterministic set of jobs through the real HTTP
// API, and shuts down (spilling every resident artifact to disk);
// phase "verify" starts a fresh server on the same directory, submits
// the identical circuits, and asserts that every one is answered from
// the store — no simulation — with probabilities bit-identical and
// fixed-seed shot counts exactly equal to an independent fresh
// simulation. Running the two phases as separate invocations (as
// `make ci-warmstart` does) exercises a genuine process kill/restart;
// -phase both runs them back to back in one process for local
// convenience.

func cmdWarmstart(args []string) error {
	fs := flag.NewFlagSet("warmstart", flag.ExitOnError)
	cfg := serviceFlags(fs)
	phase := fs.String("phase", "both", "seed | verify | both")
	jobs := fs.Int("jobs", 8, "distinct circuits to seed and verify")
	qubits := fs.Int("qubits", 10, "circuit width")
	shots := fs.Int("shots", 256, "shots per job (fixed per-job seeds)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.StoreDir == "" {
		return fmt.Errorf("warmstart: -store-dir is required (persistence is the thing under test)")
	}
	switch *phase {
	case "seed":
		return warmstartSeed(cfg, *jobs, *qubits, *shots)
	case "verify":
		return warmstartVerify(cfg, *jobs, *qubits, *shots)
	case "both":
		if err := warmstartSeed(cfg, *jobs, *qubits, *shots); err != nil {
			return err
		}
		return warmstartVerify(cfg, *jobs, *qubits, *shots)
	default:
		return fmt.Errorf("warmstart: unknown phase %q", *phase)
	}
}

// warmstartCircuit builds the i-th deterministic check circuit —
// reconstructable bit-for-bit by any later process.
func warmstartCircuit(n, i int) *circuit.Circuit {
	c := circuit.GHZ(n, false)
	c.Name = fmt.Sprintf("warmstart-%d", i)
	c.RZ(1e-6*float64(i+1), 0)
	return c
}

// warmstartHamiltonian is the deterministic observable of the
// expectation-job leg of the check.
func warmstartHamiltonian(n int) *observable.Hamiltonian {
	return observable.TransverseFieldIsing(n, 1.0, 0.7)
}

// startServer boots the service plus a real HTTP listener on it.
func startServer(cfg *service.Config) (*service.Server, *httptest.Server, error) {
	srv, err := service.New(*cfg)
	if err != nil {
		return nil, nil, err
	}
	return srv, httptest.NewServer(srv.Handler()), nil
}

func warmstartSeed(cfg *service.Config, jobs, qubits, shots int) error {
	srv, ts, err := startServer(cfg)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	fmt.Printf("warmstart seed: %d jobs + 1 expectation, GHZ-%d, shots=%d -> store %s\n", jobs, qubits, shots, cfg.StoreDir)
	for i := 0; i < jobs; i++ {
		if _, err := pushJob(client, ts.URL, warmstartCircuit(qubits, i), shots, uint64(i)); err != nil {
			ts.Close()
			srv.Close()
			return fmt.Errorf("warmstart seed: job %d: %w", i, err)
		}
	}
	// One expectation job rides along: its ⟨H⟩ artifact must survive the
	// restart exactly like the probability results.
	if _, err := pushExpJob(client, ts.URL, warmstartCircuit(qubits, 0), warmstartHamiltonian(qubits)); err != nil {
		ts.Close()
		srv.Close()
		return fmt.Errorf("warmstart seed: expectation job: %w", err)
	}
	st := srv.Stats()
	ts.Close()
	if err := srv.Close(); err != nil { // spills resident entries to the store
		return err
	}
	if st.Executed < uint64(jobs)+1 {
		return fmt.Errorf("warmstart seed: executed %d of %d jobs", st.Executed, jobs+1)
	}
	fmt.Printf("warmstart seed: done (%d executed); artifacts spilled on shutdown\n", st.Executed)
	return nil
}

func warmstartVerify(cfg *service.Config, jobs, qubits, shots int) error {
	srv, ts, err := startServer(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer ts.Close()
	client := &http.Client{Timeout: 60 * time.Second}

	// Independent ground truth: simulate each circuit fresh through the
	// same pipeline the service uses, so "bit-identical" means against
	// a real simulation, not against whatever the store said.
	ecfg := srv.Config()
	opts := core.Options{
		FusionWindow: ecfg.FusionWindow, PruneAngle: ecfg.PruneAngle,
		TileBits: ecfg.TileBits, PlanFusion: ecfg.PlanFusion,
		Target: ecfg.Target, Devices: ecfg.Devices, Shots: shots,
	}

	fmt.Printf("warmstart verify: %d repeat jobs against restarted server\n", jobs)
	for i := 0; i < jobs; i++ {
		c := warmstartCircuit(qubits, i)
		res, err := pushJob(client, ts.URL, c, shots, uint64(i))
		if err != nil {
			return fmt.Errorf("warmstart verify: job %d: %w", i, err)
		}
		if !res.Cached {
			return fmt.Errorf("warmstart verify: job %d was simulated, not served from the store", i)
		}
		refopts := opts
		refopts.Seed = uint64(i)
		ref, err := core.RunOne(c, refopts)
		if err != nil {
			return fmt.Errorf("warmstart verify: reference run %d: %w", i, err)
		}
		if len(res.Probabilities) != len(ref.Probabilities) {
			return fmt.Errorf("warmstart verify: job %d: %d probabilities, reference has %d",
				i, len(res.Probabilities), len(ref.Probabilities))
		}
		for k := range ref.Probabilities {
			if res.Probabilities[k] != ref.Probabilities[k] {
				return fmt.Errorf("warmstart verify: job %d: probability[%d] = %v, reference %v (max |Δp| must be 0)",
					i, k, res.Probabilities[k], ref.Probabilities[k])
			}
		}
		refCounts := make(map[string]int, len(ref.Counts))
		for idx, n := range ref.Counts {
			refCounts[bitstring(idx, qubits)] = n
		}
		if len(res.Counts) != len(refCounts) {
			return fmt.Errorf("warmstart verify: job %d: %d count buckets, reference %d", i, len(res.Counts), len(refCounts))
		}
		for k, v := range refCounts {
			if res.Counts[k] != v {
				return fmt.Errorf("warmstart verify: job %d: counts[%s] = %d, reference %d", i, k, res.Counts[k], v)
			}
		}
	}
	// The expectation artifact must also answer from disk, bit-identical
	// to an independent fresh evaluation.
	expC := warmstartCircuit(qubits, 0)
	expH := warmstartHamiltonian(qubits)
	expRes, err := pushExpJob(client, ts.URL, expC, expH)
	if err != nil {
		return fmt.Errorf("warmstart verify: expectation job: %w", err)
	}
	if !expRes.Cached {
		return fmt.Errorf("warmstart verify: expectation job was simulated, not served from the store")
	}
	if expRes.ExpValue == nil {
		return fmt.Errorf("warmstart verify: expectation job returned no expval")
	}
	refopts := opts
	refopts.Shots = 0
	expRef, err := core.RunExpectation(expC, expH, refopts)
	if err != nil {
		return fmt.Errorf("warmstart verify: expectation reference: %w", err)
	}
	if *expRes.ExpValue != *expRef.ExpValue {
		return fmt.Errorf("warmstart verify: stored ⟨H⟩ = %.17g, reference %.17g (must be bit-identical)",
			*expRes.ExpValue, *expRef.ExpValue)
	}

	st := srv.Stats()
	if st.StoreHits != uint64(jobs)+1 {
		return fmt.Errorf("warmstart verify: %d store hits, want %d", st.StoreHits, jobs+1)
	}
	if st.Executed != 0 {
		return fmt.Errorf("warmstart verify: %d simulations ran; repeats must be store hits", st.Executed)
	}
	fmt.Printf("warmstart verify: PASS — %d/%d store hits, 0 simulations, probabilities, counts and ⟨H⟩ bit-identical\n",
		st.StoreHits, jobs+1)
	return nil
}

func bitstring(idx uint64, n int) string {
	return fmt.Sprintf("%0*b", n, idx)
}

// pushExpJob submits one expectation job and polls the result back.
func pushExpJob(client *http.Client, base string, c *circuit.Circuit, h *observable.Hamiltonian) (*service.ResultResponse, error) {
	return push(client, base, service.SubmitRequest{
		Kind: "expectation", Circuit: service.FromCircuit(c), Hamiltonian: service.FromHamiltonian(h),
	})
}

// pushJob submits one circuit and polls the full result back.
func pushJob(client *http.Client, base string, c *circuit.Circuit, shots int, seed uint64) (*service.ResultResponse, error) {
	return push(client, base, service.SubmitRequest{Circuit: service.FromCircuit(c), Shots: shots, Seed: seed})
}

func push(client *http.Client, base string, req service.SubmitRequest) (*service.ResultResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var info service.JobInfo
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 200 {
			// Shed by the bounded queue: honor the server's hint.
			time.Sleep(bench.RetryAfterDelay(resp.Header, time.Duration(attempt+1)*time.Millisecond))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		if err != nil {
			return nil, err
		}
		break
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		r, err := client.Get(base + "/v1/results/" + info.ID + "?full=1")
		if err != nil {
			return nil, err
		}
		if r.StatusCode == http.StatusOK {
			var out service.ResultResponse
			err = json.NewDecoder(r.Body).Decode(&out)
			r.Body.Close()
			if err != nil {
				return nil, err
			}
			if out.State == service.StateFailed {
				return nil, fmt.Errorf("job %s failed", info.ID)
			}
			return &out, nil
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("poll %s: HTTP %d", info.ID, r.StatusCode)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s: poll deadline exceeded", info.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
