// Command qgear-serve runs the Q-GEAR simulation service: an HTTP JSON
// API over the internal/service layer (bounded job queue, worker pool,
// batch coalescing onto the mqpu device-parallel path, and a
// content-addressed LRU result cache), plus a self-contained load
// generator for benchmarking it.
//
// Usage:
//
//	qgear-serve serve -addr :8042 -target nvidia-mqpu -devices 4 -pool 2 -cache 1024
//	qgear-serve bench -addr http://localhost:8042 -clients 100 -waves 2 -qubits 16
//	qgear-serve bench -clients 100 -waves 2            # embedded server, no network setup
//
// The bench subcommand spawns -clients concurrent clients; each
// submits one distinct GHZ-style circuit per wave and polls it to
// completion. Waves repeat the same circuit set, so every wave after
// the first should be served from the result cache — the reported
// per-wave hit rate (from /v1/stats deltas) verifies it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"qgear/internal/bench"
	"qgear/internal/circuit"
	"qgear/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "warmstart":
		err = cmdWarmstart(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "qgear-serve: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgear-serve: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `qgear-serve <command> [flags]
commands:
  serve      run the simulation HTTP service (/v1/jobs, /v1/results, /v1/stats)
  bench      load-generate against a running server (or an embedded one)
  warmstart  warm-restart acceptance check for the -store-dir persistence path
run "qgear-serve <command> -h" for flags`)
}

// serviceFlags registers the shared server-configuration flags.
func serviceFlags(fs *flag.FlagSet) *service.Config {
	cfg := &service.Config{}
	fs.StringVar((*string)(&cfg.Target), "target", "", "execution target (default nvidia; nvidia-mqpu when -devices > 1)")
	fs.IntVar(&cfg.Devices, "devices", 1, "simulated device count")
	fs.IntVar(&cfg.Workers, "workers", 0, "goroutine parallelism per device (0 = NumCPU)")
	fs.IntVar(&cfg.FusionWindow, "fusion", 0, "gate-fusion window (0 = off)")
	fs.Float64Var(&cfg.PruneAngle, "prune", 0, "small-angle prune threshold")
	fs.IntVar(&cfg.TileBits, "tile", 0, "tiled-executor tile width in qubits (0 = auto from cache geometry, negative = per-gate sweeps)")
	fs.BoolVar(&cfg.PlanFusion, "plan-fusion", false, "pre-multiply adjacent same-target 1q gates in the plan compiler")
	fs.IntVar(&cfg.QueueSize, "queue", 256, "job queue bound")
	fs.IntVar(&cfg.WorkerPool, "pool", 2, "executor worker pool size")
	fs.IntVar(&cfg.CacheSize, "cache", 1024, "result-cache entry bound (-1 disables)")
	fs.Int64Var(&cfg.MaxCacheBytes, "max-cache-bytes", 0, "result-cache resident byte budget (0 = 1 GiB default, -1 = unbounded)")
	fs.IntVar(&cfg.PlanCacheSize, "plan-cache", 512, "compiled-plan cache entry bound (-1 disables)")
	fs.Int64Var(&cfg.MaxPlanCacheBytes, "max-plan-cache-bytes", 0, "plan-cache resident byte budget (0 = 256 MiB default, -1 = unbounded)")
	fs.StringVar(&cfg.StoreDir, "store-dir", "", "persistent artifact store directory: evicted/shutdown cache entries spill there and a restarted server answers repeat fingerprints from disk (empty = no persistence)")
	fs.Int64Var(&cfg.MaxStoreBytes, "max-store-bytes", 0, "on-disk store byte budget: saves evict lowest-priority artifacts (Greedy-Dual-Size) or are refused so the store directory never outgrows this (0 = unbounded)")
	fs.IntVar(&cfg.MaxBatch, "batch", 8, "max jobs coalesced into one run")
	fs.DurationVar(&cfg.BatchWindow, "window", 2*time.Millisecond, "batch coalescing wait window")
	fs.DurationVar(&cfg.JobTimeout, "job-timeout", 0, "per-job lifetime bound from submission (0 = unbounded); expired jobs fail with a 504 result")
	fs.IntVar(&cfg.MaxWaitMs, "max-wait-ms", 0, "long-poll cap for GET /v1/jobs/{id}?wait_ms=N in milliseconds (0 = 30000 default); larger client budgets are clamped, never rejected")
	fs.Int64Var(&cfg.MaxStateBytes, "max-state-bytes", 0, "memory admission budget: reject circuits whose simulation working set exceeds this many bytes with 422 (0 = half of available RAM, -1 = no admission control)")
	return cfg
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfg := serviceFlags(fs)
	addr := fs.String("addr", ":8042", "listen address")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: profiling endpoints expose internals)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := service.New(*cfg)
	if err != nil {
		return err
	}
	var handler http.Handler = srv.Handler()
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	// SIGTERM is what orchestrators (Kubernetes, systemd) send first;
	// both it and Ctrl-C get the same graceful drain.
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ecfg := srv.Config()
	fmt.Printf("qgear-serve: listening on %s (target=%s devices=%d pool=%d queue=%d cache=%d batch=%d)\n",
		*addr, ecfg.Target, ecfg.Devices, ecfg.WorkerPool, ecfg.QueueSize, ecfg.CacheSize, ecfg.MaxBatch)
	select {
	case err := <-done:
		srv.Close()
		return err
	case <-sig:
		fmt.Println("qgear-serve: draining in-flight jobs...")
		// Shutdown (not Close) lets in-flight HTTP requests finish;
		// the timeout bounds clients that never stop reading.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "qgear-serve: http shutdown: %v\n", err)
		}
		return srv.Close()
	}
}

// benchResult aggregates one wave of load.
type benchResult struct {
	requests  int
	errors    int
	wall      time.Duration
	latencies []time.Duration
	hits      uint64 // stats-delta: cache + single-flight hits this wave
	submitted uint64
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	cfg := serviceFlags(fs)
	addr := fs.String("addr", "", "server base URL (empty = run an embedded server)")
	clients := fs.Int("clients", 100, "concurrent clients")
	waves := fs.Int("waves", 2, "submission waves (wave >= 2 repeats wave 1's circuits)")
	qubits := fs.Int("qubits", 16, "GHZ circuit width")
	shots := fs.Int("shots", 0, "shots per job (0 = probabilities only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := *addr
	if base == "" {
		srv, err := service.New(*cfg)
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		ecfg := srv.Config()
		fmt.Printf("bench: embedded server (target=%s devices=%d pool=%d batch=%d)\n",
			ecfg.Target, ecfg.Devices, ecfg.WorkerPool, ecfg.MaxBatch)
	}
	client := &http.Client{Timeout: 60 * time.Second}

	// One distinct circuit per client: GHZ-n with a client-specific
	// phase twist so wave 1 is all cache misses and later waves are
	// pure repeats.
	circs := make([]*circuit.Circuit, *clients)
	for i := range circs {
		circs[i] = benchCircuit(*qubits, i)
	}

	fmt.Printf("bench: %d clients x %d waves, GHZ-%d, shots=%d -> %s\n",
		*clients, *waves, *qubits, *shots, base)
	var overallHits, overallSubmitted uint64
	for w := 1; w <= *waves; w++ {
		before, err := fetchStats(client, base)
		if err != nil {
			return fmt.Errorf("wave %d: reading stats: %w", w, err)
		}
		res := runWave(client, base, circs, *shots)
		after, err := fetchStats(client, base)
		if err != nil {
			return fmt.Errorf("wave %d: reading stats: %w", w, err)
		}
		res.hits = (after.CacheHits + after.SingleFlightHits + after.StoreHits) -
			(before.CacheHits + before.SingleFlightHits + before.StoreHits)
		res.submitted = after.Submitted - before.Submitted
		overallHits += res.hits
		overallSubmitted += res.submitted
		printWave(w, res)
	}
	final, err := fetchStats(client, base)
	if err != nil {
		return err
	}
	fmt.Printf("overall: hit rate %.1f%% (%d/%d), server lifetime hit rate %.1f%%, cache %d/%d entries, %d evictions, mean batch %.1f, plan cache %d hits / %d misses\n",
		pct(overallHits, overallSubmitted), overallHits, overallSubmitted,
		final.HitRate*100, final.CacheLen, final.CacheCapacity, final.CacheEvictions, final.MeanBatchLen,
		final.PlanCacheHits, final.PlanCacheMisses)
	fmt.Printf("cache bytes: %d resident / %d budget (plan cache %d / %d)\n",
		final.CacheBytes, final.CacheMaxBytes, final.PlanCacheBytes, final.PlanCacheMaxBytes)
	if final.CacheMaxBytes > 0 && final.CacheBytes > final.CacheMaxBytes {
		return fmt.Errorf("bench: resident cache %d bytes exceeds -max-cache-bytes %d", final.CacheBytes, final.CacheMaxBytes)
	}
	if final.StoreDir != "" {
		fmt.Printf("store: %d result hits, %d plan hits, %d spills (%d dropped), %d errors, %d+%d entries / %d bytes at %s\n",
			final.StoreHits, final.StorePlanHits, final.StoreSpills, final.StoreSpillDrops, final.StoreErrors,
			final.StoreResultEntries, final.StorePlanEntries, final.StoreBytes, final.StoreDir)
	}
	return nil
}

// benchCircuit builds the i-th client's distinct GHZ-style circuit: the
// standard ladder plus a tiny client-specific RZ twist, which leaves
// the distribution effectively unchanged but gives every client a
// unique content address (so only true resubmissions hit the cache).
func benchCircuit(n, i int) *circuit.Circuit {
	c := circuit.GHZ(n, false)
	c.Name = fmt.Sprintf("bench-ghz%d-%d", n, i)
	c.RZ(1e-6*float64(i+1), 0)
	return c
}

func runWave(client *http.Client, base string, circs []*circuit.Circuit, shots int) benchResult {
	res := benchResult{requests: len(circs), latencies: make([]time.Duration, len(circs))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	start := time.Now()
	for i, c := range circs {
		wg.Add(1)
		go func(i int, c *circuit.Circuit) {
			defer wg.Done()
			t0 := time.Now()
			err := submitAndPoll(client, base, c, shots, uint64(i))
			lat := time.Since(t0)
			mu.Lock()
			res.latencies[i] = lat
			if err != nil {
				res.errors++
			}
			mu.Unlock()
		}(i, c)
	}
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// submitAndPoll pushes one job through the API and polls it to a
// terminal state, honoring the server's Retry-After hint on queue-full
// responses.
func submitAndPoll(client *http.Client, base string, c *circuit.Circuit, shots int, seed uint64) error {
	req := service.SubmitRequest{Circuit: service.FromCircuit(c), Shots: shots, Seed: seed}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var info service.JobInfo
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		status := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if status == http.StatusTooManyRequests && attempt < 200 {
			time.Sleep(bench.RetryAfterDelay(resp.Header, time.Duration(attempt+1)*time.Millisecond))
			continue
		}
		if status != http.StatusAccepted {
			return fmt.Errorf("submit: HTTP %d", status)
		}
		if err != nil {
			return err
		}
		break
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		if info.State == service.StateDone {
			return nil
		}
		if info.State == service.StateFailed {
			return fmt.Errorf("job %s failed: %s", info.ID, info.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s: poll deadline exceeded in state %q", info.ID, info.State)
		}
		time.Sleep(2 * time.Millisecond)
		resp, err := client.Get(base + "/v1/jobs/" + info.ID)
		if err != nil {
			return err
		}
		status := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if status != http.StatusOK {
			// e.g. 404 after server-side job retention eviction.
			return fmt.Errorf("poll %s: HTTP %d", info.ID, status)
		}
		if err != nil {
			return err
		}
	}
}

func fetchStats(client *http.Client, base string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("stats: HTTP %d: %s", resp.StatusCode, b)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func printWave(w int, r benchResult) {
	lats := append([]time.Duration(nil), r.latencies...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pctl := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	rps := float64(r.requests) / r.wall.Seconds()
	fmt.Printf("wave %d: %d reqs in %v (%.0f req/s), errors %d, latency p50 %v p95 %v max %v, hit rate %.1f%% (%d/%d)\n",
		w, r.requests, r.wall.Round(time.Millisecond), rps, r.errors,
		pctl(0.50).Round(time.Microsecond), pctl(0.95).Round(time.Microsecond), pctl(1.0).Round(time.Microsecond),
		pct(r.hits, r.submitted), r.hits, r.submitted)
}

func pct(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(total)
}
