// bench_test.go holds one testing.B benchmark per paper artifact
// (tables and figures) plus the ablation benches DESIGN.md calls out.
// Figure benches exercise the same code paths as the qgear-bench
// harness at sizes that finish quickly; `-benchtime` and QGEAR_LARGE
// widen them. Paper-scale numbers come from `qgear-bench -exp <id>`.
package qgear_test

import (
	"fmt"
	"testing"

	"qgear"
	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/cluster"
	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/mgpu"
	"qgear/internal/qcrank"
	"qgear/internal/qft"
	"qgear/internal/qimage"
	"qgear/internal/qmath"
	"qgear/internal/randcirc"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
	"qgear/internal/tensorenc"
)

// benchCircuit caches one random workload per size.
func benchCircuit(b *testing.B, qubits, blocks int) *circuit.Circuit {
	b.Helper()
	c, err := randcirc.Generate(randcirc.Spec{Qubits: qubits, Blocks: blocks, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func runTarget(b *testing.B, c *circuit.Circuit, cfg backend.Config) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Run(c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 1: the conceptual CPU/GPU gap (model evaluation) ---

func BenchmarkFig1GapModel(b *testing.B) {
	model := cluster.Perlmutter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for n := 20; n <= 34; n++ {
			if _, err := model.EstimateCPUSeconds(cluster.Workload{Qubits: n, Gates: 3000, Precision: cluster.FP64}); err != nil && n < 34 {
				b.Fatal(err)
			}
			if _, err := model.EstimateGPUSeconds(cluster.Workload{Qubits: n, Gates: 3000, Precision: cluster.FP32}, 4); err != nil && n < 34 {
				b.Fatal(err)
			}
		}
	}
}

// --- Fig. 4a: random unitaries on the three engine paths ---

func BenchmarkFig4aShortCPUSerial(b *testing.B) {
	runTarget(b, benchCircuit(b, 16, randcirc.ShortBlocks), backend.Config{Target: backend.TargetAer, Workers: 1})
}

func BenchmarkFig4aShortGPUParallel(b *testing.B) {
	runTarget(b, benchCircuit(b, 16, randcirc.ShortBlocks), backend.Config{Target: backend.TargetNvidia, FusionWindow: 2})
}

func BenchmarkFig4aShort4DevMGPU(b *testing.B) {
	runTarget(b, benchCircuit(b, 16, randcirc.ShortBlocks), backend.Config{Target: backend.TargetNvidiaMGPU, Devices: 4})
}

func BenchmarkFig4aLongCPUSerial(b *testing.B) {
	runTarget(b, benchCircuit(b, 14, 1000), backend.Config{Target: backend.TargetAer, Workers: 1})
}

func BenchmarkFig4aLongGPUParallel(b *testing.B) {
	runTarget(b, benchCircuit(b, 14, 1000), backend.Config{Target: backend.TargetNvidia, FusionWindow: 2})
}

// --- Fig. 4b: the cluster-scaling model over the full sweep ---

func BenchmarkFig4bClusterModel(b *testing.B) {
	model := cluster.Perlmutter().WithGPU(cluster.A100HBM80)
	gates := randcirc.IntermediateBlocks * randcirc.GatesPerBlock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for n := 30; n <= 42; n++ {
			for _, g := range []int{4, 16, 64, 256, 1024} {
				_, _ = model.EstimateGPUSeconds(cluster.Workload{Qubits: n, Gates: gates, Precision: cluster.FP32}, g)
			}
		}
	}
}

// --- Fig. 4c: QFT on Q-GEAR vs the Pennylane-like baseline ---

func benchQFT(b *testing.B, n int) *circuit.Circuit {
	b.Helper()
	c, err := qft.Circuit(n, true)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkFig4cQFTQGear(b *testing.B) {
	runTarget(b, benchQFT(b, 16), backend.Config{Target: backend.TargetNvidia, FusionWindow: 2})
}

func BenchmarkFig4cQFTPennylane(b *testing.B) {
	runTarget(b, benchQFT(b, 16), backend.Config{Target: backend.TargetPennylane})
}

// --- Fig. 5: QCrank image encoding, CPU vs GPU paths ---

func benchQCrank(b *testing.B, pixels, addr, shotsPerAddr int) (*circuit.Circuit, qcrank.Plan) {
	b.Helper()
	img, err := qimage.Synthetic("zebra", pixels/20, 20, 3)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := qcrank.NewPlan(img.Pixels(), addr, shotsPerAddr)
	if err != nil {
		b.Fatal(err)
	}
	c, err := qcrank.Encode(img.Pix, plan, true)
	if err != nil {
		b.Fatal(err)
	}
	return c, plan
}

func BenchmarkFig5QCrankCPUSerial(b *testing.B) {
	c, plan := benchQCrank(b, 640, 6, 100)
	runTarget(b, c, backend.Config{Target: backend.TargetAer, Workers: 1, Shots: plan.Shots})
}

func BenchmarkFig5QCrankGPUParallel(b *testing.B) {
	c, plan := benchQCrank(b, 640, 6, 100)
	runTarget(b, c, backend.Config{Target: backend.TargetNvidia, FusionWindow: 4, Shots: plan.Shots})
}

// --- Fig. 6: full reconstruction round trip ---

func BenchmarkFig6Reconstruction(b *testing.B) {
	c, plan := benchQCrank(b, 640, 6, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := backend.Run(c, backend.Config{Target: backend.TargetNvidia, FusionWindow: 4, Shots: plan.Shots, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := qcrank.DecodeCounts(res.Counts, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1 / Table 2: configuration derivations ---

func BenchmarkTable2Plans(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := qcrank.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Appendix C: constant-time tensor encoding + compressed save ---

func BenchmarkAppendixCEncode(b *testing.B) {
	circs, err := randcirc.GenerateList(10, 100, 20, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensorenc.Encode(circs, 600); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixCSaveCompressed(b *testing.B) {
	circs, err := randcirc.GenerateList(10, 100, 20, 5)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := tensorenc.Encode(circs, 600)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.SaveFile(fmt.Sprintf("%s/e%d.h5", dir, i%4), "c"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorem B.3: per-gate scaling and parallel speedup ---

func BenchmarkTheoremB3SerialGate(b *testing.B) {
	for _, n := range []int{14, 16, 18} {
		b.Run(fmt.Sprintf("qubits=%d", n), func(b *testing.B) {
			s := statevec.MustNew(n, 1)
			m := benchMat()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ApplyMat1(i%n, m)
			}
		})
	}
}

func BenchmarkTheoremB3ParallelGate(b *testing.B) {
	for _, w := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			s, err := statevec.New(20, w)
			if err != nil {
				b.Fatal(err)
			}
			m := benchMat()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ApplyMat1(i%20, m)
			}
		})
	}
}

// benchMat returns an arbitrary dense single-qubit unitary.
func benchMat() gate.Mat2 { return gate.Matrix1(gate.RY, []float64{0.7}) }

// --- §3 mqpu: batch throughput across simulated QPUs ---

func BenchmarkMqpuSequential(b *testing.B) {
	batch := mqpuBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.RunBatch(batch, backend.Config{Target: backend.TargetNvidia, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMqpu4Devices(b *testing.B) {
	batch := mqpuBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.RunBatch(batch, backend.Config{Target: backend.TargetNvidiaMQPU, Devices: 4, Workers: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func mqpuBatch(b *testing.B) []*circuit.Circuit {
	b.Helper()
	batch := make([]*circuit.Circuit, 8)
	for i := range batch {
		c, err := randcirc.Generate(randcirc.Spec{Qubits: 14, Blocks: 40, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		batch[i] = c
	}
	return batch
}

// --- Ablations (DESIGN.md §3) ---

// Fusion-window sweep: in the bandwidth-bound regime wider windows
// trade arithmetic for sweeps; on this compute-bound box the optimum
// is narrow — the bench quantifies the tradeoff the paper's
// "gate fusion = 5" makes on an A100.
func BenchmarkAblationFusionWindow(b *testing.B) {
	c := benchCircuit(b, 18, 150)
	for _, w := range []int{0, 2, 3, 4, 5} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			runTarget(b, c, backend.Config{Target: backend.TargetNvidia, FusionWindow: w})
		})
	}
}

// Pruning thresholds on the QFT's long tail of tiny cr1 angles.
func BenchmarkAblationPruneQFT(b *testing.B) {
	c := benchQFT(b, 16)
	for _, p := range []float64{0, 1e-6, 1e-3, 1e-2} {
		b.Run(fmt.Sprintf("prune=%g", p), func(b *testing.B) {
			runTarget(b, c, backend.Config{Target: backend.TargetNvidia, FusionWindow: 2, PruneAngle: p})
		})
	}
}

// Worker-count sweep for the sharded engine.
func BenchmarkAblationWorkers(b *testing.B) {
	c := benchCircuit(b, 18, 100)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runTarget(b, c, backend.Config{Target: backend.TargetNvidia, Workers: w})
		})
	}
}

// Device-count sweep for the distributed engine: more ranks = more
// exchange traffic on the same circuit (the Fig. 4b cost driver).
func BenchmarkAblationMGPUDevices(b *testing.B) {
	c := benchCircuit(b, 16, 100)
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("devices=%d", d), func(b *testing.B) {
			runTarget(b, c, backend.Config{Target: backend.TargetNvidiaMGPU, Devices: d})
		})
	}
}

// Diagonal fast path: QFT's cr1 ladder through the phase-multiply
// kernels vs forced general two-qubit kernels.
func BenchmarkAblationDiagonal(b *testing.B) {
	n := 16
	b.Run("fast-path", func(b *testing.B) {
		s := statevec.MustNew(n, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ApplyDiagonalGate(gate.CP, []int{i % n, (i + 1) % n}, []float64{0.3})
		}
	})
	b.Run("general-kernel", func(b *testing.B) {
		s := statevec.MustNew(n, 1)
		m := gate.Matrix2(gate.CP, []float64{0.3})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ApplyMat2(i%n, (i+1)%n, m)
		}
	})
}

// Placement: a hot-high-qubit workload distributed with and without
// the exchange-minimizing qubit remap.
func BenchmarkAblationPlacement(b *testing.B) {
	c := circuit.New(8, 0)
	r := qmath.NewRNG(3)
	for i := 0; i < 150; i++ {
		c.CX(r.Intn(2), 6+r.Intn(2)).RY(r.Angle(), 6+r.Intn(2))
	}
	k, _, err := kernelFromCircuit(c)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mgpu.SimulateKernel(k, 4, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("placed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mgpu.SimulateKernelPlaced(k, 4, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func kernelFromCircuit(c *circuit.Circuit) (*kernel.Kernel, kernel.Stats, error) {
	return kernel.FromCircuit(c, kernel.Options{})
}

// Sampler choice: alias vs cumulative at QCrank-like shot counts.
func BenchmarkAblationSamplers(b *testing.B) {
	probs := make([]float64, 1<<14)
	r := qmath.NewRNG(2)
	for i := range probs {
		probs[i] = r.Float64()
	}
	const shots = 100000
	b.Run("alias", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.SampleAlias(probs, shots, qmath.NewRNG(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cumulative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.SampleCumulative(probs, shots, qmath.NewRNG(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Transformation throughput: §2.1's constant-time-per-gate conversion.
func BenchmarkTransformPerGate(b *testing.B) {
	c := benchCircuit(b, 20, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := qgear.Transform(c, qgear.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(c.Ops))/b.Elapsed().Seconds(), "gates/s")
}
