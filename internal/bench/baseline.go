package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The bench-regression gate: CI reruns the tiling ablation and
// compares the fresh BENCH_*.json rows against the committed baseline
// under bench/baseline/. The perf story the repo's PRs have built —
// tiled speedup over per-gate sweeps, planned-mgpu speedup over
// per-gate exchanges — must not silently erode, and the equivalence
// invariants (max |Δp| = 0, identical fixed-seed shot counts) must
// hold on every run, not just the one that recorded the baseline.

// GateFiles are the ablation artifacts the gate compares.
var GateFiles = []string{"BENCH_qft.json", "BENCH_qcrank.json"}

// DefaultGateTolerance is the fraction of baseline speedup a fresh
// run may lose before the gate fails: wall-clock ratios on shared CI
// runners are noisy, so the gate triggers only on a >20% regression.
const DefaultGateTolerance = 0.20

// minTimedSeconds is the shortest per-gate arm whose speedup ratio is
// worth gating: below ~50 ms, scheduler jitter dominates the ratio and
// a timing verdict would be noise, so only the bit-identity and
// exchange-count checks (which are deterministic) apply.
const minTimedSeconds = 0.05

// mgpuToleranceFactor widens the band for the distributed column: its
// small-size runs are several times shorter than the single-process
// ablation, so the same absolute jitter moves its ratio further.
const mgpuToleranceFactor = 2

// LoadAblationRow reads one BENCH_*.json artifact.
func LoadAblationRow(path string) (AblationRow, error) {
	var row AblationRow
	buf, err := os.ReadFile(path)
	if err != nil {
		return row, err
	}
	if err := json.Unmarshal(buf, &row); err != nil {
		return row, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return row, nil
}

// CompareAblation checks a fresh ablation row against its committed
// baseline and returns human-readable failure messages (empty = pass).
// It is tolerance-aware on the timing ratio and strict on everything
// that should never vary: workload shape and the bit-identity verdict.
func CompareAblation(fresh, base AblationRow, tol float64) []string {
	var fails []string
	if fresh.Workload != base.Workload || fresh.Qubits != base.Qubits {
		fails = append(fails, fmt.Sprintf(
			"workload mismatch: fresh %s/%dq vs baseline %s/%dq — regenerate the baseline at the gate's sizes",
			fresh.Workload, fresh.Qubits, base.Workload, base.Qubits))
		return fails // speedups across different sizes are not comparable
	}
	// Cross-machine guard: wall-clock ratios recorded on one box do not
	// transfer exactly to another. When the execution environment
	// differs from the baseline's (worker count or effective tile
	// width), the timing bands widen 2x; the deterministic checks below
	// are unaffected. For the strict band, re-record bench/baseline on
	// the hardware class that runs the gate (make bench-baseline).
	if fresh.Workers != base.Workers || fresh.TileBits != base.TileBits {
		tol *= 2
		if tol > 0.9 {
			tol = 0.9
		}
	}
	if !fresh.CountsIdentical {
		fails = append(fails, fmt.Sprintf("%s: fixed-seed shot counts differ between per-gate and tiled runs", fresh.Workload))
	}
	if fresh.MaxProbDiff != 0 {
		fails = append(fails, fmt.Sprintf("%s: max |Δp| = %g, want exactly 0", fresh.Workload, fresh.MaxProbDiff))
	}
	// Workers axis: every scaling point must be bit-identical to the
	// workers=1 run — correctness is gated regardless of what the
	// baseline recorded (older baselines without a scaling column are
	// tolerated; their timing columns above still apply). Scaling
	// timings themselves are never gated: efficiency is a property of
	// the host's core count, not of the code under test.
	for _, pt := range fresh.Scaling {
		if !pt.BitIdentical {
			fails = append(fails, fmt.Sprintf(
				"%s: workers=%d tiled run is not bit-identical to workers=1 — worker count changed amplitude bits",
				fresh.Workload, pt.Workers))
		}
	}
	if len(base.Scaling) > 0 && len(fresh.Scaling) == 0 {
		fails = append(fails, fmt.Sprintf("%s: baseline has a scaling column but the fresh run does not", fresh.Workload))
	}
	if floor := base.Speedup * (1 - tol); fresh.PerGateSeconds >= minTimedSeconds && fresh.Speedup < floor {
		fails = append(fails, fmt.Sprintf(
			"%s: tiled speedup %.2fx regressed more than %.0f%% below baseline %.2fx (floor %.2fx)",
			fresh.Workload, fresh.Speedup, tol*100, base.Speedup, floor))
	}
	if fresh.MGPU != nil && base.MGPU != nil {
		if !fresh.MGPU.CountsIdentical {
			fails = append(fails, fmt.Sprintf("%s mgpu: fixed-seed shot counts differ between per-gate and planned runs", fresh.Workload))
		}
		if fresh.MGPU.MaxProbDiff != 0 {
			fails = append(fails, fmt.Sprintf("%s mgpu: max |Δp| = %g, want exactly 0", fresh.Workload, fresh.MGPU.MaxProbDiff))
		}
		mtol := tol * mgpuToleranceFactor
		if mtol > 0.9 {
			mtol = 0.9
		}
		if floor := base.MGPU.Speedup * (1 - mtol); fresh.MGPU.PerGateSeconds >= minTimedSeconds && fresh.MGPU.Speedup < floor {
			fails = append(fails, fmt.Sprintf(
				"%s mgpu: planned speedup %.2fx regressed more than %.0f%% below baseline %.2fx (floor %.2fx)",
				fresh.Workload, fresh.MGPU.Speedup, mtol*100, base.MGPU.Speedup, floor))
		}
		if fresh.MGPU.PlannedExchanges > base.MGPU.PlannedExchanges {
			// Exchange counts are deterministic compiler output, not
			// timing: any growth is a real plan regression.
			fails = append(fails, fmt.Sprintf("%s mgpu: planned exchanges grew %d -> %d",
				fresh.Workload, base.MGPU.PlannedExchanges, fresh.MGPU.PlannedExchanges))
		}
	} else if base.MGPU != nil {
		fails = append(fails, fmt.Sprintf("%s: baseline has an mgpu column but the fresh run does not", fresh.Workload))
	}
	if fresh.Expectation != nil {
		// Bit-identity is enforced unconditionally: the exact ⟨H⟩ must
		// agree across the per-gate, tiled, and planned-mgpu engines on
		// every run, noise or not.
		if fresh.Expectation.MaxEngineDelta != 0 {
			fails = append(fails, fmt.Sprintf("%s expectation: engine Δ⟨H⟩ = %g, want exactly 0",
				fresh.Workload, fresh.Expectation.MaxEngineDelta))
		}
		if base.Expectation != nil {
			// Timing at the noise-aware band: the exact arm is several
			// times shorter than the full ablation arms, so it gets the
			// widened distributed-column tolerance and the same floor.
			etol := tol * mgpuToleranceFactor
			if etol > 0.9 {
				etol = 0.9
			}
			floor := base.Expectation.SpeedupVsSampled * (1 - etol)
			if fresh.Expectation.ExactSeconds >= minTimedSeconds && fresh.Expectation.SpeedupVsSampled < floor {
				fails = append(fails, fmt.Sprintf(
					"%s expectation: exact-vs-sampled speedup %.2fx regressed more than %.0f%% below baseline %.2fx (floor %.2fx)",
					fresh.Workload, fresh.Expectation.SpeedupVsSampled, etol*100,
					base.Expectation.SpeedupVsSampled, floor))
			}
		}
	} else if base.Expectation != nil {
		fails = append(fails, fmt.Sprintf("%s: baseline has an expectation column but the fresh run does not", fresh.Workload))
	}
	return fails
}

// Gate compares every fresh BENCH artifact in freshDir against its
// baseline in baseDir, printing one verdict line per workload, and
// errors if any check fails — the exit status CI keys on.
func Gate(freshDir, baseDir string, tol float64) error {
	if tol <= 0 {
		tol = DefaultGateTolerance
	}
	var all []string
	for _, name := range GateFiles {
		fresh, err := LoadAblationRow(filepath.Join(freshDir, name))
		if err != nil {
			return fmt.Errorf("bench gate: fresh artifact: %w", err)
		}
		base, err := LoadAblationRow(filepath.Join(baseDir, name))
		if err != nil {
			return fmt.Errorf("bench gate: baseline: %w", err)
		}
		fails := CompareAblation(fresh, base, tol)
		if len(fails) == 0 {
			mgpu := ""
			if fresh.MGPU != nil && base.MGPU != nil {
				mgpu = fmt.Sprintf(", mgpu %.2fx vs %.2fx", fresh.MGPU.Speedup, base.MGPU.Speedup)
			}
			fmt.Printf("bench gate: %-20s OK   speedup %.2fx vs baseline %.2fx (tolerance %.0f%%)%s\n",
				fresh.Workload, fresh.Speedup, base.Speedup, tol*100, mgpu)
			continue
		}
		for _, f := range fails {
			fmt.Printf("bench gate: %-20s FAIL %s\n", fresh.Workload, f)
		}
		all = append(all, fails...)
	}
	if len(all) > 0 {
		return fmt.Errorf("bench gate: %d check(s) failed", len(all))
	}
	return nil
}
