package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"qgear/internal/service"
)

func TestParseMetrics(t *testing.T) {
	body := `# HELP a_total A.
# TYPE a_total counter
a_total{x="1"} 3
a_total{x="2"} 4.5
# TYPE b gauge
b 7
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 0.004
h_seconds_count 2
`
	series, families, err := ParseMetrics(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if families["a_total"] != "counter" || families["b"] != "gauge" || families["h_seconds"] != "histogram" {
		t.Errorf("families = %v", families)
	}
	if series[`a_total{x="1"}`] != 3 || series[`a_total{x="2"}`] != 4.5 || series["b"] != 7 {
		t.Errorf("series = %v", series)
	}
	if series[`h_seconds_bucket{le="+Inf"}`] != 2 || series["h_seconds_count"] != 2 {
		t.Errorf("histogram series = %v", series)
	}
	if _, _, err := ParseMetrics(strings.NewReader("garbage line without value\n")); err == nil {
		t.Error("unparseable line accepted")
	}
}

// TestRunLoadEmbedded is the harness's own end-to-end check: a small
// mixed workload against an embedded server must complete error-free,
// report both job kinds, find every required metric family, and agree
// with /v1/stats — the same gate CI runs at larger scale.
func TestRunLoadEmbedded(t *testing.T) {
	var out bytes.Buffer
	rep, err := RunLoad(LoadConfig{
		Clients:        4,
		Requests:       6,
		Qubits:         8,
		Shots:          16,
		ExpectEvery:    3,
		SeedCycle:      2,
		RequireMetrics: true,
		Service:        service.Config{WorkerPool: 2, QueueSize: 64},
	}, &out)
	if err != nil {
		t.Fatalf("RunLoad: %v\noutput:\n%s", err, out.String())
	}
	if rep.Total != 24 || rep.Errors != 0 {
		t.Errorf("total=%d errors=%d, want 24 and 0", rep.Total, rep.Errors)
	}
	if !rep.Consistent {
		t.Error("metrics/stats consistency check failed")
	}
	kinds := map[string]KindStats{}
	for _, k := range rep.Kinds {
		kinds[k.Kind] = k
	}
	sim, okSim := kinds["simulate"]
	exp, okExp := kinds["expectation"]
	if !okSim || !okExp {
		t.Fatalf("kinds = %+v, want simulate and expectation", rep.Kinds)
	}
	// 6 requests per client, every 3rd an expectation: 4 simulate + 2
	// expectation each.
	if sim.Requests != 16 || exp.Requests != 8 {
		t.Errorf("per-kind requests = %d/%d, want 16/8", sim.Requests, exp.Requests)
	}
	if sim.P50MS <= 0 || sim.P95MS < sim.P50MS || sim.MaxMS < sim.P99MS {
		t.Errorf("simulate percentiles inconsistent: %+v", sim)
	}
	// SeedCycle 2 over 4 simulate requests repeats seeds, and each
	// client's second expectation repeats the first: hits must show up.
	if rep.MetricDeltas[`qgear_cache_hits_total{cache="result"}`] <= 0 {
		t.Errorf("no result-cache hits under a repeating workload: %v", rep.MetricDeltas)
	}
	if rep.TracedResults != 4 {
		t.Errorf("traced results = %d, want one per client (4)", rep.TracedResults)
	}
	if rep.RPS <= 0 {
		t.Errorf("rps = %v", rep.RPS)
	}
}

// TestRunLoadWritesReport checks the JSON artifact lands on disk and
// decodes.
func TestRunLoadWritesReport(t *testing.T) {
	path := t.TempDir() + "/BENCH_load.json"
	_, err := RunLoad(LoadConfig{
		Clients:  2,
		Requests: 2,
		Qubits:   6,
		OutPath:  path,
		Service:  service.Config{WorkerPool: 1},
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if rep.Total != 4 {
		t.Errorf("artifact total = %d, want 4", rep.Total)
	}
}
