package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qgear/internal/circuit"
	"qgear/internal/observable"
	"qgear/internal/service"
)

// The percentile load harness: a multi-client HTTP load generator for
// the serving layer that mixes simulate and expectation jobs, reports
// per-kind latency percentiles, and cross-checks the server's
// /metrics exposition against /v1/stats before and after the run. CI
// gates on its JSON report (BENCH_load.json), so a regression in
// either the serving path or the telemetry surface fails the build.

// LoadConfig sizes one load run.
type LoadConfig struct {
	// Addr is the base URL of a running server; empty runs an embedded
	// server configured by Service.
	Addr    string
	Service service.Config
	// Clients is the number of concurrent clients; each submits
	// Requests jobs sequentially.
	Clients  int
	Requests int
	// Qubits is the GHZ workload width; Shots the per-simulate-job
	// sample count (0 = probabilities only).
	Qubits int
	Shots  int
	// ExpectEvery makes every ExpectEvery-th request of a client an
	// expectation-value job over a ZZ-chain Hamiltonian (0 disables the
	// mixed workload).
	ExpectEvery int
	// SeedCycle is how many distinct seeds a client cycles through on
	// its simulate jobs: request r uses seed r % SeedCycle, so each
	// client's first SeedCycle shot-bearing submissions miss the result
	// cache and the rest hit it. Default 4.
	SeedCycle int
	// OutPath, when set, receives the JSON LoadReport.
	OutPath string
	// RequireMetrics fails the run when the /metrics exposition is
	// missing a required family or disagrees with /v1/stats — the CI
	// gate.
	RequireMetrics bool
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 20
	}
	if c.Requests <= 0 {
		c.Requests = 4
	}
	if c.Qubits <= 0 {
		c.Qubits = 12
	}
	if c.SeedCycle <= 0 {
		c.SeedCycle = 4
	}
	return c
}

// KindStats is one job kind's latency profile under load. Latencies
// are client-observed submit→done walls, including polling.
type KindStats struct {
	Kind     string  `json:"kind"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

// LoadReport is the JSON artifact of one load run (BENCH_load.json).
type LoadReport struct {
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests_per_client"`
	Qubits      int     `json:"qubits"`
	Shots       int     `json:"shots"`
	ExpectEvery int     `json:"expect_every"`
	Total       int     `json:"total_requests"`
	Errors      int     `json:"errors"`
	WallMS      float64 `json:"wall_ms"`
	RPS         float64 `json:"rps"`

	Kinds []KindStats `json:"kinds"`

	// Server-side view over the run (stats deltas and final state).
	HitRate       float64 `json:"hit_rate"`
	Executed      uint64  `json:"executed"`
	TracedResults int     `json:"traced_results"`

	// Resilience counters over the run, scraped from /metrics: how many
	// submissions the server shed with 429 (and the resulting shed
	// rate over all submission attempts), how many jobs failed on their
	// deadline, and how many execution panics were recovered. All zero
	// on a healthy un-stressed run — nonzero panics mean a bug.
	Shed429         uint64  `json:"shed_429"`
	ShedRate        float64 `json:"shed_rate"`
	Cancellations   uint64  `json:"cancellations"`
	PanicsRecovered uint64  `json:"panics_recovered"`

	// Telemetry cross-check: families seen in the final scrape, the
	// run's deltas of key counter series, and whether the scrape agreed
	// with /v1/stats.
	MetricFamilies []string           `json:"metric_families"`
	MetricDeltas   map[string]float64 `json:"metric_deltas"`
	Consistent     bool               `json:"consistent"`
}

// requiredFamilies is what every healthy scrape must expose; the load
// gate fails when one is missing after a run that exercised them.
var requiredFamilies = []string{
	"qgear_jobs_submitted_total",
	"qgear_jobs_completed_total",
	"qgear_cache_hits_total",
	"qgear_job_duration_seconds",
	"qgear_stage_duration_seconds",
	"qgear_queue_depth",
	"qgear_panics_recovered_total",
	"qgear_jobs_rejected_total",
	"qgear_jobs_cancelled_total",
	"go_goroutines",
}

// keyDeltaSeries are the counter series whose before/after deltas the
// report records (series key = name plus its sorted label block).
var keyDeltaSeries = []string{
	`qgear_jobs_submitted_total`,
	`qgear_jobs_completed_total`,
	`qgear_jobs_executed_total`,
	`qgear_cache_hits_total{cache="result"}`,
	`qgear_cache_hits_total{cache="plan"}`,
	`qgear_singleflight_hits_total`,
	`qgear_expectation_jobs_total`,
	`qgear_panics_recovered_total`,
	`qgear_jobs_rejected_total{reason="queue_full"}`,
	`qgear_jobs_rejected_total{reason="too_large"}`,
	`qgear_jobs_cancelled_total{stage="queue"}`,
	`qgear_jobs_cancelled_total{stage="running"}`,
}

// RunLoad drives the mixed workload and returns the report. Progress
// and the human-readable summary go to w.
func RunLoad(cfg LoadConfig, w io.Writer) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	base := cfg.Addr
	if base == "" {
		srv, err := service.New(cfg.Service)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		ecfg := srv.Config()
		fmt.Fprintf(w, "load: embedded server (target=%s devices=%d pool=%d batch=%d)\n",
			ecfg.Target, ecfg.Devices, ecfg.WorkerPool, ecfg.MaxBatch)
	}
	client := &http.Client{Timeout: 60 * time.Second}

	before, famBefore, err := scrapeMetrics(client, base)
	if err != nil {
		return nil, fmt.Errorf("load: initial scrape: %w", err)
	}
	statsBefore, err := fetchLoadStats(client, base)
	if err != nil {
		return nil, err
	}

	ham := zzChain(cfg.Qubits)
	type sample struct {
		kind   string
		lat    time.Duration
		err    error
		traced bool
	}
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	fmt.Fprintf(w, "load: %d clients x %d requests, GHZ-%d, shots=%d, expectation every %d -> %s\n",
		cfg.Clients, cfg.Requests, cfg.Qubits, cfg.Shots, cfg.ExpectEvery, base)
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := loadCircuit(cfg.Qubits, i)
			wire := service.FromCircuit(c)
			for r := 0; r < cfg.Requests; r++ {
				req := service.SubmitRequest{Circuit: wire}
				kind := "simulate"
				if cfg.ExpectEvery > 0 && r%cfg.ExpectEvery == cfg.ExpectEvery-1 {
					kind = "expectation"
					req.Kind = "expectation"
					req.Hamiltonian = service.FromHamiltonian(ham)
				} else {
					req.Shots = cfg.Shots
					req.Seed = uint64(r % cfg.SeedCycle)
				}
				t0 := time.Now()
				id, err := loadSubmitAndPoll(client, base, &req)
				sm := sample{kind: kind, lat: time.Since(t0), err: err}
				if err == nil && r == 0 {
					// One result fetch per client verifies traces flow
					// through the API without inflating every job's
					// measured latency.
					sm.traced = resultHasTrace(client, base, id)
				}
				mu.Lock()
				samples = append(samples, sm)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	statsAfter, err := fetchLoadStats(client, base)
	if err != nil {
		return nil, err
	}
	after, famAfter, err := scrapeMetrics(client, base)
	if err != nil {
		return nil, fmt.Errorf("load: final scrape: %w", err)
	}
	_ = famBefore

	rep := &LoadReport{
		Clients:     cfg.Clients,
		Requests:    cfg.Requests,
		Qubits:      cfg.Qubits,
		Shots:       cfg.Shots,
		ExpectEvery: cfg.ExpectEvery,
		Total:       len(samples),
		WallMS:      float64(wall.Microseconds()) / 1e3,
		RPS:         float64(len(samples)) / wall.Seconds(),
		HitRate:     statsAfter.HitRate,
		Executed:    statsAfter.Executed - statsBefore.Executed,
	}

	byKind := map[string][]time.Duration{}
	errsByKind := map[string]int{}
	for _, sm := range samples {
		if sm.err != nil {
			rep.Errors++
			errsByKind[sm.kind]++
			continue
		}
		byKind[sm.kind] = append(byKind[sm.kind], sm.lat)
		if sm.traced {
			rep.TracedResults++
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		rep.Kinds = append(rep.Kinds, kindStats(k, byKind[k], errsByKind[k]))
	}

	rep.MetricFamilies = make([]string, 0, len(famAfter))
	for f := range famAfter {
		rep.MetricFamilies = append(rep.MetricFamilies, f)
	}
	sort.Strings(rep.MetricFamilies)
	rep.MetricDeltas = make(map[string]float64)
	for _, series := range keyDeltaSeries {
		if vAfter, ok := after[series]; ok {
			rep.MetricDeltas[series] = vAfter - before[series]
		}
	}

	// Resilience view, from the same scrape deltas.
	delta := func(series string) float64 { return after[series] - before[series] }
	shed := delta(`qgear_jobs_rejected_total{reason="queue_full"}`)
	rep.Shed429 = uint64(shed)
	if attempts := shed + float64(len(samples)); attempts > 0 {
		rep.ShedRate = shed / attempts
	}
	rep.Cancellations = uint64(delta(`qgear_jobs_cancelled_total{stage="queue"}`) +
		delta(`qgear_jobs_cancelled_total{stage="running"}`))
	rep.PanicsRecovered = uint64(delta(`qgear_panics_recovered_total`))

	// Consistency: the scrape and /v1/stats are one set of counters
	// viewed two ways, so after the run quiesces (every job polled to a
	// terminal state) the headline totals must agree exactly.
	rep.Consistent = after["qgear_jobs_submitted_total"] == float64(statsAfter.Submitted) &&
		after["qgear_jobs_completed_total"] == float64(statsAfter.Completed) &&
		after["qgear_jobs_failed_total"] == float64(statsAfter.Failed)

	printLoadReport(w, rep)

	if cfg.RequireMetrics {
		var missing []string
		for _, f := range requiredFamilies {
			if _, ok := famAfter[f]; !ok {
				missing = append(missing, f)
			}
		}
		if len(missing) > 0 {
			return rep, fmt.Errorf("load: /metrics missing required families: %s", strings.Join(missing, ", "))
		}
		if !rep.Consistent {
			return rep, fmt.Errorf("load: /metrics disagrees with /v1/stats (submitted %v vs %d, completed %v vs %d)",
				after["qgear_jobs_submitted_total"], statsAfter.Submitted,
				after["qgear_jobs_completed_total"], statsAfter.Completed)
		}
		if rep.Errors > 0 {
			return rep, fmt.Errorf("load: %d request errors", rep.Errors)
		}
	}
	if cfg.OutPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(cfg.OutPath, append(data, '\n'), 0o644); err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "load: wrote %s\n", cfg.OutPath)
	}
	return rep, nil
}

func printLoadReport(w io.Writer, rep *LoadReport) {
	fmt.Fprintf(w, "load: %d requests in %.0f ms (%.0f req/s), errors %d, hit rate %.1f%%, executed %d, traced results %d\n",
		rep.Total, rep.WallMS, rep.RPS, rep.Errors, rep.HitRate*100, rep.Executed, rep.TracedResults)
	for _, k := range rep.Kinds {
		fmt.Fprintf(w, "load: %-11s n=%-4d p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms mean %.2fms\n",
			k.Kind, k.Requests, k.P50MS, k.P95MS, k.P99MS, k.MaxMS, k.MeanMS)
	}
	fmt.Fprintf(w, "load: shed %d (rate %.1f%%), cancellations %d, panics recovered %d\n",
		rep.Shed429, rep.ShedRate*100, rep.Cancellations, rep.PanicsRecovered)
	fmt.Fprintf(w, "load: scraped %d metric families, consistent=%v\n", len(rep.MetricFamilies), rep.Consistent)
	keys := make([]string, 0, len(rep.MetricDeltas))
	for k := range rep.MetricDeltas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "load:   Δ %s = %g\n", k, rep.MetricDeltas[k])
	}
}

func kindStats(kind string, lats []time.Duration, errs int) KindStats {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	pctl := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	ks := KindStats{
		Kind:     kind,
		Requests: len(lats),
		Errors:   errs,
		P50MS:    ms(pctl(0.50)),
		P95MS:    ms(pctl(0.95)),
		P99MS:    ms(pctl(0.99)),
		MaxMS:    ms(pctl(1.0)),
	}
	if len(lats) > 0 {
		ks.MeanMS = ms(sum / time.Duration(len(lats)))
	}
	return ks
}

// loadCircuit is client i's workload: GHZ-n with a client-specific
// phase twist, so distinct clients never share a content address but
// one client's repeats do.
func loadCircuit(n, i int) *circuit.Circuit {
	c := circuit.GHZ(n, false)
	c.Name = fmt.Sprintf("load-ghz%d-%d", n, i)
	c.RZ(1e-6*float64(i+1), 0)
	return c
}

// zzChain is the mixed workload's observable: nearest-neighbor ZZ
// couplings over the register.
func zzChain(n int) *observable.Hamiltonian {
	h := &observable.Hamiltonian{NumQubits: n}
	for q := 0; q+1 < n; q++ {
		h.Add(observable.NewTerm(1.0, map[int]observable.Pauli{
			q: observable.Z, q + 1: observable.Z,
		}))
	}
	return h
}

// RetryAfterDelay converts a 429's Retry-After hint into a sleep:
// the hinted whole seconds when present and sane (capped at 5s — a
// load client should not be parked indefinitely by one response),
// otherwise the caller's fallback backoff. Exported for the serve
// clients, which share the shed-handling behavior.
func RetryAfterDelay(h http.Header, fallback time.Duration) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return fallback
	}
	d := time.Duration(secs) * time.Second
	if max := 5 * time.Second; d > max {
		d = max
	}
	return d
}

// loadSubmitAndPoll pushes one job through the API and follows it to a
// terminal state with the ?wait_ms long-poll (one blocking GET per
// round instead of a tight 2 ms sleep-and-GET spin), honoring the
// server's Retry-After hint on queue-full responses. Returns the job
// id.
func loadSubmitAndPoll(client *http.Client, base string, req *service.SubmitRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var info service.JobInfo
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		status := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if status == http.StatusTooManyRequests && attempt < 200 {
			time.Sleep(RetryAfterDelay(resp.Header, time.Duration(attempt+1)*time.Millisecond))
			continue
		}
		if status != http.StatusAccepted {
			return "", fmt.Errorf("submit: HTTP %d", status)
		}
		if err != nil {
			return "", err
		}
		break
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		switch info.State {
		case service.StateDone:
			return info.ID, nil
		case service.StateFailed:
			return info.ID, fmt.Errorf("job %s failed: %s", info.ID, info.Error)
		}
		if time.Now().After(deadline) {
			return info.ID, fmt.Errorf("job %s: poll deadline exceeded in state %q", info.ID, info.State)
		}
		resp, err := client.Get(base + "/v1/jobs/" + info.ID + "?wait_ms=1000")
		if err != nil {
			return info.ID, err
		}
		status := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if status != http.StatusOK {
			return info.ID, fmt.Errorf("poll %s: HTTP %d", info.ID, status)
		}
		if err != nil {
			return info.ID, err
		}
	}
}

// resultHasTrace fetches one finished result and reports whether it
// carries a non-empty stage trace.
func resultHasTrace(client *http.Client, base, id string) bool {
	resp, err := client.Get(base + "/v1/results/" + id)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var rr service.ResultResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return false
	}
	return rr.Trace != nil && len(rr.Trace.Spans) > 0
}

func fetchLoadStats(client *http.Client, base string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return st, fmt.Errorf("stats: HTTP %d: %s", resp.StatusCode, b)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// scrapeMetrics fetches and parses one Prometheus text exposition:
// series keyed by "name{labels}" (or bare name), plus the set of
// family names declared by # TYPE lines.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, map[string]string, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics parses Prometheus text format into series values and
// family types. Exported for the CI gate and tests.
func ParseMetrics(r io.Reader) (series map[string]float64, families map[string]string, err error) {
	series = make(map[string]float64)
	families = make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// "# TYPE name kind"
			if len(fields) == 4 && fields[1] == "TYPE" {
				families[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, nil, fmt.Errorf("metrics: unparseable line %q", line)
		}
		key := line[:sp]
		v, perr := strconv.ParseFloat(line[sp+1:], 64)
		if perr != nil {
			return nil, nil, fmt.Errorf("metrics: bad value in %q: %v", line, perr)
		}
		series[key] = v
	}
	return series, families, sc.Err()
}
