package bench

import (
	"fmt"
	"math"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/observable"
)

// The sweep ablation column: the compile-once property as a measured
// quantity. One parameterized workload circuit is evaluated at many
// parameter points two ways — compile-per-point (each point bound into
// its own circuit and planned from scratch, what a fingerprint-keyed
// cache does today) and compile-once (one plan, rebound per point) —
// and the per-point ⟨H⟩ values are gated on exact bit-identity, like
// the tiled and mgpu columns gate on amplitudes and counts.

// SweepAblationRow is the "sweep" object of BENCH_*.json.
type SweepAblationRow struct {
	Hamiltonian string `json:"hamiltonian"`
	Points      int    `json:"points"`
	Params      int    `json:"params"`
	// PerPointSeconds times one full compile + execute per point;
	// CompileOnceSeconds times one compile plus a rebind + execute per
	// point (the RunSweep path).
	PerPointSeconds    float64 `json:"per_point_seconds"`
	CompileOnceSeconds float64 `json:"compile_once_seconds"`
	Speedup            float64 `json:"speedup"`
	// Rebinds/SweepCompiles report which path the sweep actually took:
	// a rebindable plan shows points rebinds and zero per-point
	// compiles.
	Rebinds       int `json:"rebinds"`
	SweepCompiles int `json:"sweep_compiles"`
	// BitIdentical is the gate: every compile-once value must equal its
	// compile-per-point counterpart to the last bit. MaxValueDelta is
	// the worst |Δ⟨H⟩| observed (0 when the gate holds).
	BitIdentical  bool    `json:"bit_identical"`
	MaxValueDelta float64 `json:"max_value_delta"`
}

// sweepAblationPoints sizes the sweep column: enough points that the
// per-point compile cost dominates, few enough to keep test runs fast.
func (r *Runner) sweepAblationPoints() int {
	if r.Large {
		return 256
	}
	return 32
}

// sweepAblate measures the sweep column for one parameterized workload
// circuit at the given tile width. Returns nil (column absent) for
// circuits with no parameter slots.
func (r *Runner) sweepAblate(c *circuit.Circuit, tileBits, points int) (*SweepAblationRow, error) {
	nParams := c.NumParams()
	if nParams == 0 {
		return nil, nil
	}
	h := observable.TransverseFieldIsing(c.NumQubits, 1.0, 0.7)
	row := &SweepAblationRow{
		Hamiltonian: fmt.Sprintf("tfim(n=%d, J=1, g=0.7)", c.NumQubits),
		Points:      points,
		Params:      nParams,
	}

	// Deterministic point matrix: the circuit's own values, each point
	// nudged by a distinct offset so every point is a distinct binding.
	base := c.ParamValues()
	pts := make([][]float64, points)
	for i := range pts {
		pt := make([]float64, nParams)
		off := 1e-3 * float64(i+1)
		for j, v := range base {
			pt[j] = v + off
		}
		pts[i] = pt
	}

	cfg := backend.Config{Target: backend.TargetNvidia, Workers: maxWorkers(r), TileBits: tileBits}

	// Compile-per-point arm: every point bound into its own circuit and
	// planned from scratch — the cost a fingerprint-keyed plan cache
	// pays for a sweep today.
	perPoint := make([]float64, points)
	var err error
	row.PerPointSeconds, err = measure(func() error {
		for i, pt := range pts {
			bound, err := c.BindParams(pt)
			if err != nil {
				return err
			}
			res, err := backend.RunExpectation(bound, h, cfg)
			if err != nil {
				return err
			}
			perPoint[i] = *res.ExpValue
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Compile-once arm: one plan, rebound per point.
	var sweep *backend.Result
	row.CompileOnceSeconds, err = measure(func() error {
		sweep, err = backend.RunSweep(c, h, pts, cfg)
		return err
	})
	if err != nil {
		return nil, err
	}
	row.Rebinds, row.SweepCompiles = sweep.Rebinds, sweep.SweepCompiles
	if row.CompileOnceSeconds > 0 {
		row.Speedup = row.PerPointSeconds / row.CompileOnceSeconds
	}

	row.BitIdentical = true
	for i, v := range sweep.SweepValues {
		if math.Float64bits(v) != math.Float64bits(perPoint[i]) {
			row.BitIdentical = false
		}
		if d := math.Abs(v - perPoint[i]); d > row.MaxValueDelta {
			row.MaxValueDelta = d
		}
	}
	return row, nil
}
