package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"qgear/internal/circuit"
	"qgear/internal/kernel"
	"qgear/internal/mgpu"
	"qgear/internal/qcrank"
	"qgear/internal/qft"
	"qgear/internal/qimage"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
)

// The tiling ablation: the same kernel executed twice on identical
// worker budgets — once through the per-gate sweep path (one barrier-
// synchronized memory pass per gate) and once through the cache-
// blocked tiled executor — with the outputs cross-checked amplitude-
// for-amplitude and shot-for-shot. This is the experiment behind the
// repo's perf-trajectory tracking: `make bench` runs it at paper-
// flavored sizes (QFT-24, a QCrank image encoding) and writes
// BENCH_qft.json / BENCH_qcrank.json next to the working directory.

// AblationRow is one workload's tiled-vs-per-gate measurement, in the
// shape BENCH_*.json records.
type AblationRow struct {
	Workload string `json:"workload"`
	Qubits   int    `json:"qubits"`
	Instrs   int    `json:"kernel_instrs"`
	TileBits int    `json:"tile_bits"`
	// TileBitsSource/TileCacheBytes record where the startup-detected
	// default tile width came from ("env", "l2", "l3", "default") and
	// the cache capacity the detection saw, so a BENCH json is
	// interpretable on the machine that produced it.
	TileBitsSource  string  `json:"tile_bits_source"`
	AutoTileBits    int     `json:"auto_tile_bits"`
	TileCacheBytes  int64   `json:"tile_cache_bytes,omitempty"`
	Workers         int     `json:"workers"`
	PerGateSeconds  float64 `json:"per_gate_seconds"`
	TiledSeconds    float64 `json:"tiled_seconds"`
	Speedup         float64 `json:"speedup"`
	TileLocalGates  int     `json:"tile_local_gates"`
	GlobalGates     int     `json:"global_gates"`
	Runs            int     `json:"runs"`
	BitSwaps        int     `json:"bit_swaps"`
	PermSwaps       int     `json:"perm_swaps"`
	Shots           int     `json:"shots"`
	MaxProbDiff     float64 `json:"max_prob_diff"`
	CountsIdentical bool    `json:"counts_identical"`
	// Scaling is the workers axis: the same tiled plan executed at 1,
	// 2, and 4 workers. The gate is BitIdentical — worker count must
	// not change a single amplitude bit. Timings are informational:
	// efficiency reflects the host's core count, so CI gates
	// correctness here and speed on the single-core columns above.
	Scaling []ScalingPoint `json:"scaling,omitempty"`
	// ScalingEfficiency is parallel speedup at the widest point
	// divided by its worker count (1.0 = perfect scaling).
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// MGPU is the distributed ablation on the same kernel: the
	// per-gate DistState path vs planned execution of the shared
	// TilePlan IR.
	MGPU *MGPUAblationRow `json:"mgpu,omitempty"`
	// Expectation is the observable-estimation column: exact ⟨TFIM⟩
	// on the resident state vs a shot-sampled two-basis estimate, with
	// cross-engine bit-identity enforced.
	Expectation *ExpectationAblationRow `json:"expectation,omitempty"`
	// Sweep is the compile-once column: the same parameterized circuit
	// evaluated at many points by per-point compilation vs one plan
	// rebound per point, gated on bit-identical per-point values.
	Sweep *SweepAblationRow `json:"sweep,omitempty"`
}

// MGPUAblationRow is the planned-mgpu ablation column: the same kernel
// on the distributed engine, gate-by-gate vs through the compiled
// plan, with the communication counters that explain the difference.
type MGPUAblationRow struct {
	Devices          int     `json:"devices"`
	WorkersPerRank   int     `json:"workers_per_rank"`
	TileBits         int     `json:"tile_bits"`
	PerGateSeconds   float64 `json:"per_gate_seconds"`
	PlannedSeconds   float64 `json:"planned_seconds"`
	Speedup          float64 `json:"speedup"`
	PerGateExchanges int     `json:"per_gate_exchanges"`
	PlannedExchanges int     `json:"planned_exchanges"`
	AvoidedExchanges int     `json:"avoided_exchanges"`
	ExchangeSegments int     `json:"exchange_segments"`
	ExchangeGates    int     `json:"exchange_gates"`
	RankLocalGlobals int     `json:"rank_local_globals"`
	PerGateBytesSent int64   `json:"per_gate_bytes_sent"`
	PlannedBytesSent int64   `json:"planned_bytes_sent"`
	MaxProbDiff      float64 `json:"max_prob_diff"`
	CountsIdentical  bool    `json:"counts_identical"`
}

// ScalingPoint is one workers-axis sample of the ablation: the tiled
// plan at a fixed worker count, with bit-identity checked against the
// workers=1 run of the same plan.
type ScalingPoint struct {
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	Speedup      float64 `json:"speedup"`       // vs the workers=1 point
	BitIdentical bool    `json:"bit_identical"` // amplitudes exactly match workers=1
}

// scalingWorkers is the workers axis every ablation row sweeps.
var scalingWorkers = []int{1, 2, 4}

// sameAmpBits reports exact bit equality of two amplitude vectors —
// tolerance-free, sign-of-zero included.
func sameAmpBits(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// crossCheck compares two probability vectors elementwise and draws
// fixed-seed shots from both, reporting the max deviation and whether
// the counts agree exactly — the equivalence verdict both ablation
// columns record.
func crossCheck(pA, pB []float64, shots int, seed uint64) (maxProbDiff float64, countsIdentical bool, err error) {
	for i := range pA {
		d := pA[i] - pB[i]
		if d < 0 {
			d = -d
		}
		if d > maxProbDiff {
			maxProbDiff = d
		}
	}
	cA, err := sampling.Sample(pA, shots, qmath.NewRNG(seed))
	if err != nil {
		return 0, false, err
	}
	cB, err := sampling.Sample(pB, shots, qmath.NewRNG(seed))
	if err != nil {
		return 0, false, err
	}
	countsIdentical = len(cA) == len(cB)
	if countsIdentical {
		for key, n := range cA {
			if cB[key] != n {
				countsIdentical = false
				break
			}
		}
	}
	return maxProbDiff, countsIdentical, nil
}

// ablate measures one kernel both ways and cross-checks the outputs.
func (r *Runner) ablate(name string, k *kernel.Kernel, tileBits, shots int) (AblationRow, error) {
	row := AblationRow{Workload: name, Qubits: k.NumQubits, Instrs: len(k.Instrs), TileBits: tileBits, Workers: maxWorkers(r), Shots: shots}
	autoBits, src, cacheBytes := kernel.TileBitsOrigin()
	row.AutoTileBits, row.TileBitsSource, row.TileCacheBytes = autoBits, src, cacheBytes

	plan, err := kernel.PlanTiled(k, tileBits)
	if err != nil {
		return row, err
	}
	row.TileLocalGates = plan.Stats.TileLocal
	row.GlobalGates = plan.Stats.Global
	row.Runs = plan.Stats.Runs
	row.BitSwaps = plan.Stats.BitSwaps
	row.PermSwaps = plan.Stats.PermSwaps

	// Both arms are timed through execute *and* readout: the tiled
	// executor defers its final qubit relabeling to the probability
	// pass, so stopping the clock before readout would hide real work
	// the per-gate path has already paid for.
	workers := maxWorkers(r)
	naive, err := statevec.New(k.NumQubits, workers)
	if err != nil {
		return row, err
	}
	var pNaive, pTiled []float64
	row.PerGateSeconds, err = measure(func() error {
		if err := kernel.Execute(k, naive); err != nil {
			return err
		}
		pNaive = naive.Probabilities()
		return nil
	})
	if err != nil {
		return row, err
	}
	tiled, err := statevec.New(k.NumQubits, workers)
	if err != nil {
		return row, err
	}
	row.TiledSeconds, err = measure(func() error {
		if err := plan.Execute(tiled); err != nil {
			return err
		}
		pTiled = tiled.Probabilities()
		return nil
	})
	if err != nil {
		return row, err
	}
	if row.TiledSeconds > 0 {
		row.Speedup = row.PerGateSeconds / row.TiledSeconds
	}
	// Equivalence: probabilities elementwise, and fixed-seed shot
	// counts drawn from both vectors must agree exactly.
	row.MaxProbDiff, row.CountsIdentical, err = crossCheck(pNaive, pTiled, shots, r.Seed)
	if err != nil {
		return row, err
	}

	// Workers axis: the same plan re-executed at each scaling worker
	// count. The reference state (workers=1) stays live so the
	// bit-identity comparison runs against its raw amplitudes; later
	// states are released as soon as they are checked.
	var ref *statevec.State
	var baseSeconds float64
	for _, w := range scalingWorkers {
		sv, err := statevec.New(k.NumQubits, w)
		if err != nil {
			return row, err
		}
		secs, err := measure(func() error { return plan.Execute(sv) })
		if err != nil {
			return row, err
		}
		pt := ScalingPoint{Workers: w, Seconds: secs}
		if ref == nil {
			ref, baseSeconds = sv, secs
			pt.Speedup, pt.BitIdentical = 1, true
		} else {
			pt.BitIdentical = sameAmpBits(ref.Amplitudes(), sv.Amplitudes())
			if secs > 0 {
				pt.Speedup = baseSeconds / secs
			}
		}
		row.Scaling = append(row.Scaling, pt)
	}
	if last := row.Scaling[len(row.Scaling)-1]; last.Workers > 0 {
		row.ScalingEfficiency = last.Speedup / float64(last.Workers)
	}
	return row, nil
}

// mgpuAblate measures the same kernel on the distributed engine both
// ways — gate-by-gate DistState vs planned execution of the shared
// TilePlan — and cross-checks the gathered distributions.
func (r *Runner) mgpuAblate(k *kernel.Kernel, tileBits, devices, shots int) (*MGPUAblationRow, error) {
	workersPerRank := maxWorkers(r) / devices
	if workersPerRank < 1 {
		workersPerRank = 1
	}
	m := &MGPUAblationRow{Devices: devices, WorkersPerRank: workersPerRank}

	gbits := int(qmath.Log2Ceil(uint64(devices)))
	plan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: tileBits, GlobalBits: gbits})
	if err != nil {
		return nil, err
	}
	m.TileBits = plan.TileBits
	m.ExchangeSegments = plan.Stats.ExchangeSegs
	m.ExchangeGates = plan.Stats.ExchangeGates
	m.RankLocalGlobals = plan.Stats.RankLocal

	var perGate, planned *mgpu.Result
	m.PerGateSeconds, err = measure(func() error {
		perGate, err = mgpu.SimulateKernel(k, devices, workersPerRank)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.PlannedSeconds, err = measure(func() error {
		planned, err = mgpu.SimulateCompiled(k, plan, devices, workersPerRank)
		return err
	})
	if err != nil {
		return nil, err
	}
	if m.PlannedSeconds > 0 {
		m.Speedup = m.PerGateSeconds / m.PlannedSeconds
	}
	m.PerGateExchanges = perGate.Exchanges
	m.PlannedExchanges = planned.Exchanges
	m.AvoidedExchanges = planned.AvoidedExchanges
	m.PerGateBytesSent = perGate.BytesSent
	m.PlannedBytesSent = planned.BytesSent
	m.MaxProbDiff, m.CountsIdentical, err = crossCheck(perGate.Probabilities, planned.Probabilities, shots, r.Seed)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// tilingWorkloads sizes the ablation. The Large sweep runs the
// acceptance sizes (QFT-24, a 20-qubit QCrank image encoding) with the
// startup-detected tile width; the default sweep shrinks both the
// states and the tile so tests exercise the same machinery in seconds.
func (r *Runner) tilingWorkloads() (qftQubits, qftTile, addrQubits, imgW, imgH, qcrankTile int) {
	if r.Large {
		return 24, kernel.AutoTileBits(), 10, 128, 80, kernel.AutoTileBits()
	}
	return 16, 10, 6, 32, 20, 10
}

// mgpuAblationDevices is the simulated device count of the
// planned-mgpu ablation column.
const mgpuAblationDevices = 4

// Tiling regenerates the tiled-executor ablation: per-gate sweeps vs
// cache-blocked tile runs on the two gate-run-dominated workloads of
// the paper's evaluation, QFT (cr1-dominated, Appendix D.2) and QCrank
// image encoding (Ry/CX-ladder-dominated, §3). When JSONDir is set the
// rows are also written as BENCH_qft.json / BENCH_qcrank.json.
func (r *Runner) Tiling() (Experiment, error) {
	exp := Experiment{ID: "tiling", Title: "tiled sweep executor ablation: one memory pass per gate-run vs per gate"}
	qftRow, qcRow, err := r.TilingRows()
	if err != nil {
		return exp, err
	}

	for _, row := range []AblationRow{qftRow, qcRow} {
		exp.Series = append(exp.Series, Series{
			Label: "measured: " + row.Workload, XLabel: "mode (1=per-gate, 2=tiled)", YLabel: "seconds",
			Points: []Point{{X: 1, Y: row.PerGateSeconds}, {X: 2, Y: row.TiledSeconds}},
		})
		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"%s: %.1fx speedup (%d instrs -> %d tile runs + %d global sweeps + %d relabel swaps; %d swaps free); max |Δp| %.2g, counts identical: %v",
			row.Workload, row.Speedup, row.Instrs, row.Runs, row.GlobalGates, row.BitSwaps, row.PermSwaps, row.MaxProbDiff, row.CountsIdentical))
		if m := row.MGPU; m != nil {
			exp.Series = append(exp.Series, Series{
				Label: "measured mgpu: " + row.Workload, XLabel: "mode (1=per-gate, 2=planned)", YLabel: "seconds",
				Points: []Point{{X: 1, Y: m.PerGateSeconds}, {X: 2, Y: m.PlannedSeconds}},
			})
			exp.Notes = append(exp.Notes, fmt.Sprintf(
				"%s mgpu x%d: %.1fx speedup; exchanges %d -> %d (%d avoided, %d segments over %d gates, %d rank-local); max |Δp| %.2g, counts identical: %v",
				row.Workload, m.Devices, m.Speedup, m.PerGateExchanges, m.PlannedExchanges,
				m.AvoidedExchanges, m.ExchangeSegments, m.ExchangeGates, m.RankLocalGlobals,
				m.MaxProbDiff, m.CountsIdentical))
		}
		if e := row.Expectation; e != nil {
			exp.Series = append(exp.Series, Series{
				Label: "measured expectation: " + row.Workload, XLabel: "mode (1=sampled, 2=exact)", YLabel: "seconds",
				Points: []Point{{X: 1, Y: e.SampledSeconds}, {X: 2, Y: e.ExactSeconds}},
			})
			exp.Notes = append(exp.Notes, fmt.Sprintf(
				"%s expectation %s (%d terms): exact ⟨H⟩ = %.6f in %.3fs vs sampled %.6f in %.3fs at %d shots (%.1fx, |err| %.2g); engine Δ = %g",
				row.Workload, e.Hamiltonian, e.Terms, e.ExactValue, e.ExactSeconds,
				e.SampledValue, e.SampledSeconds, e.Shots, e.SpeedupVsSampled, e.SampledAbsErr, e.MaxEngineDelta))
		}
		if sw := row.Sweep; sw != nil {
			exp.Series = append(exp.Series, Series{
				Label: "measured sweep: " + row.Workload, XLabel: "mode (1=compile-per-point, 2=compile-once)", YLabel: "seconds",
				Points: []Point{{X: 1, Y: sw.PerPointSeconds}, {X: 2, Y: sw.CompileOnceSeconds}},
			})
			exp.Notes = append(exp.Notes, fmt.Sprintf(
				"%s sweep %s: %d points over %d params, compile-once %.1fx (%d rebinds, %d per-point compiles); bit-identical: %v, max |Δ⟨H⟩| %.2g",
				row.Workload, sw.Hamiltonian, sw.Points, sw.Params, sw.Speedup,
				sw.Rebinds, sw.SweepCompiles, sw.BitIdentical, sw.MaxValueDelta))
		}
	}

	if r.JSONDir != "" {
		for _, out := range []struct {
			file string
			row  AblationRow
		}{
			{"BENCH_qft.json", qftRow},
			{"BENCH_qcrank.json", qcRow},
		} {
			buf, err := json.MarshalIndent(out.row, "", "  ")
			if err != nil {
				return exp, err
			}
			path := filepath.Join(r.JSONDir, out.file)
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				return exp, err
			}
			exp.Notes = append(exp.Notes, "wrote "+path)
		}
	}
	return exp, nil
}

// TilingRows measures the two ablation workloads and returns the raw
// rows; Tiling wraps them in the printable experiment. The QFT kernel
// runs with its reversal swaps (free table updates tiled, three CX
// sweeps each per-gate); QCrank runs one address split of a synthetic
// zebra image.
func (r *Runner) TilingRows() (qftRow, qcrankRow AblationRow, err error) {
	qftN, qftTile, addr, imgW, imgH, qcTile := r.tilingWorkloads()
	qftK, _, err := qft.Kernel(qftN, true, kernel.Options{})
	if err != nil {
		return
	}
	if qftRow, err = r.ablate(fmt.Sprintf("qft_%dq_reversed", qftN), qftK, qftTile, 4096); err != nil {
		return
	}
	if qftRow.MGPU, err = r.mgpuAblate(qftK, qftTile, mgpuAblationDevices, 4096); err != nil {
		return
	}
	if qftRow.Expectation, err = r.expectationAblate(qftK, qftTile, 4096); err != nil {
		return
	}
	var qftC *circuit.Circuit
	if qftC, err = qft.Circuit(qftN, true); err != nil {
		return
	}
	if qftRow.Sweep, err = r.sweepAblate(qftC, qftTile, r.sweepAblationPoints()); err != nil {
		return
	}
	var img *qimage.Image
	if img, err = qimage.Synthetic("zebra", imgW, imgH, r.Seed); err != nil {
		return
	}
	var plan qcrank.Plan
	if plan, err = qcrank.NewPlan(img.Pixels(), addr, localShotsPerAddr); err != nil {
		return
	}
	var qc *circuit.Circuit
	if qc, err = qcrank.Encode(img.Pix, plan, false); err != nil {
		return
	}
	var qcK *kernel.Kernel
	if qcK, _, err = kernel.FromCircuit(qc, kernel.Options{}); err != nil {
		return
	}
	if qcrankRow, err = r.ablate(fmt.Sprintf("qcrank_a%d_d%d", plan.AddrQubits, plan.DataQubits), qcK, qcTile, plan.Shots); err != nil {
		return
	}
	if qcrankRow.MGPU, err = r.mgpuAblate(qcK, qcTile, mgpuAblationDevices, plan.Shots); err != nil {
		return
	}
	if qcrankRow.Expectation, err = r.expectationAblate(qcK, qcTile, plan.Shots); err != nil {
		return
	}
	qcrankRow.Sweep, err = r.sweepAblate(qc, qcTile, r.sweepAblationPoints())
	return
}
