package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"qgear/internal/circuit"
	"qgear/internal/kernel"
	"qgear/internal/qcrank"
	"qgear/internal/qft"
	"qgear/internal/qimage"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
)

// The tiling ablation: the same kernel executed twice on identical
// worker budgets — once through the per-gate sweep path (one barrier-
// synchronized memory pass per gate) and once through the cache-
// blocked tiled executor — with the outputs cross-checked amplitude-
// for-amplitude and shot-for-shot. This is the experiment behind the
// repo's perf-trajectory tracking: `make bench` runs it at paper-
// flavored sizes (QFT-24, a QCrank image encoding) and writes
// BENCH_qft.json / BENCH_qcrank.json next to the working directory.

// AblationRow is one workload's tiled-vs-per-gate measurement, in the
// shape BENCH_*.json records.
type AblationRow struct {
	Workload        string  `json:"workload"`
	Qubits          int     `json:"qubits"`
	Instrs          int     `json:"kernel_instrs"`
	TileBits        int     `json:"tile_bits"`
	Workers         int     `json:"workers"`
	PerGateSeconds  float64 `json:"per_gate_seconds"`
	TiledSeconds    float64 `json:"tiled_seconds"`
	Speedup         float64 `json:"speedup"`
	TileLocalGates  int     `json:"tile_local_gates"`
	GlobalGates     int     `json:"global_gates"`
	Runs            int     `json:"runs"`
	BitSwaps        int     `json:"bit_swaps"`
	PermSwaps       int     `json:"perm_swaps"`
	Shots           int     `json:"shots"`
	MaxProbDiff     float64 `json:"max_prob_diff"`
	CountsIdentical bool    `json:"counts_identical"`
}

// ablate measures one kernel both ways and cross-checks the outputs.
func (r *Runner) ablate(name string, k *kernel.Kernel, tileBits, shots int) (AblationRow, error) {
	row := AblationRow{Workload: name, Qubits: k.NumQubits, Instrs: len(k.Instrs), TileBits: tileBits, Workers: maxWorkers(r), Shots: shots}

	plan, err := kernel.PlanTiled(k, tileBits)
	if err != nil {
		return row, err
	}
	row.TileLocalGates = plan.Stats.TileLocal
	row.GlobalGates = plan.Stats.Global
	row.Runs = plan.Stats.Runs
	row.BitSwaps = plan.Stats.BitSwaps
	row.PermSwaps = plan.Stats.PermSwaps

	// Both arms are timed through execute *and* readout: the tiled
	// executor defers its final qubit relabeling to the probability
	// pass, so stopping the clock before readout would hide real work
	// the per-gate path has already paid for.
	workers := maxWorkers(r)
	naive, err := statevec.New(k.NumQubits, workers)
	if err != nil {
		return row, err
	}
	var pNaive, pTiled []float64
	row.PerGateSeconds, err = measure(func() error {
		if err := kernel.Execute(k, naive); err != nil {
			return err
		}
		pNaive = naive.Probabilities()
		return nil
	})
	if err != nil {
		return row, err
	}
	tiled, err := statevec.New(k.NumQubits, workers)
	if err != nil {
		return row, err
	}
	row.TiledSeconds, err = measure(func() error {
		if err := plan.Execute(tiled); err != nil {
			return err
		}
		pTiled = tiled.Probabilities()
		return nil
	})
	if err != nil {
		return row, err
	}
	if row.TiledSeconds > 0 {
		row.Speedup = row.PerGateSeconds / row.TiledSeconds
	}
	// Equivalence: probabilities elementwise, and fixed-seed shot
	// counts drawn from both vectors must agree exactly.
	for i := range pNaive {
		d := pNaive[i] - pTiled[i]
		if d < 0 {
			d = -d
		}
		if d > row.MaxProbDiff {
			row.MaxProbDiff = d
		}
	}
	cNaive, err := sampling.Sample(pNaive, shots, qmath.NewRNG(r.Seed))
	if err != nil {
		return row, err
	}
	cTiled, err := sampling.Sample(pTiled, shots, qmath.NewRNG(r.Seed))
	if err != nil {
		return row, err
	}
	row.CountsIdentical = len(cNaive) == len(cTiled)
	if row.CountsIdentical {
		for key, n := range cNaive {
			if cTiled[key] != n {
				row.CountsIdentical = false
				break
			}
		}
	}
	return row, nil
}

// tilingWorkloads sizes the ablation. The Large sweep runs the
// acceptance sizes (QFT-24, a 20-qubit QCrank image encoding) with the
// production tile width; the default sweep shrinks both the states and
// the tile so tests exercise the same machinery in seconds.
func (r *Runner) tilingWorkloads() (qftQubits, qftTile, addrQubits, imgW, imgH, qcrankTile int) {
	if r.Large {
		return 24, kernel.DefaultTileBits, 10, 128, 80, kernel.DefaultTileBits
	}
	return 16, 10, 6, 32, 20, 10
}

// Tiling regenerates the tiled-executor ablation: per-gate sweeps vs
// cache-blocked tile runs on the two gate-run-dominated workloads of
// the paper's evaluation, QFT (cr1-dominated, Appendix D.2) and QCrank
// image encoding (Ry/CX-ladder-dominated, §3). When JSONDir is set the
// rows are also written as BENCH_qft.json / BENCH_qcrank.json.
func (r *Runner) Tiling() (Experiment, error) {
	exp := Experiment{ID: "tiling", Title: "tiled sweep executor ablation: one memory pass per gate-run vs per gate"}
	qftRow, qcRow, err := r.TilingRows()
	if err != nil {
		return exp, err
	}

	for _, row := range []AblationRow{qftRow, qcRow} {
		exp.Series = append(exp.Series, Series{
			Label: "measured: " + row.Workload, XLabel: "mode (1=per-gate, 2=tiled)", YLabel: "seconds",
			Points: []Point{{X: 1, Y: row.PerGateSeconds}, {X: 2, Y: row.TiledSeconds}},
		})
		exp.Notes = append(exp.Notes, fmt.Sprintf(
			"%s: %.1fx speedup (%d instrs -> %d tile runs + %d global sweeps + %d relabel swaps; %d swaps free); max |Δp| %.2g, counts identical: %v",
			row.Workload, row.Speedup, row.Instrs, row.Runs, row.GlobalGates, row.BitSwaps, row.PermSwaps, row.MaxProbDiff, row.CountsIdentical))
	}

	if r.JSONDir != "" {
		for _, out := range []struct {
			file string
			row  AblationRow
		}{
			{"BENCH_qft.json", qftRow},
			{"BENCH_qcrank.json", qcRow},
		} {
			buf, err := json.MarshalIndent(out.row, "", "  ")
			if err != nil {
				return exp, err
			}
			path := filepath.Join(r.JSONDir, out.file)
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				return exp, err
			}
			exp.Notes = append(exp.Notes, "wrote "+path)
		}
	}
	return exp, nil
}

// TilingRows measures the two ablation workloads and returns the raw
// rows; Tiling wraps them in the printable experiment. The QFT kernel
// runs with its reversal swaps (free table updates tiled, three CX
// sweeps each per-gate); QCrank runs one address split of a synthetic
// zebra image.
func (r *Runner) TilingRows() (qftRow, qcrankRow AblationRow, err error) {
	qftN, qftTile, addr, imgW, imgH, qcTile := r.tilingWorkloads()
	qftK, _, err := qft.Kernel(qftN, true, kernel.Options{})
	if err != nil {
		return
	}
	if qftRow, err = r.ablate(fmt.Sprintf("qft_%dq_reversed", qftN), qftK, qftTile, 4096); err != nil {
		return
	}
	var img *qimage.Image
	if img, err = qimage.Synthetic("zebra", imgW, imgH, r.Seed); err != nil {
		return
	}
	var plan qcrank.Plan
	if plan, err = qcrank.NewPlan(img.Pixels(), addr, localShotsPerAddr); err != nil {
		return
	}
	var qc *circuit.Circuit
	if qc, err = qcrank.Encode(img.Pix, plan, false); err != nil {
		return
	}
	var qcK *kernel.Kernel
	if qcK, _, err = kernel.FromCircuit(qc, kernel.Options{}); err != nil {
		return
	}
	qcrankRow, err = r.ablate(fmt.Sprintf("qcrank_a%d_d%d", plan.AddrQubits, plan.DataQubits), qcK, qcTile, plan.Shots)
	return
}
