package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateRow(speedup float64) AblationRow {
	return AblationRow{
		Workload: "qft_16q_reversed", Qubits: 16, Speedup: speedup,
		PerGateSeconds: 1.0, MaxProbDiff: 0, CountsIdentical: true,
		MGPU: &MGPUAblationRow{Devices: 4, Speedup: speedup, PerGateSeconds: 1.0,
			MaxProbDiff: 0, CountsIdentical: true, PlannedExchanges: 8},
	}
}

// TestCompareAblationTolerance: the gate passes inside the tolerance
// band and fails beyond it.
func TestCompareAblationTolerance(t *testing.T) {
	base := gateRow(2.0)
	if fails := CompareAblation(gateRow(1.7), base, 0.20); len(fails) != 0 {
		t.Fatalf("15%% regression inside a 20%% tolerance failed: %v", fails)
	}
	fresh := gateRow(1.5) // 25% down: tiled fails, mgpu rides its 2x band
	fails := CompareAblation(fresh, base, 0.20)
	if len(fails) != 1 {
		t.Fatalf("25%% regression not caught exactly once (mgpu has a doubled band): %v", fails)
	}
	fresh = gateRow(1.0) // 50% down: both columns regress
	if fails := CompareAblation(fresh, base, 0.20); len(fails) != 2 {
		t.Fatalf("50%% regression not caught on both columns: %v", fails)
	}
	fresh = gateRow(1.5)
	for _, f := range fails {
		if !strings.Contains(f, "regressed") {
			t.Fatalf("unexpected failure message %q", f)
		}
	}
	// Improvement is never a failure.
	if fails := CompareAblation(gateRow(3.0), base, 0.20); len(fails) != 0 {
		t.Fatalf("speedup improvement flagged: %v", fails)
	}
}

// TestCompareAblationNoiseFloor: sub-50ms arms are too jittery to gate
// on timing — only the deterministic checks apply.
func TestCompareAblationNoiseFloor(t *testing.T) {
	base := gateRow(2.0)
	fresh := gateRow(0.5) // terrible ratio...
	fresh.PerGateSeconds = 0.01
	fresh.MGPU.PerGateSeconds = 0.01 // ...but both arms ran for ~10ms
	if fails := CompareAblation(fresh, base, 0.20); len(fails) != 0 {
		t.Fatalf("noise-floor runs were gated on timing: %v", fails)
	}
	fresh.MaxProbDiff = 1 // bit-identity still applies below the floor
	if fails := CompareAblation(fresh, base, 0.20); len(fails) == 0 {
		t.Fatal("bit-identity skipped below the noise floor")
	}
}

// TestCompareAblationEquivalenceStrict: bit-identity failures are
// never tolerated, whatever the timing looks like.
func TestCompareAblationEquivalenceStrict(t *testing.T) {
	base := gateRow(2.0)
	fresh := gateRow(2.5)
	fresh.MaxProbDiff = 1e-16
	if fails := CompareAblation(fresh, base, 0.20); len(fails) == 0 {
		t.Fatal("nonzero max |Δp| passed the gate")
	}
	fresh = gateRow(2.5)
	fresh.CountsIdentical = false
	if fails := CompareAblation(fresh, base, 0.20); len(fails) == 0 {
		t.Fatal("differing shot counts passed the gate")
	}
	fresh = gateRow(2.5)
	fresh.MGPU.PlannedExchanges = 100
	if fails := CompareAblation(fresh, base, 0.20); len(fails) == 0 {
		t.Fatal("exchange-count growth passed the gate")
	}
}

// TestCompareAblationScalingGate: the workers axis gates bit-identity
// only — a non-identical point fails whatever the timing, scaling
// timings are never gated, and baselines predating the scaling column
// are tolerated.
func TestCompareAblationScalingGate(t *testing.T) {
	scaled := func(identical bool) AblationRow {
		r := gateRow(2.0)
		r.Scaling = []ScalingPoint{
			{Workers: 1, Seconds: 1.0, Speedup: 1, BitIdentical: true},
			{Workers: 2, Seconds: 0.9, Speedup: 1.11, BitIdentical: true},
			{Workers: 4, Seconds: 1.2, Speedup: 0.83, BitIdentical: identical},
		}
		r.ScalingEfficiency = 0.21
		return r
	}
	// Old baseline (no scaling), fresh run with the column: passes —
	// including with sub-linear (even regressive) scaling timings.
	base := gateRow(2.0)
	if fails := CompareAblation(scaled(true), base, 0.20); len(fails) != 0 {
		t.Fatalf("scaling column rejected against a pre-scaling baseline: %v", fails)
	}
	// Bit-identity broken at one worker count: always a failure.
	fails := CompareAblation(scaled(false), base, 0.20)
	if len(fails) != 1 || !strings.Contains(fails[0], "workers=4") {
		t.Fatalf("non-identical scaling point not caught: %v", fails)
	}
	// Baseline with a scaling column, fresh run without: the axis was
	// dropped — a gate failure.
	if fails := CompareAblation(gateRow(2.0), scaled(true), 0.20); len(fails) == 0 {
		t.Fatal("dropped scaling column passed the gate")
	}
}

// TestCompareAblationSizeMismatch: comparing different workload sizes
// is refused — speedups across sizes are meaningless.
func TestCompareAblationSizeMismatch(t *testing.T) {
	base := gateRow(2.0)
	fresh := gateRow(2.0)
	fresh.Qubits = 24
	fails := CompareAblation(fresh, base, 0.20)
	if len(fails) != 1 || !strings.Contains(fails[0], "mismatch") {
		t.Fatalf("size mismatch not refused: %v", fails)
	}
}

// TestGateEndToEnd drives the file-level comparator both ways.
func TestGateEndToEnd(t *testing.T) {
	freshDir, baseDir := t.TempDir(), t.TempDir()
	write := func(dir string, qft, qcrank AblationRow) {
		for _, f := range []struct {
			name string
			row  AblationRow
		}{{"BENCH_qft.json", qft}, {"BENCH_qcrank.json", qcrank}} {
			buf, err := json.Marshal(f.row)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, f.name), buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	qc := gateRow(2.4)
	qc.Workload, qc.Qubits = "qcrank_a6_d10", 16
	write(baseDir, gateRow(2.0), qc)
	write(freshDir, gateRow(1.9), qc)
	if err := Gate(freshDir, baseDir, 0.20); err != nil {
		t.Fatalf("healthy run failed the gate: %v", err)
	}
	write(freshDir, gateRow(1.0), qc)
	if err := Gate(freshDir, baseDir, 0.20); err == nil {
		t.Fatal("halved speedup passed the gate")
	}
	if err := Gate(t.TempDir(), baseDir, 0.20); err == nil {
		t.Fatal("missing fresh artifacts passed the gate")
	}
}
