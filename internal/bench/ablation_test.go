package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTilingAblation checks the deterministic properties of the
// ablation (wall-clock ratios are reported, not asserted — see the
// timingReliable note at the top of bench_test.go): both executors
// must produce identical distributions and identical fixed-seed shot
// counts, and the plan must actually collapse memory passes.
func TestTilingAblation(t *testing.T) {
	r := testRunner()
	qftRow, qcRow, err := r.TilingRows()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []AblationRow{qftRow, qcRow} {
		if row.MaxProbDiff > 1e-12 {
			t.Errorf("%s: max prob diff %g > 1e-12", row.Workload, row.MaxProbDiff)
		}
		if !row.CountsIdentical {
			t.Errorf("%s: fixed-seed shot counts differ between executors", row.Workload)
		}
		if row.PerGateSeconds <= 0 || row.TiledSeconds <= 0 {
			t.Errorf("%s: non-positive timings %g / %g", row.Workload, row.PerGateSeconds, row.TiledSeconds)
		}
		passes := row.Runs + row.GlobalGates + row.BitSwaps
		if passes*3 >= row.Instrs {
			t.Errorf("%s: %d memory passes for %d instructions — tiling did not collapse the stream",
				row.Workload, passes, row.Instrs)
		}
	}
	// The planned-mgpu column: bit-identical to the per-gate
	// distributed path, with strictly less communication.
	for _, row := range []AblationRow{qftRow, qcRow} {
		m := row.MGPU
		if m == nil {
			t.Fatalf("%s: missing mgpu ablation column", row.Workload)
		}
		if m.MaxProbDiff > 1e-12 {
			t.Errorf("%s mgpu: max prob diff %g > 1e-12", row.Workload, m.MaxProbDiff)
		}
		if !m.CountsIdentical {
			t.Errorf("%s mgpu: fixed-seed shot counts differ between executors", row.Workload)
		}
		if m.PlannedExchanges > m.PerGateExchanges {
			t.Errorf("%s mgpu: planned exchanges %d exceed per-gate %d",
				row.Workload, m.PlannedExchanges, m.PerGateExchanges)
		}
		// Every workload must show some communication win: rank-local
		// resolution (QFT's cr1 mass) or exchange batching (QCrank's
		// ladders).
		if m.RankLocalGlobals == 0 && m.AvoidedExchanges == 0 {
			t.Errorf("%s mgpu: neither rank-local ops nor avoided exchanges", row.Workload)
		}
		// Tile-bits provenance metadata must be present.
		if row.TileBitsSource == "" || row.AutoTileBits == 0 {
			t.Errorf("%s: missing tile-bits provenance (%q/%d)", row.Workload, row.TileBitsSource, row.AutoTileBits)
		}
	}
	// The sweep column: compile-once per-point values must be
	// bit-identical to compile-per-point, and a rebindable plan must
	// actually rebind (zero per-point compiles).
	for _, row := range []AblationRow{qftRow, qcRow} {
		sw := row.Sweep
		if sw == nil {
			t.Fatalf("%s: missing sweep ablation column", row.Workload)
		}
		if !sw.BitIdentical {
			t.Errorf("%s sweep: compile-once values differ from compile-per-point (max Δ %g)",
				row.Workload, sw.MaxValueDelta)
		}
		if sw.Rebinds != sw.Points || sw.SweepCompiles != 0 {
			t.Errorf("%s sweep: want %d rebinds and 0 per-point compiles, got %d/%d",
				row.Workload, sw.Points, sw.Rebinds, sw.SweepCompiles)
		}
	}
	// QFT reversal swaps must ride the permutation table.
	if qftRow.PermSwaps == 0 {
		t.Error("qft: no swaps absorbed into the permutation table")
	}
	// QCrank's high data qubits must be relabeled, not swept.
	if qcRow.BitSwaps == 0 {
		t.Error("qcrank: no relabeling bit-swaps planned")
	}
	// QCrank's Ry/CX ladders on rank-bit data qubits must batch into
	// exchange segments, cutting real communication.
	if m := qcRow.MGPU; m.ExchangeSegments == 0 || m.AvoidedExchanges == 0 {
		t.Errorf("qcrank mgpu: expected batched exchange segments (segs=%d avoided=%d)",
			m.ExchangeSegments, m.AvoidedExchanges)
	} else if m.PlannedExchanges >= m.PerGateExchanges {
		t.Errorf("qcrank mgpu: batching did not reduce exchanges (%d vs %d)",
			m.PlannedExchanges, m.PerGateExchanges)
	}
	if qcRow.GlobalGates > qcRow.Qubits {
		t.Errorf("qcrank: %d global sweeps, want at most ~%d", qcRow.GlobalGates, qcRow.Qubits)
	}
}

// TestTilingJSONEmission checks the BENCH_*.json artifacts.
func TestTilingJSONEmission(t *testing.T) {
	r := testRunner()
	r.JSONDir = t.TempDir()
	var buf bytes.Buffer
	if err := r.Run("tiling", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("tiling output missing speedup note")
	}
	for _, f := range []string{"BENCH_qft.json", "BENCH_qcrank.json"} {
		data, err := os.ReadFile(filepath.Join(r.JSONDir, f))
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		for _, key := range []string{`"speedup"`, `"tile_bits"`, `"counts_identical": true`,
			`"tile_bits_source"`, `"mgpu"`, `"exchange_segments"`, `"avoided_exchanges"`,
			`"sweep"`, `"bit_identical": true`} {
			if !strings.Contains(string(data), key) {
				t.Errorf("%s missing %s", f, key)
			}
		}
	}
}
