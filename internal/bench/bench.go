// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§3, Figs. 1 and 4–6, Tables 1
// and 2, Appendix C, Theorem B.3). Each experiment combines:
//
//   - measured runs of the real Go engine at locally feasible sizes
//     (the 21 GB / 24-core box replaces the Perlmutter node), and
//   - modeled paper-scale points from the calibrated hardware model
//     (internal/cluster), so the printed series cover the paper's
//     qubit ranges.
//
// The printed output is row/series-oriented: the same numbers the
// paper plots, with paper-vs-measured shape notes. EXPERIMENTS.md is
// generated from these runs.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"qgear/internal/cluster"
	"qgear/internal/qmath"
)

// Point is one (x, y) sample with an optional error bar.
type Point struct {
	X, Y float64
	Err  float64
}

// Series is one labeled curve of an experiment figure.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	Points []Point
}

// Print renders the series as aligned rows.
func (s Series) Print(w io.Writer) {
	fmt.Fprintf(w, "  series %q (%s vs %s)\n", s.Label, s.YLabel, s.XLabel)
	for _, p := range s.Points {
		if p.Err > 0 {
			fmt.Fprintf(w, "    %12.4g  %14.6g  ±%.2g\n", p.X, p.Y, p.Err)
		} else {
			fmt.Fprintf(w, "    %12.4g  %14.6g\n", p.X, p.Y)
		}
	}
}

// Table is a printable table artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Print renders the table with column alignment.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "  table: %s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprint(w, "    ")
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

// Experiment bundles one paper artifact's regenerated data.
type Experiment struct {
	ID     string // e.g. "fig4a"
	Title  string
	Series []Series
	Tables []Table
	Notes  []string
}

// Print renders the experiment.
func (e Experiment) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	for _, s := range e.Series {
		s.Print(w)
	}
	for _, t := range e.Tables {
		t.Print(w)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner configures and executes experiments.
type Runner struct {
	// Model is the paper-scale hardware model (defaults to Perlmutter).
	Model *cluster.Cluster
	// Seed drives all randomness.
	Seed uint64
	// Large widens the measured local sweeps (slower, closer shapes);
	// enabled by the QGEAR_LARGE=1 environment or -qgear.large flag in
	// benches.
	Large bool
	// Workers caps the GPU-stand-in parallelism (0 = NumCPU).
	Workers int
	// JSONDir, when set, makes machine-readable experiments (the
	// tiling ablation) write BENCH_*.json files there.
	JSONDir string
}

// NewRunner returns a Runner with the Perlmutter model.
func NewRunner(seed uint64) *Runner {
	return &Runner{Model: cluster.Perlmutter(), Seed: seed}
}

// rng derives a deterministic stream per experiment.
func (r *Runner) rng(salt uint64) *qmath.RNG { return qmath.NewRNG(r.Seed*1315423911 + salt) }

// measure times fn once and returns seconds.
func measure(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}

// fitExponentBase2 returns b from a least-squares fit y ≈ a·2^(b·x) —
// used to verify the ~2^n scaling claims.
func fitExponentBase2(points []Point) float64 {
	n := float64(len(points))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		ly := math.Log2(p.Y)
		sx += p.X
		sy += ly
		sxx += p.X * p.X
		sxy += p.X * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Registry maps experiment ids to their runners.
func (r *Runner) Registry() map[string]func() (Experiment, error) {
	return map[string]func() (Experiment, error){
		"fig1":   r.Fig1,
		"fig4a":  r.Fig4a,
		"fig4b":  r.Fig4b,
		"fig4c":  r.Fig4c,
		"fig5":   r.Fig5,
		"fig6":   r.Fig6,
		"table1": r.Table1,
		"table2": r.Table2,
		"appC":   r.AppendixC,
		"thmB3":  r.TheoremB3,
		"mqpu":   r.Mqpu,
		"tiling": r.Tiling,
	}
}

// IDs returns the experiment ids in stable order.
func (r *Runner) IDs() []string {
	reg := r.Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment and prints it to w.
func (r *Runner) RunAll(w io.Writer) error {
	for _, id := range r.IDs() {
		exp, err := r.Registry()[id]()
		if err != nil {
			return fmt.Errorf("bench: %s: %w", id, err)
		}
		exp.Print(w)
	}
	return nil
}

// Run executes one experiment by id and prints it to w.
func (r *Runner) Run(id string, w io.Writer) error {
	fn, ok := r.Registry()[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have: %s)", id, strings.Join(r.IDs(), ", "))
	}
	exp, err := fn()
	if err != nil {
		return fmt.Errorf("bench: %s: %w", id, err)
	}
	exp.Print(w)
	return nil
}
