package bench

import (
	"bytes"
	"fmt"
	"runtime"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/cluster"
	"qgear/internal/hdf5"
	"qgear/internal/qcrank"
	"qgear/internal/qimage"
	"qgear/internal/randcirc"
	"qgear/internal/tensorenc"
)

// backendWorkers reports the default GPU-stand-in parallelism.
func backendWorkers() int { return runtime.NumCPU() }

// localImageConfigs are the measured Fig. 5/6 mini-workloads: scaled
// versions of the paper's images small enough for local state vectors
// (total qubits = addr + data ≤ 16).
// The address splits put the circuits at 16-18 total qubits — large
// enough that the parallel engine is past its cache-locality
// crossover, mirroring how GPU advantage needs states past the
// kernel-launch floor.
var localImageConfigs = []struct {
	kind string
	w, h int
	addr int
}{
	{"finger", 32, 20, 6},   // 640 px  -> 16 qubits
	{"shoes", 40, 32, 7},    // 1280 px -> 17 qubits
	{"building", 48, 48, 8}, // 2304 px -> 17 qubits
	{"zebra", 64, 40, 8},    // 2560 px -> 18 qubits
}

// localShotsPerAddr keeps measured sampling fast; the paper's 3,000 is
// used in the modeled series.
const localShotsPerAddr = 200

// Fig5 regenerates Fig. 5: QCrank image-encoding simulation time,
// Qiskit-on-CPU vs Q-GEAR-on-1-GPU, vs image size — measured at mini
// scale, modeled at Table 2 scale with ~5% error bars.
func (r *Runner) Fig5() (Experiment, error) {
	exp := Experiment{ID: "fig5", Title: "QCrank image encoding: CPU node vs 1 GPU vs image size"}

	mcpu := Series{Label: "measured: cpu-serial", XLabel: "pixels", YLabel: "seconds"}
	mgpu := Series{Label: "measured: gpu-parallel", XLabel: "pixels", YLabel: "seconds"}
	for _, cfg := range localImageConfigs {
		img, err := qimage.Synthetic(cfg.kind, cfg.w, cfg.h, r.Seed)
		if err != nil {
			return exp, err
		}
		plan, err := qcrank.NewPlan(img.Pixels(), cfg.addr, localShotsPerAddr)
		if err != nil {
			return exp, err
		}
		c, err := qcrank.Encode(img.Pix, plan, true)
		if err != nil {
			return exp, err
		}
		for _, tgt := range []backend.Target{backend.TargetAer, backend.TargetNvidia} {
			// Serial unfused CPU baseline vs parallel+fused GPU path —
			// the same two mechanisms the paper's Fig. 5 compares.
			cfg := backend.Config{Target: tgt, Workers: 1, Shots: plan.Shots, Seed: r.Seed}
			if tgt == backend.TargetNvidia {
				cfg.Workers = r.Workers
				cfg.FusionWindow = 4
			}
			sec, err := measure(func() error {
				res, err := backend.Run(c, cfg)
				if err != nil {
					return err
				}
				_, _, err = qcrank.DecodeCounts(res.Counts, plan)
				return err
			})
			if err != nil {
				return exp, err
			}
			p := Point{X: float64(img.Pixels()), Y: sec}
			if tgt == backend.TargetAer {
				mcpu.Points = append(mcpu.Points, p)
			} else {
				mgpu.Points = append(mgpu.Points, p)
			}
		}
	}
	exp.Series = append(exp.Series, mcpu, mgpu)

	// Modeled Table 2 scale. QCrank circuits run fp64 (Table 1) and
	// their gate count is the pixel count (1 CX + 1 Ry per pixel).
	rows, err := qcrank.Table2()
	if err != nil {
		return exp, err
	}
	jrng := r.rng(5)
	mc := Series{Label: "model: qiskit CPU node", XLabel: "pixels", YLabel: "minutes"}
	mg := Series{Label: "model: q-gear 1 GPU", XLabel: "pixels", YLabel: "minutes"}
	// One point per distinct image size; the zebra point uses the
	// 15-address-qubit split (Table 2's last row), whose 98M shots
	// push the GPU into its serial-sampling regime — the mechanism
	// behind the paper's shrinking speedup.
	for _, row := range []qcrank.Table2Row{rows[0], rows[1], rows[2], rows[5]} {
		plan, err := qcrank.NewPlan(row.GrayPixels, row.AddrQubits, qcrank.DefaultShotsPerAddress)
		if err != nil {
			return exp, err
		}
		w := cluster.Workload{
			Qubits:    plan.TotalQubits(),
			Gates:     2 * plan.PaddedPixels,
			Precision: cluster.FP64,
			Shots:     plan.Shots,
		}
		cpuSec, err := r.Model.EstimateCPUSeconds(w)
		if err != nil {
			return exp, err
		}
		gpuSec, err := r.Model.EstimateGPUSeconds(w, 1)
		if err != nil {
			return exp, err
		}
		mc.Points = append(mc.Points, Point{X: float64(row.GrayPixels), Y: r.Model.Jitter(cpuSec, jrng) / 60, Err: cpuSec * 0.05 / 60})
		mg.Points = append(mg.Points, Point{X: float64(row.GrayPixels), Y: r.Model.Jitter(gpuSec, jrng) / 60, Err: gpuSec * 0.05 / 60})
	}
	exp.Series = append(exp.Series, mc, mg)
	firstRatio := mc.Points[0].Y / mg.Points[0].Y
	lastRatio := mc.Points[len(mc.Points)-1].Y / mg.Points[len(mg.Points)-1].Y
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("model speedup shrinks with image size: %.0fx at %dk px -> %.1fx at %dk px (paper: ~100x shrinking; GPU samples serially, CPU across 128 cores)",
			firstRatio, int(mc.Points[0].X/1000), lastRatio, int(mc.Points[len(mc.Points)-1].X/1000)),
		"running time scales with pixel count because CX count equals pixel count (paper Fig. 5 caption)")
	return exp, nil
}

// Fig6 regenerates the Fig. 6 reconstruction benchmark: encode each
// (synthetic) image, sample, decode, and report the residual metrics
// of the per-image panels.
func (r *Runner) Fig6() (Experiment, error) {
	exp := Experiment{ID: "fig6", Title: "QCrank image reconstruction quality (shot-limited)"}
	tbl := Table{
		Title:  "reconstruction metrics per image (synthetic stand-ins, scaled sizes)",
		Header: []string{"image", "pixels", "qubits", "2q-gates", "shots", "MAE", "RMSE", "max|err|", "corr"},
	}
	for _, cfg := range localImageConfigs {
		img, err := qimage.Synthetic(cfg.kind, cfg.w, cfg.h, r.Seed)
		if err != nil {
			return exp, err
		}
		shotsPerAddr := 3000 // the paper's s for the quality benchmark
		plan, err := qcrank.NewPlan(img.Pixels(), cfg.addr, shotsPerAddr)
		if err != nil {
			return exp, err
		}
		c, err := qcrank.Encode(img.Pix, plan, true)
		if err != nil {
			return exp, err
		}
		res, err := backend.Run(c, backend.Config{Target: backend.TargetNvidia, Workers: r.Workers, FusionWindow: 4, Shots: plan.Shots, Seed: r.Seed})
		if err != nil {
			return exp, err
		}
		vals, missing, err := qcrank.DecodeCounts(res.Counts, plan)
		if err != nil {
			return exp, err
		}
		if len(missing) > 0 {
			return exp, fmt.Errorf("fig6: %s: %d unsampled addresses", cfg.kind, len(missing))
		}
		reco := img.Clone()
		copy(reco.Pix, vals)
		m, err := qimage.Compare(img, reco)
		if err != nil {
			return exp, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			cfg.kind,
			fmt.Sprintf("%d", img.Pixels()),
			fmt.Sprintf("%d", plan.TotalQubits()),
			fmt.Sprintf("%d", plan.TwoQubitGates()),
			fmt.Sprintf("%d", plan.Shots),
			fmt.Sprintf("%.4f", m.MAE),
			fmt.Sprintf("%.4f", m.RMSE),
			fmt.Sprintf("%.4f", m.MaxAbsErr),
			fmt.Sprintf("%.4f", m.Correlation),
		})
	}
	exp.Tables = append(exp.Tables, tbl)
	exp.Notes = append(exp.Notes,
		"residuals are shot-noise limited: per-pixel sigma ~ 1/sqrt(shots/address) (paper Fig. 6 residual panels show the same +-0.05 band at s=3000)",
		"images are procedural stand-ins at reduced size; QCrank accuracy depends only on shot statistics, not content")
	return exp, nil
}

// Table1 regenerates Table 1: the experiment-configuration summary.
func (r *Runner) Table1() (Experiment, error) {
	exp := Experiment{ID: "table1", Title: "experiment configurations (paper Table 1)"}
	exp.Tables = append(exp.Tables, Table{
		Title:  "Q-GEAR experiments on CPU/GPU HPC (paper values; reproduced by the listed experiment ids)",
		Header: []string{"task", "objective", "qubits", "max gate depth", "shots", "precision", "input size", "reproduced by"},
		Rows: [][]string{
			{"random entangled circuits", "speed-up analysis", "28-34", "10000", "3000", "fp32/fp64", "100/10k CX-block", "fig4a"},
			{"random entangled circuits", "scalability analysis", "42", "3000", "10000", "fp32", "3000 CX-block", "fig4b"},
			{"QFT transform", "precision performance", "16-33", "528", "100", "fp32/fp64", "65K-8B bits", "fig4c"},
			{"quantum image encoding", "speed-up analysis", "15-25", "98000", "3M-98M", "fp64", "5K-98K pixels", "fig5"},
			{"quantum image encoding", "reconstruction performance", "15-25", "98000", "3M-98M", "fp64", "5K-98K pixels", "fig6, table2"},
		},
	})
	exp.Notes = append(exp.Notes, "hardware columns (EPYC 7763 / A100 / Slingshot-11) are carried by the cluster model (internal/cluster); local measurements run the Go engine on this machine")
	return exp, nil
}

// Table2 regenerates Table 2: QCrank circuit configurations per image.
func (r *Runner) Table2() (Experiment, error) {
	exp := Experiment{ID: "table2", Title: "QCrank circuit configurations (paper Table 2)"}
	rows, err := qcrank.Table2()
	if err != nil {
		return exp, err
	}
	tbl := Table{
		Title:  "derived from image dimensions and address-qubit choices (s=3000 shots/address)",
		Header: []string{"image", "dimensions", "gray pixels", "address qubits", "data qubits", "shots"},
	}
	for _, row := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			row.Image,
			fmt.Sprintf("%dx%d", row.W, row.H),
			fmt.Sprintf("%d", row.GrayPixels),
			fmt.Sprintf("%d", row.AddrQubits),
			fmt.Sprintf("%d", row.DataQubits),
			fmt.Sprintf("%d", row.Shots),
		})
	}
	exp.Tables = append(exp.Tables, tbl)
	return exp, nil
}

// AppendixC regenerates the Appendix C claims: tensor-encoding time at
// fixed capacity is nearly independent of circuit complexity, and HDF5
// compression saves substantial space losslessly.
func (r *Runner) AppendixC() (Experiment, error) {
	exp := Experiment{ID: "appC", Title: "HDF5 constant-time encoding and compression (Appendix C)"}
	nCirc := 50
	if r.Large {
		nCirc = 200
	}
	const capacity = 1500
	s := Series{Label: "measured: encode time at fixed capacity", XLabel: "gates per circuit", YLabel: "seconds"}
	var times []float64
	for _, blocks := range []int{20, 100, 500} {
		circs, err := randcirc.GenerateList(10, blocks, nCirc, r.Seed)
		if err != nil {
			return exp, err
		}
		sec, err := measure(func() error {
			_, err := tensorenc.Encode(circs, capacity)
			return err
		})
		if err != nil {
			return exp, err
		}
		s.Points = append(s.Points, Point{X: float64(blocks * randcirc.GatesPerBlock), Y: sec})
		times = append(times, sec)
	}
	exp.Series = append(exp.Series, s)
	spread := times[2] / times[0]

	// Compression ratio on a real encoding.
	circs, err := randcirc.GenerateList(10, 200, nCirc, r.Seed)
	if err != nil {
		return exp, err
	}
	enc, err := tensorenc.Encode(circs, capacity)
	if err != nil {
		return exp, err
	}
	f, err := enc.ToHDF5("circuits")
	if err != nil {
		return exp, err
	}
	var plain, comp bytes.Buffer
	if err := f.Save(&plain, hdf5.SaveOptions{Compression: hdf5.CompressionNone}); err != nil {
		return exp, err
	}
	if err := f.Save(&comp, hdf5.SaveOptions{Compression: hdf5.CompressionFlate}); err != nil {
		return exp, err
	}
	saving := 1 - float64(comp.Len())/float64(plain.Len())
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("encode-time spread across 25x gate-count range: %.2fx (paper: 'nearly constant, regardless of circuit complexity')", spread),
		fmt.Sprintf("flate compression saves %.0f%% on the circuit tensors losslessly (paper: 'up to 50%%')", saving*100))
	return exp, nil
}

// TheoremB3 measures the Appendix B scaling theorem on the real
// engine: serial per-gate time grows ~2^n; the parallel engine divides
// it by its worker count.
func (r *Runner) TheoremB3() (Experiment, error) {
	exp := Experiment{ID: "thmB3", Title: "Theorem B.3: serial 2^n scaling vs parallel speedup"}
	serial := Series{Label: "measured: serial seconds/gate", XLabel: "qubits", YLabel: "seconds"}
	qubits := []int{12, 14, 16}
	if r.Large {
		qubits = []int{14, 16, 18, 20}
	}
	const gates = 120
	for _, n := range qubits {
		c, err := randcirc.Generate(randcirc.Spec{Qubits: n, Blocks: gates / 3, Seed: r.Seed})
		if err != nil {
			return exp, err
		}
		sec, err := measure(func() error {
			_, err := backend.Run(c, backend.Config{Target: backend.TargetAer, Workers: 1})
			return err
		})
		if err != nil {
			return exp, err
		}
		serial.Points = append(serial.Points, Point{X: float64(n), Y: sec / gates})
	}
	exp.Series = append(exp.Series, serial)

	// Parallel speedup at a size where the fan-out amortizes.
	n := qubits[len(qubits)-1] + 2
	c, err := randcirc.Generate(randcirc.Spec{Qubits: n, Blocks: 50, Seed: r.Seed})
	if err != nil {
		return exp, err
	}
	speed := Series{Label: "measured: parallel speedup vs workers", XLabel: "workers", YLabel: "speedup"}
	base := 0.0
	for _, w := range []int{1, 2, 4, 8, backendWorkers()} {
		sec, err := measure(func() error {
			_, err := backend.Run(c, backend.Config{Target: backend.TargetNvidia, Workers: w})
			return err
		})
		if err != nil {
			return exp, err
		}
		if w == 1 {
			base = sec
		}
		speed.Points = append(speed.Points, Point{X: float64(w), Y: base / sec})
	}
	exp.Series = append(exp.Series, speed)
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("serial scaling exponent: 2^(%.2f·n) per gate (theorem: 2^n)", fitExponentBase2(serial.Points)),
		fmt.Sprintf("parallel speedup at %d workers: %.1fx on %d qubits (theorem: ~P with P parallel resources)",
			backendWorkers(), speed.Points[len(speed.Points)-1].Y, n))
	return exp, nil
}

// Mqpu regenerates the §3 'nvidia-mqpu' observation: a batch of
// circuits runs faster when the devices act as independent QPUs.
func (r *Runner) Mqpu() (Experiment, error) {
	exp := Experiment{ID: "mqpu", Title: "multi-QPU circuit parallelism (the paper's nvidia-mqpu note)"}
	n := 14
	batchSize := 8
	if r.Large {
		n = 18
	}
	batch := make([]*circuit.Circuit, batchSize)
	for i := range batch {
		c, err := randcirc.Generate(randcirc.Spec{Qubits: n, Blocks: 60, Seed: r.Seed + uint64(i)})
		if err != nil {
			return exp, err
		}
		batch[i] = c
	}
	seqSec, err := measure(func() error {
		_, err := backend.RunBatch(batch, backend.Config{Target: backend.TargetNvidia, Workers: 4})
		return err
	})
	if err != nil {
		return exp, err
	}
	parSec, err := measure(func() error {
		_, err := backend.RunBatch(batch, backend.Config{Target: backend.TargetNvidiaMQPU, Devices: 4, Workers: 16})
		return err
	})
	if err != nil {
		return exp, err
	}
	exp.Series = append(exp.Series, Series{
		Label: "measured: batch wall-clock", XLabel: "mode (1=sequential, 2=mqpu)", YLabel: "seconds",
		Points: []Point{{X: 1, Y: seqSec}, {X: 2, Y: parSec}},
	})
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("4-QPU batch speedup: %.1fx over sequential on %d circuits x %d qubits (paper: 'significantly improves ... by leveraging parallelism across four GPUs')",
			seqSec/parSec, batchSize, n))
	return exp, nil
}
