package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func testRunner() *Runner {
	r := NewRunner(2026)
	return r // Workers 0 = all cores, like the GPU targets default
}

func TestFig1Shapes(t *testing.T) {
	exp, err := testRunner().Fig1()
	if err != nil {
		t.Fatal(err)
	}
	cpu, gpu := exp.Series[0], exp.Series[1]
	// The CPU curve must stop at its memory wall (34 qubits fp64)
	// while the GPU curve continues to 42.
	if last := cpu.Points[len(cpu.Points)-1].X; last != 34 {
		t.Fatalf("CPU wall at %g, want 34", last)
	}
	if last := gpu.Points[len(gpu.Points)-1].X; last != 42 {
		t.Fatalf("GPU reach %g, want 42", last)
	}
	// Performance gap: GPU below CPU everywhere they overlap.
	for _, p := range cpu.Points {
		g := interpY(gpu, p.X)
		if g >= p.Y {
			t.Fatalf("no gap at %g qubits: cpu %g vs gpu %g", p.X, p.Y, g)
		}
	}
}

func TestFig4aShapes(t *testing.T) {
	exp, err := testRunner().Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 11 {
		t.Fatalf("%d series", len(exp.Series))
	}
	// Measured: serial slower than parallel at the largest local size.
	serial, parallel := exp.Series[0], exp.Series[1]
	li := len(serial.Points) - 1
	if serial.Points[li].Y <= parallel.Points[li].Y {
		t.Fatalf("parallel engine not faster: %g vs %g", parallel.Points[li].Y, serial.Points[li].Y)
	}
	// Measured: serial scaling is exponential-ish (exponent ≥ 0.5; the
	// asymptotic 1.0 emerges at larger sizes).
	if b := fitExponentBase2(serial.Points); b < 0.5 {
		t.Fatalf("serial scaling exponent %.2f too flat", b)
	}
	// Modeled walls: 1-GPU series must stop at 32 qubits, 4-GPU at 34.
	for _, s := range exp.Series {
		switch s.Label {
		case "model: 1-GPU, short", "model: 1-GPU, long":
			if last := s.Points[len(s.Points)-1].X; last != 32 {
				t.Fatalf("%s wall at %g, want 32", s.Label, last)
			}
		case "model: 4-GPU, short", "model: 4-GPU, long":
			if last := s.Points[len(s.Points)-1].X; last != 34 {
				t.Fatalf("%s wall at %g, want 34", s.Label, last)
			}
		}
	}
	// Modeled headline ratio within two-orders-of-magnitude band.
	cpuLong, gpuLong := exp.Series[6], exp.Series[8]
	ratio := interpY(cpuLong, 32) / interpY(gpuLong, 32)
	if ratio < 100 || ratio > 1000 {
		t.Fatalf("CPU/GPU ratio %.0f outside [100,1000]", ratio)
	}
	// Long/short ratio ~10 locally (10x block scale-down).
	longSerial := exp.Series[3]
	if r := longSerial.Points[li].Y / serial.Points[li].Y; r < 3 || r > 40 {
		t.Fatalf("local long/short ratio %.1f implausible for 10x gates", r)
	}
}

func TestFig4bShapes(t *testing.T) {
	exp, err := testRunner().Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	var s256, s1024 *Series
	for i := range exp.Series {
		switch exp.Series[i].Label {
		case "model: 256 GPUs":
			s256 = &exp.Series[i]
		case "model: 1024 GPUs":
			s1024 = &exp.Series[i]
		}
	}
	if s256 == nil || s1024 == nil {
		t.Fatal("series missing")
	}
	// The reversal: 1024 faster at 39, slower at 40.
	if !(interpY(*s1024, 39) < interpY(*s256, 39)) {
		t.Fatal("no 1024-GPU advantage at 39 qubits")
	}
	if !(interpY(*s1024, 40) > interpY(*s256, 40)) {
		t.Fatal("no reversal at 40 qubits")
	}
	// 42 qubits only fits on the largest pools and lands minutes-scale.
	last := s1024.Points[len(s1024.Points)-1]
	if last.X != 42 {
		t.Fatalf("1024-GPU reach %g, want 42", last.X)
	}
	if last.Y < 2 || last.Y > 30 {
		t.Fatalf("42q time %.1f min outside minutes scale", last.Y)
	}
	// Small pools cannot hold large states: the 4-GPU series stops
	// well before 42.
	if exp.Series[0].Points[len(exp.Series[0].Points)-1].X >= 40 {
		t.Fatal("4-GPU series should hit its memory wall in the 30s")
	}
}

func TestFig4cShapes(t *testing.T) {
	exp, err := testRunner().Fig4c()
	if err != nil {
		t.Fatal(err)
	}
	qg, pl := exp.Series[0], exp.Series[1]
	// Measured: the pennylane baseline is slower at every local point.
	for i := range qg.Points {
		if pl.Points[i].Y <= qg.Points[i].Y {
			t.Fatalf("pennylane not slower at %g qubits: %g vs %g",
				qg.Points[i].X, pl.Points[i].Y, qg.Points[i].Y)
		}
	}
	// Modeled: same ordering across the paper range.
	mq, mp := exp.Series[2], exp.Series[3]
	for i := range mq.Points {
		if mp.Points[i].Y <= mq.Points[i].Y {
			t.Fatal("modeled pennylane not slower")
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	exp, err := testRunner().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	mcpu, mgpuS := exp.Series[0], exp.Series[1]
	// Measured: both curves grow with pixel count.
	for i := 1; i < len(mcpu.Points); i++ {
		if mcpu.Points[i].Y <= mcpu.Points[i-1].Y/2 {
			t.Fatal("measured CPU time not growing with image size")
		}
	}
	// Measured: parallel engine faster at the largest image.
	li := len(mcpu.Points) - 1
	if mgpuS.Points[li].Y >= mcpu.Points[li].Y {
		t.Fatalf("gpu slower on largest image: %g vs %g", mgpuS.Points[li].Y, mcpu.Points[li].Y)
	}
	// Modeled: speedup positive everywhere and shrinking with size.
	mc, mg := exp.Series[2], exp.Series[3]
	first := mc.Points[0].Y / mg.Points[0].Y
	last := mc.Points[len(mc.Points)-1].Y / mg.Points[len(mg.Points)-1].Y
	if first < 10 {
		t.Fatalf("modeled small-image speedup %.1fx too small (paper ~100x)", first)
	}
	if last >= first {
		t.Fatalf("modeled speedup should shrink with size: %.1fx -> %.1fx", first, last)
	}
}

func TestFig6ReconstructionQuality(t *testing.T) {
	exp, err := testRunner().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	tbl := exp.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d image rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		mae, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Shot-noise-limited: MAE well under 0.1, correlation high —
		// the Fig. 6 quality regime.
		if mae > 0.1 {
			t.Fatalf("%s: MAE %.3f too high", row[0], mae)
		}
		if corr < 0.97 {
			t.Fatalf("%s: correlation %.3f too low", row[0], corr)
		}
	}
}

func TestTable1And2(t *testing.T) {
	exp, err := testRunner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Tables[0].Rows) != 5 {
		t.Fatal("table1 rows")
	}
	exp2, err := testRunner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	rows := exp2.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatal("table2 rows")
	}
	// Spot-check the finger row against the paper.
	if rows[0][0] != "finger" || rows[0][3] != "10" || rows[0][4] != "5" || rows[0][5] != "3072000" {
		t.Fatalf("finger row %v", rows[0])
	}
}

func TestAppendixC(t *testing.T) {
	exp, err := testRunner().AppendixC()
	if err != nil {
		t.Fatal(err)
	}
	pts := exp.Series[0].Points
	if len(pts) != 3 {
		t.Fatal("encode-time points")
	}
	// Near-constant: a 25x gate-count range must not cost 25x time
	// (pre-allocated fixed tensors; allow generous CI slack).
	if spread := pts[2].Y / pts[0].Y; spread > 8 {
		t.Fatalf("encode time spread %.1fx not 'nearly constant'", spread)
	}
	// The compression note must report a real saving.
	found := false
	for _, n := range exp.Notes {
		if strings.Contains(n, "compression saves") {
			found = true
		}
	}
	if !found {
		t.Fatal("compression note missing")
	}
}

func TestTheoremB3(t *testing.T) {
	exp, err := testRunner().TheoremB3()
	if err != nil {
		t.Fatal(err)
	}
	serial := exp.Series[0]
	if b := fitExponentBase2(serial.Points); b < 0.5 {
		t.Fatalf("per-gate scaling exponent %.2f too flat for 2^n", b)
	}
	// The local box saturates its RAM bandwidth well below core count
	// (the same wall that caps real state-vector engines); assert the
	// mechanism shows, not a specific multiple.
	speed := exp.Series[1]
	lastSpeedup := speed.Points[len(speed.Points)-1].Y
	if lastSpeedup < 1.3 {
		t.Fatalf("parallel speedup %.1fx too small", lastSpeedup)
	}
}

func TestMqpu(t *testing.T) {
	exp, err := testRunner().Mqpu()
	if err != nil {
		t.Fatal(err)
	}
	pts := exp.Series[0].Points
	if pts[1].Y >= pts[0].Y {
		t.Fatalf("mqpu not faster: %g vs %g", pts[1].Y, pts[0].Y)
	}
}

func TestRunAllAndRegistry(t *testing.T) {
	r := testRunner()
	ids := r.IDs()
	if len(ids) != 11 {
		t.Fatalf("%d experiments registered", len(ids))
	}
	var buf bytes.Buffer
	// Run the cheap static ones through the dispatcher.
	for _, id := range []string{"table1", "table2", "fig4b"} {
		if err := r.Run(id, &buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"== table1", "== table2", "== fig4b", "reversal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if err := r.Run("nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSeriesAndTablePrinting(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Label: "l", XLabel: "x", YLabel: "y", Points: []Point{{X: 1, Y: 2}, {X: 3, Y: 4, Err: 0.5}}}
	s.Print(&buf)
	if !strings.Contains(buf.String(), "±0.5") {
		t.Fatal("error bar not printed")
	}
	buf.Reset()
	tb := Table{Title: "t", Header: []string{"a", "bee"}, Rows: [][]string{{"1", "2"}}}
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "bee") {
		t.Fatal("table header missing")
	}
}

func TestFitExponent(t *testing.T) {
	// Perfect 2^n data fits exponent 1.
	pts := []Point{{X: 10, Y: 1024}, {X: 12, Y: 4096}, {X: 14, Y: 16384}}
	if b := fitExponentBase2(pts); b < 0.99 || b > 1.01 {
		t.Fatalf("fit %g", b)
	}
	if fitExponentBase2(pts[:1]) != 0 {
		t.Fatal("degenerate fit should be 0")
	}
}
