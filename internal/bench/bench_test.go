package bench

import (
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func testRunner() *Runner {
	r := NewRunner(2026)
	return r // Workers 0 = all cores, like the GPU targets default
}

// Wall-clock comparisons ("parallel faster than serial") are properties
// of the hardware as much as of the code: on a single-core or loaded CI
// box the parallel engine legitimately loses. The helpers below keep
// the timing checks as regression tripwires where they can hold
// (several idle cores, not -short) and degrade them to logged
// observations elsewhere, so the deterministic shape assertions remain
// the tests' backbone.

// timingReliable reports whether measured speedup assertions are
// meaningful on this run: parallelism needs spare cores, and -short
// asks for load-tolerant behavior.
func timingReliable() bool {
	return !testing.Short() && runtime.NumCPU() >= 4
}

// timingSlack is the multiplicative grace given to timing comparisons
// even on capable machines, absorbing CI scheduling noise.
const timingSlack = 1.5

// assertFaster checks that the measured fast path beat the slow path.
// Inversions fail only on machines where the comparison is reliable and
// the loss exceeds timingSlack; otherwise they are logged.
func assertFaster(t *testing.T, label string, slow, fast float64) {
	t.Helper()
	if fast < slow {
		return
	}
	switch {
	case !timingReliable():
		t.Logf("%s: timing inversion tolerated (fast=%.3gs slow=%.3gs; NumCPU=%d, short=%v)",
			label, fast, slow, runtime.NumCPU(), testing.Short())
	case fast <= slow*timingSlack:
		t.Logf("%s: within CI slack (fast=%.3gs slow=%.3gs)", label, fast, slow)
	default:
		t.Errorf("%s: fast path %.3gs slower than slow path %.3gs beyond %.1fx slack",
			label, fast, slow, timingSlack)
	}
}

// assertScalingExponent checks a measured 2^(b·n) growth fit. The
// asymptotic exponent only emerges cleanly on quiet machines; elsewhere
// a clearly-degenerate fit still fails but noise does not.
func assertScalingExponent(t *testing.T, label string, b, want float64) {
	t.Helper()
	if b >= want {
		return
	}
	if !timingReliable() {
		if b < want/2 {
			t.Errorf("%s: scaling exponent %.2f degenerate even for a loaded machine (want >= %.2f)", label, b, want/2)
			return
		}
		t.Logf("%s: scaling exponent %.2f below %.2f tolerated (NumCPU=%d, short=%v)",
			label, b, want, runtime.NumCPU(), testing.Short())
		return
	}
	t.Errorf("%s: scaling exponent %.2f too flat (want >= %.2f)", label, b, want)
}

// assertSeriesMeasured checks the deterministic backbone of a measured
// series: the expected number of points, each with positive time.
func assertSeriesMeasured(t *testing.T, s Series, wantPoints int) {
	t.Helper()
	if len(s.Points) != wantPoints {
		t.Fatalf("series %q has %d points, want %d", s.Label, len(s.Points), wantPoints)
	}
	for _, p := range s.Points {
		if p.Y <= 0 {
			t.Fatalf("series %q has non-positive time %g at x=%g", s.Label, p.Y, p.X)
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	exp, err := testRunner().Fig1()
	if err != nil {
		t.Fatal(err)
	}
	cpu, gpu := exp.Series[0], exp.Series[1]
	// The CPU curve must stop at its memory wall (34 qubits fp64)
	// while the GPU curve continues to 42.
	if last := cpu.Points[len(cpu.Points)-1].X; last != 34 {
		t.Fatalf("CPU wall at %g, want 34", last)
	}
	if last := gpu.Points[len(gpu.Points)-1].X; last != 42 {
		t.Fatalf("GPU reach %g, want 42", last)
	}
	// Performance gap: GPU below CPU everywhere they overlap.
	for _, p := range cpu.Points {
		g := interpY(gpu, p.X)
		if g >= p.Y {
			t.Fatalf("no gap at %g qubits: cpu %g vs gpu %g", p.X, p.Y, g)
		}
	}
}

func TestFig4aShapes(t *testing.T) {
	exp, err := testRunner().Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 11 {
		t.Fatalf("%d series", len(exp.Series))
	}
	// Deterministic backbone: every measured series covers the local
	// qubit sweep with positive times.
	nPts := len(testRunner().localQubitRange())
	for _, s := range exp.Series[:5] {
		assertSeriesMeasured(t, s, nPts)
	}
	// Measured: serial slower than parallel at the largest local size
	// (tolerance-guarded; see assertFaster).
	serial, parallel := exp.Series[0], exp.Series[1]
	li := len(serial.Points) - 1
	assertFaster(t, "fig4a parallel engine", serial.Points[li].Y, parallel.Points[li].Y)
	// Measured: serial scaling is exponential-ish (exponent ≥ 0.5; the
	// asymptotic 1.0 emerges at larger sizes).
	assertScalingExponent(t, "fig4a serial", fitExponentBase2(serial.Points), 0.5)
	// Modeled walls: 1-GPU series must stop at 32 qubits, 4-GPU at 34.
	for _, s := range exp.Series {
		switch s.Label {
		case "model: 1-GPU, short", "model: 1-GPU, long":
			if last := s.Points[len(s.Points)-1].X; last != 32 {
				t.Fatalf("%s wall at %g, want 32", s.Label, last)
			}
		case "model: 4-GPU, short", "model: 4-GPU, long":
			if last := s.Points[len(s.Points)-1].X; last != 34 {
				t.Fatalf("%s wall at %g, want 34", s.Label, last)
			}
		}
	}
	// Modeled headline ratio within two-orders-of-magnitude band.
	cpuLong, gpuLong := exp.Series[6], exp.Series[8]
	ratio := interpY(cpuLong, 32) / interpY(gpuLong, 32)
	if ratio < 100 || ratio > 1000 {
		t.Fatalf("CPU/GPU ratio %.0f outside [100,1000]", ratio)
	}
	// Long/short ratio ~10 locally (10x block scale-down). Load is
	// common-mode across the back-to-back runs, so this ratio is
	// robust where absolute orderings are not; the band is generous.
	longSerial := exp.Series[3]
	if r := longSerial.Points[li].Y / serial.Points[li].Y; r < 2 || r > 60 {
		t.Fatalf("local long/short ratio %.1f implausible for 10x gates", r)
	}
}

func TestFig4bShapes(t *testing.T) {
	exp, err := testRunner().Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	var s256, s1024 *Series
	for i := range exp.Series {
		switch exp.Series[i].Label {
		case "model: 256 GPUs":
			s256 = &exp.Series[i]
		case "model: 1024 GPUs":
			s1024 = &exp.Series[i]
		}
	}
	if s256 == nil || s1024 == nil {
		t.Fatal("series missing")
	}
	// The reversal: 1024 faster at 39, slower at 40.
	if !(interpY(*s1024, 39) < interpY(*s256, 39)) {
		t.Fatal("no 1024-GPU advantage at 39 qubits")
	}
	if !(interpY(*s1024, 40) > interpY(*s256, 40)) {
		t.Fatal("no reversal at 40 qubits")
	}
	// 42 qubits only fits on the largest pools and lands minutes-scale.
	last := s1024.Points[len(s1024.Points)-1]
	if last.X != 42 {
		t.Fatalf("1024-GPU reach %g, want 42", last.X)
	}
	if last.Y < 2 || last.Y > 30 {
		t.Fatalf("42q time %.1f min outside minutes scale", last.Y)
	}
	// Small pools cannot hold large states: the 4-GPU series stops
	// well before 42.
	if exp.Series[0].Points[len(exp.Series[0].Points)-1].X >= 40 {
		t.Fatal("4-GPU series should hit its memory wall in the 30s")
	}
}

func TestFig4cShapes(t *testing.T) {
	exp, err := testRunner().Fig4c()
	if err != nil {
		t.Fatal(err)
	}
	qg, pl := exp.Series[0], exp.Series[1]
	// Deterministic backbone: both engines measured at every sweep point.
	nPts := len(testRunner().localQubitRange())
	assertSeriesMeasured(t, qg, nPts)
	assertSeriesMeasured(t, pl, nPts)
	// Measured: the pennylane baseline is slower at every local point
	// (tolerance-guarded: race instrumentation or load can shrink the
	// per-gate transpile penalty below the sweep noise).
	for i := range qg.Points {
		assertFaster(t, "fig4c q-gear vs pennylane", pl.Points[i].Y, qg.Points[i].Y)
	}
	// Modeled: same ordering across the paper range.
	mq, mp := exp.Series[2], exp.Series[3]
	for i := range mq.Points {
		if mp.Points[i].Y <= mq.Points[i].Y {
			t.Fatal("modeled pennylane not slower")
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	exp, err := testRunner().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	mcpu, mgpuS := exp.Series[0], exp.Series[1]
	// Deterministic backbone: one measured point per image config,
	// positive times, pixel counts strictly increasing.
	assertSeriesMeasured(t, mcpu, len(localImageConfigs))
	assertSeriesMeasured(t, mgpuS, len(localImageConfigs))
	for i := 1; i < len(mcpu.Points); i++ {
		if mcpu.Points[i].X <= mcpu.Points[i-1].X {
			t.Fatal("image sizes not increasing")
		}
	}
	// Measured: both curves grow with pixel count.
	for i := 1; i < len(mcpu.Points); i++ {
		if mcpu.Points[i].Y <= mcpu.Points[i-1].Y/2 {
			t.Fatal("measured CPU time not growing with image size")
		}
	}
	// Measured: parallel engine faster at the largest image
	// (tolerance-guarded).
	li := len(mcpu.Points) - 1
	assertFaster(t, "fig5 parallel engine on largest image", mcpu.Points[li].Y, mgpuS.Points[li].Y)
	// Modeled: speedup positive everywhere and shrinking with size.
	mc, mg := exp.Series[2], exp.Series[3]
	first := mc.Points[0].Y / mg.Points[0].Y
	last := mc.Points[len(mc.Points)-1].Y / mg.Points[len(mg.Points)-1].Y
	if first < 10 {
		t.Fatalf("modeled small-image speedup %.1fx too small (paper ~100x)", first)
	}
	if last >= first {
		t.Fatalf("modeled speedup should shrink with size: %.1fx -> %.1fx", first, last)
	}
}

func TestFig6ReconstructionQuality(t *testing.T) {
	exp, err := testRunner().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	tbl := exp.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d image rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		mae, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Shot-noise-limited: MAE well under 0.1, correlation high —
		// the Fig. 6 quality regime.
		if mae > 0.1 {
			t.Fatalf("%s: MAE %.3f too high", row[0], mae)
		}
		if corr < 0.97 {
			t.Fatalf("%s: correlation %.3f too low", row[0], corr)
		}
	}
}

func TestTable1And2(t *testing.T) {
	exp, err := testRunner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Tables[0].Rows) != 5 {
		t.Fatal("table1 rows")
	}
	exp2, err := testRunner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	rows := exp2.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatal("table2 rows")
	}
	// Spot-check the finger row against the paper.
	if rows[0][0] != "finger" || rows[0][3] != "10" || rows[0][4] != "5" || rows[0][5] != "3072000" {
		t.Fatalf("finger row %v", rows[0])
	}
}

func TestAppendixC(t *testing.T) {
	exp, err := testRunner().AppendixC()
	if err != nil {
		t.Fatal(err)
	}
	pts := exp.Series[0].Points
	if len(pts) != 3 {
		t.Fatal("encode-time points")
	}
	// Near-constant: a 25x gate-count range must not cost 25x time
	// (pre-allocated fixed tensors; allow generous CI slack).
	if spread := pts[2].Y / pts[0].Y; spread > 8 {
		t.Fatalf("encode time spread %.1fx not 'nearly constant'", spread)
	}
	// The compression note must report a real saving.
	found := false
	for _, n := range exp.Notes {
		if strings.Contains(n, "compression saves") {
			found = true
		}
	}
	if !found {
		t.Fatal("compression note missing")
	}
}

func TestTheoremB3(t *testing.T) {
	exp, err := testRunner().TheoremB3()
	if err != nil {
		t.Fatal(err)
	}
	serial := exp.Series[0]
	assertSeriesMeasured(t, serial, 3) // the non-Large sweep: 12, 14, 16 qubits
	assertScalingExponent(t, "thmB3 per-gate", fitExponentBase2(serial.Points), 0.5)
	// The local box saturates its RAM bandwidth well below core count
	// (the same wall that caps real state-vector engines); assert the
	// mechanism shows where it can (tolerance-guarded: a 1-core box has
	// no parallelism to measure), not a specific multiple.
	speed := exp.Series[1]
	if len(speed.Points) != 5 {
		t.Fatalf("%d speedup points, want 5", len(speed.Points))
	}
	if speed.Points[0].Y != 1 {
		t.Fatalf("1-worker speedup %.2f, want exactly 1 (self-relative)", speed.Points[0].Y)
	}
	lastSpeedup := speed.Points[len(speed.Points)-1].Y
	switch {
	case lastSpeedup >= 1.3:
	case !timingReliable():
		t.Logf("thmB3: parallel speedup %.2fx below 1.3x tolerated (NumCPU=%d, short=%v)",
			lastSpeedup, runtime.NumCPU(), testing.Short())
	case lastSpeedup < 1.05:
		t.Errorf("thmB3: parallel speedup %.2fx shows no gain despite %d cores", lastSpeedup, runtime.NumCPU())
	default:
		t.Logf("thmB3: parallel speedup %.2fx below 1.3x but within CI slack", lastSpeedup)
	}
}

func TestMqpu(t *testing.T) {
	exp, err := testRunner().Mqpu()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic backbone: exactly the two modes, both measured.
	assertSeriesMeasured(t, exp.Series[0], 2)
	pts := exp.Series[0].Points
	if pts[0].X != 1 || pts[1].X != 2 {
		t.Fatalf("mode axis %g,%g, want 1,2", pts[0].X, pts[1].X)
	}
	// Measured: the 4-QPU batch beats sequential (tolerance-guarded).
	assertFaster(t, "mqpu batch", pts[0].Y, pts[1].Y)
}

func TestRunAllAndRegistry(t *testing.T) {
	r := testRunner()
	ids := r.IDs()
	if len(ids) != 12 {
		t.Fatalf("%d experiments registered", len(ids))
	}
	var buf bytes.Buffer
	// Run the cheap static ones through the dispatcher.
	for _, id := range []string{"table1", "table2", "fig4b"} {
		if err := r.Run(id, &buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"== table1", "== table2", "== fig4b", "reversal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if err := r.Run("nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSeriesAndTablePrinting(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Label: "l", XLabel: "x", YLabel: "y", Points: []Point{{X: 1, Y: 2}, {X: 3, Y: 4, Err: 0.5}}}
	s.Print(&buf)
	if !strings.Contains(buf.String(), "±0.5") {
		t.Fatal("error bar not printed")
	}
	buf.Reset()
	tb := Table{Title: "t", Header: []string{"a", "bee"}, Rows: [][]string{{"1", "2"}}}
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "bee") {
		t.Fatal("table header missing")
	}
}

func TestFitExponent(t *testing.T) {
	// Perfect 2^n data fits exponent 1.
	pts := []Point{{X: 10, Y: 1024}, {X: 12, Y: 4096}, {X: 14, Y: 16384}}
	if b := fitExponentBase2(pts); b < 0.99 || b > 1.01 {
		t.Fatalf("fit %g", b)
	}
	if fitExponentBase2(pts[:1]) != 0 {
		t.Fatal("degenerate fit should be 0")
	}
}
