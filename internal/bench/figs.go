package bench

import (
	"fmt"
	"math"

	"qgear/internal/backend"
	"qgear/internal/cluster"
	"qgear/internal/qft"
	"qgear/internal/randcirc"
)

// localShortBlocks / localLongBlocks are the measured-run workload
// sizes. The paper's 'long' unitaries (10,000 blocks) are scaled down
// 10x locally so the serial CPU baseline finishes in test time; the
// short/long 1:10 ratio is preserved and noted in the output.
const (
	localShortBlocks = 100
	localLongBlocks  = 1000
)

// localQubitRange returns the measured sweep range. The low end sits
// where the parallel engine's goroutine fan-out starts to pay for
// itself (≥2^14 amplitudes), mirroring how GPU advantage only shows
// past the kernel-launch floor.
func (r *Runner) localQubitRange() []int {
	if r.Large {
		return []int{16, 18, 20, 22}
	}
	return []int{14, 16, 18}
}

// runLocalUnitary measures one random-unitary simulation end to end
// (transform + execute) on the given target.
func (r *Runner) runLocalUnitary(qubits, blocks int, target backend.Target, devices int) (float64, error) {
	c, err := randcirc.Generate(randcirc.Spec{Qubits: qubits, Blocks: blocks, Seed: r.Seed + uint64(qubits*1000+blocks)})
	if err != nil {
		return 0, err
	}
	// Fusion window 2 for measured runs: the Go engine is compute-bound
	// (unlike an HBM-bound A100), so wide fused matrices cost more
	// arithmetic than they save in sweeps; the fusion-window ablation
	// bench quantifies this. The paper-scale model uses the paper's
	// window of 5 through its FusionFactor.
	cfg := backend.Config{Target: target, Devices: devices, Workers: r.Workers, FusionWindow: 2}
	if target == backend.TargetAer {
		cfg.FusionWindow = 0
		cfg.Workers = 1 // the CPU baseline is the serial path
	}
	return measure(func() error {
		_, err := backend.Run(c, cfg)
		return err
	})
}

// Fig1 regenerates the conceptual Fig. 1 gap plot: modeled running
// time vs qubits for the CPU and GPU platforms, showing the
// performance gap and the simulation (capacity) gap.
func (r *Runner) Fig1() (Experiment, error) {
	exp := Experiment{ID: "fig1", Title: "NISQ-era simulation comparison: CPU vs GPU running-time gap"}
	cpu := Series{Label: "cpu", XLabel: "qubits", YLabel: "minutes"}
	gpu := Series{Label: "gpu (q-gear)", XLabel: "qubits", YLabel: "minutes"}
	const gates = 3000
	for n := 20; n <= 42; n++ {
		if sec, err := r.Model.EstimateCPUSeconds(cluster.Workload{Qubits: n, Gates: gates, Precision: cluster.FP64}); err == nil {
			cpu.Points = append(cpu.Points, Point{X: float64(n), Y: sec / 60})
		}
		// GPU curve uses the fastest cluster pool that fits (up to
		// 1024 80-GB parts) — the envelope a user with the whole
		// machine sees.
		best := math.Inf(1)
		model := r.Model.WithGPU(cluster.A100HBM80)
		for _, g := range []int{1, 4, 16, 64, 256, 1024} {
			if sec, err := model.EstimateGPUSeconds(cluster.Workload{Qubits: n, Gates: gates, Precision: cluster.FP32}, g); err == nil && sec < best {
				best = sec
			}
		}
		if !math.IsInf(best, 1) {
			gpu.Points = append(gpu.Points, Point{X: float64(n), Y: best / 60})
		}
	}
	exp.Series = []Series{cpu, gpu}
	lastCPU := cpu.Points[len(cpu.Points)-1]
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("CPU platform hits its memory wall at %d qubits (~%d for the paper); GPU pooling continues to 42+", int(lastCPU.X), 34),
		"performance gap at 30 qubits: "+fmt.Sprintf("%.0fx", interpY(cpu, 30)/interpY(gpu, 30)))
	return exp, nil
}

func interpY(s Series, x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Fig4a regenerates Fig. 4a: simulation time vs qubits for short/long
// random unitaries on the CPU-node baseline, one GPU, and four pooled
// GPUs — measured locally at small n with the real engine, and modeled
// at the paper's 28–34 qubit range.
func (r *Runner) Fig4a() (Experiment, error) {
	exp := Experiment{ID: "fig4a", Title: "random non-Clifford unitaries: CPU node vs 1 GPU vs 4 GPU"}

	// Measured local series (real engine).
	type cfg struct {
		label   string
		blocks  int
		target  backend.Target
		devices int
	}
	cfgs := []cfg{
		{"measured: cpu-serial, short", localShortBlocks, backend.TargetAer, 1},
		{"measured: gpu-parallel, short", localShortBlocks, backend.TargetNvidia, 1},
		{"measured: 4dev-mgpu, short", localShortBlocks, backend.TargetNvidiaMGPU, 4},
		{"measured: cpu-serial, long", localLongBlocks, backend.TargetAer, 1},
		{"measured: gpu-parallel, long", localLongBlocks, backend.TargetNvidia, 1},
	}
	for _, c := range cfgs {
		s := Series{Label: c.label, XLabel: "qubits", YLabel: "seconds"}
		for _, n := range r.localQubitRange() {
			sec, err := r.runLocalUnitary(n, c.blocks, c.target, c.devices)
			if err != nil {
				return exp, err
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: sec})
		}
		exp.Series = append(exp.Series, s)
	}
	// Shape checks on the measured data.
	serialShort := exp.Series[0]
	parallelShort := exp.Series[1]
	lastIdx := len(serialShort.Points) - 1
	speedup := serialShort.Points[lastIdx].Y / parallelShort.Points[lastIdx].Y
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("measured parallel-engine speedup at %d qubits: %.1fx (mechanism of the paper's 400x, scaled to %d local cores)",
			int(serialShort.Points[lastIdx].X), speedup, maxWorkers(r)),
		fmt.Sprintf("measured serial scaling exponent: 2^(%.2f·n) (paper: 2^n)", fitExponentBase2(serialShort.Points)),
		fmt.Sprintf("local 'long' series uses %d blocks (paper: %d; 10x scale-down, ratio to 'short' preserved)", localLongBlocks, randcirc.LongBlocks))

	// Modeled paper-scale series 28–34 qubits.
	jrng := r.rng(41)
	for _, m := range []struct {
		label  string
		blocks int
		est    func(w cluster.Workload) (float64, error)
	}{
		{"model: CPU node, short", randcirc.ShortBlocks, func(w cluster.Workload) (float64, error) {
			w.Precision = cluster.FP64
			return r.Model.EstimateCPUSeconds(w)
		}},
		{"model: CPU node, long", randcirc.LongBlocks, func(w cluster.Workload) (float64, error) {
			w.Precision = cluster.FP64
			return r.Model.EstimateCPUSeconds(w)
		}},
		{"model: 1-GPU, short", randcirc.ShortBlocks, func(w cluster.Workload) (float64, error) {
			return r.Model.EstimateGPUSeconds(w, 1)
		}},
		{"model: 1-GPU, long", randcirc.LongBlocks, func(w cluster.Workload) (float64, error) {
			return r.Model.EstimateGPUSeconds(w, 1)
		}},
		{"model: 4-GPU, short", randcirc.ShortBlocks, func(w cluster.Workload) (float64, error) {
			return r.Model.EstimateGPUSeconds(w, 4)
		}},
		{"model: 4-GPU, long", randcirc.LongBlocks, func(w cluster.Workload) (float64, error) {
			return r.Model.EstimateGPUSeconds(w, 4)
		}},
	} {
		s := Series{Label: m.label, XLabel: "qubits", YLabel: "minutes"}
		for n := 28; n <= 34; n++ {
			w := cluster.Workload{Qubits: n, Gates: m.blocks * randcirc.GatesPerBlock, Precision: cluster.FP32}
			sec, err := m.est(w)
			if err != nil {
				continue // memory wall: the curve stops, like the open symbols
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: sec / 60, Err: sec / 60 * r.Model.WarmupJitter * math.Abs(jrng.NormFloat64())})
		}
		exp.Series = append(exp.Series, s)
	}
	// Headline ratios.
	cpuLong := exp.Series[6]
	gpu1Long := exp.Series[8]
	gpu4Long := exp.Series[10]
	exp.Notes = append(exp.Notes,
		"model: 1-GPU wall at 32 qubits (paper: 32), 4-GPU at 34 (paper: 34), CPU node at 34 fp64 (paper: 34)",
		fmt.Sprintf("model: CPU/1-GPU long-unitary ratio at 32 qubits: %.0fx (paper: ~400x)", interpY(cpuLong, 32)/interpY(gpu1Long, 32)),
		fmt.Sprintf("model: 34-qubit long unitary: CPU %.1f h vs 4-GPU %.1f min (paper: 24 h vs ~1 min order)",
			interpY(cpuLong, 34)*60/3600, interpY(gpu4Long, 34)))
	return exp, nil
}

func maxWorkers(r *Runner) int {
	if r.Workers > 0 {
		return r.Workers
	}
	return backendWorkers()
}

// Fig4b regenerates Fig. 4b: the 3,000-block unitary on 30–42 qubits
// across 4–1024 pooled GPUs (80 GB parts), modeled; including the
// highlighted 39→40 reversal for the 1,024-GPU cluster.
func (r *Runner) Fig4b() (Experiment, error) {
	exp := Experiment{ID: "fig4b", Title: "scaling on 4-1024 GPU clusters, 3000-block unitaries"}
	model := r.Model.WithGPU(cluster.A100HBM80)
	gates := randcirc.IntermediateBlocks * randcirc.GatesPerBlock
	gpuCounts := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for _, g := range gpuCounts {
		s := Series{Label: fmt.Sprintf("model: %d GPUs", g), XLabel: "qubits", YLabel: "minutes"}
		for n := 30; n <= 42; n++ {
			sec, err := model.EstimateGPUSeconds(cluster.Workload{Qubits: n, Gates: gates, Precision: cluster.FP32}, g)
			if err != nil {
				continue // does not fit this pool
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: sec / 60})
		}
		if len(s.Points) > 0 {
			exp.Series = append(exp.Series, s)
		}
	}
	// The reversal note.
	t39x256, _ := model.EstimateGPUSeconds(cluster.Workload{Qubits: 39, Gates: gates, Precision: cluster.FP32}, 256)
	t39x1024, _ := model.EstimateGPUSeconds(cluster.Workload{Qubits: 39, Gates: gates, Precision: cluster.FP32}, 1024)
	t40x256, _ := model.EstimateGPUSeconds(cluster.Workload{Qubits: 40, Gates: gates, Precision: cluster.FP32}, 256)
	t40x1024, _ := model.EstimateGPUSeconds(cluster.Workload{Qubits: 40, Gates: gates, Precision: cluster.FP32}, 1024)
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("reversal (paper §3 highlighted region): at 39q 1024 GPUs %.1f min < 256 GPUs %.1f min; at 40q 1024 GPUs %.1f min > 256 GPUs %.1f min",
			t39x1024/60, t39x256/60, t40x1024/60, t40x256/60),
		"mechanism: per-GPU shards >8 GB crossing the rack boundary congest the shared bisection (paper's rack/warm-up hypothesis)")
	return exp, nil
}

// Fig4c regenerates Fig. 4c: QFT execution time, Q-GEAR vs the
// Pennylane-like baseline on 4 GPUs — measured locally with both real
// targets, modeled at the paper's 28–34 range.
func (r *Runner) Fig4c() (Experiment, error) {
	exp := Experiment{ID: "fig4c", Title: "QFT: Q-GEAR vs Pennylane baseline on 4 GPUs"}

	// Measured: the real pennylane target pays real per-gate
	// transpilation work.
	qg := Series{Label: "measured: q-gear (nvidia)", XLabel: "qubits", YLabel: "seconds"}
	pl := Series{Label: "measured: pennylane baseline", XLabel: "qubits", YLabel: "seconds"}
	for _, n := range r.localQubitRange() {
		c, err := qft.Circuit(n, true)
		if err != nil {
			return exp, err
		}
		secQ, err := measure(func() error {
			_, err := backend.Run(c, backend.Config{Target: backend.TargetNvidia, Workers: r.Workers, FusionWindow: 2})
			return err
		})
		if err != nil {
			return exp, err
		}
		secP, err := measure(func() error {
			_, err := backend.Run(c, backend.Config{Target: backend.TargetPennylane, Workers: r.Workers})
			return err
		})
		if err != nil {
			return exp, err
		}
		qg.Points = append(qg.Points, Point{X: float64(n), Y: secQ})
		pl.Points = append(pl.Points, Point{X: float64(n), Y: secP})
	}
	exp.Series = append(exp.Series, qg, pl)

	// Modeled paper range.
	mq := Series{Label: "model: q-gear cudaq 4-GPU", XLabel: "qubits", YLabel: "minutes"}
	mp := Series{Label: "model: pennylane 4-GPU", XLabel: "qubits", YLabel: "minutes"}
	for n := 28; n <= 34; n++ {
		w := cluster.Workload{Qubits: n, Gates: qft.GateCount(n), Precision: cluster.FP32}
		if sec, err := r.Model.EstimateGPUSeconds(w, 4); err == nil {
			mq.Points = append(mq.Points, Point{X: float64(n), Y: sec / 60})
		}
		if sec, err := r.Model.EstimatePennylaneSeconds(w, 4); err == nil {
			mp.Points = append(mp.Points, Point{X: float64(n), Y: sec / 60})
		}
	}
	exp.Series = append(exp.Series, mq, mp)
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("q-gear wins at every point (paper: 'consistently outperforms'); modeled gap at 32q: %.1fx",
			interpY(mp, 32)/interpY(mq, 32)),
		"pennylane penalty mechanism: per-gate high-level→kernel transpilation + unfused execution (paper §4)")
	return exp, nil
}
