package bench

import (
	"fmt"
	"math"

	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/mgpu"
	"qgear/internal/observable"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
)

// The expectation ablation column: observable estimation as a
// benchmarked job kind. For each tiling workload the transverse-field
// Ising Hamiltonian is evaluated two ways on the same final state —
// exactly (one planned execution, term sweeps over the resident
// statevector) and by shot sampling (one execution + readout per
// measurement basis, Z-parity estimators over the counts) — with the
// exact value cross-checked bit-for-bit across the per-gate, tiled,
// and planned-mgpu engines.

// ExpectationAblationRow is the "expectation" object of BENCH_*.json.
type ExpectationAblationRow struct {
	Hamiltonian string `json:"hamiltonian"`
	Terms       int    `json:"terms"`
	// ExactSeconds times plan execution + all term sweeps; the sampled
	// arm times one execution + readout + sampling + estimation per
	// measurement basis (two bases for TFIM).
	ExactSeconds     float64 `json:"exact_seconds"`
	SampledSeconds   float64 `json:"sampled_seconds"`
	SpeedupVsSampled float64 `json:"speedup_vs_sampled"`
	Shots            int     `json:"shots"`
	ExactValue       float64 `json:"exact_value"`
	SampledValue     float64 `json:"sampled_value"`
	SampledAbsErr    float64 `json:"sampled_abs_err"`
	// MaxEngineDelta is |Δ⟨H⟩| across the per-gate, tiled, and
	// planned-mgpu exact evaluations — bit-identity demands exactly 0,
	// and the bench gate enforces it on every run.
	MaxEngineDelta float64 `json:"max_engine_delta"`
	MGPUDevices    int     `json:"mgpu_devices"`
}

// expectationAblate measures the expectation column for one workload
// kernel at the given tile width.
func (r *Runner) expectationAblate(k *kernel.Kernel, tileBits, shots int) (*ExpectationAblationRow, error) {
	n := k.NumQubits
	h := observable.TransverseFieldIsing(n, 1.0, 0.7)
	row := &ExpectationAblationRow{
		Hamiltonian: fmt.Sprintf("tfim(n=%d, J=1, g=0.7)", n),
		Terms:       len(h.Terms),
		Shots:       shots,
		MGPUDevices: mgpuAblationDevices,
	}
	workers := maxWorkers(r)

	// Exact arm, tiled engine: the timed column.
	plan, err := kernel.PlanTiled(k, tileBits)
	if err != nil {
		return nil, err
	}
	var exact float64
	row.ExactSeconds, err = measure(func() error {
		s, err := statevec.New(n, workers)
		if err != nil {
			return err
		}
		if err := plan.Execute(s); err != nil {
			return err
		}
		exact, err = h.Expectation(s)
		return err
	})
	if err != nil {
		return nil, err
	}
	row.ExactValue = exact

	// Cross-engine bit-identity: per-gate and planned-mgpu must
	// reproduce the tiled value exactly.
	sPG, err := statevec.New(n, workers)
	if err != nil {
		return nil, err
	}
	if err := kernel.Execute(k, sPG); err != nil {
		return nil, err
	}
	perGate, err := h.Expectation(sPG)
	if err != nil {
		return nil, err
	}
	gbits := int(qmath.Log2Ceil(uint64(mgpuAblationDevices)))
	dplan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: tileBits, GlobalBits: gbits})
	if err != nil {
		return nil, err
	}
	wpr := workers / mgpuAblationDevices
	if wpr < 1 {
		wpr = 1
	}
	dist, err := mgpu.ExpectationCompiled(k, dplan, h, mgpuAblationDevices, wpr)
	if err != nil {
		return nil, err
	}
	row.MaxEngineDelta = math.Max(math.Abs(perGate-exact), math.Abs(dist.Value-exact))

	// Sampled arm: Z-basis counts estimate the diagonal (ZZ) group;
	// an H-rotated execution estimates the X group as its ZView.
	var zGroup, xGroup observable.Hamiltonian
	zGroup.NumQubits, xGroup.NumQubits = n, n
	for _, term := range h.Terms {
		if term.Diagonal() {
			zGroup.Add(term)
			continue
		}
		for _, p := range term.Ops {
			if p != observable.X {
				return nil, fmt.Errorf("bench: expectation sampling groups expect Z/X terms, got %s", term)
			}
		}
		xGroup.Add(term.ZView())
	}
	rotated := &kernel.Kernel{Name: k.Name + "_xbasis", NumQubits: n}
	rotated.Instrs = append(rotated.Instrs, k.Instrs...)
	for q := 0; q < n; q++ {
		rotated.Instrs = append(rotated.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.H, Qubits: []int{q}})
	}
	rotPlan, err := kernel.PlanTiled(rotated, tileBits)
	if err != nil {
		return nil, err
	}
	var sampled float64
	row.SampledSeconds, err = measure(func() error {
		est := func(p *kernel.TilePlan, grp *observable.Hamiltonian, seed uint64) (float64, error) {
			s, err := statevec.New(n, workers)
			if err != nil {
				return 0, err
			}
			if err := p.Execute(s); err != nil {
				return 0, err
			}
			counts, err := sampling.Sample(s.Probabilities(), shots, qmath.NewRNG(seed))
			if err != nil {
				return 0, err
			}
			return grp.EstimateZBasis(counts)
		}
		zv, err := est(plan, &zGroup, r.Seed)
		if err != nil {
			return err
		}
		xv, err := est(rotPlan, &xGroup, r.Seed+1)
		if err != nil {
			return err
		}
		sampled = zv + xv
		return nil
	})
	if err != nil {
		return nil, err
	}
	row.SampledValue = sampled
	row.SampledAbsErr = math.Abs(sampled - exact)
	if row.ExactSeconds > 0 {
		row.SpeedupVsSampled = row.SampledSeconds / row.ExactSeconds
	}
	return row, nil
}
