// Package mpi is an in-process message-passing substrate standing in
// for the Cray MPICH the paper's containers link against (§E.1/E.2).
// Ranks are goroutines inside one address space; messages are Go values
// on per-(src,dst) FIFO channels, so the semantics match MPI
// point-to-point ordering guarantees. The collectives implemented are
// exactly those the distributed state-vector engine (internal/mgpu) and
// the Slurm pipeline need: Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather and pairwise Exchange.
//
// Passing a slice transfers ownership to the receiver, mirroring how
// CUDA-aware MPI hands off device buffers without copies.
package mpi

import (
	"fmt"
	"sync"
)

// chanBuffer is the per-link channel depth; deep enough that the
// deterministic protocols in this repo never block on buffer space in a
// way that could deadlock pairwise exchanges.
const chanBuffer = 8

// world is the shared state of one Run invocation.
type world struct {
	size  int
	links [][]chan any // links[src][dst]

	barrierMu  sync.Mutex
	barrierCnt int
	barrierGen int
	barrierCh  chan struct{}
}

// Comm is one rank's endpoint into the world.
type Comm struct {
	w    *world
	rank int
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// RankError decorates an error with the rank that raised it.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("mpi: rank %d: %v", e.Rank, e.Err) }

// Unwrap exposes the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// Run spawns size ranks, each executing fn with its own Comm, and waits
// for all of them. Panics inside a rank are recovered into errors. The
// first non-nil rank error is returned (all ranks always run to
// completion or panic; there is no cross-rank cancellation, as in MPI).
func Run(size int, fn func(c *Comm) error) error {
	if size < 1 {
		return fmt.Errorf("mpi: world size %d < 1", size)
	}
	w := &world{size: size, barrierCh: make(chan struct{})}
	w.links = make([][]chan any, size)
	for s := range w.links {
		w.links[s] = make([]chan any, size)
		for d := range w.links[s] {
			w.links[s][d] = make(chan any, chanBuffer)
		}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = &RankError{Rank: rank, Err: fmt.Errorf("panic: %v", p)}
				}
			}()
			if err := fn(&Comm{w: w, rank: rank}); err != nil {
				errs[rank] = &RankError{Rank: rank, Err: err}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Comm) checkPeer(p int) {
	if p < 0 || p >= c.w.size {
		panic(fmt.Sprintf("mpi: rank %d addressed invalid peer %d (size %d)", c.rank, p, c.w.size))
	}
}

// Send delivers msg to dst (blocking only if the link buffer is full).
func (c *Comm) Send(dst int, msg any) {
	c.checkPeer(dst)
	if dst == c.rank {
		panic("mpi: self-send; use local state instead")
	}
	c.w.links[c.rank][dst] <- msg
}

// Recv blocks until a message from src arrives.
func (c *Comm) Recv(src int) any {
	c.checkPeer(src)
	if src == c.rank {
		panic("mpi: self-receive")
	}
	return <-c.w.links[src][c.rank]
}

// Exchange performs a simultaneous pairwise swap with peer: both sides
// send their value and receive the other's. Safe against deadlock
// because links are buffered and both directions are distinct channels.
func (c *Comm) Exchange(peer int, msg any) any {
	c.Send(peer, msg)
	return c.Recv(peer)
}

// Barrier blocks until every rank has entered it. Implemented as a
// sense-reversing counter so it is reusable across generations.
func (c *Comm) Barrier() {
	w := c.w
	w.barrierMu.Lock()
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		close(w.barrierCh)
		w.barrierCh = make(chan struct{})
		w.barrierMu.Unlock()
		return
	}
	ch := w.barrierCh
	w.barrierMu.Unlock()
	<-ch
}

// Bcast distributes root's value to every rank and returns it (the
// argument is ignored on non-root ranks, as in MPI_Bcast).
func (c *Comm) Bcast(root int, v any) any {
	c.checkPeer(root)
	if c.w.size == 1 {
		return v
	}
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.Send(r, v)
			}
		}
		return v
	}
	return c.Recv(root)
}

// ReduceOp is a binary float64 reduction operator.
type ReduceOp func(a, b float64) float64

// Built-in reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce folds every rank's v at root with op; the result is valid only
// at root (other ranks get their own v back, as MPI leaves recvbuf
// undefined there).
func (c *Comm) Reduce(root int, v float64, op ReduceOp) float64 {
	c.checkPeer(root)
	if c.rank == root {
		acc := v
		// Deterministic order: fold ranks in increasing order so
		// floating-point reductions are reproducible run to run.
		for r := 0; r < c.w.size; r++ {
			if r == root {
				continue
			}
			acc = op(acc, c.Recv(r).(float64))
		}
		return acc
	}
	c.Send(root, v)
	return v
}

// Allreduce folds v across all ranks and distributes the result.
func (c *Comm) Allreduce(v float64, op ReduceOp) float64 {
	res := c.Reduce(0, v, op)
	out := c.Bcast(0, res)
	return out.(float64)
}

// Gather collects every rank's value at root, indexed by rank; nil on
// other ranks.
func (c *Comm) Gather(root int, v any) []any {
	c.checkPeer(root)
	if c.rank == root {
		out := make([]any, c.w.size)
		out[root] = v
		for r := 0; r < c.w.size; r++ {
			if r != root {
				out[r] = c.Recv(r)
			}
		}
		return out
	}
	c.Send(root, v)
	return nil
}

// Allgather collects every rank's value on all ranks.
func (c *Comm) Allgather(v any) []any {
	got := c.Gather(0, v)
	out := c.Bcast(0, got)
	return out.([]any)
}

// GatherFloat64s gathers per-rank float64 slices at root and
// concatenates them in rank order; nil on other ranks. The mgpu engine
// uses it to assemble the global probability vector.
func (c *Comm) GatherFloat64s(root int, v []float64) []float64 {
	parts := c.Gather(root, v)
	if parts == nil {
		return nil
	}
	var total int
	for _, p := range parts {
		total += len(p.([]float64))
	}
	out := make([]float64, 0, total)
	for _, p := range parts {
		out = append(out, p.([]float64)...)
	}
	return out
}
