package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestRunBasics(t *testing.T) {
	var count int64
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			return fmt.Errorf("size %d", c.Size())
		}
		atomic.AddInt64(&count, int64(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 28 { // 0+1+...+7
		t.Fatalf("ranks did not all run: sum %d", count)
	}
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Fatal("zero-size world accepted")
	}
}

func TestRankErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 2 || !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated correctly: %v", err)
	}
}

func TestPanicRecovered(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kernel exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func TestSendRecvOrdering(t *testing.T) {
	// Messages between a pair preserve FIFO order.
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.Send(1, i)
			}
			return nil
		}
		for i := 0; i < 20; i++ {
			if got := c.Recv(0).(int); got != i {
				return fmt.Errorf("out of order: got %d want %d", got, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchange(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		peer := c.Rank() ^ 1
		got := c.Exchange(peer, c.Rank()).(int)
		if got != peer {
			return fmt.Errorf("exchange got %d, want %d", got, peer)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const ranks = 6
	var phase int64
	err := Run(ranks, func(c *Comm) error {
		atomic.AddInt64(&phase, 1)
		c.Barrier()
		// After the barrier every rank must observe all increments.
		if got := atomic.LoadInt64(&phase); got != ranks {
			return fmt.Errorf("rank %d saw phase %d before barrier release", c.Rank(), got)
		}
		c.Barrier() // reusable across generations
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		v := c.Bcast(2, c.Rank()*100)
		if v.(int) != 200 {
			return fmt.Errorf("bcast got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single-rank world: Bcast is identity.
	if err := Run(1, func(c *Comm) error {
		if c.Bcast(0, 7).(int) != 7 {
			return errors.New("bcast identity failed")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		sum := c.Reduce(0, float64(c.Rank()+1), OpSum)
		if c.Rank() == 0 && sum != 21 {
			return fmt.Errorf("reduce sum %g", sum)
		}
		all := c.Allreduce(float64(c.Rank()), OpMax)
		if all != 5 {
			return fmt.Errorf("allreduce max %g", all)
		}
		mn := c.Allreduce(float64(c.Rank()+3), OpMin)
		if mn != 3 {
			return fmt.Errorf("allreduce min %g", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceDeterministicOrder(t *testing.T) {
	// The fold order is rank-increasing, so fp results are identical
	// across runs.
	vals := []float64{1e-17, 1.0, -1e17, 1e17, 2.5, -0.5}
	var first float64
	for trial := 0; trial < 5; trial++ {
		var got float64
		err := Run(6, func(c *Comm) error {
			r := c.Reduce(0, vals[c.Rank()], OpSum)
			if c.Rank() == 0 {
				got = r
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = got
		} else if got != first {
			t.Fatalf("reduce not deterministic: %g vs %g", got, first)
		}
	}
}

func TestGatherAndAllgather(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		got := c.Gather(1, c.Rank()*10)
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				if got[r].(int) != r*10 {
					return fmt.Errorf("gather slot %d = %v", r, got[r])
				}
			}
		} else if got != nil {
			return errors.New("non-root gather should be nil")
		}
		all := c.Allgather(c.Rank())
		for r := 0; r < 4; r++ {
			if all[r].(int) != r {
				return fmt.Errorf("allgather slot %d = %v", r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherFloat64s(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		local := []float64{float64(c.Rank()), float64(c.Rank()) + 0.5}
		got := c.GatherFloat64s(0, local)
		if c.Rank() != 0 {
			if got != nil {
				return errors.New("non-root should get nil")
			}
			return nil
		}
		want := []float64{0, 0.5, 1, 1.5, 2, 2.5}
		if len(got) != len(want) {
			return fmt.Errorf("len %d", len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0 {
				return fmt.Errorf("slot %d = %g", i, got[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidPeerPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 1) // out of range -> panic -> recovered into error
		}
		return nil
	})
	if err == nil {
		t.Fatal("invalid peer accepted")
	}
	err = Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Send(1, 1) // self-send -> panic
		}
		return nil
	})
	if err == nil {
		t.Fatal("self-send accepted")
	}
}

func TestManyRanksStress(t *testing.T) {
	// A ring pass with 32 ranks exercising send/recv + barrier + reduce.
	const ranks = 32
	err := Run(ranks, func(c *Comm) error {
		next := (c.Rank() + 1) % ranks
		prev := (c.Rank() + ranks - 1) % ranks
		token := c.Rank()
		for hop := 0; hop < ranks; hop++ {
			c.Send(next, token)
			token = c.Recv(prev).(int)
		}
		// After size hops the token returns home.
		if token != c.Rank() {
			return fmt.Errorf("ring token %d at rank %d", token, c.Rank())
		}
		total := c.Allreduce(1, OpSum)
		if total != ranks {
			return fmt.Errorf("allreduce count %g", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
