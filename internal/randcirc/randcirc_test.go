package randcirc

import (
	"math"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

func TestGenerateShape(t *testing.T) {
	c, err := Generate(Spec{Qubits: 6, Blocks: ShortBlocks, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := c.GateCounts()
	if counts[gate.RY] != ShortBlocks || counts[gate.RZ] != ShortBlocks || counts[gate.CX] != ShortBlocks {
		t.Fatalf("block structure wrong: %v", counts)
	}
	if len(c.Ops) != ShortBlocks*GatesPerBlock {
		t.Fatalf("total ops %d, want %d", len(c.Ops), ShortBlocks*GatesPerBlock)
	}
	// Per-block order: ry, rz, cx.
	for b := 0; b < ShortBlocks; b++ {
		if c.Ops[3*b].Gate != gate.RY || c.Ops[3*b+1].Gate != gate.RZ || c.Ops[3*b+2].Gate != gate.CX {
			t.Fatalf("block %d misordered", b)
		}
		// The rotations sit on the CX operand pair.
		cx := c.Ops[3*b+2]
		if c.Ops[3*b].Qubits[0] != cx.Qubits[0] || c.Ops[3*b+1].Qubits[0] != cx.Qubits[1] {
			t.Fatalf("block %d rotations not on the CX pair", b)
		}
	}
}

func TestMeasureOption(t *testing.T) {
	c, err := Generate(Spec{Qubits: 4, Blocks: 5, Seed: 2, Measure: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCounts()[gate.Measure] != 4 {
		t.Fatal("measure_all missing")
	}
}

func TestDeterminismAndSeedSensitivity(t *testing.T) {
	a, err := Generate(Spec{Qubits: 5, Blocks: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Qubits: 5, Blocks: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different circuits")
	}
	c, err := Generate(Spec{Qubits: 5, Blocks: 50, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestAnglesInRange(t *testing.T) {
	c, err := Generate(Spec{Qubits: 4, Blocks: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range c.Ops {
		for _, p := range op.Params {
			if p < 0 || p >= 2*math.Pi {
				t.Fatalf("angle %g outside [0, 2π)", p)
			}
		}
	}
}

func TestRandomQubitPairs(t *testing.T) {
	rng := qmath.NewRNG(3)
	pairs, err := RandomQubitPairs(5, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]int{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self-pair generated")
		}
		if p[0] < 0 || p[0] >= 5 || p[1] < 0 || p[1] >= 5 {
			t.Fatal("qubit out of range")
		}
		seen[p]++
	}
	// All 20 ordered pairs should appear with 2000 draws.
	if len(seen) != 20 {
		t.Fatalf("only %d/20 ordered pairs seen", len(seen))
	}
}

func TestRandomQubitPairsErrors(t *testing.T) {
	rng := qmath.NewRNG(1)
	if _, err := RandomQubitPairs(1, 5, rng); err == nil {
		t.Fatal("1-qubit pairs accepted")
	}
	if _, err := RandomQubitPairs(3, -1, rng); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Qubits: 1, Blocks: 5}); err == nil {
		t.Fatal("1 qubit accepted")
	}
	if _, err := Generate(Spec{Qubits: 3, Blocks: 0}); err == nil {
		t.Fatal("0 blocks accepted")
	}
}

func TestGenerateList(t *testing.T) {
	list, err := GenerateList(4, 10, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 8 {
		t.Fatalf("count %d", len(list))
	}
	// Circuits must be mutually distinct (independent seeds).
	for i := 0; i < len(list); i++ {
		for j := i + 1; j < len(list); j++ {
			if list[i].String() == list[j].String() {
				t.Fatalf("circuits %d and %d identical", i, j)
			}
		}
	}
}

func TestGeneratedUnitaryIsNonTrivial(t *testing.T) {
	// Simulating a random unitary must spread amplitude: the state
	// should not stay concentrated on |0...0> (non-Clifford workload).
	c, err := Generate(Spec{Qubits: 6, Blocks: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.MustNew(6, 1)
	for _, op := range c.Ops {
		s.ApplyGate(op.Gate, op.Qubits, op.Params)
	}
	p0 := s.Probabilities()[0]
	if p0 > 0.5 {
		t.Fatalf("random unitary left %g mass on |0>", p0)
	}
	if n := s.Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm %g", n)
	}
}
