// Package randcirc implements the randomized quantum circuit generator
// of Appendix D.1 (Algorithm 1): circuits built from two-qubit "CX
// blocks", each consisting of two random single-qubit rotations (a
// parameterized Ry and Rz with angles drawn uniformly from [0, 2π))
// followed by an entangling CX gate on a randomly drawn ordered qubit
// pair. These random non-Clifford unitaries are the paper's §3 speed
// benchmark workload: 'short' = 100 blocks, 'long' = 10,000 blocks,
// and the Fig. 4b 'intermediate' = 3,000 blocks.
package randcirc

import (
	"fmt"

	"qgear/internal/circuit"
	"qgear/internal/qmath"
)

// Block counts of the paper's three workload sizes.
const (
	ShortBlocks        = 100
	IntermediateBlocks = 3000
	LongBlocks         = 10000
)

// GatesPerBlock is the primitive gate count of one CX block
// (ry + rz + cx).
const GatesPerBlock = 3

// Spec configures one random unitary.
type Spec struct {
	Qubits int
	Blocks int
	Seed   uint64
	// Measure appends measure_all, matching the 3,000-shot sampling
	// runs of Table 1.
	Measure bool
}

// RandomQubitPairs draws k ordered qubit pairs (control, target) with
// replacement from all nq·(nq-1) valid pairs, excluding self-pairs —
// the paper's random_qubit_pairs helper.
func RandomQubitPairs(nq, k int, rng *qmath.RNG) ([][2]int, error) {
	if nq < 2 {
		return nil, fmt.Errorf("randcirc: need at least 2 qubits, have %d", nq)
	}
	if k < 0 {
		return nil, fmt.Errorf("randcirc: negative pair count %d", k)
	}
	pairs := make([][2]int, k)
	for i := range pairs {
		qc := rng.Intn(nq)
		// Algorithm 1: resample the target until it differs from the
		// control.
		qt := rng.Intn(nq)
		for qt == qc {
			qt = rng.Intn(nq)
		}
		pairs[i] = [2]int{qc, qt}
	}
	return pairs, nil
}

// Generate builds one random CX-block circuit per Algorithm 1.
func Generate(spec Spec) (*circuit.Circuit, error) {
	if spec.Qubits < 2 {
		return nil, fmt.Errorf("randcirc: need at least 2 qubits, have %d", spec.Qubits)
	}
	if spec.Blocks < 1 {
		return nil, fmt.Errorf("randcirc: need at least 1 block, have %d", spec.Blocks)
	}
	rng := qmath.NewRNG(spec.Seed)
	pairs, err := RandomQubitPairs(spec.Qubits, spec.Blocks, rng)
	if err != nil {
		return nil, err
	}
	c := circuit.New(spec.Qubits, 0)
	c.Name = fmt.Sprintf("random_%db_%dq_s%d", spec.Blocks, spec.Qubits, spec.Seed)
	for _, p := range pairs {
		qc, qt := p[0], p[1]
		c.RY(rng.Angle(), qc)
		c.RZ(rng.Angle(), qt)
		c.CX(qc, qt)
	}
	if spec.Measure {
		c.MeasureAll()
	}
	return c, nil
}

// GenerateList builds a batch of independent random unitaries with
// split seeds, the "list of quantum circuits" the tensor encoder
// consumes (generate_random_gateList in the paper).
func GenerateList(qubits, blocks, count int, seed uint64) ([]*circuit.Circuit, error) {
	root := qmath.NewRNG(seed)
	out := make([]*circuit.Circuit, count)
	for i := range out {
		c, err := Generate(Spec{Qubits: qubits, Blocks: blocks, Seed: root.Uint64()})
		if err != nil {
			return nil, err
		}
		c.Name = fmt.Sprintf("random_%db_%dq_i%d", blocks, qubits, i)
		out[i] = c
	}
	return out, nil
}
