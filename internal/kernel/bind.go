package kernel

import (
	"fmt"

	"qgear/internal/gate"
	"qgear/internal/statevec"
)

// Parameterized plans: a TilePlan compiled from a parameterized kernel
// records, for every gate whose matrix depends on a rotation angle,
// *where* the value-derived artifact landed (a micro-op in a tile run,
// a global-sweep instruction, an exchange op). Rebinding then patches
// exactly those artifacts with matrices derived by the same
// gate.Matrix1 calls a fresh compile would make, while reusing the
// plan's structure — run boundaries, relabeling schedule, exchange
// batching — untouched. At the default transform configuration the
// plan structure is value-independent (mixingTargets never reads
// Params), so a rebound plan is bit-identical to a fresh compile at
// the new values: the compile-once guarantee parameter sweeps rest on.
//
// Run fusion (PlanConfig.FuseRuns) pre-multiplies matrices at compile
// time, entangling values with structure; fused plans are compiled
// with Bindable=false and sweeps fall back to per-point compiles.

// BindSiteKind says which segment field a binding site patches.
type BindSiteKind uint8

const (
	// BindRun patches Segments[Seg].Ops[Op] (a tile-run micro-op).
	BindRun BindSiteKind = iota
	// BindGlobal patches Segments[Seg].Instr.Params (a full-sweep op).
	BindGlobal
	// BindExch patches Segments[Seg].XOps[Op].M (an exchange-segment op).
	BindExch
)

// BindSite locates one parameterized gate's value-derived artifact
// inside a compiled plan. Slot/NParams address the gate's values in
// the flat parameter vector (program order over the source kernel).
type BindSite struct {
	Kind    BindSiteKind
	Seg     int       // segment index
	Op      int       // op index within Ops/XOps (unused for BindGlobal)
	Gate    gate.Type // source gate, for re-deriving the matrix
	Slot    int       // offset into the flat parameter vector
	NParams int       // parameter count of the gate
}

// NumParams returns the kernel's free-parameter count: summed
// parameter counts of parameterized gate instructions in program
// order. Fused instructions bake their values into matrices and
// contribute nothing — callers gating on NumParams equality with the
// source circuit therefore also detect fusion having eaten a slot.
func (k *Kernel) NumParams() int {
	n := 0
	for _, in := range k.Instrs {
		if in.Kind == KGate && in.Gate.ParamCount() > 0 {
			n += len(in.Params)
		}
	}
	return n
}

// Bind returns a copy of the kernel with its free parameters replaced
// by params (flat vector, program order). Instruction slices are
// copy-on-write: only parameterized instructions get fresh Params
// backing; everything else is shared with the receiver.
func (k *Kernel) Bind(params []float64) (*Kernel, error) {
	if want := k.NumParams(); len(params) != want {
		return nil, fmt.Errorf("kernel %q: binding %d values to %d parameter slots", k.Name, len(params), want)
	}
	out := *k
	out.Instrs = append([]Instr(nil), k.Instrs...)
	i := 0
	for j := range out.Instrs {
		in := &out.Instrs[j]
		if in.Kind == KGate && in.Gate.ParamCount() > 0 {
			in.Params = append([]float64(nil), params[i:i+len(in.Params)]...)
			i += len(in.Params)
		}
	}
	return &out, nil
}

// Bind returns a copy of the plan rebound to a new parameter vector.
// Segment structure is shared; only segments holding a binding site
// get copy-on-write op slices, and only the value-derived fields of
// the sites themselves are recomputed — with the identical
// gate.Matrix1 derivations compileTileOp makes, so at configurations
// where plan structure is value-independent the result is
// bit-identical to freshly compiling the rebound kernel. The receiver
// is never mutated (plans are executed concurrently).
func (p *TilePlan) Bind(params []float64) (*TilePlan, error) {
	if !p.Bindable {
		return nil, fmt.Errorf("kernel: plan was compiled without binding sites (run fusion entangles values with structure)")
	}
	if len(params) != p.BindSlots {
		return nil, fmt.Errorf("kernel: binding %d values to a plan with %d parameter slots", len(params), p.BindSlots)
	}
	out := *p
	out.Segments = append([]Segment(nil), p.Segments...)
	copied := make(map[int]bool, len(p.Binds))
	for _, b := range p.Binds {
		if b.Seg < 0 || b.Seg >= len(out.Segments) {
			return nil, fmt.Errorf("kernel: binding site references segment %d of %d", b.Seg, len(out.Segments))
		}
		if b.Slot < 0 || b.NParams < 0 || b.Slot+b.NParams > len(params) {
			return nil, fmt.Errorf("kernel: binding site slot [%d,%d) outside %d-slot vector", b.Slot, b.Slot+b.NParams, len(params))
		}
		seg := &out.Segments[b.Seg]
		vals := params[b.Slot : b.Slot+b.NParams]
		switch b.Kind {
		case BindRun:
			if b.Op < 0 || b.Op >= len(seg.Ops) {
				return nil, fmt.Errorf("kernel: binding site references op %d of %d in segment %d", b.Op, len(seg.Ops), b.Seg)
			}
			if !copied[b.Seg] {
				seg.Ops = append([]statevec.TileOp(nil), seg.Ops...)
				copied[b.Seg] = true
			}
			rebindTileOp(&seg.Ops[b.Op], b.Gate, vals)
		case BindGlobal:
			// Segment structs were copied with the slice; give the
			// instruction a fresh Params backing so the source plan's
			// slice (shared with the kernel) stays untouched.
			seg.Instr.Params = append([]float64(nil), vals...)
		case BindExch:
			if b.Op < 0 || b.Op >= len(seg.XOps) {
				return nil, fmt.Errorf("kernel: binding site references exchange op %d of %d in segment %d", b.Op, len(seg.XOps), b.Seg)
			}
			if !copied[b.Seg] {
				seg.XOps = append([]ExchOp(nil), seg.XOps...)
				copied[b.Seg] = true
			}
			seg.XOps[b.Op].M = exchMatrix(b.Gate, vals)
		default:
			return nil, fmt.Errorf("kernel: unknown binding-site kind %d", b.Kind)
		}
	}
	return &out, nil
}

// rebindTileOp recomputes the value-derived fields of a tile micro-op
// for new parameter values, mirroring compileTileOp's lowering exactly:
// positions, masks, and control layout are structure and stay put.
func rebindTileOp(op *statevec.TileOp, g gate.Type, vals []float64) {
	switch {
	case g == gate.RZ:
		m := gate.Matrix1(g, vals)
		op.A, op.B = m[0], m[3]
	case statevec.IsDiagonalGate(g):
		src := g
		if g == gate.CP {
			src = gate.P
		}
		op.Phase = gate.Matrix1(src, vals)[3]
	case g == gate.CRY:
		op.M = gate.Matrix1(gate.RY, vals)
	default: // rx, ry, u3, and any future parameterized mat1
		op.M = gate.Matrix1(g, vals)
	}
}

// exchMatrix re-derives an exchange op's 2×2 for new values, mirroring
// the exchange lowering in Plan's add.
func exchMatrix(g gate.Type, vals []float64) gate.Mat2 {
	switch {
	case g == gate.CRY:
		return gate.Matrix1(gate.RY, vals)
	default:
		return gate.Matrix1(g, vals)
	}
}
