package kernel

import (
	"testing"

	"qgear/internal/circuit"
)

func TestFusionLocalQubitsRestriction(t *testing.T) {
	// Gates on qubits >= the local limit must never enter fused blocks.
	c := circuit.New(6, 0)
	c.H(0).RY(0.2, 1).CX(0, 1) // fusable, local
	c.H(5).RZ(0.3, 4)          // global: must stay primitive
	c.RY(0.4, 2).RZ(0.5, 2)    // fusable, local
	c.CX(1, 5)                 // touches global qubit: must stay primitive
	k, st, err := FromCircuit(c, Options{FusionWindow: 3, FusionLocalQubits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.FusedGroups == 0 {
		t.Fatal("local gates should still fuse")
	}
	for i, in := range k.Instrs {
		if in.Kind != KFused {
			continue
		}
		for _, q := range in.Qubits {
			if q >= 4 {
				t.Fatalf("instr %d: fused block contains global qubit %d", i, q)
			}
		}
	}
	// Semantics unchanged.
	plain, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !statesClose(runKernel(t, plain), runKernel(t, k), 1e-10) {
		t.Fatal("restricted fusion changed the state")
	}
}

func TestFusionLocalQubitsZeroMeansUnrestricted(t *testing.T) {
	c := circuit.New(4, 0)
	c.H(3).RY(0.1, 3).RZ(0.2, 2)
	k, st, err := FromCircuit(c, Options{FusionWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.FusedGroups == 0 {
		t.Fatal("unrestricted fusion should fuse top qubits")
	}
	hasHighFused := false
	for _, in := range k.Instrs {
		if in.Kind == KFused {
			for _, q := range in.Qubits {
				if q >= 2 {
					hasHighFused = true
				}
			}
		}
	}
	if !hasHighFused {
		t.Fatal("expected fused block on high qubits when unrestricted")
	}
}
