package kernel

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// soupKernel builds a kernel that exercises every plan feature:
// tile-local runs, diagonal/control predicates, SWAP absorption,
// relabeling bit-swaps, global fallbacks, and fused blocks.
func soupKernel(t *testing.T, n int) *Kernel {
	t.Helper()
	k := New("soup", n)
	rng := qmath.NewRNG(7)
	for i := 0; i < 120; i++ {
		q := int(rng.Uint64() % uint64(n))
		p := int(rng.Uint64() % uint64(n))
		if p == q {
			p = (p + 1) % n
		}
		switch i % 8 {
		case 0:
			k.H(q)
		case 1:
			k.Rz(0.1*float64(i+1), q)
		case 2:
			k.XCtrl(q, p)
		case 3:
			k.CR1(0.2*float64(i+1), q, p)
		case 4:
			k.Swap(q, p)
		case 5:
			k.Ry(0.3*float64(i+1), q)
		case 6:
			k.RyCtrl(0.05*float64(i+1), q, p)
		case 7:
			k.ZCtrl(q, p)
		}
	}
	// A dense fused block (identity on two qubits keeps Validate and
	// execution happy while exercising the KFused wire format).
	fused := make([]complex128, 16)
	for i := 0; i < 4; i++ {
		fused[i*4+i] = 1
	}
	k.Instrs = append(k.Instrs, Instr{Kind: KFused, Qubits: []int{0, 1}, Mat: fused})
	k.Mz()
	return k
}

// TestKernelRoundTrip: encode/decode reproduces the kernel exactly.
func TestKernelRoundTrip(t *testing.T) {
	k := soupKernel(t, 8)
	var buf bytes.Buffer
	if err := EncodeKernel(&buf, k); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeKernel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, k) {
		t.Fatalf("kernel drifted through encoding:\n got %+v\nwant %+v", got, k)
	}
}

// TestPlanRoundTripConfigs: plans compiled under every configuration
// axis (distributed rank bits, run fusion) round-trip DeepEqual.
func TestPlanRoundTripConfigs(t *testing.T) {
	for _, cfg := range []PlanConfig{
		{TileBits: 4},
		{TileBits: 4, FuseRuns: true},
		{TileBits: 3, GlobalBits: 2},
		{TileBits: 3, GlobalBits: 2, FuseRuns: true},
	} {
		k := soupKernel(t, 8)
		p, err := Plan(k, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		var buf bytes.Buffer
		if err := EncodePlan(&buf, p); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		got, err := DecodePlan(&buf)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("cfg %+v: plan drifted through encoding", cfg)
		}
	}
}

// TestDecodedPlanExecutesIdentically: the decoded plan must produce
// bit-identical amplitudes to the original plan on the same kernel.
func TestDecodedPlanExecutesIdentically(t *testing.T) {
	k := soupKernel(t, 8)
	p, err := Plan(k, PlanConfig{TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}

	a := statevec.MustNew(8, 1)
	b := statevec.MustNew(8, 1)
	if err := p.Execute(a); err != nil {
		t.Fatal(err)
	}
	if err := decoded.Execute(b); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Probabilities(), b.Probabilities()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("probability[%d]: %v vs %v", i, pa[i], pb[i])
		}
	}
}

// TestDecodeKernelRejectsGarbage: corrupt streams fail cleanly.
func TestDecodeKernelRejectsGarbage(t *testing.T) {
	k := soupKernel(t, 6)
	var buf bytes.Buffer
	if err := EncodeKernel(&buf, k); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncations at many offsets must all error, never panic.
	for cut := 0; cut < len(raw); cut += 13 {
		if _, err := DecodeKernel(bytes.NewReader(raw[:cut])); err == nil && cut < len(raw)-1 {
			// A prefix that happens to parse fully would be a miracle;
			// only the full stream may succeed.
			t.Fatalf("truncated kernel stream (cut %d/%d) decoded without error", cut, len(raw))
		}
	}
	// An implausible instruction count is rejected before allocating.
	bad := append([]byte(nil), raw...)
	// name is "soup": 4-byte len + 4 bytes, then nq, nclbits, then count.
	countOff := 4 + 4 + 4 + 4
	bad[countOff] = 0xff
	bad[countOff+1] = 0xff
	bad[countOff+2] = 0xff
	bad[countOff+3] = 0x7f
	if _, err := DecodeKernel(bytes.NewReader(bad)); err == nil {
		t.Fatal("implausible instruction count accepted")
	}
}

// TestSizeBytes: sizes are positive, grow with content, and the plan
// size reflects its segment arrays.
func TestSizeBytes(t *testing.T) {
	small := soupKernel(t, 6)
	if small.SizeBytes() <= 0 {
		t.Fatal("kernel SizeBytes not positive")
	}
	big := New("big", 6)
	for i := 0; i < 1000; i++ {
		big.H(i % 6)
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("1000-instr kernel (%d B) not larger than 120-instr kernel (%d B)",
			big.SizeBytes(), small.SizeBytes())
	}
	p, err := Plan(small, PlanConfig{TileBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeBytes() <= 0 {
		t.Fatal("plan SizeBytes not positive")
	}
	perOp := float64(p.SizeBytes()) / math.Max(1, float64(p.Stats.TileLocal))
	if perOp < 8 {
		t.Fatalf("plan byte accounting implausibly small: %d B for %d tile-local ops", p.SizeBytes(), p.Stats.TileLocal)
	}
	_ = gate.H // keep the import honest for soupKernel's builder calls
}
