package kernel

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"qgear/internal/gate"
	"qgear/internal/statevec"
)

// Binary serialization for the execution IR: kernels and compiled
// TilePlans round-trip through a compact little-endian encoding so the
// persistence layer can keep compiled artifacts across process
// restarts (the backend wraps these raw streams in a versioned,
// CRC-protected container). Encodings are exact — float64 parameters
// and complex matrix entries are written bit-for-bit — so a decoded
// plan executes amplitude-identically to the one that was saved.

// Serialization limits: decode rejects implausible counts up front so
// a corrupt length field cannot demand a giant allocation.
const (
	maxSerialInstrs = 1 << 26
	maxSerialOps    = 1 << 26
	maxSerialQubits = 1 << 20
	maxSerialName   = 1 << 16
)

// wire wraps a writer with sticky-error little-endian primitives.
type wire struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *wire) u8(v uint8) {
	if e.err != nil {
		return
	}
	e.buf[0] = v
	_, e.err = e.w.Write(e.buf[:1])
}

func (e *wire) u32(v uint32) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	_, e.err = e.w.Write(e.buf[:4])
}

func (e *wire) u64(v uint64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *wire) i64(v int64)       { e.u64(uint64(v)) }
func (e *wire) f64(v float64)     { e.u64(math.Float64bits(v)) }
func (e *wire) c128(v complex128) { e.f64(real(v)); e.f64(imag(v)) }
func (e *wire) str(s string) {
	if e.err == nil && len(s) > maxSerialName {
		e.err = fmt.Errorf("kernel: string of %d bytes exceeds serialization limit", len(s))
		return
	}
	e.u32(uint32(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// unwire wraps a reader with sticky-error little-endian primitives.
type unwire struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (d *unwire) u8() uint8 {
	if d.err != nil {
		return 0
	}
	_, d.err = io.ReadFull(d.r, d.buf[:1])
	return d.buf[0]
}

func (d *unwire) u32() uint32 {
	if d.err != nil {
		return 0
	}
	_, d.err = io.ReadFull(d.r, d.buf[:4])
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *unwire) u64() uint64 {
	if d.err != nil {
		return 0
	}
	_, d.err = io.ReadFull(d.r, d.buf[:8])
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *unwire) i64() int64       { return int64(d.u64()) }
func (d *unwire) f64() float64     { return math.Float64frombits(d.u64()) }
func (d *unwire) c128() complex128 { re := d.f64(); return complex(re, d.f64()) }
func (d *unwire) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxSerialName {
		d.err = fmt.Errorf("kernel: implausible string length %d", n)
		return ""
	}
	buf := make([]byte, n)
	_, d.err = io.ReadFull(d.r, buf)
	return string(buf)
}

// count reads a length field bounded by limit.
func (d *unwire) count(limit int, what string) int {
	n := d.u32()
	if d.err == nil && int(n) > limit {
		d.err = fmt.Errorf("kernel: implausible %s count %d", what, n)
	}
	return int(n)
}

// EncodeKernel writes k's exact binary encoding to w.
func EncodeKernel(w io.Writer, k *Kernel) error {
	e := &wire{w: w}
	e.str(k.Name)
	e.u32(uint32(k.NumQubits))
	e.u32(uint32(k.NumClbits))
	e.u32(uint32(len(k.Instrs)))
	for _, in := range k.Instrs {
		e.u8(uint8(in.Kind))
		e.u8(uint8(in.Gate))
		e.u32(uint32(len(in.Qubits)))
		for _, q := range in.Qubits {
			e.u32(uint32(q))
		}
		e.u32(uint32(len(in.Params)))
		for _, p := range in.Params {
			e.f64(p)
		}
		e.u32(uint32(len(in.Mat)))
		for _, m := range in.Mat {
			e.c128(m)
		}
		e.i64(int64(in.Clbit))
	}
	return e.err
}

// DecodeKernel reads a kernel written by EncodeKernel and validates
// its structural invariants.
func DecodeKernel(r io.Reader) (*Kernel, error) {
	d := &unwire{r: r}
	k := &Kernel{Name: d.str()}
	k.NumQubits = int(d.u32())
	k.NumClbits = int(d.u32())
	n := d.count(maxSerialInstrs, "instruction")
	if d.err != nil {
		return nil, d.err
	}
	k.Instrs = make([]Instr, n)
	for i := range k.Instrs {
		in := &k.Instrs[i]
		in.Kind = InstrKind(d.u8())
		in.Gate = gate.Type(d.u8())
		if nq := d.count(maxSerialQubits, "qubit"); d.err == nil && nq > 0 {
			in.Qubits = make([]int, nq)
			for j := range in.Qubits {
				in.Qubits[j] = int(d.u32())
			}
		}
		if np := d.count(maxSerialQubits, "param"); d.err == nil && np > 0 {
			in.Params = make([]float64, np)
			for j := range in.Params {
				in.Params[j] = d.f64()
			}
		}
		if nm := d.count(maxSerialOps, "matrix entry"); d.err == nil && nm > 0 {
			in.Mat = make([]complex128, nm)
			for j := range in.Mat {
				in.Mat[j] = d.c128()
			}
		}
		in.Clbit = int(d.i64())
		if d.err != nil {
			return nil, d.err
		}
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("kernel: decoded kernel invalid: %w", err)
	}
	return k, nil
}

// EncodePlan writes p's exact binary encoding to w.
func EncodePlan(w io.Writer, p *TilePlan) error {
	e := &wire{w: w}
	e.u32(uint32(p.TileBits))
	e.u32(uint32(p.NumQubits))
	e.u32(uint32(p.GlobalBits))
	e.u32(uint32(len(p.Segments)))
	for _, seg := range p.Segments {
		e.u8(uint8(seg.Kind))
		switch seg.Kind {
		case SegRun:
			e.u32(uint32(len(seg.Ops)))
			for _, op := range seg.Ops {
				encodeTileOp(e, op)
			}
		case SegGlobal:
			encodeInstr(e, seg.Instr)
		case SegBitSwap:
			e.u32(uint32(seg.A))
			e.u32(uint32(seg.B))
		case SegExchange:
			e.u32(uint32(seg.TBit))
			e.u32(uint32(len(seg.XOps)))
			for _, x := range seg.XOps {
				for _, m := range x.M {
					e.c128(m)
				}
				e.u64(x.LowCtrl)
				e.u64(x.RankCtrl)
			}
		default:
			return fmt.Errorf("kernel: cannot encode segment kind %d", seg.Kind)
		}
	}
	e.u32(uint32(len(p.FinalPerm)))
	for _, q := range p.FinalPerm {
		e.u32(uint32(q))
	}
	for _, v := range [...]int{
		p.Stats.TileLocal, p.Stats.Global, p.Stats.Runs, p.Stats.BitSwaps,
		p.Stats.PermSwaps, p.Stats.FusedOps, p.Stats.ExchangeSegs,
		p.Stats.ExchangeGates, p.Stats.RankLocal,
	} {
		e.i64(int64(v))
	}
	var bindable uint8
	if p.Bindable {
		bindable = 1
	}
	e.u8(bindable)
	e.u32(uint32(p.BindSlots))
	e.u32(uint32(len(p.Binds)))
	for _, b := range p.Binds {
		e.u8(uint8(b.Kind))
		e.u32(uint32(b.Seg))
		e.u32(uint32(b.Op))
		e.u8(uint8(b.Gate))
		e.u32(uint32(b.Slot))
		e.u32(uint32(b.NParams))
	}
	return e.err
}

func encodeInstr(e *wire, in Instr) {
	e.u8(uint8(in.Kind))
	e.u8(uint8(in.Gate))
	e.u32(uint32(len(in.Qubits)))
	for _, q := range in.Qubits {
		e.u32(uint32(q))
	}
	e.u32(uint32(len(in.Params)))
	for _, p := range in.Params {
		e.f64(p)
	}
	e.u32(uint32(len(in.Mat)))
	for _, m := range in.Mat {
		e.c128(m)
	}
	e.i64(int64(in.Clbit))
}

func decodeInstr(d *unwire) Instr {
	var in Instr
	in.Kind = InstrKind(d.u8())
	in.Gate = gate.Type(d.u8())
	if nq := d.count(maxSerialQubits, "qubit"); d.err == nil && nq > 0 {
		in.Qubits = make([]int, nq)
		for j := range in.Qubits {
			in.Qubits[j] = int(d.u32())
		}
	}
	if np := d.count(maxSerialQubits, "param"); d.err == nil && np > 0 {
		in.Params = make([]float64, np)
		for j := range in.Params {
			in.Params[j] = d.f64()
		}
	}
	if nm := d.count(maxSerialOps, "matrix entry"); d.err == nil && nm > 0 {
		in.Mat = make([]complex128, nm)
		for j := range in.Mat {
			in.Mat[j] = d.c128()
		}
	}
	in.Clbit = int(d.i64())
	return in
}

func encodeTileOp(e *wire, op statevec.TileOp) {
	e.u8(uint8(op.Kind))
	e.u32(uint32(op.T))
	e.u32(uint32(op.C))
	var ctrl uint8
	if op.HasCtrl {
		ctrl = 1
	}
	e.u8(ctrl)
	e.u64(op.HighMask)
	e.u64(op.LowMask)
	e.c128(op.Phase)
	e.c128(op.A)
	e.c128(op.B)
	for _, m := range op.M {
		e.c128(m)
	}
	e.u32(uint32(len(op.Qubits)))
	for _, q := range op.Qubits {
		e.u32(uint32(q))
	}
	e.u32(uint32(len(op.Mat)))
	for _, m := range op.Mat {
		e.c128(m)
	}
}

func decodeTileOp(d *unwire) statevec.TileOp {
	var op statevec.TileOp
	op.Kind = statevec.TileOpKind(d.u8())
	op.T = uint(d.u32())
	op.C = uint(d.u32())
	op.HasCtrl = d.u8() != 0
	op.HighMask = d.u64()
	op.LowMask = d.u64()
	op.Phase = d.c128()
	op.A = d.c128()
	op.B = d.c128()
	for i := range op.M {
		op.M[i] = d.c128()
	}
	if nq := d.count(maxSerialQubits, "fused qubit"); d.err == nil && nq > 0 {
		op.Qubits = make([]uint, nq)
		for j := range op.Qubits {
			op.Qubits[j] = uint(d.u32())
		}
	}
	if nm := d.count(maxSerialOps, "fused matrix entry"); d.err == nil && nm > 0 {
		op.Mat = make([]complex128, nm)
		for j := range op.Mat {
			op.Mat[j] = d.c128()
		}
	}
	return op
}

// DecodePlan reads a plan written by EncodePlan.
func DecodePlan(r io.Reader) (*TilePlan, error) {
	d := &unwire{r: r}
	p := &TilePlan{}
	p.TileBits = int(d.u32())
	p.NumQubits = int(d.u32())
	p.GlobalBits = int(d.u32())
	nseg := d.count(maxSerialInstrs, "segment")
	if d.err != nil {
		return nil, d.err
	}
	p.Segments = make([]Segment, nseg)
	for i := range p.Segments {
		seg := &p.Segments[i]
		seg.Kind = SegmentKind(d.u8())
		switch seg.Kind {
		case SegRun:
			nops := d.count(maxSerialOps, "tile op")
			if d.err != nil {
				return nil, d.err
			}
			seg.Ops = make([]statevec.TileOp, nops)
			for j := range seg.Ops {
				seg.Ops[j] = decodeTileOp(d)
			}
		case SegGlobal:
			seg.Instr = decodeInstr(d)
		case SegBitSwap:
			seg.A = int(d.u32())
			seg.B = int(d.u32())
		case SegExchange:
			seg.TBit = int(d.u32())
			nx := d.count(maxSerialOps, "exchange op")
			if d.err != nil {
				return nil, d.err
			}
			seg.XOps = make([]ExchOp, nx)
			for j := range seg.XOps {
				x := &seg.XOps[j]
				for mi := range x.M {
					x.M[mi] = d.c128()
				}
				x.LowCtrl = d.u64()
				x.RankCtrl = d.u64()
			}
		default:
			if d.err != nil {
				return nil, d.err
			}
			return nil, fmt.Errorf("kernel: unknown segment kind %d in encoded plan", seg.Kind)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	if np := d.count(maxSerialQubits, "permutation entry"); d.err == nil && np > 0 {
		p.FinalPerm = make([]int, np)
		for j := range p.FinalPerm {
			p.FinalPerm[j] = int(d.u32())
		}
	}
	for _, dst := range [...]*int{
		&p.Stats.TileLocal, &p.Stats.Global, &p.Stats.Runs, &p.Stats.BitSwaps,
		&p.Stats.PermSwaps, &p.Stats.FusedOps, &p.Stats.ExchangeSegs,
		&p.Stats.ExchangeGates, &p.Stats.RankLocal,
	} {
		*dst = int(d.i64())
	}
	p.Bindable = d.u8() != 0
	p.BindSlots = int(d.u32())
	if nb := d.count(maxSerialInstrs, "binding site"); d.err == nil && nb > 0 {
		p.Binds = make([]BindSite, nb)
		for j := range p.Binds {
			b := &p.Binds[j]
			b.Kind = BindSiteKind(d.u8())
			b.Seg = int(d.u32())
			b.Op = int(d.u32())
			b.Gate = gate.Type(d.u8())
			b.Slot = int(d.u32())
			b.NParams = int(d.u32())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if p.NumQubits <= 0 || p.TileBits <= 0 || p.GlobalBits < 0 || p.GlobalBits >= p.NumQubits {
		return nil, fmt.Errorf("kernel: decoded plan has inconsistent geometry (%d qubits, tile %d, %d global bits)",
			p.NumQubits, p.TileBits, p.GlobalBits)
	}
	return p, nil
}

// Static struct sizes for byte accounting (unsafe.Sizeof is the exact
// resident footprint of the fixed parts; dynamic slices are added per
// element below).
const (
	instrBase  = int64(unsafe.Sizeof(Instr{}))
	segBase    = int64(unsafe.Sizeof(Segment{}))
	tileOpBase = int64(unsafe.Sizeof(statevec.TileOp{}))
	exchOpBase = int64(unsafe.Sizeof(ExchOp{}))
	bindBase   = int64(unsafe.Sizeof(BindSite{}))
	planBase   = int64(unsafe.Sizeof(TilePlan{}))
	kernelBase = int64(unsafe.Sizeof(Kernel{}))
)

func instrBytes(in Instr) int64 {
	return instrBase + 8*int64(len(in.Qubits)) + 8*int64(len(in.Params)) + 16*int64(len(in.Mat))
}

// SizeBytes returns the kernel's resident memory footprint — the
// figure byte-accounted caches charge for holding it.
func (k *Kernel) SizeBytes() int64 {
	n := kernelBase + int64(len(k.Name))
	for _, in := range k.Instrs {
		n += instrBytes(in)
	}
	return n
}

// SizeBytes returns the plan's resident memory footprint: the segment
// array with every tile micro-op, exchange op, global instruction and
// the final permutation. Byte-accounted plan caches charge this figure
// per entry.
func (p *TilePlan) SizeBytes() int64 {
	n := planBase + 8*int64(len(p.FinalPerm)) + segBase*int64(len(p.Segments)) + bindBase*int64(len(p.Binds))
	for _, seg := range p.Segments {
		for _, op := range seg.Ops {
			n += tileOpBase + 8*int64(len(op.Qubits)) + 16*int64(len(op.Mat))
		}
		n += exchOpBase * int64(len(seg.XOps))
		if seg.Kind == SegGlobal {
			n += instrBytes(seg.Instr) - instrBase // Instr base already inside segBase
		}
	}
	return n
}
