// Package kernel implements the "kernel based" side of the paper's
// Fig. 2b: a CUDA-Q-like kernel intermediate representation, the
// builder API that mirrors cudaq.kernel programs (h(qr[0]),
// x.ctrl(qr[0], qr[i]), mz(qr)), and the Q-GEAR transformation that
// converts object-based circuits into kernels gate-by-gate in constant
// time per gate (§2.2), with the gate-fusion and small-angle
// approximation options of Appendix D.2.
package kernel

import (
	"fmt"
	"strings"

	"qgear/internal/gate"
)

// InstrKind discriminates kernel instructions.
type InstrKind uint8

const (
	// KGate is a primitive gate instruction.
	KGate InstrKind = iota
	// KFused is a dense fused unitary on up to MaxFusedQubits qubits,
	// produced by the fusion pass.
	KFused
	// KMeasure measures one qubit into a classical slot.
	KMeasure
	// KBarrier is a scheduling barrier.
	KBarrier
)

// Instr is one kernel instruction.
type Instr struct {
	Kind   InstrKind
	Gate   gate.Type // for KGate
	Qubits []int
	Params []float64
	Mat    []complex128 // for KFused: row-major 2^k × 2^k
	Clbit  int          // for KMeasure
}

// Kernel is a flat instruction stream over a qvector of NumQubits
// qubits — the GPU-executable form Q-GEAR targets.
type Kernel struct {
	Name      string
	NumQubits int
	NumClbits int
	Instrs    []Instr
}

// New returns an empty kernel over nq qubits (the cudaq.qvector(N)
// allocation of the paper's listing).
func New(name string, nq int) *Kernel {
	if nq < 0 {
		panic("kernel: negative qubit count")
	}
	return &Kernel{Name: name, NumQubits: nq}
}

func (k *Kernel) checkQubit(q int) {
	if q < 0 || q >= k.NumQubits {
		panic(fmt.Sprintf("kernel: qubit %d out of range [0,%d)", q, k.NumQubits))
	}
}

func (k *Kernel) gate1(g gate.Type, q int, params ...float64) *Kernel {
	k.checkQubit(q)
	k.Instrs = append(k.Instrs, Instr{Kind: KGate, Gate: g, Qubits: []int{q}, Params: params})
	return k
}

func (k *Kernel) gate2(g gate.Type, c, t int, params ...float64) *Kernel {
	k.checkQubit(c)
	k.checkQubit(t)
	if c == t {
		panic(fmt.Sprintf("kernel: %v with identical operands %d", g, c))
	}
	k.Instrs = append(k.Instrs, Instr{Kind: KGate, Gate: g, Qubits: []int{c, t}, Params: params})
	return k
}

// H appends a Hadamard.
func (k *Kernel) H(q int) *Kernel { return k.gate1(gate.H, q) }

// X appends a Pauli-X.
func (k *Kernel) X(q int) *Kernel { return k.gate1(gate.X, q) }

// Rx appends an X rotation.
func (k *Kernel) Rx(theta float64, q int) *Kernel { return k.gate1(gate.RX, q, theta) }

// Ry appends a Y rotation.
func (k *Kernel) Ry(theta float64, q int) *Kernel { return k.gate1(gate.RY, q, theta) }

// Rz appends a Z rotation.
func (k *Kernel) Rz(theta float64, q int) *Kernel { return k.gate1(gate.RZ, q, theta) }

// XCtrl appends a controlled-X (cudaq's x.ctrl(control, target)).
func (k *Kernel) XCtrl(c, t int) *Kernel { return k.gate2(gate.CX, c, t) }

// ZCtrl appends a controlled-Z.
func (k *Kernel) ZCtrl(c, t int) *Kernel { return k.gate2(gate.CZ, c, t) }

// CR1 appends the controlled arbitrary rotation of Eq. (9).
func (k *Kernel) CR1(lambda float64, c, t int) *Kernel { return k.gate2(gate.CP, c, t, lambda) }

// RyCtrl appends a controlled Ry.
func (k *Kernel) RyCtrl(theta float64, c, t int) *Kernel { return k.gate2(gate.CRY, c, t, theta) }

// Swap appends a swap.
func (k *Kernel) Swap(a, b int) *Kernel { return k.gate2(gate.SWAP, a, b) }

// Barrier appends a scheduling barrier.
func (k *Kernel) Barrier() *Kernel {
	k.Instrs = append(k.Instrs, Instr{Kind: KBarrier})
	return k
}

// Mz measures every qubit into the matching classical slot (cudaq's
// mz(qr)).
func (k *Kernel) Mz() *Kernel {
	if k.NumClbits < k.NumQubits {
		k.NumClbits = k.NumQubits
	}
	for q := 0; q < k.NumQubits; q++ {
		k.Instrs = append(k.Instrs, Instr{Kind: KMeasure, Qubits: []int{q}, Clbit: q})
	}
	return k
}

// MeasureOne measures a single qubit into clbit cb.
func (k *Kernel) MeasureOne(q, cb int) *Kernel {
	k.checkQubit(q)
	if cb < 0 {
		panic("kernel: negative clbit")
	}
	if cb >= k.NumClbits {
		k.NumClbits = cb + 1
	}
	k.Instrs = append(k.Instrs, Instr{Kind: KMeasure, Qubits: []int{q}, Clbit: cb})
	return k
}

// NumGates returns the number of executable gate instructions (KGate +
// KFused).
func (k *Kernel) NumGates() int {
	n := 0
	for _, in := range k.Instrs {
		if in.Kind == KGate || in.Kind == KFused {
			n++
		}
	}
	return n
}

// CountTwoQubit counts primitive two-qubit gates (fused blocks count
// their source gates via Stats, not here).
func (k *Kernel) CountTwoQubit() int {
	n := 0
	for _, in := range k.Instrs {
		if in.Kind == KGate && in.Gate.IsEntangling() {
			n++
		}
	}
	return n
}

// HasMeasurements reports whether any KMeasure instruction exists.
func (k *Kernel) HasMeasurements() bool {
	for _, in := range k.Instrs {
		if in.Kind == KMeasure {
			return true
		}
	}
	return false
}

// Validate checks structural invariants of a kernel built or decoded
// outside the panic-guarded builder.
func (k *Kernel) Validate() error {
	if k.NumQubits < 0 || k.NumClbits < 0 {
		return fmt.Errorf("kernel %q: negative register size", k.Name)
	}
	for i, in := range k.Instrs {
		for _, q := range in.Qubits {
			if q < 0 || q >= k.NumQubits {
				return fmt.Errorf("kernel %q instr %d: qubit %d out of range", k.Name, i, q)
			}
		}
		switch in.Kind {
		case KGate:
			if !in.Gate.Valid() || !in.Gate.IsUnitary() {
				return fmt.Errorf("kernel %q instr %d: bad gate %v", k.Name, i, in.Gate)
			}
			if len(in.Qubits) != in.Gate.Arity() {
				return fmt.Errorf("kernel %q instr %d: %v arity mismatch", k.Name, i, in.Gate)
			}
			if len(in.Params) != in.Gate.ParamCount() {
				return fmt.Errorf("kernel %q instr %d: %v param mismatch", k.Name, i, in.Gate)
			}
			if len(in.Qubits) == 2 && in.Qubits[0] == in.Qubits[1] {
				return fmt.Errorf("kernel %q instr %d: duplicate operands", k.Name, i)
			}
		case KFused:
			kw := len(in.Qubits)
			if kw == 0 {
				return fmt.Errorf("kernel %q instr %d: empty fused op", k.Name, i)
			}
			dim := 1 << uint(kw)
			if len(in.Mat) != dim*dim {
				return fmt.Errorf("kernel %q instr %d: fused matrix %d entries, want %d", k.Name, i, len(in.Mat), dim*dim)
			}
			seen := map[int]bool{}
			for _, q := range in.Qubits {
				if seen[q] {
					return fmt.Errorf("kernel %q instr %d: duplicate fused qubit %d", k.Name, i, q)
				}
				seen[q] = true
			}
		case KMeasure:
			if len(in.Qubits) != 1 {
				return fmt.Errorf("kernel %q instr %d: measure arity", k.Name, i)
			}
			if in.Clbit < 0 || in.Clbit >= k.NumClbits {
				return fmt.Errorf("kernel %q instr %d: clbit %d out of range", k.Name, i, in.Clbit)
			}
		case KBarrier:
		default:
			return fmt.Errorf("kernel %q instr %d: unknown kind %d", k.Name, i, in.Kind)
		}
	}
	return nil
}

// String renders the kernel in a cudaq-flavored listing.
func (k *Kernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s(qvector[%d]):\n", k.Name, k.NumQubits)
	for _, in := range k.Instrs {
		switch in.Kind {
		case KBarrier:
			b.WriteString("  barrier\n")
		case KMeasure:
			fmt.Fprintf(&b, "  mz(q[%d]) -> c[%d]\n", in.Qubits[0], in.Clbit)
		case KFused:
			fmt.Fprintf(&b, "  fused%d(q%v)\n", len(in.Qubits), in.Qubits)
		default:
			name := in.Gate.String()
			if len(in.Params) > 0 {
				fmt.Fprintf(&b, "  %s(%.6g", name, in.Params[0])
				for _, p := range in.Params[1:] {
					fmt.Fprintf(&b, ", %.6g", p)
				}
				b.WriteString(")")
			} else {
				b.WriteString("  " + name)
			}
			fmt.Fprintf(&b, " q%v\n", in.Qubits)
		}
	}
	return b.String()
}
