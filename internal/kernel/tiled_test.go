package kernel

import (
	"math"
	"math/cmplx"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// qftCircuit rebuilds the reversed QFT inline (the qft package sits
// above kernel, so importing it here would cycle).
func qftCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, 0)
	for j := n - 1; j >= 0; j-- {
		c.H(j)
		for k := j - 1; k >= 0; k-- {
			c.CP(2*math.Pi/math.Exp2(float64(j-k+1)), k, j)
		}
	}
	for i := 0; i < n/2; i++ {
		c.SWAP(i, n-1-i)
	}
	return c
}

func qftGateCount(n int) int { return n + n*(n-1)/2 }

// soupGate is one entry of the randomized gate pool: every gate type
// the engine executes, including the permutation-table SWAP and the
// diagonal family the tile compiler special-cases.
type soupGate struct {
	g      gate.Type
	params int
}

var soupPool = []soupGate{
	{gate.H, 0}, {gate.X, 0}, {gate.Y, 0}, {gate.Z, 0},
	{gate.S, 0}, {gate.Sdg, 0}, {gate.T, 0}, {gate.Tdg, 0},
	{gate.RX, 1}, {gate.RY, 1}, {gate.RZ, 1}, {gate.P, 1}, {gate.U3, 3},
	{gate.CX, 0}, {gate.CZ, 0}, {gate.CP, 1}, {gate.CRY, 1}, {gate.SWAP, 0},
}

// gateSoup builds a random circuit over n qubits from the full pool.
func gateSoup(n, gates int, rng *qmath.RNG) *circuit.Circuit {
	c := circuit.New(n, 0)
	c.Name = "soup"
	for i := 0; i < gates; i++ {
		sg := soupPool[rng.Intn(len(soupPool))]
		params := make([]float64, sg.params)
		for j := range params {
			params[j] = rng.Angle() - math.Pi
		}
		q0 := rng.Intn(n)
		if sg.g.Arity() == 2 {
			q1 := rng.Intn(n - 1)
			if q1 >= q0 {
				q1++
			}
			c.Append(sg.g, []int{q0, q1}, params)
		} else {
			c.Append(sg.g, []int{q0}, params)
		}
	}
	return c
}

// maxAmpDiff compares full amplitude vectors.
func maxAmpDiff(t *testing.T, a, b *statevec.State) float64 {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("length mismatch: %d vs %d", a.Len(), b.Len())
	}
	worst := 0.0
	for i := 0; i < a.Len(); i++ {
		if d := cmplx.Abs(a.Amp(uint64(i)) - b.Amp(uint64(i))); d > worst {
			worst = d
		}
	}
	return worst
}

// TestTiledGateSoupEquivalence is the randomized equivalence suite:
// tiled execution must match the naive per-gate path to 1e-12 across
// qubit counts, tile widths, worker counts, fusion windows, and the
// permutation states the SWAP-heavy soup drives the table through.
func TestTiledGateSoupEquivalence(t *testing.T) {
	seed := uint64(0x7a11ed)
	for _, tc := range []struct {
		n, tileBits, workers, window int
	}{
		{3, 5, 1, 0},  // smaller than one tile: plain-executor fallback
		{6, 3, 1, 0},  // 8 tiles of 8 amplitudes
		{6, 3, 4, 0},  // same, parallel
		{9, 4, 1, 0},  // deeper index space
		{9, 4, 4, 2},  // fused pairs in the stream
		{11, 5, 4, 0}, // more high qubits than low
		{11, 5, 4, 4}, // wide fused blocks straddling the boundary
		{12, 8, 3, 3},
		{13, 6, 4, 5},
	} {
		rng := qmath.NewRNG(seed + uint64(tc.n*1000+tc.tileBits*100+tc.workers*10+tc.window))
		c := gateSoup(tc.n, 160, rng)
		k, _, err := FromCircuit(c, Options{FusionWindow: tc.window})
		if err != nil {
			t.Fatalf("n=%d: transform: %v", tc.n, err)
		}

		naive := statevec.MustNew(tc.n, tc.workers)
		if err := Execute(k, naive); err != nil {
			t.Fatalf("n=%d: naive execute: %v", tc.n, err)
		}
		tiled := statevec.MustNew(tc.n, tc.workers)
		if err := ExecuteTiled(k, tiled, tc.tileBits); err != nil {
			t.Fatalf("n=%d tile=%d: tiled execute: %v", tc.n, tc.tileBits, err)
		}

		if d := maxAmpDiff(t, naive, tiled); d > 1e-12 {
			t.Errorf("n=%d tile=%d workers=%d window=%d: max amplitude diff %g > 1e-12",
				tc.n, tc.tileBits, tc.workers, tc.window, d)
		}
		if norm := tiled.Norm(); math.Abs(norm-1) > 1e-9 {
			t.Errorf("n=%d tile=%d: tiled norm %g", tc.n, tc.tileBits, norm)
		}
	}
}

// TestTiledWorkerCountBitIdentity is the workers-axis scaling gate's
// correctness half: the same tiled plan executed at 1, 2, and 4
// workers must produce *bit-identical* amplitude vectors, not merely
// tolerance-close ones. Worker count only changes how disjoint tiles
// and full-sweep chunks are sharded; every amplitude pair sees exactly
// one kernel formula regardless of chunk placement (lanes.go
// contract), so equality here is exact.
func TestTiledWorkerCountBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		n, tileBits, window int
	}{
		{6, 3, 0},
		{10, 4, 0},
		{12, 6, 3},
		{13, 5, 5},
	} {
		rng := qmath.NewRNG(0xb17 + uint64(tc.n*100+tc.tileBits*10+tc.window))
		c := gateSoup(tc.n, 200, rng)
		k, _, err := FromCircuit(c, Options{FusionWindow: tc.window})
		if err != nil {
			t.Fatalf("n=%d: transform: %v", tc.n, err)
		}

		var ref *statevec.State
		for _, workers := range []int{1, 2, 4} {
			s := statevec.MustNew(tc.n, workers)
			if err := ExecuteTiled(k, s, tc.tileBits); err != nil {
				t.Fatalf("n=%d workers=%d: tiled execute: %v", tc.n, workers, err)
			}
			if ref == nil {
				ref = s
				continue
			}
			for i := 0; i < s.Len(); i++ {
				got, want := s.Amp(uint64(i)), ref.Amp(uint64(i))
				if math.Float64bits(real(got)) != math.Float64bits(real(want)) ||
					math.Float64bits(imag(got)) != math.Float64bits(imag(want)) {
					t.Fatalf("n=%d tile=%d window=%d workers=%d: amplitude %d = %v differs from workers=1 value %v",
						tc.n, tc.tileBits, tc.window, workers, i, got, want)
				}
			}
		}

		// The QFT workload the bench ablation times must satisfy the
		// same contract at its exact gate mix.
		kq, _, err := FromCircuit(qftCircuit(tc.n), Options{})
		if err != nil {
			t.Fatalf("qft n=%d: transform: %v", tc.n, err)
		}
		var qref *statevec.State
		for _, workers := range []int{1, 2, 4} {
			s := statevec.MustNew(tc.n, workers)
			if err := ExecuteTiled(kq, s, tc.tileBits); err != nil {
				t.Fatalf("qft n=%d workers=%d: tiled execute: %v", tc.n, workers, err)
			}
			if qref == nil {
				qref = s
				continue
			}
			for i := 0; i < s.Len(); i++ {
				got, want := s.Amp(uint64(i)), qref.Amp(uint64(i))
				if math.Float64bits(real(got)) != math.Float64bits(real(want)) ||
					math.Float64bits(imag(got)) != math.Float64bits(imag(want)) {
					t.Fatalf("qft n=%d workers=%d: amplitude %d = %v differs from workers=1 value %v",
						tc.n, workers, i, got, want)
				}
			}
		}
	}
}

// TestTiledResumesAfterMaterialize checks the lazy-permutation
// contract: after a tiled run leaves a pending relabeling, readout and
// further gate application on the same state stay correct.
func TestTiledResumesAfterMaterialize(t *testing.T) {
	const n, tileBits = 9, 4
	rng := qmath.NewRNG(99)
	c := gateSoup(n, 120, rng)
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}

	naive := statevec.MustNew(n, 1)
	if err := Execute(k, naive); err != nil {
		t.Fatal(err)
	}
	tiled := statevec.MustNew(n, 1)
	if err := ExecuteTiled(k, tiled, tileBits); err != nil {
		t.Fatal(err)
	}

	// Continue evolving both states with plain gates; the tiled state
	// must transparently materialize its layout first.
	naive.ApplyGate(gate.H, []int{n - 1}, nil)
	tiled.ApplyGate(gate.H, []int{n - 1}, nil)
	naive.ApplyGate(gate.CX, []int{n - 1, 0}, nil)
	tiled.ApplyGate(gate.CX, []int{n - 1, 0}, nil)

	if d := maxAmpDiff(t, naive, tiled); d > 1e-12 {
		t.Fatalf("post-materialize evolution diverged: %g", d)
	}
}

// TestTiledQFTPlanShape pins the headline scheduling property on the
// reversed QFT: every cr1 is tile-local, the reversal SWAPs are free
// table updates, and only the high-qubit Hadamards fall back to full
// sweeps — the G-passes-to-a-handful collapse the tentpole claims.
func TestTiledQFTPlanShape(t *testing.T) {
	const n, tileBits = 12, 8
	k, _, err := FromCircuit(qftCircuit(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanTiled(k, tileBits)
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats
	if st.PermSwaps != n/2 {
		t.Errorf("PermSwaps = %d, want %d (all reversal swaps absorbed)", st.PermSwaps, n/2)
	}
	// Only Hadamards on the n-tileBits high qubits may go global; each
	// is mixed exactly once so relabeling never pays.
	if want := n - tileBits; st.Global != want {
		t.Errorf("Global = %d, want %d (one per high-qubit H)", st.Global, want)
	}
	if st.BitSwaps != 0 {
		t.Errorf("BitSwaps = %d, want 0 for QFT", st.BitSwaps)
	}
	wantLocal := qftGateCount(n) - (n - tileBits)
	if st.TileLocal != wantLocal {
		t.Errorf("TileLocal = %d, want %d", st.TileLocal, wantLocal)
	}
	// Memory passes collapse: runs + globals ≪ gate count.
	if passes := st.Runs + st.Global + st.BitSwaps; passes >= qftGateCount(n)/3 {
		t.Errorf("passes = %d, want far fewer than %d gates", passes, qftGateCount(n))
	}

	// And the plan must still be exact.
	naive := statevec.MustNew(n, 2)
	if err := Execute(k, naive); err != nil {
		t.Fatal(err)
	}
	tiled := statevec.MustNew(n, 2)
	if err := plan.Execute(tiled); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDiff(t, naive, tiled); d > 1e-12 {
		t.Fatalf("QFT tiled diff %g", d)
	}
}

// TestTiledRelabelLadder pins the QCrank-shaped win: a long Ry/CX
// ladder targeting a high data qubit triggers exactly one relabeling
// bit-swap, after which the whole ladder is tile-local.
func TestTiledRelabelLadder(t *testing.T) {
	const n, tileBits, data = 10, 6, 9 // data qubit above the boundary
	c := circuit.New(n, 0)
	for q := 0; q < tileBits; q++ {
		c.H(q)
	}
	rng := qmath.NewRNG(7)
	for i := 0; i < 32; i++ {
		c.RY(rng.Angle(), data)
		c.CX(i%tileBits, data)
	}
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanTiled(k, tileBits)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.BitSwaps != 1 {
		t.Errorf("BitSwaps = %d, want 1 (one relabel for the ladder)", plan.Stats.BitSwaps)
	}
	if plan.Stats.Global != 0 {
		t.Errorf("Global = %d, want 0 after relabeling", plan.Stats.Global)
	}
	if plan.FinalPerm == nil {
		t.Error("FinalPerm = nil, want a pending relabeling")
	}

	naive := statevec.MustNew(n, 1)
	if err := Execute(k, naive); err != nil {
		t.Fatal(err)
	}
	tiled := statevec.MustNew(n, 1)
	if err := plan.Execute(tiled); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDiff(t, naive, tiled); d > 1e-12 {
		t.Fatalf("ladder tiled diff %g", d)
	}
}
