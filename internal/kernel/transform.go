package kernel

import (
	"fmt"
	"math"
	"math/cmplx"

	"qgear/internal/cancel"
	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/statevec"
)

// Options configures the Q-GEAR circuit→kernel transformation.
type Options struct {
	// FusionWindow is the maximum qubit width of a fused unitary block;
	// 0 or 1 disables fusion. The paper's QFT kernel uses 5
	// (Appendix D.2: "gate fusion = 5").
	FusionWindow int
	// PruneAngle drops parameterized rotations whose angles are all
	// below this threshold in magnitude — the paper's "approximations
	// for negligible rotation angles". 0 disables pruning.
	PruneAngle float64
	// FusionLocalQubits, when positive, restricts fusion to gates whose
	// operands all lie below this qubit index. Distributed (mgpu)
	// executions set it to the per-device local qubit count so fused
	// blocks never straddle the device boundary.
	FusionLocalQubits int
	// DropMeasurements omits measure instructions, producing the pure
	// unitary kernel (the caller samples from the final state instead).
	DropMeasurements bool
}

// Stats reports what the transformation did; Q-GEAR surfaces these so
// pipelines can log conversion behaviour (the paper's constant-time
// conversion claim is tested against Stats.SourceOps).
type Stats struct {
	SourceOps    int // circuit ops transformed
	EmittedOps   int // kernel instructions produced
	FusedGroups  int // KFused blocks created
	FusedGates   int // source gates absorbed into fused blocks
	PrunedGates  int // rotations dropped by the angle threshold
	Measurements int // measure ops carried over
}

// FromCircuit converts an object-based circuit into a kernel,
// gate-by-gate (§2.2), optionally fusing adjacent gates into dense
// unitaries and pruning negligible rotations. The conversion itself is
// O(1) per gate: each op maps to one instruction without global
// analysis; fusion is a separate linear pass.
func FromCircuit(c *circuit.Circuit, opts Options) (*Kernel, Stats, error) {
	var st Stats
	if err := c.Validate(); err != nil {
		return nil, st, fmt.Errorf("kernel: source circuit invalid: %w", err)
	}
	if opts.FusionWindow > statevec.MaxFusedQubits {
		return nil, st, fmt.Errorf("kernel: fusion window %d exceeds max %d", opts.FusionWindow, statevec.MaxFusedQubits)
	}
	k := New(c.Name+"_kernel", c.NumQubits)
	k.NumClbits = c.NumClbits
	for _, op := range c.Ops {
		st.SourceOps++
		switch op.Gate {
		case gate.Barrier:
			k.Barrier()
		case gate.Measure:
			if opts.DropMeasurements {
				continue
			}
			st.Measurements++
			k.MeasureOne(op.Qubits[0], op.Clbit)
		case gate.I:
			// Identity contributes nothing to the kernel.
		default:
			if opts.PruneAngle > 0 && prunable(op) && maxAbs(op.Params) < opts.PruneAngle {
				st.PrunedGates++
				continue
			}
			k.Instrs = append(k.Instrs, Instr{
				Kind:   KGate,
				Gate:   op.Gate,
				Qubits: append([]int(nil), op.Qubits...),
				Params: append([]float64(nil), op.Params...),
			})
		}
	}
	if opts.FusionWindow >= 2 {
		fuse(k, opts.FusionWindow, opts.FusionLocalQubits, &st)
	}
	st.EmittedOps = len(k.Instrs)
	return k, st, nil
}

// prunable reports whether the gate is a pure rotation that limits to
// identity (up to global phase) as its angles go to zero.
func prunable(op circuit.Op) bool {
	switch op.Gate {
	case gate.RX, gate.RY, gate.RZ, gate.P, gate.CP, gate.CRY:
		return true
	}
	return false
}

func maxAbs(params []float64) float64 {
	m := 0.0
	for _, p := range params {
		if a := math.Abs(p); a > m {
			m = a
		}
	}
	return m
}

// fuse greedily merges runs of adjacent gate instructions whose union
// of operands fits in `window` qubits into single dense unitaries,
// mirroring cuQuantum-style gate fusion. Barriers and measurements cut
// fusion groups; gates touching qubits at or above localLimit (when
// positive) are emitted unfused.
func fuse(k *Kernel, window, localLimit int, st *Stats) {
	var out []Instr
	var group []Instr
	groupQubits := map[int]bool{}

	flush := func() {
		switch {
		case len(group) == 0:
		case len(group) == 1:
			out = append(out, group[0])
		default:
			qubits := make([]int, 0, len(groupQubits))
			for q := range groupQubits {
				qubits = append(qubits, q)
			}
			sortInts(qubits)
			mat := denseMatrix(group, qubits)
			out = append(out, Instr{Kind: KFused, Qubits: qubits, Mat: mat})
			st.FusedGroups++
			st.FusedGates += len(group)
		}
		group = group[:0]
		groupQubits = map[int]bool{}
	}

	fusable := func(in Instr) bool {
		if in.Kind != KGate {
			return false
		}
		if localLimit > 0 {
			for _, q := range in.Qubits {
				if q >= localLimit {
					return false
				}
			}
		}
		return true
	}

	for _, in := range k.Instrs {
		if !fusable(in) {
			flush()
			out = append(out, in)
			continue
		}
		newQ := 0
		for _, q := range in.Qubits {
			if !groupQubits[q] {
				newQ++
			}
		}
		if len(groupQubits)+newQ > window {
			flush()
		}
		for _, q := range in.Qubits {
			groupQubits[q] = true
		}
		group = append(group, in)
	}
	flush()
	k.Instrs = out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// denseMatrix computes the product unitary of a gate group over the
// (sorted) qubit list by running the ops on each basis column of a
// width-k scratch state; column results are the matrix columns.
// qubits[j] is bit j of the local index.
func denseMatrix(group []Instr, qubits []int) []complex128 {
	kw := len(qubits)
	dim := 1 << uint(kw)
	local := make(map[int]int, kw)
	for j, q := range qubits {
		local[q] = j
	}
	m := make([]complex128, dim*dim)
	s := statevec.MustNew(kw, 1)
	for col := 0; col < dim; col++ {
		if err := s.PrepareBasis(uint64(col)); err != nil {
			panic(err) // col < dim by construction
		}
		for _, in := range group {
			lq := make([]int, len(in.Qubits))
			for i, q := range in.Qubits {
				lq[i] = local[q]
			}
			s.ApplyGate(in.Gate, lq, in.Params)
		}
		for row := 0; row < dim; row++ {
			m[row*dim+col] = s.Amp(uint64(row))
		}
	}
	return m
}

// Adjoint returns the inverse kernel: instructions reversed with each
// gate (or fused matrix) replaced by its adjoint. Kernels with
// measurements cannot be inverted.
func (k *Kernel) Adjoint() (*Kernel, error) {
	out := New(k.Name+"_adj", k.NumQubits)
	out.NumClbits = k.NumClbits
	for i := len(k.Instrs) - 1; i >= 0; i-- {
		in := k.Instrs[i]
		switch in.Kind {
		case KMeasure:
			return nil, fmt.Errorf("kernel: cannot take adjoint of measured kernel %q", k.Name)
		case KBarrier:
			out.Barrier()
		case KFused:
			kw := len(in.Qubits)
			dim := 1 << uint(kw)
			adj := make([]complex128, dim*dim)
			for r := 0; r < dim; r++ {
				for c := 0; c < dim; c++ {
					adj[c*dim+r] = cmplx.Conj(in.Mat[r*dim+c])
				}
			}
			out.Instrs = append(out.Instrs, Instr{Kind: KFused, Qubits: append([]int(nil), in.Qubits...), Mat: adj})
		case KGate:
			adjT, adjP, ok := gate.AdjointParams(in.Gate, in.Params)
			if !ok {
				return nil, fmt.Errorf("kernel: no adjoint for %v", in.Gate)
			}
			out.Instrs = append(out.Instrs, Instr{Kind: KGate, Gate: adjT, Qubits: append([]int(nil), in.Qubits...), Params: adjP})
		}
	}
	return out, nil
}

// Execute applies the kernel's unitary instructions to the state.
// Measure instructions are skipped (sampling happens on the final
// state); the caller is responsible for state/kernel size agreement.
func Execute(k *Kernel, s *statevec.State) error {
	return ExecuteCancel(k, s, nil)
}

// cancelPollInstrs is how many per-gate instructions run between
// cancellation polls: frequent enough that an expired job stops within
// a handful of state sweeps, sparse enough that the poll (an atomic
// load plus, with a deadline set, a clock read) is never measurable
// against a gate application.
const cancelPollInstrs = 16

// ExecuteCancel is Execute with a cooperative cancellation flag,
// polled every cancelPollInstrs instructions. A nil flag never trips.
func ExecuteCancel(k *Kernel, s *statevec.State, flag *cancel.Flag) error {
	if s.NumQubits() != k.NumQubits {
		return fmt.Errorf("kernel: state has %d qubits, kernel %q wants %d", s.NumQubits(), k.Name, k.NumQubits)
	}
	for i, in := range k.Instrs {
		if i%cancelPollInstrs == 0 {
			if err := flag.Err(); err != nil {
				return fmt.Errorf("kernel: instr %d: %w", i, err)
			}
		}
		switch in.Kind {
		case KGate:
			s.ApplyGate(in.Gate, in.Qubits, in.Params)
		case KFused:
			if err := s.ApplyFused(in.Qubits, in.Mat); err != nil {
				return fmt.Errorf("kernel: instr %d: %w", i, err)
			}
		case KMeasure, KBarrier:
			// no-op for state evolution
		default:
			return fmt.Errorf("kernel: instr %d has unknown kind %d", i, in.Kind)
		}
	}
	return nil
}
