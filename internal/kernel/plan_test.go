package kernel

import (
	"errors"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// TestRunFusionFoldsAdjacentMat1 checks within-run fusion: adjacent
// same-target single-qubit gates pre-multiply into one micro-op, the
// stats record it, and the fused plan matches the exact plan to
// rounding.
func TestRunFusionFoldsAdjacentMat1(t *testing.T) {
	const n, tileBits = 9, 4
	c := circuit.New(n, 0)
	rng := qmath.NewRNG(31)
	// Dense 1q chains on a few targets, interleaved with structure.
	for i := 0; i < 40; i++ {
		q := rng.Intn(tileBits)
		c.RY(rng.Angle(), q).RX(rng.Angle(), q).H(q)
		if i%5 == 0 {
			c.CX(q, (q+1)%tileBits)
		}
	}
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Plan(k, PlanConfig{TileBits: tileBits})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Plan(k, PlanConfig{TileBits: tileBits, FuseRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Stats.FusedOps == 0 {
		t.Fatal("no micro-ops fused in a 1q-chain-heavy stream")
	}
	if got, want := fused.Stats.TileLocal, exact.Stats.TileLocal; got != want {
		t.Errorf("TileLocal changed under fusion: %d vs %d (source gates must still be counted)", got, want)
	}
	// Fewer executed micro-ops, same distribution to rounding.
	opCount := func(p *TilePlan) int {
		total := 0
		for _, seg := range p.Segments {
			total += len(seg.Ops)
		}
		return total
	}
	if opCount(fused) >= opCount(exact) {
		t.Errorf("fusion did not shrink the op stream: %d vs %d", opCount(fused), opCount(exact))
	}
	a := statevec.MustNew(n, 1)
	if err := exact.Execute(a); err != nil {
		t.Fatal(err)
	}
	b := statevec.MustNew(n, 1)
	if err := fused.Execute(b); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDiff(t, a, b); d > 1e-12 {
		t.Errorf("fused plan diverged: %g", d)
	}
}

// TestRunFusionFoldsDiagonals checks plan-time diagonal folding:
// single-target diagonal micro-ops (t/s/p/rz) merge into a neighboring
// mat1 on the same target as a row or column scale, adjacent diagonals
// collapse to one TileRelPhase, and the folded plan agrees with the
// exact plan to rounding.
func TestRunFusionFoldsDiagonals(t *testing.T) {
	const n, tileBits = 8, 4
	type variant struct {
		name  string
		build func(c *circuit.Circuit, q int, rng *qmath.RNG)
	}
	for _, v := range []variant{
		{"diag-after-mat1", func(c *circuit.Circuit, q int, rng *qmath.RNG) {
			c.H(q)
			c.Append(gate.T, []int{q}, nil) // row scale: T·H
		}},
		{"mat1-after-diag", func(c *circuit.Circuit, q int, rng *qmath.RNG) {
			c.Append(gate.P, []int{q}, []float64{rng.Angle()})
			c.RY(rng.Angle(), q) // column scale: RY·P
		}},
		{"diag-after-diag", func(c *circuit.Circuit, q int, rng *qmath.RNG) {
			c.Append(gate.RZ, []int{q}, []float64{rng.Angle()})
			c.Append(gate.S, []int{q}, nil) // collapses to one TileRelPhase
		}},
	} {
		t.Run(v.name, func(t *testing.T) {
			rng := qmath.NewRNG(97)
			c := circuit.New(n, 0)
			for i := 0; i < 24; i++ {
				q := rng.Intn(tileBits)
				v.build(c, q, rng)
				if i%6 == 0 {
					c.CX(q, (q+1)%tileBits) // break runs so folding must restart
				}
			}
			k, _, err := FromCircuit(c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Plan(k, PlanConfig{TileBits: tileBits})
			if err != nil {
				t.Fatal(err)
			}
			fused, err := Plan(k, PlanConfig{TileBits: tileBits, FuseRuns: true})
			if err != nil {
				t.Fatal(err)
			}
			if fused.Stats.FusedOps == 0 {
				t.Fatal("no micro-ops folded in a diagonal-heavy stream")
			}
			opCount := func(p *TilePlan) int {
				total := 0
				for _, seg := range p.Segments {
					total += len(seg.Ops)
				}
				return total
			}
			if opCount(fused) >= opCount(exact) {
				t.Errorf("diag folding did not shrink the op stream: %d vs %d",
					opCount(fused), opCount(exact))
			}
			a := statevec.MustNew(n, 1)
			if err := exact.Execute(a); err != nil {
				t.Fatal(err)
			}
			b := statevec.MustNew(n, 1)
			if err := fused.Execute(b); err != nil {
				t.Fatal(err)
			}
			if d := maxAmpDiff(t, a, b); d > 1e-12 {
				t.Errorf("folded plan diverged: %g", d)
			}
		})
	}
}

// TestDiagDiagCollapsesToRelPhase pins the merged-op shape: two
// adjacent diagonals on one low target become exactly one TileRelPhase
// micro-op carrying the product factors.
func TestDiagDiagCollapsesToRelPhase(t *testing.T) {
	c := circuit.New(5, 0)
	c.Append(gate.T, []int{1}, nil)
	c.Append(gate.S, []int{1}, nil)
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Plan(k, PlanConfig{TileBits: 3, FuseRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	var ops []statevec.TileOp
	for _, seg := range fused.Segments {
		ops = append(ops, seg.Ops...)
	}
	if len(ops) != 1 {
		t.Fatalf("want 1 merged micro-op, got %d", len(ops))
	}
	op := ops[0]
	if op.Kind != statevec.TileRelPhase || op.T != 1 {
		t.Fatalf("want TileRelPhase on target 1, got kind=%d T=%d", op.Kind, op.T)
	}
	// T then S is diag(1, e^{iπ/4}) then diag(1, i): product diag(1, e^{i3π/4}).
	want := complex(math.Cos(3*math.Pi/4), math.Sin(3*math.Pi/4))
	if cmplx.Abs(op.A-1) > 1e-15 || cmplx.Abs(op.B-want) > 1e-15 {
		t.Fatalf("merged factors A=%v B=%v, want A=1 B=%v", op.A, op.B, want)
	}
	if fused.Stats.FusedOps != 1 {
		t.Fatalf("FusedOps = %d, want 1", fused.Stats.FusedOps)
	}
}

// TestDistributedPlanRejectedBySingleExecutor pins the engine
// boundary: plans compiled with rank bits only run on the distributed
// engine.
func TestDistributedPlanRejectedBySingleExecutor(t *testing.T) {
	k := New("k", 6).H(0).H(5)
	plan, err := Plan(k, PlanConfig{TileBits: 2, GlobalBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.GlobalBits != 1 {
		t.Fatalf("GlobalBits = %d, want 1", plan.GlobalBits)
	}
	s := statevec.MustNew(6, 1)
	if err := plan.Execute(s); err == nil {
		t.Fatal("single-process executor accepted a distributed plan")
	}
}

// TestPlanNoTilingSentinel checks that too-small states fail with
// ErrNoTiling (the signal for the per-gate fallback), distinguishable
// from real planning errors.
func TestPlanNoTilingSentinel(t *testing.T) {
	k := New("small", 3).H(0)
	if _, err := Plan(k, PlanConfig{TileBits: 5}); !errors.Is(err, ErrNoTiling) {
		t.Errorf("small single-process state: err = %v, want ErrNoTiling", err)
	}
	// A distributed shard of one qubit cannot tile either.
	k2 := New("shard", 4).H(0)
	if _, err := Plan(k2, PlanConfig{TileBits: 2, GlobalBits: 3}); !errors.Is(err, ErrNoTiling) {
		t.Errorf("1-qubit shard: err = %v, want ErrNoTiling", err)
	}
	// Invalid configuration is a hard error, not a fallback.
	if _, err := Plan(k2, PlanConfig{TileBits: 2, GlobalBits: 4}); err == nil || errors.Is(err, ErrNoTiling) {
		t.Errorf("GlobalBits == NumQubits: err = %v, want hard error", err)
	}
}

// TestDistributedPlanClampsTileToShard: tiles must fit strictly inside
// the rank shard, whatever width was requested.
func TestDistributedPlanClampsTileToShard(t *testing.T) {
	k := New("k", 8).H(0).H(7)
	plan, err := Plan(k, PlanConfig{TileBits: 14, GlobalBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if local := 8 - 2; plan.TileBits != local-1 {
		t.Errorf("TileBits = %d, want %d (clamped below the shard width)", plan.TileBits, local-1)
	}
}

// TestAutoTileBitsSane: whatever the detection found, the startup
// default must be a usable tile width and consistent with its origin
// report.
func TestAutoTileBitsSane(t *testing.T) {
	got := AutoTileBits()
	bitsVal, source, cacheBytes := TileBitsOrigin()
	if got != bitsVal {
		t.Fatalf("AutoTileBits %d != TileBitsOrigin %d", got, bitsVal)
	}
	switch source {
	case "l2", "l3":
		if got < autoTileMin || got > autoTileMax {
			t.Errorf("detected tile bits %d outside [%d,%d]", got, autoTileMin, autoTileMax)
		}
		if cacheBytes <= 0 {
			t.Errorf("source %q with no cache size", source)
		}
	case "default":
		if got != DefaultTileBits {
			t.Errorf("default source but %d != DefaultTileBits", got)
		}
	case "env":
		if got <= 0 {
			t.Errorf("env source with non-positive width %d", got)
		}
	default:
		t.Errorf("unknown tile-bits source %q", source)
	}
}

// TestReadCacheGeometry exercises the sysfs parser against a synthetic
// cache directory.
func TestReadCacheGeometry(t *testing.T) {
	dir := t.TempDir()
	write := func(idx, name, val string) {
		if err := os.MkdirAll(filepath.Join(dir, idx), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, idx, name), []byte(val+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("index0", "level", "1")
	write("index0", "type", "Data")
	write("index0", "size", "48K")
	write("index1", "level", "1")
	write("index1", "type", "Instruction")
	write("index1", "size", "32K")
	write("index2", "level", "2")
	write("index2", "type", "Unified")
	write("index2", "size", "1M")
	write("index3", "level", "3")
	write("index3", "type", "Unified")
	write("index3", "size", "32M")
	l2, l3 := readCacheGeometry(dir)
	if l2 != 1<<20 {
		t.Errorf("l2 = %d, want %d", l2, 1<<20)
	}
	if l3 != 32<<20 {
		t.Errorf("l3 = %d, want %d", l3, 32<<20)
	}
	if got, want := parseCacheSize("512K"), int64(512<<10); got != want {
		t.Errorf("parseCacheSize(512K) = %d, want %d", got, want)
	}
	if parseCacheSize("junk") != 0 {
		t.Error("junk size accepted")
	}
}

// TestDistributedPlanStatsShape pins the classification on a mixed
// stream: rank-bit diagonals stay in runs (RankLocal), rank-bit
// targets batch into exchange segments, shard-local work tiles.
func TestDistributedPlanStatsShape(t *testing.T) {
	const n, gbits, tileBits = 6, 2, 2
	c := circuit.New(n, 0)
	c.H(0).H(1).CX(0, 1)       // tile-local
	c.RZ(0.4, 5).CP(0.2, 0, 4) // rank-bit diagonals: rank-local, zero comm
	c.H(4).RY(0.3, 4)          // rank-bit targets, same bit: one exchange segment
	c.H(5)                     // different rank bit: second segment
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(k, PlanConfig{TileBits: tileBits, GlobalBits: gbits})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats
	if st.RankLocal != 2 {
		t.Errorf("RankLocal = %d, want 2 (rz and cp)", st.RankLocal)
	}
	if st.ExchangeSegs != 2 {
		t.Errorf("ExchangeSegs = %d, want 2", st.ExchangeSegs)
	}
	if st.ExchangeGates != 3 {
		t.Errorf("ExchangeGates = %d, want 3 (h, ry on q4; h on q5)", st.ExchangeGates)
	}
	if st.Global != 0 {
		t.Errorf("Global = %d, want 0", st.Global)
	}
}
