package kernel

import (
	"math/bits"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Tile-width auto-tuning: the tiled executor wants tiles that stay
// resident in the fastest private cache while a run streams over them,
// so the right width is a function of the machine, not a constant.
// AutoTileBits reads the CPU cache geometry once at startup (Linux
// sysfs; other platforms keep the compile-time default) and sizes
// tiles to half the per-core L2 — half, because the run's source
// operands, the permutation tables, and the prefetcher all share the
// set space. Machines exposing only a shared L3 divide it across
// cores first. The QGEAR_TILE_BITS environment variable and the
// explicit TileBits knobs on every config surface override detection.

// autoTileMin/Max clamp detection: below 2^10 amplitudes the per-tile
// dispatch overhead dominates, above 2^18 (4 MiB) no current L2 holds
// a tile and the blocking would quietly degrade to plain sweeps.
const (
	autoTileMin = 10
	autoTileMax = 18
)

var (
	autoTileOnce   sync.Once
	autoTileBits   int
	autoTileSource string
	autoTileBytes  int64
)

// AutoTileBits returns the startup-detected default tile width.
func AutoTileBits() int {
	autoTileOnce.Do(detectTileBits)
	return autoTileBits
}

// TileBitsOrigin reports the detected default tile width, where it
// came from ("env", "l2", "l3", "default"), and the cache capacity in
// bytes the detection was based on (0 for env/default). Bench metadata
// records all three.
func TileBitsOrigin() (bitsVal int, source string, cacheBytes int64) {
	autoTileOnce.Do(detectTileBits)
	return autoTileBits, autoTileSource, autoTileBytes
}

func detectTileBits() {
	autoTileBits, autoTileSource, autoTileBytes = DefaultTileBits, "default", 0
	if v := os.Getenv("QGEAR_TILE_BITS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			autoTileBits, autoTileSource = n, "env"
			return
		}
	}
	l2, l3 := readCacheGeometry("/sys/devices/system/cpu/cpu0/cache")
	var budget int64
	switch {
	case l2 > 0:
		budget = l2 / 2
		autoTileSource, autoTileBytes = "l2", l2
	case l3 > 0:
		per := l3 / int64(runtime.NumCPU())
		budget = per / 2
		autoTileSource, autoTileBytes = "l3", l3
	default:
		return
	}
	amps := budget / 16 // complex128
	if amps < 2 {
		autoTileSource, autoTileBytes = "default", 0
		return
	}
	b := bits.Len64(uint64(amps)) - 1 // floor(log2)
	if b < autoTileMin {
		b = autoTileMin
	}
	if b > autoTileMax {
		b = autoTileMax
	}
	autoTileBits = b
}

// readCacheGeometry scans a sysfs cpu cache directory for the data (or
// unified) L2 and L3 capacities in bytes; zero when absent.
func readCacheGeometry(dir string) (l2, l3 int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	read := func(idx, name string) string {
		b, err := os.ReadFile(dir + "/" + idx + "/" + name)
		if err != nil {
			return ""
		}
		return strings.TrimSpace(string(b))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		typ := read(e.Name(), "type")
		if typ != "Unified" && typ != "Data" {
			continue
		}
		level := read(e.Name(), "level")
		size := parseCacheSize(read(e.Name(), "size"))
		if size <= 0 {
			continue
		}
		switch level {
		case "2":
			if size > l2 {
				l2 = size
			}
		case "3":
			if size > l3 {
				l3 = size
			}
		}
	}
	return l2, l3
}

// parseCacheSize decodes sysfs size strings like "512K" or "32M".
func parseCacheSize(s string) int64 {
	if s == "" {
		return 0
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n * mult
}
