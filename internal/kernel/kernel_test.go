package kernel

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// runCircuit applies circuit ops directly to a fresh state — the
// reference semantics kernels must reproduce.
func runCircuit(t *testing.T, c *circuit.Circuit) *statevec.State {
	t.Helper()
	s := statevec.MustNew(c.NumQubits, 1)
	for _, op := range c.Ops {
		s.ApplyGate(op.Gate, op.Qubits, op.Params)
	}
	return s
}

// runKernel executes a kernel on a fresh state.
func runKernel(t *testing.T, k *Kernel) *statevec.State {
	t.Helper()
	s := statevec.MustNew(k.NumQubits, 1)
	if err := Execute(k, s); err != nil {
		t.Fatal(err)
	}
	return s
}

func statesClose(a, b *statevec.State, tol float64) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if cmplx.Abs(a.Amp(uint64(i))-b.Amp(uint64(i))) > tol {
			return false
		}
	}
	return true
}

// randomCircuit builds a seeded random circuit over n qubits with the
// paper's gate mix.
func randomCircuit(n, ops int, seed uint64) *circuit.Circuit {
	r := qmath.NewRNG(seed)
	c := circuit.New(n, 0)
	for i := 0; i < ops; i++ {
		q := r.Intn(n)
		q2 := (q + 1 + r.Intn(n-1)) % n
		switch r.Intn(6) {
		case 0:
			c.H(q)
		case 1:
			c.RY(r.Angle(), q)
		case 2:
			c.RZ(r.Angle(), q)
		case 3:
			c.CX(q, q2)
		case 4:
			c.CP(r.Angle(), q, q2)
		case 5:
			c.RX(r.Angle(), q)
		}
	}
	return c
}

func TestBuilderGHZKernel(t *testing.T) {
	// The paper's ghz_kernel listing (Fig. 2b).
	n := 5
	k := New("ghz", n)
	k.H(0)
	for i := 1; i < n; i++ {
		k.XCtrl(0, i)
	}
	k.Mz()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.NumGates() != 5 || k.CountTwoQubit() != 4 || !k.HasMeasurements() {
		t.Fatalf("ghz kernel shape wrong: gates=%d 2q=%d", k.NumGates(), k.CountTwoQubit())
	}
	s := runKernel(t, k)
	w := 1 / math.Sqrt2
	if cmplx.Abs(s.Amp(0)-complex(w, 0)) > 1e-12 || cmplx.Abs(s.Amp(31)-complex(w, 0)) > 1e-12 {
		t.Fatal("GHZ kernel state wrong")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("range", func() { New("k", 2).H(2) })
	mustPanic("dup operands", func() { New("k", 2).XCtrl(1, 1) })
	mustPanic("negative size", func() { New("k", -1) })
	mustPanic("negative clbit", func() { New("k", 2).MeasureOne(0, -1) })
}

func TestFromCircuitMatchesDirectExecution(t *testing.T) {
	c := randomCircuit(6, 120, 42)
	k, st, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SourceOps != 120 || st.EmittedOps != 120 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if !statesClose(runCircuit(t, c), runKernel(t, k), 1e-10) {
		t.Fatal("kernel execution differs from circuit execution")
	}
}

func TestFromCircuitCarriesMeasurements(t *testing.T) {
	c := circuit.GHZ(3, true)
	k, st, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Measurements != 3 || !k.HasMeasurements() {
		t.Fatal("measurements dropped")
	}
	if k.NumClbits != 3 {
		t.Fatal("clbits not carried")
	}
	k2, _, err := FromCircuit(c, Options{DropMeasurements: true})
	if err != nil {
		t.Fatal(err)
	}
	if k2.HasMeasurements() {
		t.Fatal("DropMeasurements ignored")
	}
}

func TestFromCircuitRejectsInvalid(t *testing.T) {
	bad := &circuit.Circuit{NumQubits: 1, Ops: []circuit.Op{{Gate: gate.CX, Qubits: []int{0, 5}}}}
	if _, _, err := FromCircuit(bad, Options{}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	if _, _, err := FromCircuit(circuit.New(1, 0), Options{FusionWindow: 99}); err == nil {
		t.Fatal("oversized fusion window accepted")
	}
}

func TestFusionPreservesState(t *testing.T) {
	for _, window := range []int{2, 3, 4, 5} {
		c := randomCircuit(6, 150, uint64(window)*7)
		plain, _, err := FromCircuit(c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fused, st, err := FromCircuit(c, Options{FusionWindow: window})
		if err != nil {
			t.Fatal(err)
		}
		if st.FusedGroups == 0 || st.FusedGates < 2*st.FusedGroups {
			t.Fatalf("window %d: fusion did nothing: %+v", window, st)
		}
		if err := fused.Validate(); err != nil {
			t.Fatalf("window %d: fused kernel invalid: %v", window, err)
		}
		if len(fused.Instrs) >= len(plain.Instrs) {
			t.Fatalf("window %d: fusion did not shrink the stream (%d vs %d)",
				window, len(fused.Instrs), len(plain.Instrs))
		}
		if !statesClose(runKernel(t, plain), runKernel(t, fused), 1e-9) {
			t.Fatalf("window %d: fused state differs", window)
		}
	}
}

func TestFusionCutsAtBarriersAndMeasures(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0).RY(0.5, 1).Barrier().RZ(0.2, 0).Measure(0, 0).RX(0.3, 0)
	k, _, err := FromCircuit(c, Options{FusionWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Expect: fused(h,ry) | barrier | rz | measure | rx — fusion must
	// not reorder across the barrier or the measurement.
	kindSeq := make([]InstrKind, len(k.Instrs))
	for i, in := range k.Instrs {
		kindSeq[i] = in.Kind
	}
	want := []InstrKind{KFused, KBarrier, KGate, KMeasure, KGate}
	if len(kindSeq) != len(want) {
		t.Fatalf("instr kinds %v", kindSeq)
	}
	for i := range want {
		if kindSeq[i] != want[i] {
			t.Fatalf("instr %d kind %v, want %v (%v)", i, kindSeq[i], want[i], kindSeq)
		}
	}
}

func TestPruningDropsSmallAngles(t *testing.T) {
	c := circuit.New(3, 0)
	c.H(0).CP(1e-7, 0, 1).RY(0.8, 2).RZ(1e-9, 1).CX(0, 2)
	k, st, err := FromCircuit(c, Options{PruneAngle: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if st.PrunedGates != 2 {
		t.Fatalf("pruned %d gates, want 2", st.PrunedGates)
	}
	// The pruned kernel state must stay within the pruning error.
	full, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := runKernel(t, full).Fidelity(runKernel(t, k))
	if err != nil {
		t.Fatal(err)
	}
	if f < 1-1e-8 {
		t.Fatalf("pruning destroyed fidelity: %g", f)
	}
	// Non-prunable gates (H, CX) are never dropped even at huge
	// thresholds.
	k2, st2, err := FromCircuit(circuit.GHZ(3, false), Options{PruneAngle: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PrunedGates != 0 || k2.NumGates() != 3 {
		t.Fatal("pruning dropped non-rotation gates")
	}
}

func TestAdjointRoundTrip(t *testing.T) {
	c := randomCircuit(5, 80, 17)
	for _, window := range []int{0, 3} {
		k, _, err := FromCircuit(c, Options{FusionWindow: window})
		if err != nil {
			t.Fatal(err)
		}
		adj, err := k.Adjoint()
		if err != nil {
			t.Fatal(err)
		}
		s := statevec.MustNew(5, 1)
		if err := Execute(k, s); err != nil {
			t.Fatal(err)
		}
		if err := Execute(adj, s); err != nil {
			t.Fatal(err)
		}
		zero := statevec.MustNew(5, 1)
		f, err := s.Fidelity(zero)
		if err != nil {
			t.Fatal(err)
		}
		if f < 1-1e-9 {
			t.Fatalf("window %d: k·k† != I, fidelity %g", window, f)
		}
	}
}

func TestAdjointRejectsMeasured(t *testing.T) {
	k := New("m", 1).H(0).Mz()
	if _, err := k.Adjoint(); err == nil {
		t.Fatal("adjoint of measured kernel accepted")
	}
}

func TestExecuteSizeMismatch(t *testing.T) {
	k := New("k", 3).H(0)
	s := statevec.MustNew(2, 1)
	if err := Execute(k, s); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []*Kernel{
		{NumQubits: 2, Instrs: []Instr{{Kind: KGate, Gate: gate.Measure, Qubits: []int{0}}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: KGate, Gate: gate.CX, Qubits: []int{0}}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: KGate, Gate: gate.RY, Qubits: []int{0}}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: KGate, Gate: gate.H, Qubits: []int{4}}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: KFused, Qubits: []int{0, 1}, Mat: make([]complex128, 3)}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: KFused, Qubits: []int{1, 1}, Mat: make([]complex128, 16)}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: KFused}}},
		{NumQubits: 2, NumClbits: 0, Instrs: []Instr{{Kind: KMeasure, Qubits: []int{0}, Clbit: 0}}},
		{NumQubits: 2, Instrs: []Instr{{Kind: InstrKind(9), Qubits: []int{0}}}},
		{NumQubits: -2},
	}
	for i, k := range cases {
		if err := k.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestStringRendering(t *testing.T) {
	k := New("demo", 2).H(0).CR1(0.25, 0, 1).Mz()
	s := k.String()
	for _, want := range []string{"kernel demo(qvector[2])", "h q[0]", "cr1(0.25) q[0 1]", "mz(q[1]) -> c[1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}

func TestTransformIsConstantTimePerGate(t *testing.T) {
	// Lemma B.2 / §2.1: conversion cost is linear in gate count (no
	// super-linear blowup). We verify the output size tracks input size
	// exactly; wall-clock linearity is covered by BenchmarkTransform.
	for _, ops := range []int{100, 1000, 4000} {
		c := randomCircuit(8, ops, uint64(ops))
		k, st, err := FromCircuit(c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st.EmittedOps != ops || len(k.Instrs) != ops {
			t.Fatalf("ops=%d: emitted %d", ops, st.EmittedOps)
		}
	}
}
