package kernel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/statevec"
)

// paramCircuit builds a parameterized workload that exercises every
// binding-site kind once planned: tile-local rotations (BindRun),
// rotations on qubits above the tile boundary (BindGlobal), and — with
// GlobalBits — controlled rotations crossing the rank boundary
// (BindExch).
func paramCircuit(nq int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(nq, 0)
	for q := 0; q < nq; q++ {
		c.H(q)
	}
	for i := 0; i < 3*nq; i++ {
		q := rng.Intn(nq)
		switch rng.Intn(5) {
		case 0:
			c.RX(rng.Float64()*6, q)
		case 1:
			c.RY(rng.Float64()*6, q)
		case 2:
			c.RZ(rng.Float64()*6, q)
		case 3:
			c.CP(rng.Float64()*6, q, (q+1)%nq)
		case 4:
			c.CX(q, (q+1)%nq)
		}
	}
	return c
}

func ampsOf(t *testing.T, p *TilePlan, nq int) []complex128 {
	t.Helper()
	s, err := statevec.New(nq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Execute(s); err != nil {
		t.Fatal(err)
	}
	return s.Amplitudes()
}

func sameAmps(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// TestPlanBindBitIdentity: rebinding a compiled plan to new parameter
// values must reproduce, bit for bit, the amplitudes of a plan freshly
// compiled from the rebound kernel — across tiled and distributed
// (exchange-bearing) plan shapes.
func TestPlanBindBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		nq := 5 + rng.Intn(3)
		c := paramCircuit(nq, rng)
		k, _, err := FromCircuit(c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		nParams := k.NumParams()
		if nParams == 0 {
			continue
		}
		newVals := make([]float64, nParams)
		for i := range newVals {
			newVals[i] = rng.Float64() * 6
		}
		boundK, err := k.Bind(newVals)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []PlanConfig{
			{TileBits: 3},
			{TileBits: 3, GlobalBits: 1},
			{TileBits: 3, GlobalBits: 2},
		} {
			plan, err := Plan(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Bindable || plan.BindSlots != nParams {
				t.Fatalf("trial %d cfg %+v: plan not bindable (%v, slots %d/%d)",
					trial, cfg, plan.Bindable, plan.BindSlots, nParams)
			}
			rebound, err := plan.Bind(newVals)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Plan(boundK, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The encoded plan carries every matrix, phase, and schedule
			// field, and encoding is deterministic — byte equality is
			// plan equality, and it works for distributed shapes a
			// single state cannot execute.
			if !bytes.Equal(encodePlanBytes(t, rebound), encodePlanBytes(t, fresh)) {
				t.Fatalf("trial %d cfg %+v: rebound plan diverges from fresh compile", trial, cfg)
			}
			// The source plan must be untouched by the rebinding.
			if !bytes.Equal(encodePlanBytes(t, plan), encodePlanBytes(t, mustPlan(t, k, cfg))) {
				t.Fatalf("trial %d cfg %+v: Bind mutated the receiver plan", trial, cfg)
			}
			if cfg.GlobalBits == 0 && !sameAmps(ampsOf(t, rebound, nq), ampsOf(t, fresh, nq)) {
				t.Fatalf("trial %d cfg %+v: rebound plan executes differently from fresh compile", trial, cfg)
			}
		}
	}
}

func mustPlan(t *testing.T, k *Kernel, cfg PlanConfig) *TilePlan {
	t.Helper()
	p, err := Plan(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func encodePlanBytes(t *testing.T, p *TilePlan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPlanBindFusedRejected: run fusion entangles values with
// structure, so fused plans must refuse to rebind.
func TestPlanBindFusedRejected(t *testing.T) {
	c := circuit.New(3, 0)
	c.RX(0.3, 0)
	c.RY(0.4, 0)
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(k, PlanConfig{TileBits: 2, FuseRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bindable {
		t.Fatal("fused plan claims to be bindable")
	}
	if _, err := plan.Bind([]float64{1, 2}); err == nil {
		t.Fatal("fused plan accepted a rebinding")
	}
}

// TestPlanSerializeRoundtripBinds: binding sites survive the plan
// encoding, and a decoded plan rebinds identically to the original.
func TestPlanSerializeRoundtripBinds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := paramCircuit(6, rng)
	k, _, err := FromCircuit(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(k, PlanConfig{TileBits: 3, GlobalBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bindable != plan.Bindable || decoded.BindSlots != plan.BindSlots ||
		len(decoded.Binds) != len(plan.Binds) {
		t.Fatalf("binding metadata lost: %v/%d/%d vs %v/%d/%d",
			decoded.Bindable, decoded.BindSlots, len(decoded.Binds),
			plan.Bindable, plan.BindSlots, len(plan.Binds))
	}
	for i, b := range plan.Binds {
		if decoded.Binds[i] != b {
			t.Fatalf("binding site %d changed across the roundtrip: %+v vs %+v", i, decoded.Binds[i], b)
		}
	}
	vals := make([]float64, plan.BindSlots)
	for i := range vals {
		vals[i] = rng.Float64() * 6
	}
	a, err := plan.Bind(vals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decoded.Bind(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodePlanBytes(t, a), encodePlanBytes(t, b)) {
		t.Fatal("decoded plan rebinds differently from the original")
	}
}
