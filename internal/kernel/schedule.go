package kernel

import (
	"fmt"
	"math"

	"qgear/internal/gate"
	"qgear/internal/statevec"
)

// The tiled scheduler: a linear pass that partitions a kernel's
// instruction stream into *runs* of tile-local micro-ops — gates whose
// mixing operands all sit below the tile boundary once the lazy qubit
// permutation is applied — separated by the few genuinely global
// operations that still need a full sweep. Executing a run costs one
// memory pass over the state for the whole run (internal/statevec's
// ApplyTileRun), instead of one pass per gate; for gate-run-dominated
// workloads (QFT's cr1 mass, QCrank's Ry/CX ladders) this removes
// almost all DRAM traffic.
//
// Placement is managed with a logical→physical permutation table:
//   - SWAP gates never move data — they swap two table entries;
//   - a non-diagonal gate targeting a high qubit that will be targeted
//     again is *relabeled*: one physical bit-swap sweep moves it below
//     the boundary (evicting, Bélády-style, the resident qubit whose
//     next mixing use is farthest away), and every later gate on it is
//     tile-local;
//   - a high-target gate used only once falls back to today's full
//     sweep — a relabeling would cost the same pass without the payoff.
//
// Diagonal gates and controls are tile-local at *any* position (a high
// bit is constant within a tile), so only high non-diagonal targets
// ever force data movement.

// DefaultTileBits sizes tiles at 2^14 amplitudes × 16 B = 256 KiB —
// resident in any modern L2 — matching the cache blocking of
// hardware-accelerated simulators (Qibo, qibojit).
const DefaultTileBits = 14

// minResidencyUses is how many remaining mixing uses a high qubit
// needs before a relabeling bit-swap pays for itself: the swap costs
// one sweep, the same as a single global fallback, so it takes two
// uses to come out ahead.
const minResidencyUses = 2

// SegmentKind discriminates plan segments.
type SegmentKind uint8

const (
	// SegRun is a run of tile-local micro-ops: one memory pass total.
	SegRun SegmentKind = iota
	// SegGlobal is a single full-sweep instruction (operands already
	// rewritten to physical positions).
	SegGlobal
	// SegBitSwap physically exchanges two bit positions to relabel a
	// hot high qubit into the tile-resident range.
	SegBitSwap
)

// Segment is one step of a tiled execution plan.
type Segment struct {
	Kind  SegmentKind
	Ops   []statevec.TileOp // SegRun
	Instr Instr             // SegGlobal, with physical qubit operands
	A, B  int               // SegBitSwap: physical bit positions
}

// PlanStats summarizes what the scheduler did.
type PlanStats struct {
	TileLocal int // gate instructions compiled into tile runs
	Global    int // full-sweep fallbacks
	Runs      int // tile runs emitted (≈ memory passes for local gates)
	BitSwaps  int // relabeling sweeps inserted
	PermSwaps int // SWAP gates absorbed into the permutation table
}

// TilePlan is a compiled tiled execution schedule for one kernel. It
// is immutable after planning and safe to execute against many states
// concurrently.
type TilePlan struct {
	TileBits  int
	NumQubits int
	Segments  []Segment
	// FinalPerm is the logical→physical layout the state data is left
	// in after all segments run (nil when it ends at the identity);
	// Execute hands it to the state, which materializes lazily on
	// readout.
	FinalPerm []int
	Stats     PlanStats
}

// mixingTargets appends to dst the logical qubits instruction in mixes
// non-diagonally — the operands that must sit below the tile boundary.
// Diagonal gates, controls, and SWAP (absorbed by the permutation
// table) contribute nothing.
func mixingTargets(in Instr, dst []int) []int {
	switch in.Kind {
	case KFused:
		return append(dst, in.Qubits...)
	case KGate:
		switch {
		case in.Gate == gate.Barrier || in.Gate == gate.Measure || in.Gate == gate.I:
			return dst
		case in.Gate == gate.SWAP:
			return dst
		case statevec.IsDiagonalGate(in.Gate):
			return dst
		case in.Gate.Arity() == 2: // cx, cry: control free, target mixes
			return append(dst, in.Qubits[1])
		default:
			return append(dst, in.Qubits[0])
		}
	}
	return dst
}

// PlanTiled compiles the kernel into a tiled execution plan for the
// given tile width. It fails when the kernel does not validate or the
// tile width leaves fewer than two tiles (callers should run the plain
// executor instead — the whole state is already cache-resident).
func PlanTiled(k *Kernel, tileBits int) (*TilePlan, error) {
	if tileBits <= 0 {
		tileBits = DefaultTileBits
	}
	if k.NumQubits <= tileBits {
		return nil, fmt.Errorf("kernel: %d qubits need no tiling at tile width %d", k.NumQubits, tileBits)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("kernel: cannot plan invalid kernel: %w", err)
	}
	p := &TilePlan{TileBits: tileBits, NumQubits: k.NumQubits}
	n := k.NumQubits

	// Per-qubit mixing-use positions, for residency decisions: uses[q]
	// lists the instruction indices where q must be tile-resident, and
	// ptr[q] advances monotonically as planning walks the stream.
	uses := make([][]int, n)
	var scratch []int
	for i, in := range k.Instrs {
		scratch = mixingTargets(in, scratch[:0])
		for _, q := range scratch {
			uses[q] = append(uses[q], i)
		}
	}
	ptr := make([]int, n)
	nextUse := func(q, i int) int { // first mixing use at or after i
		for ptr[q] < len(uses[q]) && uses[q][ptr[q]] < i {
			ptr[q]++
		}
		if ptr[q] == len(uses[q]) {
			return math.MaxInt
		}
		return uses[q][ptr[q]]
	}
	remainingUses := func(q, i int) int {
		nextUse(q, i)
		return len(uses[q]) - ptr[q]
	}

	perm := make([]int, n) // logical → physical
	inv := make([]int, n)  // physical → logical
	for q := range perm {
		perm[q], inv[q] = q, q
	}

	var run []statevec.TileOp
	flush := func() {
		if len(run) == 0 {
			return
		}
		p.Segments = append(p.Segments, Segment{Kind: SegRun, Ops: append([]statevec.TileOp(nil), run...)})
		p.Stats.Runs++
		run = run[:0]
	}

	isOperand := func(in Instr, q int) bool {
		for _, o := range in.Qubits {
			if o == q {
				return true
			}
		}
		return false
	}

	// relabel brings logical qubit q (currently high) below the tile
	// boundary with one physical bit-swap, evicting the resident qubit
	// whose next mixing use is farthest away (never an operand of the
	// current instruction). Returns false when no slot qualifies.
	relabel := func(in Instr, q, i int) bool {
		victim, victimNext := -1, -1
		for v := 0; v < tileBits; v++ {
			lq := inv[v]
			if isOperand(in, lq) {
				continue
			}
			nu := nextUse(lq, i+1)
			if nu == math.MaxInt { // never mixed again: perfect victim
				victim, victimNext = v, nu
				break
			}
			if nu > victimNext {
				victim, victimNext = v, nu
			}
		}
		if victim < 0 {
			return false
		}
		flush()
		src := perm[q]
		p.Segments = append(p.Segments, Segment{Kind: SegBitSwap, A: victim, B: src})
		p.Stats.BitSwaps++
		vq := inv[victim]
		perm[q], perm[vq] = victim, src
		inv[victim], inv[src] = q, vq
		return true
	}

	for i, in := range k.Instrs {
		switch in.Kind {
		case KBarrier, KMeasure:
			continue
		case KGate:
			if in.Gate == gate.Barrier || in.Gate == gate.Measure || in.Gate == gate.I {
				continue
			}
			if in.Gate == gate.SWAP {
				a, b := in.Qubits[0], in.Qubits[1]
				pa, pb := perm[a], perm[b]
				perm[a], perm[b] = pb, pa
				inv[pa], inv[pb] = b, a
				p.Stats.PermSwaps++
				continue
			}
		}

		// Relabel any high mixing target that will be mixed again.
		scratch = mixingTargets(in, scratch[:0])
		if len(scratch) <= tileBits {
			for _, q := range scratch {
				if perm[q] >= tileBits && remainingUses(q, i) >= minResidencyUses {
					relabel(in, q, i)
				}
			}
		}

		local := true
		for _, q := range scratch {
			if perm[q] >= tileBits {
				local = false
				break
			}
		}
		if !local {
			flush()
			p.Segments = append(p.Segments, Segment{Kind: SegGlobal, Instr: physInstr(in, perm)})
			p.Stats.Global++
			continue
		}
		run = append(run, compileTileOp(in, perm, tileBits))
		p.Stats.TileLocal++
	}
	flush()

	identity := true
	for q, pos := range perm {
		if q != pos {
			identity = false
			break
		}
	}
	if !identity {
		p.FinalPerm = append([]int(nil), perm...)
	}
	return p, nil
}

// physInstr rewrites an instruction's operands to physical positions.
func physInstr(in Instr, perm []int) Instr {
	out := in
	out.Qubits = make([]int, len(in.Qubits))
	for j, q := range in.Qubits {
		out.Qubits[j] = perm[q]
	}
	return out
}

// compileTileOp lowers one tile-local instruction to a micro-op. The
// matrices and phases are derived exactly as the per-gate path derives
// them (statevec.ApplyGate / ApplyDiagonalGate), keeping the two
// executors arithmetic-identical.
func compileTileOp(in Instr, perm []int, tileBits int) statevec.TileOp {
	split := func(pos int) (low uint64, high uint64) {
		if pos < tileBits {
			return 1 << uint(pos), 0
		}
		return 0, 1 << uint(pos)
	}
	if in.Kind == KFused {
		op := statevec.TileOp{Kind: statevec.TileFused, Mat: in.Mat, Qubits: make([]uint, len(in.Qubits))}
		for j, q := range in.Qubits {
			op.Qubits[j] = uint(perm[q])
		}
		return op
	}
	g := in.Gate
	switch {
	case statevec.IsDiagonalGate(g):
		switch g {
		case gate.RZ:
			m := gate.Matrix1(g, in.Params)
			op := statevec.TileOp{Kind: statevec.TileRelPhase, A: m[0], B: m[3]}
			pos := perm[in.Qubits[0]]
			if pos < tileBits {
				op.T = uint(pos)
			} else {
				op.HighMask = 1 << uint(pos)
			}
			return op
		case gate.CZ, gate.CP:
			phase := complex128(-1)
			if g == gate.CP {
				phase = gate.Matrix1(gate.P, in.Params)[3]
			}
			op := statevec.TileOp{Kind: statevec.TileDiag, Phase: phase}
			for _, q := range in.Qubits {
				low, high := split(perm[q])
				op.LowMask |= low
				op.HighMask |= high
			}
			return op
		default: // z, s, sdg, t, tdg, p
			op := statevec.TileOp{Kind: statevec.TileDiag, Phase: gate.Matrix1(g, in.Params)[3]}
			op.LowMask, op.HighMask = split(perm[in.Qubits[0]])
			return op
		}
	case g == gate.CX:
		op := statevec.TileOp{Kind: statevec.TileCX, T: uint(perm[in.Qubits[1]])}
		if cpos := perm[in.Qubits[0]]; cpos < tileBits {
			op.C, op.HasCtrl = uint(cpos), true
		} else {
			op.HighMask = 1 << uint(cpos)
		}
		return op
	case g.Arity() == 2: // cry (cz/cp are diagonal, swap never reaches here)
		var m gate.Mat2
		switch g {
		case gate.CRY:
			m = gate.Matrix1(gate.RY, in.Params)
		default:
			panic(fmt.Sprintf("kernel: unhandled two-qubit gate %v in tile compiler", g))
		}
		op := statevec.TileOp{Kind: statevec.TileMat1, T: uint(perm[in.Qubits[1]]), M: m}
		if cpos := perm[in.Qubits[0]]; cpos < tileBits {
			op.C, op.HasCtrl = uint(cpos), true
		} else {
			op.HighMask = 1 << uint(cpos)
		}
		return op
	default:
		return statevec.TileOp{Kind: statevec.TileMat1, T: uint(perm[in.Qubits[0]]), M: gate.Matrix1(g, in.Params)}
	}
}

// Execute runs the plan against a state. The state must be in the
// canonical layout (any pending permutation is materialized first);
// afterwards the state carries the plan's final permutation, which
// readout materializes lazily.
func (p *TilePlan) Execute(s *statevec.State) error {
	if s.NumQubits() != p.NumQubits {
		return fmt.Errorf("kernel: state has %d qubits, plan wants %d", s.NumQubits(), p.NumQubits)
	}
	s.MaterializePerm()
	for i, seg := range p.Segments {
		switch seg.Kind {
		case SegRun:
			if err := s.ApplyTileRun(p.TileBits, seg.Ops); err != nil {
				return fmt.Errorf("kernel: tile run %d: %w", i, err)
			}
		case SegBitSwap:
			s.ApplySwap(seg.A, seg.B)
		case SegGlobal:
			switch seg.Instr.Kind {
			case KGate:
				s.ApplyGate(seg.Instr.Gate, seg.Instr.Qubits, seg.Instr.Params)
			case KFused:
				if err := s.ApplyFused(seg.Instr.Qubits, seg.Instr.Mat); err != nil {
					return fmt.Errorf("kernel: global segment %d: %w", i, err)
				}
			}
		}
	}
	if p.FinalPerm != nil {
		return s.SetPermutation(p.FinalPerm)
	}
	return nil
}

// ExecuteTiled applies the kernel to the state through the tiled
// executor: plan, run, and leave any residual qubit relabeling on the
// state for lazy materialization. States no larger than one tile are
// already cache-resident and run the plain per-gate executor.
func ExecuteTiled(k *Kernel, s *statevec.State, tileBits int) error {
	if tileBits <= 0 {
		tileBits = DefaultTileBits
	}
	if s.NumQubits() != k.NumQubits {
		return fmt.Errorf("kernel: state has %d qubits, kernel %q wants %d", s.NumQubits(), k.Name, k.NumQubits)
	}
	if k.NumQubits <= tileBits {
		return Execute(k, s)
	}
	plan, err := PlanTiled(k, tileBits)
	if err != nil {
		return err
	}
	return plan.Execute(s)
}
