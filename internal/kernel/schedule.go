package kernel

import (
	"errors"
	"fmt"
	"math"
	mbits "math/bits"

	"qgear/internal/cancel"
	"qgear/internal/gate"
	"qgear/internal/statevec"
)

// The tiled scheduler: a linear pass that compiles a kernel's
// instruction stream into a TilePlan — the execution IR every engine
// consumes. A plan partitions the stream into *runs* of tile-local
// micro-ops — gates whose mixing operands all sit below the tile
// boundary once the lazy qubit permutation is applied — separated by
// the few genuinely global operations that still need a full sweep.
// Executing a run costs one memory pass over the state for the whole
// run (internal/statevec's ApplyTileRun), instead of one pass per gate;
// for gate-run-dominated workloads (QFT's cr1 mass, QCrank's Ry/CX
// ladders) this removes almost all DRAM traffic.
//
// Placement is managed with a logical→physical permutation table:
//   - SWAP gates never move data — they swap two table entries;
//   - a non-diagonal gate targeting a high qubit that will be targeted
//     again is *relabeled*: one physical bit-swap sweep moves it below
//     the boundary (evicting, Bélády-style, the resident qubit whose
//     next mixing use is farthest away), and every later gate on it is
//     tile-local;
//   - a high-target gate used only once falls back to today's full
//     sweep — a relabeling would cost the same pass without the payoff.
//
// Diagonal gates and controls are tile-local at *any* position (a high
// bit is constant within a tile), so only high non-diagonal targets
// ever force data movement.
//
// Distributed plans (PlanConfig.GlobalBits > 0) extend the same
// classification across the rank boundary of the mgpu engine: the top
// GlobalBits qubit positions are rank-index bits. Diagonal factors and
// controls at those positions compile into the same HighMask
// predicates — each rank resolves them against its own rank bits with
// zero communication — while non-diagonal targets at rank positions
// compile into *exchange segments*: consecutive gates mixing the same
// rank bit share one pairwise buffer exchange instead of paying one
// per gate. SWAPs with a rank-bit operand decompose into three CX
// (data must really move between ranks); all-shard-local SWAPs stay
// free table updates.

// DefaultTileBits sizes tiles at 2^14 amplitudes × 16 B = 256 KiB —
// resident in any modern L2 — matching the cache blocking of
// hardware-accelerated simulators (Qibo, qibojit). AutoTileBits
// refines it from the detected cache geometry at startup.
const DefaultTileBits = 14

// minResidencyUses is how many remaining mixing uses a high qubit
// needs before a relabeling bit-swap pays for itself: the swap costs
// one sweep, the same as a single global fallback, so it takes two
// uses to come out ahead.
const minResidencyUses = 2

// ErrNoTiling reports that a kernel is too small to tile (the whole
// state — or the whole rank shard — already fits in one tile); callers
// fall back to the plain per-gate executor, which is both correct and
// cache-resident at those sizes.
var ErrNoTiling = errors.New("kernel: state too small to tile")

// SegmentKind discriminates plan segments.
type SegmentKind uint8

const (
	// SegRun is a run of tile-local micro-ops: one memory pass total.
	SegRun SegmentKind = iota
	// SegGlobal is a single full-sweep instruction (operands already
	// rewritten to physical positions).
	SegGlobal
	// SegBitSwap physically exchanges two bit positions to relabel a
	// hot high qubit into the tile-resident range.
	SegBitSwap
	// SegExchange is a batched distributed segment: every op mixes the
	// same rank-bit target, so one pairwise buffer exchange with the
	// partner rank serves the whole batch (the partner's half is
	// co-updated locally between ops).
	SegExchange
)

// ExchOp is one compiled gate of an exchange segment: a 2×2 unitary on
// the segment's rank-bit target, optionally conditioned on shard-local
// index bits (LowCtrl) and/or other rank bits (RankCtrl). Predicates
// are conjunctions of must-be-1 bits, exactly the control semantics of
// the per-gate distributed path.
type ExchOp struct {
	M        gate.Mat2
	LowCtrl  uint64 // shard-local index bits that must all be 1
	RankCtrl uint64 // absolute rank-bit positions (≥ local) that must all be 1
}

// Segment is one step of a tiled execution plan.
type Segment struct {
	Kind  SegmentKind
	Ops   []statevec.TileOp // SegRun
	Instr Instr             // SegGlobal, with physical qubit operands
	A, B  int               // SegBitSwap: physical bit positions
	TBit  int               // SegExchange: rank-bit target position
	XOps  []ExchOp          // SegExchange
}

// PlanStats summarizes what the scheduler did. It travels with the
// plan into backend.Result.PlanStats, so the same counters show up in
// CLI output, the serving API, and the bench JSONs.
type PlanStats struct {
	TileLocal     int `json:"tile_local_gates"`   // gate instructions compiled into tile runs
	Global        int `json:"global_sweeps"`      // full-sweep fallbacks
	Runs          int `json:"runs"`               // tile runs emitted (≈ memory passes for local gates)
	BitSwaps      int `json:"bit_swaps"`          // relabeling sweeps inserted
	PermSwaps     int `json:"perm_swaps"`         // SWAP gates absorbed into the permutation table
	FusedOps      int `json:"fused_ops"`          // micro-ops removed by within-run 1q fusion
	ExchangeSegs  int `json:"exchange_segments"`  // batched rank-exchange segments (distributed plans)
	ExchangeGates int `json:"exchange_gates"`     // gates compiled into exchange segments
	RankLocal     int `json:"rank_local_globals"` // rank-bit diagonal/control ops resolved with zero communication
}

// PlanConfig tunes plan compilation.
type PlanConfig struct {
	// TileBits is the tile width in qubits; <= 0 selects AutoTileBits.
	TileBits int
	// GlobalBits marks the top GlobalBits qubit positions as
	// distributed rank-index bits (the mgpu engine's device boundary);
	// 0 compiles a single-process plan.
	GlobalBits int
	// FuseRuns pre-multiplies adjacent same-target single-qubit gates
	// into one mat1 micro-op at compile time, and folds single-target
	// diagonal/phase micro-ops into a neighboring mat1 on the same
	// target (merged 2×2 row/column scale). Off, plans are
	// arithmetic-identical to the per-gate path; on, amplitudes agree
	// to rounding (~1e-15) with fewer in-tile multiplies.
	FuseRuns bool
}

// TilePlan is a compiled tiled execution schedule for one kernel — the
// IR shared by the single-process statevec engine (Execute) and the
// distributed mgpu engine (DistState.ExecutePlan). It is immutable
// after planning and safe to execute against many states concurrently,
// which is what lets the service layer cache plans across submissions.
type TilePlan struct {
	TileBits   int
	NumQubits  int
	GlobalBits int // rank-index bits of a distributed plan; 0 = single-process
	Segments   []Segment
	// FinalPerm is the logical→physical layout the state data is left
	// in after all segments run (nil when it ends at the identity);
	// Execute hands it to the state, which materializes lazily on
	// readout. Rank-bit positions are never permuted, so a distributed
	// executor applies FinalPerm[:local] to its shard.
	FinalPerm []int
	Stats     PlanStats
	// Binds locates every parameterized gate's value-derived artifact,
	// letting Bind rebind the plan to new rotation angles without
	// re-planning (see bind.go). BindSlots is the flat parameter-vector
	// length Bind expects; Bindable is false for plans compiled with
	// run fusion, whose matrices were pre-multiplied at compile time.
	Binds     []BindSite
	BindSlots int
	Bindable  bool
}

// mixingTargets appends to dst the logical qubits instruction in mixes
// non-diagonally — the operands that must sit below the tile boundary.
// Diagonal gates, controls, and SWAP (absorbed by the permutation
// table) contribute nothing.
func mixingTargets(in Instr, dst []int) []int {
	switch in.Kind {
	case KFused:
		return append(dst, in.Qubits...)
	case KGate:
		switch {
		case in.Gate == gate.Barrier || in.Gate == gate.Measure || in.Gate == gate.I:
			return dst
		case in.Gate == gate.SWAP:
			return dst
		case statevec.IsDiagonalGate(in.Gate):
			return dst
		case in.Gate.Arity() == 2: // cx, cry: control free, target mixes
			return append(dst, in.Qubits[1])
		default:
			return append(dst, in.Qubits[0])
		}
	}
	return dst
}

// PlanTiled compiles a single-process plan — Plan with only the tile
// width configured (no rank boundary, no run fusion), the bit-exact
// default every engine had before plans became the shared IR.
func PlanTiled(k *Kernel, tileBits int) (*TilePlan, error) {
	return Plan(k, PlanConfig{TileBits: tileBits})
}

// Plan compiles the kernel into a tiled execution plan. It fails with
// ErrNoTiling when the state (or the per-rank shard) is too small to
// tile — callers should run the plain per-gate executor instead, the
// whole state being already cache-resident — and with a hard error
// when the kernel does not validate or the configuration is
// inconsistent.
func Plan(k *Kernel, cfg PlanConfig) (*TilePlan, error) {
	tileBits := cfg.TileBits
	if tileBits <= 0 {
		tileBits = AutoTileBits()
	}
	g := cfg.GlobalBits
	if g < 0 || g >= k.NumQubits {
		return nil, fmt.Errorf("kernel: %d global bits out of range for %d qubits", g, k.NumQubits)
	}
	local := k.NumQubits - g
	if g > 0 {
		if local < 2 {
			return nil, fmt.Errorf("kernel: %d-qubit rank shard: %w", local, ErrNoTiling)
		}
		// Tiles must sit strictly inside the shard.
		if tileBits >= local {
			tileBits = local - 1
		}
	} else if k.NumQubits <= tileBits {
		return nil, fmt.Errorf("kernel: %d qubits at tile width %d: %w", k.NumQubits, tileBits, ErrNoTiling)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("kernel: cannot plan invalid kernel: %w", err)
	}
	p := &TilePlan{TileBits: tileBits, NumQubits: k.NumQubits, GlobalBits: g}
	n := k.NumQubits

	// Binding-site recording: slotOf[i] is instruction i's offset into
	// the flat parameter vector. Fusion pre-multiplies values into
	// matrices, so fused plans skip recording and stay non-bindable.
	bindable := !cfg.FuseRuns
	slotOf := make([]int, len(k.Instrs))
	slots := 0
	for i, in := range k.Instrs {
		slotOf[i] = slots
		if in.Kind == KGate && in.Gate.ParamCount() > 0 {
			slots += len(in.Params)
		}
	}
	p.BindSlots = slots
	var pendRun, pendX []BindSite

	// Per-qubit mixing-use positions, for residency decisions: uses[q]
	// lists the instruction indices where q must be tile-resident, and
	// ptr[q] advances monotonically as planning walks the stream.
	uses := make([][]int, n)
	var scratch []int
	for i, in := range k.Instrs {
		scratch = mixingTargets(in, scratch[:0])
		for _, q := range scratch {
			uses[q] = append(uses[q], i)
		}
	}
	ptr := make([]int, n)
	nextUse := func(q, i int) int { // first mixing use at or after i
		for ptr[q] < len(uses[q]) && uses[q][ptr[q]] < i {
			ptr[q]++
		}
		if ptr[q] == len(uses[q]) {
			return math.MaxInt
		}
		return uses[q][ptr[q]]
	}
	remainingUses := func(q, i int) int {
		nextUse(q, i)
		return len(uses[q]) - ptr[q]
	}

	perm := make([]int, n) // logical → physical
	inv := make([]int, n)  // physical → logical
	for q := range perm {
		perm[q], inv[q] = q, q
	}

	var run []statevec.TileOp
	flush := func() {
		if len(run) == 0 {
			return
		}
		seg := len(p.Segments)
		p.Segments = append(p.Segments, Segment{Kind: SegRun, Ops: append([]statevec.TileOp(nil), run...)})
		for _, b := range pendRun {
			b.Seg = seg
			p.Binds = append(p.Binds, b)
		}
		pendRun = pendRun[:0]
		p.Stats.Runs++
		run = run[:0]
	}

	var xOps []ExchOp
	xTBit := -1
	flushX := func() {
		if len(xOps) == 0 {
			return
		}
		seg := len(p.Segments)
		p.Segments = append(p.Segments, Segment{Kind: SegExchange, TBit: xTBit, XOps: append([]ExchOp(nil), xOps...)})
		for _, b := range pendX {
			b.Seg = seg
			p.Binds = append(p.Binds, b)
		}
		pendX = pendX[:0]
		p.Stats.ExchangeSegs++
		p.Stats.ExchangeGates += len(xOps)
		xOps = xOps[:0]
	}

	isOperand := func(in Instr, q int) bool {
		for _, o := range in.Qubits {
			if o == q {
				return true
			}
		}
		return false
	}

	// relabel brings logical qubit q (currently high but shard-local)
	// below the tile boundary with one physical bit-swap, evicting the
	// resident qubit whose next mixing use is farthest away (never an
	// operand of the current instruction). Returns false when no slot
	// qualifies.
	relabel := func(in Instr, q, i int) bool {
		victim, victimNext := -1, -1
		for v := 0; v < tileBits; v++ {
			lq := inv[v]
			if isOperand(in, lq) {
				continue
			}
			nu := nextUse(lq, i+1)
			if nu == math.MaxInt { // never mixed again: perfect victim
				victim, victimNext = v, nu
				break
			}
			if nu > victimNext {
				victim, victimNext = v, nu
			}
		}
		if victim < 0 {
			return false
		}
		flush()
		src := perm[q]
		p.Segments = append(p.Segments, Segment{Kind: SegBitSwap, A: victim, B: src})
		p.Stats.BitSwaps++
		vq := inv[victim]
		perm[q], perm[vq] = victim, src
		inv[victim], inv[src] = q, vq
		return true
	}

	// plainMat1 reports whether op is an uncontrolled, unpredicated
	// mat1 micro-op — the only mat1 shape within-run fusion touches.
	plainMat1 := func(op *statevec.TileOp) bool {
		return op.Kind == statevec.TileMat1 && !op.HasCtrl && op.HighMask == 0
	}

	// diagFactors recognizes a single-target, unpredicated diagonal
	// micro-op on a low target and returns it as diag(a, b) on t:
	// TileRelPhase directly, TileDiag with one low bit as diag(1, Phase).
	diagFactors := func(op *statevec.TileOp) (t uint, a, b complex128, ok bool) {
		if op.HighMask != 0 {
			return 0, 0, 0, false
		}
		switch op.Kind {
		case statevec.TileRelPhase:
			return op.T, op.A, op.B, true
		case statevec.TileDiag:
			if mbits.OnesCount64(op.LowMask) == 1 {
				return uint(mbits.TrailingZeros64(op.LowMask)), 1, op.Phase, true
			}
		}
		return 0, 0, 0, false
	}

	// appendRunOp adds a compiled micro-op to the open run, folding it
	// into the previous op when within-run fusion (cfg.FuseRuns)
	// applies: adjacent uncontrolled, unpredicated mat1 ops on the same
	// target pre-multiply at compile time, and single-target diagonal
	// micro-ops fold into a neighboring mat1 on the same target as a
	// row scale (diag after mat1: D·M) or column scale (mat1 after
	// diag: M·D) — one merged 2×2 instead of two passes over the pair.
	// Adjacent diagonals on one target collapse to a single
	// TileRelPhase. Folding reassociates the products, so fused plans
	// agree with per-gate execution to rounding, not bitwise — the
	// documented FuseRuns trade.
	appendRunOp := func(op statevec.TileOp) {
		if cfg.FuseRuns && len(run) > 0 {
			last := &run[len(run)-1]
			if plainMat1(&op) {
				if plainMat1(last) && last.T == op.T {
					last.M = op.M.Mul(last.M)
					p.Stats.FusedOps++
					return
				}
				if t, a, b, ok := diagFactors(last); ok && t == op.T {
					m := op.M // column-scale: combined = M·diag(a, b)
					m[0] *= a
					m[2] *= a
					m[1] *= b
					m[3] *= b
					*last = statevec.TileOp{Kind: statevec.TileMat1, T: op.T, M: m}
					p.Stats.FusedOps++
					return
				}
			} else if t, a, b, ok := diagFactors(&op); ok {
				if plainMat1(last) && last.T == t {
					// row-scale: combined = diag(a, b)·M
					last.M[0] *= a
					last.M[1] *= a
					last.M[2] *= b
					last.M[3] *= b
					p.Stats.FusedOps++
					return
				}
				if lt, la, lb, lok := diagFactors(last); lok && lt == t {
					*last = statevec.TileOp{Kind: statevec.TileRelPhase, T: t, A: la * a, B: lb * b}
					p.Stats.FusedOps++
					return
				}
			}
		}
		run = append(run, op)
	}

	// add processes one instruction; SWAPs crossing the rank boundary
	// recurse through it as their three-CX decomposition.
	var add func(in Instr, i int) error
	add = func(in Instr, i int) error {
		switch in.Kind {
		case KBarrier, KMeasure:
			return nil
		case KGate:
			if in.Gate == gate.Barrier || in.Gate == gate.Measure || in.Gate == gate.I {
				return nil
			}
			if in.Gate == gate.SWAP {
				a, b := in.Qubits[0], in.Qubits[1]
				pa, pb := perm[a], perm[b]
				if pa < local && pb < local {
					perm[a], perm[b] = pb, pa
					inv[pa], inv[pb] = b, a
					p.Stats.PermSwaps++
					return nil
				}
				// A rank-bit operand: the data really moves between
				// ranks, so decompose into the textbook three CX.
				for _, pair := range [3][2]int{{a, b}, {b, a}, {a, b}} {
					if err := add(Instr{Kind: KGate, Gate: gate.CX, Qubits: []int{pair[0], pair[1]}}, i); err != nil {
						return err
					}
				}
				return nil
			}
		}

		scratch = mixingTargets(in, scratch[:0])

		// A mixing target at a rank-bit position compiles into the open
		// exchange segment (one buffer exchange per segment, not per
		// gate). Controls and diagonal factors never land here — they
		// stay HighMask predicates.
		xq := -1
		for _, q := range scratch {
			if perm[q] >= local {
				xq = q
				break
			}
		}
		if xq >= 0 {
			if in.Kind == KFused {
				return fmt.Errorf("kernel: fused op touches rank-global qubit %d; restrict fusion to local qubits", xq)
			}
			var op ExchOp
			switch {
			case in.Gate.Arity() == 1:
				op.M = gate.Matrix1(in.Gate, in.Params)
			case in.Gate == gate.CX:
				op.M = gate.Matrix1(gate.X, nil)
			case in.Gate == gate.CRY:
				op.M = gate.Matrix1(gate.RY, in.Params)
			default:
				return fmt.Errorf("kernel: unhandled rank-global gate %v", in.Gate)
			}
			if in.Gate.Arity() == 2 {
				if cpos := perm[in.Qubits[0]]; cpos < local {
					op.LowCtrl = 1 << uint(cpos)
				} else {
					op.RankCtrl = 1 << uint(cpos)
				}
			}
			t := perm[xq]
			if len(xOps) > 0 && xTBit != t {
				flushX()
			}
			if len(xOps) == 0 {
				flush()
				xTBit = t
			}
			xOps = append(xOps, op)
			if bindable && in.Gate.ParamCount() > 0 {
				pendX = append(pendX, BindSite{Kind: BindExch, Op: len(xOps) - 1, Gate: in.Gate, Slot: slotOf[i], NParams: len(in.Params)})
			}
			return nil
		}
		// Anything else closes the exchange segment (ops must stay in
		// program order across segment kinds).
		flushX()

		// Relabel any high shard-local mixing target that will be mixed
		// again; rank bits never relabel — moving them is communication.
		if len(scratch) <= tileBits {
			for _, q := range scratch {
				if pq := perm[q]; pq >= tileBits && pq < local && remainingUses(q, i) >= minResidencyUses {
					relabel(in, q, i)
				}
			}
		}

		tileLocal := true
		for _, q := range scratch {
			if perm[q] >= tileBits {
				tileLocal = false
				break
			}
		}
		if !tileLocal {
			flush()
			p.Segments = append(p.Segments, Segment{Kind: SegGlobal, Instr: physInstr(in, perm)})
			if bindable && in.Kind == KGate && in.Gate.ParamCount() > 0 {
				p.Binds = append(p.Binds, BindSite{Kind: BindGlobal, Seg: len(p.Segments) - 1, Gate: in.Gate, Slot: slotOf[i], NParams: len(in.Params)})
			}
			p.Stats.Global++
			return nil
		}
		op := compileTileOp(in, perm, tileBits)
		if g > 0 && op.HighMask>>uint(local) != 0 {
			p.Stats.RankLocal++
		}
		appendRunOp(op)
		if bindable && in.Kind == KGate && in.Gate.ParamCount() > 0 {
			pendRun = append(pendRun, BindSite{Kind: BindRun, Op: len(run) - 1, Gate: in.Gate, Slot: slotOf[i], NParams: len(in.Params)})
		}
		p.Stats.TileLocal++
		return nil
	}

	for i, in := range k.Instrs {
		if err := add(in, i); err != nil {
			return nil, err
		}
	}
	flush()
	flushX()

	identity := true
	for q, pos := range perm {
		if q != pos {
			identity = false
			break
		}
	}
	if !identity {
		p.FinalPerm = append([]int(nil), perm...)
	}
	p.Bindable = bindable
	return p, nil
}

// physInstr rewrites an instruction's operands to physical positions.
func physInstr(in Instr, perm []int) Instr {
	out := in
	out.Qubits = make([]int, len(in.Qubits))
	for j, q := range in.Qubits {
		out.Qubits[j] = perm[q]
	}
	return out
}

// compileTileOp lowers one tile-local instruction to a micro-op. The
// matrices and phases are derived exactly as the per-gate path derives
// them (statevec.ApplyGate / ApplyDiagonalGate), keeping the two
// executors arithmetic-identical. Positions at or above the tile width
// land in HighMask — including rank-bit positions of distributed
// plans, which each rank resolves against its own rank index before
// running the op.
func compileTileOp(in Instr, perm []int, tileBits int) statevec.TileOp {
	split := func(pos int) (low uint64, high uint64) {
		if pos < tileBits {
			return 1 << uint(pos), 0
		}
		return 0, 1 << uint(pos)
	}
	if in.Kind == KFused {
		op := statevec.TileOp{Kind: statevec.TileFused, Mat: in.Mat, Qubits: make([]uint, len(in.Qubits))}
		for j, q := range in.Qubits {
			op.Qubits[j] = uint(perm[q])
		}
		return op
	}
	g := in.Gate
	switch {
	case statevec.IsDiagonalGate(g):
		switch g {
		case gate.RZ:
			m := gate.Matrix1(g, in.Params)
			op := statevec.TileOp{Kind: statevec.TileRelPhase, A: m[0], B: m[3]}
			pos := perm[in.Qubits[0]]
			if pos < tileBits {
				op.T = uint(pos)
			} else {
				op.HighMask = 1 << uint(pos)
			}
			return op
		case gate.CZ, gate.CP:
			phase := complex128(-1)
			if g == gate.CP {
				phase = gate.Matrix1(gate.P, in.Params)[3]
			}
			op := statevec.TileOp{Kind: statevec.TileDiag, Phase: phase}
			for _, q := range in.Qubits {
				low, high := split(perm[q])
				op.LowMask |= low
				op.HighMask |= high
			}
			return op
		default: // z, s, sdg, t, tdg, p
			op := statevec.TileOp{Kind: statevec.TileDiag, Phase: gate.Matrix1(g, in.Params)[3]}
			op.LowMask, op.HighMask = split(perm[in.Qubits[0]])
			return op
		}
	case g == gate.CX:
		op := statevec.TileOp{Kind: statevec.TileCX, T: uint(perm[in.Qubits[1]])}
		if cpos := perm[in.Qubits[0]]; cpos < tileBits {
			op.C, op.HasCtrl = uint(cpos), true
		} else {
			op.HighMask = 1 << uint(cpos)
		}
		return op
	case g.Arity() == 2: // cry (cz/cp are diagonal, swap never reaches here)
		var m gate.Mat2
		switch g {
		case gate.CRY:
			m = gate.Matrix1(gate.RY, in.Params)
		default:
			panic(fmt.Sprintf("kernel: unhandled two-qubit gate %v in tile compiler", g))
		}
		op := statevec.TileOp{Kind: statevec.TileMat1, T: uint(perm[in.Qubits[1]]), M: m}
		if cpos := perm[in.Qubits[0]]; cpos < tileBits {
			op.C, op.HasCtrl = uint(cpos), true
		} else {
			op.HighMask = 1 << uint(cpos)
		}
		return op
	default:
		return statevec.TileOp{Kind: statevec.TileMat1, T: uint(perm[in.Qubits[0]]), M: gate.Matrix1(g, in.Params)}
	}
}

// Execute runs a single-process plan against a state. The state must
// be in the canonical layout (any pending permutation is materialized
// first); afterwards the state carries the plan's final permutation,
// which readout materializes lazily. Distributed plans (GlobalBits >
// 0) belong to mgpu.DistState.ExecutePlan and are rejected here.
func (p *TilePlan) Execute(s *statevec.State) error {
	return p.ExecuteCancel(s, nil)
}

// ExecuteCancel is Execute with a cooperative cancellation flag, polled
// once per segment — a tile run is the natural unit of interruptible
// work (one full memory pass over the state). A nil flag never trips.
func (p *TilePlan) ExecuteCancel(s *statevec.State, flag *cancel.Flag) error {
	if p.GlobalBits != 0 {
		return fmt.Errorf("kernel: distributed plan (%d rank bits) cannot run on a single state", p.GlobalBits)
	}
	if s.NumQubits() != p.NumQubits {
		return fmt.Errorf("kernel: state has %d qubits, plan wants %d", s.NumQubits(), p.NumQubits)
	}
	s.MaterializePerm()
	for i, seg := range p.Segments {
		if err := flag.Err(); err != nil {
			return fmt.Errorf("kernel: segment %d: %w", i, err)
		}
		switch seg.Kind {
		case SegRun:
			if err := s.ApplyTileRun(p.TileBits, seg.Ops); err != nil {
				return fmt.Errorf("kernel: tile run %d: %w", i, err)
			}
		case SegBitSwap:
			s.ApplySwap(seg.A, seg.B)
		case SegGlobal:
			switch seg.Instr.Kind {
			case KGate:
				s.ApplyGate(seg.Instr.Gate, seg.Instr.Qubits, seg.Instr.Params)
			case KFused:
				if err := s.ApplyFused(seg.Instr.Qubits, seg.Instr.Mat); err != nil {
					return fmt.Errorf("kernel: global segment %d: %w", i, err)
				}
			}
		default:
			return fmt.Errorf("kernel: segment %d has kind %d, which no single-process executor handles", i, seg.Kind)
		}
	}
	if p.FinalPerm != nil {
		return s.SetPermutation(p.FinalPerm)
	}
	return nil
}

// ExecuteTiled applies the kernel to the state through the tiled
// executor: plan, run, and leave any residual qubit relabeling on the
// state for lazy materialization. States no larger than one tile are
// already cache-resident and run the plain per-gate executor.
func ExecuteTiled(k *Kernel, s *statevec.State, tileBits int) error {
	return ExecuteTiledCancel(k, s, tileBits, nil)
}

// ExecuteTiledCancel is ExecuteTiled with a cooperative cancellation
// flag (polled per segment on the planned path, every few instructions
// on the per-gate fallback). A nil flag never trips.
func ExecuteTiledCancel(k *Kernel, s *statevec.State, tileBits int, flag *cancel.Flag) error {
	if tileBits <= 0 {
		tileBits = AutoTileBits()
	}
	if s.NumQubits() != k.NumQubits {
		return fmt.Errorf("kernel: state has %d qubits, kernel %q wants %d", s.NumQubits(), k.Name, k.NumQubits)
	}
	if k.NumQubits <= tileBits {
		return ExecuteCancel(k, s, flag)
	}
	plan, err := PlanTiled(k, tileBits)
	if err != nil {
		return err
	}
	return plan.ExecuteCancel(s, flag)
}
