// Package core wires the Q-GEAR pipeline together — the paper's
// primary contribution (Fig. 2c): Qiskit-style circuits are saved as
// QPY, read back, tensor-encoded into HDF5, transformed gate-by-gate
// into CUDA-Q-style kernels, and executed on the selected target
// ("aer", "nvidia", "nvidia-mgpu", "nvidia-mqpu", "pennylane"), either
// in the large-circuit mode (one circuit spread over pooled devices)
// or the parallel mode (many circuits across devices as QPUs).
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"qgear/internal/backend"
	"qgear/internal/cancel"
	"qgear/internal/circuit"
	"qgear/internal/kernel"
	"qgear/internal/observable"
	"qgear/internal/qpy"
	"qgear/internal/tensorenc"
)

// Options configures the pipeline end to end.
type Options struct {
	// Transform options (§2.2, Appendix D.2).
	FusionWindow int
	PruneAngle   float64
	// TileBits tunes the cache-blocked tiled sweep executor (see
	// backend.Config.TileBits): 0 = auto (tiled on GPU-class targets
	// at the cache-geometry-detected width, per-gate on aer), negative
	// = per-gate everywhere, positive = force that tile width.
	TileBits int
	// PlanFusion enables within-run single-qubit fusion in the plan
	// compiler (see backend.Config.PlanFusion).
	PlanFusion bool
	// Execution target and sizing.
	Target  backend.Target
	Devices int
	Workers int
	Shots   int
	Seed    uint64
	// Cancel is a cooperative cancellation flag the executors poll at
	// work boundaries; nil runs unbounded. It never shapes the output
	// of a completed run, so Signature deliberately excludes it.
	Cancel *cancel.Flag
	// ExecHook, when non-nil, fires at the start of every execution —
	// the fault-injection point the chaos harness uses. Excluded from
	// Signature for the same reason as Cancel.
	ExecHook func()
}

// backendConfig lowers Options to a backend.Config.
func (o Options) backendConfig() backend.Config {
	return backend.Config{
		Target:       o.Target,
		Devices:      o.Devices,
		Workers:      o.Workers,
		Shots:        o.Shots,
		Seed:         o.Seed,
		FusionWindow: o.FusionWindow,
		PruneAngle:   o.PruneAngle,
		TileBits:     o.TileBits,
		PlanFusion:   o.PlanFusion,
		Cancel:       o.Cancel,
		ExecHook:     o.ExecHook,
	}
}

// Signature returns the output-affecting option encoding CacheKey
// folds into the content address: transform knobs (fusion window,
// prune angle), target, device/worker sizing, the shot budget and
// seed, and the plan-shaping knobs (tile width, plan fusion).
func (o Options) Signature() string {
	return fmt.Sprintf("f%d|p%x|t%s|d%d|w%d|s%d|r%d|b%d|pf%t",
		o.FusionWindow, math.Float64bits(o.PruneAngle), o.Target,
		o.Devices, o.Workers, o.Shots, o.Seed, o.TileBits, o.PlanFusion)
}

// StoreSignature is the per-job-normalized signature a persistent
// artifact store records with each entry: Workers changes wall-clock
// only and Shots/Seed are already part of the entry's cache key, so
// all three are zeroed. TileBits is resolved to the *effective* width
// (the "0 = auto" policy lands on different widths across machines and
// QGEAR_TILE_BITS environments, and with PlanFusion on, a different
// width changes rounding), so artifacts written under one effective
// tiling are rejected by a server running another. A warm-starting
// server compares this against its own configuration before trusting
// an on-disk artifact.
func (o Options) StoreSignature() string {
	o.Workers, o.Shots, o.Seed = 0, 0, 0
	o.TileBits = o.backendConfig().EffectiveTileBits()
	return o.Signature()
}

// CacheKey returns the content address of (circuit, options): the
// circuit fingerprint extended with every option that changes the
// simulation output (Options.Signature). Two submissions with equal
// keys are guaranteed to produce identical results, so a result cache
// may serve one from the other. TileBits is folded in conservatively:
// the tiled executor is bit-identical to the per-gate path by
// construction, but the key must stay sound even if a future tile
// compiler relaxes that — and PlanFusion already does relax it
// (pre-multiplied rotations differ at rounding level), so it is part
// of the key too.
func CacheKey(c *circuit.Circuit, opts Options) string {
	h := sha256.New()
	h.Write([]byte(c.Fingerprint()))
	h.Write([]byte{'|'})
	h.Write([]byte(opts.Signature()))
	return hex.EncodeToString(h.Sum(nil))
}

// Transform converts circuits to kernels with the configured options —
// the Q-GEAR step proper. Per-circuit stats are returned alongside.
func Transform(circuits []*circuit.Circuit, opts Options) ([]*kernel.Kernel, []kernel.Stats, error) {
	kernels := make([]*kernel.Kernel, len(circuits))
	stats := make([]kernel.Stats, len(circuits))
	kopts := kernel.Options{FusionWindow: opts.FusionWindow, PruneAngle: opts.PruneAngle}
	for i, c := range circuits {
		k, st, err := kernel.FromCircuit(c, kopts)
		if err != nil {
			return nil, nil, fmt.Errorf("core: transforming circuit %d (%q): %w", i, c.Name, err)
		}
		kernels[i] = k
		stats[i] = st
	}
	return kernels, stats, nil
}

// Run executes circuits end to end: transform then execute, one result
// per circuit. On the mqpu target the batch runs device-parallel.
func Run(circuits []*circuit.Circuit, opts Options) ([]*backend.Result, error) {
	return backend.RunBatch(circuits, opts.backendConfig())
}

// RunOne is Run for a single circuit.
func RunOne(c *circuit.Circuit, opts Options) (*backend.Result, error) {
	return backend.Run(c, opts.backendConfig())
}

// Compile lowers one circuit to the execution IR (transformed kernel +
// compiled TilePlan) without running it. Compiled artifacts are
// immutable and reusable across executions — the service layer caches
// them by circuit fingerprint so repeat submissions skip planning.
func Compile(c *circuit.Circuit, opts Options) (*backend.Compiled, error) {
	return backend.Compile(c, opts.backendConfig())
}

// RunCompiled executes one precompiled circuit.
func RunCompiled(comp *backend.Compiled, opts Options) (*backend.Result, error) {
	return backend.RunCompiled(comp, opts.backendConfig())
}

// RunCompiledBatch executes a batch of precompiled circuits — the
// device-parallel mqpu path when so configured, exactly like Run.
func RunCompiledBatch(comps []*backend.Compiled, opts Options) ([]*backend.Result, error) {
	return backend.RunBatchCompiled(comps, opts.backendConfig())
}

// RunExpectation executes one circuit and evaluates the exact ⟨H⟩ on
// its final state — the expectation-value job kind. Shots/Seed in
// opts are ignored (expectation is exact).
func RunExpectation(c *circuit.Circuit, h *observable.Hamiltonian, opts Options) (*backend.Result, error) {
	return backend.RunExpectation(c, h, opts.backendConfig())
}

// RunExpectationCompiled evaluates ⟨H⟩ on a precompiled circuit: same
// circuit, many observables = one compile, one execute per call, N
// cheap term sweeps.
func RunExpectationCompiled(comp *backend.Compiled, h *observable.Hamiltonian, opts Options) (*backend.Result, error) {
	return backend.RunExpectationCompiled(comp, h, opts.backendConfig())
}

// RunSweep executes one circuit shape at every parameter point:
// compile once, rebind and run per point (see backend.RunSweep). With
// a Hamiltonian the artifact is the per-point ⟨H⟩ vector (exact;
// Shots/Seed ignored must be unset by callers); without one it is the
// per-point sampled histogram (Shots required).
func RunSweep(c *circuit.Circuit, h *observable.Hamiltonian, points [][]float64, opts Options) (*backend.Result, error) {
	return backend.RunSweep(c, h, points, opts.backendConfig())
}

// RunSweepCompiled is RunSweep for a precompiled circuit — the serving
// layer's path: the structurally-cached compile serves every point
// through rebinds. Surfaces backend.ErrNotRebindable for
// configurations that must compile per point.
func RunSweepCompiled(comp *backend.Compiled, h *observable.Hamiltonian, points [][]float64, opts Options) (*backend.Result, error) {
	return backend.RunSweepCompiled(comp, h, points, opts.backendConfig())
}

// RunGradient evaluates the parameter-shift gradient of ⟨H⟩ at one
// base point — a derived 2k+1-point sweep.
func RunGradient(c *circuit.Circuit, h *observable.Hamiltonian, base []float64, opts Options) (*backend.Result, error) {
	return backend.RunGradient(c, h, base, opts.backendConfig())
}

// RunGradientCompiled is RunGradient for a precompiled circuit.
func RunGradientCompiled(comp *backend.Compiled, h *observable.Hamiltonian, base []float64, opts Options) (*backend.Result, error) {
	return backend.RunGradientCompiled(comp, h, base, opts.backendConfig())
}

// Rebindable reports whether these options admit compile-once
// rebinding (no fusion, no pruning, no plan fusion) — the predicate
// gating the service's structural plan-cache keying and sweep fast
// path.
func (o Options) Rebindable() bool {
	return o.backendConfig().Rebindable()
}

// SweepCacheKey returns the content address of a sweep job: the
// *structural* circuit fingerprint (every parameter slot is overridden
// per point, so the skeleton's own values cannot shape the artifact),
// the point matrix bit-for-bit, the optional Hamiltonian hash, and the
// output-shaping options. Hamiltonian sweeps are exact, so Shots/Seed
// normalize away like expectation jobs; sampling sweeps keep both.
func SweepCacheKey(c *circuit.Circuit, h *observable.Hamiltonian, points [][]float64, opts Options) string {
	opts.Workers = 0
	hash := sha256.New()
	hash.Write([]byte(c.StructuralFingerprint()))
	hash.Write([]byte("|sweep|"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(points)))
	hash.Write(buf[:])
	for _, pt := range points {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(pt)))
		hash.Write(buf[:])
		for _, v := range pt {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			hash.Write(buf[:])
		}
	}
	if h != nil {
		opts.Shots, opts.Seed = 0, 0
		hash.Write([]byte("|h|"))
		hash.Write([]byte(h.Fingerprint()))
	}
	hash.Write([]byte{'|'})
	hash.Write([]byte(opts.Signature()))
	return hex.EncodeToString(hash.Sum(nil))
}

// GradientCacheKey returns the content address of a gradient job: a
// sweep key over the derived base-point singleton under a distinct
// domain tag (the artifact shape differs from a one-point sweep's).
func GradientCacheKey(c *circuit.Circuit, h *observable.Hamiltonian, base []float64, opts Options) string {
	hash := sha256.New()
	hash.Write([]byte("grad|"))
	hash.Write([]byte(SweepCacheKey(c, h, [][]float64{base}, opts)))
	return hex.EncodeToString(hash.Sum(nil))
}

// ExpectationCacheKey returns the content address of an expectation
// job: the circuit fingerprint, the Hamiltonian's canonical hash, and
// every option that could change the value. Shots, seed, and worker
// count are normalized away — expectation jobs are exact and
// deterministic, so neither sampling knob nor parallelism shapes the
// output.
func ExpectationCacheKey(c *circuit.Circuit, h *observable.Hamiltonian, opts Options) string {
	opts.Workers, opts.Shots, opts.Seed = 0, 0, 0
	hash := sha256.New()
	hash.Write([]byte(c.Fingerprint()))
	hash.Write([]byte("|exp|"))
	hash.Write([]byte(h.Fingerprint()))
	hash.Write([]byte{'|'})
	hash.Write([]byte(opts.Signature()))
	return hex.EncodeToString(hash.Sum(nil))
}

// SaveQPY persists a circuit list in the QPY-like format ("Save QPY"
// of Fig. 2c).
func SaveQPY(path string, circuits []*circuit.Circuit) error {
	return qpy.SaveFile(path, circuits)
}

// LoadQPY loads a circuit list back ("Read QPY").
func LoadQPY(path string) ([]*circuit.Circuit, error) {
	return qpy.LoadFile(path)
}

// TensorGroup is the HDF5 group the tensor encoding lives under.
const TensorGroup = "qgear/circuits"

// SaveTensors tensor-encodes circuits (§2.1) and writes the HDF5-lite
// file with flate compression; capacity <= 0 auto-sizes per Lemma B.2.
// Circuits are transpiled to the native basis first when they contain
// gates outside the encodable set.
func SaveTensors(path string, circuits []*circuit.Circuit, capacity int) error {
	prepared := make([]*circuit.Circuit, len(circuits))
	for i, c := range circuits {
		prepared[i] = c
		for _, op := range c.Ops {
			if op.Gate.ParamCount() > 1 {
				prepared[i] = c.Transpile(circuit.BasisNative)
				break
			}
		}
	}
	enc, err := tensorenc.Encode(prepared, capacity)
	if err != nil {
		return err
	}
	return enc.SaveFile(path, TensorGroup)
}

// LoadTensors reads a tensor-encoded circuit list back from HDF5.
func LoadTensors(path string) ([]*circuit.Circuit, error) {
	enc, err := tensorenc.LoadFile(path, TensorGroup)
	if err != nil {
		return nil, err
	}
	return enc.Decode()
}

// RunQPYFile is the separate-program flow of §3: read a QPY circuit
// list produced elsewhere, transform, execute.
func RunQPYFile(path string, opts Options) ([]*backend.Result, error) {
	circuits, err := LoadQPY(path)
	if err != nil {
		return nil, err
	}
	return Run(circuits, opts)
}

// RunTensorFile is the same flow for the HDF5 tensor interchange
// format.
func RunTensorFile(path string, opts Options) ([]*backend.Result, error) {
	circuits, err := LoadTensors(path)
	if err != nil {
		return nil, err
	}
	return Run(circuits, opts)
}

// WorkflowMode selects between the Fig. 2c execution modes.
type WorkflowMode int

// Workflow modes.
const (
	// ModeLargeCircuit pools device memory for one big circuit
	// (nvidia-mgpu).
	ModeLargeCircuit WorkflowMode = iota
	// ModeParallelCircuits fans independent circuits out across
	// devices used as QPUs (nvidia-mqpu).
	ModeParallelCircuits
)

// RunWorkflow dispatches a circuit batch according to the workflow
// mode, defaulting the target appropriately.
func RunWorkflow(circuits []*circuit.Circuit, mode WorkflowMode, opts Options) ([]*backend.Result, error) {
	switch mode {
	case ModeLargeCircuit:
		if opts.Target == "" {
			opts.Target = backend.TargetNvidiaMGPU
		}
	case ModeParallelCircuits:
		if opts.Target == "" {
			opts.Target = backend.TargetNvidiaMQPU
		}
	default:
		return nil, fmt.Errorf("core: unknown workflow mode %d", mode)
	}
	return Run(circuits, opts)
}
