package core

import (
	"math"
	"testing"

	"qgear/internal/backend"
	"qgear/internal/qasm"
	"qgear/internal/qft"
)

func TestQASMInterchangeMatchesQPYPath(t *testing.T) {
	// The same circuit routed through OpenQASM text and through the
	// binary QPY path must simulate identically — cross-format
	// integration of the interchange layer.
	c, err := qft.Circuit(6, true)
	if err != nil {
		t.Fatal(err)
	}
	src, err := qasm.Export(c)
	if err != nil {
		t.Fatal(err)
	}
	viaQASM, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunOne(c, Options{Target: backend.TargetNvidia, FusionWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(viaQASM, Options{Target: backend.TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Probabilities {
		if math.Abs(a.Probabilities[i]-b.Probabilities[i]) > 1e-9 {
			t.Fatalf("probability %d differs across formats", i)
		}
	}
}
