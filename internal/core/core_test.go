package core

import (
	"math"
	"path/filepath"
	"testing"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/qft"
	"qgear/internal/randcirc"
)

func TestTransformBatch(t *testing.T) {
	circs, err := randcirc.GenerateList(5, 20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	kernels, stats, err := Transform(circs, Options{FusionWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(kernels) != 4 || len(stats) != 4 {
		t.Fatal("batch sizes wrong")
	}
	for i, st := range stats {
		if st.SourceOps != 60 {
			t.Fatalf("kernel %d: %d source ops", i, st.SourceOps)
		}
		if st.FusedGroups == 0 {
			t.Fatalf("kernel %d: no fusion", i)
		}
	}
}

func TestEndToEndQPYFlow(t *testing.T) {
	// The Fig. 2c pipeline: generate -> save QPY -> (separate program)
	// read QPY -> transform -> execute on GPU target; results must
	// match direct execution.
	dir := t.TempDir()
	path := filepath.Join(dir, "circuits.qpy")
	circs, err := randcirc.GenerateList(5, 30, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveQPY(path, circs); err != nil {
		t.Fatal(err)
	}
	results, err := RunQPYFile(path, Options{Target: backend.TargetNvidia, FusionWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(circs, Options{Target: backend.TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		for j := range results[i].Probabilities {
			if math.Abs(results[i].Probabilities[j]-direct[i].Probabilities[j]) > 1e-9 {
				t.Fatalf("circuit %d: QPY flow diverged from direct", i)
			}
		}
	}
}

func TestEndToEndTensorFlow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "circuits.h5")
	q, err := qft.Circuit(5, true)
	if err != nil {
		t.Fatal(err)
	}
	ghz := circuit.GHZ(5, false)
	if err := SaveTensors(path, []*circuit.Circuit{q, ghz}, 0); err != nil {
		t.Fatal(err)
	}
	results, err := RunTensorFile(path, Options{Target: backend.TargetNvidia})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatal("lost circuits in tensor round trip")
	}
	// QFT|0> = uniform distribution.
	for _, p := range results[0].Probabilities {
		if math.Abs(p-1.0/32) > 1e-9 {
			t.Fatalf("QFT probs wrong after tensor flow: %g", p)
		}
	}
	// GHZ: half mass on |00000>, half on |11111>.
	p := results[1].Probabilities
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[31]-0.5) > 1e-9 {
		t.Fatal("GHZ probs wrong after tensor flow")
	}
}

func TestSaveTensorsTranspilesWideGates(t *testing.T) {
	// u3 circuits can't tensor-encode directly; SaveTensors must
	// transpile them rather than fail.
	c := circuit.New(2, 0).U3(0.3, 0.4, 0.5, 0).CX(0, 1)
	path := filepath.Join(t.TempDir(), "u3.h5")
	if err := SaveTensors(path, []*circuit.Circuit{c}, 0); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTensors(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunOne(c, Options{Target: backend.TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOne(back[0], Options{Target: backend.TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Probabilities {
		if math.Abs(ref.Probabilities[i]-got.Probabilities[i]) > 1e-9 {
			t.Fatal("transpiled tensor encoding changed semantics")
		}
	}
}

func TestWorkflowModes(t *testing.T) {
	// Large-circuit mode on a GHZ spread over 4 devices.
	big := circuit.GHZ(6, false)
	res, err := RunWorkflow([]*circuit.Circuit{big}, ModeLargeCircuit, Options{Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Target != backend.TargetNvidiaMGPU || res[0].Exchanges == 0 {
		t.Fatalf("large-circuit mode did not use mgpu: %+v", res[0].Target)
	}
	// Parallel mode on a batch.
	batch, err := randcirc.GenerateList(4, 10, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunWorkflow(batch, ModeParallelCircuits, Options{Devices: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 6 || res2[0].Target != backend.TargetNvidiaMQPU {
		t.Fatal("parallel mode wrong")
	}
	// Explicit target wins over the mode default.
	res3, err := RunWorkflow(batch[:1], ModeParallelCircuits, Options{Target: backend.TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	if res3[0].Target != backend.TargetAer {
		t.Fatal("explicit target overridden")
	}
	if _, err := RunWorkflow(batch, WorkflowMode(9), Options{}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestErrorPropagation(t *testing.T) {
	if _, err := RunQPYFile("/nonexistent.qpy", Options{Target: backend.TargetAer}); err == nil {
		t.Fatal("missing qpy accepted")
	}
	if _, err := RunTensorFile("/nonexistent.h5", Options{Target: backend.TargetAer}); err == nil {
		t.Fatal("missing h5 accepted")
	}
	bad := &circuit.Circuit{NumQubits: 1, Ops: []circuit.Op{{Gate: 200, Qubits: []int{0}}}}
	if _, _, err := Transform([]*circuit.Circuit{bad}, Options{}); err == nil {
		t.Fatal("invalid circuit transformed")
	}
}
