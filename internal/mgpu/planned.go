package mgpu

import (
	"fmt"

	"qgear/internal/cancel"
	"qgear/internal/kernel"
	"qgear/internal/statevec"
)

// Planned execution: the distributed engine consumes the same compiled
// TilePlan IR as the single-process engine. A distributed plan
// (kernel.PlanConfig.GlobalBits = log2(ranks)) classifies every
// instruction exactly once, at compile time:
//
//   - tile-local micro-ops run against the rank shard through
//     statevec.ApplyTileRun — one memory pass per run, as on a single
//     device;
//   - diagonal factors and controls on rank-index bits arrive as
//     HighMask predicates; each rank resolves them against its own
//     rank index below, with zero communication;
//   - non-diagonal targets on rank bits arrive as exchange segments:
//     one pairwise buffer exchange serves every gate in the segment,
//     because after the exchange a rank holds both halves of the pair
//     subspace and can co-update them locally.
//
// Every step performs the same arithmetic on the same amplitudes as
// the per-gate path (DistState.ApplyGate), so planned execution is
// bit-identical to it — the randomized suite in planned_test.go pins
// that across rank counts, shard shapes, and fusion settings.

// ExecutePlan runs a compiled distributed plan against this rank's
// shard. The plan must have been compiled with GlobalBits matching the
// world size. Every rank must call it (SPMD, like ExecuteKernel).
func (d *DistState) ExecutePlan(p *kernel.TilePlan) error {
	return d.ExecutePlanCancel(p, nil)
}

// ExecutePlanCancel is ExecutePlan with a cooperative cancellation
// flag, polled collectively (see pollCancel) at every segment boundary
// — the natural SPMD-aligned point where all ranks agree on whether to
// stop before any of them commits to the segment's pairwise exchange.
func (d *DistState) ExecutePlanCancel(p *kernel.TilePlan, flag *cancel.Flag) error {
	if p.NumQubits != d.n {
		return fmt.Errorf("mgpu: plan wants %d qubits, state has %d", p.NumQubits, d.n)
	}
	if gbits := d.n - d.local; p.GlobalBits != gbits {
		return fmt.Errorf("mgpu: plan compiled for %d rank bits, world has %d", p.GlobalBits, gbits)
	}
	if p.TileBits < 1 || p.TileBits >= d.local {
		return fmt.Errorf("mgpu: plan tile width %d outside [1,%d)", p.TileBits, d.local)
	}
	d.st.MaterializePerm()
	localMask := uint64(1)<<uint(d.local) - 1
	rankAbs := uint64(d.comm.Rank()) << uint(d.local)
	for i, seg := range p.Segments {
		var err error
		if err = d.pollCancel(flag); err != nil {
			return fmt.Errorf("mgpu: plan segment %d: %w", i, err)
		}
		switch seg.Kind {
		case kernel.SegRun:
			buf := d.opBuf[:0]
			for _, op := range seg.Ops {
				if rop, keep := resolveRankOp(op, rankAbs, localMask); keep {
					buf = append(buf, rop)
				}
			}
			d.opBuf = buf
			if len(buf) > 0 {
				err = d.st.ApplyTileRun(p.TileBits, buf)
			}
		case kernel.SegBitSwap:
			d.st.ApplySwap(seg.A, seg.B)
		case kernel.SegGlobal:
			// Operands are physical positions; positions at or above
			// d.local are rank bits, which is exactly the numbering
			// ApplyGate's locality cases dispatch on.
			switch seg.Instr.Kind {
			case kernel.KGate:
				err = d.ApplyGate(seg.Instr.Gate, seg.Instr.Qubits, seg.Instr.Params)
			case kernel.KFused:
				err = d.ApplyFused(seg.Instr.Qubits, seg.Instr.Mat)
			}
		case kernel.SegExchange:
			d.execExchange(seg, rankAbs)
		default:
			err = fmt.Errorf("unknown segment kind %d", seg.Kind)
		}
		if err != nil {
			return fmt.Errorf("mgpu: plan segment %d: %w", i, err)
		}
	}
	if p.FinalPerm != nil {
		// Rank bits never permute, so the shard applies the local slice.
		return d.st.SetPermutation(p.FinalPerm[:d.local])
	}
	return nil
}

// resolveRankOp specializes one tile micro-op to this rank: HighMask
// bits at or above the shard width are rank-index predicates — strip
// them when this rank's bits satisfy them, drop the op when they do
// not. A relative-phase op *targeting* a rank bit degenerates to the
// one factor this rank's bit selects, multiplied across the shard.
func resolveRankOp(op statevec.TileOp, rankAbs, localMask uint64) (statevec.TileOp, bool) {
	rankMask := op.HighMask &^ localMask
	if rankMask == 0 {
		return op, true
	}
	if op.Kind == statevec.TileRelPhase {
		// HighMask holds the target bit, selecting between the two
		// diagonal factors rather than gating the op.
		f := op.A
		if rankAbs&rankMask != 0 {
			f = op.B
		}
		return statevec.TileOp{Kind: statevec.TileDiag, Phase: f}, true
	}
	if rankAbs&rankMask != rankMask {
		return op, false
	}
	op.HighMask &= localMask
	return op, true
}

// execExchange runs one batched exchange segment: filter the ops to
// those whose rank-bit controls this rank satisfies (the partner rank
// differs only in the target bit, so it filters identically), perform
// a single buffer exchange if anything survived, then co-update both
// halves of the pair subspace gate by gate. The two-buffer update
// computes, per gate, exactly the expressions the per-gate path
// computes on each side of the exchange, so the retained half is
// bit-identical to executing the gates with one exchange each.
func (d *DistState) execExchange(seg kernel.Segment, rankAbs uint64) {
	active := seg.XOps[:0:0]
	for _, op := range seg.XOps {
		if rankAbs&op.RankCtrl == op.RankCtrl {
			active = append(active, op)
		}
	}
	if len(active) == 0 {
		return
	}
	partner := d.comm.Rank() ^ 1<<uint(seg.TBit-d.local)
	theirs := d.exchange(partner)
	d.avoidedExch += len(active) - 1
	amps := d.st.Amplitudes()
	bit1 := d.rankBit(seg.TBit) == 1
	for _, op := range active {
		m0, m1, m2, m3 := op.M[0], op.M[1], op.M[2], op.M[3]
		ctrl := op.LowCtrl
		for i := range amps {
			if uint64(i)&ctrl != ctrl {
				continue
			}
			var a0, a1 complex128
			if bit1 {
				a0, a1 = theirs[i], amps[i]
				theirs[i] = m0*a0 + m1*a1
				amps[i] = m2*a0 + m3*a1
			} else {
				a0, a1 = amps[i], theirs[i]
				amps[i] = m0*a0 + m1*a1
				theirs[i] = m2*a0 + m3*a1
			}
		}
	}
}

// SimulateCompiled runs an already-compiled plan (or, when plan is
// nil, the per-gate baseline) on nRanks simulated devices and returns
// the gathered result — the distributed half of the shared-IR
// pipeline: transform once, plan once, execute anywhere.
func SimulateCompiled(k *kernel.Kernel, plan *kernel.TilePlan, nRanks, workersPerRank int) (*Result, error) {
	return SimulateCompiledCancel(k, plan, nRanks, workersPerRank, nil)
}

// SimulateCompiledCancel is SimulateCompiled with a cooperative
// cancellation flag shared by all ranks; a tripped flag stops the whole
// world at the next collective poll and surfaces through mpi.Run as a
// rank error wrapping the flag's verdict.
func SimulateCompiledCancel(k *kernel.Kernel, plan *kernel.TilePlan, nRanks, workersPerRank int, flag *cancel.Flag) (*Result, error) {
	exec := func(d *DistState) error {
		if plan != nil {
			return d.ExecutePlanCancel(plan, flag)
		}
		return d.ExecuteKernelCancel(k, flag)
	}
	return simulate(k.NumQubits, nRanks, workersPerRank, exec)
}
