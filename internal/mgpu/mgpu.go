// Package mgpu implements the pooled-memory distributed state vector
// behind the paper's 'nvidia-mgpu' target (§3): the 2^n amplitude
// vector is partitioned across R simulated devices (MPI ranks), which
// "effectively combines memory from multiple GPUs" so circuits larger
// than one device's RAM remain simulable — the mechanism that lets the
// paper reach 34 qubits on 4 GPUs and 42 qubits on 1024.
//
// Qubit bits below log2(R) from the top are "local": gates on them
// touch only rank-resident amplitudes. Gates on the top ("global")
// qubits require a pairwise buffer exchange between partner ranks —
// the communication cost that shapes Fig. 4b. Exchange and byte
// counters are exported so the cluster model can be calibrated against
// real exchange counts.
package mgpu

import (
	"fmt"
	"math"
	"time"

	"qgear/internal/cancel"
	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/mpi"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// DistState is one rank's shard of a distributed 2^n state vector.
type DistState struct {
	comm    *mpi.Comm
	n       int // total qubits
	local   int // local qubits (amplitude bits resident on this rank)
	st      *statevec.State
	sendBuf []complex128

	// Stats
	exchanges   int
	bytesSent   int64
	avoidedExch int   // exchanges the per-gate baseline would have paid
	exchangeNS  int64 // time this rank spent copying + swapping buffers
	opBuf       []statevec.TileOp
}

// NewDist allocates the shard for this rank. The world size must be a
// power of two no larger than 2^(n-1) so every rank holds at least two
// amplitudes.
func NewDist(comm *mpi.Comm, n, workersPerRank int) (*DistState, error) {
	r := comm.Size()
	if !qmath.IsPow2(uint64(r)) {
		return nil, fmt.Errorf("mgpu: world size %d is not a power of two", r)
	}
	gbits := int(qmath.Log2Ceil(uint64(r)))
	local := n - gbits
	if local < 1 {
		return nil, fmt.Errorf("mgpu: %d ranks leave %d local qubits for %d total", r, local, n)
	}
	st, err := statevec.New(local, workersPerRank)
	if err != nil {
		return nil, err
	}
	if comm.Rank() != 0 {
		st.SetAmp(0, 0) // only the global |0...0> amplitude is 1
	}
	return &DistState{comm: comm, n: n, local: local, st: st}, nil
}

// NumQubits returns the total (global) qubit count.
func (d *DistState) NumQubits() int { return d.n }

// LocalQubits returns the per-rank qubit count.
func (d *DistState) LocalQubits() int { return d.local }

// Exchanges returns how many pairwise buffer exchanges this rank
// performed — the communication metric the Fig. 4b model consumes.
func (d *DistState) Exchanges() int { return d.exchanges }

// BytesSent returns the total bytes this rank shipped to partners.
func (d *DistState) BytesSent() int64 { return d.bytesSent }

// AvoidedExchanges returns how many pairwise exchanges this rank did
// *not* perform relative to the naive per-gate baseline: diagonal and
// phase gates on rank-index qubits resolved locally, plus the extra
// exchanges a batched exchange segment absorbs into its first.
func (d *DistState) AvoidedExchanges() int { return d.avoidedExch }

// ExchangeTime returns how long this rank spent inside pairwise buffer
// exchanges (send-copy plus the blocking swap with the partner) — the
// communication share of its execution wall time, reported as the
// "exchange" stage of a job trace.
func (d *DistState) ExchangeTime() time.Duration { return time.Duration(d.exchangeNS) }

// isGlobal reports whether qubit q lives in the rank-index bits.
func (d *DistState) isGlobal(q int) bool { return q >= d.local }

// rankBit returns this rank's value of global qubit q.
func (d *DistState) rankBit(q int) int {
	return d.comm.Rank() >> uint(q-d.local) & 1
}

// exchange swaps the full local buffer with the partner rank and
// returns the partner's amplitudes. A copy is shipped (not the live
// slice) because ranks share an address space here, while real
// CUDA-aware MPI would DMA the buffer; the copy is also what makes the
// communication cost physically meaningful.
func (d *DistState) exchange(partner int) []complex128 {
	d.st.Amplitudes() // materialize any pending permutation first
	return d.exchangeRaw(partner)
}

// exchangeRaw ships the shard's amplitudes in their current physical
// layout, without materializing a pending qubit permutation — the
// expectation evaluator translates indices through its lookup tables,
// and both shards of a pair always share one layout (SPMD execution).
func (d *DistState) exchangeRaw(partner int) []complex128 {
	start := time.Now()
	amps := d.st.AmplitudesRaw()
	if d.sendBuf == nil {
		d.sendBuf = make([]complex128, len(amps))
	}
	buf := d.sendBuf
	copy(buf, amps)
	// Ownership of buf transfers to the partner; the buffer received
	// from the partner becomes our send buffer for the next exchange
	// (it is fully consumed before that exchange starts, because gates
	// run sequentially within a rank).
	theirs := d.comm.Exchange(partner, buf).([]complex128)
	d.sendBuf = theirs
	d.exchanges++
	d.bytesSent += int64(len(amps) * 16)
	d.exchangeNS += int64(time.Since(start))
	return theirs
}

// ApplyGate applies a gate across the distributed state. Every rank
// must call it with identical arguments (SPMD, like an MPI program).
func (d *DistState) ApplyGate(g gate.Type, qubits []int, params []float64) error {
	switch {
	case g == gate.Barrier || g == gate.Measure || g == gate.I:
		return nil
	case statevec.IsDiagonalGate(g):
		return d.applyDiagonal(g, qubits, params)
	case g == gate.SWAP:
		if err := d.ApplyGate(gate.CX, []int{qubits[0], qubits[1]}, nil); err != nil {
			return err
		}
		if err := d.ApplyGate(gate.CX, []int{qubits[1], qubits[0]}, nil); err != nil {
			return err
		}
		return d.ApplyGate(gate.CX, []int{qubits[0], qubits[1]}, nil)
	case g.Arity() == 1:
		return d.apply1(qubits[0], gate.Matrix1(g, params))
	case g.Arity() == 2:
		// cz/cp are diagonal and already routed above; only the
		// non-diagonal controlled gates reach here.
		var u gate.Mat2
		switch g {
		case gate.CX:
			u = gate.Matrix1(gate.X, nil)
		case gate.CRY:
			u = gate.Matrix1(gate.RY, params)
		default:
			return fmt.Errorf("mgpu: unhandled two-qubit gate %v", g)
		}
		return d.applyControlled(qubits[0], qubits[1], u)
	}
	return fmt.Errorf("mgpu: unhandled gate %v", g)
}

// apply1 applies a single-qubit unitary.
func (d *DistState) apply1(q int, m gate.Mat2) error {
	if !d.isGlobal(q) {
		d.st.ApplyMat1(q, m)
		return nil
	}
	partner := d.comm.Rank() ^ 1<<uint(q-d.local)
	theirs := d.exchange(partner)
	amps := d.st.Amplitudes()
	if d.rankBit(q) == 0 {
		// This rank holds the |q=0> half: new a0 = m00·a0 + m01·a1.
		for i := range amps {
			amps[i] = m[0]*amps[i] + m[1]*theirs[i]
		}
	} else {
		// |q=1> half: new a1 = m10·a0 + m11·a1.
		for i := range amps {
			amps[i] = m[2]*theirs[i] + m[3]*amps[i]
		}
	}
	return nil
}

// applyControlled applies a controlled single-qubit unitary with the
// four locality cases the paper's multi-GPU layout induces.
func (d *DistState) applyControlled(c, t int, m gate.Mat2) error {
	if c == t {
		return fmt.Errorf("mgpu: control equals target %d", c)
	}
	cGlobal, tGlobal := d.isGlobal(c), d.isGlobal(t)
	switch {
	case !cGlobal && !tGlobal:
		d.st.ApplyControlled1(c, t, m)
		return nil
	case cGlobal && !tGlobal:
		// Control is a rank bit: ranks in the |c=1> half apply the
		// unitary locally; the rest idle. No communication at all —
		// the reason control-qubit placement matters for comm volume.
		if d.rankBit(c) == 1 {
			d.st.ApplyMat1(t, m)
		}
		return nil
	case !cGlobal && tGlobal:
		// Target is a rank bit: exchange, then update only amplitudes
		// whose local control bit is set.
		partner := d.comm.Rank() ^ 1<<uint(t-d.local)
		theirs := d.exchange(partner)
		amps := d.st.Amplitudes()
		cmask := uint64(1) << uint(c)
		if d.rankBit(t) == 0 {
			for i := range amps {
				if uint64(i)&cmask != 0 {
					amps[i] = m[0]*amps[i] + m[1]*theirs[i]
				}
			}
		} else {
			for i := range amps {
				if uint64(i)&cmask != 0 {
					amps[i] = m[2]*theirs[i] + m[3]*amps[i]
				}
			}
		}
		return nil
	default:
		// Both global: ranks whose control bit is 1 pair-exchange over
		// the target bit; ranks with control 0 idle.
		if d.rankBit(c) == 0 {
			return nil
		}
		partner := d.comm.Rank() ^ 1<<uint(t-d.local)
		theirs := d.exchange(partner)
		amps := d.st.Amplitudes()
		if d.rankBit(t) == 0 {
			for i := range amps {
				amps[i] = m[0]*amps[i] + m[1]*theirs[i]
			}
		} else {
			for i := range amps {
				amps[i] = m[2]*theirs[i] + m[3]*amps[i]
			}
		}
		return nil
	}
}

// applyDiagonal applies a diagonal/phase gate with zero communication
// at any operand placement: a rank-index bit is constant across the
// whole shard, so a diagonal factor on it collapses to one scalar
// (chosen by this rank's bit) multiplied into the resident amplitudes
// — where the naive path would pay a full pairwise buffer exchange.
// Each skipped exchange is counted in AvoidedExchanges. The arithmetic
// is exactly the per-gate path's (multiplying by the same factors the
// dense 2×2 would, whose off-diagonal terms are exact zeros), so this
// is bit-identical to exchanging.
func (d *DistState) applyDiagonal(g gate.Type, qubits []int, params []float64) error {
	if g.Arity() == 1 {
		q := qubits[0]
		if !d.isGlobal(q) {
			d.st.ApplyDiagonalGate(g, qubits, params)
			return nil
		}
		m := gate.Matrix1(g, params)
		f := m[0]
		if d.rankBit(q) == 1 {
			f = m[3]
		}
		d.scale(f)
		d.avoidedExch++
		return nil
	}
	// cz / cp: phase on the |c=1,t=1> subspace.
	c, t := qubits[0], qubits[1]
	if c == t {
		return fmt.Errorf("mgpu: control equals target %d", c)
	}
	phase := complex128(-1)
	if g == gate.CP {
		phase = gate.Matrix1(gate.P, params)[3]
	}
	cGlobal, tGlobal := d.isGlobal(c), d.isGlobal(t)
	switch {
	case !cGlobal && !tGlobal:
		d.st.ApplyControlledPhase(c, t, phase)
	case cGlobal && !tGlobal:
		// Control on a rank bit was already communication-free.
		if d.rankBit(c) == 1 {
			d.st.ApplyPhase1(t, phase)
		}
	case !cGlobal && tGlobal:
		// The naive path exchanges here; the rank-bit phase does not.
		if d.rankBit(t) == 1 {
			d.st.ApplyPhase1(c, phase)
		}
		d.avoidedExch++
	default:
		// Both on rank bits: at most one scalar multiply per rank. The
		// naive path exchanged on the |c=1> ranks only.
		if d.rankBit(c) == 1 {
			d.avoidedExch++
			if d.rankBit(t) == 1 {
				d.scale(phase)
			}
		}
	}
	return nil
}

// scale multiplies every resident amplitude by f (a rank-constant
// diagonal factor). Multiplying by an exact 1 is skipped.
func (d *DistState) scale(f complex128) {
	if f == 1 {
		return
	}
	amps := d.st.Amplitudes()
	for i := range amps {
		amps[i] *= f
	}
}

// ApplyFused applies a fused unitary if all its qubits are local;
// distributed executors transform kernels with fusion restricted to
// local qubits (or disabled) before running.
func (d *DistState) ApplyFused(qubits []int, m []complex128) error {
	for _, q := range qubits {
		if d.isGlobal(q) {
			return fmt.Errorf("mgpu: fused op touches global qubit %d; refuse fusion across device boundaries", q)
		}
	}
	return d.st.ApplyFused(qubits, m)
}

// Norm returns the global 2-norm (allreduced; identical on all ranks).
func (d *DistState) Norm() float64 {
	var local float64
	for _, a := range d.st.Amplitudes() {
		local += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(d.comm.Allreduce(local, mpi.OpSum))
}

// Probabilities gathers the global |αi|² vector at root (rank 0);
// other ranks receive nil. Rank order equals amplitude order because
// rank bits are the top index bits.
func (d *DistState) Probabilities() []float64 {
	return d.comm.GatherFloat64s(0, d.st.Probabilities())
}

// pollCancel decides a cancellation check collectively. Ranks share
// one flag object, but deadline polls read per-rank clocks, so at the
// expiry boundary rank A can conclude "expired" while its partner B —
// a few nanoseconds behind — has already entered a blocking pairwise
// Exchange with A; A abandoning the run would strand B forever (the
// mpi shim, like real MPI, has no cross-rank cancellation). An
// Allreduce(max) over the local verdicts makes every rank act on the
// same decision at the same SPMD point: either all ranks continue or
// all ranks stop, and no exchange is ever left half-entered. A nil
// flag costs nothing (and is SPMD-consistent: all ranks share it).
func (d *DistState) pollCancel(flag *cancel.Flag) error {
	if flag == nil {
		return nil
	}
	v := 0.0
	err := flag.Err()
	if err != nil {
		v = 1
	}
	if d.comm.Allreduce(v, mpi.OpMax) == 0 {
		return nil
	}
	if err == nil {
		// Another rank crossed the deadline boundary first; resolve the
		// local error now (it is at most nanoseconds away).
		if err = flag.Err(); err == nil {
			err = cancel.ErrDeadline
		}
	}
	return err
}

// ExecuteKernel runs a kernel's instruction stream on the distributed
// state.
func (d *DistState) ExecuteKernel(k *kernel.Kernel) error {
	return d.ExecuteKernelCancel(k, nil)
}

// cancelPollInstrs is how many per-gate instructions run between
// collective cancellation polls on the distributed per-gate path — the
// poll is an Allreduce, so it is rationed more coarsely than a local
// atomic load would be.
const cancelPollInstrs = 16

// ExecuteKernelCancel is ExecuteKernel with a cooperative cancellation
// flag, polled collectively every cancelPollInstrs instructions.
func (d *DistState) ExecuteKernelCancel(k *kernel.Kernel, flag *cancel.Flag) error {
	if k.NumQubits != d.n {
		return fmt.Errorf("mgpu: kernel %q wants %d qubits, state has %d", k.Name, k.NumQubits, d.n)
	}
	for i, in := range k.Instrs {
		var err error
		if i%cancelPollInstrs == 0 {
			if err = d.pollCancel(flag); err != nil {
				return fmt.Errorf("mgpu: instr %d: %w", i, err)
			}
		}
		switch in.Kind {
		case kernel.KGate:
			err = d.ApplyGate(in.Gate, in.Qubits, in.Params)
		case kernel.KFused:
			err = d.ApplyFused(in.Qubits, in.Mat)
		case kernel.KMeasure, kernel.KBarrier:
		default:
			err = fmt.Errorf("unknown instr kind %d", in.Kind)
		}
		if err != nil {
			return fmt.Errorf("mgpu: instr %d: %w", i, err)
		}
	}
	return nil
}

// Result is what SimulateKernel/SimulateCompiled return at root.
type Result struct {
	Probabilities []float64
	Exchanges     int   // total pairwise exchanges across all ranks
	BytesSent     int64 // total bytes shipped between ranks
	// AvoidedExchanges counts exchanges the naive per-gate baseline
	// would have performed but this run resolved locally (rank-bit
	// diagonal phases) or absorbed into a batched exchange segment.
	AvoidedExchanges int
	// ExchangeTime is the root rank's cumulative exchange wait — a
	// representative (SPMD-symmetric) communication share of the run's
	// wall clock, not a cross-rank sum (ranks exchange concurrently).
	ExchangeTime time.Duration
	Norm         float64
}

// simulate spawns nRanks device ranks, runs exec on each shard, and
// gathers probabilities plus communication counters at root.
func simulate(numQubits, nRanks, workersPerRank int, exec func(*DistState) error) (*Result, error) {
	res := &Result{}
	err := mpi.Run(nRanks, func(c *mpi.Comm) error {
		d, err := NewDist(c, numQubits, workersPerRank)
		if err != nil {
			return err
		}
		if err := exec(d); err != nil {
			return err
		}
		norm := d.Norm()
		probs := d.Probabilities()
		ex := c.Reduce(0, float64(d.Exchanges()), mpi.OpSum)
		by := c.Reduce(0, float64(d.BytesSent()), mpi.OpSum)
		av := c.Reduce(0, float64(d.AvoidedExchanges()), mpi.OpSum)
		if c.Rank() == 0 {
			res.Probabilities = probs
			res.Norm = norm
			res.Exchanges = int(ex)
			res.BytesSent = int64(by)
			res.AvoidedExchanges = int(av)
			res.ExchangeTime = d.ExchangeTime()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SimulateKernel runs the kernel gate-by-gate on nRanks simulated
// devices and returns the gathered result. It wraps mpi.Run, so it is
// a single-call entry point; the 'nvidia-mgpu' backend target routes
// through SimulateCompiled, which executes a compiled TilePlan when
// one exists and falls back to this per-gate path otherwise.
func SimulateKernel(k *kernel.Kernel, nRanks, workersPerRank int) (*Result, error) {
	return simulate(k.NumQubits, nRanks, workersPerRank, func(d *DistState) error {
		return d.ExecuteKernel(k)
	})
}
