package mgpu

import (
	"math"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/observable"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// soupK builds a random kernel exercising rank-bit gates.
func soupK(t *testing.T, n, ops int, seed uint64) *kernel.Kernel {
	t.Helper()
	r := qmath.NewRNG(seed)
	k := &kernel.Kernel{Name: "exp_soup", NumQubits: n}
	for i := 0; i < ops; i++ {
		q := r.Intn(n)
		q2 := (q + 1 + r.Intn(n-1)) % n
		switch r.Intn(6) {
		case 0:
			k.Instrs = append(k.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.H, Qubits: []int{q}})
		case 1:
			k.Instrs = append(k.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.RY, Qubits: []int{q}, Params: []float64{r.Angle()}})
		case 2:
			k.Instrs = append(k.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.RZ, Qubits: []int{q}, Params: []float64{r.Angle()}})
		case 3:
			k.Instrs = append(k.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.CX, Qubits: []int{q, q2}})
		case 4:
			k.Instrs = append(k.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.CP, Qubits: []int{q, q2}, Params: []float64{r.Angle()}})
		case 5:
			k.Instrs = append(k.Instrs, kernel.Instr{Kind: kernel.KGate, Gate: gate.SWAP, Qubits: []int{q, q2}})
		}
	}
	return k
}

// singleDeviceExpectation executes the same kernel on one process and
// evaluates through the shared canonical evaluator.
func singleDeviceExpectation(t *testing.T, k *kernel.Kernel, h *observable.Hamiltonian) float64 {
	t.Helper()
	s := statevec.MustNew(k.NumQubits, 1)
	if err := kernel.Execute(k, s); err != nil {
		t.Fatal(err)
	}
	v, err := h.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestExpectationMatchesSingleDevice sweeps rank counts × per-gate/
// planned execution: every distributed value must be bit-identical to
// the single-process evaluation, with terms landing on every
// global/local mask split (Z, X, Y factors on rank bits included).
func TestExpectationMatchesSingleDevice(t *testing.T) {
	r := qmath.NewRNG(31337)
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(6) // 4..9
		k := soupK(t, n, 30+r.Intn(40), r.Uint64())
		h := &observable.Hamiltonian{NumQubits: n}
		// Deliberately include rank-bit factors: terms on the top qubits.
		h.Add(observable.NewTerm(1.25, map[int]observable.Pauli{n - 1: observable.X}))
		h.Add(observable.NewTerm(-0.5, map[int]observable.Pauli{n - 1: observable.Z}))
		h.Add(observable.NewTerm(0.75, map[int]observable.Pauli{n - 1: observable.Y, 0: observable.Z}))
		h.Add(observable.NewTerm(-2, map[int]observable.Pauli{n - 1: observable.Z, n - 2: observable.Z}))
		h.Add(observable.NewTerm(0.3, map[int]observable.Pauli{n - 1: observable.X, n - 2: observable.Y}))
		for ti := 0; ti < 3; ti++ {
			ops := make(map[int]observable.Pauli)
			for kk := 0; kk <= r.Intn(3); kk++ {
				ops[r.Intn(n)] = observable.Pauli(1 + r.Intn(3))
			}
			h.Add(observable.NewTerm(2*r.Float64()-1, ops))
		}

		want := singleDeviceExpectation(t, k, h)
		for _, ranks := range []int{2, 4, 8} {
			if n-int(qmath.Log2Ceil(uint64(ranks))) < 2 {
				continue
			}
			perGate, err := ExpectationKernel(k, h, ranks, 1)
			if err != nil {
				t.Fatalf("ranks=%d per-gate: %v", ranks, err)
			}
			if perGate.Value != want {
				t.Fatalf("trial %d ranks=%d per-gate: %.17g != single-device %.17g", trial, ranks, perGate.Value, want)
			}
			tb := 1 + r.Intn(2)
			plan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: tb, GlobalBits: int(qmath.Log2Ceil(uint64(ranks)))})
			if err != nil {
				t.Fatalf("ranks=%d plan: %v", ranks, err)
			}
			planned, err := ExpectationCompiled(k, plan, h, ranks, 2)
			if err != nil {
				t.Fatalf("ranks=%d planned: %v", ranks, err)
			}
			if planned.Value != want {
				t.Fatalf("trial %d ranks=%d planned(tile=%d): %.17g != single-device %.17g", trial, ranks, tb, planned.Value, want)
			}
			if planned.Terms != len(h.Terms) {
				t.Fatalf("terms %d, want %d", planned.Terms, len(h.Terms))
			}
		}
	}
}

// TestExpectationIdentityAndEmpty covers the degenerate shapes.
func TestExpectationIdentityAndEmpty(t *testing.T) {
	k := soupK(t, 4, 10, 1)
	empty := &observable.Hamiltonian{NumQubits: 4}
	res, err := ExpectationKernel(k, empty, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("empty hamiltonian: %g", res.Value)
	}
	ident := &observable.Hamiltonian{NumQubits: 4}
	ident.Add(observable.NewTerm(2.5, nil))
	res, err = ExpectationKernel(k, ident, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-2.5) > 0 {
		t.Fatalf("identity term: %g", res.Value)
	}
	bad := &observable.Hamiltonian{NumQubits: 4}
	bad.Add(observable.NewTerm(1, map[int]observable.Pauli{9: observable.Z}))
	if _, err := ExpectationKernel(k, bad, 2, 1); err == nil {
		t.Fatal("out-of-range term accepted")
	}
}
