package mgpu

import (
	"fmt"
	"sort"

	"qgear/internal/kernel"
)

// Qubit placement: in the distributed layout, only gates whose
// *target* sits on a global (rank-index) qubit pay a buffer exchange —
// control-on-global gates are free (see applyControlled). Remapping
// circuit qubits so the hottest targets land on local positions is the
// index-bit-swap optimization production multi-GPU simulators
// (cuQuantum) perform; the CommReductionFactor in the cluster model
// abstracts it, and this implementation realizes it so the ablation
// bench can measure actual exchange counts with and without.

// PlanPlacement returns a permutation perm with perm[orig] = new
// position, placing the most exchange-prone qubits of k at low (local)
// positions. localQubits is the per-rank qubit count; it only affects
// reporting, not the permutation's validity.
func PlanPlacement(k *kernel.Kernel) []int {
	weight := make([]float64, k.NumQubits)
	for _, in := range k.Instrs {
		switch in.Kind {
		case kernel.KGate:
			switch len(in.Qubits) {
			case 1:
				weight[in.Qubits[0]]++
			case 2:
				// Target pays the exchange; control is free unless the
				// target is global too, so weight it lightly.
				weight[in.Qubits[1]]++
				weight[in.Qubits[0]] += 0.25
			}
		case kernel.KFused:
			for _, q := range in.Qubits {
				weight[q]++
			}
		}
	}
	order := make([]int, k.NumQubits)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weight[order[a]] > weight[order[b]] })
	perm := make([]int, k.NumQubits)
	for newPos, orig := range order {
		perm[orig] = newPos
	}
	return perm
}

// validatePerm checks perm is a permutation of [0, n).
func validatePerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("mgpu: permutation length %d != %d qubits", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("mgpu: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	return nil
}

// RemapKernel rewrites every qubit operand of k through perm.
func RemapKernel(k *kernel.Kernel, perm []int) (*kernel.Kernel, error) {
	if err := validatePerm(perm, k.NumQubits); err != nil {
		return nil, err
	}
	out := kernel.New(k.Name+"_placed", k.NumQubits)
	out.NumClbits = k.NumClbits
	for _, in := range k.Instrs {
		ni := kernel.Instr{
			Kind: in.Kind, Gate: in.Gate, Clbit: in.Clbit,
			Params: append([]float64(nil), in.Params...),
			Mat:    in.Mat,
		}
		ni.Qubits = make([]int, len(in.Qubits))
		for i, q := range in.Qubits {
			ni.Qubits[i] = perm[q]
		}
		out.Instrs = append(out.Instrs, ni)
	}
	return out, nil
}

// RemapProbabilities maps a probability vector computed in permuted
// qubit space back to the original qubit order: output index j gathers
// the permuted index whose bit perm[q] equals bit q of j.
func RemapProbabilities(probs []float64, perm []int) ([]float64, error) {
	n := len(perm)
	if len(probs) != 1<<uint(n) {
		return nil, fmt.Errorf("mgpu: %d probabilities for %d qubits", len(probs), n)
	}
	if err := validatePerm(perm, n); err != nil {
		return nil, err
	}
	out := make([]float64, len(probs))
	for j := range out {
		var i uint64
		for q := 0; q < n; q++ {
			if uint64(j)>>uint(q)&1 == 1 {
				i |= 1 << uint(perm[q])
			}
		}
		out[j] = probs[i]
	}
	return out, nil
}

// SimulateKernelPlaced runs the kernel with placement optimization:
// plan a permutation, remap, execute distributed, and map the gathered
// probabilities back to original qubit order. The result reports the
// exchange counters of the *placed* run so callers can compare against
// SimulateKernel.
func SimulateKernelPlaced(k *kernel.Kernel, nRanks, workersPerRank int) (*Result, []int, error) {
	perm := PlanPlacement(k)
	placed, err := RemapKernel(k, perm)
	if err != nil {
		return nil, nil, err
	}
	res, err := SimulateKernel(placed, nRanks, workersPerRank)
	if err != nil {
		return nil, nil, err
	}
	if res.Probabilities != nil {
		back, err := RemapProbabilities(res.Probabilities, perm)
		if err != nil {
			return nil, nil, err
		}
		res.Probabilities = back
	}
	return res, perm, nil
}
