package mgpu

import (
	"math"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/kernel"
	"qgear/internal/mpi"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// singleDeviceProbs runs the kernel on one in-memory state as the
// reference.
func singleDeviceProbs(t *testing.T, k *kernel.Kernel) []float64 {
	t.Helper()
	s := statevec.MustNew(k.NumQubits, 1)
	if err := kernel.Execute(k, s); err != nil {
		t.Fatal(err)
	}
	return s.Probabilities()
}

// randomKernel builds a seeded random kernel covering every locality
// case (single/controlled × local/global qubits).
func randomKernel(n, ops int, seed uint64) *kernel.Kernel {
	r := qmath.NewRNG(seed)
	c := circuit.New(n, 0)
	for i := 0; i < ops; i++ {
		q := r.Intn(n)
		q2 := (q + 1 + r.Intn(n-1)) % n
		switch r.Intn(7) {
		case 0:
			c.H(q)
		case 1:
			c.RY(r.Angle(), q)
		case 2:
			c.RZ(r.Angle(), q)
		case 3:
			c.CX(q, q2)
		case 4:
			c.CP(r.Angle(), q, q2)
		case 5:
			c.CRY(r.Angle(), q, q2)
		case 6:
			c.SWAP(q, q2)
		}
	}
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		panic(err)
	}
	return k
}

func probsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestDistributedMatchesSingleDevice(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 8} {
		k := randomKernel(7, 120, uint64(ranks)*31)
		want := singleDeviceProbs(t, k)
		res, err := SimulateKernel(k, ranks, 1)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !probsClose(res.Probabilities, want, 1e-10) {
			t.Fatalf("ranks=%d: distributed probabilities differ", ranks)
		}
		if math.Abs(res.Norm-1) > 1e-10 {
			t.Fatalf("ranks=%d: norm %g", ranks, res.Norm)
		}
	}
}

func TestGHZAcrossDevices(t *testing.T) {
	// GHZ entangles across the device boundary: the cx fan-out from
	// qubit 0 hits every global qubit.
	n := 6
	k := kernel.New("ghz", n).H(0)
	for i := 1; i < n; i++ {
		k.XCtrl(0, i)
	}
	res, err := SimulateKernel(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probabilities
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[len(p)-1]-0.5) > 1e-12 {
		t.Fatalf("GHZ probs wrong: p0=%g pN=%g", p[0], p[len(p)-1])
	}
	for i := 1; i < len(p)-1; i++ {
		if p[i] > 1e-12 {
			t.Fatalf("unexpected probability mass at %d", i)
		}
	}
	if res.Exchanges == 0 {
		t.Fatal("entangling across ranks must exchange buffers")
	}
}

func TestLocalityCasesExplicitly(t *testing.T) {
	// n=4, ranks=4 => local=2; qubits 0,1 local, 2,3 global.
	run := func(build func(c *circuit.Circuit)) (*Result, []float64) {
		c := circuit.New(4, 0)
		// Spread amplitude everywhere first so controlled updates act
		// on non-trivial data.
		for q := 0; q < 4; q++ {
			c.H(q)
		}
		c.RY(0.3, 0).RY(0.7, 2)
		build(c)
		k, _, err := kernel.FromCircuit(c, kernel.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateKernel(k, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res, singleDeviceProbs(t, k)
	}

	cases := map[string]func(c *circuit.Circuit){
		"local-local":       func(c *circuit.Circuit) { c.CX(0, 1).CP(0.5, 1, 0) },
		"global-ctl-local":  func(c *circuit.Circuit) { c.CX(3, 1).CRY(0.8, 2, 0) },
		"local-ctl-global":  func(c *circuit.Circuit) { c.CX(0, 3).CP(1.1, 1, 2) },
		"global-global":     func(c *circuit.Circuit) { c.CX(2, 3).CP(0.4, 3, 2) },
		"single-global":     func(c *circuit.Circuit) { c.RY(1.2, 3).H(2) },
		"swap-cross-border": func(c *circuit.Circuit) { c.SWAP(1, 3) },
	}
	for name, build := range cases {
		res, want := run(build)
		if !probsClose(res.Probabilities, want, 1e-10) {
			t.Errorf("%s: distributed result differs", name)
		}
	}
}

func TestControlGlobalTargetLocalNeedsNoComm(t *testing.T) {
	// The control-on-rank-bit case must be communication-free.
	c := circuit.New(4, 0)
	c.H(3)           // put amplitude into the |c=1> half (global qubit)
	c.CX(3, 0)       // control global, target local
	c.CRY(0.5, 2, 1) // control global, target local
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateKernel(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only the initial H on the global qubit exchanges (4 ranks × 1).
	if res.Exchanges != 4 {
		t.Fatalf("exchanges = %d, want 4 (controlled ops should be free)", res.Exchanges)
	}
}

func TestExchangeAccounting(t *testing.T) {
	// One single-qubit gate on a global qubit = one exchange per rank.
	k := kernel.New("x", 4).Ry(0.5, 3)
	res, err := SimulateKernel(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchanges != 4 {
		t.Fatalf("exchanges = %d, want 4", res.Exchanges)
	}
	// local = 2 qubits => 4 amplitudes × 16 bytes per rank.
	if res.BytesSent != 4*4*16 {
		t.Fatalf("bytes = %d, want %d", res.BytesSent, 4*4*16)
	}
	// Local gates are free.
	k2 := kernel.New("loc", 4).Ry(0.5, 0).XCtrl(0, 1)
	res2, err := SimulateKernel(k2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Exchanges != 0 {
		t.Fatalf("local gates exchanged %d times", res2.Exchanges)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	k := kernel.New("k", 3).H(0)
	if _, err := SimulateKernel(k, 3, 1); err == nil {
		t.Fatal("non-power-of-two world accepted")
	}
	if _, err := SimulateKernel(k, 8, 1); err == nil {
		t.Fatal("world leaving 0 local qubits accepted")
	}
	// 4 ranks on 3 qubits => local = 1, allowed.
	if _, err := SimulateKernel(k, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestKernelSizeMismatch(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		d, err := NewDist(c, 4, 1)
		if err != nil {
			return err
		}
		k := kernel.New("wrong", 3).H(0)
		if err := d.ExecuteKernel(k); err == nil {
			t.Error("kernel size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFusedRefusesGlobalQubits(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) error {
		d, err := NewDist(c, 4, 1)
		if err != nil {
			return err
		}
		// Fused on local qubits 0,1 works.
		id := make([]complex128, 16)
		for i := 0; i < 4; i++ {
			id[i*4+i] = 1
		}
		if err := d.ApplyFused([]int{0, 1}, id); err != nil {
			t.Errorf("local fused rejected: %v", err)
		}
		// Fused touching global qubit 3 must refuse.
		if err := d.ApplyFused([]int{0, 3}, id); err == nil {
			t.Error("global fused accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFusedKernelDistributed(t *testing.T) {
	// Kernels fused on local qubits only still match the reference.
	c := circuit.New(6, 0)
	r := qmath.NewRNG(9)
	for i := 0; i < 40; i++ {
		q := r.Intn(3) // only local qubits (ranks=4 -> local=4... use 0..2)
		q2 := (q + 1) % 3
		switch r.Intn(3) {
		case 0:
			c.H(q)
		case 1:
			c.RY(r.Angle(), q)
		case 2:
			c.CX(q, q2)
		}
	}
	c.H(5).CX(5, 0) // some global action, kept unfused via FusionLocalQubits
	k, st, err := kernel.FromCircuit(c, kernel.Options{FusionWindow: 3, FusionLocalQubits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.FusedGroups == 0 {
		t.Fatal("expected fusion")
	}
	want := singleDeviceProbs(t, k)
	res, err := SimulateKernel(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !probsClose(res.Probabilities, want, 1e-10) {
		t.Fatal("fused distributed run differs")
	}
}

func TestNormPreservedAcrossRandomDistributedRuns(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		k := randomKernel(6, 80, seed)
		res, err := SimulateKernel(k, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Norm-1) > 1e-9 {
			t.Fatalf("seed %d: norm %g", seed, res.Norm)
		}
		var sum float64
		for _, p := range res.Probabilities {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("seed %d: probability sum %g", seed, sum)
		}
	}
}

func TestMoreWorkersPerRank(t *testing.T) {
	k := randomKernel(8, 60, 404)
	want := singleDeviceProbs(t, k)
	res, err := SimulateKernel(k, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !probsClose(res.Probabilities, want, 1e-10) {
		t.Fatal("multi-worker ranks differ")
	}
}
