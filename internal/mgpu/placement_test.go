package mgpu

import (
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/kernel"
	"qgear/internal/qmath"
)

// hotHighQubitsKernel builds a kernel whose gates hammer the top
// qubits — the worst case for the naive layout (top bits are the
// global/rank bits).
func hotHighQubitsKernel(t *testing.T, n, gates int) *kernel.Kernel {
	t.Helper()
	r := qmath.NewRNG(8)
	c := circuit.New(n, 0)
	for i := 0; i < gates; i++ {
		hi := n - 1 - r.Intn(2) // qubits n-1, n-2
		lo := r.Intn(2)         // qubits 0, 1
		switch r.Intn(3) {
		case 0:
			c.RY(r.Angle(), hi)
		case 1:
			c.CX(lo, hi)
		case 2:
			c.H(hi)
		}
	}
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPlacementReducesExchanges(t *testing.T) {
	k := hotHighQubitsKernel(t, 8, 120)
	naive, err := SimulateKernel(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	placed, _, err := SimulateKernelPlaced(k, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Exchanges == 0 {
		t.Fatal("workload should exchange under the naive layout")
	}
	if placed.Exchanges != 0 {
		t.Fatalf("placement left %d exchanges on a 2-hot-qubit workload (naive: %d)",
			placed.Exchanges, naive.Exchanges)
	}
}

func TestPlacementPreservesResults(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		k := randomKernel(7, 100, seed)
		naive, err := SimulateKernel(k, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		placed, perm, err := SimulateKernelPlaced(k, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := validatePerm(perm, 7); err != nil {
			t.Fatal(err)
		}
		if !probsClose(naive.Probabilities, placed.Probabilities, 1e-10) {
			t.Fatalf("seed %d: placement changed the distribution", seed)
		}
		// On uniformly random circuits the greedy heuristic has no
		// skew to exploit, so exchange counts may move either way;
		// only correctness is asserted here. The guaranteed win on
		// skewed workloads is TestPlacementReducesExchanges.
		t.Logf("seed %d: exchanges naive=%d placed=%d", seed, naive.Exchanges, placed.Exchanges)
	}
}

func TestRemapKernelValidation(t *testing.T) {
	k := kernel.New("k", 3).H(0)
	if _, err := RemapKernel(k, []int{0, 1}); err == nil {
		t.Fatal("short perm accepted")
	}
	if _, err := RemapKernel(k, []int{0, 0, 1}); err == nil {
		t.Fatal("duplicate perm accepted")
	}
	if _, err := RemapKernel(k, []int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range perm accepted")
	}
}

func TestRemapProbabilitiesRoundTrip(t *testing.T) {
	// Remapping with a permutation and its inverse is the identity.
	r := qmath.NewRNG(3)
	n := 4
	probs := make([]float64, 1<<uint(n))
	for i := range probs {
		probs[i] = r.Float64()
	}
	perm := r.Perm(n)
	mapped, err := RemapProbabilities(probs, perm)
	if err != nil {
		t.Fatal(err)
	}
	inv := make([]int, n)
	for orig, p := range perm {
		inv[p] = orig
	}
	back, err := RemapProbabilities(mapped, inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probs {
		if probs[i] != back[i] {
			t.Fatalf("round trip broke at %d", i)
		}
	}
	if _, err := RemapProbabilities(probs[:3], perm); err == nil {
		t.Fatal("wrong-size probs accepted")
	}
}

func TestPlanPlacementPrefersHotTargets(t *testing.T) {
	// Qubit 5 is the target of every gate; it must land at position 0.
	c := circuit.New(6, 0)
	for i := 0; i < 10; i++ {
		c.CX(0, 5).RY(0.1, 5)
	}
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := PlanPlacement(k)
	if perm[5] != 0 {
		t.Fatalf("hot target mapped to %d, want 0 (perm %v)", perm[5], perm)
	}
}
