package mgpu

import (
	"fmt"
	"math/bits"
	"time"

	"qgear/internal/cancel"
	"qgear/internal/kernel"
	"qgear/internal/mpi"
	"qgear/internal/observable"
	"qgear/internal/statevec"
)

// Distributed observable estimation: every rank executes the compiled
// plan (or the per-gate kernel) on its shard, then evaluates each
// Pauli term against the *resident* shard amplitudes — no probability
// gather, no permutation materialization. The canonical reduction of
// statevec's expectation contract makes rank partials exact subtrees
// of the single-device reduction, so the gathered value is
// bit-identical to the local engines (for up to 2^4 ranks, the
// reserve the chunk width guarantees).
//
// Rank-index bits of a term resolve per rank with zero communication:
// a Z factor on a rank bit is a constant sign, a pure-rank-bit Z
// string selects which ranks sit in the odd-parity subspace at all.
// Only X/Y factors on rank bits move data — one pairwise buffer
// exchange per such term (partner = rank XOR the term's global flip
// mask), after which each rank holds both members of every amplitude
// pair it owns. Per-term rank partials are gathered once at root:
// rank-local partial sums plus a single reduction.

// ExpResult is what ExpectationKernel/ExpectationCompiled return at
// root.
type ExpResult struct {
	Value float64
	Terms int
	// Communication counters, summed over ranks (plan execution plus
	// the expectation exchanges for rank-bit X/Y factors).
	Exchanges        int
	BytesSent        int64
	AvoidedExchanges int
	// ExchangeTime is the root rank's cumulative exchange wait (plan
	// execution plus expectation-term exchanges), wall-clock
	// representative rather than a cross-rank sum.
	ExchangeTime time.Duration
}

// termSpec is one term's SPMD-identical classification: every rank
// (and the root combiner) derives scheduling from the same masks.
type termSpec struct {
	coef     float64
	xm       uint64
	ym       uint64
	zm       uint64
	flip     uint64
	pivot    int // absolute qubit position of the pairing/parity pivot
	identity bool
}

// buildTermSpecs validates the Hamiltonian against the register and
// precomputes each term's masks and pivot, before any rank spawns.
func buildTermSpecs(h *observable.Hamiltonian, n int) ([]termSpec, error) {
	if h == nil {
		return nil, fmt.Errorf("mgpu: nil hamiltonian")
	}
	specs := make([]termSpec, len(h.Terms))
	for i, t := range h.Terms {
		xm, ym, zm, err := t.Masks(n)
		if err != nil {
			return nil, fmt.Errorf("mgpu: term %d: %w", i, err)
		}
		sp := termSpec{coef: t.Coef, xm: xm, ym: ym, zm: zm, flip: xm | ym}
		switch {
		case sp.flip != 0:
			sp.pivot = bits.TrailingZeros64(sp.flip)
		case zm != 0:
			sp.pivot = bits.TrailingZeros64(zm)
		default:
			sp.identity = true
		}
		specs[i] = sp
	}
	return specs, nil
}

// expTermPartial computes this rank's tree-reduced partial for one
// term. Ranks that own no slice of the term's enumeration still take
// part in its pairwise exchange (their partner needs the buffer) and
// return 0.
func (d *DistState) expTermPartial(ev *statevec.PauliEvaluator, sp termSpec) float64 {
	if sp.identity {
		return 0 // folded in at root as coef·1
	}
	lmask := uint64(1)<<uint(d.local) - 1
	rank := uint64(d.comm.Rank())
	args := statevec.PauliShardArgs{
		XMask:     sp.xm & lmask,
		YMask:     sp.ym & lmask,
		ZMask:     sp.zm & lmask,
		ChunkBits: statevec.ExpChunkBits(d.n),
	}
	if sp.flip != 0 {
		args.Flip = true
		ph := statevec.IPow(bits.OnesCount64(sp.ym))
		if bits.OnesCount64(rank&((sp.ym|sp.zm)>>uint(d.local)))&1 == 1 {
			ph = -ph
		}
		args.Phase0 = ph
		if sp.pivot < d.local {
			args.Pivot = sp.pivot
		} else {
			args.Pivot = -1
		}
		if gflip := sp.flip >> uint(d.local); gflip != 0 {
			// One exchange serves every pair of this term; both sides of
			// a pivot pair must call it even if only one side sums.
			args.Partner = d.exchangeRaw(d.comm.Rank() ^ int(gflip))
		}
		if args.Pivot < 0 && d.rankBit(sp.pivot) == 1 {
			return 0 // the pivot-0 partner owns these pairs
		}
		v, _ := ev.Shard(args)
		return v
	}
	// Pure-Z term: rank bits contribute parity, never data movement.
	gz := sp.zm >> uint(d.local)
	if sp.pivot < d.local {
		args.Pivot = sp.pivot
		args.ParityBase = bits.OnesCount64(rank&gz) & 1
	} else {
		// The Z string lives entirely on rank bits: this shard is wholly
		// inside or wholly outside the odd-parity subspace.
		if bits.OnesCount64(rank&gz)&1 == 0 {
			return 0
		}
		args.Pivot = -1
	}
	v, _ := ev.Shard(args)
	return v
}

// rankParticipates reports whether rank r owns a block of the term's
// canonical enumeration — the root-side mirror of expTermPartial's
// scheduling, used to assemble block partials in compact-index order.
func rankParticipates(sp termSpec, r, local int) bool {
	if sp.identity {
		return false
	}
	if sp.pivot < local {
		return true
	}
	if sp.flip != 0 {
		return r>>uint(sp.pivot-local)&1 == 0
	}
	return bits.OnesCount64(uint64(r)&(sp.zm>>uint(local)))&1 == 1
}

// combineExpectation finishes the reduction at root: for each term,
// tree-reduce the participating ranks' block partials (ascending rank
// order is ascending compact order — see the participation analysis
// above), convert odd-parity mass to 1 − 2·S for pure-Z strings, and
// accumulate coefficient-weighted values in term order — the exact
// expression sequence the single-device evaluator runs.
func combineExpectation(specs []termSpec, all []float64, ranks, local int) float64 {
	nTerms := len(specs)
	blocks := make([]float64, 0, ranks)
	var total float64
	for ti, sp := range specs {
		if sp.identity {
			total += sp.coef * 1
			continue
		}
		blocks = blocks[:0]
		for r := 0; r < ranks; r++ {
			if rankParticipates(sp, r, local) {
				blocks = append(blocks, all[r*nTerms+ti])
			}
		}
		s := statevec.TreeSum(blocks)
		if sp.flip == 0 {
			total += sp.coef * (1 - 2*s)
		} else {
			total += sp.coef * s
		}
	}
	return total
}

// ExpectationCompiled executes the compiled plan (or, when plan is
// nil, the per-gate kernel) on nRanks simulated devices and evaluates
// ⟨H⟩ against the resident shards: rank-local partial sums, one
// gather, bit-identical to the single-device engines for up to
// 2^4 = 16 ranks (the reserve statevec.ExpChunkBits bakes into the
// canonical chunk width). Beyond 16 ranks the value is still exact to
// normal floating-point accuracy, but shard blocks may be smaller
// than one canonical chunk, so the reduction tree — and therefore the
// last ulp — can differ from the single-device engines.
func ExpectationCompiled(k *kernel.Kernel, plan *kernel.TilePlan, h *observable.Hamiltonian, nRanks, workersPerRank int) (*ExpResult, error) {
	return ExpectationCompiledCancel(k, plan, h, nRanks, workersPerRank, nil)
}

// ExpectationCompiledCancel is ExpectationCompiled with a cooperative
// cancellation flag: polled collectively during plan/kernel execution
// and once per Pauli term of the reduction (terms with rank-bit X/Y
// factors pay a pairwise exchange, so the per-term poll uses the same
// all-ranks-agree discipline).
func ExpectationCompiledCancel(k *kernel.Kernel, plan *kernel.TilePlan, h *observable.Hamiltonian, nRanks, workersPerRank int, flag *cancel.Flag) (*ExpResult, error) {
	specs, err := buildTermSpecs(h, k.NumQubits)
	if err != nil {
		return nil, err
	}
	res := &ExpResult{Terms: len(specs)}
	err = mpi.Run(nRanks, func(c *mpi.Comm) error {
		d, err := NewDist(c, k.NumQubits, workersPerRank)
		if err != nil {
			return err
		}
		if plan != nil {
			err = d.ExecutePlanCancel(plan, flag)
		} else {
			err = d.ExecuteKernelCancel(k, flag)
		}
		if err != nil {
			return err
		}
		// One evaluator per rank: the shard layout (including a pending
		// plan permutation) is frozen for the whole term sweep.
		ev := d.st.PauliEvaluator()
		partials := make([]float64, len(specs))
		for ti, sp := range specs {
			if err := d.pollCancel(flag); err != nil {
				return fmt.Errorf("mgpu: expectation term %d: %w", ti, err)
			}
			partials[ti] = d.expTermPartial(ev, sp)
		}
		all := c.GatherFloat64s(0, partials)
		ex := c.Reduce(0, float64(d.Exchanges()), mpi.OpSum)
		by := c.Reduce(0, float64(d.BytesSent()), mpi.OpSum)
		av := c.Reduce(0, float64(d.AvoidedExchanges()), mpi.OpSum)
		if c.Rank() == 0 {
			res.Value = combineExpectation(specs, all, c.Size(), d.local)
			res.Exchanges = int(ex)
			res.BytesSent = int64(by)
			res.AvoidedExchanges = int(av)
			res.ExchangeTime = d.ExchangeTime()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ExpectationKernel is ExpectationCompiled on the per-gate path.
func ExpectationKernel(k *kernel.Kernel, h *observable.Hamiltonian, nRanks, workersPerRank int) (*ExpResult, error) {
	return ExpectationCompiled(k, nil, h, nRanks, workersPerRank)
}
