package mgpu

import (
	"math"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
)

// The planned-mgpu equivalence suite: distributed execution of a
// compiled TilePlan must be bit-identical (amplitudes within 1e-12,
// fixed-seed shot counts exactly equal) to both the per-gate
// DistState path and the single-process statevec engine, across rank
// counts × global-qubit counts × fusion settings. This is the
// acceptance gate for promoting TilePlan to the shared execution IR.

// soupPool covers every gate the engines execute, including the
// diagonal family (rank-local when global), SWAP (permutation table
// locally, three-CX across the boundary), and parameterized rotations.
var soupPool = []struct {
	g      gate.Type
	params int
}{
	{gate.H, 0}, {gate.X, 0}, {gate.Y, 0}, {gate.Z, 0},
	{gate.S, 0}, {gate.Sdg, 0}, {gate.T, 0}, {gate.Tdg, 0},
	{gate.RX, 1}, {gate.RY, 1}, {gate.RZ, 1}, {gate.P, 1}, {gate.U3, 3},
	{gate.CX, 0}, {gate.CZ, 0}, {gate.CP, 1}, {gate.CRY, 1}, {gate.SWAP, 0},
}

// gateSoup builds a random circuit over n qubits from the full pool.
func gateSoup(n, gates int, rng *qmath.RNG) *circuit.Circuit {
	c := circuit.New(n, 0)
	c.Name = "soup"
	for i := 0; i < gates; i++ {
		sg := soupPool[rng.Intn(len(soupPool))]
		params := make([]float64, sg.params)
		for j := range params {
			params[j] = rng.Angle() - math.Pi
		}
		q0 := rng.Intn(n)
		if sg.g.Arity() == 2 {
			q1 := rng.Intn(n - 1)
			if q1 >= q0 {
				q1++
			}
			c.Append(sg.g, []int{q0, q1}, params)
		} else {
			c.Append(sg.g, []int{q0}, params)
		}
	}
	return c
}

func log2ranks(r int) int {
	g := 0
	for 1<<uint(g) < r {
		g++
	}
	return g
}

func maxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func sameCounts(a, b sampling.Counts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestPlannedGateSoupEquivalence(t *testing.T) {
	const shots = 2048
	seed := uint64(0xd15712b)
	for _, tc := range []struct {
		n, ranks, tileBits, window int
		fuseRuns                   bool
	}{
		{6, 2, 3, 0, false},  // 1 rank bit
		{6, 4, 2, 0, false},  // 2 rank bits, 4-amp tiles
		{6, 8, 2, 0, false},  // 3 rank bits, shard of 3 qubits
		{8, 4, 3, 0, false},  // roomier shard
		{8, 4, 3, 0, true},   // within-run fusion on
		{9, 8, 3, 0, false},  // deep rank boundary
		{9, 8, 3, 0, true},   //   ... with fusion
		{8, 4, 3, 3, false},  // transform-level fused blocks in the stream
		{8, 4, 3, 3, true},   // both fusion layers at once
		{10, 2, 4, 4, false}, // wide fused blocks, single rank bit
	} {
		rng := qmath.NewRNG(seed + uint64(tc.n*1000+tc.ranks*100+tc.tileBits*10+tc.window))
		c := gateSoup(tc.n, 140, rng)
		gbits := log2ranks(tc.ranks)
		local := tc.n - gbits
		kopts := kernel.Options{}
		if tc.window > 0 {
			kopts = kernel.Options{FusionWindow: tc.window, FusionLocalQubits: local}
		}
		k, _, err := kernel.FromCircuit(c, kopts)
		if err != nil {
			t.Fatalf("n=%d: transform: %v", tc.n, err)
		}

		// Single-process reference.
		ref := statevec.MustNew(tc.n, 1)
		if err := kernel.Execute(k, ref); err != nil {
			t.Fatal(err)
		}
		refProbs := ref.Probabilities()

		legacy, err := SimulateKernel(k, tc.ranks, 1)
		if err != nil {
			t.Fatalf("ranks=%d: per-gate: %v", tc.ranks, err)
		}
		plan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: tc.tileBits, GlobalBits: gbits, FuseRuns: tc.fuseRuns})
		if err != nil {
			t.Fatalf("ranks=%d: plan: %v", tc.ranks, err)
		}
		planned, err := SimulateCompiled(k, plan, tc.ranks, 1)
		if err != nil {
			t.Fatalf("ranks=%d: planned: %v", tc.ranks, err)
		}

		if d := maxDiff(planned.Probabilities, legacy.Probabilities); d > 1e-12 {
			t.Errorf("n=%d ranks=%d tile=%d window=%d fuse=%v: planned vs per-gate diff %g > 1e-12",
				tc.n, tc.ranks, tc.tileBits, tc.window, tc.fuseRuns, d)
		} else if !tc.fuseRuns && d != 0 {
			// Without run fusion the plan performs the per-gate
			// arithmetic exactly; any nonzero drift is a compiler bug.
			t.Errorf("n=%d ranks=%d tile=%d window=%d: planned vs per-gate diff %g, want exact 0",
				tc.n, tc.ranks, tc.tileBits, tc.window, d)
		}
		if d := maxDiff(planned.Probabilities, refProbs); d > 1e-12 {
			t.Errorf("n=%d ranks=%d tile=%d: planned vs single-process diff %g > 1e-12", tc.n, tc.ranks, tc.tileBits, d)
		}
		if math.Abs(planned.Norm-1) > 1e-9 {
			t.Errorf("n=%d ranks=%d: planned norm %g", tc.n, tc.ranks, planned.Norm)
		}
		if planned.Exchanges > legacy.Exchanges {
			t.Errorf("n=%d ranks=%d: planned exchanges %d exceed per-gate %d",
				tc.n, tc.ranks, planned.Exchanges, legacy.Exchanges)
		}

		// Exact fixed-seed shot counts from both distributions.
		cLegacy, err := sampling.Sample(legacy.Probabilities, shots, qmath.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		cPlanned, err := sampling.Sample(planned.Probabilities, shots, qmath.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !sameCounts(cLegacy, cPlanned) {
			t.Errorf("n=%d ranks=%d fuse=%v: fixed-seed shot counts differ between planned and per-gate",
				tc.n, tc.ranks, tc.fuseRuns)
		}
	}
}

// TestPlannedExchangeBatching pins the headline distributed win: a
// QCrank-shaped Ry/CX ladder whose data qubit sits on a rank bit
// compiles into one exchange segment — one buffer exchange per rank
// for the whole ladder — where the per-gate path exchanges per gate.
func TestPlannedExchangeBatching(t *testing.T) {
	const n, ranks, ladder = 6, 4, 16
	data := n - 1 // top qubit: a rank bit at 4 ranks
	c := circuit.New(n, 0)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	rng := qmath.NewRNG(11)
	for i := 0; i < ladder; i++ {
		c.RY(rng.Angle(), data)
		c.CX(i%4, data)
	}
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: 2, GlobalBits: log2ranks(ranks)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.ExchangeSegs != 1 {
		t.Errorf("ExchangeSegs = %d, want 1 (whole ladder batched)", plan.Stats.ExchangeSegs)
	}
	if plan.Stats.ExchangeGates != 2*ladder {
		t.Errorf("ExchangeGates = %d, want %d", plan.Stats.ExchangeGates, 2*ladder)
	}

	legacy, err := SimulateKernel(k, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := SimulateCompiled(k, plan, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(planned.Probabilities, legacy.Probabilities); d != 0 {
		t.Errorf("ladder planned vs per-gate diff %g, want exact 0", d)
	}
	// One exchange per rank for the segment vs one per rank per gate.
	if planned.Exchanges != ranks {
		t.Errorf("planned exchanges = %d, want %d", planned.Exchanges, ranks)
	}
	if legacy.Exchanges != ranks*2*ladder {
		t.Errorf("per-gate exchanges = %d, want %d", legacy.Exchanges, ranks*2*ladder)
	}
	if want := ranks * (2*ladder - 1); planned.AvoidedExchanges != want {
		t.Errorf("planned avoided exchanges = %d, want %d", planned.AvoidedExchanges, want)
	}
}

// TestDiagonalRankLocalNoExchange pins the per-gate quick win:
// diagonal/phase gates whose operands sit on rank bits resolve locally
// — zero exchanges — and are counted as avoided.
func TestDiagonalRankLocalNoExchange(t *testing.T) {
	const n, ranks = 6, 4
	c := circuit.New(n, 0)
	for q := 0; q < n; q++ {
		c.H(q) // the two global H's pay 2 exchanges per rank
	}
	c.RZ(0.3, n-1)        // rank-bit rz: avoided
	c.Z(n - 2)            // rank-bit z: avoided
	c.CP(0.7, 0, n-1)     // local ctrl, rank-bit target: avoided
	c.CZ(n-1, n-2)        // both rank bits: avoided on |c=1> ranks
	c.CP(0.9, n-1, 1)     // rank-bit ctrl, local target: free either way
	c.S(n - 1).T(n - 2)   // more rank-bit phases: avoided
	c.RZ(0.2, 0).CZ(0, 1) // local diagonals: free either way
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateKernel(k, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only the H gates on the two rank-bit qubits exchange.
	if want := 2 * ranks; res.Exchanges != want {
		t.Errorf("exchanges = %d, want %d (diagonals must be rank-local)", res.Exchanges, want)
	}
	// rz, z, cp(t=global), s, t: one avoided per rank each = 5·ranks;
	// cz(both global) avoided on the two |c=1> ranks only.
	if want := 5*ranks + ranks/2; res.AvoidedExchanges != want {
		t.Errorf("avoided = %d, want %d", res.AvoidedExchanges, want)
	}

	// And the distribution still matches the single-process engine.
	ref := statevec.MustNew(n, 1)
	if err := kernel.Execute(k, ref); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(res.Probabilities, ref.Probabilities()); d > 1e-12 {
		t.Errorf("rank-local diagonals drifted: %g", d)
	}
}

// TestPlannedCrossBoundarySwap checks the SWAP decomposition: a SWAP
// with one rank-bit operand must move real data (three CX through the
// exchange machinery) and still match the per-gate path exactly.
func TestPlannedCrossBoundarySwap(t *testing.T) {
	const n, ranks = 6, 4
	rng := qmath.NewRNG(23)
	c := gateSoup(n, 30, rng)
	c.SWAP(0, n-1) // crosses the boundary
	c.SWAP(1, 2)   // stays local: free table update
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: 2, GlobalBits: log2ranks(ranks)})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := SimulateKernel(k, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := SimulateCompiled(k, plan, ranks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(planned.Probabilities, legacy.Probabilities); d != 0 {
		t.Errorf("cross-boundary swap diff %g, want exact 0", d)
	}
}

// TestExecutePlanGeometryChecks ensures a plan compiled for one rank
// geometry cannot run on another.
func TestExecutePlanGeometryChecks(t *testing.T) {
	k := kernel.New("k", 6).H(0).H(5)
	plan, err := kernel.Plan(k, kernel.PlanConfig{TileBits: 2, GlobalBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Executing a 2-rank plan on a 4-rank world must fail on every rank.
	_, err = SimulateCompiled(k, plan, 4, 1)
	if err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
