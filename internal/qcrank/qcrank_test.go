package qcrank

import (
	"math"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
)

// simulate runs the encoding circuit and returns the probability
// vector.
func simulate(t *testing.T, values []float64, plan Plan) []float64 {
	t.Helper()
	c, err := Encode(values, plan, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := statevec.MustNew(plan.TotalQubits(), 1)
	for _, op := range c.Ops {
		s.ApplyGate(op.Gate, op.Qubits, op.Params)
	}
	return s.Probabilities()
}

func TestNewPlanTable2Math(t *testing.T) {
	// Finger: 5120 px, 10 address qubits -> 5 data qubits, 3.072M shots.
	plan, err := NewPlan(64*80, 10, DefaultShotsPerAddress)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DataQubits != 5 || plan.Shots != 3000*1024 || plan.PaddedPixels != 5120 {
		t.Fatalf("finger plan %+v", plan)
	}
	if plan.TotalQubits() != 15 { // Fig. 6a: "qubits: 15"
		t.Fatalf("finger qubits %d, want 15", plan.TotalQubits())
	}
	if plan.TwoQubitGates() != 5120 { // Fig. 6a: "n2q gates: 5120"
		t.Fatalf("finger 2q gates %d, want 5120", plan.TwoQubitGates())
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := []Table2Row{
		{"finger", 64, 80, 5120, 10, 5, 3_072_000},
		{"shoes", 128, 128, 16384, 11, 8, 6_144_000},
		{"building", 192, 128, 24576, 12, 6, 12_288_000},
		{"zebra", 384, 256, 98304, 13, 12, 24_576_000},
		{"zebra", 384, 256, 98304, 14, 6, 49_152_000},
		{"zebra", 384, 256, 98304, 15, 3, 98_304_000},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d:\ngot  %+v\nwant %+v", i, rows[i], w)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 4, 0); err == nil {
		t.Fatal("0 pixels accepted")
	}
	if _, err := NewPlan(16, 0, 0); err == nil {
		t.Fatal("0 address qubits accepted")
	}
	if _, err := NewPlan(16, 4, -1); err == nil {
		t.Fatal("negative shots accepted")
	}
}

func TestEncodeStructure(t *testing.T) {
	plan, err := NewPlan(16, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 16 px over 4 addresses -> 4 data qubits, padded 16.
	vals := make([]float64, 16)
	c, err := Encode(vals, plan, true)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.GateCounts()
	if counts[gate.H] != plan.AddrQubits {
		t.Fatalf("H count %d", counts[gate.H])
	}
	// One CX per padded pixel — the QCrank invariant.
	if counts[gate.CX] != plan.TwoQubitGates() {
		t.Fatalf("CX count %d, want %d", counts[gate.CX], plan.TwoQubitGates())
	}
	if counts[gate.RY] != plan.PaddedPixels {
		t.Fatalf("RY count %d", counts[gate.RY])
	}
	if counts[gate.Measure] != plan.TotalQubits() {
		t.Fatalf("measure count %d", counts[gate.Measure])
	}
}

func TestEncodeValidation(t *testing.T) {
	plan, err := NewPlan(4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(make([]float64, 100), plan, false); err == nil {
		t.Fatal("oversized values accepted")
	}
	if _, err := Encode([]float64{2}, plan, false); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := Encode([]float64{math.NaN()}, plan, false); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestExactRoundTrip(t *testing.T) {
	// Encode -> simulate -> DecodeProbs must reproduce the values to
	// numerical precision across several layouts.
	r := qmath.NewRNG(5)
	for _, cfg := range []struct{ addr, pixels int }{
		{1, 2}, {2, 4}, {2, 7}, {3, 16}, {4, 48}, {5, 32},
	} {
		plan, err := NewPlan(cfg.pixels, cfg.addr, 0)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]float64, cfg.pixels)
		for i := range values {
			values[i] = r.Float64()*2 - 1
		}
		probs := simulate(t, values, plan)
		got, err := DecodeProbs(probs, plan)
		if err != nil {
			t.Fatal(err)
		}
		for i := range values {
			if math.Abs(got[i]-values[i]) > 1e-9 {
				t.Fatalf("addr=%d pixels=%d: pixel %d decoded %g, want %g",
					cfg.addr, cfg.pixels, i, got[i], values[i])
			}
		}
	}
}

func TestExtremeValues(t *testing.T) {
	// v = ±1 and 0 are the boundary angles (0, π, π/2).
	plan, err := NewPlan(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, -1, 0, 0.5}
	probs := simulate(t, values, plan)
	got, err := DecodeProbs(probs, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if math.Abs(got[i]-values[i]) > 1e-9 {
			t.Fatalf("pixel %d: %g != %g", i, got[i], values[i])
		}
	}
}

func TestShotBasedReconstruction(t *testing.T) {
	// With s shots per address the per-pixel std-dev is ~1/√s; check
	// the Fig. 6-style residuals behave accordingly.
	plan, err := NewPlan(24, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	r := qmath.NewRNG(77)
	values := make([]float64, 24)
	for i := range values {
		values[i] = r.Float64()*1.6 - 0.8
	}
	probs := simulate(t, values, plan)
	counts, err := sampling.Sample(probs, plan.Shots, r)
	if err != nil {
		t.Fatal(err)
	}
	got, missing, err := DecodeCounts(counts, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing addresses %v", missing)
	}
	var maxErr float64
	for i := range values {
		if e := math.Abs(got[i] - values[i]); e > maxErr {
			maxErr = e
		}
	}
	// ~1/√4000 ≈ 0.016 per-pixel sigma; 6 sigma bound with headroom.
	if maxErr > 0.1 {
		t.Fatalf("worst shot-reconstruction error %g too large", maxErr)
	}
	// More shots must (statistically) shrink the error.
	plan2 := plan
	plan2.Shots = plan.Shots * 16
	counts2, err := sampling.Sample(probs, plan2.Shots, r)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := DecodeCounts(counts2, plan2)
	if err != nil {
		t.Fatal(err)
	}
	var mae1, mae2 float64
	for i := range values {
		mae1 += math.Abs(got[i] - values[i])
		mae2 += math.Abs(got2[i] - values[i])
	}
	if mae2 >= mae1 {
		t.Fatalf("16x shots did not reduce MAE: %g vs %g", mae2/24, mae1/24)
	}
}

func TestDecodeErrors(t *testing.T) {
	plan, err := NewPlan(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeProbs(make([]float64, 7), plan); err == nil {
		t.Fatal("wrong-size probs accepted")
	}
	if _, _, err := DecodeCounts(sampling.Counts{1 << 40: 3}, plan); err == nil {
		t.Fatal("oversized outcome accepted")
	}
	// Counts missing an address decode to zero with a report.
	counts := sampling.Counts{0: 10} // only address 0 measured
	vals, missing, err := DecodeCounts(counts, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) == 0 {
		t.Fatal("missing addresses unreported")
	}
	if vals[0] != 1 { // address 0, data bit 0 -> all zeros -> E[Z]=1
		t.Fatalf("decoded %v", vals)
	}
}

func TestSingleAddressDegenerateCase(t *testing.T) {
	// addr=1 ⇒ 2 addresses; pixels=1 pads the second address with 0.
	plan, err := NewPlan(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{0.73}
	probs := simulate(t, values, plan)
	got, err := DecodeProbs(probs, plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.73) > 1e-9 {
		t.Fatalf("degenerate decode %g", got[0])
	}
}
