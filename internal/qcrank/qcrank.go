// Package qcrank implements the QCrank quantum image encoding of
// Balewski et al. (the paper's [33]) used in the §3 image benchmark:
// a grayscale image normalized to [-1, 1] is stored in a quantum state
// over k address qubits and n_d data qubits, using one uniformly
// controlled Ry rotation per data qubit. Each uniformly controlled
// rotation decomposes into an alternating ladder of 2^k Ry gates and
// 2^k CX gates whose controls follow the Gray code (Möttönen et al.,
// the paper's [27]) — so the entangling-gate count equals the pixel
// count, the property Fig. 5 keys its cost scaling on.
//
// Readout inverts the encoding from measurement statistics: for
// address a, the data qubit's Z expectation is cos(α_a) = v_a, so
// shot-frequency estimates reconstruct the image (Fig. 6), with
// accuracy set by shots-per-address (Table 2's s·2^m shot budgets).
package qcrank

import (
	"fmt"
	"math"

	"qgear/internal/circuit"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
)

// DefaultShotsPerAddress is the paper's s = 3000 (Table 2).
const DefaultShotsPerAddress = 3000

// Plan fixes the qubit layout and shot budget for one encoding:
// address qubits 0..AddrQubits-1, data qubits AddrQubits..+DataQubits.
type Plan struct {
	AddrQubits   int
	DataQubits   int
	Pixels       int // real pixels (≤ PaddedPixels)
	PaddedPixels int // DataQubits · 2^AddrQubits
	Shots        int // shots-per-address · 2^AddrQubits
}

// NewPlan sizes a plan for the given pixel count and address-qubit
// choice (Table 2 explores several address splits per image).
func NewPlan(pixels, addrQubits, shotsPerAddr int) (Plan, error) {
	if pixels < 1 {
		return Plan{}, fmt.Errorf("qcrank: no pixels")
	}
	if addrQubits < 1 || addrQubits > 30 {
		return Plan{}, fmt.Errorf("qcrank: address qubits %d out of range", addrQubits)
	}
	if shotsPerAddr < 0 {
		return Plan{}, fmt.Errorf("qcrank: negative shots per address")
	}
	if shotsPerAddr == 0 {
		shotsPerAddr = DefaultShotsPerAddress
	}
	addrs := 1 << uint(addrQubits)
	dataQubits := (pixels + addrs - 1) / addrs
	return Plan{
		AddrQubits:   addrQubits,
		DataQubits:   dataQubits,
		Pixels:       pixels,
		PaddedPixels: dataQubits * addrs,
		Shots:        shotsPerAddr * addrs,
	}, nil
}

// TotalQubits returns address + data qubits.
func (p Plan) TotalQubits() int { return p.AddrQubits + p.DataQubits }

// TwoQubitGates returns the CX count — one per (padded) pixel, the
// QCrank invariant the paper highlights.
func (p Plan) TwoQubitGates() int { return p.PaddedPixels }

// addresses returns 2^AddrQubits.
func (p Plan) addresses() int { return 1 << uint(p.AddrQubits) }

// ucryAngles converts per-address target angles into the Gray-code
// ladder angles: β_i = WH(α)[gray(i)] / 2^k.
func ucryAngles(alpha []float64) []float64 {
	n := len(alpha)
	w := make([]float64, n)
	copy(w, alpha)
	qmath.WalshHadamard(w)
	beta := make([]float64, n)
	inv := 1 / float64(n)
	for i := range beta {
		beta[i] = w[qmath.GrayCode(uint64(i))] * inv
	}
	return beta
}

// Encode builds the QCrank circuit for values in [-1, 1] (length at
// most PaddedPixels; missing entries encode as 0). Pixel p lives on
// data qubit p / 2^k at address p mod 2^k. The circuit ends with
// measure_all when measure is set.
func Encode(values []float64, plan Plan, measure bool) (*circuit.Circuit, error) {
	if len(values) > plan.PaddedPixels {
		return nil, fmt.Errorf("qcrank: %d values exceed plan capacity %d", len(values), plan.PaddedPixels)
	}
	for i, v := range values {
		if v < -1 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("qcrank: value %d = %g outside [-1, 1]", i, v)
		}
	}
	addrs := plan.addresses()
	c := circuit.New(plan.TotalQubits(), 0)
	c.Name = fmt.Sprintf("qcrank_a%d_d%d", plan.AddrQubits, plan.DataQubits)

	// Uniform superposition over addresses.
	for q := 0; q < plan.AddrQubits; q++ {
		c.H(q)
	}
	c.Barrier()

	// One uniformly controlled Ry ladder per data qubit.
	alpha := make([]float64, addrs)
	for j := 0; j < plan.DataQubits; j++ {
		for a := 0; a < addrs; a++ {
			v := 0.0
			if p := j*addrs + a; p < len(values) {
				v = values[p]
			}
			alpha[a] = math.Acos(v) // E[Z] = cos(α) = v
		}
		beta := ucryAngles(alpha)
		data := plan.AddrQubits + j
		for i := 0; i < addrs; i++ {
			c.RY(beta[i], data)
			if addrs == 1 {
				continue // single address: plain rotation, no ladder
			}
			ctrl := int(qmath.GrayFlipBit(uint64(i)))
			if i == addrs-1 {
				ctrl = plan.AddrQubits - 1 // closing CX of the ladder
			}
			c.CX(ctrl, data)
		}
	}
	if measure {
		c.Barrier()
		c.MeasureAll()
	}
	return c, nil
}

// DecodeProbs inverts the encoding exactly from a probability vector
// over all TotalQubits() qubits (the infinite-shot limit): for each
// (address, data qubit), v = E[Z | address].
func DecodeProbs(probs []float64, plan Plan) ([]float64, error) {
	want := 1 << uint(plan.TotalQubits())
	if len(probs) != want {
		return nil, fmt.Errorf("qcrank: %d probabilities, want %d", len(probs), want)
	}
	addrs := plan.addresses()
	addrMask := uint64(addrs - 1)
	num := make([]float64, plan.PaddedPixels) // Σ p·(±1)
	den := make([]float64, addrs)             // Σ p per address
	for idx, p := range probs {
		if p == 0 {
			continue
		}
		a := uint64(idx) & addrMask
		den[a] += p
		for j := 0; j < plan.DataQubits; j++ {
			sign := 1.0
			if uint64(idx)>>uint(plan.AddrQubits+j)&1 == 1 {
				sign = -1
			}
			num[j*addrs+int(a)] += sign * p
		}
	}
	out := make([]float64, plan.Pixels)
	for p := range out {
		a := p % addrs
		if den[a] == 0 {
			return nil, fmt.Errorf("qcrank: address %d has zero probability mass", a)
		}
		out[p] = num[p] / den[a]
	}
	return out, nil
}

// DecodeCounts reconstructs pixel values from measured shot counts
// (counts keyed by the full measure_all bitstring). Addresses that
// received no shots decode to 0 and are reported in missing.
func DecodeCounts(counts sampling.Counts, plan Plan) (values []float64, missing []int, err error) {
	addrs := plan.addresses()
	addrMask := uint64(addrs - 1)
	n1 := make([]int, plan.PaddedPixels)
	tot := make([]int, addrs)
	for key, n := range counts {
		if key >= 1<<uint(plan.TotalQubits()) {
			return nil, nil, fmt.Errorf("qcrank: outcome %d exceeds register", key)
		}
		a := key & addrMask
		tot[a] += n
		for j := 0; j < plan.DataQubits; j++ {
			if key>>uint(plan.AddrQubits+j)&1 == 1 {
				n1[j*addrs+int(a)] += n
			}
		}
	}
	values = make([]float64, plan.Pixels)
	for p := range values {
		a := p % addrs
		if tot[a] == 0 {
			missing = append(missing, a)
			continue
		}
		ones := n1[(p/addrs)*addrs+a]
		// E[Z] estimate: (n0 - n1)/n = 1 - 2·n1/n.
		values[p] = 1 - 2*float64(ones)/float64(tot[a])
	}
	return values, missing, nil
}

// Table2Row is one configuration row of the paper's Table 2.
type Table2Row struct {
	Image      string
	W, H       int
	GrayPixels int
	AddrQubits int
	DataQubits int
	Shots      int
}

// Table2 returns the six rows of the paper's Table 2, derived from the
// image dimensions and address-qubit choices via NewPlan (the listed
// data-qubit and shot values are reproduced, not hard-coded).
func Table2() ([]Table2Row, error) {
	configs := []struct {
		image string
		w, h  int
		addr  int
	}{
		{"finger", 64, 80, 10},
		{"shoes", 128, 128, 11},
		{"building", 192, 128, 12},
		{"zebra", 384, 256, 13},
		{"zebra", 384, 256, 14},
		{"zebra", 384, 256, 15},
	}
	rows := make([]Table2Row, len(configs))
	for i, cfg := range configs {
		plan, err := NewPlan(cfg.w*cfg.h, cfg.addr, DefaultShotsPerAddress)
		if err != nil {
			return nil, err
		}
		rows[i] = Table2Row{
			Image: cfg.image, W: cfg.w, H: cfg.h,
			GrayPixels: cfg.w * cfg.h,
			AddrQubits: plan.AddrQubits,
			DataQubits: plan.DataQubits,
			Shots:      plan.Shots,
		}
	}
	return rows, nil
}
