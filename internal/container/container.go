// Package container is the Podman/Shifter substrate of the paper's
// deployment story (§2, Appendix E): layered images built from a base
// (the paper derives its image from an NVIDIA cu12 DevOps base and
// layers Cray-MPICH, Qiskit and CUDA-Q on top), a registry to push and
// pull them, two runtime modes (Podman's writable containers and
// Shifter's read-only images with a scratch mount), and the paper's
// "podman wrapper" technique that dynamically links Slurm batch
// variables, MPI rank, and output directories into the containerized
// environment.
//
// Filesystems are in-memory path→content maps: enough to exercise
// layer resolution order, copy-on-write isolation, env merging, and
// bind mounts — the orchestration semantics the §E.3 pipeline needs —
// without privileged OS machinery.
package container

import (
	"fmt"
	"sort"
	"strings"
)

// Layer is one filesystem layer.
type Layer struct {
	ID    string
	Files map[string]string // absolute path -> content
}

// Image is an immutable, layered filesystem with environment defaults
// and package metadata.
type Image struct {
	Name       string
	Tag        string
	Base       string // "name:tag" of the parent, "" for a root image
	Layers     []Layer
	Env        map[string]string
	Packages   []string // installed packages, newest layer last
	Entrypoint []string
}

// Ref returns the "name:tag" reference.
func (im *Image) Ref() string { return im.Name + ":" + im.Tag }

// Flatten resolves the layer stack into a single filesystem view,
// later layers overriding earlier ones.
func (im *Image) Flatten() map[string]string {
	fs := make(map[string]string)
	for _, l := range im.Layers {
		for p, c := range l.Files {
			fs[p] = c
		}
	}
	return fs
}

// Builder accumulates layers on a base image (podman build).
type Builder struct {
	img Image
	err error
}

// NewBuilder starts a build from a base image (nil for scratch).
func NewBuilder(name, tag string, base *Image) *Builder {
	b := &Builder{img: Image{Name: name, Tag: tag, Env: map[string]string{}}}
	if base != nil {
		b.img.Base = base.Ref()
		b.img.Layers = append(b.img.Layers, base.Layers...)
		for k, v := range base.Env {
			b.img.Env[k] = v
		}
		b.img.Packages = append(b.img.Packages, base.Packages...)
		b.img.Entrypoint = append([]string(nil), base.Entrypoint...)
	}
	return b
}

// AddLayer appends a filesystem layer.
func (b *Builder) AddLayer(id string, files map[string]string) *Builder {
	if b.err != nil {
		return b
	}
	for p := range files {
		if !strings.HasPrefix(p, "/") {
			b.err = fmt.Errorf("container: layer %q has relative path %q", id, p)
			return b
		}
	}
	cp := make(map[string]string, len(files))
	for p, c := range files {
		cp[p] = c
	}
	b.img.Layers = append(b.img.Layers, Layer{ID: id, Files: cp})
	return b
}

// InstallPackages records package installs as a metadata-only layer
// (the paper's image installs cupy-cuda12x, mpi4py, qiskit, cuda-q...).
func (b *Builder) InstallPackages(pkgs ...string) *Builder {
	if b.err != nil {
		return b
	}
	b.img.Packages = append(b.img.Packages, pkgs...)
	return b
}

// SetEnv sets an environment default baked into the image.
func (b *Builder) SetEnv(k, v string) *Builder {
	if b.err != nil {
		return b
	}
	b.img.Env[k] = v
	return b
}

// Entrypoint sets the default command.
func (b *Builder) Entrypoint(cmd ...string) *Builder {
	if b.err != nil {
		return b
	}
	b.img.Entrypoint = cmd
	return b
}

// Build finalizes the image.
func (b *Builder) Build() (*Image, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.img.Name == "" {
		return nil, fmt.Errorf("container: image has no name")
	}
	img := b.img
	return &img, nil
}

// NvidiaCUDABase returns the public base image the paper starts from:
// a GCC-preinstalled cu12.0 DevOps container.
func NvidiaCUDABase() *Image {
	img, err := NewBuilder("nvidia/cuda-devops", "12.0", nil).
		AddLayer("rootfs", map[string]string{
			"/usr/bin/gcc":       "elf:gcc-12",
			"/usr/local/cuda/12": "cuda-toolkit",
		}).
		SetEnv("CUDA_HOME", "/usr/local/cuda").
		InstallPackages("gcc", "cuda-12.0").
		Build()
	if err != nil {
		panic(err) // static content cannot fail
	}
	return img
}

// QGearImage builds the paper's Q-GEAR container on the NVIDIA base:
// native Cray-MPICH plus the Python quantum stack (§E.1).
func QGearImage() *Image {
	img, err := NewBuilder("nersc/qgear", "latest", NvidiaCUDABase()).
		AddLayer("cray-mpich", map[string]string{
			"/opt/cray/mpich/lib/libmpi.so": "elf:cray-mpich",
		}).
		InstallPackages("cupy-cuda12x", "mpi4py", "qiskit", "cuda-quantum", "h5py", "qiskit-aer", "qiskit-ibm-experiment").
		SetEnv("MPICH_GPU_SUPPORT_ENABLED", "1").
		Entrypoint("python", "run.py").
		Build()
	if err != nil {
		panic(err)
	}
	return img
}

// Registry stores images by reference (the public NERSC repository of
// §4).
type Registry struct {
	images map[string]*Image
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{images: map[string]*Image{}} }

// Push stores an image.
func (r *Registry) Push(img *Image) error {
	if img == nil || img.Name == "" {
		return fmt.Errorf("container: cannot push unnamed image")
	}
	r.images[img.Ref()] = img
	return nil
}

// Pull fetches an image by "name:tag".
func (r *Registry) Pull(ref string) (*Image, error) {
	img, ok := r.images[ref]
	if !ok {
		return nil, fmt.Errorf("container: image %q not found", ref)
	}
	return img, nil
}

// List returns the stored references, sorted.
func (r *Registry) List() []string {
	out := make([]string, 0, len(r.images))
	for ref := range r.images {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}

// Mode selects the runtime flavor.
type Mode int

// Runtime modes: Podman gives each container a writable copy-on-write
// upper layer; Shifter mounts the image read-only with a writable
// scratch directory (how NERSC runs user images at scale, §E.2).
const (
	Podman Mode = iota
	Shifter
)

func (m Mode) String() string {
	if m == Shifter {
		return "shifter"
	}
	return "podman-hpc"
}

// Container is one runnable instance.
type Container struct {
	Image *Image
	Mode  Mode
	Env   map[string]string
	upper map[string]string // writable layer (Podman) or scratch (Shifter)
	binds map[string]string // containerPath -> hostPath label
}

// Runtime creates containers from a registry.
type Runtime struct {
	Mode     Mode
	Registry *Registry
}

// Create instantiates a container from an image reference, merging
// extraEnv over the image's baked-in env (podman run -e).
func (rt *Runtime) Create(ref string, extraEnv map[string]string, binds map[string]string) (*Container, error) {
	img, err := rt.Registry.Pull(ref)
	if err != nil {
		return nil, err
	}
	env := make(map[string]string, len(img.Env)+len(extraEnv))
	for k, v := range img.Env {
		env[k] = v
	}
	for k, v := range extraEnv {
		env[k] = v
	}
	c := &Container{
		Image: img,
		Mode:  rt.Mode,
		Env:   env,
		upper: map[string]string{},
		binds: map[string]string{},
	}
	for cpath, hpath := range binds {
		c.binds[cpath] = hpath
	}
	return c, nil
}

// ReadFile resolves a path through binds, the writable layer, then the
// image layers.
func (c *Container) ReadFile(path string) (string, error) {
	for cpath, hpath := range c.binds {
		if strings.HasPrefix(path, cpath) {
			return "bind:" + hpath + strings.TrimPrefix(path, cpath), nil
		}
	}
	if v, ok := c.upper[path]; ok {
		return v, nil
	}
	if v, ok := c.Image.Flatten()[path]; ok {
		return v, nil
	}
	return "", fmt.Errorf("container: %q not found", path)
}

// WriteFile writes into the container. Shifter images are read-only
// outside the /scratch mount (§E.2's local scratch file system).
func (c *Container) WriteFile(path, content string) error {
	if c.Mode == Shifter && !strings.HasPrefix(path, "/scratch/") {
		return fmt.Errorf("container: shifter image is read-only; write %q under /scratch/", path)
	}
	c.upper[path] = content
	return nil
}

// Run invokes fn with the container's merged environment — the
// stand-in for executing the entrypoint. The image's own filesystem is
// never mutated (copy-on-write isolation).
func (c *Container) Run(fn func(env map[string]string) error) error {
	env := make(map[string]string, len(c.Env))
	for k, v := range c.Env {
		env[k] = v
	}
	return fn(env)
}

// PodmanWrapper implements the paper's "podman wrapper" (§E.1): it
// dynamically links batch submission variables (Slurm env), the MPI
// rank, locally generated circuit paths and output directories into the
// environment a containerized simulation sees.
func PodmanWrapper(slurmEnv map[string]string, mpiRank int, circuitFile, outputDir string) map[string]string {
	env := make(map[string]string, len(slurmEnv)+4)
	for k, v := range slurmEnv {
		env[k] = v
	}
	env["MPI_RANK"] = fmt.Sprintf("%d", mpiRank)
	env["QGEAR_CIRCUIT_FILE"] = circuitFile
	env["QGEAR_OUTPUT_DIR"] = outputDir
	env["QGEAR_WRAPPED"] = "1"
	return env
}
