package container

import (
	"strings"
	"testing"
)

func TestLayeredBuild(t *testing.T) {
	img := QGearImage()
	if img.Base != "nvidia/cuda-devops:12.0" {
		t.Fatalf("base %q", img.Base)
	}
	fs := img.Flatten()
	if fs["/usr/bin/gcc"] != "elf:gcc-12" {
		t.Fatal("base layer lost")
	}
	if fs["/opt/cray/mpich/lib/libmpi.so"] != "elf:cray-mpich" {
		t.Fatal("mpich layer missing")
	}
	// Packages accumulate base-first.
	joined := strings.Join(img.Packages, ",")
	for _, want := range []string{"gcc", "cuda-12.0", "cupy-cuda12x", "mpi4py", "qiskit", "cuda-quantum", "h5py"} {
		if !strings.Contains(joined, want) {
			t.Errorf("package %q missing from %q", want, joined)
		}
	}
	if img.Env["MPICH_GPU_SUPPORT_ENABLED"] != "1" || img.Env["CUDA_HOME"] != "/usr/local/cuda" {
		t.Fatalf("env %v", img.Env)
	}
}

func TestLayerOverride(t *testing.T) {
	base, err := NewBuilder("base", "1", nil).
		AddLayer("l0", map[string]string{"/etc/conf": "v1"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	child, err := NewBuilder("child", "1", base).
		AddLayer("l1", map[string]string{"/etc/conf": "v2"}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if child.Flatten()["/etc/conf"] != "v2" {
		t.Fatal("later layer must override")
	}
	if base.Flatten()["/etc/conf"] != "v1" {
		t.Fatal("base mutated by child build")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder("x", "1", nil).AddLayer("bad", map[string]string{"rel/path": "x"}).Build(); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := NewBuilder("", "1", nil).Build(); err == nil {
		t.Fatal("unnamed image accepted")
	}
}

func TestRegistryPushPull(t *testing.T) {
	r := NewRegistry()
	if err := r.Push(QGearImage()); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(NvidiaCUDABase()); err != nil {
		t.Fatal(err)
	}
	img, err := r.Pull("nersc/qgear:latest")
	if err != nil || img.Name != "nersc/qgear" {
		t.Fatalf("pull: %v", err)
	}
	if _, err := r.Pull("missing:1"); err == nil {
		t.Fatal("missing image pulled")
	}
	refs := r.List()
	if len(refs) != 2 || refs[0] != "nersc/qgear:latest" && refs[1] != "nersc/qgear:latest" {
		t.Fatalf("refs %v", refs)
	}
	if err := r.Push(nil); err == nil {
		t.Fatal("nil image pushed")
	}
}

func TestPodmanContainerEnvAndCoW(t *testing.T) {
	r := NewRegistry()
	if err := r.Push(QGearImage()); err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Mode: Podman, Registry: r}
	c, err := rt.Create("nersc/qgear:latest", map[string]string{"SLURM_JOB_ID": "7", "CUDA_HOME": "/override"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Extra env overrides image env.
	if c.Env["CUDA_HOME"] != "/override" || c.Env["SLURM_JOB_ID"] != "7" {
		t.Fatalf("env merge wrong: %v", c.Env)
	}
	// Writes land in the upper layer; the image stays pristine.
	if err := c.WriteFile("/tmp/out.h5", "data"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/tmp/out.h5")
	if err != nil || got != "data" {
		t.Fatal("upper layer write lost")
	}
	if _, ok := c.Image.Flatten()["/tmp/out.h5"]; ok {
		t.Fatal("container write leaked into the image")
	}
	// Image content remains readable.
	if v, err := c.ReadFile("/usr/bin/gcc"); err != nil || v != "elf:gcc-12" {
		t.Fatal("image read-through broken")
	}
	if _, err := c.ReadFile("/does/not/exist"); err == nil {
		t.Fatal("missing file read")
	}
}

func TestShifterReadOnly(t *testing.T) {
	r := NewRegistry()
	if err := r.Push(QGearImage()); err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Mode: Shifter, Registry: r}
	c, err := rt.Create("nersc/qgear:latest", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/usr/bin/hack", "x"); err == nil {
		t.Fatal("shifter image writable outside scratch")
	}
	if err := c.WriteFile("/scratch/result.h5", "ok"); err != nil {
		t.Fatal(err)
	}
	if Mode(Podman).String() != "podman-hpc" || Mode(Shifter).String() != "shifter" {
		t.Fatal("mode names wrong")
	}
}

func TestBindMounts(t *testing.T) {
	r := NewRegistry()
	if err := r.Push(QGearImage()); err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Mode: Podman, Registry: r}
	c, err := rt.Create("nersc/qgear:latest", nil, map[string]string{"/data": "/pscratch/user/run42"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/data/circuits.qpy")
	if err != nil {
		t.Fatal(err)
	}
	if got != "bind:/pscratch/user/run42/circuits.qpy" {
		t.Fatalf("bind resolution %q", got)
	}
}

func TestRunMergedEnvIsolated(t *testing.T) {
	r := NewRegistry()
	if err := r.Push(QGearImage()); err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Mode: Podman, Registry: r}
	c, _ := rt.Create("nersc/qgear:latest", map[string]string{"A": "1"}, nil)
	err := c.Run(func(env map[string]string) error {
		if env["A"] != "1" {
			t.Error("env not passed")
		}
		env["A"] = "mutated" // must not leak back
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Env["A"] != "1" {
		t.Fatal("run env leaked into container")
	}
}

func TestPodmanWrapper(t *testing.T) {
	slurm := map[string]string{"SLURM_JOB_ID": "42", "SLURM_NTASKS": "4"}
	env := PodmanWrapper(slurm, 3, "/pscratch/circ.h5", "/pscratch/out")
	for k, want := range map[string]string{
		"SLURM_JOB_ID":       "42",
		"SLURM_NTASKS":       "4",
		"MPI_RANK":           "3",
		"QGEAR_CIRCUIT_FILE": "/pscratch/circ.h5",
		"QGEAR_OUTPUT_DIR":   "/pscratch/out",
		"QGEAR_WRAPPED":      "1",
	} {
		if env[k] != want {
			t.Errorf("env[%s] = %q, want %q", k, env[k], want)
		}
	}
	// Wrapper must not mutate the input map.
	if _, ok := slurm["MPI_RANK"]; ok {
		t.Fatal("wrapper mutated slurm env")
	}
}
