// Package cluster models the Perlmutter hardware of §2.3 — AMD EPYC
// 7763 CPU nodes, NVIDIA A100 GPU nodes, NVLink-3 intra-node and HPE
// Slingshot-11 inter-node fabrics, and the rack topology §3 blames for
// the 1024-GPU throughput reversal — as a calibrated analytic
// performance model.
//
// The repository cannot execute 2^42-amplitude simulations (nor does it
// have A100s), so paper-scale points are *estimated* with the same cost
// laws the paper derives: per-gate time is amplitude traffic divided by
// effective memory bandwidth (Appendix A's O(2^n · d) work), multi-GPU
// gates on global qubits pay pairwise-exchange communication over the
// link class their rank distance selects, and rack-crossing exchanges
// share a fixed bisection bandwidth — the mechanism behind Fig. 4b's
// highlighted reversal. The model's engine-level constants can also be
// recalibrated from measured runs of the real Go engine (Calibrate), so
// measured small-n curves and modeled paper-scale curves are directly
// comparable in the benchmark harness.
package cluster

import (
	"fmt"
	"math"

	"qgear/internal/qmath"
)

// Precision selects the amplitude storage width (Table 1's fp32/fp64
// rows).
type Precision int

// Precisions.
const (
	FP32 Precision = iota // 8-byte complex amplitudes
	FP64                  // 16-byte complex amplitudes
)

// AmpBytes returns bytes per complex amplitude.
func (p Precision) AmpBytes() float64 {
	if p == FP32 {
		return 8
	}
	return 16
}

func (p Precision) String() string {
	if p == FP32 {
		return "fp32"
	}
	return "fp64"
}

// DeviceSpec describes one compute device (a GPU or a CPU node treated
// as a single device).
type DeviceSpec struct {
	Name string
	// MemGB is usable memory for amplitudes.
	MemGB float64
	// EffBandwidthGBs is the effective amplitude-update bandwidth the
	// state-vector kernels achieve (below the spec-sheet peak).
	EffBandwidthGBs float64
	// PerGateOverheadUS is fixed per-gate dispatch overhead
	// (kernel-launch or Aer op dispatch), in microseconds.
	PerGateOverheadUS float64
}

// LinkSpec describes an interconnect class.
type LinkSpec struct {
	Name string
	// PerPairGBs is the bandwidth one exchanging device pair gets.
	PerPairGBs float64
	// LatencyUS is the per-message setup latency in microseconds.
	LatencyUS float64
}

// Cluster is the machine model.
type Cluster struct {
	GPU         DeviceSpec
	CPU         DeviceSpec
	GPUsPerNode int
	// NVLink connects GPUs within a node; Slingshot connects nodes
	// within a rack group.
	NVLink    LinkSpec
	Slingshot LinkSpec
	// RackSize is the number of GPUs per rack group; exchanges whose
	// rank distance crosses it share RackBisectionGBs.
	RackSize         int
	RackBisectionGBs float64
	// CongestionMsgGB and CongestionStallS model switch-buffer
	// congestion on rack-crossing exchanges: when every crossing pair
	// simultaneously ships more than CongestionMsgGB, each exchange
	// stalls an extra CongestionStallS seconds. This is the modeled
	// mechanism behind the paper's §3 observation that 1,024 GPUs can
	// have *lower* throughput than 256 once the per-GPU shard grows
	// past the fabric's comfort zone (the Fig. 4b highlighted region).
	CongestionMsgGB  float64
	CongestionStallS float64
	// FusionFactor is the effective gate-count reduction the kernel
	// fusion pass achieves on GPU targets (the paper's gate fusion = 5
	// yields ~3x on the random-block mix).
	FusionFactor float64
	// CommReductionFactor models the exchange batching a production
	// mgpu backend performs via index-bit remapping (cuQuantum's
	// qubit-reordering); it divides the naive global-gate count.
	CommReductionFactor float64
	// CPUSampleRatePerCore / GPUSampleRate are shot-sampling
	// throughputs (shots/second) for Fig. 5's two-component time.
	CPUSampleRatePerCore float64
	GPUSampleRate        float64
	CPUCores             int
	// WarmupJitter is the fractional run-to-run variability from
	// non-warmed GPUs (§3 reports ~5%).
	WarmupJitter float64
}

// Perlmutter returns the model of the paper's testbed with constants
// set from §2.3 hardware specs and calibrated so the headline shapes
// (400x CPU→GPU, 32q single-GPU wall, 34q 4-GPU wall, minutes-scale
// 1024-GPU runs, Fig. 4b reversal) reproduce.
func Perlmutter() *Cluster {
	return &Cluster{
		GPU: DeviceSpec{
			Name:              "A100-40GB",
			MemGB:             40,
			EffBandwidthGBs:   1800, // ~88% of 2039 GB/s HBM2e peak with fused kernels
			PerGateOverheadUS: 6,    // kernel launch
		},
		CPU: DeviceSpec{
			Name:            "EPYC-7763x2",
			MemGB:           512,
			EffBandwidthGBs: 170, // Aer over 128 cores; anchored to the paper's 24 h / 34-qubit / 10k-block point
			// Per-op cost of the Python/Qiskit software stack on the
			// CPU path (circuit construction, binding, transpile,
			// dispatch). It is what makes the paper's small-image
			// QCrank runs minutes-scale on a CPU node despite tiny
			// state vectors (Fig. 5's left edge).
			PerGateOverheadUS: 8000,
		},
		GPUsPerNode: 4,
		NVLink:      LinkSpec{Name: "NVLink3", PerPairGBs: 100, LatencyUS: 2},    // 4 links × 25 GB/s
		Slingshot:   LinkSpec{Name: "Slingshot11", PerPairGBs: 25, LatencyUS: 4}, // one NIC per GPU
		RackSize:    256,
		// Inter-rack bisection shared by all concurrently exchanging
		// pairs that cross the boundary.
		RackBisectionGBs:     2400,
		CongestionMsgGB:      8,
		CongestionStallS:     4,
		FusionFactor:         5, // the paper's gate fusion = 5
		CommReductionFactor:  8, // index-bit remapping batches exchanges
		CPUSampleRatePerCore: 3.0e3,
		GPUSampleRate:        1.2e6,
		CPUCores:             128,
		WarmupJitter:         0.05,
	}
}

// A100HBM80 is the 80 GB A100 variant the paper's multi-node jobs
// request with the "gpu&hbm80g" Slurm constraint (§E.3); the Fig. 4b
// sweep uses it via WithGPU.
var A100HBM80 = DeviceSpec{
	Name:              "A100-80GB",
	MemGB:             80,
	EffBandwidthGBs:   1800,
	PerGateOverheadUS: 6,
}

// WithGPU returns a copy of the cluster with a different GPU device.
func (cl *Cluster) WithGPU(dev DeviceSpec) *Cluster {
	out := *cl
	out.GPU = dev
	return &out
}

// Workload describes one circuit-simulation job for estimation.
type Workload struct {
	Qubits    int
	Gates     int // total primitive gate count
	Precision Precision
	Shots     int
}

// MemoryBytes returns the amplitude storage the workload needs.
func (w Workload) MemoryBytes() float64 {
	return math.Exp2(float64(w.Qubits)) * w.Precision.AmpBytes()
}

// ErrOutOfMemory reports a capacity wall — the open-symbol cutoffs in
// Fig. 4a.
type ErrOutOfMemory struct {
	Need, Have float64 // bytes
	Device     string
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("cluster: %s out of memory: need %.1f GB, have %.1f GB",
		e.Device, e.Need/1e9, e.Have/1e9)
}

// gateTraffic returns bytes moved per gate: every amplitude is read and
// written once (Appendix A's O(2^n) per-gate work).
func gateTraffic(w Workload) float64 {
	return 2 * math.Exp2(float64(w.Qubits)) * w.Precision.AmpBytes()
}

// EstimateCPUSeconds models the Qiskit-Aer-on-CPU-node baseline
// (dashed curves of Fig. 4a): full fp traffic over the CPU's effective
// bandwidth plus per-op overhead, with shot sampling parallel over all
// cores (§3's QCrank discussion).
func (cl *Cluster) EstimateCPUSeconds(w Workload) (float64, error) {
	if need := w.MemoryBytes(); need > cl.CPU.MemGB*1e9 {
		return 0, &ErrOutOfMemory{Need: need, Have: cl.CPU.MemGB * 1e9, Device: cl.CPU.Name}
	}
	unitary := float64(w.Gates) * (gateTraffic(w)/(cl.CPU.EffBandwidthGBs*1e9) + cl.CPU.PerGateOverheadUS*1e-6)
	sampling := float64(w.Shots) / (cl.CPUSampleRatePerCore * float64(cl.CPUCores))
	return unitary + sampling, nil
}

// EstimateGPUSeconds models Q-GEAR on nGPU pooled A100s (solid curves
// of Fig. 4a and the Fig. 4b sweep): compute is the sharded amplitude
// traffic after fusion; communication is the pairwise exchange cost of
// gates on global qubits, with the link class chosen by rank distance
// and rack-crossing exchanges sharing the bisection. Shot sampling is
// serial on one GPU (§3).
func (cl *Cluster) EstimateGPUSeconds(w Workload, nGPU int) (float64, error) {
	if nGPU < 1 || !qmath.IsPow2(uint64(nGPU)) {
		return 0, fmt.Errorf("cluster: GPU count %d must be a power of two", nGPU)
	}
	if need := w.MemoryBytes(); need > cl.GPU.MemGB*1e9*float64(nGPU) {
		return 0, &ErrOutOfMemory{
			Need: need, Have: cl.GPU.MemGB * 1e9 * float64(nGPU),
			Device: fmt.Sprintf("%d×%s", nGPU, cl.GPU.Name),
		}
	}
	effGates := float64(w.Gates) / cl.FusionFactor
	perGPUTraffic := gateTraffic(w) / float64(nGPU)
	compute := effGates * (perGPUTraffic/(cl.GPU.EffBandwidthGBs*1e9) + cl.GPU.PerGateOverheadUS*1e-6)

	comm := cl.commSeconds(w, nGPU)
	sampling := float64(w.Shots) / cl.GPUSampleRate
	return compute + comm + sampling, nil
}

// commSeconds models the exchange cost for the global qubits a
// nGPU-way partition creates.
func (cl *Cluster) commSeconds(w Workload, nGPU int) float64 {
	if nGPU == 1 {
		return 0
	}
	gbits := int(qmath.Log2Ceil(uint64(nGPU)))
	// Random-structure circuits hit each qubit uniformly, so the
	// fraction of gates touching a given global bit is 1/Qubits; the
	// production backend batches exchanges (CommReductionFactor).
	gatesPerBit := float64(w.Gates) / float64(w.Qubits) / cl.CommReductionFactor
	bytesPerGPU := math.Exp2(float64(w.Qubits)) * w.Precision.AmpBytes() / float64(nGPU)

	var total float64
	for j := 0; j < gbits; j++ {
		dist := 1 << uint(j) // rank distance of the exchange partner
		var bw, lat, stall float64
		switch {
		case dist < cl.GPUsPerNode:
			bw, lat = cl.NVLink.PerPairGBs*1e9, cl.NVLink.LatencyUS*1e-6
		case dist < cl.RackSize:
			bw, lat = cl.Slingshot.PerPairGBs*1e9, cl.Slingshot.LatencyUS*1e-6
		default:
			// All nGPU/2 pairs cross the rack boundary concurrently
			// and share the bisection; oversized synchronized messages
			// additionally stall in the switch buffers.
			pairs := float64(nGPU) / 2
			bw = cl.RackBisectionGBs * 1e9 / pairs
			lat = cl.Slingshot.LatencyUS * 1e-6
			if bytesPerGPU > cl.CongestionMsgGB*1e9 {
				stall = cl.CongestionStallS
			}
		}
		total += gatesPerBit * (bytesPerGPU/bw + lat + stall)
	}
	return total
}

// EstimatePennylaneSeconds models the lightning.gpu baseline of
// Fig. 4c per §4's diagnosis: it runs the same cuQuantum state-vector
// math but (a) pays a per-gate high-level→kernel transpilation
// latency, (b) executes unfused, and (c) under-utilizes the
// distributed interface when containerized. All three penalties are
// explicit model constants.
func (cl *Cluster) EstimatePennylaneSeconds(w Workload, nGPU int) (float64, error) {
	base, err := cl.EstimateGPUSeconds(w, nGPU)
	if err != nil {
		return 0, err
	}
	const transpilePerGateMS = 5.0  // Python-object lowering per gate
	const distribInefficiency = 1.8 // container init not overlapping GNU-distributed setup
	const kernelInefficiency = 1.5  // generic vs. hand-fused kernels
	unfused := base * cl.FusionFactor * kernelInefficiency * distribInefficiency
	return unfused + float64(w.Gates)*transpilePerGateMS*1e-3, nil
}

// Jitter applies the warm-up variability of §3 to an estimate,
// returning seconds scaled by a deterministic draw from rng. Estimates
// in figures carry ~WarmupJitter relative error bars.
func (cl *Cluster) Jitter(seconds float64, rng *qmath.RNG) float64 {
	return seconds * (1 + cl.WarmupJitter*rng.NormFloat64())
}

// MaxQubits returns the largest simulable qubit count for the given
// memory pool and precision — the capacity walls of Fig. 4a (32 for
// one A100-40GB at fp32, 34 for four; 34 for the fp64 CPU node).
func MaxQubits(memGB float64, p Precision) int {
	n := 0
	for math.Exp2(float64(n+1))*p.AmpBytes() <= memGB*1e9 {
		n++
	}
	return n
}

// Calibrate rebuilds a device spec from a measured run of the real Go
// engine: given a measured seconds-per-gate at `qubits` qubits, it
// returns a DeviceSpec whose EffBandwidthGBs reproduces it. The bench
// harness uses this to extend measured local curves with modeled
// large-n points that are anchored to reality.
func Calibrate(name string, qubits int, p Precision, secondsPerGate float64, memGB float64) DeviceSpec {
	traffic := 2 * math.Exp2(float64(qubits)) * p.AmpBytes()
	return DeviceSpec{
		Name:            name,
		MemGB:           memGB,
		EffBandwidthGBs: traffic / secondsPerGate / 1e9,
	}
}
