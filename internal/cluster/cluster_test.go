package cluster

import (
	"errors"
	"math"
	"testing"

	"qgear/internal/qmath"
)

// Paper workloads (§3): short = 100 blocks ≈ 300 gates, long = 10,000
// blocks ≈ 30,000 gates, Fig. 4b intermediate = 3,000 blocks ≈ 9,000
// gates.
func longUnitary(n int) Workload  { return Workload{Qubits: n, Gates: 30000, Precision: FP32} }
func fig4bUnitary(n int) Workload { return Workload{Qubits: n, Gates: 9000, Precision: FP32} }

func TestMemoryWalls(t *testing.T) {
	// The capacity walls of Fig. 4a: 32 qubits for one A100-40GB at
	// fp32, 34 for four pooled; 34 for the 512 GB CPU node at fp64.
	if n := MaxQubits(40, FP32); n != 32 {
		t.Fatalf("A100-40 fp32 wall = %d, want 32", n)
	}
	if n := MaxQubits(160, FP32); n != 34 {
		t.Fatalf("4×A100-40 fp32 wall = %d, want 34", n)
	}
	if n := MaxQubits(512, FP64); n != 34 {
		t.Fatalf("CPU node fp64 wall = %d, want 34", n)
	}
	if n := MaxQubits(80*1024, FP32); n != 43 {
		t.Fatalf("1024×A100-80 wall = %d, want 43", n)
	}
}

func TestOutOfMemoryErrors(t *testing.T) {
	cl := Perlmutter()
	// 33 qubits on one 40 GB GPU must refuse (the open-square cutoff).
	if _, err := cl.EstimateGPUSeconds(longUnitary(33), 1); err == nil {
		t.Fatal("33q on one A100-40 accepted")
	} else {
		var oom *ErrOutOfMemory
		if !errors.As(err, &oom) {
			t.Fatalf("want ErrOutOfMemory, got %v", err)
		}
	}
	// 34 on four GPUs fits; 35 does not.
	if _, err := cl.EstimateGPUSeconds(longUnitary(34), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.EstimateGPUSeconds(longUnitary(35), 4); err == nil {
		t.Fatal("35q on 4×A100-40 accepted")
	}
	// CPU wall at fp64: 34 ok, 35 not.
	w := Workload{Qubits: 35, Gates: 300, Precision: FP64}
	if _, err := cl.EstimateCPUSeconds(w); err == nil {
		t.Fatal("35q fp64 on CPU node accepted")
	}
	w.Qubits = 34
	if _, err := cl.EstimateCPUSeconds(w); err != nil {
		t.Fatal(err)
	}
}

func TestCPUAnchoredTo24HourPoint(t *testing.T) {
	// §3: "approximately 24 h to simulate a single 34-qubit unitary
	// with 10,000 CX gates on one CPU node" — the model must land
	// within a factor of 2 of that anchor.
	cl := Perlmutter()
	w := Workload{Qubits: 34, Gates: 30000, Precision: FP64}
	sec, err := cl.EstimateCPUSeconds(w)
	if err != nil {
		t.Fatal(err)
	}
	if sec < 12*3600 || sec > 48*3600 {
		t.Fatalf("34q long unitary CPU estimate %.1f h, want ~24 h", sec/3600)
	}
}

func TestGPUSpeedupTwoOrdersOfMagnitude(t *testing.T) {
	// Fig. 4a's headline: ~400x single-GPU speedup over the CPU node
	// baseline. Accept anywhere in [100, 1000] — "two orders".
	cl := Perlmutter()
	cpu, err := cl.EstimateCPUSeconds(Workload{Qubits: 32, Gates: 30000, Precision: FP64})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := cl.EstimateGPUSeconds(longUnitary(32), 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := cpu / gpu
	if ratio < 100 || ratio > 1000 {
		t.Fatalf("CPU/GPU ratio %.0fx outside [100,1000]", ratio)
	}
}

func TestExponentialScaling(t *testing.T) {
	// Appendix B Theorem B.3: runtime doubles per added qubit once
	// traffic dominates, for both engines.
	cl := Perlmutter()
	for n := 28; n < 31; n++ {
		c1, err := cl.EstimateCPUSeconds(Workload{Qubits: n, Gates: 300, Precision: FP64})
		if err != nil {
			t.Fatal(err)
		}
		c2, err := cl.EstimateCPUSeconds(Workload{Qubits: n + 1, Gates: 300, Precision: FP64})
		if err != nil {
			t.Fatal(err)
		}
		if r := c2 / c1; r < 1.8 || r > 2.2 {
			t.Fatalf("CPU scaling %d->%d qubits: ratio %.2f, want ~2", n, n+1, r)
		}
		g1, err := cl.EstimateGPUSeconds(longUnitary(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := cl.EstimateGPUSeconds(longUnitary(n+1), 1)
		if err != nil {
			t.Fatal(err)
		}
		if r := g2 / g1; r < 1.7 || r > 2.3 {
			t.Fatalf("GPU scaling %d->%d qubits: ratio %.2f, want ~2", n, n+1, r)
		}
	}
}

func TestShortVsLongUnitaryRatio(t *testing.T) {
	// Long unitaries have 100x the gates, so ~100x the time (§3).
	cl := Perlmutter()
	short, err := cl.EstimateCPUSeconds(Workload{Qubits: 30, Gates: 300, Precision: FP64})
	if err != nil {
		t.Fatal(err)
	}
	long, err := cl.EstimateCPUSeconds(Workload{Qubits: 30, Gates: 30000, Precision: FP64})
	if err != nil {
		t.Fatal(err)
	}
	if r := long / short; r < 80 || r > 120 {
		t.Fatalf("long/short ratio %.1f, want ~100", r)
	}
}

func TestFig4bReversalAt1024GPUs(t *testing.T) {
	// §3: from 39 to 40 qubits the trend reverses — 1,024 GPUs become
	// slower than 256 because the per-GPU shard outgrows the inter-rack
	// fabric. The multi-node sweep uses the 80 GB parts.
	cl := Perlmutter().WithGPU(A100HBM80)
	t39at256, err := cl.EstimateGPUSeconds(fig4bUnitary(39), 256)
	if err != nil {
		t.Fatal(err)
	}
	t39at1024, err := cl.EstimateGPUSeconds(fig4bUnitary(39), 1024)
	if err != nil {
		t.Fatal(err)
	}
	t40at256, err := cl.EstimateGPUSeconds(fig4bUnitary(40), 256)
	if err != nil {
		t.Fatal(err)
	}
	t40at1024, err := cl.EstimateGPUSeconds(fig4bUnitary(40), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if t39at1024 >= t39at256 {
		t.Fatalf("at 39q 1024 GPUs (%.0fs) should beat 256 (%.0fs)", t39at1024, t39at256)
	}
	if t40at1024 <= t40at256 {
		t.Fatalf("at 40q 1024 GPUs (%.0fs) should fall behind 256 (%.0fs) — the Fig. 4b reversal", t40at1024, t40at256)
	}
}

func TestFig4bLargestPointIsMinutesScale(t *testing.T) {
	// §3: 42-qubit, 3,000-block unitaries complete "within a reasonable
	// time of approximately 10 min" on a big-enough cluster.
	cl := Perlmutter().WithGPU(A100HBM80)
	sec, err := cl.EstimateGPUSeconds(fig4bUnitary(42), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if sec < 120 || sec > 1800 {
		t.Fatalf("42q/1024GPU estimate %.1f min, want minutes-scale (~10)", sec/60)
	}
	// And 42 qubits must NOT fit on 256 GPUs even at 80 GB.
	if _, err := cl.EstimateGPUSeconds(fig4bUnitary(42), 256); err == nil {
		t.Fatal("42q fits on 256×80GB?")
	}
}

func TestMoreGPUsHelpWhenComputeBound(t *testing.T) {
	// Away from the congestion regime, larger clusters are faster.
	cl := Perlmutter().WithGPU(A100HBM80)
	prev := math.Inf(1)
	for _, g := range []int{4, 8, 16, 32, 64} {
		sec, err := cl.EstimateGPUSeconds(fig4bUnitary(34), g)
		if err != nil {
			t.Fatal(err)
		}
		if sec >= prev {
			t.Fatalf("scaling broke at %d GPUs: %.2fs >= %.2fs", g, sec, prev)
		}
		prev = sec
	}
}

func TestPennylaneSlowerThanQGear(t *testing.T) {
	// Fig. 4c: Q-GEAR consistently outperforms the Pennylane baseline
	// on QFT circuits across the sweep.
	cl := Perlmutter()
	for n := 28; n <= 33; n++ {
		gates := n + n*(n-1)/2 // H layer + CR1 ladder
		w := Workload{Qubits: n, Gates: gates, Precision: FP32}
		qg, err := cl.EstimateGPUSeconds(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cl.EstimatePennylaneSeconds(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if pl < 3*qg {
			t.Fatalf("n=%d: pennylane %.3fs not clearly slower than qgear %.3fs", n, pl, qg)
		}
	}
	// OOM propagates.
	if _, err := cl.EstimatePennylaneSeconds(longUnitary(40), 4); err == nil {
		t.Fatal("pennylane OOM not propagated")
	}
}

func TestInvalidGPUCount(t *testing.T) {
	cl := Perlmutter()
	for _, bad := range []int{0, -1, 3, 100} {
		if _, err := cl.EstimateGPUSeconds(longUnitary(20), bad); err == nil {
			t.Fatalf("GPU count %d accepted", bad)
		}
	}
}

func TestSamplingDominatesLargeShotCounts(t *testing.T) {
	// §3's QCrank observation: GPU samples serially, the CPU node
	// samples on 128 cores, so at huge shot counts the CPU closes the
	// gap. Check the speedup shrinks as shots grow.
	cl := Perlmutter()
	smallShots := Workload{Qubits: 15, Gates: 5120, Precision: FP64, Shots: 3_000_000}
	bigShots := Workload{Qubits: 15, Gates: 98304, Precision: FP64, Shots: 98_000_000}
	cpuS, err := cl.EstimateCPUSeconds(smallShots)
	if err != nil {
		t.Fatal(err)
	}
	gpuS, err := cl.EstimateGPUSeconds(smallShots, 1)
	if err != nil {
		t.Fatal(err)
	}
	cpuB, err := cl.EstimateCPUSeconds(bigShots)
	if err != nil {
		t.Fatal(err)
	}
	gpuB, err := cl.EstimateGPUSeconds(bigShots, 1)
	if err != nil {
		t.Fatal(err)
	}
	if (cpuS / gpuS) <= (cpuB / gpuB) {
		t.Fatalf("speedup should shrink with shots: small %.1fx vs big %.1fx", cpuS/gpuS, cpuB/gpuB)
	}
}

func TestJitterIsModest(t *testing.T) {
	cl := Perlmutter()
	rng := qmath.NewRNG(1)
	var worst float64
	for i := 0; i < 2000; i++ {
		j := cl.Jitter(100, rng)
		dev := math.Abs(j-100) / 100
		if dev > worst {
			worst = dev
		}
	}
	if worst > 0.35 || worst < 0.02 {
		t.Fatalf("jitter spread %.2f implausible for a 5%% sigma", worst)
	}
}

func TestCalibrateRoundTrip(t *testing.T) {
	// A device calibrated from a measured per-gate time must estimate
	// that same time back.
	dev := Calibrate("local", 20, FP64, 0.001, 64)
	cl := Perlmutter()
	cl.GPU = dev
	cl.FusionFactor = 1
	cl.GPU.PerGateOverheadUS = 0
	w := Workload{Qubits: 20, Gates: 1000, Precision: FP64}
	sec, err := cl.EstimateGPUSeconds(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sec-1.0) > 1e-9 {
		t.Fatalf("calibrated estimate %.6fs, want 1.0s", sec)
	}
}

func TestPrecisionBytes(t *testing.T) {
	if FP32.AmpBytes() != 8 || FP64.AmpBytes() != 16 {
		t.Fatal("amp widths wrong")
	}
	if FP32.String() != "fp32" || FP64.String() != "fp64" {
		t.Fatal("precision names wrong")
	}
	w := Workload{Qubits: 10, Precision: FP64}
	if w.MemoryBytes() != 1024*16 {
		t.Fatal("MemoryBytes wrong")
	}
}
