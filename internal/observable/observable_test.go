package observable

import (
	"math"
	"strings"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// ghz prepares the n-qubit GHZ state.
func ghz(t *testing.T, n int) *statevec.State {
	t.Helper()
	s := statevec.MustNew(n, 1)
	s.ApplyMat1(0, gate.Matrix1(gate.H, nil))
	for i := 1; i < n; i++ {
		s.ApplyCX(0, i)
	}
	return s
}

func expectTerm(t *testing.T, s *statevec.State, term Term, want float64) {
	t.Helper()
	got, err := term.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("<%s> = %g, want %g", term, got, want)
	}
}

func TestGHZCorrelations(t *testing.T) {
	s := ghz(t, 3)
	// <Z_i> = 0 individually; <Z_i Z_j> = +1; <XXX> = +1; <YYX> = -1.
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: Z}), 0)
	expectTerm(t, s, NewTerm(1, map[int]Pauli{2: Z}), 0)
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: Z, 1: Z}), 1)
	expectTerm(t, s, NewTerm(1, map[int]Pauli{1: Z, 2: Z}), 1)
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: X, 1: X, 2: X}), 1)
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: Y, 1: Y, 2: X}), -1)
	expectTerm(t, s, NewTerm(2.5, map[int]Pauli{0: Z, 1: Z}), 2.5)
}

func TestSingleQubitRotationExpectations(t *testing.T) {
	// RY(θ)|0>: <Z> = cos θ, <X> = sin θ, <Y> = 0.
	th := 0.81
	s := statevec.MustNew(1, 1)
	s.ApplyMat1(0, gate.Matrix1(gate.RY, []float64{th}))
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: Z}), math.Cos(th))
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: X}), math.Sin(th))
	expectTerm(t, s, NewTerm(1, map[int]Pauli{0: Y}), 0)
	// RX(θ)|0>: <Y> = -sin θ.
	s2 := statevec.MustNew(1, 1)
	s2.ApplyMat1(0, gate.Matrix1(gate.RX, []float64{th}))
	expectTerm(t, s2, NewTerm(1, map[int]Pauli{0: Y}), -math.Sin(th))
}

func TestIdentityTermAndValidation(t *testing.T) {
	s := statevec.MustNew(2, 1)
	expectTerm(t, s, NewTerm(3.25, nil), 3.25)
	if _, err := NewTerm(1, map[int]Pauli{9: Z}).Expectation(s); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
}

func TestExpectationDoesNotMutateState(t *testing.T) {
	s := ghz(t, 3)
	before := append([]complex128(nil), s.Amplitudes()...)
	if _, err := NewTerm(1, map[int]Pauli{0: X, 1: Y, 2: Z}).Expectation(s); err != nil {
		t.Fatal(err)
	}
	for i, a := range s.Amplitudes() {
		if a != before[i] {
			t.Fatal("Expectation mutated the state")
		}
	}
}

func TestHamiltonianSequentialVsParallel(t *testing.T) {
	h := TransverseFieldIsing(6, 1.0, 0.7)
	r := qmath.NewRNG(12)
	s := statevec.MustNew(6, 1)
	for i := 0; i < 30; i++ {
		q := r.Intn(6)
		s.ApplyMat1(q, gate.Matrix1(gate.U3, []float64{r.Angle(), r.Angle(), r.Angle()}))
		s.ApplyCX(q, (q+1)%6)
	}
	seq, err := h.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, devices := range []int{1, 2, 4, 16} {
		par, err := h.ExpectationParallel(s, devices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(par-seq) > 1e-10 {
			t.Fatalf("devices=%d: parallel %g != sequential %g", devices, par, seq)
		}
	}
}

func TestTFIMGroundStateLimits(t *testing.T) {
	// g=0: |00...0> is a ground state with energy -J(n-1).
	n := 5
	h := TransverseFieldIsing(n, 2.0, 0)
	s := statevec.MustNew(n, 1)
	e, err := h.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(-2.0*float64(n-1))) > 1e-12 {
		t.Fatalf("TFIM g=0 energy %g", e)
	}
	// J=0, g>0: |+>^n has energy -g·n.
	h2 := TransverseFieldIsing(n, 0, 1.5)
	s2 := statevec.MustNew(n, 1)
	for q := 0; q < n; q++ {
		s2.ApplyMat1(q, gate.Matrix1(gate.H, nil))
	}
	e2, err := h2.Expectation(s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2-(-1.5*float64(n))) > 1e-12 {
		t.Fatalf("TFIM J=0 energy %g", e2)
	}
}

func TestPartitionBalancedAndComplete(t *testing.T) {
	h := TransverseFieldIsing(8, 1, 1) // 7 + 8 = 15 terms
	groups := h.Partition(4)
	if len(groups) != 4 {
		t.Fatalf("%d groups", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		if len(g) < 3 || len(g) > 4 {
			t.Fatalf("unbalanced group size %d", len(g))
		}
	}
	if total != 15 {
		t.Fatalf("partition lost terms: %d", total)
	}
	// Degenerate cases.
	if len(h.Partition(0)) != 1 {
		t.Fatal("k=0 should clamp to 1")
	}
	if len(h.Partition(100)) != 15 {
		t.Fatal("k>terms should clamp to terms")
	}
}

func TestStringRendering(t *testing.T) {
	term := NewTerm(0.5, map[int]Pauli{2: Z, 0: X})
	if term.String() != "0.5·X0Z2" {
		t.Fatalf("term string %q", term.String())
	}
	h := &Hamiltonian{NumQubits: 3}
	h.Add(term)
	h.Add(NewTerm(1, nil))
	if !strings.Contains(h.String(), "X0Z2") || !strings.Contains(h.String(), "·I") {
		t.Fatalf("hamiltonian string %q", h.String())
	}
	if X.String() != "X" || Y.String() != "Y" || Z.String() != "Z" || Pauli(0).String() != "I" {
		t.Fatal("pauli names")
	}
}

// TestTermExpectationVisitCount is the stride-iteration regression
// test: an identity-padded few-qubit term must enumerate exactly half
// the statevector (2^(n-1) indices), never the full 2^n the rotation-
// based evaluator walked, and the identity term must visit nothing.
func TestTermExpectationVisitCount(t *testing.T) {
	n := 10
	s := ghz(t, n)
	ev := s.PauliEvaluator()
	for _, tc := range []struct {
		term Term
		want int
	}{
		{NewTerm(1, nil), 0},
		{NewTerm(1, map[int]Pauli{0: Z}), 1 << (n - 1)},
		{NewTerm(1, map[int]Pauli{3: Z, 7: Z}), 1 << (n - 1)},
		{NewTerm(1, map[int]Pauli{5: X}), 1 << (n - 1)},
		{NewTerm(1, map[int]Pauli{1: Y, 8: Z}), 1 << (n - 1)},
	} {
		_, visited, err := tc.term.expectationOn(ev, n)
		if err != nil {
			t.Fatal(err)
		}
		if visited != tc.want {
			t.Errorf("<%s>: visited %d, want %d", tc.term, visited, tc.want)
		}
	}
}

func TestExpectationParallelBitIdentical(t *testing.T) {
	h := TransverseFieldIsing(7, 1.3, 0.9)
	s := ghz(t, 7)
	seq, err := h.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, devices := range []int{1, 2, 3, 5, 100} {
		par, err := h.ExpectationParallel(s, devices)
		if err != nil {
			t.Fatal(err)
		}
		if par != seq {
			t.Fatalf("devices=%d: parallel %.17g != sequential %.17g (must be bit-identical)", devices, par, seq)
		}
	}
}

func TestEstimateZBasis(t *testing.T) {
	// Deterministic counts: a fake 2-qubit distribution.
	h := &Hamiltonian{NumQubits: 2}
	h.Add(NewTerm(1.0, map[int]Pauli{0: Z}))
	h.Add(NewTerm(0.5, map[int]Pauli{0: Z, 1: Z}))
	h.Add(NewTerm(2.0, nil)) // identity folds in exactly
	counts := map[uint64]int{0: 400, 1: 300, 2: 200, 3: 100}
	// <Z0> = (400+200-300-100)/1000 = 0.2
	// <Z0Z1> = (400+100-300-200)/1000 = 0.0
	got, err := h.EstimateZBasis(counts)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0*0.2 + 0.5*0.0 + 2.0
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("estimate %g, want %g", got, want)
	}
	bad := &Hamiltonian{NumQubits: 2}
	bad.Add(NewTerm(1, map[int]Pauli{0: X}))
	if _, err := bad.EstimateZBasis(counts); err == nil {
		t.Fatal("non-diagonal term accepted by Z-basis estimator")
	}
	if _, err := h.EstimateZBasis(nil); err == nil {
		t.Fatal("empty counts accepted")
	}
}

func TestZViewAndDiagonal(t *testing.T) {
	term := NewTerm(0.75, map[int]Pauli{0: X, 2: Y, 3: Z})
	if term.Diagonal() {
		t.Fatal("XYZ term reported diagonal")
	}
	zv := term.ZView()
	if !zv.Diagonal() || zv.Coef != 0.75 || len(zv.Ops) != 3 {
		t.Fatalf("ZView wrong: %v", zv)
	}
	if !NewTerm(1, map[int]Pauli{1: Z}).Diagonal() {
		t.Fatal("Z term not diagonal")
	}
}

func TestValidateAndClone(t *testing.T) {
	h := TransverseFieldIsing(4, 1, 1)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Hamiltonian{NumQubits: 2}
	bad.Add(NewTerm(math.Inf(1), map[int]Pauli{0: Z}))
	if err := bad.Validate(); err == nil {
		t.Fatal("infinite coefficient accepted")
	}
	oob := &Hamiltonian{NumQubits: 2}
	oob.Add(NewTerm(1, map[int]Pauli{5: Z}))
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}

	c := h.Clone()
	if c.Fingerprint() != h.Fingerprint() {
		t.Fatal("clone hashes differently")
	}
	c.Terms[0].Ops[0] = X // mutate the clone's map
	if c.Fingerprint() == h.Fingerprint() {
		t.Fatal("clone shares factor maps with the original")
	}
}

func TestParallelErrorPropagation(t *testing.T) {
	h := &Hamiltonian{NumQubits: 2}
	h.Add(NewTerm(1, map[int]Pauli{5: Z})) // out of range
	s := statevec.MustNew(2, 1)
	if _, err := h.ExpectationParallel(s, 2); err == nil {
		t.Fatal("error not propagated from parallel group")
	}
}
