package observable

import (
	"fmt"
	"math/bits"
)

// Shot-based estimation: the sampled counterpart of the exact
// expectation pathway. Z-diagonal terms are estimable straight from
// Z-basis measurement counts; X/Y factors first rotate into the Z
// basis on the circuit side (H for X, S†·H for Y), after which the
// rotated circuit's counts estimate the term's ZView. The bench's
// exact-vs-sampled ablation and the differential test suite's
// statistical cross-check both run on these helpers.

// Diagonal reports whether every factor of the term is Z (the term is
// diagonal in the computational basis).
func (t Term) Diagonal() bool {
	for _, p := range t.Ops {
		if p != Z {
			return false
		}
	}
	return true
}

// ZView returns a copy of the term with every X/Y factor replaced by
// Z — the diagonal observable the term becomes once the measured
// circuit rotates those qubits into the Z basis.
func (t Term) ZView() Term {
	ops := make(map[int]Pauli, len(t.Ops))
	for q := range t.Ops {
		ops[q] = Z
	}
	return Term{Coef: t.Coef, Ops: ops}
}

// EstimateZBasis estimates ⟨H⟩ from Z-basis measurement counts
// (basis-state index → observed shots). Every term must be diagonal;
// rotate non-diagonal terms on the circuit side and estimate their
// ZView instead. The estimator is the standard parity average:
// ⟨Z-string⟩ ≈ Σ_b counts[b]·(−1)^{parity(b & mask)} / shots.
func (h *Hamiltonian) EstimateZBasis(counts map[uint64]int) (float64, error) {
	var shots int
	for _, c := range counts {
		shots += c
	}
	if shots <= 0 {
		return 0, fmt.Errorf("observable: no shots to estimate from")
	}
	n := h.NumQubits
	if n <= 0 {
		n = 64
	}
	var acc float64
	for i, t := range h.Terms {
		if !t.Diagonal() {
			return 0, fmt.Errorf("observable: term %d (%s) is not Z-diagonal; measure its ZView on a basis-rotated circuit", i, t)
		}
		_, _, zm, err := t.Masks(n)
		if err != nil {
			return 0, err
		}
		if zm == 0 {
			acc += t.Coef
			continue
		}
		var up int
		for b, c := range counts {
			if bits.OnesCount64(b&zm)&1 == 0 {
				up += c
			} else {
				up -= c
			}
		}
		acc += t.Coef * float64(up) / float64(shots)
	}
	return acc, nil
}
