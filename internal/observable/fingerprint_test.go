package observable

import (
	"fmt"
	"math"
	"testing"

	"qgear/internal/qmath"
)

// golden fingerprints: committed values pinning the canonical encoding.
// If these change, every persisted expectation artifact and cache key
// changes with them — bump fingerprintVersion consciously, never by
// accident.
const (
	goldenTFIM3     = "6d547f0e6b6c080178dbc5b34015c88b125a9d6148db2c92a9c76aa1b825f11b"
	goldenEmpty     = "08acea56b2020ba6f189ac306a8b0f76cde87e3ee7aa64fa724380ee12c6b2a4"
	goldenOneXYZ    = "57cab0c8bd020383f902102f4a7578cb68efe215acbc840c19d768f8332da3d3"
	goldenDupTerms  = "88ee70da8bb85114d5c8ac17fd83b7987e5c167ed2d6099fec30b5e741468662"
	goldenMergedDup = "b17dfe360b8be09328e300e1d5e5f20dcfd8cc9e892ed719cb5fc425d90a26ca"
)

func TestFingerprintGoldenValues(t *testing.T) {
	for _, tc := range []struct {
		name string
		h    *Hamiltonian
		want string
	}{
		{"tfim3", TransverseFieldIsing(3, 1.0, 0.5), goldenTFIM3},
		{"empty", &Hamiltonian{NumQubits: 4}, goldenEmpty},
		{"one-xyz", &Hamiltonian{NumQubits: 3, Terms: []Term{
			NewTerm(0.25, map[int]Pauli{0: X, 1: Y, 2: Z}),
		}}, goldenOneXYZ},
		{"dup-terms", &Hamiltonian{NumQubits: 2, Terms: []Term{
			NewTerm(1, map[int]Pauli{0: Z}),
			NewTerm(1, map[int]Pauli{0: Z}),
		}}, goldenDupTerms},
		{"merged-dup", &Hamiltonian{NumQubits: 2, Terms: []Term{
			NewTerm(2, map[int]Pauli{0: Z}),
		}}, goldenMergedDup},
	} {
		if got := tc.h.Fingerprint(); got != tc.want {
			t.Errorf("%s: fingerprint %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestFingerprintTermOrderInvariant(t *testing.T) {
	a := &Hamiltonian{NumQubits: 4}
	a.Add(NewTerm(0.5, map[int]Pauli{0: Z, 1: Z}))
	a.Add(NewTerm(-1.25, map[int]Pauli{2: X}))
	a.Add(NewTerm(3, map[int]Pauli{1: Y, 3: Z}))
	b := &Hamiltonian{NumQubits: 4}
	b.Add(NewTerm(3, map[int]Pauli{1: Y, 3: Z}))
	b.Add(NewTerm(0.5, map[int]Pauli{1: Z, 0: Z}))
	b.Add(NewTerm(-1.25, map[int]Pauli{2: X}))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on term order")
	}
}

func TestFingerprintFactorOrderAndConstructionInvariant(t *testing.T) {
	// Factor maps populated in opposite insertion order, and Add vs
	// literal construction, must hash identically.
	m1 := map[int]Pauli{}
	for q := 0; q < 8; q++ {
		m1[q] = Pauli(1 + q%3)
	}
	m2 := map[int]Pauli{}
	for q := 7; q >= 0; q-- {
		m2[q] = Pauli(1 + q%3)
	}
	viaAdd := &Hamiltonian{NumQubits: 8}
	viaAdd.Add(NewTerm(1.5, m1))
	literal := &Hamiltonian{NumQubits: 8, Terms: []Term{NewTerm(1.5, m2)}}
	for i := 0; i < 16; i++ { // map iteration order varies per run
		if viaAdd.Fingerprint() != literal.Fingerprint() {
			t.Fatal("fingerprint depends on factor iteration order or construction path")
		}
	}
}

func TestFingerprintDistinguishesChanges(t *testing.T) {
	base := &Hamiltonian{NumQubits: 3, Terms: []Term{NewTerm(0.5, map[int]Pauli{0: Z, 2: X})}}
	fp := base.Fingerprint()
	for name, mut := range map[string]*Hamiltonian{
		"coef":  {NumQubits: 3, Terms: []Term{NewTerm(0.5000000000000001, map[int]Pauli{0: Z, 2: X})}},
		"sign":  {NumQubits: 3, Terms: []Term{NewTerm(-0.5, map[int]Pauli{0: Z, 2: X})}},
		"pauli": {NumQubits: 3, Terms: []Term{NewTerm(0.5, map[int]Pauli{0: Z, 2: Y})}},
		"qubit": {NumQubits: 3, Terms: []Term{NewTerm(0.5, map[int]Pauli{1: Z, 2: X})}},
		"width": {NumQubits: 4, Terms: []Term{NewTerm(0.5, map[int]Pauli{0: Z, 2: X})}},
		"extra": {NumQubits: 3, Terms: []Term{
			NewTerm(0.5, map[int]Pauli{0: Z, 2: X}), NewTerm(0, nil),
		}},
	} {
		if mut.Fingerprint() == fp {
			t.Errorf("%s change not reflected in fingerprint", name)
		}
	}
}

// TestFingerprintFuzzNoCollisions draws 1000 random Hamiltonians and
// checks that distinct operators never collide while re-encodings of
// the same operator (shuffled terms, rebuilt maps) always do.
func TestFingerprintFuzzNoCollisions(t *testing.T) {
	r := qmath.NewRNG(987)
	seen := make(map[string]string, 1000) // fingerprint -> canonical description
	for i := 0; i < 1000; i++ {
		n := 1 + r.Intn(12)
		h := &Hamiltonian{NumQubits: n}
		for ti := 0; ti < 1+r.Intn(5); ti++ {
			ops := make(map[int]Pauli)
			for k := 0; k < r.Intn(4); k++ {
				ops[r.Intn(n)] = Pauli(1 + r.Intn(3))
			}
			h.Add(NewTerm(math.Floor(100*(2*r.Float64()-1))/8, ops))
		}
		fp := h.Fingerprint()

		// A shuffled, rebuilt copy must collide with itself.
		shuffled := &Hamiltonian{NumQubits: n}
		for j := len(h.Terms) - 1; j >= 0; j-- {
			shuffled.Add(NewTerm(h.Terms[j].Coef, h.Terms[j].Ops))
		}
		if shuffled.Fingerprint() != fp {
			t.Fatalf("iteration %d: shuffled copy hashes differently", i)
		}

		// Distinct operators must not collide. Random draws can repeat
		// an operator; verify by canonical description before declaring
		// a collision.
		desc := canonicalDescription(h)
		if prev, ok := seen[fp]; ok && prev != desc {
			t.Fatalf("iteration %d: collision between %q and %q", i, prev, desc)
		}
		seen[fp] = desc
	}
}

func canonicalDescription(h *Hamiltonian) string {
	encs := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		encs[i] = t.canonicalKey()
	}
	// Reuse the same canonical ordering the fingerprint applies.
	for i := 0; i < len(encs); i++ {
		for j := i + 1; j < len(encs); j++ {
			if encs[j] < encs[i] {
				encs[i], encs[j] = encs[j], encs[i]
			}
		}
	}
	out := fmt.Sprintf("n%d;", h.NumQubits)
	for _, e := range encs {
		out += e + ";"
	}
	return out
}
