// Package observable implements Pauli-string observables and
// Hamiltonian partitioning — the workload structure behind the paper's
// Fig. 2c large-circuit mode, where "the simulation process partitions
// them into distinct Hamiltonians ... distributed across multiple
// hardware resources, thereby enabling efficient parallelization".
//
// A Hamiltonian is a real-weighted sum of Pauli strings. Expectation
// values are computed on the state-vector engine by rotating X/Y
// factors into the Z basis on a cloned state and folding the Z-parity
// over probabilities; Partition splits the term list into balanced
// groups, and ExpectationParallel evaluates groups concurrently across
// simulated devices.
package observable

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"qgear/internal/gate"
	"qgear/internal/statevec"
)

// Pauli is a single-qubit Pauli factor.
type Pauli uint8

// Pauli factors (I is implied by absence).
const (
	X Pauli = iota + 1
	Y
	Z
)

func (p Pauli) String() string {
	switch p {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return "I"
}

// Term is one weighted Pauli string, stored sparsely as qubit→factor.
type Term struct {
	Coef float64
	Ops  map[int]Pauli
}

// NewTerm builds a term from (qubit, factor) pairs.
func NewTerm(coef float64, factors map[int]Pauli) Term {
	ops := make(map[int]Pauli, len(factors))
	for q, p := range factors {
		ops[q] = p
	}
	return Term{Coef: coef, Ops: ops}
}

// String renders e.g. "0.5·Z0Z2".
func (t Term) String() string {
	if len(t.Ops) == 0 {
		return fmt.Sprintf("%g·I", t.Coef)
	}
	qs := make([]int, 0, len(t.Ops))
	for q := range t.Ops {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	var b strings.Builder
	fmt.Fprintf(&b, "%g·", t.Coef)
	for _, q := range qs {
		fmt.Fprintf(&b, "%s%d", t.Ops[q], q)
	}
	return b.String()
}

// Expectation computes <ψ|T|ψ> on a clone of s (s is not modified).
func (t Term) Expectation(s *statevec.State) (float64, error) {
	for q := range t.Ops {
		if q < 0 || q >= s.NumQubits() {
			return 0, fmt.Errorf("observable: qubit %d out of range for %d-qubit state", q, s.NumQubits())
		}
	}
	if len(t.Ops) == 0 {
		return t.Coef, nil // identity term
	}
	work := s
	var mask uint64
	needRotation := false
	for _, p := range t.Ops {
		if p != Z {
			needRotation = true
		}
	}
	if needRotation {
		work = s.Clone()
	}
	for q, p := range t.Ops {
		mask |= 1 << uint(q)
		switch p {
		case X:
			// X = H Z H: rotate into the Z basis.
			work.ApplyMat1(q, gate.Matrix1(gate.H, nil))
		case Y:
			// Y = (S H)† Z (S H)... rotate with S† then H.
			work.ApplyMat1(q, gate.Matrix1(gate.Sdg, nil))
			work.ApplyMat1(q, gate.Matrix1(gate.H, nil))
		}
	}
	var acc float64
	amps := work.Amplitudes()
	for i, a := range amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if bits.OnesCount64(uint64(i)&mask)&1 == 1 {
			acc -= p
		} else {
			acc += p
		}
	}
	return t.Coef * acc, nil
}

// Hamiltonian is a sum of terms over NumQubits qubits.
type Hamiltonian struct {
	NumQubits int
	Terms     []Term
}

// Add appends a term.
func (h *Hamiltonian) Add(t Term) { h.Terms = append(h.Terms, t) }

// String joins the terms.
func (h *Hamiltonian) String() string {
	parts := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// Expectation evaluates every term sequentially.
func (h *Hamiltonian) Expectation(s *statevec.State) (float64, error) {
	var acc float64
	for _, t := range h.Terms {
		v, err := t.Expectation(s)
		if err != nil {
			return 0, err
		}
		acc += v
	}
	return acc, nil
}

// Partition splits the term list into k balanced groups (round-robin),
// the "distinct Hamiltonians" of Fig. 2c.
func (h *Hamiltonian) Partition(k int) [][]Term {
	if k < 1 {
		k = 1
	}
	if k > len(h.Terms) && len(h.Terms) > 0 {
		k = len(h.Terms)
	}
	groups := make([][]Term, k)
	for i, t := range h.Terms {
		groups[i%k] = append(groups[i%k], t)
	}
	return groups
}

// ExpectationParallel partitions the Hamiltonian over `devices`
// concurrent evaluators, each working on its own clone of the state —
// the multi-device Hamiltonian evaluation mode. The result is
// identical to Expectation up to floating-point summation order, which
// is kept deterministic by accumulating per-group then in group order.
func (h *Hamiltonian) ExpectationParallel(s *statevec.State, devices int) (float64, error) {
	groups := h.Partition(devices)
	partial := make([]float64, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi, grp := range groups {
		wg.Add(1)
		go func(gi int, grp []Term) {
			defer wg.Done()
			local := s.Clone() // device-private copy
			var acc float64
			for _, t := range grp {
				v, err := t.Expectation(local)
				if err != nil {
					errs[gi] = err
					return
				}
				acc += v
			}
			partial[gi] = acc
		}(gi, grp)
	}
	wg.Wait()
	var acc float64
	for gi := range groups {
		if errs[gi] != nil {
			return 0, errs[gi]
		}
		acc += partial[gi]
	}
	return acc, nil
}

// TransverseFieldIsing builds the n-qubit TFIM chain
// H = -J Σ Z_i Z_{i+1} - g Σ X_i, a standard VQA-era benchmark
// Hamiltonian for the partition mode.
func TransverseFieldIsing(n int, j, g float64) *Hamiltonian {
	h := &Hamiltonian{NumQubits: n}
	for i := 0; i+1 < n; i++ {
		h.Add(NewTerm(-j, map[int]Pauli{i: Z, i + 1: Z}))
	}
	for i := 0; i < n; i++ {
		h.Add(NewTerm(-g, map[int]Pauli{i: X}))
	}
	return h
}
