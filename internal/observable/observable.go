// Package observable implements Pauli-string observables and
// Hamiltonian partitioning — the workload structure behind the paper's
// Fig. 2c large-circuit mode, where "the simulation process partitions
// them into distinct Hamiltonians ... distributed across multiple
// hardware resources, thereby enabling efficient parallelization".
//
// A Hamiltonian is a real-weighted sum of Pauli strings. Expectation
// values are evaluated directly against the resident state vector
// (statevec.PauliEvaluator): no clone, no basis-rotation sweeps, no
// materialization of a pending qubit permutation, and only the
// affected index half enumerated per term. Partition splits the term
// list into balanced groups, and ExpectationParallel evaluates terms
// concurrently across simulated devices with a bit-identical result.
package observable

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"qgear/internal/cancel"
	"qgear/internal/statevec"
)

// Pauli is a single-qubit Pauli factor.
type Pauli uint8

// Pauli factors (I is implied by absence).
const (
	X Pauli = iota + 1
	Y
	Z
)

func (p Pauli) String() string {
	switch p {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return "I"
}

// Term is one weighted Pauli string, stored sparsely as qubit→factor.
type Term struct {
	Coef float64
	Ops  map[int]Pauli
}

// NewTerm builds a term from (qubit, factor) pairs.
func NewTerm(coef float64, factors map[int]Pauli) Term {
	ops := make(map[int]Pauli, len(factors))
	for q, p := range factors {
		ops[q] = p
	}
	return Term{Coef: coef, Ops: ops}
}

// String renders e.g. "0.5·Z0Z2".
func (t Term) String() string {
	if len(t.Ops) == 0 {
		return fmt.Sprintf("%g·I", t.Coef)
	}
	qs := make([]int, 0, len(t.Ops))
	for q := range t.Ops {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	var b strings.Builder
	fmt.Fprintf(&b, "%g·", t.Coef)
	for _, q := range qs {
		fmt.Fprintf(&b, "%s%d", t.Ops[q], q)
	}
	return b.String()
}

// Masks returns the term's X/Y/Z qubit bit-masks over an n-qubit
// register — the representation the direct evaluators (statevec,
// mgpu) consume. The masks are disjoint by construction (one factor
// per qubit).
func (t Term) Masks(n int) (xm, ym, zm uint64, err error) {
	for q, p := range t.Ops {
		if q < 0 || q >= n {
			return 0, 0, 0, fmt.Errorf("observable: qubit %d out of range for %d-qubit register", q, n)
		}
		bit := uint64(1) << uint(q)
		switch p {
		case X:
			xm |= bit
		case Y:
			ym |= bit
		case Z:
			zm |= bit
		default:
			return 0, 0, 0, fmt.Errorf("observable: invalid pauli factor %d on qubit %d", p, q)
		}
	}
	return xm, ym, zm, nil
}

// Expectation computes <ψ|T|ψ> directly on the resident state — s is
// read, never modified (no clone, no rotation sweeps; a pending qubit
// permutation is translated, not materialized).
func (t Term) Expectation(s *statevec.State) (float64, error) {
	v, _, err := t.expectationOn(s.PauliEvaluator(), s.NumQubits())
	return v, err
}

// expectationOn evaluates the term through a shared evaluator,
// returning the coefficient-weighted value and the enumerated index
// count (the stride-iteration invariant the regression tests pin:
// non-identity terms visit exactly half the state).
func (t Term) expectationOn(ev *statevec.PauliEvaluator, n int) (float64, int, error) {
	xm, ym, zm, err := t.Masks(n)
	if err != nil {
		return 0, 0, err
	}
	val, visited, err := ev.ExpPauli(xm, ym, zm)
	if err != nil {
		return 0, 0, err
	}
	return t.Coef * val, visited, nil
}

// Hamiltonian is a sum of terms over NumQubits qubits.
type Hamiltonian struct {
	NumQubits int
	Terms     []Term
}

// Add appends a term.
func (h *Hamiltonian) Add(t Term) { h.Terms = append(h.Terms, t) }

// Clone returns a deep copy sharing no maps with h, so a caller
// mutating its Hamiltonian after submission cannot poison a server's
// content-addressed caches.
func (h *Hamiltonian) Clone() *Hamiltonian {
	c := &Hamiltonian{NumQubits: h.NumQubits, Terms: make([]Term, len(h.Terms))}
	for i, t := range h.Terms {
		c.Terms[i] = NewTerm(t.Coef, t.Ops)
	}
	return c
}

// Validate checks that every term stays inside the declared register,
// uses only X/Y/Z factors, and carries a finite coefficient (NaN or
// Inf would poison content hashes and cached sums).
func (h *Hamiltonian) Validate() error {
	if h.NumQubits < 0 || h.NumQubits > 64 {
		return fmt.Errorf("observable: invalid qubit count %d", h.NumQubits)
	}
	for i, t := range h.Terms {
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			return fmt.Errorf("observable: term %d has non-finite coefficient %v", i, t.Coef)
		}
		if _, _, _, err := t.Masks(h.NumQubits); err != nil {
			return fmt.Errorf("observable: term %d: %w", i, err)
		}
	}
	return nil
}

// String joins the terms.
func (h *Hamiltonian) String() string {
	parts := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// Expectation evaluates every term sequentially against one shared
// evaluator (one index-table build for all terms), accumulating in
// term order.
func (h *Hamiltonian) Expectation(s *statevec.State) (float64, error) {
	return h.ExpectationCancel(s, nil)
}

// ExpectationCancel is Expectation with a cooperative cancellation
// flag, polled once per Pauli term — each term is a full pass over the
// state, so that is the natural unit of interruptible work. A nil flag
// never trips.
func (h *Hamiltonian) ExpectationCancel(s *statevec.State, flag *cancel.Flag) (float64, error) {
	ev := s.PauliEvaluator()
	var acc float64
	for i, t := range h.Terms {
		if err := flag.Err(); err != nil {
			return 0, fmt.Errorf("observable: term %d: %w", i, err)
		}
		v, _, err := t.expectationOn(ev, s.NumQubits())
		if err != nil {
			return 0, err
		}
		acc += v
	}
	return acc, nil
}

// Partition splits the term list into k balanced groups (round-robin),
// the "distinct Hamiltonians" of Fig. 2c.
func (h *Hamiltonian) Partition(k int) [][]Term {
	if k < 1 {
		k = 1
	}
	if k > len(h.Terms) && len(h.Terms) > 0 {
		k = len(h.Terms)
	}
	groups := make([][]Term, k)
	for i, t := range h.Terms {
		groups[i%k] = append(groups[i%k], t)
	}
	return groups
}

// ExpectationParallel partitions the Hamiltonian's terms over
// `devices` concurrent evaluators — the multi-device Hamiltonian
// evaluation mode. Direct evaluation is read-only, so every device
// works against the one resident state (no per-device clones), and
// per-term values land in a slice that is then summed in term order:
// the result is bit-identical to Expectation for any device count.
func (h *Hamiltonian) ExpectationParallel(s *statevec.State, devices int) (float64, error) {
	return h.ExpectationParallelCancel(s, devices, nil)
}

// ExpectationParallelCancel is ExpectationParallel with a cooperative
// cancellation flag: every striped evaluator polls it per term and
// abandons its remaining stripe once tripped, so the whole sweep stops
// within one term per device. A nil flag never trips.
func (h *Hamiltonian) ExpectationParallelCancel(s *statevec.State, devices int, flag *cancel.Flag) (float64, error) {
	if devices < 1 {
		devices = 1
	}
	if devices > len(h.Terms) && len(h.Terms) > 0 {
		devices = len(h.Terms)
	}
	ev := s.PauliEvaluator()
	n := s.NumQubits()
	vals := make([]float64, len(h.Terms))
	errs := make([]error, len(h.Terms))
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := d; i < len(h.Terms); i += devices {
				if err := flag.Err(); err != nil {
					errs[i] = fmt.Errorf("observable: term %d: %w", i, err)
					return
				}
				vals[i], _, errs[i] = h.Terms[i].expectationOn(ev, n)
			}
		}(d)
	}
	wg.Wait()
	var acc float64
	for i := range h.Terms {
		if errs[i] != nil {
			return 0, errs[i]
		}
		acc += vals[i]
	}
	return acc, nil
}

// TransverseFieldIsing builds the n-qubit TFIM chain
// H = -J Σ Z_i Z_{i+1} - g Σ X_i, a standard VQA-era benchmark
// Hamiltonian for the partition mode.
func TransverseFieldIsing(n int, j, g float64) *Hamiltonian {
	h := &Hamiltonian{NumQubits: n}
	for i := 0; i+1 < n; i++ {
		h.Add(NewTerm(-j, map[int]Pauli{i: Z, i + 1: Z}))
	}
	for i := 0; i < n; i++ {
		h.Add(NewTerm(-g, map[int]Pauli{i: X}))
	}
	return h
}
