package observable

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Content addressing for Hamiltonians. The serving layer caches
// expectation results by (circuit fingerprint, hamiltonian hash,
// option signature), so the hash must identify the *operator*, not
// one spelling of it: two Hamiltonians built in different term order,
// with factor maps populated in different iteration order, or via Add
// versus literal construction, are the same operator and must collide;
// any change to a coefficient bit pattern or a Pauli assignment is a
// different operator and must not.

// fingerprintVersion tags the canonical encoding; bump it if the term
// serialization ever changes so stale cache keys cannot alias.
const fingerprintVersion = "hamv1"

// canonicalKey renders the term in a spelling-independent form: the
// exact coefficient bits followed by (qubit, factor) pairs in
// ascending qubit order. Map iteration order therefore cannot leak
// into the encoding.
func (t Term) canonicalKey() string {
	qs := make([]int, 0, len(t.Ops))
	for q := range t.Ops {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	var b strings.Builder
	fmt.Fprintf(&b, "%016x", math.Float64bits(t.Coef))
	for _, q := range qs {
		fmt.Fprintf(&b, "|%d%s", q, t.Ops[q])
	}
	return b.String()
}

// Fingerprint returns the canonical content hash of the Hamiltonian:
// invariant under term reordering and factor-map iteration order,
// exact in coefficients (IEEE-754 bit patterns, never a formatted
// approximation) and in every Pauli assignment. Duplicate terms are
// preserved, not merged — T + T hashes differently from 2·T, matching
// what the evaluator actually sums.
func (h *Hamiltonian) Fingerprint() string {
	encs := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		encs[i] = t.canonicalKey()
	}
	sort.Strings(encs)
	hash := sha256.New()
	fmt.Fprintf(hash, "%s|n%d|t%d\n", fingerprintVersion, h.NumQubits, len(h.Terms))
	for _, e := range encs {
		hash.Write([]byte(e))
		hash.Write([]byte{'\n'})
	}
	return hex.EncodeToString(hash.Sum(nil))
}
