package qasm

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/qmath"
)

func normalize(c *circuit.Circuit) *circuit.Circuit {
	out := c.Copy()
	for i := range out.Ops {
		if len(out.Ops[i].Qubits) == 0 {
			out.Ops[i].Qubits = nil
		}
		if len(out.Ops[i].Params) == 0 {
			out.Ops[i].Params = nil
		}
	}
	return out
}

func TestExportKnownProgram(t *testing.T) {
	c := circuit.New(2, 2)
	c.Name = "bell"
	c.H(0).CX(0, 1).Barrier().Measure(0, 0).Measure(1, 1)
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"OPENQASM 2.0;",
		`include "qelib1.inc";`,
		"// circuit: bell",
		"qreg q[2];",
		"creg c[2];",
		"h q[0];",
		"cx q[0],q[1];",
		"barrier q;",
		"measure q[0] -> c[0];",
		"measure q[1] -> c[1];",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("export missing %q in:\n%s", want, src)
		}
	}
}

func TestRoundTripAllGates(t *testing.T) {
	c := circuit.New(3, 3)
	c.Name = "allgates"
	c.H(0).X(1).Y(2).Z(0).S(1).T(2)
	c.Append(gate.Sdg, []int{0}, nil)
	c.Append(gate.Tdg, []int{1}, nil)
	c.Append(gate.I, []int{2}, nil)
	c.RX(0.25, 0).RY(-1.5, 1).RZ(math.Pi/3, 2).P(2.75, 0)
	c.U3(0.1, 0.2, 0.3, 1)
	c.CX(0, 1).CZ(1, 2).CP(0.625, 2, 0).CRY(-0.875, 0, 2).SWAP(1, 2)
	c.Barrier().Measure(2, 1)
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	if !reflect.DeepEqual(normalize(c), normalize(back)) {
		t.Fatalf("round trip differs:\nwant %+v\ngot  %+v", c, back)
	}
}

func TestRoundTripExactAngles(t *testing.T) {
	// Angles must survive bit-exactly through %.17g.
	angles := []float64{math.Pi, -math.Pi / 7, 1e-17, 0.1 + 0.2, 2.000000000000004}
	c := circuit.New(1, 0)
	for _, a := range angles {
		c.RY(a, 0)
	}
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range angles {
		if back.Ops[i].Params[0] != a {
			t.Fatalf("angle %d: %v != %v", i, back.Ops[i].Params[0], a)
		}
	}
}

func TestParsePiExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
ry(pi) q[0];
ry(pi/2) q[0];
ry(-pi/4) q[1];
ry(2*pi) q[1];
cu1(3*pi/8) q[0],q[1];
ry(0.5) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi, math.Pi / 2, -math.Pi / 4, 2 * math.Pi, 3 * math.Pi / 8, 0.5}
	for i, w := range want {
		if math.Abs(c.Ops[i].Params[0]-w) > 1e-15 {
			t.Fatalf("op %d angle %g, want %g", i, c.Ops[i].Params[0], w)
		}
	}
}

func TestParseQiskitAliases(t *testing.T) {
	src := "OPENQASM 2.0;\nqreg q[2];\np(0.5) q[0];\ncp(0.25) q[0],q[1];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops[0].Gate != gate.P || c.Ops[1].Gate != gate.CP {
		t.Fatalf("alias parsing wrong: %v %v", c.Ops[0].Gate, c.Ops[1].Gate)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad version":       "OPENQASM 3.0;\nqreg q[1];\n",
		"no qreg":           "OPENQASM 2.0;\nh q[0];\n",
		"missing semicolon": "OPENQASM 2.0;\nqreg q[1]\n",
		"unknown gate":      "OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n",
		"bad arity":         "OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n",
		"bad params":        "OPENQASM 2.0;\nqreg q[1];\nry q[0];\n",
		"bad index":         "OPENQASM 2.0;\nqreg q[1];\nh q[x];\n",
		"out of range":      "OPENQASM 2.0;\nqreg q[1];\nh q[5];\n",
		"bad measure":       "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure q[0];\n",
		"bad angle":         "OPENQASM 2.0;\nqreg q[1];\nry(banana) q[0];\n",
		"div by zero":       "OPENQASM 2.0;\nqreg q[1];\nry(pi/0) q[0];\n",
		"unterminated":      "OPENQASM 2.0;\nqreg q[1];\nry(0.5 q[0];\n",
		"bad qreg":          "OPENQASM 2.0;\nqreg r[1];\n",
		"empty":             "",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestExportRejectsInvalid(t *testing.T) {
	bad := &circuit.Circuit{NumQubits: 1, Ops: []circuit.Op{{Gate: gate.H, Qubits: []int{7}}}}
	if _, err := Export(bad); err == nil {
		t.Fatal("invalid circuit exported")
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	r := qmath.NewRNG(321)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		c := circuit.New(n, n)
		c.Name = "prop"
		for i := 0; i < r.Intn(40); i++ {
			q := r.Intn(n)
			q2 := (q + 1 + r.Intn(n-1)) % n
			switch r.Intn(7) {
			case 0:
				c.H(q)
			case 1:
				c.RY(r.Angle(), q)
			case 2:
				c.CX(q, q2)
			case 3:
				c.CP(r.Angle(), q, q2)
			case 4:
				c.U3(r.Angle(), r.Angle(), r.Angle(), q)
			case 5:
				c.Barrier()
			case 6:
				c.Measure(q, r.Intn(n))
			}
		}
		src, err := Export(c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(c), normalize(back)) {
			t.Fatalf("trial %d: round trip differs", trial)
		}
	}
}

func TestEmptyCircuitRoundTrip(t *testing.T) {
	c := circuit.New(3, 0)
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQubits != 3 || len(back.Ops) != 0 {
		t.Fatal("empty circuit round trip failed")
	}
}
