// Package qasm implements OpenQASM 2.0 export and import for the
// circuit layer — the textual interchange format of the Qiskit
// ecosystem the paper's pipeline lives in (its ref. [19] is the Qiskit
// OpenQASM backend specification). The supported subset covers every
// gate this repository's workloads emit; angles serialize as exact
// float64 literals and parse with pi-expression support (pi/2, 2*pi,
// -pi/4 ...), so export→import round-trips bit-exactly.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"qgear/internal/circuit"
	"qgear/internal/gate"
)

// qasmNames maps gate types to their qelib1 spellings.
var qasmNames = map[gate.Type]string{
	gate.I: "id", gate.H: "h", gate.X: "x", gate.Y: "y", gate.Z: "z",
	gate.S: "s", gate.Sdg: "sdg", gate.T: "t", gate.Tdg: "tdg",
	gate.RX: "rx", gate.RY: "ry", gate.RZ: "rz", gate.P: "u1",
	gate.U3: "u3", gate.CX: "cx", gate.CZ: "cz", gate.CP: "cu1",
	gate.CRY: "cry", gate.SWAP: "swap",
}

var nameToGate = func() map[string]gate.Type {
	m := make(map[string]gate.Type, len(qasmNames))
	for g, n := range qasmNames {
		m[n] = g
	}
	// Qiskit aliases.
	m["p"] = gate.P
	m["cp"] = gate.CP
	return m
}()

// Export renders the circuit as an OpenQASM 2.0 program.
func Export(c *circuit.Circuit) (string, error) {
	if err := c.Validate(); err != nil {
		return "", fmt.Errorf("qasm: %w", err)
	}
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if c.Name != "" {
		fmt.Fprintf(&b, "// circuit: %s\n", c.Name)
	}
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	if c.NumClbits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumClbits)
	}
	for _, op := range c.Ops {
		switch op.Gate {
		case gate.Barrier:
			b.WriteString("barrier q;\n")
		case gate.Measure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", op.Qubits[0], op.Clbit)
		default:
			name, ok := qasmNames[op.Gate]
			if !ok {
				return "", fmt.Errorf("qasm: no OpenQASM spelling for %v", op.Gate)
			}
			b.WriteString(name)
			if len(op.Params) > 0 {
				b.WriteString("(")
				for i, p := range op.Params {
					if i > 0 {
						b.WriteString(",")
					}
					// %.17g preserves float64 exactly.
					fmt.Fprintf(&b, "%.17g", p)
				}
				b.WriteString(")")
			}
			b.WriteString(" ")
			for i, q := range op.Qubits {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "q[%d]", q)
			}
			b.WriteString(";\n")
		}
	}
	return b.String(), nil
}

// Parse reads an OpenQASM 2.0 program in the exported subset back into
// a circuit.
func Parse(src string) (*circuit.Circuit, error) {
	var c *circuit.Circuit
	name := ""
	nq, nc := -1, 0
	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		line := rawLine
		if i := strings.Index(line, "//"); i >= 0 {
			if strings.HasPrefix(strings.TrimSpace(line[i+2:]), "circuit:") {
				name = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line[i+2:]), "circuit:"))
			}
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			return nil, fmt.Errorf("qasm: line %d: missing semicolon: %q", lineNo, line)
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(line, ";"))
		switch {
		case strings.HasPrefix(stmt, "OPENQASM"):
			if !strings.Contains(stmt, "2.0") {
				return nil, fmt.Errorf("qasm: line %d: unsupported version %q", lineNo, stmt)
			}
		case strings.HasPrefix(stmt, "include"):
			// qelib1.inc is implied.
		case strings.HasPrefix(stmt, "qreg"):
			n, err := parseReg(stmt, "qreg", "q")
			if err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
			nq = n
		case strings.HasPrefix(stmt, "creg"):
			n, err := parseReg(stmt, "creg", "c")
			if err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
			nc = n
		default:
			if nq < 0 {
				return nil, fmt.Errorf("qasm: line %d: gate before qreg declaration", lineNo)
			}
			if c == nil {
				c = &circuit.Circuit{Name: name, NumQubits: nq, NumClbits: nc}
			}
			if err := parseOp(c, stmt); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
		}
	}
	if c == nil {
		if nq < 0 {
			return nil, fmt.Errorf("qasm: no qreg declaration found")
		}
		c = &circuit.Circuit{Name: name, NumQubits: nq, NumClbits: nc}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("qasm: parsed circuit invalid: %w", err)
	}
	return c, nil
}

func parseReg(stmt, keyword, reg string) (int, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, keyword))
	if !strings.HasPrefix(rest, reg+"[") || !strings.HasSuffix(rest, "]") {
		return 0, fmt.Errorf("malformed %s: %q (only register %q supported)", keyword, stmt, reg)
	}
	n, err := strconv.Atoi(rest[len(reg)+1 : len(rest)-1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s size in %q", keyword, stmt)
	}
	return n, nil
}

func parseOp(c *circuit.Circuit, stmt string) error {
	if stmt == "barrier q" {
		c.Ops = append(c.Ops, circuit.Op{Gate: gate.Barrier})
		return nil
	}
	if strings.HasPrefix(stmt, "measure") {
		parts := strings.Split(strings.TrimSpace(strings.TrimPrefix(stmt, "measure")), "->")
		if len(parts) != 2 {
			return fmt.Errorf("malformed measure %q", stmt)
		}
		q, err := parseIndex(strings.TrimSpace(parts[0]), "q")
		if err != nil {
			return err
		}
		cb, err := parseIndex(strings.TrimSpace(parts[1]), "c")
		if err != nil {
			return err
		}
		c.Ops = append(c.Ops, circuit.Op{Gate: gate.Measure, Qubits: []int{q}, Clbit: cb})
		return nil
	}

	// "<name>[(params)] q[i][,q[j]]"
	nameEnd := strings.IndexAny(stmt, "( ")
	if nameEnd < 0 {
		return fmt.Errorf("malformed statement %q", stmt)
	}
	gname := stmt[:nameEnd]
	g, ok := nameToGate[gname]
	if !ok {
		return fmt.Errorf("unsupported gate %q", gname)
	}
	rest := stmt[nameEnd:]
	var params []float64
	if strings.HasPrefix(rest, "(") {
		close := strings.Index(rest, ")")
		if close < 0 {
			return fmt.Errorf("unterminated parameter list in %q", stmt)
		}
		for _, ps := range strings.Split(rest[1:close], ",") {
			v, err := evalAngle(strings.TrimSpace(ps))
			if err != nil {
				return err
			}
			params = append(params, v)
		}
		rest = rest[close+1:]
	}
	var qubits []int
	for _, qs := range strings.Split(strings.TrimSpace(rest), ",") {
		q, err := parseIndex(strings.TrimSpace(qs), "q")
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
	}
	if len(qubits) != g.Arity() {
		return fmt.Errorf("%s wants %d qubits, got %d", gname, g.Arity(), len(qubits))
	}
	if len(params) != g.ParamCount() {
		return fmt.Errorf("%s wants %d params, got %d", gname, g.ParamCount(), len(params))
	}
	c.Ops = append(c.Ops, circuit.Op{Gate: g, Qubits: qubits, Params: params})
	return nil
}

func parseIndex(s, reg string) (int, error) {
	if !strings.HasPrefix(s, reg+"[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("malformed operand %q", s)
	}
	n, err := strconv.Atoi(s[len(reg)+1 : len(s)-1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad index in %q", s)
	}
	return n, nil
}

// evalAngle evaluates the pi-expression subset QASM angles use:
// optional sign, factors of numbers and "pi" joined by * and /.
func evalAngle(expr string) (float64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, fmt.Errorf("empty angle expression")
	}
	sign := 1.0
	for strings.HasPrefix(expr, "-") || strings.HasPrefix(expr, "+") {
		if expr[0] == '-' {
			sign = -sign
		}
		expr = strings.TrimSpace(expr[1:])
	}
	// Split into factors keeping the operators.
	val := 0.0
	first := true
	op := byte('*')
	start := 0
	apply := func(tok string) error {
		tok = strings.TrimSpace(tok)
		var f float64
		switch {
		case tok == "pi":
			f = math.Pi
		default:
			var err error
			f, err = strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("bad angle token %q", tok)
			}
		}
		if first {
			val = f
			first = false
			return nil
		}
		switch op {
		case '*':
			val *= f
		case '/':
			if f == 0 {
				return fmt.Errorf("division by zero in angle")
			}
			val /= f
		}
		return nil
	}
	for i := 0; i < len(expr); i++ {
		if expr[i] == '*' || expr[i] == '/' {
			if err := apply(expr[start:i]); err != nil {
				return 0, err
			}
			op = expr[i]
			start = i + 1
		}
	}
	if err := apply(expr[start:]); err != nil {
		return 0, err
	}
	return sign * val, nil
}
