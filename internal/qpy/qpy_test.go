package qpy

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/qmath"
)

func sampleCircuits() []*circuit.Circuit {
	ghz := circuit.GHZ(4, true)
	params := circuit.New(3, 1)
	params.Name = "parametrized"
	params.RY(0.123456789, 0).RZ(-math.Pi, 1).CP(2.5, 0, 2).U3(1, 2, 3, 1).Barrier().Measure(2, 0)
	empty := circuit.New(0, 0)
	empty.Name = "empty"
	return []*circuit.Circuit{ghz, params, empty}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleCircuits()
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("count %d != %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(normalize(want[i]), normalize(got[i])) {
			t.Errorf("circuit %d differs:\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

// normalize maps nil and empty slices to a comparable form.
func normalize(c *circuit.Circuit) *circuit.Circuit {
	out := c.Copy()
	for i := range out.Ops {
		if len(out.Ops[i].Qubits) == 0 {
			out.Ops[i].Qubits = nil
		}
		if len(out.Ops[i].Params) == 0 {
			out.Ops[i].Params = nil
		}
	}
	return out
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "circuits.qpy")
	want := sampleCircuits()
	if err := SaveFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Name != want[0].Name {
		t.Fatal("file round trip failed")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/x.qpy"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCircuits()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] = 'X'
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCircuits()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a payload byte mid-file (beyond magic, before checksum).
	data[len(data)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleCircuits()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, len(data) / 2, len(data) - 2} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestRejectsInvalidCircuitOnWrite(t *testing.T) {
	bad := &circuit.Circuit{NumQubits: 1, Ops: []circuit.Op{{Gate: gate.H, Qubits: []int{5}}}}
	var buf bytes.Buffer
	if err := Write(&buf, []*circuit.Circuit{bad}); err == nil {
		t.Fatal("invalid circuit serialized")
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Version field sits right after the magic.
	data[len(magic)] = 99
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestEmptyList(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expected empty list")
	}
}

func TestRandomCircuitsRoundTripProperty(t *testing.T) {
	f := func(seed uint32, nOps8 uint8) bool {
		r := qmath.NewRNG(uint64(seed))
		n := 2 + r.Intn(6)
		c := circuit.New(n, n)
		ops := int(nOps8 % 64)
		for i := 0; i < ops; i++ {
			q := r.Intn(n)
			q2 := (q + 1 + r.Intn(n-1)) % n
			switch r.Intn(5) {
			case 0:
				c.H(q)
			case 1:
				c.RY(r.Float64()*10-5, q)
			case 2:
				c.CX(q, q2)
			case 3:
				c.CP(r.Float64(), q, q2)
			case 4:
				c.Measure(q, r.Intn(n))
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, []*circuit.Circuit{c}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return reflect.DeepEqual(normalize(c), normalize(got[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
