// Package qpy implements a binary circuit serialization format filling
// the role Qiskit's QPY files play in the paper's pipeline (Fig. 2c:
// "Qiskit Circuit → Save QPY → Read QPY → Transformation → CudaQuantum
// Kernels"): the workload generator persists circuit lists, and the
// transformer reads them back in a separate process.
//
// The format is versioned, length-prefixed, and CRC-32 protected:
//
//	magic "QGQPY1\n" | version u16 | count u32
//	per circuit: name | nqubits u32 | nclbits u32 | nops u32 | ops…
//	per op: gate u8 | nqubits u8 | qubit u32… | nparams u8 | param f64… | clbit i32
//	crc32 (IEEE) of everything after the magic
//
// All integers are little-endian.
package qpy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"qgear/internal/circuit"
	"qgear/internal/gate"
)

// Version is the current format version.
const Version uint16 = 1

var magic = []byte("QGQPY1\n")

// limits guard against corrupt headers allocating absurd buffers.
const (
	maxCircuits   = 1 << 24
	maxOps        = 1 << 28
	maxNameLength = 1 << 16
)

type countingWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

// Write serializes circuits to w.
func Write(w io.Writer, circuits []*circuit.Circuit) error {
	for _, c := range circuits {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("qpy: refusing to serialize invalid circuit: %w", err)
		}
		if len(c.Name) > maxNameLength {
			return fmt.Errorf("qpy: circuit name longer than %d bytes", maxNameLength)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	cw := &countingWriter{w: bw, crc: crc32.NewIEEE()}
	if err := writeAll(cw, circuits); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	return nil
}

func writeAll(w io.Writer, circuits []*circuit.Circuit) error {
	if err := writeU16(w, Version); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(circuits))); err != nil {
		return err
	}
	for _, c := range circuits {
		if err := writeString(w, c.Name); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.NumQubits)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.NumClbits)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(c.Ops))); err != nil {
			return err
		}
		for _, op := range c.Ops {
			if err := writeOp(w, op); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeOp(w io.Writer, op circuit.Op) error {
	if _, err := w.Write([]byte{byte(op.Gate), byte(len(op.Qubits))}); err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	for _, q := range op.Qubits {
		if err := writeU32(w, uint32(q)); err != nil {
			return err
		}
	}
	if _, err := w.Write([]byte{byte(len(op.Params))}); err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	for _, p := range op.Params {
		if err := writeU64(w, math.Float64bits(p)); err != nil {
			return err
		}
	}
	return writeU32(w, uint32(int32(op.Clbit)))
}

// Read deserializes a circuit list from r, verifying magic, version and
// checksum, and validating every decoded circuit.
func Read(r io.Reader) ([]*circuit.Circuit, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("qpy: reading magic: %w", err)
	}
	for i := range magic {
		if got[i] != magic[i] {
			return nil, fmt.Errorf("qpy: bad magic %q", got)
		}
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)

	version, err := readU16(tr)
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("qpy: unsupported version %d (have %d)", version, Version)
	}
	count, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	if count > maxCircuits {
		return nil, fmt.Errorf("qpy: implausible circuit count %d", count)
	}
	circuits := make([]*circuit.Circuit, 0, count)
	for ci := uint32(0); ci < count; ci++ {
		c, err := readCircuit(tr)
		if err != nil {
			return nil, fmt.Errorf("qpy: circuit %d: %w", ci, err)
		}
		circuits = append(circuits, c)
	}
	wantSum := crc.Sum32()
	gotSum, err := readU32(br) // checksum itself is not part of the CRC
	if err != nil {
		return nil, fmt.Errorf("qpy: reading checksum: %w", err)
	}
	if gotSum != wantSum {
		return nil, fmt.Errorf("qpy: checksum mismatch: file says %08x, payload hashes to %08x", gotSum, wantSum)
	}
	for _, c := range circuits {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("qpy: decoded circuit invalid: %w", err)
		}
	}
	return circuits, nil
}

func readCircuit(r io.Reader) (*circuit.Circuit, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	nq, err := readU32(r)
	if err != nil {
		return nil, err
	}
	nc, err := readU32(r)
	if err != nil {
		return nil, err
	}
	nops, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nops > maxOps {
		return nil, fmt.Errorf("implausible op count %d", nops)
	}
	c := &circuit.Circuit{Name: name, NumQubits: int(nq), NumClbits: int(nc)}
	c.Ops = make([]circuit.Op, 0, nops)
	for i := uint32(0); i < nops; i++ {
		op, err := readOp(r)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		c.Ops = append(c.Ops, op)
	}
	return c, nil
}

func readOp(r io.Reader) (circuit.Op, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return circuit.Op{}, err
	}
	op := circuit.Op{Gate: gate.Type(hdr[0])}
	nq := int(hdr[1])
	if nq > 0 {
		op.Qubits = make([]int, nq)
		for i := range op.Qubits {
			v, err := readU32(r)
			if err != nil {
				return op, err
			}
			op.Qubits[i] = int(v)
		}
	}
	var np [1]byte
	if _, err := io.ReadFull(r, np[:]); err != nil {
		return op, err
	}
	if n := int(np[0]); n > 0 {
		op.Params = make([]float64, n)
		for i := range op.Params {
			v, err := readU64(r)
			if err != nil {
				return op, err
			}
			op.Params[i] = math.Float64frombits(v)
		}
	}
	cb, err := readU32(r)
	if err != nil {
		return op, err
	}
	op.Clbit = int(int32(cb))
	return op, nil
}

// SaveFile writes circuits to a file path.
func SaveFile(path string, circuits []*circuit.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	if err := Write(f, circuits); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads circuits from a file path.
func LoadFile(path string) ([]*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qpy: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func writeU16(w io.Writer, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	_, err := w.Write(b[:])
	if err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	if err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	return nil
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	if err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	if err != nil {
		return fmt.Errorf("qpy: %w", err)
	}
	return nil
}

func readU16(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("qpy: %w", err)
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("qpy: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("qpy: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxNameLength {
		return "", fmt.Errorf("qpy: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("qpy: %w", err)
	}
	return string(buf), nil
}
