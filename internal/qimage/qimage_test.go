package qimage

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestPaperDimensions(t *testing.T) {
	want := map[string][2]int{
		"finger": {64, 80}, "shoes": {128, 128},
		"building": {192, 128}, "zebra": {384, 256},
	}
	for _, name := range PaperImageNames() {
		w, h, err := PaperDimensions(name)
		if err != nil {
			t.Fatal(err)
		}
		if w != want[name][0] || h != want[name][1] {
			t.Errorf("%s: %dx%d", name, w, h)
		}
	}
	if _, _, err := PaperDimensions("cat"); err == nil {
		t.Fatal("unknown image accepted")
	}
}

func TestSyntheticAllKinds(t *testing.T) {
	for _, name := range PaperImageNames() {
		w, h, err := PaperDimensions(name)
		if err != nil {
			t.Fatal(err)
		}
		im, err := Synthetic(name, w, h, 1)
		if err != nil {
			t.Fatal(err)
		}
		if im.Pixels() != w*h {
			t.Fatalf("%s: %d pixels", name, im.Pixels())
		}
		var mn, mx float64 = 1, -1
		for _, v := range im.Pix {
			if v < -1 || v > 1 {
				t.Fatalf("%s: pixel %g outside [-1,1]", name, v)
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		// Real structure: the image must use a good part of the range.
		if mx-mn < 0.5 {
			t.Fatalf("%s: dynamic range %g too flat", name, mx-mn)
		}
	}
	if _, err := Synthetic("cat", 8, 8, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Synthetic("zebra", 0, 5, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, err := Synthetic("finger", 32, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic("finger", 32, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed, different image")
		}
	}
	c, err := Synthetic("finger", 32, 32, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, identical image")
	}
}

func TestAtSetClamp(t *testing.T) {
	im, err := New("t", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	im.Set(2, 1, 0.5)
	if im.At(2, 1) != 0.5 {
		t.Fatal("At/Set broken")
	}
	im.Set(0, 0, 7)
	if im.At(0, 0) != 1 {
		t.Fatal("clamp high broken")
	}
	im.Set(0, 0, -7)
	if im.At(0, 0) != -1 {
		t.Fatal("clamp low broken")
	}
}

func TestCompareMetrics(t *testing.T) {
	a, err := Synthetic("zebra", 48, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect reconstruction.
	m, err := Compare(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE != 0 || m.RMSE != 0 || m.MaxAbsErr != 0 {
		t.Fatalf("self-compare metrics %+v", m)
	}
	if math.Abs(m.Correlation-1) > 1e-12 {
		t.Fatalf("self-correlation %g", m.Correlation)
	}
	// Noisy reconstruction: metrics reflect the noise level.
	noisy := a.Clone()
	for i := range noisy.Pix {
		if i%2 == 0 {
			noisy.Pix[i] = clamp(noisy.Pix[i] + 0.05)
		} else {
			noisy.Pix[i] = clamp(noisy.Pix[i] - 0.05)
		}
	}
	m, err = Compare(a, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE < 0.02 || m.MAE > 0.08 {
		t.Fatalf("MAE %g implausible for 0.05 noise", m.MAE)
	}
	if m.Correlation < 0.95 {
		t.Fatalf("correlation %g too low", m.Correlation)
	}
	// Shape mismatch.
	b, err := New("b", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(a, b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	orig, err := Synthetic("building", 40, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 40 || back.H != 24 {
		t.Fatalf("dims %dx%d", back.W, back.H)
	}
	// 8-bit quantization: worst error 2/255.
	m, err := Compare(orig, back)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxAbsErr > 2.0/255*1.01 {
		t.Fatalf("PGM quantization error %g", m.MaxAbsErr)
	}
}

func TestPGMFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img.pgm")
	orig, err := Synthetic("finger", 16, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.SavePGM(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pixels() != orig.Pixels() {
		t.Fatal("file round trip lost pixels")
	}
	if _, err := LoadPGM("/nonexistent.pgm"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPGMErrors(t *testing.T) {
	if _, err := ReadPGM(bytes.NewReader([]byte("P2\n2 2\n255\n"))); err == nil {
		t.Fatal("ascii pgm accepted")
	}
	if _, err := ReadPGM(bytes.NewReader([]byte("P5\n2 2\n65535\n"))); err == nil {
		t.Fatal("16-bit pgm accepted")
	}
	if _, err := ReadPGM(bytes.NewReader([]byte("P5\n4 4\n255\nab"))); err == nil {
		t.Fatal("truncated pgm accepted")
	}
	if _, err := ReadPGM(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty pgm accepted")
	}
}
