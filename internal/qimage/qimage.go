// Package qimage supplies the grayscale-image substrate for the QCrank
// experiments (§3, Table 2, Figs. 5–6). The paper's four test images
// (an X-ray finger, shoes, a building façade, a zebra) are proprietary
// to its artifact; this package generates procedural synthetic images
// with the same dimensions and qualitatively similar structure —
// ridges, blobs, rectangles, stripes. QCrank's cost depends only on
// pixel count and the address/data split, and reconstruction error
// depends only on shot statistics, so the substitution preserves both
// benchmarked behaviours. PGM I/O and the reconstruction metrics of
// Fig. 6 round out the package.
package qimage

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"qgear/internal/qmath"
)

// Image is a grayscale image with float64 pixels in [-1, 1] (the
// paper's QCrank input normalization, Appendix D.3), row-major.
type Image struct {
	Name string
	W, H int
	Pix  []float64
}

// New allocates a zero image.
func New(name string, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("qimage: bad dimensions %dx%d", w, h)
	}
	return &Image{Name: name, W: w, H: h, Pix: make([]float64, w*h)}, nil
}

// At returns pixel (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set assigns pixel (x, y), clamped into [-1, 1].
func (im *Image) Set(x, y int, v float64) {
	im.Pix[y*im.W+x] = clamp(v)
}

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Pixels returns the pixel count.
func (im *Image) Pixels() int { return im.W * im.H }

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	out := &Image{Name: im.Name, W: im.W, H: im.H, Pix: make([]float64, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// The paper's test image inventory (Table 2).
var paperImages = map[string][2]int{
	"finger":   {64, 80},
	"shoes":    {128, 128},
	"building": {192, 128},
	"zebra":    {384, 256},
}

// PaperImageNames lists the Table 2 image kinds in paper order.
func PaperImageNames() []string { return []string{"finger", "shoes", "building", "zebra"} }

// PaperDimensions returns the Table 2 dimensions for a paper image
// kind.
func PaperDimensions(kind string) (w, h int, err error) {
	d, ok := paperImages[kind]
	if !ok {
		return 0, 0, fmt.Errorf("qimage: unknown paper image %q", kind)
	}
	return d[0], d[1], nil
}

// Synthetic generates a procedural stand-in for one of the paper's
// image kinds at the given size (use PaperDimensions for the Table 2
// sizes). Seeded noise keeps every run reproducible.
func Synthetic(kind string, w, h int, seed uint64) (*Image, error) {
	im, err := New(kind, w, h)
	if err != nil {
		return nil, err
	}
	rng := qmath.NewRNG(seed)
	fw, fh := float64(w), float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			var v float64
			switch kind {
			case "finger":
				// Concentric fingerprint-like ridges around a whorl.
				dx, dy := fx-fw/2, fy-fh/2
				r := math.Sqrt(dx*dx + dy*dy)
				v = math.Sin(r/2.2+0.8*math.Atan2(dy, dx)) * 0.8
			case "shoes":
				// Two soft blobs over a dark backdrop.
				v = -0.6 +
					1.3*gauss(fx, fy, fw*0.3, fh*0.6, fw*0.12) +
					1.1*gauss(fx, fy, fw*0.7, fh*0.4, fw*0.10)
			case "building":
				// A window grid: bright façade with dark rectangles.
				v = 0.55
				if int(fx/12)%2 == 1 && int(fy/10)%2 == 1 {
					v = -0.7
				}
				if fy > fh*0.85 {
					v = -0.2 // street
				}
			case "zebra":
				// Diagonal stripes with a gentle body contour.
				v = 0.9 * math.Sin(fx/7+fy/9)
				if v > 0 {
					v = 0.8
				} else {
					v = -0.8
				}
				v *= gauss(fx, fy, fw/2, fh/2, fw*0.45)*0.5 + 0.5
			default:
				return nil, fmt.Errorf("qimage: unknown synthetic kind %q", kind)
			}
			v += 0.03 * rng.NormFloat64() // sensor noise
			im.Set(x, y, v)
		}
	}
	return im, nil
}

func gauss(x, y, cx, cy, s float64) float64 {
	dx, dy := x-cx, y-cy
	return math.Exp(-(dx*dx + dy*dy) / (2 * s * s))
}

// Metrics summarizes a reconstruction against its reference — the
// statistics of the Fig. 6 residual panels.
type Metrics struct {
	MAE         float64 // mean |reco - true|
	RMSE        float64
	MaxAbsErr   float64
	Correlation float64 // Pearson between true and reco pixels
}

// Compare computes reconstruction metrics between a reference and a
// reconstructed image of identical shape.
func Compare(ref, reco *Image) (Metrics, error) {
	if ref.W != reco.W || ref.H != reco.H {
		return Metrics{}, fmt.Errorf("qimage: shape mismatch %dx%d vs %dx%d", ref.W, ref.H, reco.W, reco.H)
	}
	n := float64(len(ref.Pix))
	var sumAbs, sumSq, maxAbs float64
	var sa, sb, saa, sbb, sab float64
	for i := range ref.Pix {
		a, b := ref.Pix[i], reco.Pix[i]
		d := math.Abs(a - b)
		sumAbs += d
		sumSq += d * d
		if d > maxAbs {
			maxAbs = d
		}
		sa += a
		sb += b
		saa += a * a
		sbb += b * b
		sab += a * b
	}
	m := Metrics{MAE: sumAbs / n, RMSE: math.Sqrt(sumSq / n), MaxAbsErr: maxAbs}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	if va > 0 && vb > 0 {
		m.Correlation = cov / math.Sqrt(va*vb)
	}
	return m, nil
}

// WritePGM emits binary PGM (P5, maxval 255) with [-1,1] mapped onto
// [0,255].
func (im *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("qimage: %w", err)
	}
	for _, v := range im.Pix {
		b := byte(math.Round((clamp(v) + 1) / 2 * 255))
		if err := bw.WriteByte(b); err != nil {
			return fmt.Errorf("qimage: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("qimage: %w", err)
	}
	return nil
}

// ReadPGM parses binary PGM back into [-1, 1] pixels.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("qimage: pgm header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("qimage: unsupported pgm magic %q", magic)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("qimage: unsupported maxval %d", maxval)
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after header
		return nil, fmt.Errorf("qimage: %w", err)
	}
	im, err := New("pgm", w, h)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("qimage: pgm payload: %w", err)
	}
	for i, b := range buf {
		im.Pix[i] = float64(b)/255*2 - 1
	}
	return im, nil
}

// SavePGM writes the image to a file path.
func (im *Image) SavePGM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("qimage: %w", err)
	}
	if err := im.WritePGM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPGM reads an image from a file path.
func LoadPGM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qimage: %w", err)
	}
	defer f.Close()
	im, err := ReadPGM(f)
	if err != nil {
		return nil, err
	}
	im.Name = strings.TrimSuffix(path, ".pgm")
	return im, nil
}
