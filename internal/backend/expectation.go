package backend

import (
	"errors"
	"fmt"
	"time"

	"qgear/internal/circuit"
	"qgear/internal/mgpu"
	"qgear/internal/observable"
	"qgear/internal/telemetry"
)

// Observable estimation as a first-class job kind: the compiled
// TilePlan executes exactly once and every Pauli term of the
// Hamiltonian is evaluated against the resident statevector — no
// probability readout, no permutation materialization, no shot
// sampling. The single-process engines share the canonical chunked
// reduction of statevec.PauliEvaluator; the mqpu target partitions
// terms across its simulated devices; the mgpu target computes
// rank-local partial sums with one gathered reduction. All engines
// return bit-identical ⟨H⟩ values (the differential suite pins this).

// RunExpectation transforms and compiles the circuit for the
// configured target, executes it once, and returns the exact ⟨H⟩ on
// the final state. Shots and Seed are ignored: expectation jobs are
// exact by construction.
func RunExpectation(c *circuit.Circuit, h *observable.Hamiltonian, cfg Config) (*Result, error) {
	comp, err := Compile(c, cfg)
	if err != nil {
		return nil, err
	}
	return RunExpectationCompiled(comp, h, cfg)
}

// RunExpectationCompiled is RunExpectation for a precompiled circuit —
// the serving layer's path: one cached compile serves any number of
// observables on the same circuit.
func RunExpectationCompiled(comp *Compiled, h *observable.Hamiltonian, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	if h == nil {
		return nil, errors.New("backend: nil hamiltonian")
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	n := comp.Kernel.NumQubits
	if h.NumQubits > n {
		return nil, fmt.Errorf("backend: hamiltonian spans %d qubits, circuit has %d", h.NumQubits, n)
	}
	start := time.Now()
	res := &Result{
		Target:      cfg.Target,
		KernelStats: comp.TransformStats,
		TileBits:    comp.TileBits,
		NumQubits:   n,
		ExpTerms:    len(h.Terms),
	}
	if comp.Plan != nil {
		stats := comp.Plan.Stats
		res.PlanStats = &stats
	}
	tr := &telemetry.Trace{}
	cfg.execHook()

	var val float64
	switch cfg.Target {
	case TargetNvidiaMGPU:
		t0 := time.Now()
		out, err := mgpu.ExpectationCompiledCancel(comp.Kernel, comp.Plan, h, cfg.devices(), cfg.workers(), cfg.Cancel)
		if err != nil {
			return nil, err
		}
		val = out.Value
		res.Exchanges = out.Exchanges
		res.BytesSent = out.BytesSent
		res.AvoidedExchanges = out.AvoidedExchanges
		// The distributed path executes and reduces inside one mpi.Run;
		// the whole wall is the expectation stage, with the measured
		// exchange share split out.
		addDistSpans(tr, time.Since(t0), out.ExchangeTime)
	case TargetPennylane:
		t0 := time.Now()
		pennylaneTranspile(comp.Kernel)
		tr.Add(telemetry.StageTranspile, time.Since(t0))
		fallthrough
	default: // aer, nvidia, pennylane, and the mqpu term-parallel mode
		t0 := time.Now()
		s, err := runSingleState(comp, cfg.workers(), cfg.Cancel)
		if err != nil {
			return nil, err
		}
		tr.Add(telemetry.StageExecute, time.Since(t0))
		t1 := time.Now()
		if cfg.Target == TargetNvidiaMQPU && cfg.devices() > 1 {
			// Term-partitioned parallel evaluation: the simulated QPUs
			// each sweep a stripe of terms over the shared read-only
			// state; the term-ordered final sum keeps the value
			// bit-identical to sequential evaluation.
			val, err = h.ExpectationParallelCancel(s, cfg.devices(), cfg.Cancel)
		} else {
			val, err = h.ExpectationCancel(s, cfg.Cancel)
		}
		if err != nil {
			return nil, err
		}
		tr.Add(telemetry.StageExpectation, time.Since(t1))
	}
	res.ExpValue = &val
	res.Duration = time.Since(start)
	res.Trace = tr
	return res, nil
}
