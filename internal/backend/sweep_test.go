package backend

import (
	"math"
	"math/rand"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/observable"
)

// sweepTestCircuit is a small VQE-flavored ansatz: parameterized
// rotations interleaved with an entangling ladder.
func sweepTestCircuit(nq int) *circuit.Circuit {
	c := circuit.New(nq, 0)
	for q := 0; q < nq; q++ {
		c.RY(0.1*float64(q+1), q)
	}
	for q := 0; q+1 < nq; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < nq; q++ {
		c.RZ(0.2*float64(q+1), q)
		c.RX(0.05*float64(q+1), q)
	}
	return c
}

func sweepTestPoints(nParams, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pt := make([]float64, nParams)
		for j := range pt {
			pt[j] = rng.Float64() * 6
		}
		pts[i] = pt
	}
	return pts
}

// sweepEngines is every engine the differential suite runs, with
// device counts exercising the distributed and device-parallel paths.
var sweepEngines = []Config{
	{Target: TargetAer, Workers: 1},
	{Target: TargetNvidia, Workers: 2, TileBits: 3},
	{Target: TargetNvidiaMQPU, Workers: 2, Devices: 2, TileBits: 3},
	{Target: TargetNvidiaMGPU, Workers: 2, Devices: 2, TileBits: 3},
}

// TestRunSweepDifferential: per-point sweep values must be
// bit-identical to submitting every point as its own expectation job,
// on all four engines.
func TestRunSweepDifferential(t *testing.T) {
	const nq = 5
	c := sweepTestCircuit(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	pts := sweepTestPoints(c.NumParams(), 12, 21)
	for _, cfg := range sweepEngines {
		res, err := RunSweep(c, h, pts, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Target, err)
		}
		if len(res.SweepValues) != len(pts) || res.SweepPoints != len(pts) {
			t.Fatalf("%s: %d values for %d points", cfg.Target, len(res.SweepValues), len(pts))
		}
		if res.Rebinds != len(pts) || res.SweepCompiles != 0 {
			t.Errorf("%s: want %d rebinds / 0 compiles, got %d/%d",
				cfg.Target, len(pts), res.Rebinds, res.SweepCompiles)
		}
		for i, pt := range pts {
			bound, err := c.BindParams(pt)
			if err != nil {
				t.Fatal(err)
			}
			ind, err := RunExpectation(bound, h, cfg)
			if err != nil {
				t.Fatalf("%s point %d: %v", cfg.Target, i, err)
			}
			if math.Float64bits(res.SweepValues[i]) != math.Float64bits(*ind.ExpValue) {
				t.Fatalf("%s point %d: sweep value %v != individual job %v",
					cfg.Target, i, res.SweepValues[i], *ind.ExpValue)
			}
		}
	}
}

// TestRunSweepCountsDifferential: sampling sweeps (no Hamiltonian)
// must reproduce, histogram for histogram, individually-submitted jobs
// run at the derived per-point seed.
func TestRunSweepCountsDifferential(t *testing.T) {
	const nq = 4
	c := sweepTestCircuit(nq)
	pts := sweepTestPoints(c.NumParams(), 6, 33)
	for _, base := range sweepEngines {
		cfg := base
		cfg.Shots, cfg.Seed = 256, 99
		res, err := RunSweep(c, nil, pts, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Target, err)
		}
		if len(res.SweepCounts) != len(pts) {
			t.Fatalf("%s: %d histograms for %d points", cfg.Target, len(res.SweepCounts), len(pts))
		}
		for i, pt := range pts {
			bound, err := c.BindParams(pt)
			if err != nil {
				t.Fatal(err)
			}
			icfg := cfg
			icfg.Seed = SweepPointSeed(cfg.Seed, i)
			ind, err := Run(bound, icfg)
			if err != nil {
				t.Fatalf("%s point %d: %v", cfg.Target, i, err)
			}
			if len(ind.Counts) != len(res.SweepCounts[i]) {
				t.Fatalf("%s point %d: %d keys vs %d", cfg.Target, i, len(res.SweepCounts[i]), len(ind.Counts))
			}
			for k, n := range ind.Counts {
				if res.SweepCounts[i][k] != n {
					t.Fatalf("%s point %d key %b: sweep %d != individual %d",
						cfg.Target, i, k, res.SweepCounts[i][k], n)
				}
			}
		}
	}
}

// TestRunSweepFallback: a value-dependent transform (fusion) cannot
// rebind — RunSweepCompiled surfaces ErrNotRebindable, RunSweep falls
// back to per-point compiles with identical values.
func TestRunSweepFallback(t *testing.T) {
	const nq = 4
	c := sweepTestCircuit(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	pts := sweepTestPoints(c.NumParams(), 4, 5)

	exact := Config{Target: TargetNvidia, Workers: 1, TileBits: 3}
	fused := exact
	fused.FusionWindow = 5
	if fused.Rebindable() {
		t.Fatal("fused config claims rebindable")
	}
	comp, err := Compile(c, fused)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweepCompiled(comp, h, pts, fused); err != ErrNotRebindable {
		t.Fatalf("RunSweepCompiled under fusion: %v, want ErrNotRebindable", err)
	}
	res, err := RunSweep(c, h, pts, fused)
	if err != nil {
		t.Fatal(err)
	}
	if res.SweepCompiles != len(pts) || res.Rebinds != 0 {
		t.Errorf("fallback: want %d compiles / 0 rebinds, got %d/%d",
			len(pts), res.SweepCompiles, res.Rebinds)
	}
	for i, pt := range pts {
		bound, err := c.BindParams(pt)
		if err != nil {
			t.Fatal(err)
		}
		ind, err := RunExpectation(bound, h, fused)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.SweepValues[i]) != math.Float64bits(*ind.ExpValue) {
			t.Fatalf("fallback point %d: %v != %v", i, res.SweepValues[i], *ind.ExpValue)
		}
	}
}

// TestRunSweepValidation covers the sweep-shape admission rules.
func TestRunSweepValidation(t *testing.T) {
	const nq = 3
	c := sweepTestCircuit(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	cfg := Config{Target: TargetAer}
	n := c.NumParams()
	good := sweepTestPoints(n, 2, 1)

	if _, err := RunSweep(c, h, nil, cfg); err == nil {
		t.Error("empty sweep accepted")
	}
	bad := [][]float64{make([]float64, n+1)}
	if _, err := RunSweep(c, h, bad, cfg); err == nil {
		t.Error("wrong-arity point accepted")
	}
	if _, err := RunSweep(c, nil, good, cfg); err == nil {
		t.Error("sampling sweep without shots accepted")
	}
	// Hamiltonian sweeps follow the expectation-job convention: Shots
	// and Seed are ignored, never rejected, and never shape the values.
	shotCfg := cfg
	shotCfg.Shots, shotCfg.Seed = 10, 7
	withShots, err := RunSweep(c, h, good, shotCfg)
	if err != nil {
		t.Fatalf("Hamiltonian sweep with shots: %v", err)
	}
	without, err := RunSweep(c, h, good, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		if math.Float64bits(withShots.SweepValues[i]) != math.Float64bits(without.SweepValues[i]) {
			t.Errorf("point %d: shots changed an exact sweep value", i)
		}
	}
}

// TestRunGradient: the parameter-shift gradient must match a central
// finite difference, and the base value must match a plain expectation
// job bit for bit.
func TestRunGradient(t *testing.T) {
	const nq = 4
	c := sweepTestCircuit(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	base := c.ParamValues()
	cfg := Config{Target: TargetNvidia, Workers: 1, TileBits: 3}

	res, err := RunGradient(c, h, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gradient) != len(base) {
		t.Fatalf("gradient has %d entries for %d params", len(res.Gradient), len(base))
	}
	if res.SweepPoints != 2*len(base)+1 {
		t.Errorf("gradient ran %d points, want %d", res.SweepPoints, 2*len(base)+1)
	}
	ind, err := RunExpectation(c, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(*res.ExpValue) != math.Float64bits(*ind.ExpValue) {
		t.Fatalf("gradient base value %v != expectation job %v", *res.ExpValue, *ind.ExpValue)
	}

	const eps = 1e-5
	for j := range base {
		plus := append([]float64(nil), base...)
		minus := append([]float64(nil), base...)
		plus[j] += eps
		minus[j] -= eps
		cp, err := c.BindParams(plus)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := c.BindParams(minus)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := RunExpectation(cp, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := RunExpectation(cm, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fd := (*rp.ExpValue - *rm.ExpValue) / (2 * eps)
		if d := math.Abs(fd - res.Gradient[j]); d > 1e-6 {
			t.Errorf("param %d: parameter-shift %v vs finite difference %v (Δ %g)",
				j, res.Gradient[j], fd, d)
		}
	}
}
