package backend

import (
	"testing"

	"qgear/internal/qcrank"
	"qgear/internal/qft"
	"qgear/internal/qimage"
)

// TestTiledCountsBitIdentical is the backend-level acceptance check:
// with a fixed seed, shot counts through the tiled executor must equal
// the per-gate path bit for bit, on both workloads the ablation names.
func TestTiledCountsBitIdentical(t *testing.T) {
	qftC, err := qft.Circuit(12, true)
	if err != nil {
		t.Fatal(err)
	}
	img, err := qimage.Synthetic("finger", 16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := qcrank.NewPlan(img.Pixels(), 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	qcC, err := qcrank.Encode(img.Pix, plan, true)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		fusion int
	}{
		{"qft12", 2},
		{"qcrank", 4},
	} {
		c := qftC
		if tc.name == "qcrank" {
			c = qcC
		}
		run := func(tileBits int) (map[uint64]int, error) {
			res, err := Run(c, Config{
				Target: TargetNvidia, Workers: 4, Shots: 2000, Seed: 77,
				FusionWindow: tc.fusion, TileBits: tileBits,
			})
			if err != nil {
				return nil, err
			}
			return res.Counts, nil
		}
		perGate, err := run(-1) // tiling disabled
		if err != nil {
			t.Fatalf("%s per-gate: %v", tc.name, err)
		}
		tiled, err := run(6) // forced small tiles so blocking engages
		if err != nil {
			t.Fatalf("%s tiled: %v", tc.name, err)
		}
		if len(perGate) != len(tiled) {
			t.Fatalf("%s: %d vs %d distinct outcomes", tc.name, len(perGate), len(tiled))
		}
		for key, n := range perGate {
			if tiled[key] != n {
				t.Fatalf("%s: outcome %b count %d vs %d — not bit-identical", tc.name, key, n, tiled[key])
			}
		}
	}
}
