package backend

import (
	"math"
	"math/bits"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/kernel"
	"qgear/internal/observable"
	"qgear/internal/qmath"
	"qgear/internal/statevec"
)

// The randomized differential suite for observable estimation:
// RunExpectation is cross-validated against (a) a brute-force
// dense-matrix ⟨ψ|H|ψ⟩ reference built term-by-term on independently
// computed amplitudes, and (b) shot-sampled Z-basis estimates within
// statistical tolerance — randomized over qubit counts, tile widths,
// rank counts, fusion settings, and pending-permutation states. The
// per-gate, tiled, and planned-mgpu engines must agree bit for bit.

// soupCircuit generates a gate soup that exercises every plan segment
// kind: single-qubit rotations, diagonals, CX, CP, and explicit SWAPs
// (including trailing ones, so tiled execution finishes with a
// pending qubit permutation the evaluator must read through).
func soupCircuit(n, ops int, seed uint64) *circuit.Circuit {
	r := qmath.NewRNG(seed)
	c := circuit.New(n, 0)
	c.Name = "exp_soup"
	for i := 0; i < ops; i++ {
		q := r.Intn(n)
		q2 := (q + 1 + r.Intn(n-1)) % n
		switch r.Intn(7) {
		case 0:
			c.H(q)
		case 1:
			c.RY(r.Angle(), q)
		case 2:
			c.RZ(r.Angle(), q)
		case 3:
			c.CX(q, q2)
		case 4:
			c.CP(r.Angle(), q, q2)
		case 5:
			c.SWAP(q, q2)
		case 6:
			c.P(r.Angle(), q)
		}
	}
	// Trailing SWAPs: guarantee the tiled engines end on a non-identity
	// permutation table.
	if n >= 2 {
		c.SWAP(0, n-1)
		if n >= 4 {
			c.SWAP(1, n-2)
		}
	}
	return c
}

// randomHamiltonian draws a few-term Hamiltonian with random Pauli
// strings (1..3 qubits each, occasionally an identity term) and
// random coefficients.
func randomHamiltonian(n int, terms int, r *qmath.RNG) *observable.Hamiltonian {
	h := &observable.Hamiltonian{NumQubits: n}
	for i := 0; i < terms; i++ {
		coef := 4*r.Float64() - 2
		if r.Intn(8) == 0 {
			h.Add(observable.NewTerm(coef, nil)) // identity term
			continue
		}
		k := 1 + r.Intn(3)
		if k > n {
			k = n
		}
		ops := make(map[int]observable.Pauli, k)
		for len(ops) < k {
			ops[r.Intn(n)] = observable.Pauli(1 + r.Intn(3))
		}
		h.Add(observable.NewTerm(coef, ops))
	}
	return h
}

// referenceAmps computes the final-state amplitudes through the plain
// per-gate executor with no fusion and no tiling — an execution path
// independent of every engine under test.
func referenceAmps(t *testing.T, c *circuit.Circuit) []complex128 {
	t.Helper()
	k, _, err := kernel.FromCircuit(c, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.MustNew(c.NumQubits, 1)
	if err := kernel.Execute(k, s); err != nil {
		t.Fatal(err)
	}
	return append([]complex128(nil), s.Amplitudes()...)
}

// bruteForceExpectation evaluates ⟨ψ|H|ψ⟩ term by term from the dense
// operator action: P|b⟩ = phase(b)·|b ⊕ flip⟩ applied to every basis
// amplitude, then the full inner product — no pairing, no parity
// shortcuts, no shared code with the production evaluator.
func bruteForceExpectation(t *testing.T, amps []complex128, h *observable.Hamiltonian) float64 {
	t.Helper()
	n := 0
	for 1<<uint(n) < len(amps) {
		n++
	}
	var total float64
	applied := make([]complex128, len(amps))
	for _, term := range h.Terms {
		xm, ym, zm, err := term.Masks(n)
		if err != nil {
			t.Fatal(err)
		}
		flip := xm | ym
		for i := range applied {
			applied[i] = 0
		}
		for b := range amps {
			// phase(b) = i^{|Y|}·(−1)^{popcount(b & (Y|Z))}
			ph := complex(1, 0)
			for k := 0; k < bits.OnesCount64(ym); k++ {
				ph *= complex(0, 1)
			}
			if bits.OnesCount64(uint64(b)&(ym|zm))&1 == 1 {
				ph = -ph
			}
			applied[uint64(b)^flip] += ph * amps[b]
		}
		var ip complex128
		for b := range amps {
			a := amps[b]
			ip += complex(real(a), -imag(a)) * applied[b]
		}
		total += term.Coef * real(ip)
	}
	return total
}

func expValue(t *testing.T, c *circuit.Circuit, h *observable.Hamiltonian, cfg Config) float64 {
	t.Helper()
	res, err := RunExpectation(c, h, cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Target, err)
	}
	if res.ExpValue == nil {
		t.Fatalf("%s: nil ExpValue", cfg.Target)
	}
	if res.ExpTerms != len(h.Terms) || res.NumQubits != c.NumQubits {
		t.Fatalf("%s: result shape ExpTerms=%d NumQubits=%d", cfg.Target, res.ExpTerms, res.NumQubits)
	}
	if res.Probabilities != nil || res.Counts != nil {
		t.Fatalf("%s: expectation result materialized a readout", cfg.Target)
	}
	return *res.ExpValue
}

func TestExpectationDifferentialSuite(t *testing.T) {
	r := qmath.NewRNG(20250728)
	trials := 24
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + r.Intn(9) // 2..10 qubits: dense reference stays cheap
		ops := 20 + r.Intn(60)
		c := soupCircuit(n, ops, r.Uint64())
		h := randomHamiltonian(n, 1+r.Intn(6), r)

		ref := bruteForceExpectation(t, referenceAmps(t, c), h)
		fusion := 2 + r.Intn(3)
		tb := 2
		if n > 3 {
			tb += r.Intn(n - 3) // forced width in [2, n-1)
		}
		mgpuFits := func(devices int) bool {
			gbits := 0
			for 1<<uint(gbits) < devices {
				gbits++
			}
			return n-gbits >= 2
		}

		// Unfused engines all consume the identical transformed kernel,
		// so every value must be bit-identical across per-gate, tiled
		// (any width, any worker count), term-parallel mqpu, and both
		// distributed modes at any rank count.
		configs := []Config{
			{Target: TargetAer},                                             // serial per-gate baseline
			{Target: TargetNvidia, TileBits: -1},                            // per-gate, parallel workers
			{Target: TargetNvidia, TileBits: tb},                            // tiled, pending perms
			{Target: TargetNvidia, TileBits: tb, Workers: 3},                // odd worker count
			{Target: TargetNvidia, TileBits: tb, Workers: 7},                // worker-count invariance
			{Target: TargetNvidiaMQPU, Devices: 3, TileBits: tb},            // term-partitioned parallel
			{Target: TargetNvidiaMGPU, Devices: 2, TileBits: -1},            // distributed per-gate
			{Target: TargetNvidiaMGPU, Devices: 2},                          // distributed planned
			{Target: TargetNvidiaMGPU, Devices: 4},                          // more ranks
			{Target: TargetNvidiaMGPU, Devices: 8, TileBits: 1, Workers: 2}, // deep rank split
			{Target: TargetNvidiaMGPU, Devices: 4, TileBits: 1, Workers: 1}, // minimal tiles
		}
		var vals []float64
		for _, cfg := range configs {
			if cfg.Target == TargetNvidiaMGPU && !mgpuFits(cfg.Devices) {
				continue // shard too small for this rank count
			}
			vals = append(vals, expValue(t, c, h, cfg))
		}
		for i, v := range vals {
			if d := math.Abs(v - ref); d > 1e-12 {
				t.Fatalf("trial %d (n=%d): engine %d value %.17g deviates %.3g from dense reference %.17g",
					trial, n, i, v, d, ref)
			}
			if v != vals[0] {
				t.Fatalf("trial %d (n=%d): engine %d value %.17g != engine 0 value %.17g — engines must be bit-identical",
					trial, n, i, v, vals[0])
			}
		}

		// Fused kernels change rounding (and the distributed transform
		// fuses only within shard-local qubits, so its kernel differs
		// from the single-device one) — bit-identity is asserted within
		// each engine family sharing a transform, and every family must
		// still match the dense reference to 1e-12.
		fusedPairs := [][2]Config{
			{{Target: TargetNvidia, TileBits: -1, FusionWindow: fusion},
				{Target: TargetNvidia, TileBits: tb, FusionWindow: fusion}},
		}
		if mgpuFits(4) {
			fusedPairs = append(fusedPairs, [2]Config{
				{Target: TargetNvidiaMGPU, Devices: 4, TileBits: -1, FusionWindow: fusion},
				{Target: TargetNvidiaMGPU, Devices: 4, FusionWindow: fusion}})
		}
		for pi, pair := range fusedPairs {
			a := expValue(t, c, h, pair[0])
			b := expValue(t, c, h, pair[1])
			if a != b {
				t.Fatalf("trial %d (n=%d): fused pair %d: per-gate %.17g != planned %.17g",
					trial, n, pi, a, b)
			}
			if d := math.Abs(a - ref); d > 1e-12 {
				t.Fatalf("trial %d (n=%d): fused pair %d deviates %.3g from dense reference", trial, n, pi, d)
			}
		}

		// Plan fusion (within-run 1q pre-multiplication) relaxes
		// bit-identity by design; it must still track the reference.
		pf := expValue(t, c, h, Config{Target: TargetNvidia, TileBits: tb, PlanFusion: true})
		if d := math.Abs(pf - ref); d > 1e-12 {
			t.Fatalf("trial %d (n=%d): plan-fusion value deviates %.3g from dense reference", trial, n, d)
		}
	}
}

// TestExpectationPendingPermutation pins the no-materialization
// property directly: evaluating through a state left with a pending
// permutation must equal evaluating the materialized copy bit for
// bit, and must not disturb the layout.
func TestExpectationPendingPermutation(t *testing.T) {
	c := soupCircuit(7, 40, 99)
	h := randomHamiltonian(7, 5, qmath.NewRNG(7))
	comp, err := Compile(c, Config{Target: TargetNvidia, TileBits: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := runSingleState(comp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.PermIsIdentity() {
		t.Fatal("test needs a pending permutation; adjust the soup")
	}
	permBefore := s.Permutation()
	vPerm, err := h.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	permAfter := s.Permutation()
	if len(permBefore) != len(permAfter) {
		t.Fatal("expectation materialized the pending permutation")
	}
	for i := range permBefore {
		if permBefore[i] != permAfter[i] {
			t.Fatal("expectation altered the permutation table")
		}
	}
	mat := s.Clone()
	mat.Amplitudes() // materializes
	vMat, err := h.Expectation(mat)
	if err != nil {
		t.Fatal(err)
	}
	if vPerm != vMat {
		t.Fatalf("permuted evaluation %.17g != materialized %.17g", vPerm, vMat)
	}
}

// TestExpectationSampledZBasis cross-validates the exact pathway
// against shot-sampled Z-basis estimates: for Z-diagonal random
// Hamiltonians the sampled estimator must land within a few standard
// errors of RunExpectation's value.
func TestExpectationSampledZBasis(t *testing.T) {
	r := qmath.NewRNG(4242)
	for trial := 0; trial < 6; trial++ {
		n := 3 + r.Intn(6)
		c := soupCircuit(n, 30+r.Intn(40), r.Uint64())
		h := &observable.Hamiltonian{NumQubits: n}
		var coefSum float64
		for i := 0; i < 1+r.Intn(4); i++ {
			coef := 2*r.Float64() - 1
			k := 1 + r.Intn(2)
			ops := make(map[int]observable.Pauli, k)
			for len(ops) < k {
				ops[r.Intn(n)] = observable.Z
			}
			h.Add(observable.NewTerm(coef, ops))
			coefSum += math.Abs(coef)
		}

		exact := expValue(t, c, h, Config{Target: TargetNvidia})

		const shots = 200000
		res, err := Run(c, Config{Target: TargetNvidia, Shots: shots, Seed: r.Uint64()})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint64]int, len(res.Counts))
		for k, v := range res.Counts {
			counts[k] = v
		}
		est, err := h.EstimateZBasis(counts)
		if err != nil {
			t.Fatal(err)
		}
		// Each term's estimator has stderr ≤ |coef|/√shots; 5σ on the
		// conservative sum keeps the flake rate negligible.
		tol := 5 * coefSum / math.Sqrt(shots)
		if d := math.Abs(est - exact); d > tol {
			t.Fatalf("trial %d (n=%d): sampled %.6f vs exact %.6f, |Δ| %.3g > %.3g",
				trial, n, est, exact, d, tol)
		}
	}
}

// TestExpectationValidation exercises the error paths.
func TestExpectationValidation(t *testing.T) {
	c := circuit.GHZ(4, false)
	if _, err := RunExpectation(c, nil, Config{Target: TargetNvidia}); err == nil {
		t.Fatal("nil hamiltonian accepted")
	}
	tooWide := observable.TransverseFieldIsing(6, 1, 1)
	if _, err := RunExpectation(c, tooWide, Config{Target: TargetNvidia}); err == nil {
		t.Fatal("oversized hamiltonian accepted")
	}
	bad := &observable.Hamiltonian{NumQubits: 4}
	bad.Add(observable.NewTerm(math.NaN(), map[int]observable.Pauli{0: observable.Z}))
	if _, err := RunExpectation(c, bad, Config{Target: TargetNvidia}); err == nil {
		t.Fatal("NaN coefficient accepted")
	}
	if _, err := RunExpectation(c, observable.TransverseFieldIsing(4, 1, 1), Config{Target: "bogus"}); err == nil {
		t.Fatal("invalid target accepted")
	}
}
