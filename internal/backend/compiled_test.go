package backend

import (
	"sync"
	"testing"

	"qgear/internal/qft"
)

// TestCompiledMGPUPlannedMatchesPerGate is the backend-level check of
// the shared-IR pipeline on the distributed target: the planned mgpu
// path must produce bit-identical fixed-seed shot counts to the
// per-gate path, while reporting its plan stats and exchanging no more
// than the baseline.
func TestCompiledMGPUPlannedMatchesPerGate(t *testing.T) {
	c, err := qft.Circuit(9, true)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Target: TargetNvidiaMGPU, Devices: 4, Workers: 2, Shots: 1500, Seed: 99}

	perGateCfg := base
	perGateCfg.TileBits = -1
	perGate, err := Run(c, perGateCfg)
	if err != nil {
		t.Fatal(err)
	}
	if perGate.PlanStats != nil || perGate.TileBits != 0 {
		t.Fatalf("per-gate run reported a plan: tile=%d", perGate.TileBits)
	}

	plannedCfg := base
	plannedCfg.TileBits = 4
	planned, err := Run(c, plannedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if planned.PlanStats == nil || planned.TileBits != 4 {
		t.Fatalf("planned run missing plan stats (tile=%d)", planned.TileBits)
	}
	if planned.Exchanges > perGate.Exchanges {
		t.Errorf("planned exchanges %d exceed per-gate %d", planned.Exchanges, perGate.Exchanges)
	}
	if len(planned.Counts) != len(perGate.Counts) {
		t.Fatalf("distinct outcomes differ: %d vs %d", len(planned.Counts), len(perGate.Counts))
	}
	for key, n := range perGate.Counts {
		if planned.Counts[key] != n {
			t.Fatalf("outcome %b: %d vs %d — not bit-identical", key, n, planned.Counts[key])
		}
	}
}

// TestCompiledReplaysConcurrently checks the Compiled contract the
// service's plan cache depends on: one compiled artifact executed many
// times, concurrently, always yields the identical distribution.
func TestCompiledReplaysConcurrently(t *testing.T) {
	c, err := qft.Circuit(8, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Target: TargetNvidia, Workers: 2, TileBits: 4}
	comp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Plan == nil {
		t.Fatal("expected a compiled plan")
	}
	ref, err := RunCompiled(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const replays = 8
	results := make([]*Result, replays)
	errs := make([]error, replays)
	var wg sync.WaitGroup
	for i := 0; i < replays; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunCompiled(comp, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < replays; i++ {
		if errs[i] != nil {
			t.Fatalf("replay %d: %v", i, errs[i])
		}
		for j := range ref.Probabilities {
			if results[i].Probabilities[j] != ref.Probabilities[j] {
				t.Fatalf("replay %d diverged at index %d", i, j)
			}
		}
	}
}
