package backend

import (
	"bytes"
	"reflect"
	"testing"

	"qgear/internal/randcirc"
)

func compileTestCircuit(t *testing.T, cfg Config) *Compiled {
	t.Helper()
	c, err := randcirc.Generate(randcirc.Spec{Qubits: 8, Blocks: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// TestCompiledRoundTrip: a Compiled encodes and decodes DeepEqual,
// with and without a plan.
func TestCompiledRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{Target: TargetNvidia, TileBits: 4},
		{Target: TargetNvidia, TileBits: -1}, // per-gate: nil plan
		{Target: TargetNvidia, TileBits: 4, FusionWindow: 3},
		{Target: TargetNvidia, TileBits: 4, PlanFusion: true},
	} {
		comp := compileTestCircuit(t, cfg)
		var buf bytes.Buffer
		if err := comp.Encode(&buf); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		got, err := DecodeCompiled(&buf)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !reflect.DeepEqual(got, comp) {
			t.Fatalf("cfg %+v: compiled artifact drifted through encoding", cfg)
		}
	}
}

// TestDecodedCompiledRunsIdentically: executing the decoded artifact
// must reproduce the original's probabilities bit for bit, and its
// fixed-seed shot counts exactly.
func TestDecodedCompiledRunsIdentically(t *testing.T) {
	cfg := Config{Target: TargetNvidia, TileBits: 4, Workers: 1, Shots: 500, Seed: 13}
	comp := compileTestCircuit(t, cfg)
	var buf bytes.Buffer
	if err := comp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCompiled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunCompiled(comp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCompiled(decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Probabilities {
		if a.Probabilities[i] != b.Probabilities[i] {
			t.Fatalf("probability[%d]: %v vs %v (max |Δp| must be 0)", i, a.Probabilities[i], b.Probabilities[i])
		}
	}
	if !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatalf("fixed-seed counts differ: %v vs %v", a.Counts, b.Counts)
	}
}

// TestDecodeCompiledRejectsCorruption: bit flips anywhere in the
// container fail the checksum (or the magic/header checks) cleanly.
func TestDecodeCompiledRejectsCorruption(t *testing.T) {
	comp := compileTestCircuit(t, Config{Target: TargetNvidia, TileBits: 4})
	var buf bytes.Buffer
	if err := comp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, off := range []int{0, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := DecodeCompiled(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
	if _, err := DecodeCompiled(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated artifact accepted")
	}
}

// TestSizeBytesAccounting: results are charged their probability
// vector; compiled artifacts their kernel + plan.
func TestSizeBytesAccounting(t *testing.T) {
	res := &Result{Probabilities: make([]float64, 1<<10)}
	if got := res.SizeBytes(); got < 8<<10 {
		t.Fatalf("1024-amplitude result accounted at %d B, want >= %d", got, 8<<10)
	}
	comp := compileTestCircuit(t, Config{Target: TargetNvidia, TileBits: 4})
	if comp.SizeBytes() <= comp.Kernel.SizeBytes() {
		t.Fatalf("compiled size %d should exceed its kernel alone (%d)", comp.SizeBytes(), comp.Kernel.SizeBytes())
	}
}
