package backend

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"qgear/internal/circuit"
	"qgear/internal/observable"
	"qgear/internal/sampling"
	"qgear/internal/telemetry"
)

// Parameter sweeps: one circuit shape, many angle settings. The
// compiled artifact (kernel + TilePlan) is built once and *rebound*
// per point — only the value-derived matrices are patched, with the
// identical gate.Matrix1 derivations a fresh compile makes, so each
// point's output is bit-identical to submitting that point as its own
// job. The mqpu target fans points across its simulated QPUs (the
// circuit-level parallelism of §3, applied to sweep points); every
// other target runs points in order. Per-point results aggregate into
// one artifact: an ⟨H⟩ vector for Hamiltonian sweeps, a histogram
// vector for sampling sweeps. Parameter-shift gradients ride the same
// machinery as a derived 2k+1-point sweep.

// ErrNotRebindable reports a configuration whose transform entangles
// parameter values with kernel structure (gate fusion pre-multiplies
// matrices, angle pruning drops gates), so a compiled artifact cannot
// be rebound to new values. Circuit-level sweeps (RunSweep) fall back
// to compiling every point; compiled-only entry points surface it.
var ErrNotRebindable = errors.New("backend: configuration entangles parameter values with compiled structure (fusion or pruning); sweep points must compile individually")

// Rebindable reports whether this configuration supports compile-once
// rebinding: no angle pruning, no gate fusion, no plan fusion. Under
// it, compiled structure is value-independent and a rebound artifact
// is bit-identical to a fresh compile — the predicate the service's
// structural plan-cache keying is gated on.
func (c Config) Rebindable() bool {
	return c.PruneAngle == 0 && c.FusionWindow < 2 && !c.PlanFusion
}

// rebindableTransform is the circuit→kernel half of Rebindable: with
// pruning and fusion off the kernel maps 1:1 from the circuit and
// kernel-level rebinding is exact, even if the *plan* was fused.
func (c Config) rebindableTransform() bool {
	return c.PruneAngle == 0 && c.FusionWindow < 2
}

// Rebindable reports whether the compiled artifact itself can be
// rebound: a nil plan always can (per-gate execution reads Params
// directly), a compiled plan must carry its binding sites.
func (c *Compiled) Rebindable() bool {
	return c.Plan == nil || c.Plan.Bindable
}

// BindParams returns a copy of the compiled artifact rebound to a new
// flat parameter vector. Copy-on-write throughout: structure is shared
// with the receiver, which stays immutable and safe for concurrent
// execution.
func (c *Compiled) BindParams(params []float64) (*Compiled, error) {
	k, err := c.Kernel.Bind(params)
	if err != nil {
		return nil, err
	}
	out := &Compiled{Kernel: k, TransformStats: c.TransformStats, TileBits: c.TileBits}
	if c.Plan != nil {
		p, err := c.Plan.Bind(params)
		if err != nil {
			return nil, err
		}
		out.Plan = p
	}
	return out, nil
}

// SweepPointSeed derives the sampling seed of sweep point i from the
// job seed. The odd 64-bit golden-gamma stride keeps per-point streams
// disjoint from the per-device stream derivation (+d·0x9e3779b9) the
// mqpu sampler applies within one point; an individually-submitted job
// with this seed reproduces the point's histogram bit for bit.
func SweepPointSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9e3779b97f4a7c15
}

// RunSweep compiles the circuit once and executes it at every
// parameter point. Configurations whose transform is value-dependent
// (fusion, pruning) compile every point from the rebound circuit
// instead — same results, none of the compile-once savings.
func RunSweep(c *circuit.Circuit, h *observable.Hamiltonian, points [][]float64, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	if !cfg.rebindableTransform() {
		return runSweepPerPoint(c, h, points, cfg)
	}
	comp, err := Compile(c, cfg)
	if err != nil {
		return nil, err
	}
	return RunSweepCompiled(comp, h, points, cfg)
}

// RunSweepCompiled executes a precompiled circuit at every parameter
// point — the serving layer's path: one cached compile serves the
// whole sweep through per-point rebinds. Returns ErrNotRebindable for
// configurations whose kernel cannot be rebound (callers holding the
// source circuit should fall back to RunSweep).
func RunSweepCompiled(comp *Compiled, h *observable.Hamiltonian, points [][]float64, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	if !cfg.rebindableTransform() {
		return nil, ErrNotRebindable
	}
	nParams := comp.Kernel.NumParams()
	if err := validateSweep(h, points, cfg, nParams, comp.Kernel.NumQubits); err != nil {
		return nil, err
	}

	// Fast path: patch the compiled plan's value-derived matrices in
	// place (copy-on-write). A fused plan — or one decoded from an
	// artifact predating binding sites — recompiles per point from the
	// rebound kernel instead.
	planRebind := !cfg.PlanFusion && (comp.Plan == nil || (comp.Plan.Bindable && comp.Plan.BindSlots == nParams))
	bindPoint := func(i int) (*Compiled, error) {
		if planRebind {
			return comp.BindParams(points[i])
		}
		k, err := comp.Kernel.Bind(points[i])
		if err != nil {
			return nil, err
		}
		bound, err := compileKernel(k, cfg)
		if err != nil {
			return nil, err
		}
		bound.TransformStats = comp.TransformStats
		return bound, nil
	}

	res := &Result{
		Target:      cfg.Target,
		KernelStats: comp.TransformStats,
		TileBits:    comp.TileBits,
		NumQubits:   comp.Kernel.NumQubits,
		SweepPoints: len(points),
	}
	if comp.Plan != nil {
		stats := comp.Plan.Stats
		res.PlanStats = &stats
	}
	if planRebind {
		res.Rebinds = len(points)
	} else {
		res.SweepCompiles = len(points)
	}
	return runSweepPoints(res, h, points, cfg, bindPoint)
}

// runSweepPerPoint is the value-dependent-transform fallback: every
// point binds the source circuit and compiles from scratch.
func runSweepPerPoint(c *circuit.Circuit, h *observable.Hamiltonian, points [][]float64, cfg Config) (*Result, error) {
	nParams := c.NumParams()
	if err := validateSweep(h, points, cfg, nParams, c.NumQubits); err != nil {
		return nil, err
	}
	res := &Result{Target: cfg.Target, SweepPoints: len(points), SweepCompiles: len(points), NumQubits: c.NumQubits}
	bindPoint := func(i int) (*Compiled, error) {
		bc, err := c.BindParams(points[i])
		if err != nil {
			return nil, err
		}
		return Compile(bc, cfg)
	}
	return runSweepPoints(res, h, points, cfg, bindPoint)
}

// validateSweep checks the sweep request shape shared by both entry
// paths.
func validateSweep(h *observable.Hamiltonian, points [][]float64, cfg Config, nParams, nQubits int) error {
	if len(points) == 0 {
		return errors.New("backend: sweep needs at least one parameter point")
	}
	for i, pt := range points {
		if len(pt) != nParams {
			return fmt.Errorf("backend: sweep point %d has %d values, circuit has %d parameter slots", i, len(pt), nParams)
		}
	}
	if h != nil {
		if err := h.Validate(); err != nil {
			return err
		}
		if h.NumQubits > nQubits {
			return fmt.Errorf("backend: hamiltonian spans %d qubits, circuit has %d", h.NumQubits, nQubits)
		}
		return nil
	}
	if cfg.Shots <= 0 {
		return errors.New("backend: a sweep without an observable must sample (Shots > 0); per-point probability vectors are unbounded")
	}
	return nil
}

// runSweepPoints executes every point through bindPoint and aggregates
// per-point results into the prepared res. On the mqpu target points
// fan across the simulated QPUs (worker budget split per device);
// every other target runs them in order. Per-point stage spans are
// summed by stage into one aggregated trace.
func runSweepPoints(res *Result, h *observable.Hamiltonian, points [][]float64, cfg Config, bindPoint func(i int) (*Compiled, error)) (*Result, error) {
	start := time.Now()
	// Fire the fault-injection hook once for the whole sweep, in the
	// caller's goroutine (guarded by the serving layer's panic
	// isolation), and strip it from per-point configs.
	cfg.execHook()
	pcfg := cfg
	pcfg.ExecHook = nil

	conc := 1
	if cfg.Target == TargetNvidiaMQPU && cfg.devices() > 1 && len(points) > 1 {
		conc = cfg.devices()
		if w := cfg.workers() / conc; w > 0 {
			pcfg.Workers = w
		} else {
			pcfg.Workers = 1
		}
	}

	runPoint := func(i int) (*Result, time.Duration, error) {
		if err := cfg.Cancel.Err(); err != nil {
			return nil, 0, fmt.Errorf("backend: sweep point %d: %w", i, err)
		}
		t0 := time.Now()
		bound, err := bindPoint(i)
		if err != nil {
			return nil, 0, fmt.Errorf("backend: sweep point %d: %w", i, err)
		}
		rebind := time.Since(t0)
		var r *Result
		if h != nil {
			r, err = RunExpectationCompiled(bound, h, pcfg)
		} else {
			pc := pcfg
			pc.Seed = SweepPointSeed(cfg.Seed, i)
			r, err = RunCompiled(bound, pc)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("backend: sweep point %d: %w", i, err)
		}
		return r, rebind, nil
	}

	results := make([]*Result, len(points))
	rebinds := make([]time.Duration, len(points))
	if conc <= 1 {
		for i := range points {
			r, rb, err := runPoint(i)
			if err != nil {
				return nil, err
			}
			results[i], rebinds[i] = r, rb
		}
	} else {
		errs := make([]error, len(points))
		sem := make(chan struct{}, conc)
		var wg sync.WaitGroup
		for i := range points {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], rebinds[i], errs[i] = runPoint(i)
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	if h != nil {
		res.SweepValues = make([]float64, len(points))
		res.ExpTerms = len(h.Terms)
	} else {
		res.SweepCounts = make([]sampling.Counts, len(points))
	}
	agg := make(map[string]int64)
	for i, r := range results {
		if h != nil {
			res.SweepValues[i] = *r.ExpValue
		} else {
			res.SweepCounts[i] = r.Counts
		}
		res.Exchanges += r.Exchanges
		res.BytesSent += r.BytesSent
		res.AvoidedExchanges += r.AvoidedExchanges
		if r.Trace != nil {
			for _, sp := range r.Trace.Spans {
				agg[sp.Stage] += sp.DurationNS
			}
		}
		agg[telemetry.StageRebind] += int64(rebinds[i])
		// Per-point-compile fallbacks carry plan geometry the caller
		// could not know up front.
		if res.PlanStats == nil && r.PlanStats != nil {
			stats := *r.PlanStats
			res.PlanStats = &stats
			res.TileBits = r.TileBits
		}
	}
	tr := &telemetry.Trace{}
	for _, stage := range telemetry.Stages() {
		if ns := agg[stage]; ns > 0 {
			tr.Add(stage, time.Duration(ns))
		}
	}
	res.Trace = tr
	res.Duration = time.Since(start)
	return res, nil
}

// shiftAngle is the parameter-shift offset. Every parameterized gate
// in the gate set is generated by an operator with eigenvalue gap 1 —
// rotations exp(-iθP/2) with P ∈ {X,Y,Z} (eigenvalues ±1/2 of P/2) and
// phases exp(iλ|1⟩⟨1|) (eigenvalues {0,1}) — so the two-point rule
// with shift π/2 is exact: ∂E/∂θ = (E(θ+π/2) − E(θ−π/2)) / 2.
const shiftAngle = math.Pi / 2

// gradientPoints lays out the 2k+1 evaluations of a parameter-shift
// gradient: the base point first, then (θ_j+π/2, θ_j−π/2) per slot.
func gradientPoints(base []float64) [][]float64 {
	pts := make([][]float64, 1, 1+2*len(base))
	pts[0] = append([]float64(nil), base...)
	for j := range base {
		plus := append([]float64(nil), base...)
		plus[j] += shiftAngle
		minus := append([]float64(nil), base...)
		minus[j] -= shiftAngle
		pts = append(pts, plus, minus)
	}
	return pts
}

// gradientFromSweep converts the 2k+1 sweep values into a gradient
// result: ⟨H⟩ at the base point plus one shift-rule derivative per
// parameter slot. The raw per-point vector is dropped — the gradient
// is the artifact.
func gradientFromSweep(res *Result, n int) *Result {
	vals := res.SweepValues
	grad := make([]float64, n)
	for j := 0; j < n; j++ {
		grad[j] = (vals[1+2*j] - vals[2+2*j]) / 2
	}
	v := vals[0]
	res.ExpValue = &v
	res.Gradient = grad
	res.SweepValues = nil
	return res
}

// RunGradient evaluates the parameter-shift gradient of ⟨H⟩ at one
// base point: a derived 2k+1-point sweep (base plus θ_j±π/2 per slot)
// followed by the shift rule. Exact — no finite-difference error —
// because every parameterized gate has a gap-1 generator.
func RunGradient(c *circuit.Circuit, h *observable.Hamiltonian, base []float64, cfg Config) (*Result, error) {
	if h == nil {
		return nil, errors.New("backend: gradient jobs need an observable")
	}
	res, err := RunSweep(c, h, gradientPoints(base), cfg)
	if err != nil {
		return nil, err
	}
	return gradientFromSweep(res, len(base)), nil
}

// RunGradientCompiled is RunGradient for a precompiled circuit.
func RunGradientCompiled(comp *Compiled, h *observable.Hamiltonian, base []float64, cfg Config) (*Result, error) {
	if h == nil {
		return nil, errors.New("backend: gradient jobs need an observable")
	}
	res, err := RunSweepCompiled(comp, h, gradientPoints(base), cfg)
	if err != nil {
		return nil, err
	}
	return gradientFromSweep(res, len(base)), nil
}
