package backend

import (
	"math"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/qmath"
)

func randomCircuit(n, ops int, seed uint64) *circuit.Circuit {
	r := qmath.NewRNG(seed)
	c := circuit.New(n, 0)
	c.Name = "random_test"
	for i := 0; i < ops; i++ {
		q := r.Intn(n)
		q2 := (q + 1 + r.Intn(n-1)) % n
		switch r.Intn(5) {
		case 0:
			c.H(q)
		case 1:
			c.RY(r.Angle(), q)
		case 2:
			c.RZ(r.Angle(), q)
		case 3:
			c.CX(q, q2)
		case 4:
			c.CP(r.Angle(), q, q2)
		}
	}
	return c
}

func probsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestAllTargetsAgree(t *testing.T) {
	c := randomCircuit(6, 80, 11)
	ref, err := Run(c, Config{Target: TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Target: TargetNvidia, FusionWindow: 4},
		{Target: TargetNvidia},
		{Target: TargetNvidiaMGPU, Devices: 4},
		{Target: TargetPennylane},
	} {
		res, err := Run(c, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Target, err)
		}
		if !probsClose(res.Probabilities, ref.Probabilities, 1e-9) {
			t.Fatalf("%s: probabilities differ from aer reference", cfg.Target)
		}
	}
}

func TestUnknownTargetRejected(t *testing.T) {
	if _, err := Run(circuit.GHZ(2, false), Config{Target: "tpu"}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if Target("tpu").Valid() {
		t.Fatal("tpu valid")
	}
	if len(Targets()) != 5 {
		t.Fatal("target list wrong")
	}
}

func TestShotSampling(t *testing.T) {
	c := circuit.GHZ(3, true)
	res, err := Run(c, Config{Target: TargetNvidia, Shots: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() != 4000 {
		t.Fatalf("total shots %d", res.Counts.Total())
	}
	// GHZ: only |000> and |111>.
	if res.Counts[0]+res.Counts[7] != 4000 {
		t.Fatalf("non-GHZ outcomes sampled: %v", res.Counts)
	}
	if res.Counts[0] < 1700 || res.Counts[0] > 2300 {
		t.Fatalf("GHZ balance off: %v", res.Counts)
	}
	// Same seed reproduces identical counts.
	res2, err := Run(c, Config{Target: TargetNvidia, Shots: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counts[0] != res.Counts[0] {
		t.Fatal("sampling not deterministic under fixed seed")
	}
}

func TestKernelStatsSurface(t *testing.T) {
	c := randomCircuit(5, 60, 3)
	res, err := Run(c, Config{Target: TargetNvidia, FusionWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelStats.SourceOps != 60 || res.KernelStats.FusedGroups == 0 {
		t.Fatalf("stats not surfaced: %+v", res.KernelStats)
	}
}

func TestMGPUCommCountersSurface(t *testing.T) {
	c := circuit.GHZ(6, false)
	res, err := Run(c, Config{Target: TargetNvidiaMGPU, Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchanges == 0 || res.BytesSent == 0 {
		t.Fatal("mgpu counters missing")
	}
}

func TestMGPUFusionStaysLocal(t *testing.T) {
	// Fusion enabled on mgpu must not break on global qubits: the
	// Config wiring restricts fusion below the device boundary.
	c := randomCircuit(6, 100, 99)
	res, err := Run(c, Config{Target: TargetNvidiaMGPU, Devices: 4, FusionWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(c, Config{Target: TargetAer})
	if err != nil {
		t.Fatal(err)
	}
	if !probsClose(res.Probabilities, ref.Probabilities, 1e-9) {
		t.Fatal("mgpu fused run differs")
	}
}

func TestRunBatchSequentialAndMqpu(t *testing.T) {
	batch := []*circuit.Circuit{
		circuit.GHZ(4, false),
		randomCircuit(4, 30, 1),
		randomCircuit(4, 30, 2),
		randomCircuit(4, 30, 3),
	}
	seq, err := RunBatch(batch, Config{Target: TargetNvidia})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBatch(batch, Config{Target: TargetNvidiaMQPU, Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatal("batch size mismatch")
	}
	for i := range batch {
		if !probsClose(seq[i].Probabilities, par[i].Probabilities, 1e-9) {
			t.Fatalf("circuit %d: mqpu result differs", i)
		}
		if par[i].Target != TargetNvidiaMQPU {
			t.Fatal("mqpu result mislabeled")
		}
	}
}

func TestRunBatchPropagatesErrors(t *testing.T) {
	// An mgpu config whose device count exceeds the circuit must fail.
	bad := []*circuit.Circuit{circuit.GHZ(2, false)}
	if _, err := RunBatch(bad, Config{Target: TargetNvidiaMGPU, Devices: 8}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMqpuParallelShotSampling(t *testing.T) {
	// A single circuit on the mqpu target splits its shot budget
	// across devices; the merged counts must be complete and sane.
	c := circuit.GHZ(4, true)
	const shots = 40001 // odd: exercises the remainder split
	res, err := Run(c, Config{Target: TargetNvidiaMQPU, Devices: 4, Shots: shots, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Total() != shots {
		t.Fatalf("merged shots %d != %d", res.Counts.Total(), shots)
	}
	if res.Counts[0]+res.Counts[15] != shots {
		t.Fatalf("non-GHZ outcomes: %v", res.Counts)
	}
	if res.Counts[0] < shots/2-800 || res.Counts[0] > shots/2+800 {
		t.Fatalf("GHZ balance off: %d", res.Counts[0])
	}
	// Deterministic under a fixed seed.
	res2, err := Run(c, Config{Target: TargetNvidiaMQPU, Devices: 4, Shots: shots, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counts[0] != res.Counts[0] {
		t.Fatal("parallel sampling not deterministic")
	}
	// Tiny budgets fall back to single-device sampling.
	res3, err := Run(c, Config{Target: TargetNvidiaMQPU, Devices: 4, Shots: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Counts.Total() != 2 {
		t.Fatal("small-budget fallback broken")
	}
}

func TestWorkersDefaults(t *testing.T) {
	if w := (Config{Target: TargetAer}).workers(); w != 1 {
		t.Fatalf("aer default workers %d", w)
	}
	if w := (Config{Target: TargetNvidia}).workers(); w < 1 {
		t.Fatalf("nvidia default workers %d", w)
	}
	if w := (Config{Target: TargetNvidia, Workers: 3}).workers(); w != 3 {
		t.Fatalf("explicit workers %d", w)
	}
	if d := (Config{}).devices(); d != 1 {
		t.Fatalf("default devices %d", d)
	}
}
