// Package backend exposes the execution targets of the paper's
// pipeline behind one interface, mirroring the CUDA-Q target strings
// the paper sets on the command line (§E.3):
//
//   - "aer"         — the Qiskit-Aer-on-CPU baseline: the same engine
//     forced serial (one worker, no fusion), the slow path of Fig. 4a;
//   - "nvidia"      — one simulated GPU: the parallel sharded engine
//     with gate fusion, the fast path of Fig. 4a;
//   - "nvidia-mgpu" — pooled device memory over MPI ranks
//     (internal/mgpu), the capacity-extending path;
//   - "nvidia-mqpu" — devices used as independent QPUs for
//     circuit-level parallelism (§3's four-QPU note);
//   - "pennylane"   — the lightning.gpu-like baseline: same parallel
//     engine plus the per-gate high-level→kernel transpilation latency
//     §4 identifies as Pennylane's overhead.
package backend

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/mgpu"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
)

// Target names an execution backend.
type Target string

// The supported targets.
const (
	TargetAer        Target = "aer"
	TargetNvidia     Target = "nvidia"
	TargetNvidiaMGPU Target = "nvidia-mgpu"
	TargetNvidiaMQPU Target = "nvidia-mqpu"
	TargetPennylane  Target = "pennylane"
)

// Targets lists every supported target.
func Targets() []Target {
	return []Target{TargetAer, TargetNvidia, TargetNvidiaMGPU, TargetNvidiaMQPU, TargetPennylane}
}

// Valid reports whether t is a known target.
func (t Target) Valid() bool {
	switch t {
	case TargetAer, TargetNvidia, TargetNvidiaMGPU, TargetNvidiaMQPU, TargetPennylane:
		return true
	}
	return false
}

// Config selects and tunes a target.
type Config struct {
	Target Target
	// Devices is the simulated device count for mgpu/mqpu targets
	// (must be a power of two for mgpu). Default 1.
	Devices int
	// Workers is the goroutine parallelism per device; 0 selects
	// NumCPU for GPU-class targets and 1 for aer.
	Workers int
	// Shots samples measurement outcomes from the final state; 0
	// returns probabilities only.
	Shots int
	// Seed drives shot sampling.
	Seed uint64
	// FusionWindow forwards to the kernel transformation (GPU-class
	// targets only; aer runs unfused like Aer's default path here).
	FusionWindow int
	// PruneAngle forwards to the kernel transformation.
	PruneAngle float64
	// TileBits selects the cache-blocked tiled executor: runs of gates
	// whose mixing operands sit below 2^TileBits amplitudes apply to
	// L2-resident tiles in one memory pass per run instead of one per
	// gate, with SWAPs absorbed into a qubit relabeling table. The
	// tiled path is bit-identical to the per-gate path. 0 selects
	// kernel.DefaultTileBits on GPU-class targets and leaves aer on the
	// per-gate baseline; negative disables tiling everywhere; positive
	// forces that tile width on any target.
	TileBits int
}

// pennylaneTranspileReps models the per-gate latency of Pennylane's
// high-level-to-kernel translation (§4): each gate's matrix is
// re-derived this many times before execution, making the overhead
// real work proportional to gate count rather than a timer sleep. The
// count is calibrated to ~1 ms per gate — the order of Python-object
// lowering the paper's diagnosis implies.
const pennylaneTranspileReps = 12000

// Result carries everything a run produces.
type Result struct {
	Target        Target
	Probabilities []float64
	Counts        sampling.Counts
	Duration      time.Duration
	KernelStats   kernel.Stats
	// Exchanges/BytesSent are the mgpu communication counters (zero
	// for single-device targets).
	Exchanges int
	BytesSent int64
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.Target == TargetAer {
		return 1
	}
	return runtime.NumCPU()
}

func (c Config) devices() int {
	if c.Devices > 0 {
		return c.Devices
	}
	return 1
}

// tileBits resolves the tiled-executor policy: explicit widths win,
// negative disables, and the zero default enables tiling on GPU-class
// targets while keeping aer on the per-gate sweep baseline (the same
// way aer keeps fusion off).
func (c Config) tileBits() int {
	switch {
	case c.TileBits > 0:
		return c.TileBits
	case c.TileBits < 0:
		return 0
	case c.Target == TargetAer:
		return 0
	default:
		return kernel.DefaultTileBits
	}
}

// Run transforms the circuit for the configured target and executes it.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	opts := kernel.Options{PruneAngle: cfg.PruneAngle}
	switch cfg.Target {
	case TargetAer:
		// Aer baseline: no fusion, serial; the kernel transformation
		// still runs (Q-GEAR converts regardless; the target decides
		// execution).
	case TargetNvidiaMGPU:
		opts.FusionWindow = cfg.FusionWindow
		nloc := c.NumQubits - int(qmath.Log2Ceil(uint64(cfg.devices())))
		opts.FusionLocalQubits = nloc
	default:
		opts.FusionWindow = cfg.FusionWindow
	}
	k, stats, err := kernel.FromCircuit(c, opts)
	if err != nil {
		return nil, err
	}
	res, err := RunKernel(k, cfg)
	if err != nil {
		return nil, err
	}
	res.KernelStats = stats
	return res, nil
}

// RunKernel executes an already-transformed kernel.
func RunKernel(k *kernel.Kernel, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	start := time.Now()
	res := &Result{Target: cfg.Target}

	switch cfg.Target {
	case TargetNvidiaMGPU:
		out, err := mgpu.SimulateKernel(k, cfg.devices(), cfg.workers())
		if err != nil {
			return nil, err
		}
		res.Probabilities = out.Probabilities
		res.Exchanges = out.Exchanges
		res.BytesSent = out.BytesSent
	case TargetPennylane:
		pennylaneTranspile(k)
		probs, err := runSingle(k, cfg.workers(), cfg.tileBits())
		if err != nil {
			return nil, err
		}
		res.Probabilities = probs
	default: // aer, nvidia, and mqpu-with-one-circuit all run the local engine
		probs, err := runSingle(k, cfg.workers(), cfg.tileBits())
		if err != nil {
			return nil, err
		}
		res.Probabilities = probs
	}

	if cfg.Shots > 0 {
		counts, err := sampleShots(res.Probabilities, cfg)
		if err != nil {
			return nil, err
		}
		res.Counts = counts
	}
	res.Duration = time.Since(start)
	return res, nil
}

// SampleShots draws measurement shots from an already-computed
// probability vector exactly as RunKernel would for cfg — including
// the mqpu split-across-devices path — so schedulers that defer
// sampling (the service layer) still match a standalone Run bit for
// bit.
func SampleShots(probs []float64, cfg Config) (sampling.Counts, error) {
	return sampleShots(probs, cfg)
}

// sampleShots draws measurement shots. On the mqpu target the shot
// budget is split across the simulated QPUs and sampled concurrently —
// the multi-shot parallelism of the paper's ref. [23] (and the reason
// §3 notes mqpu "significantly improves the execution time"); results
// merge into one Counts and stay deterministic under a fixed seed.
func sampleShots(probs []float64, cfg Config) (sampling.Counts, error) {
	devices := cfg.devices()
	if cfg.Target != TargetNvidiaMQPU || devices <= 1 || cfg.Shots < devices {
		return sampling.Sample(probs, cfg.Shots, qmath.NewRNG(cfg.Seed))
	}
	per := cfg.Shots / devices
	rem := cfg.Shots % devices
	parts := make([]sampling.Counts, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		shots := per
		if d < rem {
			shots++
		}
		wg.Add(1)
		go func(d, shots int) {
			defer wg.Done()
			parts[d], errs[d] = sampling.Sample(probs, shots, qmath.NewRNG(cfg.Seed+uint64(d)*0x9e3779b9))
		}(d, shots)
	}
	wg.Wait()
	merged := make(sampling.Counts)
	for d := 0; d < devices; d++ {
		if errs[d] != nil {
			return nil, errs[d]
		}
		for k, v := range parts[d] {
			merged[k] += v
		}
	}
	return merged, nil
}

// runSingle executes on one in-memory device, through the tiled
// executor when tileBits > 0 (bit-identical output either way).
func runSingle(k *kernel.Kernel, workers, tileBits int) ([]float64, error) {
	s, err := statevec.New(k.NumQubits, workers)
	if err != nil {
		return nil, err
	}
	if tileBits > 0 {
		err = kernel.ExecuteTiled(k, s, tileBits)
	} else {
		err = kernel.Execute(k, s)
	}
	if err != nil {
		return nil, err
	}
	return s.Probabilities(), nil
}

// pennylaneTranspile burns the per-gate translation cost §4 describes:
// every gate's unitary is re-derived pennylaneTranspileReps times, the
// moral equivalent of re-lowering a Python object per invocation.
func pennylaneTranspile(k *kernel.Kernel) {
	sink := complex(0, 0)
	for _, in := range k.Instrs {
		if in.Kind != kernel.KGate || !in.Gate.IsUnitary() {
			continue
		}
		for rep := 0; rep < pennylaneTranspileReps; rep++ {
			switch in.Gate.Arity() {
			case 1:
				m := gate.Matrix1(in.Gate, in.Params)
				sink += m[0]
			case 2:
				m := gate.Matrix2(in.Gate, in.Params)
				sink += m[0]
			}
		}
	}
	_ = sink
}

// RunBatch executes a batch of circuits. On the mqpu target the batch
// is spread across cfg.Devices simulated QPUs running concurrently
// (the §3 four-QPU mode); every other target runs sequentially.
func RunBatch(circuits []*circuit.Circuit, cfg Config) ([]*Result, error) {
	if cfg.Target != TargetNvidiaMQPU {
		out := make([]*Result, len(circuits))
		for i, c := range circuits {
			r, err := Run(c, cfg)
			if err != nil {
				return nil, fmt.Errorf("backend: circuit %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}

	devices := cfg.devices()
	// Split worker budget across concurrently running devices.
	perDev := cfg
	perDev.Target = TargetNvidia
	if w := cfg.workers() / devices; w > 0 {
		perDev.Workers = w
	} else {
		perDev.Workers = 1
	}
	out := make([]*Result, len(circuits))
	errs := make([]error, len(circuits))
	sem := make(chan struct{}, devices)
	var wg sync.WaitGroup
	for i, c := range circuits {
		wg.Add(1)
		go func(i int, c *circuit.Circuit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfgi := perDev
			cfgi.Seed = cfg.Seed + uint64(i)
			r, err := Run(c, cfgi)
			out[i], errs[i] = r, err
			if r != nil {
				r.Target = TargetNvidiaMQPU
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("backend: circuit %d: %w", i, err)
		}
	}
	return out, nil
}
