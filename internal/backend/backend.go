// Package backend exposes the execution targets of the paper's
// pipeline behind one interface, mirroring the CUDA-Q target strings
// the paper sets on the command line (§E.3):
//
//   - "aer"         — the Qiskit-Aer-on-CPU baseline: the same engine
//     forced serial (one worker, no fusion), the slow path of Fig. 4a;
//   - "nvidia"      — one simulated GPU: the parallel sharded engine
//     with gate fusion, the fast path of Fig. 4a;
//   - "nvidia-mgpu" — pooled device memory over MPI ranks
//     (internal/mgpu), the capacity-extending path;
//   - "nvidia-mqpu" — devices used as independent QPUs for
//     circuit-level parallelism (§3's four-QPU note);
//   - "pennylane"   — the lightning.gpu-like baseline: same parallel
//     engine plus the per-gate high-level→kernel transpilation latency
//     §4 identifies as Pennylane's overhead.
package backend

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"qgear/internal/cancel"
	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/mgpu"
	"qgear/internal/qmath"
	"qgear/internal/sampling"
	"qgear/internal/statevec"
	"qgear/internal/telemetry"
)

// Target names an execution backend.
type Target string

// The supported targets.
const (
	TargetAer        Target = "aer"
	TargetNvidia     Target = "nvidia"
	TargetNvidiaMGPU Target = "nvidia-mgpu"
	TargetNvidiaMQPU Target = "nvidia-mqpu"
	TargetPennylane  Target = "pennylane"
)

// Targets lists every supported target.
func Targets() []Target {
	return []Target{TargetAer, TargetNvidia, TargetNvidiaMGPU, TargetNvidiaMQPU, TargetPennylane}
}

// Valid reports whether t is a known target.
func (t Target) Valid() bool {
	switch t {
	case TargetAer, TargetNvidia, TargetNvidiaMGPU, TargetNvidiaMQPU, TargetPennylane:
		return true
	}
	return false
}

// Config selects and tunes a target.
type Config struct {
	Target Target
	// Devices is the simulated device count for mgpu/mqpu targets
	// (must be a power of two for mgpu). Default 1.
	Devices int
	// Workers is the goroutine parallelism per device; 0 selects
	// NumCPU for GPU-class targets and 1 for aer.
	Workers int
	// Shots samples measurement outcomes from the final state; 0
	// returns probabilities only.
	Shots int
	// Seed drives shot sampling.
	Seed uint64
	// FusionWindow forwards to the kernel transformation (GPU-class
	// targets only; aer runs unfused like Aer's default path here).
	FusionWindow int
	// PruneAngle forwards to the kernel transformation.
	PruneAngle float64
	// TileBits selects the cache-blocked tiled executor: runs of gates
	// whose mixing operands sit below 2^TileBits amplitudes apply to
	// L2-resident tiles in one memory pass per run instead of one per
	// gate, with SWAPs absorbed into a qubit relabeling table. The
	// tiled path is bit-identical to the per-gate path. 0 selects
	// kernel.AutoTileBits (cache-geometry detected at startup, env
	// QGEAR_TILE_BITS override) on GPU-class targets and leaves aer on
	// the per-gate baseline; negative disables tiling everywhere;
	// positive forces that tile width on any target.
	TileBits int
	// PlanFusion enables within-run fusion in the plan compiler:
	// adjacent same-target single-qubit gates pre-multiply into one
	// micro-op. Off (the default) keeps planned execution
	// arithmetic-identical to the per-gate path; on trades exactness
	// at the ~1e-15 rounding level for fewer in-tile multiplies.
	PlanFusion bool
	// Cancel, when non-nil, is a cooperative cancellation flag the
	// executors poll at work boundaries (tile run, exchange segment,
	// Pauli term): a tripped flag stops the run with the flag's error.
	// Nil runs unbounded. Cancel never shapes the output of a run that
	// completes, so it is excluded from option signatures and cache
	// keys.
	Cancel *cancel.Flag
	// ExecHook, when non-nil, runs at the start of every execution
	// (RunCompiled / RunExpectationCompiled), before any state is
	// allocated. It exists for fault injection: chaos tests panic or
	// delay here to exercise the serving layer's isolation without
	// touching the engines. Like Cancel, it never shapes a completed
	// run's output and stays out of signatures.
	ExecHook func()
}

// execHook fires the injection point if one is configured.
func (c Config) execHook() {
	if c.ExecHook != nil {
		c.ExecHook()
	}
}

// pennylaneTranspileReps models the per-gate latency of Pennylane's
// high-level-to-kernel translation (§4): each gate's matrix is
// re-derived this many times before execution, making the overhead
// real work proportional to gate count rather than a timer sleep. The
// count is calibrated to ~1 ms per gate — the order of Python-object
// lowering the paper's diagnosis implies.
const pennylaneTranspileReps = 12000

// Result carries everything a run produces.
type Result struct {
	Target        Target
	Probabilities []float64
	Counts        sampling.Counts
	Duration      time.Duration
	// NumQubits is the simulated register width. Expectation results
	// carry no probability vector, so the width is recorded explicitly
	// (probability results record it too; older persisted artifacts may
	// leave it 0, in which case it is inferred from the vector length).
	NumQubits int
	// ExpValue is the exact ⟨H⟩ of an expectation job (RunExpectation);
	// nil on probability/sampling runs.
	ExpValue *float64
	// ExpTerms is the number of Pauli terms the expectation evaluated.
	ExpTerms int
	// SweepValues is the per-point ⟨H⟩ vector of a Hamiltonian sweep
	// (RunSweep with an observable), in point order; nil otherwise.
	SweepValues []float64
	// SweepCounts is the per-point sampled histogram of a sampling
	// sweep (RunSweep without an observable, Shots > 0); nil otherwise.
	SweepCounts []sampling.Counts
	// SweepPoints is the number of parameter points a sweep (or
	// gradient) job evaluated; 0 on non-sweep runs.
	SweepPoints int
	// Rebinds counts sweep points served by rebinding the compiled
	// plan; SweepCompiles counts points that needed a full per-point
	// compile (fusion/pruning configurations). Their sum is SweepPoints
	// on sweep runs.
	Rebinds       int
	SweepCompiles int
	// Gradient is the parameter-shift gradient ∂⟨H⟩/∂θ of a gradient
	// job, one entry per parameter slot; nil otherwise. ExpValue then
	// carries ⟨H⟩ at the base point.
	Gradient []float64
	// KernelStats reports the circuit→kernel transformation.
	KernelStats kernel.Stats
	// PlanStats reports what the plan compiler did (tile runs, global
	// fallbacks, fused micro-ops, exchange segments); nil when the run
	// took the per-gate path.
	PlanStats *kernel.PlanStats
	// TileBits is the effective tile width the run executed with; 0 on
	// the per-gate path.
	TileBits int
	// Exchanges/BytesSent/AvoidedExchanges are the mgpu communication
	// counters (zero for single-device targets): exchanges paid, bytes
	// shipped, and exchanges the per-gate baseline would have paid
	// that this run resolved locally or batched away.
	Exchanges        int
	BytesSent        int64
	AvoidedExchanges int
	// Trace is the per-stage timing breakdown of the run (execute,
	// readout, sample, ... — see the telemetry.Stage* constants). The
	// service layer prepends its own spans (queue wait, plan-cache
	// resolution) and returns the whole trace in /v1/results; spans are
	// sequential, so their sum never exceeds Duration plus the serving
	// overhead. Not persisted: a store-loaded result carries a fresh
	// store_load span instead.
	Trace *telemetry.Trace
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.Target == TargetAer {
		return 1
	}
	return runtime.NumCPU()
}

func (c Config) devices() int {
	if c.Devices > 0 {
		return c.Devices
	}
	return 1
}

// tileBits resolves the tiled-executor policy: explicit widths win,
// negative disables, and the zero default enables tiling on GPU-class
// targets while keeping aer on the per-gate sweep baseline (the same
// way aer keeps fusion off). The auto width comes from the cache
// geometry detected at startup.
func (c Config) tileBits() int {
	switch {
	case c.TileBits > 0:
		return c.TileBits
	case c.TileBits < 0:
		return 0
	case c.Target == TargetAer:
		return 0
	default:
		return kernel.AutoTileBits()
	}
}

// EffectiveTileBits is the tile width this configuration actually
// executes with once the auto policy is resolved (0 = per-gate path).
// Persistence layers sign artifacts with this, not the raw TileBits
// knob: a "0 = auto" setting resolves differently across machines and
// QGEAR_TILE_BITS environments, and with PlanFusion enabled a
// different effective width changes run boundaries and therefore
// rounding — so artifacts must not be trusted across that divide.
func (c Config) EffectiveTileBits() int { return c.tileBits() }

// globalBits is the rank-index bit count of the distributed target (0
// on single-device targets).
func (c Config) globalBits() int {
	if c.Target != TargetNvidiaMGPU {
		return 0
	}
	return int(qmath.Log2Ceil(uint64(c.devices())))
}

// transformOptions lowers the config to circuit→kernel transform
// options for a circuit of n qubits.
func (c Config) transformOptions(n int) kernel.Options {
	opts := kernel.Options{PruneAngle: c.PruneAngle}
	switch c.Target {
	case TargetAer:
		// Aer baseline: no fusion, serial; the kernel transformation
		// still runs (Q-GEAR converts regardless; the target decides
		// execution).
	case TargetNvidiaMGPU:
		opts.FusionWindow = c.FusionWindow
		opts.FusionLocalQubits = n - c.globalBits()
	default:
		opts.FusionWindow = c.FusionWindow
	}
	return opts
}

// Compiled is a circuit lowered all the way to the execution IR: the
// transformed kernel plus its compiled TilePlan (nil when the target
// runs per-gate). A Compiled is immutable and safe to execute
// concurrently — the service layer caches them across submissions so
// repeat work skips transformation and planning entirely.
type Compiled struct {
	Kernel *kernel.Kernel
	// Plan is the compiled execution schedule; nil selects the
	// per-gate executor (aer, disabled tiling, or a state too small to
	// tile).
	Plan *kernel.TilePlan
	// TransformStats reports the circuit→kernel conversion.
	TransformStats kernel.Stats
	// TileBits is the plan's effective tile width (0 when Plan is nil).
	TileBits int
}

// Compile transforms a circuit for the configured target and compiles
// its execution plan, without running anything.
func Compile(c *circuit.Circuit, cfg Config) (*Compiled, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	k, stats, err := kernel.FromCircuit(c, cfg.transformOptions(c.NumQubits))
	if err != nil {
		return nil, err
	}
	comp, err := compileKernel(k, cfg)
	if err != nil {
		return nil, err
	}
	comp.TransformStats = stats
	return comp, nil
}

// compileKernel plans an already-transformed kernel. States too small
// to tile fall back to the per-gate executor (nil plan); real planning
// failures surface as errors.
func compileKernel(k *kernel.Kernel, cfg Config) (*Compiled, error) {
	comp := &Compiled{Kernel: k}
	tb := cfg.tileBits()
	if tb <= 0 {
		return comp, nil
	}
	plan, err := kernel.Plan(k, kernel.PlanConfig{
		TileBits:   tb,
		GlobalBits: cfg.globalBits(),
		FuseRuns:   cfg.PlanFusion,
	})
	if err != nil {
		if errors.Is(err, kernel.ErrNoTiling) {
			return comp, nil
		}
		return nil, err
	}
	comp.Plan = plan
	comp.TileBits = plan.TileBits
	return comp, nil
}

// Run transforms the circuit for the configured target and executes it
// — Compile followed by RunCompiled.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	comp, err := Compile(c, cfg)
	if err != nil {
		return nil, err
	}
	return RunCompiled(comp, cfg)
}

// RunKernel executes an already-transformed kernel, planning it on the
// fly.
func RunKernel(k *kernel.Kernel, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	comp, err := compileKernel(k, cfg)
	if err != nil {
		return nil, err
	}
	return RunCompiled(comp, cfg)
}

// RunCompiled executes a compiled circuit. Every engine consumes the
// same plan: the single-process statevec executor runs it directly,
// the distributed engine runs it against each rank shard, and a nil
// plan selects the per-gate baseline on either.
func RunCompiled(comp *Compiled, cfg Config) (*Result, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("backend: unknown target %q", cfg.Target)
	}
	start := time.Now()
	res := &Result{Target: cfg.Target, KernelStats: comp.TransformStats, TileBits: comp.TileBits, NumQubits: comp.Kernel.NumQubits}
	if comp.Plan != nil {
		stats := comp.Plan.Stats
		res.PlanStats = &stats
	}
	tr := &telemetry.Trace{}
	cfg.execHook()

	switch cfg.Target {
	case TargetNvidiaMGPU:
		t0 := time.Now()
		out, err := mgpu.SimulateCompiledCancel(comp.Kernel, comp.Plan, cfg.devices(), cfg.workers(), cfg.Cancel)
		if err != nil {
			return nil, err
		}
		res.Probabilities = out.Probabilities
		res.Exchanges = out.Exchanges
		res.BytesSent = out.BytesSent
		res.AvoidedExchanges = out.AvoidedExchanges
		addDistSpans(tr, time.Since(t0), out.ExchangeTime)
	case TargetPennylane:
		t0 := time.Now()
		pennylaneTranspile(comp.Kernel)
		tr.Add(telemetry.StageTranspile, time.Since(t0))
		probs, err := runSingleTraced(comp, cfg.workers(), tr, cfg.Cancel)
		if err != nil {
			return nil, err
		}
		res.Probabilities = probs
	default: // aer, nvidia, and mqpu-with-one-circuit all run the local engine
		probs, err := runSingleTraced(comp, cfg.workers(), tr, cfg.Cancel)
		if err != nil {
			return nil, err
		}
		res.Probabilities = probs
	}

	if cfg.Shots > 0 {
		t0 := time.Now()
		counts, err := sampleShots(res.Probabilities, cfg)
		if err != nil {
			return nil, err
		}
		res.Counts = counts
		tr.Add(telemetry.StageSample, time.Since(t0))
	}
	res.Duration = time.Since(start)
	res.Trace = tr
	return res, nil
}

// addDistSpans splits a distributed execution's wall time into compute
// and exchange spans. The exchange share is the root rank's measured
// wait; it is clamped below the whole so the span sum stays an exact
// partition of the measured wall time.
func addDistSpans(tr *telemetry.Trace, wall, exchange time.Duration) {
	if exchange > 0 && exchange < wall {
		tr.Add(telemetry.StageExchange, exchange)
		wall -= exchange
	}
	tr.Add(telemetry.StageExecute, wall)
}

// SampleShots draws measurement shots from an already-computed
// probability vector exactly as RunKernel would for cfg — including
// the mqpu split-across-devices path — so schedulers that defer
// sampling (the service layer) still match a standalone Run bit for
// bit.
func SampleShots(probs []float64, cfg Config) (sampling.Counts, error) {
	return sampleShots(probs, cfg)
}

// sampleShots draws measurement shots. On the mqpu target the shot
// budget is split across the simulated QPUs and sampled concurrently —
// the multi-shot parallelism of the paper's ref. [23] (and the reason
// §3 notes mqpu "significantly improves the execution time"); results
// merge into one Counts and stay deterministic under a fixed seed.
func sampleShots(probs []float64, cfg Config) (sampling.Counts, error) {
	devices := cfg.devices()
	if cfg.Target != TargetNvidiaMQPU || devices <= 1 || cfg.Shots < devices {
		return sampling.Sample(probs, cfg.Shots, qmath.NewRNG(cfg.Seed))
	}
	per := cfg.Shots / devices
	rem := cfg.Shots % devices
	parts := make([]sampling.Counts, devices)
	errs := make([]error, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		shots := per
		if d < rem {
			shots++
		}
		wg.Add(1)
		go func(d, shots int) {
			defer wg.Done()
			parts[d], errs[d] = sampling.Sample(probs, shots, qmath.NewRNG(cfg.Seed+uint64(d)*0x9e3779b9))
		}(d, shots)
	}
	wg.Wait()
	merged := make(sampling.Counts)
	for d := 0; d < devices; d++ {
		if errs[d] != nil {
			return nil, errs[d]
		}
		for k, v := range parts[d] {
			merged[k] += v
		}
	}
	return merged, nil
}

// runSingleTraced executes a compiled circuit on one in-memory device,
// through the plan when one was compiled (bit-identical output either
// way), recording execute and readout spans into tr.
func runSingleTraced(comp *Compiled, workers int, tr *telemetry.Trace, flag *cancel.Flag) ([]float64, error) {
	t0 := time.Now()
	s, err := runSingleState(comp, workers, flag)
	if err != nil {
		return nil, err
	}
	tr.Add(telemetry.StageExecute, time.Since(t0))
	t1 := time.Now()
	probs := s.Probabilities()
	tr.Add(telemetry.StageReadout, time.Since(t1))
	return probs, nil
}

// runSingleState executes a compiled circuit and returns the resident
// state itself — possibly with a pending qubit permutation, which the
// expectation evaluator reads through rather than materializing.
func runSingleState(comp *Compiled, workers int, flag *cancel.Flag) (*statevec.State, error) {
	s, err := statevec.New(comp.Kernel.NumQubits, workers)
	if err != nil {
		return nil, err
	}
	if comp.Plan != nil {
		err = comp.Plan.ExecuteCancel(s, flag)
	} else {
		err = kernel.ExecuteCancel(comp.Kernel, s, flag)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// pennylaneTranspile burns the per-gate translation cost §4 describes:
// every gate's unitary is re-derived pennylaneTranspileReps times, the
// moral equivalent of re-lowering a Python object per invocation.
func pennylaneTranspile(k *kernel.Kernel) {
	sink := complex(0, 0)
	for _, in := range k.Instrs {
		if in.Kind != kernel.KGate || !in.Gate.IsUnitary() {
			continue
		}
		for rep := 0; rep < pennylaneTranspileReps; rep++ {
			switch in.Gate.Arity() {
			case 1:
				m := gate.Matrix1(in.Gate, in.Params)
				sink += m[0]
			case 2:
				m := gate.Matrix2(in.Gate, in.Params)
				sink += m[0]
			}
		}
	}
	_ = sink
}

// RunBatch executes a batch of circuits: compile each, then execute
// the compiled batch.
func RunBatch(circuits []*circuit.Circuit, cfg Config) ([]*Result, error) {
	comps := make([]*Compiled, len(circuits))
	for i, c := range circuits {
		comp, err := Compile(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("backend: circuit %d: %w", i, err)
		}
		comps[i] = comp
	}
	return RunBatchCompiled(comps, cfg)
}

// RunBatchCompiled executes a batch of compiled circuits. On the mqpu
// target the batch is spread across cfg.Devices simulated QPUs running
// concurrently (the §3 four-QPU mode); every other target runs
// sequentially. Plans compiled under the mqpu target are valid on the
// per-device engine — both are single-process plan consumers.
func RunBatchCompiled(comps []*Compiled, cfg Config) ([]*Result, error) {
	if cfg.Target != TargetNvidiaMQPU {
		out := make([]*Result, len(comps))
		for i, comp := range comps {
			r, err := RunCompiled(comp, cfg)
			if err != nil {
				return nil, fmt.Errorf("backend: circuit %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}

	devices := cfg.devices()
	// Split worker budget across concurrently running devices.
	perDev := cfg
	perDev.Target = TargetNvidia
	if w := cfg.workers() / devices; w > 0 {
		perDev.Workers = w
	} else {
		perDev.Workers = 1
	}
	out := make([]*Result, len(comps))
	errs := make([]error, len(comps))
	sem := make(chan struct{}, devices)
	var wg sync.WaitGroup
	for i, comp := range comps {
		wg.Add(1)
		go func(i int, comp *Compiled) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfgi := perDev
			cfgi.Seed = cfg.Seed + uint64(i)
			r, err := RunCompiled(comp, cfgi)
			out[i], errs[i] = r, err
			if r != nil {
				r.Target = TargetNvidiaMQPU
			}
		}(i, comp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("backend: circuit %d: %w", i, err)
		}
	}
	return out, nil
}
