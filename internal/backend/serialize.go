package backend

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"qgear/internal/kernel"
)

// Compiled artifacts round-trip through a versioned, CRC-protected
// container so the persistence layer can keep execution IR across
// process restarts: a warm-started server decodes the plan it compiled
// last run instead of re-transforming and re-planning the circuit.
// The payload is the exact kernel + TilePlan encoding from
// internal/kernel, so a decoded Compiled executes amplitude-
// identically to the original.

var compiledMagic = []byte("QGCMP1\n")

// compiledVersion tags the Compiled container layout. Version 2 added
// binding sites to the plan encoding (compile-once parameter sweeps);
// version-1 artifacts are rejected on load and recompiled fresh.
const compiledVersion uint16 = 2

// maxCompiledBytes bounds one encoded Compiled (a plan is a few MB at
// the sizes this repo serves; 1 GiB is a corruption guard, not a real
// ceiling).
const maxCompiledBytes = 1 << 30

// Encode writes the compiled circuit to w: magic, version, payload
// length, payload (kernel, optional plan, stats, tile width), CRC-32
// of the payload.
func (c *Compiled) Encode(w io.Writer) error {
	var payload bytes.Buffer
	if err := kernel.EncodeKernel(&payload, c.Kernel); err != nil {
		return fmt.Errorf("backend: encoding kernel: %w", err)
	}
	if c.Plan != nil {
		payload.WriteByte(1)
		if err := kernel.EncodePlan(&payload, c.Plan); err != nil {
			return fmt.Errorf("backend: encoding plan: %w", err)
		}
	} else {
		payload.WriteByte(0)
	}
	var stats [8]byte
	for _, v := range [...]int{
		c.TransformStats.SourceOps, c.TransformStats.EmittedOps,
		c.TransformStats.FusedGroups, c.TransformStats.FusedGates,
		c.TransformStats.PrunedGates, c.TransformStats.Measurements,
		c.TileBits,
	} {
		binary.LittleEndian.PutUint64(stats[:], uint64(int64(v)))
		payload.Write(stats[:])
	}

	if _, err := w.Write(compiledMagic); err != nil {
		return fmt.Errorf("backend: %w", err)
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint16(hdr[0:2], compiledVersion)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[6:10], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("backend: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("backend: %w", err)
	}
	return nil
}

// DecodeCompiled reads a compiled circuit written by Encode, verifying
// magic, version and payload checksum before parsing a single field —
// a truncated or bit-flipped file is rejected, never half-decoded.
func DecodeCompiled(r io.Reader) (*Compiled, error) {
	got := make([]byte, len(compiledMagic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("backend: reading compiled magic: %w", err)
	}
	if !bytes.Equal(got, compiledMagic) {
		return nil, fmt.Errorf("backend: bad compiled-artifact magic %q", got)
	}
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("backend: reading compiled header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != compiledVersion {
		return nil, fmt.Errorf("backend: unsupported compiled-artifact version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[2:6])
	if n > maxCompiledBytes {
		return nil, fmt.Errorf("backend: implausible compiled payload of %d bytes", n)
	}
	want := binary.LittleEndian.Uint32(hdr[6:10])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("backend: reading compiled payload: %w", err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != want {
		return nil, fmt.Errorf("backend: compiled payload checksum mismatch (file %08x, payload %08x)", want, sum)
	}

	pr := bytes.NewReader(payload)
	k, err := kernel.DecodeKernel(pr)
	if err != nil {
		return nil, err
	}
	comp := &Compiled{Kernel: k}
	var hasPlan [1]byte
	if _, err := io.ReadFull(pr, hasPlan[:]); err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	if hasPlan[0] != 0 {
		plan, err := kernel.DecodePlan(pr)
		if err != nil {
			return nil, err
		}
		if plan.NumQubits != k.NumQubits {
			return nil, fmt.Errorf("backend: compiled plan spans %d qubits, kernel %d", plan.NumQubits, k.NumQubits)
		}
		comp.Plan = plan
	}
	var buf [8]byte
	for _, dst := range [...]*int{
		&comp.TransformStats.SourceOps, &comp.TransformStats.EmittedOps,
		&comp.TransformStats.FusedGroups, &comp.TransformStats.FusedGates,
		&comp.TransformStats.PrunedGates, &comp.TransformStats.Measurements,
		&comp.TileBits,
	} {
		if _, err := io.ReadFull(pr, buf[:]); err != nil {
			return nil, fmt.Errorf("backend: %w", err)
		}
		*dst = int(int64(binary.LittleEndian.Uint64(buf[:])))
	}
	if pr.Len() != 0 {
		return nil, fmt.Errorf("backend: %d trailing bytes after compiled payload", pr.Len())
	}
	return comp, nil
}

// SizeBytes returns the compiled circuit's resident memory footprint
// (kernel instruction stream plus the plan's segment arrays) — what a
// byte-accounted plan cache charges per entry.
func (c *Compiled) SizeBytes() int64 {
	n := int64(unsafe.Sizeof(Compiled{}))
	if c.Kernel != nil {
		n += c.Kernel.SizeBytes()
	}
	if c.Plan != nil {
		n += c.Plan.SizeBytes()
	}
	return n
}

// countsEntryBytes approximates one Counts map entry's resident
// footprint: 8 B key + 8 B value plus bucket/overflow overhead.
const countsEntryBytes = 48

// SizeBytes returns the result's resident memory footprint. The 2^n
// probability vector dominates (8 bytes per amplitude); sampled counts
// and the plan-stats pointer ride along.
func (r *Result) SizeBytes() int64 {
	n := int64(unsafe.Sizeof(Result{})) + 8*int64(len(r.Probabilities)) + countsEntryBytes*int64(len(r.Counts))
	if r.PlanStats != nil {
		n += int64(unsafe.Sizeof(*r.PlanStats))
	}
	n += 8 * int64(len(r.SweepValues))
	n += 8 * int64(len(r.Gradient))
	for _, c := range r.SweepCounts {
		n += 24 + countsEntryBytes*int64(len(c))
	}
	return n
}
