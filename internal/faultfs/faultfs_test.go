package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestOSPassthrough exercises the passthrough against a real tempdir.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(sub, "x.bin")
	if err := fsys.WriteFile(p, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(p)
	if err != nil || string(got) != "payload" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if fi, err := fsys.Stat(p); err != nil || fi.Size() != 7 {
		t.Fatalf("Stat = %v, %v", fi, err)
	}
	q := filepath.Join(sub, "y.bin")
	if err := fsys.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "y.bin" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Remove(q); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministic pins that two injectors with the same seed make
// identical fault decisions over the same operation sequence.
func TestDeterministic(t *testing.T) {
	dir := t.TempDir()
	run := func(seed uint64) []Fault {
		in := New(OS{}, Config{
			Seed: seed,
			PerOp: map[Op]Rates{
				OpRead:  {ErrPerMille: 300, CorruptPerMille: 300},
				OpWrite: {ErrPerMille: 200, ShortPerMille: 300},
			},
		})
		p := filepath.Join(dir, "f.bin")
		for i := 0; i < 200; i++ {
			_ = in.WriteFile(p, []byte("0123456789"), 0o644)
			_, _ = in.ReadFile(p)
		}
		return in.Faults()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("expected faults at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("fault counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Kind != b[i].Kind {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Kind != c[i].Kind {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestInjectedErrorsAndShortWrites checks the fault mechanics: injected
// errors are ErrInjected, short writes persist a strict prefix, and
// corrupt reads differ from disk while leaving the file intact.
func TestInjectedErrorsAndShortWrites(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("0123456789abcdef")

	in := New(OS{}, Config{Seed: 7, PerOp: map[Op]Rates{OpWrite: {ShortPerMille: 1000}}})
	p := filepath.Join(dir, "short.bin")
	err := in.WriteFile(p, payload, 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want ErrInjected", err)
	}
	if on, err := os.ReadFile(p); err != nil || len(on) >= len(payload) {
		t.Fatalf("short write persisted %d bytes (err %v), want a strict prefix", len(on), err)
	}

	if err := os.WriteFile(p, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	in = New(OS{}, Config{Seed: 7, PerOp: map[Op]Rates{OpRead: {CorruptPerMille: 1000}}})
	got, err := in.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(payload) {
		t.Fatal("corrupt read returned pristine payload")
	}
	if on, _ := os.ReadFile(p); string(on) != string(payload) {
		t.Fatal("corrupt read modified the file on disk")
	}

	in = New(OS{}, Config{Seed: 7, PerOp: map[Op]Rates{OpRead: {ErrPerMille: 1000}}})
	if _, err := in.ReadFile(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v, want ErrInjected", err)
	}
	if in.FaultCount() != 1 {
		t.Fatalf("FaultCount = %d, want 1", in.FaultCount())
	}
}

// TestLatency checks that configured latency is actually added.
func TestLatency(t *testing.T) {
	dir := t.TempDir()
	in := New(OS{}, Config{Seed: 1, PerOp: map[Op]Rates{OpMeta: {Latency: 30 * time.Millisecond}}})
	t0 := time.Now()
	if _, err := in.Stat(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("expected not-exist error")
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("Stat returned in %v, want >= 30ms of injected latency", d)
	}
}
