// Package faultfs provides a pluggable filesystem seam for the
// persistence layer plus a deterministic fault injector for the chaos
// harness. The store performs every disk operation through the FS
// interface; production uses the OS passthrough, and chaos tests wrap
// it in an Injector that makes seeded, reproducible decisions about
// which operations fail, return corrupted bytes, write short, or
// stall — so a failing chaos run replays exactly from its seed.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FS is the set of filesystem operations the store needs. WriteFile
// covers both direct writes and the tmp-file half of atomic renames;
// the write-render-rename discipline lives in the store, not here.
// AppendFile is the manifest journal's primitive (create-if-needed,
// append one framed record); Sync is the durability seam — fsync of a
// file or directory — so the chaos harness can fault exactly the
// operations a crash-safe store depends on.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	AppendFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	Sync(name string) error
}

// OS is the passthrough FS backed by the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (OS) AppendFile(name string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Sync fsyncs a file or directory by path. Opening read-only is enough
// on the platforms we target: fsync flushes the object the descriptor
// names, not the descriptor's access mode.
func (OS) Sync(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ErrInjected marks every error the injector fabricates, so tests can
// distinguish injected faults from real filesystem failures.
var ErrInjected = errors.New("faultfs: injected fault")

// Op classifies an operation for per-class fault rates.
type Op int

// Operation classes.
const (
	OpRead Op = iota
	OpWrite
	OpRename
	OpRemove
	OpMeta // MkdirAll / ReadDir / Stat
	OpSync // Sync (file and directory fsync)
	numOps
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpMeta:
		return "meta"
	case OpSync:
		return "sync"
	}
	return "unknown"
}

// Rates sets per-mille fault probabilities for one operation class.
// All zero means the class never faults.
type Rates struct {
	// ErrPerMille is the chance (out of 1000) the operation returns an
	// injected error without touching the underlying filesystem.
	ErrPerMille int
	// CorruptPerMille is the chance a read's payload comes back with
	// one byte flipped (reads only; the underlying read still happens).
	CorruptPerMille int
	// ShortPerMille is the chance a write persists only a prefix of the
	// payload and then reports an injected error (writes only).
	ShortPerMille int
	// Latency, when non-zero, is added to every operation of the class
	// that the per-mille draws did not already fail.
	Latency time.Duration
}

// Config seeds an Injector.
type Config struct {
	// Seed drives every fault decision; the same seed over the same
	// operation sequence reproduces the same faults.
	Seed uint64
	// PerOp maps operation classes to their fault rates; absent classes
	// never fault.
	PerOp map[Op]Rates
}

// Injector wraps an FS and injects deterministic faults. Decisions are
// a pure function of (seed, op class, per-class operation ordinal), so
// a single-goroutine replay of the same operation sequence hits the
// same faults; under concurrency the global fault *set* stays seeded
// and bounded even though interleaving may reassign which caller sees
// which ordinal.
type Injector struct {
	inner FS
	cfg   Config
	ops   [numOps]atomic.Uint64 // per-class operation ordinals
	// calls counts every operation per class, configured for faults or
	// not — the observability half of the harness (tests assert e.g.
	// "this boot path performed zero directory scans"). readDirs counts
	// ReadDir specifically, which shares the OpMeta fault class with
	// MkdirAll and Stat but is the signature of a full store scan.
	calls    [numOps]atomic.Uint64
	readDirs atomic.Uint64
	mu       sync.Mutex
	log      []Fault
}

// Fault records one injected fault, for post-hoc assertions.
type Fault struct {
	Op   Op
	Kind string // "err", "corrupt", "short"
	Path string
}

// New wraps inner with a seeded injector.
func New(inner FS, cfg Config) *Injector {
	if inner == nil {
		inner = OS{}
	}
	return &Injector{inner: inner, cfg: cfg}
}

// splitmix64 is the standard 64-bit mix — cheap, stateless, and good
// enough to decorrelate (seed, class, ordinal) triples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a deterministic pseudo-random value for the n-th
// operation of class op, with a salt decorrelating the independent
// decisions (error vs corrupt vs short) taken for one operation.
func (in *Injector) draw(op Op, n uint64, salt uint64) uint64 {
	return splitmix64(in.cfg.Seed ^ uint64(op)<<56 ^ salt<<48 ^ n)
}

// decide advances the class ordinal and resolves this operation's
// fate: which fault (if any) fires, and the latency to add.
func (in *Injector) decide(op Op, path string) (kind string, short int, lat time.Duration) {
	in.calls[op].Add(1)
	r, ok := in.cfg.PerOp[op]
	if !ok {
		return "", 0, 0
	}
	n := in.ops[op].Add(1) - 1
	switch {
	case r.ErrPerMille > 0 && in.draw(op, n, 1)%1000 < uint64(r.ErrPerMille):
		kind = "err"
	case op == OpRead && r.CorruptPerMille > 0 && in.draw(op, n, 2)%1000 < uint64(r.CorruptPerMille):
		kind = "corrupt"
	case op == OpWrite && r.ShortPerMille > 0 && in.draw(op, n, 3)%1000 < uint64(r.ShortPerMille):
		kind = "short"
		short = int(in.draw(op, n, 4))
	}
	if kind != "" {
		in.mu.Lock()
		in.log = append(in.log, Fault{Op: op, Kind: kind, Path: path})
		in.mu.Unlock()
	}
	return kind, short, r.Latency
}

// Faults returns a copy of every fault injected so far.
func (in *Injector) Faults() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fault, len(in.log))
	copy(out, in.log)
	return out
}

// FaultCount returns the number of faults injected so far.
func (in *Injector) FaultCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.log)
}

// OpCalls returns how many operations of one class have passed through
// the injector (faulted or not).
func (in *Injector) OpCalls(op Op) uint64 {
	if op < 0 || op >= numOps {
		return 0
	}
	return in.calls[op].Load()
}

// ReadDirCalls returns how many directory listings have passed through
// — the op-counter proof that a manifest-replayed boot never fell back
// to scanning the artifact tree.
func (in *Injector) ReadDirCalls() uint64 { return in.readDirs.Load() }

func injectedErr(op Op, path string) error {
	return fmt.Errorf("%w: %s %s", ErrInjected, op, path)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	kind, _, lat := in.decide(OpMeta, path)
	time.Sleep(lat)
	if kind == "err" {
		return injectedErr(OpMeta, path)
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	in.readDirs.Add(1)
	kind, _, lat := in.decide(OpMeta, name)
	time.Sleep(lat)
	if kind == "err" {
		return nil, injectedErr(OpMeta, name)
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	kind, _, lat := in.decide(OpMeta, name)
	time.Sleep(lat)
	if kind == "err" {
		return nil, injectedErr(OpMeta, name)
	}
	return in.inner.Stat(name)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	kind, _, lat := in.decide(OpRead, name)
	time.Sleep(lat)
	if kind == "err" {
		return nil, injectedErr(OpRead, name)
	}
	data, err := in.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if kind == "corrupt" && len(data) > 0 {
		// Flip one deterministic byte in a private copy; the file on
		// disk stays intact, modeling a transient read-path corruption.
		c := make([]byte, len(data))
		copy(c, data)
		pos := int(in.draw(OpRead, in.ops[OpRead].Load(), 5) % uint64(len(c)))
		c[pos] ^= 0xff
		return c, nil
	}
	return data, err
}

func (in *Injector) WriteFile(name string, data []byte, perm os.FileMode) error {
	kind, short, lat := in.decide(OpWrite, name)
	time.Sleep(lat)
	switch kind {
	case "err":
		return injectedErr(OpWrite, name)
	case "short":
		n := 0
		if len(data) > 0 {
			n = int(uint64(short) % uint64(len(data)))
		}
		// Persist the truncated prefix — a torn write the caller's
		// atomic-rename discipline must never promote.
		_ = in.inner.WriteFile(name, data[:n], perm)
		return injectedErr(OpWrite, name)
	}
	return in.inner.WriteFile(name, data, perm)
}

func (in *Injector) AppendFile(name string, data []byte, perm os.FileMode) error {
	kind, short, lat := in.decide(OpWrite, name)
	time.Sleep(lat)
	switch kind {
	case "err":
		return injectedErr(OpWrite, name)
	case "short":
		n := 0
		if len(data) > 0 {
			n = int(uint64(short) % uint64(len(data)))
		}
		// Append the truncated prefix — a torn journal tail the reader's
		// framing must absorb without losing the valid prefix.
		_ = in.inner.AppendFile(name, data[:n], perm)
		return injectedErr(OpWrite, name)
	}
	return in.inner.AppendFile(name, data, perm)
}

func (in *Injector) Sync(name string) error {
	kind, _, lat := in.decide(OpSync, name)
	time.Sleep(lat)
	if kind == "err" {
		return injectedErr(OpSync, name)
	}
	return in.inner.Sync(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	kind, _, lat := in.decide(OpRename, oldpath)
	time.Sleep(lat)
	if kind == "err" {
		return injectedErr(OpRename, oldpath)
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	kind, _, lat := in.decide(OpRemove, name)
	time.Sleep(lat)
	if kind == "err" {
		return injectedErr(OpRemove, name)
	}
	return in.inner.Remove(name)
}
