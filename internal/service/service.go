// Package service is the simulation serving layer on top of the
// Q-GEAR pipeline: a bounded job queue feeding a worker pool that
// executes circuits through internal/core on a configured
// backend.Target, fronted by a content-addressed LRU result cache.
//
// Three mechanisms let it serve high submission rates without
// re-simulating work:
//
//   - content addressing: every job is keyed by core.CacheKey (circuit
//     fingerprint + output-affecting options); completed results are
//     cached and identical resubmissions are served instantly;
//   - single-flight: concurrent submissions of the same key attach to
//     the one in-flight execution instead of queueing duplicates;
//   - batch coalescing: a worker draining the queue gathers up to
//     MaxBatch compatible jobs and executes them in one core.Run call,
//     exploiting the nvidia-mqpu device-parallel path.
//
// Shot sampling is performed per job from the batch-computed
// probability vector with the job's own seed, so coalesced execution
// is bit-identical to running each job alone (see TestBatchMatchesSequential).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/core"
)

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Execution options applied to every job (the server owns the
	// target; jobs own circuit, shots, and seed).
	Target       backend.Target // default nvidia (nvidia-mqpu when Devices > 1)
	Devices      int            // simulated device count, default 1
	Workers      int            // per-device goroutine parallelism, 0 = NumCPU
	FusionWindow int            // forwarded to the kernel transform
	PruneAngle   float64        // forwarded to the kernel transform
	TileBits     int            // tiled-executor tile width (see core.Options.TileBits)
	PlanFusion   bool           // within-run 1q fusion in the plan compiler

	// QueueSize bounds the job queue; Submit fails with ErrQueueFull
	// beyond it. Default 256.
	QueueSize int
	// WorkerPool is the number of executor goroutines. Default 2.
	WorkerPool int
	// CacheSize is the LRU result-cache capacity in entries; < 0
	// disables caching. Default 1024. Each entry pins a full 2^n-entry
	// probability vector (8 MB at 20 qubits), so size it to the
	// circuit widths you serve; byte-bounded admission is a roadmap
	// item. Retained finished jobs (MaxRetainedJobs) share the cached
	// result pointers, so they do not duplicate that memory.
	CacheSize int
	// PlanCacheSize is the compiled-plan LRU capacity in entries,
	// keyed by (circuit fingerprint, tile width): repeat submissions
	// of a known circuit — even with different shots or seeds — skip
	// transformation and plan compilation entirely. Plans are shared
	// read-only across workers. Default 512; < 0 disables.
	PlanCacheSize int
	// MaxBatch caps how many queued jobs one worker coalesces into a
	// single core.Run call. Default 8; 1 disables coalescing.
	MaxBatch int
	// BatchWindow is how long a worker waits for more queued jobs
	// before executing a partial batch. Default 2ms.
	BatchWindow time.Duration
	// MaxRetainedJobs bounds the finished-job table consulted by
	// polling clients; the oldest finished jobs are forgotten beyond
	// it. Default 4096.
	MaxRetainedJobs int
}

func (c Config) withDefaults() Config {
	if c.Target == "" {
		if c.Devices > 1 {
			c.Target = backend.TargetNvidiaMQPU
		} else {
			c.Target = backend.TargetNvidia
		}
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.WorkerPool <= 0 {
		c.WorkerPool = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 512
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 4096
	}
	return c
}

// JobState is the lifecycle phase of a submitted job.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// SubmitOptions are the per-job knobs (everything else is server
// configuration).
type SubmitOptions struct {
	// Shots samples measurement outcomes; 0 returns probabilities only.
	Shots int
	// Seed drives shot sampling (ignored, and normalized to zero in
	// the cache key, when Shots == 0).
	Seed uint64
}

// JobInfo is a point-in-time snapshot of one job.
type JobInfo struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Cached is true when the job was served without a fresh
	// simulation: a result-cache hit or a single-flight join.
	Cached      bool      `json:"cached"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// FinishedAt is nil while the job is queued or running (a pointer
	// because encoding/json's omitempty cannot elide a zero time.Time).
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// Service errors.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: server closed")
	ErrNotFound  = errors.New("service: no such job")
	ErrNotDone   = errors.New("service: job not finished")
)

// job is the internal job record. The leader of each cache key is the
// only copy that enters the queue; identical concurrent submissions
// attach to it (single-flight) and share its outcome.
type job struct {
	id   string
	key  string
	fp   string // circuit fingerprint (groups batch members sharing a state)
	circ *circuit.Circuit
	opts SubmitOptions

	state       JobState
	cached      bool
	result      *backend.Result
	err         error
	submittedAt time.Time
	finishedAt  time.Time
	done        chan struct{}
}

func (j *job) info() JobInfo {
	in := JobInfo{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		SubmittedAt: j.submittedAt,
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		in.FinishedAt = &t
	}
	if j.err != nil {
		in.Error = j.err.Error()
	}
	return in
}

// flight tracks one in-flight cache key and every job attached to it.
type flight struct {
	jobs []*job
}

// Server is the simulation service. Create with New, submit with
// Submit, stop with Close (which drains in-flight work).
type Server struct {
	cfg   Config
	start time.Time

	mu          sync.Mutex
	closed      bool
	nextID      uint64
	jobs        map[string]*job
	doneOrder   []string // finished job ids, oldest first (retention)
	inflight    map[string]*flight
	cache       *resultCache
	plans       *planCache
	planFlights map[string]chan struct{} // plan keys being compiled right now
	queue       chan *job
	wg          sync.WaitGroup

	// counters (under mu)
	submitted, completed, failed uint64
	cacheHits, sfHits, executed  uint64
	planHits, planMisses         uint64
	batches, batchedJobs         uint64
	latency                      map[string]*histogram
}

// New starts a server with cfg's worker pool running.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("service: unknown target %q", cfg.Target)
	}
	if cfg.Target == backend.TargetNvidiaMGPU && cfg.Devices&(cfg.Devices-1) != 0 {
		// mgpu pools device memory over a hypercube; reject up front
		// rather than failing every job at runtime.
		return nil, fmt.Errorf("service: nvidia-mgpu needs a power-of-two device count, got %d", cfg.Devices)
	}
	s := &Server{
		cfg:         cfg,
		start:       time.Now(),
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*flight),
		cache:       newLRUCache[*backend.Result](cfg.CacheSize),
		plans:       newLRUCache[*backend.Compiled](cfg.PlanCacheSize),
		planFlights: make(map[string]chan struct{}),
		queue:       make(chan *job, cfg.QueueSize),
		latency:     make(map[string]*histogram),
	}
	for i := 0; i < cfg.WorkerPool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// execOptions lowers the server configuration to pipeline options for
// a probabilities-only run; per-job shots are sampled afterwards.
func (s *Server) execOptions() core.Options {
	return core.Options{
		FusionWindow: s.cfg.FusionWindow,
		PruneAngle:   s.cfg.PruneAngle,
		TileBits:     s.cfg.TileBits,
		PlanFusion:   s.cfg.PlanFusion,
		Target:       s.cfg.Target,
		Devices:      s.cfg.Devices,
		Workers:      s.cfg.Workers,
	}
}

// planKey addresses the compiled-plan cache. Everything else that
// shapes a plan (target, devices, fusion, prune, plan fusion) is
// server-constant, so the circuit fingerprint plus the configured tile
// width identifies the artifact.
func (s *Server) planKey(fp string) string {
	return fmt.Sprintf("%s|b%d", fp, s.cfg.TileBits)
}

// compiled returns the circuit's execution IR, serving repeat
// fingerprints from the plan cache so resubmissions — including ones
// with different shots or seeds, which miss the result cache — skip
// transformation and plan compilation entirely. Compiled plans are
// immutable and safe to execute concurrently. Concurrent misses for
// one key single-flight: workers that lose the race wait for the
// winner's plan instead of compiling the same circuit again.
func (s *Server) compiled(c *circuit.Circuit, fp string) (*backend.Compiled, error) {
	key := s.planKey(fp)
	s.mu.Lock()
	for {
		if comp, ok := s.plans.Get(key); ok {
			s.planHits++
			s.mu.Unlock()
			return comp, nil
		}
		ch, compiling := s.planFlights[key]
		if !compiling {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
		// Re-check: the winner cached the plan (or failed, in which
		// case this worker becomes the next compiler).
	}
	s.planMisses++
	ch := make(chan struct{})
	s.planFlights[key] = ch
	s.mu.Unlock()

	comp, err := core.Compile(c, s.execOptions())

	s.mu.Lock()
	if err == nil {
		s.plans.Add(key, comp)
	}
	delete(s.planFlights, key)
	close(ch)
	s.mu.Unlock()
	return comp, err
}

// key returns the content address of (circuit, per-job options) under
// this server's execution configuration. The worker count is excluded
// (it changes wall-clock, not output) but the device count is kept: on
// the mqpu target the shot sampler splits the budget per device with
// per-device seeds, so Devices changes Counts. The seed is normalized
// away when no shots are drawn, so probabilities-only submissions of
// the same circuit always share a key.
func (s *Server) key(c *circuit.Circuit, opts SubmitOptions) string {
	kopts := s.execOptions() // derive, so key and execution never drift
	kopts.Workers = 0        // wall-clock only, not output
	kopts.Shots = opts.Shots
	if opts.Shots > 0 {
		kopts.Seed = opts.Seed
	}
	return core.CacheKey(c, kopts)
}

// Submit validates and enqueues a circuit, returning immediately with
// the job's snapshot. Identical submissions (same content address) are
// served from the result cache or attached to the in-flight execution
// without consuming queue capacity.
func (s *Server) Submit(c *circuit.Circuit, opts SubmitOptions) (JobInfo, error) {
	j, err := s.submit(c, opts)
	if err != nil {
		return JobInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.info(), nil
}

// submit is Submit returning the job record itself, for callers (Run)
// that must outlive the finished-job retention window.
func (s *Server) submit(c *circuit.Circuit, opts SubmitOptions) (*job, error) {
	if c == nil {
		return nil, errors.New("service: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid circuit: %w", err)
	}
	if opts.Shots < 0 {
		return nil, fmt.Errorf("service: negative shots %d", opts.Shots)
	}
	// Deep-copy: the server owns its jobs' circuits, so a caller
	// mutating theirs after Submit cannot race the worker or poison
	// the cache under the pre-mutation fingerprint.
	c = c.Copy()
	key := s.key(c, opts)
	fp := c.Fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	j := &job{
		id:          fmt.Sprintf("j-%08d", s.nextID),
		key:         key,
		fp:          fp,
		circ:        c,
		opts:        opts,
		state:       StateQueued,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}

	// Content-addressed fast path: cache hit.
	if res, ok := s.cache.Get(key); ok {
		s.submitted++
		s.cacheHits++
		j.cached = true
		s.finishLocked(j, res, nil, "cache")
		s.jobs[j.id] = j
		s.retainLocked(j)
		return j, nil
	}
	// Single-flight: attach to the identical in-flight job.
	if f, ok := s.inflight[key]; ok {
		s.submitted++
		s.sfHits++
		j.cached = true
		j.state = f.jobs[0].state // queued or already running
		f.jobs = append(f.jobs, j)
		s.jobs[j.id] = j
		return j, nil
	}
	// Leader: consume queue capacity.
	select {
	case s.queue <- j:
	default:
		s.nextID-- // job never existed
		return nil, ErrQueueFull
	}
	s.submitted++
	s.inflight[key] = &flight{jobs: []*job{j}}
	s.jobs[j.id] = j
	return j, nil
}

// finishLocked records a terminal state for j. Callers hold s.mu.
func (s *Server) finishLocked(j *job, res *backend.Result, err error, latencyKey string) {
	j.result = res
	j.err = err
	j.finishedAt = time.Now()
	if err != nil {
		j.state = StateFailed
		s.failed++
	} else {
		j.state = StateDone
		s.completed++
	}
	h := s.latency[latencyKey]
	if h == nil {
		h = &histogram{}
		s.latency[latencyKey] = h
	}
	h.observe(j.finishedAt.Sub(j.submittedAt))
	close(j.done)
}

// retainLocked enforces the finished-job retention bound.
func (s *Server) retainLocked(j *job) {
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// completeKeyLocked finishes every job attached to key's flight.
func (s *Server) completeKeyLocked(key string, res *backend.Result, err error) {
	f := s.inflight[key]
	if f == nil {
		return
	}
	delete(s.inflight, key)
	if err == nil && res != nil {
		s.cache.Add(key, res)
	}
	lat := string(s.cfg.Target)
	for _, j := range f.jobs {
		s.finishLocked(j, res, err, lat)
		s.retainLocked(j)
	}
}

// worker drains the queue, coalescing compatible jobs into batches.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := <-s.queue
		if !ok {
			return
		}
		batch := s.collectBatch(j)
		s.runBatch(batch)
	}
}

// collectBatch gathers up to MaxBatch-1 additional queued jobs, waiting
// at most BatchWindow for stragglers. Every queued job is compatible by
// construction: the server owns all output-affecting options except
// shots and seed, which are applied per job after the shared
// probabilities are computed.
func (s *Server) collectBatch(first *job) []*job {
	batch := []*job{first}
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// markRunning flips every batch member (and its attached joiners) to
// running.
func (s *Server) markRunning(batch []*job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range batch {
		if f := s.inflight[j.key]; f != nil {
			for _, m := range f.jobs {
				m.state = StateRunning
			}
		}
	}
}

// runBatch executes one coalesced batch: unique circuits (by
// fingerprint) run through core.Run in a single call — the mqpu
// device-parallel path when so configured — then each job's shots are
// sampled from its circuit's probability vector with the job's seed,
// reproducing exactly what a standalone backend.Run would return.
func (s *Server) runBatch(batch []*job) {
	s.markRunning(batch)

	var order []string
	byFP := make(map[string][]*job, len(batch))
	circs := make([]*circuit.Circuit, 0, len(batch))
	for _, j := range batch {
		if byFP[j.fp] == nil {
			order = append(order, j.fp)
			circs = append(circs, j.circ)
		}
		byFP[j.fp] = append(byFP[j.fp], j)
	}

	// Resolve each unique circuit's execution IR through the plan
	// cache, then execute the precompiled batch — repeat fingerprints
	// pay zero transform/planning cost.
	var err error
	comps := make([]*backend.Compiled, len(circs))
	for i, c := range circs {
		if comps[i], err = s.compiled(c, order[i]); err != nil {
			break
		}
	}
	var results []*backend.Result
	if err == nil {
		results, err = core.RunCompiledBatch(comps, s.execOptions())
	}
	var indivErrs []error
	if err != nil && len(circs) > 1 {
		// One poisonous circuit must not fail its batch-mates: fall
		// back to individual runs so errors stay job-local. The good
		// circuits are re-simulated — backend.RunBatch discards its
		// partial results on error — which is acceptable because error
		// batches are rare and bad circuits are mostly rejected at
		// Submit by Validate.
		results = make([]*backend.Result, len(circs))
		indivErrs = make([]error, len(circs))
		for i, c := range circs {
			results[i], indivErrs[i] = core.RunOne(c, s.execOptions())
		}
		err = nil
	}

	// Build every job's outcome — including shot sampling, which is
	// O(2^n + shots) — before touching s.mu, so a big batch never
	// stalls submissions, polls, or other workers' completions.
	type outcome struct {
		j   *job
		res *backend.Result
		err error
	}
	outs := make([]outcome, 0, len(batch))
	for i, fp := range order {
		jobs := byFP[fp]
		if err != nil {
			for _, j := range jobs {
				outs = append(outs, outcome{j: j, err: err})
			}
			continue
		}
		if results[i] == nil {
			// Individual-fallback failure for this circuit: surface
			// its own error, not a generic one.
			ferr := fmt.Errorf("service: simulation failed for circuit %q", jobs[0].circ.Name)
			if indivErrs != nil && indivErrs[i] != nil {
				ferr = indivErrs[i]
			}
			for _, j := range jobs {
				outs = append(outs, outcome{j: j, err: ferr})
			}
			continue
		}
		for _, j := range jobs {
			// Duration is this circuit's own simulation time (from
			// backend.Run), not the whole batch's wall-clock.
			jr := &backend.Result{
				Target:           s.cfg.Target,
				Probabilities:    results[i].Probabilities,
				KernelStats:      results[i].KernelStats,
				PlanStats:        results[i].PlanStats,
				TileBits:         results[i].TileBits,
				Exchanges:        results[i].Exchanges,
				BytesSent:        results[i].BytesSent,
				AvoidedExchanges: results[i].AvoidedExchanges,
				Duration:         results[i].Duration,
			}
			var serr error
			if j.opts.Shots > 0 {
				// backend.SampleShots applies the target's own
				// sampling path (incl. the mqpu per-device split), so
				// a coalesced job's counts match a standalone
				// backend.Run bit for bit.
				jr.Counts, serr = backend.SampleShots(jr.Probabilities, backend.Config{
					Target:  s.cfg.Target,
					Devices: s.cfg.Devices,
					Shots:   j.opts.Shots,
					Seed:    j.opts.Seed,
				})
			}
			outs = append(outs, outcome{j: j, res: jr, err: serr})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.batchedJobs += uint64(len(batch))
	for _, o := range outs {
		s.executed++
		s.completeKeyLocked(o.j.key, o.res, o.err)
	}
}

// Job returns the snapshot of a job by id.
func (s *Server) Job(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.info(), nil
}

// Result returns the completed result of a job. ErrNotDone is returned
// while the job is queued or running; a failed job returns its error.
func (s *Server) Result(id string) (*backend.Result, error) {
	_, res, err := s.Lookup(id)
	return res, err
}

// Lookup returns a job's snapshot and, when finished, its result, in
// one consistent read: the snapshot's state always matches whether a
// result is present. ErrNotDone accompanies the snapshot while the job
// is queued or running; a failed job returns its simulation error.
func (s *Server) Lookup(id string) (JobInfo, *backend.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, nil, ErrNotFound
	}
	switch j.state {
	case StateDone:
		return j.info(), j.result, nil
	case StateFailed:
		return j.info(), nil, j.err
	default:
		return j.info(), nil, ErrNotDone
	}
}

// Wait blocks until the job finishes (or ctx is done) and returns its
// final snapshot.
func (s *Server) Wait(ctx context.Context, id string) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.info(), nil
}

// Run is the synchronous convenience path: submit and wait, returning
// the result directly — the embeddable equivalent of one API call. It
// holds the job record itself, so the result survives even if the
// finished-job retention window evicts the id before the caller reads
// it.
func (s *Server) Run(ctx context.Context, c *circuit.Circuit, opts SubmitOptions) (*backend.Result, JobInfo, error) {
	j, err := s.submit(c, opts)
	if err != nil {
		return nil, JobInfo{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		s.mu.Lock()
		in := j.info()
		s.mu.Unlock()
		return nil, in, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.result, j.info(), j.err
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		QueueDepth:       len(s.queue),
		QueueCapacity:    s.cfg.QueueSize,
		Workers:          s.cfg.WorkerPool,
		Submitted:        s.submitted,
		Completed:        s.completed,
		Failed:           s.failed,
		CacheHits:        s.cacheHits,
		SingleFlightHits: s.sfHits,
		Executed:         s.executed,
		CacheLen:         s.cache.Len(),
		CacheCapacity:    s.cfg.CacheSize,
		CacheEvictions:   s.cache.evictions,
		PlanCacheHits:    s.planHits,
		PlanCacheMisses:  s.planMisses,
		PlanCacheLen:     s.plans.Len(),
		Batches:          s.batches,
		BatchedJobs:      s.batchedJobs,
		Latency:          make(map[string]HistogramSnapshot, len(s.latency)),
		UptimeSeconds:    time.Since(s.start).Seconds(),
	}
	if st.Submitted > 0 {
		st.HitRate = float64(st.CacheHits+st.SingleFlightHits) / float64(st.Submitted)
	}
	if st.Batches > 0 {
		st.MeanBatchLen = float64(st.BatchedJobs) / float64(st.Batches)
	}
	for k, h := range s.latency {
		st.Latency[k] = h.snapshot()
	}
	return st
}

// cacheKeys exposes LRU recency order to tests.
func (s *Server) cacheKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Keys()
}

// Close stops accepting submissions, drains every queued and in-flight
// job to completion, and stops the worker pool. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	return nil
}
