// Package service is the simulation serving layer on top of the
// Q-GEAR pipeline: a bounded job queue feeding a worker pool that
// executes circuits through internal/core on a configured
// backend.Target, fronted by a content-addressed LRU result cache.
//
// Three mechanisms let it serve high submission rates without
// re-simulating work:
//
//   - content addressing: every job is keyed by core.CacheKey (circuit
//     fingerprint + output-affecting options); completed results are
//     cached and identical resubmissions are served instantly;
//   - single-flight: concurrent submissions of the same key attach to
//     the one in-flight execution instead of queueing duplicates;
//   - batch coalescing: a worker draining the queue gathers up to
//     MaxBatch compatible jobs and executes them in one core.Run call,
//     exploiting the nvidia-mqpu device-parallel path.
//
// Shot sampling is performed per job from the batch-computed
// probability vector with the job's own seed, so coalesced execution
// is bit-identical to running each job alone (see TestBatchMatchesSequential).
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qgear/internal/backend"
	"qgear/internal/cancel"
	"qgear/internal/circuit"
	"qgear/internal/core"
	"qgear/internal/faultfs"
	"qgear/internal/observable"
	"qgear/internal/store"
	"qgear/internal/telemetry"
)

// Version identifies the serving layer in /v1/healthz and the
// qgear_build_info metric.
const Version = "0.8.0"

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// Execution options applied to every job (the server owns the
	// target; jobs own circuit, shots, and seed).
	Target       backend.Target // default nvidia (nvidia-mqpu when Devices > 1)
	Devices      int            // simulated device count, default 1
	Workers      int            // per-device goroutine parallelism, 0 = NumCPU
	FusionWindow int            // forwarded to the kernel transform
	PruneAngle   float64        // forwarded to the kernel transform
	TileBits     int            // tiled-executor tile width (see core.Options.TileBits)
	PlanFusion   bool           // within-run 1q fusion in the plan compiler

	// QueueSize bounds the job queue; Submit fails with ErrQueueFull
	// beyond it. Default 256.
	QueueSize int
	// WorkerPool is the number of executor goroutines. Default 2.
	WorkerPool int
	// CacheSize bounds the result cache's entry count; < 0 disables
	// caching. Default 1024. Resident memory is governed by
	// MaxCacheBytes — every entry is byte-accounted (a 2^n probability
	// vector is 8·2^n bytes) and evicted cost-per-byte-aware, so the
	// entry bound is a secondary limit. Retained finished jobs
	// (MaxRetainedJobs) share the cached result pointers, so they do
	// not duplicate that memory.
	CacheSize int
	// MaxCacheBytes bounds the result cache's resident bytes. Default
	// 1 GiB; < 0 removes the byte bound (entry bound only). Evicted
	// entries spill to the persistent store when StoreDir is set.
	MaxCacheBytes int64
	// PlanCacheSize bounds the compiled-plan cache's entry count,
	// keyed by (circuit fingerprint, tile width): repeat submissions
	// of a known circuit — even with different shots or seeds — skip
	// transformation and plan compilation entirely. Plans are shared
	// read-only across workers. Default 512; < 0 disables.
	PlanCacheSize int
	// MaxPlanCacheBytes bounds the plan cache's resident bytes
	// (TilePlan segment arrays are byte-accounted like results).
	// Default 256 MiB; < 0 removes the byte bound.
	MaxPlanCacheBytes int64
	// StoreDir enables the persistent artifact store: evicted and
	// shutdown-time cache entries are written there (results as HDF5
	// datasets keyed by core.CacheKey, compiled plans as binary
	// sidecars), and a restarting server warm-starts from it — repeat
	// fingerprints are answered from disk, bit-identically, without
	// re-simulating. Empty disables persistence.
	StoreDir string
	// MaxStoreBytes bounds the store's on-disk footprint: saves evict
	// the lowest-priority artifacts (Greedy-Dual-Size, same policy as
	// the in-memory caches) or are refused, so the directory can never
	// outgrow the budget. 0 = unbounded. Ignored without StoreDir.
	MaxStoreBytes int64
	// MaxBatch caps how many queued jobs one worker coalesces into a
	// single core.Run call. Default 8; 1 disables coalescing.
	MaxBatch int
	// BatchWindow is how long a worker waits for more queued jobs
	// before executing a partial batch. Default 2ms.
	BatchWindow time.Duration
	// MaxRetainedJobs bounds the finished-job table consulted by
	// polling clients; the oldest finished jobs are forgotten beyond
	// it. Default 4096.
	MaxRetainedJobs int
	// MaxSweepPoints bounds one sweep job's point count — the admission
	// control of the per-point artifact a sweep accumulates. Default
	// 65536; < 0 removes the bound.
	MaxSweepPoints int
	// MaxWaitMs bounds the long-poll budget a GET /v1/jobs/{id}?wait_ms=N
	// request may ask for; larger values are clamped, not rejected.
	// Default 30000.
	MaxWaitMs int

	// JobTimeout bounds every job's lifetime from submission: a job
	// still queued past it is dropped at dequeue without executing, and
	// a running job is cooperatively cancelled at its next poll point
	// (tile run, exchange segment, Pauli term). Per-job
	// SubmitOptions.TimeoutMs tightens this further; single-flight
	// joiners can only loosen the budget their leader already runs
	// under. 0 = no server-wide timeout.
	JobTimeout time.Duration
	// MaxStateBytes is the memory-admission budget: Submit rejects any
	// circuit whose simulation working set (statevector + readout, plus
	// exchange buffers on the mgpu target) would exceed it, with
	// ErrTooLarge and zero allocation. 0 selects half of the machine's
	// available RAM (4 GiB when that cannot be determined); < 0
	// disables admission control.
	MaxStateBytes int64
	// StoreFS overrides the filesystem the persistent store runs on —
	// the chaos harness's fault-injection seam. Nil selects the real
	// filesystem. Ignored without StoreDir.
	StoreFS faultfs.FS
	// ExecHook, when non-nil, fires at the start of every backend
	// execution. Chaos tests panic or stall here to drive the panic-
	// isolation and deadline machinery; production leaves it nil.
	ExecHook func()
}

func (c Config) withDefaults() Config {
	if c.Target == "" {
		if c.Devices > 1 {
			c.Target = backend.TargetNvidiaMQPU
		} else {
			c.Target = backend.TargetNvidia
		}
	}
	if c.Devices <= 0 {
		c.Devices = 1
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.WorkerPool <= 0 {
		c.WorkerPool = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 512
	}
	if c.MaxCacheBytes == 0 {
		c.MaxCacheBytes = 1 << 30 // 1 GiB
	} else if c.MaxCacheBytes < 0 {
		c.MaxCacheBytes = 0 // unbounded
	}
	if c.MaxPlanCacheBytes == 0 {
		c.MaxPlanCacheBytes = 256 << 20 // 256 MiB
	} else if c.MaxPlanCacheBytes < 0 {
		c.MaxPlanCacheBytes = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 4096
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 65536
	} else if c.MaxSweepPoints < 0 {
		c.MaxSweepPoints = 0 // unbounded
	}
	if c.MaxWaitMs <= 0 {
		c.MaxWaitMs = 30000
	}
	if c.MaxStateBytes == 0 {
		c.MaxStateBytes = defaultMaxStateBytes()
	} else if c.MaxStateBytes < 0 {
		c.MaxStateBytes = 0 // admission control disabled
	}
	return c
}

// JobState is the lifecycle phase of a submitted job.
type JobState string

// Job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// SubmitOptions are the per-job knobs (everything else is server
// configuration).
type SubmitOptions struct {
	// Shots samples measurement outcomes; 0 returns probabilities only.
	Shots int
	// Seed drives shot sampling (ignored, and normalized to zero in
	// the cache key, when Shots == 0).
	Seed uint64
	// Hamiltonian selects an expectation-value job: the server
	// evaluates the exact ⟨H⟩ on the circuit's final state instead of
	// probabilities or counts. Expectation jobs are exact, so Shots
	// must be 0. Results are cached and persisted under
	// (circuit fingerprint, hamiltonian hash, option signature).
	Hamiltonian *observable.Hamiltonian
	// TimeoutMs bounds this job's lifetime in milliseconds from
	// submission, on top of (never beyond) the server's JobTimeout:
	// the effective budget is the tighter of the two. 0 applies the
	// server default only.
	TimeoutMs int
	// SweepPoints selects a sweep job: the circuit is treated as a
	// parameterized skeleton (its own parameter values are irrelevant)
	// and evaluated at every point — each a flat vector with one value
	// per parameter slot, program order. With a Hamiltonian the
	// artifact is the exact per-point ⟨H⟩ vector (Shots must be 0);
	// without one Shots must be > 0 and the artifact is the per-point
	// sampled histogram, point i seeded with
	// backend.SweepPointSeed(Seed, i). Under a rebindable server
	// configuration the whole sweep costs one compile: every point is a
	// rebind of the structurally-cached plan.
	SweepPoints [][]float64
	// Gradient selects a parameter-shift gradient job: exact ∂⟨H⟩/∂θ at
	// the circuit's own parameter values, evaluated as a derived
	// 2k+1-point sweep. Requires Hamiltonian; SweepPoints must be
	// empty.
	Gradient bool
}

// JobInfo is a point-in-time snapshot of one job.
type JobInfo struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Cached is true when the job was served without a fresh
	// simulation: a result-cache hit or a single-flight join.
	Cached      bool      `json:"cached"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// FinishedAt is nil while the job is queued or running (a pointer
	// because encoding/json's omitempty cannot elide a zero time.Time).
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// Service errors.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrClosed    = errors.New("service: server closed")
	ErrNotFound  = errors.New("service: no such job")
	ErrNotDone   = errors.New("service: job not finished")
	// ErrTooLarge rejects a submission at admission control: the
	// circuit's simulation working set exceeds MaxStateBytes. Mapped to
	// HTTP 422 — resubmitting the same circuit can never succeed.
	ErrTooLarge = errors.New("service: circuit exceeds memory budget")
	// ErrDeadlineExceeded classifies a job that ran out of its time
	// budget — dropped at dequeue or cooperatively cancelled mid-run.
	// Mapped to HTTP 504 on the results surface.
	ErrDeadlineExceeded = errors.New("service: job deadline exceeded")
	// ErrPanic classifies a job whose execution panicked. The panic is
	// recovered at the execution boundary: the job (and its
	// single-flight joiners) fail with this error, the worker survives,
	// and qgear_panics_recovered_total increments.
	ErrPanic = errors.New("service: execution panicked")
)

// job is the internal job record. The leader of each cache key is the
// only copy that enters the queue; identical concurrent submissions
// attach to it (single-flight) and share its outcome.
type job struct {
	id   string
	key  string
	fp   string // circuit fingerprint (groups batch members sharing a state)
	circ *circuit.Circuit
	ham  *observable.Hamiltonian // non-nil selects an expectation job
	opts SubmitOptions

	state       JobState
	cached      bool
	result      *backend.Result
	err         error
	submittedAt time.Time
	finishedAt  time.Time
	done        chan struct{}
	// flag is the leader's cancellation flag, shared with the execution
	// engines; nil on jobs served without executing (cache hits) and on
	// single-flight joiners, which ride their leader's flag instead.
	flag *cancel.Flag
}

func (j *job) info() JobInfo {
	in := JobInfo{
		ID:          j.id,
		State:       j.state,
		Cached:      j.cached,
		SubmittedAt: j.submittedAt,
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		in.FinishedAt = &t
	}
	if j.err != nil {
		in.Error = j.err.Error()
	}
	return in
}

// flight tracks one in-flight cache key and every job attached to it.
// The leader's cancel flag doubles as the flight's time budget: joiners
// Extend it (deadlines only ever loosen — a second submission of a
// running key must not tighten what the leader already executes under).
type flight struct {
	jobs []*job
}

// flightFlag returns the flight's shared cancellation flag (the
// leader's); nil-safe for flights without one.
func (f *flight) flag() *cancel.Flag {
	if f == nil || len(f.jobs) == 0 {
		return nil
	}
	return f.jobs[0].flag
}

// Server is the simulation service. Create with New, submit with
// Submit, stop with Close (which drains in-flight work and spills
// resident cache entries to the persistent store when one is
// configured).
type Server struct {
	cfg    Config
	start  time.Time
	store  *store.Store // nil without StoreDir
	cfgSig string       // normalized option signature stamped on store artifacts
	// rebindable records whether the execution configuration keeps
	// compiled structure value-independent (no fusion, no pruning) —
	// the gate for structural plan-cache keying and the sweep
	// compile-once fast path. Fixed at New.
	rebindable bool
	spill      chan spillItem
	// reg is the server's metric registry: every counter below is
	// exported through it (as a callback reading the same field, so
	// /metrics and /v1/stats can never disagree), job and stage
	// latencies are registry histograms, and Handler mounts its
	// Prometheus exposition at /metrics.
	reg *telemetry.Registry
	// busy counts workers currently executing a batch. Atomic (not
	// under mu) so the utilization gauge never contends with the
	// serving path.
	busy atomic.Int64

	mu          sync.Mutex
	closed      bool
	nextID      uint64
	jobs        map[string]*job
	doneOrder   []string // finished job ids, oldest first (retention)
	inflight    map[string]*flight
	cache       *resultCache
	plans       *planCache
	planFlights map[string]chan struct{} // plan keys being compiled right now
	// pendingSpills is the spill lookaside window: entries evicted from
	// a cache stay answerable here until the spiller has them durably
	// on disk, so an eviction immediately followed by a repeat
	// submission never re-simulates.
	pendingSpills map[string]spillItem
	queue         chan *job
	wg            sync.WaitGroup
	loadWG        sync.WaitGroup // in-flight store loads
	spillWG       sync.WaitGroup // the spiller goroutine
	spillBytes    int64          // bytes pinned by the eviction-spill backlog

	// counters (under mu)
	submitted, completed, failed  uint64
	cacheHits, sfHits, executed   uint64
	expSubmitted, expExecuted     uint64
	sweepSubmitted, sweepExecuted uint64
	sweepPointsRun                uint64
	gradSubmitted, gradExecuted   uint64
	planHits, planMisses          uint64
	planRebinds                   uint64
	storeHits, planStoreHits      uint64
	storeMisses, storeErrors      uint64
	storeSpills, storeSpillDrops  uint64
	storeQuarantines              uint64
	storeAdmissionSkips           uint64
	batches, batchedJobs          uint64
	panicsRecovered               uint64
	rejectedQueueFull             uint64
	rejectedTooLarge              uint64
	rejectedInvalid               uint64
	cancelledQueue                uint64 // expired before execution started
	cancelledRunning              uint64 // cancelled mid-execution
	cacheEvictedBytes             int64
	planEvictedBytes              int64
	mgpuExchanges, mgpuAvoided    uint64
	mgpuBytesSent                 int64
	latency                       map[string]*telemetry.Histogram

	// stageLatency holds the per-stage registry histograms, resolved
	// once at registerMetrics time and read-only afterwards, so the
	// per-span hot path (observeStages, the spiller) never takes the
	// registry lock or allocates a label map.
	stageLatency map[string]*telemetry.Histogram
	// storeLoad measures successful result loads from the persistent
	// store; its observed median is the measured-admission bar a
	// result's modeled recompute cost must clear to be worth
	// persisting at all.
	storeLoad *telemetry.Histogram
}

// spillItem is one artifact bound for the persistent store: exactly
// one of result and plan is set. bytes is the entry's accounted size
// while it waits in the backlog (0 for shutdown-time items, which
// bypass the budget).
type spillItem struct {
	key    string
	result *backend.Result
	plan   *backend.Compiled
	cost   float64
	bytes  int64
}

// spillQueueDepth bounds the eviction-spill backlog's entry count; the
// backlog is additionally byte-bounded (spillByteBudget) because the
// entries it pins live entirely outside the cache's byte budget. When
// either bound is hit, eviction spills are dropped (and counted)
// rather than stalling the serving path — the shutdown spill still
// persists whatever is resident.
const spillQueueDepth = 256

// spillBudget sizes the backlog's byte bound from the result cache's
// budget: a quarter of it, floored so small test configurations can
// still spill at all, and defaulted when the cache is unbounded.
func spillBudget(maxCacheBytes int64) int64 {
	b := maxCacheBytes / 4
	if b < 16<<20 {
		b = 16 << 20 // 16 MiB floor (also the unbounded-cache default)
	}
	return b
}

// New starts a server with cfg's worker pool running.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("service: unknown target %q", cfg.Target)
	}
	if cfg.Target == backend.TargetNvidiaMGPU && cfg.Devices&(cfg.Devices-1) != 0 {
		// mgpu pools device memory over a hypercube; reject up front
		// rather than failing every job at runtime.
		return nil, fmt.Errorf("service: nvidia-mgpu needs a power-of-two device count, got %d", cfg.Devices)
	}
	s := &Server{
		cfg:         cfg,
		start:       time.Now(),
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*flight),
		cache:       store.NewCache[*backend.Result](cfg.CacheSize, cfg.MaxCacheBytes),
		plans:       store.NewCache[*backend.Compiled](cfg.PlanCacheSize, cfg.MaxPlanCacheBytes),
		planFlights: make(map[string]chan struct{}),
		queue:       make(chan *job, cfg.QueueSize),
		reg:         telemetry.NewRegistry(),
		latency:     make(map[string]*telemetry.Histogram),
	}
	s.registerMetrics()
	opts := s.execOptions()
	s.cfgSig = opts.StoreSignature()
	s.rebindable = opts.Rebindable()
	if cfg.StoreDir != "" {
		ast, err := store.OpenOptions(cfg.StoreDir, store.Options{FS: cfg.StoreFS, MaxBytes: cfg.MaxStoreBytes})
		if err != nil {
			return nil, err
		}
		s.store = ast
		s.spill = make(chan spillItem, spillQueueDepth)
		s.pendingSpills = make(map[string]spillItem)
		s.spillWG.Add(1)
		go s.spiller()
	}
	for i := 0; i < cfg.WorkerPool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// spiller drains eviction- and shutdown-time artifacts to the
// persistent store off the serving path. Saves are idempotent, so
// spilling an entry that warm-started from disk is a no-op.
func (s *Server) spiller() {
	defer s.spillWG.Done()
	for it := range s.spill {
		var err error
		t0 := time.Now()
		if it.result != nil {
			err = s.store.SaveResult(it.key, s.cfgSig, it.result)
		} else {
			err = s.store.SavePlan(it.key, s.cfgSig, it.plan, it.cost)
		}
		// Spills run off the serving path, so the stage appears in the
		// registry histograms but never in a job trace.
		s.stageHist(telemetry.StageSpill).Observe(time.Since(t0))
		s.mu.Lock()
		if err != nil {
			s.storeErrors++
		} else {
			s.storeSpills++
		}
		s.spillBytes -= it.bytes
		if cur, ok := s.pendingSpills[it.key]; ok && cur.result == it.result && cur.plan == it.plan {
			delete(s.pendingSpills, it.key)
		}
		s.mu.Unlock()
	}
}

// minAdmissionSamples is how many store loads must have been measured
// before the measured-admission rule activates; below it every result
// is persisted (cold stores should fill, not starve).
const minAdmissionSamples = 32

// admitResultSpill applies measured admission: once enough store
// loads have been observed, a result whose modeled recompute cost
// (its recorded simulation time) is below the observed median load
// latency is cheaper to re-simulate than to read back, so persisting
// it would only burn disk budget and GC pressure. Shutdown-time
// spills bypass this (Close writes the spill channel directly):
// post-restart the cache is empty and even cheap results are wins.
func (s *Server) admitResultSpill(res *backend.Result) bool {
	d := s.storeLoad.Snapshot()
	if d.N < minAdmissionSamples || res.Duration <= 0 {
		return true
	}
	// Median from the bucket histogram: the upper bound of the first
	// bucket holding the middle observation.
	var cum uint64
	median := telemetry.BucketBoundSeconds(telemetry.HistogramBuckets)
	for i, c := range d.Counts {
		cum += c
		if cum*2 >= d.N {
			median = telemetry.BucketBoundSeconds(i)
			break
		}
	}
	return res.Duration.Seconds() >= median
}

// enqueueSpillLocked hands an artifact to the spiller without ever
// blocking the serving path. Callers hold s.mu.
func (s *Server) enqueueSpillLocked(it spillItem) {
	if s.spill == nil {
		return
	}
	if it.result != nil && !s.admitResultSpill(it.result) {
		s.storeAdmissionSkips++
		return
	}
	if s.spillBytes > 0 && s.spillBytes+it.bytes > spillBudget(s.cfg.MaxCacheBytes) {
		// The backlog already pins its byte budget of unaccounted
		// memory; shedding keeps -max-cache-bytes an honest bound on
		// the process, at the cost of re-simulating this key if it is
		// asked for after a restart. An empty backlog always admits one
		// entry, so even over-budget artifacts eventually persist.
		s.storeSpillDrops++
		return
	}
	select {
	case s.spill <- it:
		s.spillBytes += it.bytes
		s.pendingSpills[it.key] = it
	default:
		s.storeSpillDrops++
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// execOptions lowers the server configuration to pipeline options for
// a probabilities-only run; per-job shots are sampled afterwards.
func (s *Server) execOptions() core.Options {
	return core.Options{
		FusionWindow: s.cfg.FusionWindow,
		PruneAngle:   s.cfg.PruneAngle,
		TileBits:     s.cfg.TileBits,
		PlanFusion:   s.cfg.PlanFusion,
		Target:       s.cfg.Target,
		Devices:      s.cfg.Devices,
		Workers:      s.cfg.Workers,
	}
}

// execOptionsCancel is execOptions armed for a real execution: the
// job's cancellation flag and the configured fault-injection hook.
// Neither field enters option signatures or cache keys (they never
// shape a completed run's output), so key derivation keeps using the
// bare execOptions.
func (s *Server) execOptionsCancel(flag *cancel.Flag) core.Options {
	o := s.execOptions()
	o.Cancel = flag
	o.ExecHook = s.cfg.ExecHook
	return o
}

// planKey addresses the compiled-plan cache. Everything else that
// shapes a plan (target, devices, fusion, prune, plan fusion) is
// server-constant, so a circuit identity plus the configured tile
// width identifies the artifact. Under a rebindable configuration —
// where compiled structure is provably value-independent — a
// parameterized circuit keys by its *structural* fingerprint: every
// submission sharing a shape, whatever its angles, resolves to one
// cached skeleton that compiled() rebinds to the job's own values. A
// 10k-point sweep (or 10k individually-submitted points) therefore
// costs exactly one compile. Value-dependent configurations (fusion,
// pruning) keep exact-fingerprint keying.
func (s *Server) planKey(c *circuit.Circuit, fp string) string {
	if s.rebindable && c.NumParams() > 0 {
		return fmt.Sprintf("%s|b%d", c.StructuralFingerprint(), s.cfg.TileBits)
	}
	return fmt.Sprintf("%s|b%d", fp, s.cfg.TileBits)
}

// compiled returns the circuit's execution IR, serving repeat
// fingerprints from the plan cache so resubmissions — including ones
// with different shots or seeds, which miss the result cache — skip
// transformation and plan compilation entirely. Compiled plans are
// immutable and safe to execute concurrently. Concurrent misses for
// one key single-flight: workers that lose the race wait for the
// winner's plan instead of compiling the same circuit again.
//
// The returned trace fragment breaks the call's own wall time into a
// fresh compile span, a persistent-store load span, a rebind span
// (structural-key hits only), and a plan_cache span covering
// everything else (lookup, single-flight waits, spill lookaside) — so
// a cache hit shows pure plan_cache time while a cold miss shows
// mostly compile.
//
// Under structural keying (see planKey) the cached artifact is a
// *skeleton*: its structure matches every circuit sharing the shape,
// but its value-derived matrices carry whatever parameter values
// first populated the key. Every serving path that did not compile
// from this job's own circuit — cache hit, spill lookaside, store
// load — therefore rebinds the skeleton to c's parameter values
// before returning; only a fresh compile is already bound.
func (s *Server) compiled(c *circuit.Circuit, fp string) (*backend.Compiled, *telemetry.Trace, error) {
	t0 := time.Now()
	structural := s.rebindable && c.NumParams() > 0
	key := s.planKey(c, fp)
	s.mu.Lock()
	for {
		if comp, ok := s.plans.Get(key); ok {
			s.planHits++
			s.mu.Unlock()
			return s.rebound(comp, c, structural, t0, 0, 0)
		}
		if it, ok := s.pendingSpills[key]; ok && it.plan != nil {
			// Spill lookaside: an evicted plan still bound for disk is
			// an ordinary cache hit (it never touched the store) —
			// serve it and re-admit.
			comp := it.plan
			s.planHits++
			for _, ev := range s.plans.Add(key, comp, comp.SizeBytes(), planCost(comp)) {
				s.planEvictedBytes += ev.Bytes
				s.enqueueSpillLocked(spillItem{key: ev.Key, plan: ev.Val, cost: ev.Cost, bytes: ev.Bytes})
			}
			s.mu.Unlock()
			return s.rebound(comp, c, structural, t0, 0, 0)
		}
		ch, compiling := s.planFlights[key]
		if !compiling {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
		// Re-check: the winner cached the plan (or failed, in which
		// case this worker becomes the next compiler).
	}
	s.planMisses++
	ch := make(chan struct{})
	s.planFlights[key] = ch
	s.mu.Unlock()

	// Warm start: a plan compiled by an earlier process may be on disk.
	// Checksum or signature failures quarantine the file and fall
	// through to a fresh compile.
	var comp *backend.Compiled
	var err error
	var cost float64
	var loadDur, compileDur time.Duration
	fromStore := false
	if s.store != nil && s.store.HasPlan(key) {
		tl := time.Now()
		comp, cost, err = s.store.LoadPlan(key, s.cfgSig)
		loadDur = time.Since(tl)
		if err == nil {
			fromStore = true
		} else {
			quarantined := false
			if errors.Is(err, store.ErrIntegrity) {
				s.store.DropPlan(key)
				quarantined = true
			}
			s.mu.Lock()
			s.storeErrors++
			if quarantined {
				s.storeQuarantines++
			}
			s.mu.Unlock()
			comp = nil
		}
	}
	if comp == nil {
		tc := time.Now()
		comp, err = core.Compile(c, s.execOptions())
		compileDur = time.Since(tc)
	}

	s.mu.Lock()
	if err == nil {
		if fromStore {
			s.planStoreHits++
		}
		// Admit at the cost the sidecar recorded when warm-started (the
		// same units planCost produces), else the fresh model value.
		if !fromStore || cost <= 0 {
			cost = planCost(comp)
		}
		for _, ev := range s.plans.Add(key, comp, comp.SizeBytes(), cost) {
			s.planEvictedBytes += ev.Bytes
			s.enqueueSpillLocked(spillItem{key: ev.Key, plan: ev.Val, cost: ev.Cost, bytes: ev.Bytes})
		}
	}
	delete(s.planFlights, key)
	close(ch)
	s.mu.Unlock()
	if err == nil && fromStore {
		// A warm-started skeleton was compiled by another process from
		// values this job never chose — rebind like any other hit.
		return s.rebound(comp, c, structural, t0, loadDur, compileDur)
	}
	return comp, planTrace(t0, loadDur, compileDur, 0), err
}

// rebound finishes a structural-cache hit: the cached skeleton's
// value-derived matrices are patched (copy-on-write — the cached
// artifact stays immutable and shared) to this circuit's own parameter
// values. Exact-keyed artifacts pass through untouched.
func (s *Server) rebound(comp *backend.Compiled, c *circuit.Circuit, structural bool, t0 time.Time, loadDur, compileDur time.Duration) (*backend.Compiled, *telemetry.Trace, error) {
	if !structural {
		return comp, planTrace(t0, loadDur, compileDur, 0), nil
	}
	tb := time.Now()
	bound, err := comp.BindParams(c.ParamValues())
	rebindDur := time.Since(tb)
	if err != nil {
		return nil, nil, fmt.Errorf("service: rebinding cached plan: %w", err)
	}
	s.mu.Lock()
	s.planRebinds++
	s.mu.Unlock()
	return bound, planTrace(t0, loadDur, compileDur, rebindDur), nil
}

// planTrace assembles compiled()'s trace fragment: store-load,
// compile, and rebind get their own spans, and whatever remains of the
// call's wall time is plan-cache overhead.
func planTrace(t0 time.Time, loadDur, compileDur, rebindDur time.Duration) *telemetry.Trace {
	tr := &telemetry.Trace{}
	tr.Add(telemetry.StagePlanCache, time.Since(t0)-loadDur-compileDur-rebindDur)
	tr.Add(telemetry.StageStoreLoad, loadDur)
	tr.Add(telemetry.StageCompile, compileDur)
	tr.Add(telemetry.StageRebind, rebindDur)
	return tr
}

// stageHist returns the registry histogram for one pipeline stage.
// Every known stage is pre-resolved at registerMetrics time; the
// registry path only runs for a stage name outside telemetry.Stages
// (which would be a bug in the caller, but must not lose the sample).
func (s *Server) stageHist(stage string) *telemetry.Histogram {
	if h, ok := s.stageLatency[stage]; ok {
		return h
	}
	return s.reg.Histogram("qgear_stage_duration_seconds",
		"Pipeline stage latency, labeled by stage.",
		telemetry.Labels{"stage": stage})
}

// observeStages folds a trace fragment into the per-stage registry
// histograms. Call it once per execution event for spans shared by
// batch-mates (compile, execute) and once per job for per-job spans
// (queue_wait, sample), so aggregates count each measured interval
// exactly once.
func (s *Server) observeStages(tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	for _, sp := range tr.Spans {
		s.stageHist(sp.Stage).Observe(sp.Duration())
	}
}

// key returns the content address of (circuit, per-job options) under
// this server's execution configuration. The worker count is excluded
// (it changes wall-clock, not output) but the device count is kept: on
// the mqpu target the shot sampler splits the budget per device with
// per-device seeds, so Devices changes Counts. The seed is normalized
// away when no shots are drawn, so probabilities-only submissions of
// the same circuit always share a key.
func (s *Server) key(c *circuit.Circuit, opts SubmitOptions) string {
	kopts := s.execOptions() // derive, so key and execution never drift
	kopts.Workers = 0        // wall-clock only, not output
	if opts.Gradient {
		// Gradient jobs: keyed on the structural shape, the base point
		// (the circuit's own parameter values), and the Hamiltonian.
		return core.GradientCacheKey(c, opts.Hamiltonian, c.ParamValues(), kopts)
	}
	if len(opts.SweepPoints) > 0 {
		// Sweep jobs: structural shape + the point matrix bit-for-bit.
		// Shots and seed shape sampling sweeps and are normalized away
		// for exact Hamiltonian sweeps inside SweepCacheKey.
		kopts.Shots = opts.Shots
		kopts.Seed = opts.Seed
		return core.SweepCacheKey(c, opts.Hamiltonian, opts.SweepPoints, kopts)
	}
	if opts.Hamiltonian != nil {
		// Expectation jobs: (fingerprint, hamiltonian hash, options);
		// shots and seed are normalized away inside (exact results).
		return core.ExpectationCacheKey(c, opts.Hamiltonian, kopts)
	}
	kopts.Shots = opts.Shots
	if opts.Shots > 0 {
		kopts.Seed = opts.Seed
	}
	return core.CacheKey(c, kopts)
}

// Submit validates and enqueues a circuit, returning immediately with
// the job's snapshot. Identical submissions (same content address) are
// served from the result cache or attached to the in-flight execution
// without consuming queue capacity.
func (s *Server) Submit(c *circuit.Circuit, opts SubmitOptions) (JobInfo, error) {
	j, err := s.submit(c, opts)
	if err != nil {
		return JobInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.info(), nil
}

// validateSubmit is the pure request validation half of submit; every
// failure here counts as an "invalid" rejection.
func (s *Server) validateSubmit(c *circuit.Circuit, opts SubmitOptions) error {
	if c == nil {
		return errors.New("service: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return fmt.Errorf("service: invalid circuit: %w", err)
	}
	if opts.Shots < 0 {
		return fmt.Errorf("service: negative shots %d", opts.Shots)
	}
	if opts.TimeoutMs < 0 {
		return fmt.Errorf("service: negative timeout %dms", opts.TimeoutMs)
	}
	if opts.Hamiltonian != nil {
		if opts.Shots != 0 {
			return fmt.Errorf("service: expectation jobs are exact; shots (%d) are not supported", opts.Shots)
		}
		if err := opts.Hamiltonian.Validate(); err != nil {
			return fmt.Errorf("service: invalid hamiltonian: %w", err)
		}
		if opts.Hamiltonian.NumQubits > c.NumQubits {
			return fmt.Errorf("service: hamiltonian spans %d qubits, circuit has %d",
				opts.Hamiltonian.NumQubits, c.NumQubits)
		}
	}
	if opts.Gradient {
		if opts.Hamiltonian == nil {
			return errors.New("service: gradient jobs need a hamiltonian")
		}
		if len(opts.SweepPoints) > 0 {
			return errors.New("service: gradient jobs derive their own sweep; points are not accepted")
		}
		if c.NumParams() == 0 {
			return errors.New("service: gradient of a circuit with no parameterized gates")
		}
	}
	if n := len(opts.SweepPoints); n > 0 {
		if s.cfg.MaxSweepPoints > 0 && n > s.cfg.MaxSweepPoints {
			return fmt.Errorf("service: sweep of %d points exceeds the %d-point bound", n, s.cfg.MaxSweepPoints)
		}
		nParams := c.NumParams()
		for i, pt := range opts.SweepPoints {
			if len(pt) != nParams {
				return fmt.Errorf("service: sweep point %d has %d values, circuit has %d parameter slots", i, len(pt), nParams)
			}
		}
		if opts.Hamiltonian == nil && opts.Shots <= 0 {
			return errors.New("service: a sweep without a hamiltonian must sample (shots > 0); per-point probability vectors are unbounded")
		}
	}
	return nil
}

// deadlineFor resolves a job's absolute expiry from the server-wide
// JobTimeout and the per-job TimeoutMs — the tighter of the two wins; a
// zero return means unbounded.
func (s *Server) deadlineFor(submitted time.Time, opts SubmitOptions) time.Time {
	d := s.cfg.JobTimeout
	if opts.TimeoutMs > 0 {
		if per := time.Duration(opts.TimeoutMs) * time.Millisecond; d == 0 || per < d {
			d = per
		}
	}
	if d <= 0 {
		return time.Time{}
	}
	return submitted.Add(d)
}

// submit is Submit returning the job record itself, for callers (Run)
// that must outlive the finished-job retention window.
func (s *Server) submit(c *circuit.Circuit, opts SubmitOptions) (*job, error) {
	if err := s.validateSubmit(c, opts); err != nil {
		s.mu.Lock()
		s.rejectedInvalid++
		s.mu.Unlock()
		return nil, err
	}
	// Memory admission: reject circuits whose working set cannot fit
	// the budget before anything is allocated for them — no deep copy,
	// no queue slot, no statevector.
	if s.cfg.MaxStateBytes > 0 {
		if need := s.estimateStateBytes(c.NumQubits); need > s.cfg.MaxStateBytes {
			s.mu.Lock()
			s.rejectedTooLarge++
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %d-qubit simulation needs ~%d bytes, budget is %d",
				ErrTooLarge, c.NumQubits, need, s.cfg.MaxStateBytes)
		}
	}
	if opts.Hamiltonian != nil {
		// Deep-copy for the same reason as the circuit below.
		opts.Hamiltonian = opts.Hamiltonian.Clone()
	}
	if len(opts.SweepPoints) > 0 {
		// Deep-copy the point matrix: the worker reads it long after
		// Submit returns.
		pts := make([][]float64, len(opts.SweepPoints))
		for i, pt := range opts.SweepPoints {
			pts[i] = append([]float64(nil), pt...)
		}
		opts.SweepPoints = pts
	}
	// Deep-copy: the server owns its jobs' circuits, so a caller
	// mutating theirs after Submit cannot race the worker or poison
	// the cache under the pre-mutation fingerprint.
	c = c.Copy()
	key := s.key(c, opts)
	fp := c.Fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	j := &job{
		id:          fmt.Sprintf("j-%08d", s.nextID),
		key:         key,
		fp:          fp,
		circ:        c,
		ham:         opts.Hamiltonian,
		opts:        opts,
		state:       StateQueued,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	switch {
	case j.opts.Gradient:
		s.gradSubmitted++
	case len(j.opts.SweepPoints) > 0:
		s.sweepSubmitted++
	case j.ham != nil:
		s.expSubmitted++
	}

	// Content-addressed fast path: cache hit.
	if res, ok := s.cache.Get(key); ok {
		s.submitted++
		s.cacheHits++
		j.cached = true
		s.finishLocked(j, res, nil, "cache")
		s.jobs[j.id] = j
		s.retainLocked(j)
		return j, nil
	}
	// Single-flight: attach to the identical in-flight job. The
	// joiner's deadline can only loosen the leader's budget — an
	// unbounded joiner removes it entirely — so attaching never
	// tightens an execution already under way.
	if f, ok := s.inflight[key]; ok {
		s.submitted++
		s.sfHits++
		j.cached = true
		j.state = f.jobs[0].state // queued or already running
		f.flag().Extend(s.deadlineFor(j.submittedAt, opts))
		f.jobs = append(f.jobs, j)
		s.jobs[j.id] = j
		return j, nil
	}
	// Spill lookaside: an entry evicted moments ago may still be in
	// flight to disk — serve it from the spill window instead of
	// re-simulating (or racing the spiller on the file).
	if it, ok := s.pendingSpills[key]; ok && it.result != nil {
		s.submitted++
		s.cacheHits++
		j.cached = true
		s.finishLocked(j, it.result, nil, "cache")
		s.jobs[j.id] = j
		s.retainLocked(j)
		return j, nil
	}
	// From here on this job leads: it may actually execute, so it
	// carries the flight's cancellation flag.
	j.flag = cancel.WithDeadline(s.deadlineFor(j.submittedAt, opts))
	// Persistent store: a previously computed key is answered from
	// disk — no simulation, no queue capacity. This job leads a flight
	// while the load runs, so identical concurrent submissions attach
	// via the single-flight path above instead of reading the file
	// again.
	if s.store != nil && s.store.HasResult(key) {
		s.submitted++
		s.inflight[key] = &flight{jobs: []*job{j}}
		s.jobs[j.id] = j
		s.loadWG.Add(1)
		go s.serveFromStore(key)
		return j, nil
	}
	if s.store != nil {
		s.storeMisses++
	}
	// Leader: consume queue capacity.
	select {
	case s.queue <- j:
	default:
		s.nextID-- // job never existed
		switch {
		case j.opts.Gradient:
			s.gradSubmitted--
		case len(j.opts.SweepPoints) > 0:
			s.sweepSubmitted--
		case j.ham != nil:
			s.expSubmitted--
		}
		s.rejectedQueueFull++
		return nil, ErrQueueFull
	}
	s.submitted++
	s.inflight[key] = &flight{jobs: []*job{j}}
	s.jobs[j.id] = j
	return j, nil
}

// finishLocked records a terminal state for j. Callers hold s.mu.
func (s *Server) finishLocked(j *job, res *backend.Result, err error, latencyKey string) {
	j.result = res
	j.err = err
	j.finishedAt = time.Now()
	if err != nil {
		j.state = StateFailed
		s.failed++
	} else {
		j.state = StateDone
		s.completed++
	}
	h := s.latency[latencyKey]
	if h == nil {
		// One instrument serves both surfaces: the map backs the
		// /v1/stats Latency snapshot, the registry the
		// qgear_job_duration_seconds Prometheus family.
		h = s.reg.Histogram("qgear_job_duration_seconds",
			"End-to-end job latency (submit to done), labeled by serving path.",
			telemetry.Labels{"path": latencyKey})
		s.latency[latencyKey] = h
	}
	h.Observe(j.finishedAt.Sub(j.submittedAt))
	close(j.done)
}

// retainLocked enforces the finished-job retention bound.
func (s *Server) retainLocked(j *job) {
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// completeKeyLocked finishes every job attached to key's flight,
// admitting the result to the byte-accounted cache and routing any
// evicted entries to the spiller.
func (s *Server) completeKeyLocked(key string, res *backend.Result, err error, latencyKey string) {
	f := s.inflight[key]
	if f == nil {
		return
	}
	delete(s.inflight, key)
	if err == nil && res != nil {
		for _, ev := range s.cache.Add(key, res, res.SizeBytes(), resultCost(res)) {
			s.cacheEvictedBytes += ev.Bytes
			s.enqueueSpillLocked(spillItem{key: ev.Key, result: ev.Val, bytes: ev.Bytes})
		}
	}
	for _, j := range f.jobs {
		s.finishLocked(j, res, err, latencyKey)
		s.retainLocked(j)
	}
}

// serveFromStore completes one flight from the persistent store. A
// file that fails its checksum or integrity checks is quarantined and
// the flight leader falls back to a real simulation through the queue.
func (s *Server) serveFromStore(key string) {
	defer s.loadWG.Done()
	t0 := time.Now()
	res, err := s.store.LoadResult(key, s.cfgSig)
	loadDur := time.Since(t0)
	if err == nil {
		s.storeLoad.Observe(loadDur)
		// The store does not persist traces; a loaded result's trace is
		// this serving event's own cost — one store_load span.
		tr := &telemetry.Trace{}
		tr.Add(telemetry.StageStoreLoad, loadDur)
		res.Trace = tr
		s.observeStages(tr)
	}
	s.mu.Lock()
	if err == nil {
		s.storeHits++
		if f := s.inflight[key]; f != nil {
			for _, j := range f.jobs {
				j.cached = true
			}
		}
		s.completeKeyLocked(key, res, nil, "store")
		s.mu.Unlock()
		return
	}
	s.storeErrors++
	if errors.Is(err, store.ErrIntegrity) {
		s.storeQuarantines++
	}
	// Capture the leader under the mutex: concurrent identical
	// submissions keep appending to f.jobs through the single-flight
	// path, so the slice must not be read unlocked.
	var leader *job
	if f := s.inflight[key]; f != nil {
		leader = f.jobs[0]
	}
	s.mu.Unlock()
	if errors.Is(err, store.ErrIntegrity) {
		// Quarantine only provably bad files; a transient I/O failure
		// leaves the artifact for the next attempt.
		s.store.DropResult(key)
	}
	if leader != nil {
		// Blocking send is safe: Close waits for in-flight loads before
		// closing the queue, and workers keep draining until then.
		s.queue <- leader
	}
}

// worker drains the queue, coalescing compatible jobs into batches.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := <-s.queue
		if !ok {
			return
		}
		s.busy.Add(1)
		batch := s.collectBatch(j)
		s.runBatchSafe(batch)
		s.busy.Add(-1)
	}
}

// collectBatch gathers up to MaxBatch-1 additional queued jobs, waiting
// at most BatchWindow for stragglers. Every queued job is compatible by
// construction: the server owns all output-affecting options except
// shots and seed, which are applied per job after the shared
// probabilities are computed.
func (s *Server) collectBatch(first *job) []*job {
	batch := []*job{first}
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// markRunning flips every batch member (and its attached joiners) to
// running.
func (s *Server) markRunning(batch []*job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range batch {
		if f := s.inflight[j.key]; f != nil {
			for _, m := range f.jobs {
				m.state = StateRunning
			}
		}
	}
}

// guardPanic runs fn, converting any panic into an ErrPanic-classed
// error instead of letting it unwind the worker. Every execution
// boundary in runBatch goes through it, so one panicking job fails
// alone: its batch-mates, the worker goroutine, and the server all
// survive, and every waiter's done channel still closes.
func (s *Server) guardPanic(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.panicsRecovered++
			s.mu.Unlock()
			err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	fn()
	return nil
}

// classifyExecErr lifts engine-level cancellation verdicts into the
// service error taxonomy: anything the cancel package tripped becomes
// ErrDeadlineExceeded (HTTP 504); every other error passes through.
func classifyExecErr(err error) error {
	if err != nil && errors.Is(err, cancel.ErrCancelled) {
		return fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
	}
	return err
}

// queueExpiredErr is the dequeue-time drop: the job's budget ran out
// before a worker ever picked it up, so it fails without executing.
func queueExpiredErr(cause error) error {
	return fmt.Errorf("%w (expired in queue): %v", ErrDeadlineExceeded, cause)
}

// batchFlag derives the coalesced batch's shared cancellation flag: the
// batch is one execution, so the loosest member deadline governs, and
// any unbounded member makes the whole batch unbounded (its result is
// owed regardless of how long it takes).
func batchFlag(jobs []*job) *cancel.Flag {
	var max time.Time
	for _, j := range jobs {
		d := j.flag.Deadline()
		if d.IsZero() {
			return nil
		}
		if d.After(max) {
			max = d
		}
	}
	if max.IsZero() {
		return nil
	}
	return cancel.WithDeadline(max)
}

// runBatchSafe is the worker's last-resort net around runBatch: the
// guarded execution boundaries inside should make it unreachable, but
// if serving-layer code itself panics, every member of the batch still
// reaches a terminal state (done channels close, flights clear) and
// the worker survives to drain the next batch.
func (s *Server) runBatchSafe(batch []*job) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("%w: %v", ErrPanic, r)
			s.mu.Lock()
			s.panicsRecovered++
			for _, j := range batch {
				// Idempotent per key: members runBatch already completed
				// before panicking have no flight left and are skipped.
				s.completeKeyLocked(j.key, nil, err, "panic")
			}
			s.mu.Unlock()
		}
	}()
	s.runBatch(batch)
}

// runBatch executes one coalesced batch: unique circuits (by
// fingerprint) run through core.Run in a single call — the mqpu
// device-parallel path when so configured — then each job's shots are
// sampled from its circuit's probability vector with the job's seed,
// reproducing exactly what a standalone backend.Run would return.
// Expectation jobs ride the same queue but execute one by one through
// the compiled-plan cache (their keys are unique within a batch by
// single-flight), so one cached compile serves any number of
// observables on the same circuit.
func (s *Server) runBatch(batch []*job) {
	// Queue wait ends for every member when the worker picks the batch
	// up; each job's queue_wait span is measured against its own
	// submission time.
	dequeued := time.Now()
	s.markRunning(batch)

	type outcome struct {
		j   *job
		res *backend.Result
		err error
		// skipped marks a job that never executed (expired in queue):
		// it completes like any failure but stays out of the executed
		// counter.
		skipped bool
	}
	var outs []outcome
	var cancelledQueue, cancelledRunning uint64

	// Distributed-communication totals for this batch's fresh
	// executions, aggregated once per execution event (batch-mates
	// share one execution, so summing per job would overcount).
	var mgpuExch, mgpuAvoided uint64
	var mgpuBytes int64

	var probJobs []*job
	var expJobs []*job
	var sweepJobs []*job
	for _, j := range batch {
		switch {
		case j.opts.Gradient || len(j.opts.SweepPoints) > 0:
			sweepJobs = append(sweepJobs, j)
		case j.ham != nil:
			expJobs = append(expJobs, j)
		default:
			probJobs = append(probJobs, j)
		}
	}
	for _, j := range expJobs {
		if cerr := j.flag.Err(); cerr != nil {
			// The budget ran out while the job sat in the queue: fail it
			// without paying for compilation or execution.
			cancelledQueue++
			outs = append(outs, outcome{j: j, err: queueExpiredErr(cerr), skipped: true})
			continue
		}
		var comp *backend.Compiled
		var ctr *telemetry.Trace
		var res *backend.Result
		var err error
		if gerr := s.guardPanic(func() {
			comp, ctr, err = s.compiled(j.circ, j.fp)
			if err == nil {
				res, err = core.RunExpectationCompiled(comp, j.ham, s.execOptionsCancel(j.flag))
			}
		}); gerr != nil {
			res, err = nil, gerr
		}
		if cls := classifyExecErr(err); cls != err { //nolint:errorlint // identity check, not a match
			res, err = nil, cls
			cancelledRunning++
		}
		if res != nil {
			// Expectation keys are unique within a batch (single-flight
			// collapses duplicates), so the merged trace is both this
			// job's breakdown and exactly one execution event.
			tr := &telemetry.Trace{}
			tr.Add(telemetry.StageQueueWait, dequeued.Sub(j.submittedAt))
			tr.Append(ctr)
			tr.Append(res.Trace)
			res.Trace = tr
			s.observeStages(tr)
			mgpuExch += uint64(res.Exchanges)
			mgpuAvoided += uint64(res.AvoidedExchanges)
			mgpuBytes += res.BytesSent
		}
		outs = append(outs, outcome{j: j, res: res, err: err})
	}
	// Sweep and gradient jobs execute one by one like expectation jobs
	// (their keys are unique within a batch by single-flight): one
	// compiled() resolution — a single compile or a structural-cache
	// hit — serves every point of the sweep through rebinds. A
	// configuration whose transform is value-dependent surfaces
	// ErrNotRebindable from the compiled fast path and falls back to
	// per-point compilation from the source circuit: same results, none
	// of the compile-once savings.
	var sweepPts uint64
	for _, j := range sweepJobs {
		if cerr := j.flag.Err(); cerr != nil {
			cancelledQueue++
			outs = append(outs, outcome{j: j, err: queueExpiredErr(cerr), skipped: true})
			continue
		}
		var comp *backend.Compiled
		var ctr *telemetry.Trace
		var res *backend.Result
		var err error
		if gerr := s.guardPanic(func() {
			comp, ctr, err = s.compiled(j.circ, j.fp)
			if err != nil {
				return
			}
			o := s.execOptionsCancel(j.flag)
			o.Shots, o.Seed = j.opts.Shots, j.opts.Seed
			if j.opts.Gradient {
				res, err = core.RunGradientCompiled(comp, j.ham, j.circ.ParamValues(), o)
				if errors.Is(err, backend.ErrNotRebindable) {
					res, err = core.RunGradient(j.circ, j.ham, j.circ.ParamValues(), o)
				}
			} else {
				res, err = core.RunSweepCompiled(comp, j.ham, j.opts.SweepPoints, o)
				if errors.Is(err, backend.ErrNotRebindable) {
					res, err = core.RunSweep(j.circ, j.ham, j.opts.SweepPoints, o)
				}
			}
		}); gerr != nil {
			res, err = nil, gerr
		}
		if cls := classifyExecErr(err); cls != err { //nolint:errorlint // identity check, not a match
			res, err = nil, cls
			cancelledRunning++
		}
		if res != nil {
			sweepPts += uint64(res.SweepPoints)
			tr := &telemetry.Trace{}
			tr.Add(telemetry.StageQueueWait, dequeued.Sub(j.submittedAt))
			tr.Append(ctr)
			tr.Append(res.Trace)
			res.Trace = tr
			s.observeStages(tr)
			mgpuExch += uint64(res.Exchanges)
			mgpuAvoided += uint64(res.AvoidedExchanges)
			mgpuBytes += res.BytesSent
		}
		outs = append(outs, outcome{j: j, res: res, err: err})
	}
	// Probability jobs whose budget expired in the queue drop here, the
	// same dequeue-time check the expectation path runs.
	batch = batch[:0]
	for _, j := range probJobs {
		if cerr := j.flag.Err(); cerr != nil {
			cancelledQueue++
			outs = append(outs, outcome{j: j, err: queueExpiredErr(cerr), skipped: true})
			continue
		}
		batch = append(batch, j)
	}

	var order []string
	byFP := make(map[string][]*job, len(batch))
	circs := make([]*circuit.Circuit, 0, len(batch))
	for _, j := range batch {
		if byFP[j.fp] == nil {
			order = append(order, j.fp)
			circs = append(circs, j.circ)
		}
		byFP[j.fp] = append(byFP[j.fp], j)
	}

	// Resolve each unique circuit's execution IR through the plan
	// cache, then execute the precompiled batch — repeat fingerprints
	// pay zero transform/planning cost. Both phases run behind the
	// panic guard (the tile compiler and the engines are the code most
	// likely to trip on a pathological circuit), and the batch executes
	// under the members' loosest deadline.
	var err error
	comps := make([]*backend.Compiled, len(circs))
	compTrs := make([]*telemetry.Trace, len(circs))
	bflag := batchFlag(batch)
	if gerr := s.guardPanic(func() {
		for i, c := range circs {
			if comps[i], compTrs[i], err = s.compiled(c, order[i]); err != nil {
				break
			}
		}
	}); gerr != nil {
		err = gerr
	}
	var results []*backend.Result
	if err == nil {
		if gerr := s.guardPanic(func() {
			results, err = core.RunCompiledBatch(comps, s.execOptionsCancel(bflag))
		}); gerr != nil {
			results, err = nil, gerr
		}
	}
	var indivErrs []error
	if err != nil && len(circs) > 1 && !errors.Is(err, cancel.ErrCancelled) {
		// One poisonous circuit must not fail its batch-mates: fall
		// back to individual runs so errors stay job-local (each behind
		// its own panic guard, so a per-circuit panic fails only that
		// circuit). The good circuits are re-simulated —
		// backend.RunBatch discards its partial results on error —
		// which is acceptable because error batches are rare and bad
		// circuits are mostly rejected at Submit by Validate. A batch
		// cancelled on deadline skips the fallback entirely: the shared
		// flag was the loosest member budget, so every member is
		// equally expired and re-running them would just burn a worker.
		results = make([]*backend.Result, len(circs))
		indivErrs = make([]error, len(circs))
		for i, c := range circs {
			i, c := i, c
			if gerr := s.guardPanic(func() {
				results[i], indivErrs[i] = core.RunOne(c, s.execOptionsCancel(bflag))
			}); gerr != nil {
				results[i], indivErrs[i] = nil, gerr
			}
			indivErrs[i] = classifyExecErr(indivErrs[i])
		}
		err = nil
	}
	err = classifyExecErr(err)

	// Build every job's outcome — including shot sampling, which is
	// O(2^n + shots) — before touching s.mu, so a big batch never
	// stalls submissions, polls, or other workers' completions.
	for i, fp := range order {
		jobs := byFP[fp]
		if err != nil {
			for _, j := range jobs {
				if errors.Is(err, ErrDeadlineExceeded) {
					cancelledRunning++
				}
				outs = append(outs, outcome{j: j, err: err})
			}
			continue
		}
		if results[i] == nil {
			// Individual-fallback failure for this circuit: surface
			// its own error, not a generic one.
			ferr := fmt.Errorf("service: simulation failed for circuit %q", jobs[0].circ.Name)
			if indivErrs != nil && indivErrs[i] != nil {
				ferr = indivErrs[i]
			}
			for _, j := range jobs {
				if errors.Is(ferr, ErrDeadlineExceeded) {
					cancelledRunning++
				}
				outs = append(outs, outcome{j: j, err: ferr})
			}
			continue
		}
		// The compile/store-load/execute spans are shared by every
		// batch-mate of this fingerprint: observe them once per
		// execution event, not once per job.
		shared := &telemetry.Trace{}
		shared.Append(compTrs[i])
		shared.Append(results[i].Trace)
		s.observeStages(shared)
		mgpuExch += uint64(results[i].Exchanges)
		mgpuAvoided += uint64(results[i].AvoidedExchanges)
		mgpuBytes += results[i].BytesSent
		for _, j := range jobs {
			// Duration is this circuit's own simulation time (from
			// backend.Run), not the whole batch's wall-clock.
			jr := &backend.Result{
				Target:           s.cfg.Target,
				Probabilities:    results[i].Probabilities,
				KernelStats:      results[i].KernelStats,
				PlanStats:        results[i].PlanStats,
				TileBits:         results[i].TileBits,
				NumQubits:        results[i].NumQubits,
				Exchanges:        results[i].Exchanges,
				BytesSent:        results[i].BytesSent,
				AvoidedExchanges: results[i].AvoidedExchanges,
				Duration:         results[i].Duration,
			}
			// Per-job spans (queue_wait, sample) are observed per job;
			// the attached trace additionally carries the shared spans
			// so each result explains its own end-to-end path.
			queueWait := dequeued.Sub(j.submittedAt)
			var serr error
			var sampleDur time.Duration
			if j.opts.Shots > 0 {
				// backend.SampleShots applies the target's own
				// sampling path (incl. the mqpu per-device split), so
				// a coalesced job's counts match a standalone
				// backend.Run bit for bit.
				ts := time.Now()
				if gerr := s.guardPanic(func() {
					jr.Counts, serr = backend.SampleShots(jr.Probabilities, backend.Config{
						Target:  s.cfg.Target,
						Devices: s.cfg.Devices,
						Shots:   j.opts.Shots,
						Seed:    j.opts.Seed,
					})
				}); gerr != nil {
					serr = gerr
				}
				sampleDur = time.Since(ts)
			}
			own := &telemetry.Trace{}
			own.Add(telemetry.StageQueueWait, queueWait)
			own.Add(telemetry.StageSample, sampleDur)
			s.observeStages(own)
			tr := &telemetry.Trace{}
			tr.Add(telemetry.StageQueueWait, queueWait)
			tr.Append(shared)
			tr.Add(telemetry.StageSample, sampleDur)
			jr.Trace = tr
			outs = append(outs, outcome{j: j, res: jr, err: serr})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.batchedJobs += uint64(len(outs))
	s.mgpuExchanges += mgpuExch
	s.mgpuAvoided += mgpuAvoided
	s.mgpuBytesSent += mgpuBytes
	s.cancelledQueue += cancelledQueue
	s.cancelledRunning += cancelledRunning
	s.sweepPointsRun += sweepPts
	lat := string(s.cfg.Target)
	for _, o := range outs {
		if !o.skipped {
			s.executed++
		}
		key := lat
		switch {
		case o.j.opts.Gradient:
			if !o.skipped {
				s.gradExecuted++
			}
			key = "gradient"
		case len(o.j.opts.SweepPoints) > 0:
			if !o.skipped {
				s.sweepExecuted++
			}
			key = "sweep"
		case o.j.ham != nil:
			if !o.skipped {
				s.expExecuted++
			}
			key = "expectation"
		}
		if o.err != nil && errors.Is(o.err, ErrDeadlineExceeded) {
			key = "deadline"
		}
		s.completeKeyLocked(o.j.key, o.res, o.err, key)
	}
}

// Job returns the snapshot of a job by id.
func (s *Server) Job(id string) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.info(), nil
}

// Result returns the completed result of a job. ErrNotDone is returned
// while the job is queued or running; a failed job returns its error.
func (s *Server) Result(id string) (*backend.Result, error) {
	_, res, err := s.Lookup(id)
	return res, err
}

// Lookup returns a job's snapshot and, when finished, its result, in
// one consistent read: the snapshot's state always matches whether a
// result is present. ErrNotDone accompanies the snapshot while the job
// is queued or running; a failed job returns its simulation error.
func (s *Server) Lookup(id string) (JobInfo, *backend.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, nil, ErrNotFound
	}
	switch j.state {
	case StateDone:
		return j.info(), j.result, nil
	case StateFailed:
		return j.info(), nil, j.err
	default:
		return j.info(), nil, ErrNotDone
	}
}

// Wait blocks until the job finishes (or ctx is done) and returns its
// final snapshot.
func (s *Server) Wait(ctx context.Context, id string) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.info(), nil
}

// WaitFor blocks until the job finishes or d elapses, returning the
// job's current snapshot either way — the long-poll primitive behind
// GET /v1/jobs/{id}?wait_ms=N. A non-positive d degenerates to a plain
// poll.
func (s *Server) WaitFor(id string, d time.Duration) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.info(), nil
}

// Run is the synchronous convenience path: submit and wait, returning
// the result directly — the embeddable equivalent of one API call. It
// holds the job record itself, so the result survives even if the
// finished-job retention window evicts the id before the caller reads
// it.
func (s *Server) Run(ctx context.Context, c *circuit.Circuit, opts SubmitOptions) (*backend.Result, JobInfo, error) {
	j, err := s.submit(c, opts)
	if err != nil {
		return nil, JobInfo{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		s.mu.Lock()
		in := j.info()
		s.mu.Unlock()
		return nil, in, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.result, j.info(), j.err
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		QueueDepth:            len(s.queue),
		QueueCapacity:         s.cfg.QueueSize,
		Workers:               s.cfg.WorkerPool,
		WorkersBusy:           int(s.busy.Load()),
		Submitted:             s.submitted,
		Completed:             s.completed,
		Failed:                s.failed,
		PanicsRecovered:       s.panicsRecovered,
		RejectedQueueFull:     s.rejectedQueueFull,
		RejectedTooLarge:      s.rejectedTooLarge,
		RejectedInvalid:       s.rejectedInvalid,
		CancelledQueue:        s.cancelledQueue,
		CancelledRunning:      s.cancelledRunning,
		CacheHits:             s.cacheHits,
		SingleFlightHits:      s.sfHits,
		Executed:              s.executed,
		ExpectationJobs:       s.expSubmitted,
		ExpectationExecuted:   s.expExecuted,
		SweepJobs:             s.sweepSubmitted,
		SweepExecuted:         s.sweepExecuted,
		SweepPointsRun:        s.sweepPointsRun,
		GradientJobs:          s.gradSubmitted,
		GradientExecuted:      s.gradExecuted,
		PlanRebinds:           s.planRebinds,
		CacheLen:              s.cache.Len(),
		CacheCapacity:         s.cfg.CacheSize,
		CacheBytes:            s.cache.Bytes(),
		CacheMaxBytes:         s.cfg.MaxCacheBytes,
		CacheEvictions:        s.cache.Evictions(),
		CacheEvictedBytes:     s.cacheEvictedBytes,
		PlanCacheHits:         s.planHits,
		PlanCacheMisses:       s.planMisses,
		PlanCacheLen:          s.plans.Len(),
		PlanCacheBytes:        s.plans.Bytes(),
		PlanCacheMaxBytes:     s.cfg.MaxPlanCacheBytes,
		PlanCacheEvictions:    s.plans.Evictions(),
		PlanCacheEvictedBytes: s.planEvictedBytes,
		StoreHits:             s.storeHits,
		StorePlanHits:         s.planStoreHits,
		StoreMisses:           s.storeMisses,
		StoreSpills:           s.storeSpills,
		StoreSpillDrops:       s.storeSpillDrops,
		StoreErrors:           s.storeErrors,
		StoreQuarantines:      s.storeQuarantines,
		Batches:               s.batches,
		BatchedJobs:           s.batchedJobs,
		MgpuExchanges:         s.mgpuExchanges,
		MgpuAvoidedExchanges:  s.mgpuAvoided,
		MgpuBytesSent:         s.mgpuBytesSent,
		Latency:               make(map[string]HistogramSnapshot, len(s.latency)),
		UptimeSeconds:         time.Since(s.start).Seconds(),
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.StoreDir = ss.Dir
		st.StoreResultEntries = ss.ResultEntries
		st.StorePlanEntries = ss.PlanEntries
		st.StoreBytes = ss.Bytes
		st.StoreMaxBytes = ss.MaxBytes
		st.StoreGCEvictions = ss.GCEvictions
		st.StoreGCEvictedBytes = ss.GCEvictedBytes
		st.StoreGCRejected = ss.GCRejected
		st.StoreAdmissionSkips = s.storeAdmissionSkips
		st.StoreManifestRecords = ss.ManifestRecords
		st.StoreManifestCompactions = ss.ManifestCompactions
		st.StoreBootScanned = ss.BootScanned
	}
	if st.Submitted > 0 {
		st.HitRate = float64(st.CacheHits+st.SingleFlightHits+st.StoreHits) / float64(st.Submitted)
	}
	if st.Batches > 0 {
		st.MeanBatchLen = float64(st.BatchedJobs) / float64(st.Batches)
	}
	for k, h := range s.latency {
		st.Latency[k] = snapshotHistogram(h)
	}
	return st
}

// Registry returns the server's telemetry registry — the backing for
// the /metrics exposition, exposed so embedders can mount it
// themselves or add process-level instruments.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// cacheKeys exposes LRU recency order to tests.
func (s *Server) cacheKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Keys()
}

// Close stops accepting submissions, drains every queued and in-flight
// job to completion, stops the worker pool, and — when a persistent
// store is configured — spills every resident cache entry to disk so
// the next process warm-starts with this one's working set. Safe to
// call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.spillWG.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.loadWG.Wait() // store loads finish (and their fallbacks enqueue) first
	close(s.queue)
	s.wg.Wait()
	if s.store != nil {
		s.mu.Lock()
		items := make([]spillItem, 0, s.cache.Len()+s.plans.Len())
		for _, e := range s.cache.Entries() {
			items = append(items, spillItem{key: e.Key, result: e.Val})
		}
		for _, e := range s.plans.Entries() {
			items = append(items, spillItem{key: e.Key, plan: e.Val, cost: e.Cost})
		}
		s.mu.Unlock()
		for _, it := range items {
			s.spill <- it // blocking: shutdown durability beats latency
		}
		close(s.spill)
		s.spillWG.Wait()
	}
	return nil
}
