package service

import (
	"context"
	"math"
	"testing"

	"qgear/internal/backend"
	"qgear/internal/circuit"
)

// TestPlanCacheReusedAcrossSubmissions checks the compiled-plan cache:
// resubmitting a known circuit with different shot options misses the
// result cache (different content address) but reuses the compiled
// TilePlan, and the replayed plan produces the identical distribution.
func TestPlanCacheReusedAcrossSubmissions(t *testing.T) {
	srv, err := New(Config{
		Target:     backend.TargetNvidia,
		Workers:    2,
		WorkerPool: 1,
		TileBits:   4, // force real planning on the 8-qubit circuit
		MaxBatch:   1, // no coalescing: each submission resolves the plan itself
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := circuit.GHZ(8, false)
	c.RY(0.3, 3).CX(3, 7)

	var probs [][]float64
	for i, opts := range []SubmitOptions{
		{},                   // probabilities only
		{Shots: 64, Seed: 1}, // different content address, same circuit
		{Shots: 64, Seed: 2}, // and again
	} {
		res, _, err := srv.Run(context.Background(), c, opts)
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		if res.PlanStats == nil || res.TileBits != 4 {
			t.Fatalf("submission %d: expected a planned run (tile=4), got tile=%d stats=%v", i, res.TileBits, res.PlanStats)
		}
		probs = append(probs, res.Probabilities)
	}

	st := srv.Stats()
	if st.PlanCacheMisses != 1 {
		t.Errorf("plan cache misses = %d, want 1 (one fingerprint)", st.PlanCacheMisses)
	}
	if st.PlanCacheHits < 2 {
		t.Errorf("plan cache hits = %d, want >= 2", st.PlanCacheHits)
	}
	if st.PlanCacheLen != 1 {
		t.Errorf("plan cache len = %d, want 1", st.PlanCacheLen)
	}
	// The cached plan must replay to the identical distribution.
	for i := 1; i < len(probs); i++ {
		for j := range probs[0] {
			if math.Abs(probs[0][j]-probs[i][j]) != 0 {
				t.Fatalf("submission %d: cached-plan distribution differs at %d", i, j)
			}
		}
	}

	// A different circuit gets its own plan cache entry.
	c2 := circuit.GHZ(8, false)
	c2.RZ(0.7, 0)
	if _, _, err := srv.Run(context.Background(), c2, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.PlanCacheLen != 2 || st.PlanCacheMisses != 2 {
		t.Errorf("after second circuit: len=%d misses=%d, want 2/2", st.PlanCacheLen, st.PlanCacheMisses)
	}
}

// TestPlanCacheDisabled ensures PlanCacheSize < 0 keeps everything a
// miss without breaking execution.
func TestPlanCacheDisabled(t *testing.T) {
	srv, err := New(Config{
		Target:        backend.TargetNvidia,
		Workers:       1,
		WorkerPool:    1,
		TileBits:      4,
		PlanCacheSize: -1,
		MaxBatch:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := circuit.GHZ(8, false)
	for seed := uint64(0); seed < 2; seed++ {
		if _, _, err := srv.Run(context.Background(), c, SubmitOptions{Shots: 16, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.PlanCacheHits != 0 || st.PlanCacheLen != 0 {
		t.Errorf("disabled plan cache recorded hits=%d len=%d", st.PlanCacheHits, st.PlanCacheLen)
	}
	if st.PlanCacheMisses != 2 {
		t.Errorf("misses = %d, want 2", st.PlanCacheMisses)
	}
}
