package service

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"qgear/internal/circuit"
	"qgear/internal/telemetry"
)

// TestHistogramSnapshotGoldenJSON pins the wire form of a latency
// histogram: the overflow bound marshals as the string "+Inf", not the
// old -1 sentinel, and the bounds round-trip.
func TestHistogramSnapshotGoldenJSON(t *testing.T) {
	h := &telemetry.Histogram{}
	h.Observe(1 * time.Microsecond) // exactly the le=1µs bound: inclusive, bucket 0
	h.Observe(3 * time.Microsecond)
	snap := snapshotHistogram(h)

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	golden := `{"upper_bounds_us":[1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384,32768,65536,131072,262144,524288,"+Inf"],` +
		`"counts":[1,0,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"count":2,"mean_us":2}`
	if string(data) != golden {
		t.Errorf("snapshot JSON drifted:\n got %s\nwant %s", data, golden)
	}

	var back HistogramSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.UpperBoundsUS[len(back.UpperBoundsUS)-1], 1) {
		t.Errorf("round-trip lost the +Inf overflow bound: %v", back.UpperBoundsUS)
	}
	if len(back.Counts) != len(back.UpperBoundsUS) {
		t.Errorf("counts/bounds length mismatch: %d vs %d", len(back.Counts), len(back.UpperBoundsUS))
	}
}

// TestBoundsLegacyUnmarshal keeps old clients decodable: servers before
// the +Inf convention emitted -1 for the overflow bucket.
func TestBoundsLegacyUnmarshal(t *testing.T) {
	var b BoundsUS
	if err := json.Unmarshal([]byte(`[1,2,-1]`), &b); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(b[2], 1) {
		t.Errorf("legacy -1 not normalized to +Inf: %v", b)
	}
	if err := json.Unmarshal([]byte(`[1,"+Inf"]`), &b); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(b[1], 1) {
		t.Errorf(`"+Inf" string not decoded: %v`, b)
	}
	if err := json.Unmarshal([]byte(`["nope"]`), &b); err == nil {
		t.Error("garbage bound accepted")
	}
}

// TestTraceWithinWall asserts the tentpole's core accounting invariant:
// for a freshly executed (non-cached) job, the stage spans are
// sequential and non-overlapping, so their sum is bounded by the job's
// measured wall time.
func TestTraceWithinWall(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 1})
	c := circuit.GHZ(8, false)

	res, info, err := s.Run(context.Background(), c, SubmitOptions{Shots: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("first submission reported cached")
	}
	if res.Trace == nil || len(res.Trace.Spans) == 0 {
		t.Fatal("fresh execution carries no trace")
	}
	wall := info.FinishedAt.Sub(info.SubmittedAt)
	if sum := res.Trace.Sum(); sum > wall {
		t.Errorf("trace sum %v exceeds wall %v (spans: %+v)", sum, wall, res.Trace.Spans)
	}
	stages := map[string]bool{}
	for _, sp := range res.Trace.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{telemetry.StageCompile, telemetry.StageExecute} {
		if !stages[want] {
			t.Errorf("trace missing %s span: %+v", want, res.Trace.Spans)
		}
	}

	// A repeat submission is a cache hit: it shares the original
	// execution's trace (flagged Cached), same span set.
	res2, info2, err := s.Run(context.Background(), c, SubmitOptions{Shots: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached {
		t.Fatal("repeat submission not served from cache")
	}
	if res2.Trace != res.Trace {
		t.Error("cached result does not share the original trace")
	}
}

// TestExpectationTrace checks the expectation path records its
// reduction stage.
func TestExpectationTrace(t *testing.T) {
	s := newTestServer(t, Config{})
	c := circuit.GHZ(6, false)
	res, info, err := s.Run(context.Background(), c, SubmitOptions{Hamiltonian: expTestHamiltonian(6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("expectation result carries no trace")
	}
	var hasReduce bool
	for _, sp := range res.Trace.Spans {
		if sp.Stage == telemetry.StageExpectation {
			hasReduce = true
		}
	}
	if !hasReduce {
		t.Errorf("no %s span in %+v", telemetry.StageExpectation, res.Trace.Spans)
	}
	if sum := res.Trace.Sum(); sum > info.FinishedAt.Sub(info.SubmittedAt) {
		t.Errorf("trace sum %v exceeds wall", sum)
	}
}

// TestMetricsEndpoint drives jobs through the HTTP API and checks the
// /metrics exposition: required families present, values consistent
// with /v1/stats, traces visible in /v1/results.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two fresh jobs plus one repeat (a result-cache hit).
	var lastID string
	for i, seed := range []uint64{1, 2, 1} {
		c := circuit.GHZ(7, false)
		if i == 1 {
			c.RZ(0.25, 0)
		}
		body, _ := json.Marshal(SubmitRequest{Circuit: FromCircuit(c), Shots: 16, Seed: seed})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		lastID = info.ID
		waitDone(t, ts.URL, info.ID)
	}

	// The result payload carries the trace.
	resp, err := http.Get(ts.URL + "/v1/results/" + lastID)
	if err != nil {
		t.Fatal(err)
	}
	var rr ResultResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.Trace == nil || len(rr.Trace.Spans) == 0 {
		t.Error("/v1/results payload has no trace")
	}
	if !rr.Cached {
		t.Error("third submission (repeat) not flagged cached")
	}

	metrics := fetchText(t, ts.URL+"/metrics")
	for _, fam := range []string{
		"# TYPE qgear_jobs_submitted_total counter",
		"# TYPE qgear_cache_hits_total counter",
		"# TYPE qgear_job_duration_seconds histogram",
		"# TYPE qgear_stage_duration_seconds histogram",
		"# TYPE qgear_queue_depth gauge",
		"# TYPE go_goroutines gauge",
		"# TYPE qgear_build_info gauge",
	} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics missing %q", fam)
		}
	}

	var st Stats
	if err := json.Unmarshal([]byte(fetchText(t, ts.URL+"/v1/stats")), &st); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"qgear_jobs_submitted_total":             float64(st.Submitted),
		"qgear_jobs_completed_total":             float64(st.Completed),
		"qgear_jobs_executed_total":              float64(st.Executed),
		`qgear_cache_hits_total{cache="result"}`: float64(st.CacheHits),
		`qgear_cache_hits_total{cache="plan"}`:   float64(st.PlanCacheHits),
	}
	for series, want := range checks {
		got, ok := metricValue(metrics, series)
		if !ok {
			t.Errorf("/metrics missing series %s", series)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, /v1/stats says %v", series, got, want)
		}
	}
	if v, ok := metricValue(metrics, `qgear_build_info{version="`+Version+`"}`); !ok || v != 1 {
		t.Errorf("build info series wrong: %v %v", v, ok)
	}

	// The per-path latency family mirrors the Stats latency map.
	for path, snap := range st.Latency {
		series := `qgear_job_duration_seconds_count{path="` + path + `"}`
		got, ok := metricValue(metrics, series)
		if !ok || got != float64(snap.Count) {
			t.Errorf("%s = %v ok=%v, stats count %d", series, got, ok, snap.Count)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 3, QueueSize: 17})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var h HealthResponse
	if err := json.Unmarshal([]byte(fetchText(t, ts.URL+"/v1/healthz")), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != Version {
		t.Errorf("healthz = %+v", h)
	}
	if h.QueueCapacity != 17 || h.Workers != 3 {
		t.Errorf("healthz capacity/workers = %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", h.UptimeSeconds)
	}
}

// metricValue extracts one series' value from an exposition body.
func metricValue(metrics, series string) (float64, bool) {
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			return v, err == nil
		}
	}
	return 0, false
}

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch info.State {
		case StateDone:
			return
		case StateFailed:
			t.Fatalf("job %s failed: %s", id, info.Error)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}
