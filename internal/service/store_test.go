package service

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
)

// storeTestCircuits builds n deterministic, distinct circuits.
func storeTestCircuits(n, qubits int) []*circuit.Circuit {
	cs := make([]*circuit.Circuit, n)
	for i := range cs {
		c := circuit.GHZ(qubits, false)
		c.RZ(1e-6*float64(i+1), 0)
		cs[i] = c
	}
	return cs
}

// TestWarmRestartServesFromStore is the acceptance test: a server is
// filled, closed (spilling to disk), and a second server on the same
// directory answers every repeat submission from the store — marked
// cached, zero simulations — with bit-identical probabilities and
// exact shot counts.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	circs := storeTestCircuits(5, 8)
	ctx := context.Background()

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*backend.Result, len(circs))
	for i, c := range circs {
		res, _, err := s1.Run(ctx, c, SubmitOptions{Shots: 300, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, cfg)
	for i, c := range circs {
		res, info, err := s2.Run(ctx, c, SubmitOptions{Shots: 300, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if !info.Cached {
			t.Fatalf("circuit %d was re-simulated after restart", i)
		}
		for k := range want[i].Probabilities {
			if res.Probabilities[k] != want[i].Probabilities[k] {
				t.Fatalf("circuit %d probability[%d]: %v vs %v (bit-identity across restart)",
					i, k, res.Probabilities[k], want[i].Probabilities[k])
			}
		}
		if !reflect.DeepEqual(res.Counts, want[i].Counts) {
			t.Fatalf("circuit %d counts differ across restart", i)
		}
	}
	st := s2.Stats()
	if st.StoreHits != uint64(len(circs)) {
		t.Fatalf("store hits %d, want %d", st.StoreHits, len(circs))
	}
	if st.Executed != 0 {
		t.Fatalf("%d simulations ran on the warm-started server", st.Executed)
	}
	if st.HitRate != 1 {
		t.Fatalf("hit rate %v, want 1 (store hits count)", st.HitRate)
	}
}

// TestWarmRestartPlansFromStore: the compiled-plan cache warm-starts
// too — a new shots/seed submission of a known circuit (result-cache
// miss) reuses the persisted plan instead of recompiling.
func TestWarmRestartPlansFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	c := storeTestCircuits(1, 8)[0]
	ctx := context.Background()

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Run(ctx, c, SubmitOptions{Shots: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, cfg)
	// Different shots: misses the result store, must still simulate —
	// but through the persisted plan.
	if _, _, err := s2.Run(ctx, c, SubmitOptions{Shots: 200, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.StorePlanHits != 1 {
		t.Fatalf("plan store hits %d, want 1", st.StorePlanHits)
	}
	if st.Executed != 1 {
		t.Fatalf("executed %d, want 1", st.Executed)
	}
}

// TestCorruptStoreFallsBack: a bit-flipped spill file is rejected,
// quarantined, and the submission transparently falls back to a real
// simulation with a correct result.
func TestCorruptStoreFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	c := storeTestCircuits(1, 8)[0]
	ctx := context.Background()

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := s1.Run(ctx, c, SubmitOptions{Shots: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in every result file.
	matches, err := filepath.Glob(filepath.Join(dir, "results", "*", "*.h5"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no spill files found: %v", err)
	}
	for _, path := range matches {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newTestServer(t, cfg)
	res, info, err := s2.Run(ctx, c, SubmitOptions{Shots: 100, Seed: 9})
	if err != nil {
		t.Fatalf("corrupt store must fall back to simulation, got %v", err)
	}
	if info.State != StateDone {
		t.Fatalf("job state %s", info.State)
	}
	for k := range want.Probabilities {
		if res.Probabilities[k] != want.Probabilities[k] {
			t.Fatalf("fallback result differs at %d", k)
		}
	}
	st := s2.Stats()
	if st.StoreErrors == 0 {
		t.Fatal("corruption was not counted")
	}
	if st.StoreHits != 0 {
		t.Fatalf("store hits %d from a corrupt file", st.StoreHits)
	}
	if st.Executed != 1 {
		t.Fatalf("executed %d, want 1 fallback simulation", st.Executed)
	}
	// The corrupt file was quarantined: a second restart re-simulates
	// without error noise.
	if got, _ := filepath.Glob(filepath.Join(dir, "results", "*", "*.h5")); len(got) >= len(matches) {
		t.Fatalf("corrupt file not dropped: %d files, had %d", len(got), len(matches))
	}
}

// TestCacheByteBoundUnderLoad: with a budget sized for a fraction of
// the working set, resident bytes never exceed MaxCacheBytes while
// evicted entries spill and remain answerable from disk.
func TestCacheByteBoundUnderLoad(t *testing.T) {
	dir := t.TempDir()
	// A GHZ-10 result is 8 KiB of probabilities (+overhead); budget ~3
	// entries, then push 12 distinct circuits through.
	cfg := Config{StoreDir: dir, WorkerPool: 2, MaxCacheBytes: 30 << 10, TileBits: 4}
	circs := storeTestCircuits(12, 10)
	ctx := context.Background()
	s := newTestServer(t, cfg)
	for i, c := range circs {
		if _, _, err := s.Run(ctx, c, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.CacheBytes > st.CacheMaxBytes {
			t.Fatalf("after job %d: resident %d bytes exceed budget %d", i, st.CacheBytes, st.CacheMaxBytes)
		}
	}
	st := s.Stats()
	if st.CacheEvictions == 0 {
		t.Fatal("no evictions under a 30 KiB budget and 12 x 8 KiB results")
	}

	// Eviction spills are asynchronous; wait for the spiller to land
	// every evicted entry on disk before resubmitting.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = s.Stats()
		if st.StoreSpills+st.StoreSpillDrops >= st.CacheEvictions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spiller never caught up: %d spills + %d drops vs %d evictions",
				st.StoreSpills, st.StoreSpillDrops, st.CacheEvictions)
		}
		time.Sleep(time.Millisecond)
	}
	if st.StoreSpillDrops > 0 {
		t.Skipf("spill backlog shed %d entries; store completeness not guaranteed", st.StoreSpillDrops)
	}

	// Every circuit — including evicted ones — is still answered
	// without re-simulation: resident hits or store loads.
	execBefore := s.Stats().Executed
	for i, c := range circs {
		if _, info, err := s.Run(ctx, c, SubmitOptions{}); err != nil || !info.Cached {
			t.Fatalf("resubmission %d: err=%v cached=%v", i, err, info.Cached)
		}
	}
	if after := s.Stats(); after.Executed != execBefore {
		t.Fatalf("resubmissions re-simulated: %d -> %d", execBefore, after.Executed)
	}
}

// TestStoreEndpoint: /v1/store reports the on-disk contents.
func TestStoreEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StoreDir: dir, WorkerPool: 1, TileBits: 4})
	if _, _, err := s.Run(context.Background(), storeTestCircuits(1, 8)[0], SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	// Force a spill by closing; then inspect a fresh server's endpoint.
	s.Close()
	s2 := newTestServer(t, Config{StoreDir: dir, WorkerPool: 1, TileBits: 4})
	st := s2.Stats()
	if st.StoreResultEntries == 0 || st.StoreBytes == 0 || st.StoreDir != dir {
		t.Fatalf("store stats %+v, want indexed artifacts under %s", st, dir)
	}
}
