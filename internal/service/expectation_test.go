package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/core"
	"qgear/internal/observable"
)

// Expectation-value jobs through the service, cache, and store —
// mirroring the PR-4 result-path acceptance tests for the new job
// kind: end-to-end evaluation, content-addressed cache hits keyed by
// (fingerprint, hamiltonian hash, options), single-flight dedup of
// concurrent identical jobs, warm restarts answering from disk
// bit-identically, and corrupt-artifact quarantine with transparent
// re-simulation.

func expTestCircuit(i, qubits int) *circuit.Circuit {
	c := circuit.GHZ(qubits, false)
	c.Name = "exp-test"
	c.RZ(1e-5*float64(i+1), 0)
	return c
}

func expTestHamiltonian(n int) *observable.Hamiltonian {
	return observable.TransverseFieldIsing(n, 1.0, 0.7)
}

func TestExpectationEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 2})
	ctx := context.Background()
	c := expTestCircuit(0, 8)
	h := expTestHamiltonian(8)

	res, info, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: h})
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("first expectation job reported cached")
	}
	if res.ExpValue == nil || res.ExpTerms != len(h.Terms) {
		t.Fatalf("bad expectation result: %+v", res)
	}
	if res.Probabilities != nil || res.Counts != nil {
		t.Fatal("expectation job materialized a readout")
	}
	// Independent reference through the pipeline.
	ref, err := core.RunExpectation(c, h, s.execOptions())
	if err != nil {
		t.Fatal(err)
	}
	if *res.ExpValue != *ref.ExpValue {
		t.Fatalf("service ⟨H⟩ %.17g != standalone %.17g", *res.ExpValue, *ref.ExpValue)
	}

	// Repeat submission: a content-addressed cache hit, bit-identical.
	res2, info2, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: h})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Cached {
		t.Fatal("repeat expectation job was re-simulated")
	}
	if *res2.ExpValue != *res.ExpValue {
		t.Fatal("cached ⟨H⟩ differs")
	}
	// A term-reordered, map-rebuilt spelling of the same operator is
	// the same cache key.
	reordered := &observable.Hamiltonian{NumQubits: h.NumQubits}
	for i := len(h.Terms) - 1; i >= 0; i-- {
		reordered.Add(observable.NewTerm(h.Terms[i].Coef, h.Terms[i].Ops))
	}
	_, info3, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: reordered})
	if err != nil {
		t.Fatal(err)
	}
	if !info3.Cached {
		t.Fatal("canonically equal hamiltonian missed the cache")
	}
	// A different observable on the same circuit misses the result
	// cache but reuses the compiled plan.
	before := s.Stats()
	zz := observable.TransverseFieldIsing(8, 1.0, 0)
	_, info4, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: zz})
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if info4.Cached {
		t.Fatal("different hamiltonian served from the result cache")
	}
	if after.PlanCacheHits <= before.PlanCacheHits {
		t.Fatal("second observable on the same circuit did not reuse the compiled plan")
	}
	if after.ExpectationJobs != 4 || after.ExpectationExecuted != 2 {
		t.Fatalf("expectation counters: jobs=%d executed=%d", after.ExpectationJobs, after.ExpectationExecuted)
	}
}

func TestExpectationSingleFlight(t *testing.T) {
	// A slow-ish circuit plus many concurrent identical submissions:
	// exactly one evaluation runs, everyone shares its outcome.
	s := newTestServer(t, Config{WorkerPool: 2, QueueSize: 64})
	c := expTestCircuit(1, 12)
	h := expTestHamiltonian(12)
	ctx := context.Background()

	const clients = 24
	var wg sync.WaitGroup
	vals := make([]float64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: h})
			if err != nil {
				errs[i] = err
				return
			}
			vals[i] = *res.ExpValue
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if vals[i] != vals[0] {
			t.Fatalf("client %d saw a different ⟨H⟩", i)
		}
	}
	st := s.Stats()
	if st.ExpectationExecuted != 1 {
		t.Fatalf("%d evaluations ran for %d identical submissions", st.ExpectationExecuted, clients)
	}
	if st.CacheHits+st.SingleFlightHits != clients-1 {
		t.Fatalf("hits %d+%d, want %d", st.CacheHits, st.SingleFlightHits, clients-1)
	}
}

// TestExpectationWarmRestart is the acceptance criterion: kill a
// server with -store-dir, restart on the same directory, and repeat
// (fingerprint, H-hash) submissions answer from disk with
// bit-identical ⟨H⟩ and zero simulations.
func TestExpectationWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	ctx := context.Background()
	h := expTestHamiltonian(8)

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 4)
	for i := range want {
		res, _, err := s1.Run(ctx, expTestCircuit(i, 8), SubmitOptions{Hamiltonian: h})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = *res.ExpValue
	}
	if err := s1.Close(); err != nil { // kill: spills expectation artifacts
		t.Fatal(err)
	}

	s2 := newTestServer(t, cfg)
	for i := range want {
		res, info, err := s2.Run(ctx, expTestCircuit(i, 8), SubmitOptions{Hamiltonian: h})
		if err != nil {
			t.Fatal(err)
		}
		if !info.Cached {
			t.Fatalf("expectation job %d re-simulated after restart", i)
		}
		if res.ExpValue == nil || *res.ExpValue != want[i] {
			t.Fatalf("job %d: restarted ⟨H⟩ not bit-identical", i)
		}
	}
	st := s2.Stats()
	if st.Executed != 0 || st.StoreHits != 4 {
		t.Fatalf("executed=%d storeHits=%d after restart, want 0/4", st.Executed, st.StoreHits)
	}
}

// TestExpectationCorruptArtifactQuarantine flips bytes in a persisted
// expectation artifact: the restarted server must reject it, drop it,
// and transparently fall back to a fresh evaluation with the correct
// value.
func TestExpectationCorruptArtifactQuarantine(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, WorkerPool: 1, MaxBatch: 1}
	ctx := context.Background()
	c := expTestCircuit(0, 8)
	h := expTestHamiltonian(8)

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, _, err := s1.Run(ctx, c, SubmitOptions{Hamiltonian: h})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt every result artifact on disk.
	files, err := filepath.Glob(filepath.Join(dir, "results", "*", "*.h5"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no artifacts to corrupt (err %v)", err)
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
			raw[i] ^= 0xff
		}
		if err := os.WriteFile(f, raw, 0o600); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newTestServer(t, cfg)
	res2, info, err := s2.Run(ctx, c, SubmitOptions{Hamiltonian: h})
	if err != nil {
		t.Fatal(err)
	}
	if *res2.ExpValue != *res1.ExpValue {
		t.Fatalf("fallback ⟨H⟩ %.17g != original %.17g", *res2.ExpValue, *res1.ExpValue)
	}
	st := s2.Stats()
	if st.Executed != 1 {
		t.Fatalf("corrupt artifact should force exactly one re-evaluation, got %d", st.Executed)
	}
	if st.StoreErrors == 0 {
		t.Fatal("corruption not counted")
	}
	if info.Cached {
		t.Fatal("corrupt-artifact fallback still reported cached")
	}
}

func TestExpectationSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	c := expTestCircuit(0, 4)
	if _, err := s.Submit(c, SubmitOptions{Hamiltonian: expTestHamiltonian(4), Shots: 100}); err == nil {
		t.Fatal("expectation job with shots accepted")
	}
	if _, err := s.Submit(c, SubmitOptions{Hamiltonian: expTestHamiltonian(9)}); err == nil {
		t.Fatal("oversized hamiltonian accepted")
	}
	bad := &observable.Hamiltonian{NumQubits: 4}
	bad.Add(observable.NewTerm(math.NaN(), map[int]observable.Pauli{0: observable.Z}))
	if _, err := s.Submit(c, SubmitOptions{Hamiltonian: bad}); err == nil {
		t.Fatal("NaN hamiltonian accepted")
	}
	// Mutating the caller's Hamiltonian after Submit must not poison
	// the cache (deep copy).
	ctx := context.Background()
	good := expTestHamiltonian(4)
	res1, _, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: good})
	if err != nil {
		t.Fatal(err)
	}
	good.Terms[0].Ops[0] = observable.X // caller mutation
	res2, info, err := s.Run(ctx, c, SubmitOptions{Hamiltonian: expTestHamiltonian(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached || *res2.ExpValue != *res1.ExpValue {
		t.Fatal("caller mutation leaked into the cached hamiltonian")
	}
}

// TestExpectationHTTP drives the job kind through the real JSON API.
func TestExpectationHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := expTestCircuit(0, 6)
	h := expTestHamiltonian(6)

	submit := func(req SubmitRequest) (*http.Response, JobInfo) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		_ = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		return resp, info
	}

	resp, info := submit(SubmitRequest{
		Kind: "expectation", Circuit: FromCircuit(c), Hamiltonian: FromHamiltonian(h),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	ctx := context.Background()
	if _, err := s.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/v1/results/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var out ResultResponse
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if out.ExpValue == nil || out.ExpTerms != len(h.Terms) {
		t.Fatalf("result response missing expval: %+v", out)
	}
	if len(out.Top) != 0 || len(out.Counts) != 0 {
		t.Fatal("expectation response carries probabilities/counts")
	}
	ref, err := core.RunExpectation(c, h, s.execOptions())
	if err != nil {
		t.Fatal(err)
	}
	if *out.ExpValue != *ref.ExpValue {
		t.Fatalf("HTTP ⟨H⟩ %.17g != reference %.17g", *out.ExpValue, *ref.ExpValue)
	}

	// Wire-format validation errors.
	for _, bad := range []SubmitRequest{
		{Kind: "expectation", Circuit: FromCircuit(c)},                               // missing hamiltonian
		{Kind: "simulate", Circuit: FromCircuit(c), Hamiltonian: FromHamiltonian(h)}, // contradictory
		{Kind: "bogus", Circuit: FromCircuit(c)},                                     // unknown kind
		{Kind: "expectation", Circuit: FromCircuit(c), Hamiltonian: &WireHamiltonian{Qubits: 6, Terms: []WireTerm{{Coef: 1, Paulis: []WirePauli{{Q: 0, P: "Q"}}}}}}, // bad pauli
	} {
		resp, _ := submit(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %+v: HTTP %d", bad, resp.StatusCode)
		}
	}
}
