package service

import (
	"math/bits"
	"time"
)

// latencyBuckets is the number of power-of-two microsecond buckets in a
// latency histogram: bucket i counts observations with ceil(log2(µs))
// == i, so the span runs 1 µs .. ~2^19 µs (≈ 0.5 s) with a final
// overflow bucket.
const latencyBuckets = 20

// histogram is a fixed-shape exponential latency histogram.
type histogram struct {
	Counts [latencyBuckets + 1]uint64
	Sum    time.Duration
	N      uint64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	var b int
	if us > 0 {
		b = bits.Len64(uint64(us)) // 1µs -> 1, 1ms -> ~10, 1s -> ~20
	}
	if b > latencyBuckets {
		b = latencyBuckets
	}
	h.Counts[b]++
	h.Sum += d
	h.N++
}

// HistogramSnapshot is the JSON-friendly view of one latency histogram:
// bucket i counts observations with latency < UpperBoundsUS[i]
// (cumulative-free, Prometheus-style le bounds).
type HistogramSnapshot struct {
	UpperBoundsUS []int64  `json:"upper_bounds_us"`
	Counts        []uint64 `json:"counts"`
	Count         uint64   `json:"count"`
	MeanUS        float64  `json:"mean_us"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		UpperBoundsUS: make([]int64, latencyBuckets+1),
		Counts:        make([]uint64, latencyBuckets+1),
		Count:         h.N,
	}
	for i := 0; i <= latencyBuckets; i++ {
		s.UpperBoundsUS[i] = int64(1) << uint(i)
		s.Counts[i] = h.Counts[i]
	}
	s.UpperBoundsUS[latencyBuckets] = -1 // overflow bucket
	if h.N > 0 {
		s.MeanUS = float64(h.Sum.Microseconds()) / float64(h.N)
	}
	return s
}

// Stats is a point-in-time snapshot of the server's counters. Counter
// fields are cumulative since server start, so clients can compute
// windowed rates (e.g. the hit rate of one load wave) by differencing
// two snapshots.
type Stats struct {
	// Queue and pool state.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`

	// Job counters.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`

	// Content-address counters. A submission is served without
	// re-simulation when it hits the result cache, joins an identical
	// in-flight job (single-flight), or loads from the persistent
	// store; HitRate counts all three.
	CacheHits        uint64  `json:"cache_hits"`
	SingleFlightHits uint64  `json:"single_flight_hits"`
	Executed         uint64  `json:"executed"`
	HitRate          float64 `json:"hit_rate"`

	// Expectation-value jobs (kind "expectation"): submissions carrying
	// a Hamiltonian, and how many of them reached a fresh evaluation
	// (the remainder were cache/single-flight/store hits). Their
	// end-to-end latency is tracked under the "expectation" key of
	// Latency.
	ExpectationJobs     uint64 `json:"expectation_jobs"`
	ExpectationExecuted uint64 `json:"expectation_executed"`

	// Cache occupancy. Entries are byte-accounted: CacheBytes is the
	// resident size charged against CacheMaxBytes (0 = unbounded), and
	// evictions are cost-per-byte-aware, not pure recency.
	CacheLen       int    `json:"cache_len"`
	CacheCapacity  int    `json:"cache_capacity"`
	CacheBytes     int64  `json:"cache_bytes"`
	CacheMaxBytes  int64  `json:"cache_max_bytes"`
	CacheEvictions uint64 `json:"cache_evictions"`

	// Compiled-plan cache: executions that reused a cached TilePlan
	// (skipping circuit→kernel transformation and plan compilation)
	// versus ones that had to compile.
	PlanCacheHits     uint64 `json:"plan_cache_hits"`
	PlanCacheMisses   uint64 `json:"plan_cache_misses"`
	PlanCacheLen      int    `json:"plan_cache_len"`
	PlanCacheBytes    int64  `json:"plan_cache_bytes"`
	PlanCacheMaxBytes int64  `json:"plan_cache_max_bytes"`

	// Persistent store (zero-valued unless StoreDir is configured).
	// StoreHits are submissions answered from disk without simulating;
	// StorePlanHits are compilations answered from a persisted plan;
	// StoreMisses are result-cache misses the store could not answer
	// either. StoreSpills counts artifacts written (evictions and
	// shutdown), StoreSpillDrops eviction-spills shed under backlog,
	// and StoreErrors files rejected by integrity checks or failed
	// writes.
	StoreDir           string `json:"store_dir,omitempty"`
	StoreHits          uint64 `json:"store_hits"`
	StorePlanHits      uint64 `json:"store_plan_hits"`
	StoreMisses        uint64 `json:"store_misses"`
	StoreSpills        uint64 `json:"store_spills"`
	StoreSpillDrops    uint64 `json:"store_spill_drops"`
	StoreErrors        uint64 `json:"store_errors"`
	StoreResultEntries int    `json:"store_result_entries"`
	StorePlanEntries   int    `json:"store_plan_entries"`
	StoreBytes         int64  `json:"store_bytes"`

	// Batch coalescing.
	Batches      uint64  `json:"batches"`
	BatchedJobs  uint64  `json:"batched_jobs"`
	MeanBatchLen float64 `json:"mean_batch_len"`

	// Per-target end-to-end job latency (submit -> done), keyed by
	// execution target, plus the synthetic "cache" target for
	// submissions served straight from the cache.
	Latency map[string]HistogramSnapshot `json:"latency"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}
