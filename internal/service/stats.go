package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"qgear/internal/telemetry"
)

// BoundsUS is a latency histogram's bucket upper bounds in
// microseconds. The final bound is +Inf — the overflow bucket counts
// everything past the largest finite bound. JSON has no Inf literal,
// so the infinite bound marshals as the string "+Inf"; unmarshalling
// accepts that string, plain numbers, and the legacy -1 sentinel that
// older servers emitted for the overflow bucket.
type BoundsUS []float64

// MarshalJSON renders finite bounds as numbers and the +Inf overflow
// bound as the string "+Inf".
func (b BoundsUS) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, v := range b {
		if i > 0 {
			buf.WriteByte(',')
		}
		if math.IsInf(v, 1) {
			buf.WriteString(`"+Inf"`)
		} else {
			buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// UnmarshalJSON accepts numbers, the "+Inf" string, and the legacy -1
// overflow sentinel (normalized to +Inf).
func (b *BoundsUS) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(BoundsUS, len(raw))
	for i, r := range raw {
		var s string
		if err := json.Unmarshal(r, &s); err == nil {
			if s == "+Inf" || s == "Inf" {
				out[i] = math.Inf(1)
				continue
			}
			v, perr := strconv.ParseFloat(s, 64)
			if perr != nil {
				return fmt.Errorf("service: bad histogram bound %q", s)
			}
			out[i] = v
			continue
		}
		var v float64
		if err := json.Unmarshal(r, &v); err != nil {
			return err
		}
		if v < 0 {
			v = math.Inf(1) // legacy overflow sentinel
		}
		out[i] = v
	}
	*b = out
	return nil
}

// HistogramSnapshot is the JSON-friendly view of one latency histogram:
// bucket i counts observations with latency ≤ UpperBoundsUS[i]
// (non-cumulative counts with Prometheus-style le bounds; the final
// bound is +Inf). The same instruments back the Prometheus exposition,
// so the two surfaces can never disagree.
type HistogramSnapshot struct {
	UpperBoundsUS BoundsUS `json:"upper_bounds_us"`
	Counts        []uint64 `json:"counts"`
	Count         uint64   `json:"count"`
	MeanUS        float64  `json:"mean_us"`
}

func snapshotHistogram(h *telemetry.Histogram) HistogramSnapshot {
	d := h.Snapshot()
	return HistogramSnapshot{
		UpperBoundsUS: BoundsUS(telemetry.BucketUpperBoundsUS()),
		Counts:        append([]uint64(nil), d.Counts[:]...),
		Count:         d.N,
		MeanUS:        d.Mean(),
	}
}

// Stats is a point-in-time snapshot of the server's counters. Counter
// fields are cumulative since server start, so clients can compute
// windowed rates (e.g. the hit rate of one load wave) by differencing
// two snapshots.
type Stats struct {
	// Queue and pool state.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	// WorkersBusy is how many pool workers are executing a batch right
	// now (the utilization numerator for Workers).
	WorkersBusy int `json:"workers_busy"`

	// Job counters.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`

	// Resilience counters: execution panics recovered at the worker
	// boundary, submissions rejected at admission (by reason — the
	// labels of qgear_jobs_rejected_total), and jobs failed on their
	// deadline (by where the budget ran out — the labels of
	// qgear_jobs_cancelled_total).
	PanicsRecovered   uint64 `json:"panics_recovered"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedTooLarge  uint64 `json:"rejected_too_large"`
	RejectedInvalid   uint64 `json:"rejected_invalid"`
	CancelledQueue    uint64 `json:"cancelled_queue"`
	CancelledRunning  uint64 `json:"cancelled_running"`

	// Content-address counters. A submission is served without
	// re-simulation when it hits the result cache, joins an identical
	// in-flight job (single-flight), or loads from the persistent
	// store; HitRate counts all three.
	CacheHits        uint64  `json:"cache_hits"`
	SingleFlightHits uint64  `json:"single_flight_hits"`
	Executed         uint64  `json:"executed"`
	HitRate          float64 `json:"hit_rate"`

	// Expectation-value jobs (kind "expectation"): submissions carrying
	// a Hamiltonian, and how many of them reached a fresh evaluation
	// (the remainder were cache/single-flight/store hits). Their
	// end-to-end latency is tracked under the "expectation" key of
	// Latency.
	ExpectationJobs     uint64 `json:"expectation_jobs"`
	ExpectationExecuted uint64 `json:"expectation_executed"`

	// Sweep jobs (kind "sweep"): one parameterized circuit evaluated at
	// many points under one job. SweepPointsRun counts points freshly
	// executed (the qgear_sweep_points_total metric); gradient jobs are
	// the derived parameter-shift variant (kind "gradient").
	// PlanRebinds counts structural plan-cache hits that were served by
	// rebinding a cached skeleton to the submission's own parameter
	// values instead of compiling — together with PlanCacheMisses it
	// proves the compile-once property (a 1k-point sweep shows 1 miss).
	SweepJobs        uint64 `json:"sweep_jobs"`
	SweepExecuted    uint64 `json:"sweep_executed"`
	SweepPointsRun   uint64 `json:"sweep_points_run"`
	GradientJobs     uint64 `json:"gradient_jobs"`
	GradientExecuted uint64 `json:"gradient_executed"`
	PlanRebinds      uint64 `json:"plan_rebinds"`

	// Cache occupancy. Entries are byte-accounted: CacheBytes is the
	// resident size charged against CacheMaxBytes (0 = unbounded), and
	// evictions are cost-per-byte-aware, not pure recency.
	// CacheEvictedBytes is the cumulative accounted size of evicted
	// entries (the churn the byte bound forced).
	CacheLen          int    `json:"cache_len"`
	CacheCapacity     int    `json:"cache_capacity"`
	CacheBytes        int64  `json:"cache_bytes"`
	CacheMaxBytes     int64  `json:"cache_max_bytes"`
	CacheEvictions    uint64 `json:"cache_evictions"`
	CacheEvictedBytes int64  `json:"cache_evicted_bytes"`

	// Compiled-plan cache: executions that reused a cached TilePlan
	// (skipping circuit→kernel transformation and plan compilation)
	// versus ones that had to compile.
	PlanCacheHits         uint64 `json:"plan_cache_hits"`
	PlanCacheMisses       uint64 `json:"plan_cache_misses"`
	PlanCacheLen          int    `json:"plan_cache_len"`
	PlanCacheBytes        int64  `json:"plan_cache_bytes"`
	PlanCacheMaxBytes     int64  `json:"plan_cache_max_bytes"`
	PlanCacheEvictions    uint64 `json:"plan_cache_evictions"`
	PlanCacheEvictedBytes int64  `json:"plan_cache_evicted_bytes"`

	// Persistent store (zero-valued unless StoreDir is configured).
	// StoreHits are submissions answered from disk without simulating;
	// StorePlanHits are compilations answered from a persisted plan;
	// StoreMisses are result-cache misses the store could not answer
	// either. StoreSpills counts artifacts written (evictions and
	// shutdown), StoreSpillDrops eviction-spills shed under backlog,
	// StoreErrors files rejected by integrity checks or failed writes,
	// and StoreQuarantines the subset of errors where a provably
	// corrupt file was dropped from the store.
	StoreDir           string `json:"store_dir,omitempty"`
	StoreHits          uint64 `json:"store_hits"`
	StorePlanHits      uint64 `json:"store_plan_hits"`
	StoreMisses        uint64 `json:"store_misses"`
	StoreSpills        uint64 `json:"store_spills"`
	StoreSpillDrops    uint64 `json:"store_spill_drops"`
	StoreErrors        uint64 `json:"store_errors"`
	StoreQuarantines   uint64 `json:"store_quarantines"`
	StoreResultEntries int    `json:"store_result_entries"`
	StorePlanEntries   int    `json:"store_plan_entries"`
	StoreBytes         int64  `json:"store_bytes"`
	// On-disk GC (zero-valued unless MaxStoreBytes is set):
	// StoreGCEvictions/StoreGCEvictedBytes count artifacts deleted by
	// the budget enforcer, StoreGCRejected saves refused for lack of
	// room, and StoreAdmissionSkips results not persisted because
	// their modeled recompute cost was below the measured median
	// store-load latency. StoreManifestRecords/StoreManifestCompactions
	// describe the boot manifest journal; StoreBootScanned reports
	// whether the last Open fell back to a full directory scan.
	StoreMaxBytes            int64  `json:"store_max_bytes"`
	StoreGCEvictions         uint64 `json:"store_gc_evictions"`
	StoreGCEvictedBytes      int64  `json:"store_gc_evicted_bytes"`
	StoreGCRejected          uint64 `json:"store_gc_rejected"`
	StoreAdmissionSkips      uint64 `json:"store_admission_skips"`
	StoreManifestRecords     uint64 `json:"store_manifest_records"`
	StoreManifestCompactions uint64 `json:"store_manifest_compactions"`
	StoreBootScanned         bool   `json:"store_boot_scanned"`

	// Batch coalescing.
	Batches      uint64  `json:"batches"`
	BatchedJobs  uint64  `json:"batched_jobs"`
	MeanBatchLen float64 `json:"mean_batch_len"`

	// Distributed-execution communication, summed over completed mgpu
	// executions (zero on other targets).
	MgpuExchanges        uint64 `json:"mgpu_exchanges"`
	MgpuAvoidedExchanges uint64 `json:"mgpu_avoided_exchanges"`
	MgpuBytesSent        int64  `json:"mgpu_bytes_sent"`

	// Per-target end-to-end job latency (submit -> done), keyed by
	// execution target, plus the synthetic "cache", "store", and
	// "expectation" paths. The same instruments feed the
	// qgear_job_duration_seconds Prometheus family.
	Latency map[string]HistogramSnapshot `json:"latency"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}
