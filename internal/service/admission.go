package service

import (
	"bufio"
	"os"
	"strconv"
	"strings"

	"qgear/internal/backend"
)

// Memory admission control: a dense n-qubit statevector is 2^n
// complex128 amplitudes, and rejecting a too-large circuit after the
// allocation has already been attempted means the OOM killer decides
// the server's fate instead of the server. Submit therefore prices
// every circuit before any allocation and refuses, with ErrTooLarge,
// anything whose working set cannot fit the configured budget.

// estimateStateBytes prices the peak resident working set of one
// n-qubit simulation under the server's target: the amplitude vector
// (16 bytes each), the probability readout (8 bytes each), and — on
// the distributed target — the pairwise exchange buffers, which across
// all ranks total one extra amplitude vector.
func (s *Server) estimateStateBytes(n int) int64 {
	if n < 0 {
		return 0
	}
	if n > 57 {
		// 24<<58 overflows int64; anything this wide exceeds every
		// realistic budget anyway.
		return 1<<63 - 1
	}
	b := int64(24) << uint(n)
	if s.cfg.Target == backend.TargetNvidiaMGPU {
		b += int64(16) << uint(n)
	}
	return b
}

// defaultMaxStateBytes derives the default admission budget: half the
// machine's currently available RAM, so one admitted worst-case job
// leaves headroom for the caches, the queue, and a second worker. When
// availability cannot be determined (non-Linux, hardened /proc), a
// conservative 4 GiB applies.
func defaultMaxStateBytes() int64 {
	const fallback = 4 << 30
	if avail := memAvailableBytes("/proc/meminfo"); avail > 0 {
		return avail / 2
	}
	return fallback
}

// memAvailableBytes parses MemAvailable out of a /proc/meminfo-format
// file; 0 when absent or unreadable.
func memAvailableBytes(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || kb <= 0 {
			return 0
		}
		return kb << 10
	}
	return 0
}
