package service

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/kernel"
	"qgear/internal/observable"
	"qgear/internal/qasm"
	"qgear/internal/sampling"
	"qgear/internal/telemetry"
)

// The HTTP JSON API:
//
//	POST /v1/jobs          submit a job; returns the job snapshot
//	GET  /v1/jobs/{id}     poll a job's state (?wait_ms=N long-polls)
//	GET  /v1/results/{id}  fetch a finished job's result
//	GET  /v1/stats         server counters, hit rate, latency histograms
//	GET  /v1/healthz       liveness, version, uptime, queue depth
//	GET  /metrics          Prometheus text exposition
//
// POST /v1/jobs takes a polymorphic envelope discriminated by "kind":
// "simulate" (probabilities/counts), "expectation" (exact ⟨H⟩),
// "sweep" (one parameterized circuit at many points), and "gradient"
// (parameter-shift ∂⟨H⟩/∂θ). Envelopes carrying a "kind" parse
// strictly — unknown fields are rejected — while legacy bodies without
// one are still accepted as bare simulate/expectation submissions and
// answered with a "Deprecation: true" header. Circuits are submitted
// either as OpenQASM 2.0 text ("qasm") or as a structured op list
// ("circuit").
//
// Every error response is the uniform envelope
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": N}}
//
// with machine-readable codes: invalid_request (400/405),
// not_found (404), too_large (413/422), queue_full (429, with
// retry_after_ms and a Retry-After header), unavailable (503), and
// deadline_exceeded (504).

// WireOp is one operation of a structured circuit submission. Gate
// names are the canonical lowercase spellings of internal/gate ("h",
// "cx", "ry", "cr1", "measure", ...).
type WireOp struct {
	Gate   string    `json:"gate"`
	Qubits []int     `json:"qubits,omitempty"`
	Params []float64 `json:"params,omitempty"`
	Clbit  int       `json:"clbit,omitempty"`
}

// WireCircuit is the structured circuit form of the submit payload.
type WireCircuit struct {
	Name   string   `json:"name,omitempty"`
	Qubits int      `json:"qubits"`
	Clbits int      `json:"clbits"`
	Ops    []WireOp `json:"ops"`
}

// SubmitRequest is the POST /v1/jobs payload: a polymorphic envelope
// discriminated by Kind. Exactly one of Circuit and QASM must be set.
//
//   - "simulate" — probabilities, plus sampled counts when Shots > 0;
//   - "expectation" — the exact ⟨H⟩ of Hamiltonian on the final state
//     (no shots);
//   - "sweep" — the circuit is a parameterized skeleton evaluated at
//     every Points entry: per-point ⟨H⟩ with a Hamiltonian (Shots must
//     be 0), per-point histograms without one (Shots required);
//   - "gradient" — exact parameter-shift ∂⟨H⟩/∂θ at the circuit's own
//     parameter values (requires Hamiltonian).
//
// Bodies carrying Kind parse strictly (unknown fields are rejected
// with invalid_request). A body without it is the deprecated legacy
// form: parsed leniently as simulate — or expectation when a
// Hamiltonian is present — and answered with "Deprecation: true".
type SubmitRequest struct {
	Kind        string           `json:"kind,omitempty"` // "" | "simulate" | "expectation" | "sweep" | "gradient"
	Circuit     *WireCircuit     `json:"circuit,omitempty"`
	QASM        string           `json:"qasm,omitempty"`
	Shots       int              `json:"shots,omitempty"`
	Seed        uint64           `json:"seed,omitempty"`
	Hamiltonian *WireHamiltonian `json:"hamiltonian,omitempty"`
	// Points is the sweep's parameter matrix: one flat vector per
	// point, each with one value per parameter slot of the circuit in
	// program order. Only valid with kind "sweep".
	Points [][]float64 `json:"points,omitempty"`
	// TimeoutMs bounds this job's lifetime in milliseconds (see
	// SubmitOptions.TimeoutMs); a job that runs out reports 504 on its
	// result.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// WirePauli is one factor of a wire-form Pauli term.
type WirePauli struct {
	Q int    `json:"q"`
	P string `json:"p"` // "X" | "Y" | "Z" (case-insensitive)
}

// WireTerm is one weighted Pauli string in wire form.
type WireTerm struct {
	Coef   float64     `json:"coef"`
	Paulis []WirePauli `json:"paulis,omitempty"` // empty = identity term
}

// WireHamiltonian is the JSON Hamiltonian of an expectation job.
type WireHamiltonian struct {
	Qubits int        `json:"qubits"`
	Terms  []WireTerm `json:"terms"`
}

// ToHamiltonian materializes and validates the wire form.
func (w *WireHamiltonian) ToHamiltonian() (*observable.Hamiltonian, error) {
	h := &observable.Hamiltonian{NumQubits: w.Qubits}
	for i, term := range w.Terms {
		ops := make(map[int]observable.Pauli, len(term.Paulis))
		for _, p := range term.Paulis {
			var f observable.Pauli
			switch strings.ToUpper(p.P) {
			case "X":
				f = observable.X
			case "Y":
				f = observable.Y
			case "Z":
				f = observable.Z
			default:
				return nil, fmt.Errorf("hamiltonian term %d: unknown pauli %q", i, p.P)
			}
			if _, dup := ops[p.Q]; dup {
				return nil, fmt.Errorf("hamiltonian term %d: duplicate factor on qubit %d", i, p.Q)
			}
			ops[p.Q] = f
		}
		h.Add(observable.NewTerm(term.Coef, ops))
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// FromHamiltonian renders a Hamiltonian in wire form (clients, bench).
func FromHamiltonian(h *observable.Hamiltonian) *WireHamiltonian {
	w := &WireHamiltonian{Qubits: h.NumQubits, Terms: make([]WireTerm, len(h.Terms))}
	for i, t := range h.Terms {
		qs := make([]int, 0, len(t.Ops))
		for q := range t.Ops {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		wt := WireTerm{Coef: t.Coef}
		for _, q := range qs {
			wt.Paulis = append(wt.Paulis, WirePauli{Q: q, P: t.Ops[q].String()})
		}
		w.Terms[i] = wt
	}
	return w
}

// ToCircuit materializes the wire form into a validated circuit.
func (w *WireCircuit) ToCircuit() (*circuit.Circuit, error) {
	c := &circuit.Circuit{Name: w.Name, NumQubits: w.Qubits, NumClbits: w.Clbits}
	c.Ops = make([]circuit.Op, len(w.Ops))
	for i, op := range w.Ops {
		g, err := gate.Parse(op.Gate)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		c.Ops[i] = circuit.Op{
			Gate:   g,
			Qubits: append([]int(nil), op.Qubits...),
			Params: append([]float64(nil), op.Params...),
			Clbit:  op.Clbit,
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// FromCircuit renders a circuit in wire form (used by clients like the
// qgear-serve bench subcommand).
func FromCircuit(c *circuit.Circuit) *WireCircuit {
	w := &WireCircuit{Name: c.Name, Qubits: c.NumQubits, Clbits: c.NumClbits}
	w.Ops = make([]WireOp, len(c.Ops))
	for i, op := range c.Ops {
		w.Ops[i] = WireOp{
			Gate:   op.Gate.String(),
			Qubits: append([]int(nil), op.Qubits...),
			Params: append([]float64(nil), op.Params...),
			Clbit:  op.Clbit,
		}
	}
	return w
}

// TopProb is one entry of the result's top-probability list.
type TopProb struct {
	Index       uint64  `json:"index"`
	Bitstring   string  `json:"bitstring"`
	Probability float64 `json:"p"`
}

// ResultResponse is the GET /v1/results/{id} payload. The full
// probability vector (2^n entries) is included only when requested
// with ?full=1; by default the top-k states carry the distribution.
type ResultResponse struct {
	ID            string         `json:"id"`
	State         JobState       `json:"state"`
	Cached        bool           `json:"cached"`
	Target        string         `json:"target"`
	DurationMS    float64        `json:"duration_ms"`
	NumQubits     int            `json:"num_qubits"`
	Top           []TopProb      `json:"top,omitempty"`
	Probabilities []float64      `json:"probabilities,omitempty"`
	Counts        map[string]int `json:"counts,omitempty"`
	GateCount     int            `json:"gate_count"`
	FusedOps      int            `json:"fused_ops"`
	// ExpValue/ExpTerms are set on expectation jobs: the exact ⟨H⟩ and
	// the number of Pauli terms evaluated (no probabilities, no counts).
	ExpValue *float64 `json:"expval,omitempty"`
	ExpTerms int      `json:"exp_terms,omitempty"`
	// TileBits and PlanStats describe the compiled execution plan the
	// run used (absent on the per-gate path).
	TileBits  int               `json:"tile_bits,omitempty"`
	PlanStats *kernel.PlanStats `json:"plan_stats,omitempty"`
	// Trace is the per-stage timing breakdown of how this result was
	// produced. Results served from the cache or a single-flight join
	// carry the original execution's trace (Cached marks that case), so
	// the span sum can exceed the serving job's own wall time.
	Trace *telemetry.Trace `json:"trace,omitempty"`
	// Sweep artifacts (kind "sweep"): one entry per parameter point —
	// exact ⟨H⟩ values for Hamiltonian sweeps, bitstring histograms for
	// sampling sweeps. SweepPoints always carries the full point count,
	// even when the payload lists fewer entries (see the truncation
	// rules at truncationLimit). Rebinds versus SweepCompiles reports
	// how points were produced: rebinds of one compiled plan, or
	// per-point compiles under a value-dependent configuration.
	SweepPoints   int              `json:"sweep_points,omitempty"`
	SweepValues   []float64        `json:"sweep_values,omitempty"`
	SweepCounts   []map[string]int `json:"sweep_counts,omitempty"`
	Rebinds       int              `json:"rebinds,omitempty"`
	SweepCompiles int              `json:"sweep_compiles,omitempty"`
	// Gradient is the parameter-shift ∂⟨H⟩/∂θ vector of a kind
	// "gradient" job (ExpValue carries ⟨H⟩ at the base point).
	Gradient []float64 `json:"gradient,omitempty"`
	// Truncated marks a payload whose sweep or gradient entries were
	// elided by the default top-k rule; ?full=1 returns everything.
	Truncated bool `json:"truncated,omitempty"`
}

// HealthResponse is the GET /v1/healthz payload: enough to tell a
// probe not just that the process is up, but which build it is and how
// loaded it is.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Workers       int     `json:"workers"`
}

// Handler returns the HTTP API bound to this server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	mux.HandleFunc("/v1/results/", s.handleResult)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/store", s.handleStore)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.reg.Handler())
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueSize,
		Workers:       s.cfg.WorkerPool,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Machine-readable error codes of the uniform error envelope. Clients
// branch on these, never on message text or ad-hoc body shapes.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeNotFound         = "not_found"
	CodeTooLarge         = "too_large"
	CodeQueueFull        = "queue_full"
	CodeUnavailable      = "unavailable"
	CodeDeadlineExceeded = "deadline_exceeded"
)

// APIError is the machine-readable error body of every non-2xx
// response: a stable code to branch on, a human message, and — for
// queue_full — the retry hint in milliseconds (also sent as a
// Retry-After header).
type APIError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int    `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the uniform error envelope: {"error": {...}}.
type ErrorResponse struct {
	Error APIError `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	e := APIError{Code: code, Message: err.Error()}
	if code == CodeQueueFull {
		e.RetryAfterMs = retryAfterMs
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, ErrorResponse{Error: e})
}

// maxSubmitBytes bounds one submission body (a few hundred thousand
// ops); oversized payloads fail fast instead of exhausting memory.
const maxSubmitBytes = 16 << 20

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeInvalidRequest, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxSubmitBytes))
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	// Version discrimination: a body carrying "kind" is the polymorphic
	// envelope and parses strictly — a misspelled field fails loudly
	// instead of silently doing something else. A body without it is
	// the legacy bare form (simulate, or expectation via the
	// hamiltonian field), still parsed leniently but flagged with a
	// Deprecation header so clients can find themselves in logs.
	var probe struct {
		Kind *string `json:"kind"`
	}
	legacy := json.Unmarshal(body, &probe) == nil && probe.Kind == nil
	if legacy {
		w.Header().Set("Deprecation", "true")
	}
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	if !legacy {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var c *circuit.Circuit
	switch {
	case req.Circuit != nil && req.QASM != "":
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("set exactly one of circuit and qasm"))
		return
	case req.Circuit != nil:
		c, err = req.Circuit.ToCircuit()
	case req.QASM != "":
		c, err = qasm.Parse(req.QASM)
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("missing circuit"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	opts := SubmitOptions{Shots: req.Shots, Seed: req.Seed, TimeoutMs: req.TimeoutMs}
	switch req.Kind {
	case "", "simulate":
		if req.Kind == "simulate" && req.Hamiltonian != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("kind simulate does not take a hamiltonian"))
			return
		}
		if len(req.Points) > 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New(`sweep points require kind "sweep"`))
			return
		}
	case "expectation":
		if req.Hamiltonian == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("kind expectation requires a hamiltonian"))
			return
		}
		if len(req.Points) > 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New(`sweep points require kind "sweep"`))
			return
		}
	case "sweep":
		if len(req.Points) == 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("kind sweep requires points"))
			return
		}
		opts.SweepPoints = req.Points
	case "gradient":
		if req.Hamiltonian == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("kind gradient requires a hamiltonian"))
			return
		}
		if len(req.Points) > 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("kind gradient derives its own sweep; points are not accepted"))
			return
		}
		opts.Gradient = true
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("unknown job kind %q", req.Kind))
		return
	}
	if req.Hamiltonian != nil {
		h, herr := req.Hamiltonian.ToHamiltonian()
		if herr != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, herr)
			return
		}
		opts.Hamiltonian = h
	}
	info, err := s.Submit(c, opts)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Shed load with a hint: the queue drains at batch granularity,
		// so a short fixed horizon beats an exponential guess. Clients
		// (qgear-bench load, the serve warm-start pusher) honor this.
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err)
	case errors.Is(err, ErrTooLarge):
		writeError(w, http.StatusUnprocessableEntity, CodeTooLarge, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, info)
	}
}

// retryAfterSeconds is the Retry-After hint on 429 responses (the
// header form; retryAfterMs is the same hint inside the error body).
// The queue turns over in well under a second on every supported
// target, but Retry-After has whole-second granularity; 1 is the
// tightest honest hint.
const retryAfterSeconds = "1"

// retryAfterMs mirrors retryAfterSeconds in the queue_full error body.
const retryAfterMs = 1000

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeInvalidRequest, errors.New("GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	var info JobInfo
	var err error
	if wv := r.URL.Query().Get("wait_ms"); wv != "" {
		// Long poll: hold the request until the job finishes or the
		// budget elapses, then return the current snapshot either way.
		// Budgets are clamped to the server's MaxWaitMs, never rejected,
		// so clients can ask for "as long as you allow".
		n, perr := strconv.Atoi(wv)
		if perr != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad wait_ms %q", wv))
			return
		}
		if n > s.cfg.MaxWaitMs {
			n = s.cfg.MaxWaitMs
		}
		info, err = s.WaitFor(id, time.Duration(n)*time.Millisecond)
	} else {
		info, err = s.Job(id)
	}
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Artifact truncation — the one place the rules live, applied
// uniformly to every artifact shape a result can carry:
//
//   - probability vectors render as the top-k basis states by
//     probability (descending; k defaults to 16, ?top=N raises it to
//     at most 4096);
//   - sweep artifacts (per-point expectation values or histograms) and
//     gradient vectors render their first k entries under the same k;
//     sweep_points always reports the full point count and "truncated"
//     marks an elided payload;
//   - ?full=1 disables truncation entirely: the whole 2^n probability
//     vector, every sweep point, every gradient entry.
func truncationLimit(q url.Values) (k int, full bool) {
	if q.Get("full") == "1" {
		return 0, true
	}
	k = 16
	if kv := q.Get("top"); kv != "" {
		if n, err := strconv.Atoi(kv); err == nil && n > 0 && n <= 4096 {
			k = n
		}
	}
	return k, false
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeInvalidRequest, errors.New("GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/results/")
	// One consistent read: snapshot state and result presence agree.
	info, res, err := s.Lookup(id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, CodeNotFound, err)
		return
	}
	if errors.Is(err, ErrNotDone) {
		writeJSON(w, http.StatusAccepted, info)
		return
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		// The job ran out of budget (in queue or mid-execution).
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, err)
		return
	}
	if err != nil {
		// Failed job: surface the simulation error with the snapshot.
		writeJSON(w, http.StatusOK, info)
		return
	}
	k, full := truncationLimit(r.URL.Query())
	writeJSON(w, http.StatusOK, buildResultResponse(info, res, k, full))
}

func numQubits(res *backend.Result) int {
	if res.NumQubits > 0 {
		return res.NumQubits
	}
	n := 0
	for 1<<uint(n) < len(res.Probabilities) {
		n++
	}
	return n
}

// buildResultResponse renders a finished result under the truncation
// rules documented at truncationLimit.
func buildResultResponse(info JobInfo, res *backend.Result, k int, full bool) ResultResponse {
	resp := ResultResponse{
		ID:            info.ID,
		State:         info.State,
		Cached:        info.Cached,
		Target:        string(res.Target),
		DurationMS:    float64(res.Duration.Microseconds()) / 1e3,
		NumQubits:     numQubits(res),
		GateCount:     res.KernelStats.SourceOps,
		FusedOps:      res.KernelStats.EmittedOps,
		ExpValue:      res.ExpValue,
		ExpTerms:      res.ExpTerms,
		TileBits:      res.TileBits,
		PlanStats:     res.PlanStats,
		Trace:         res.Trace,
		SweepPoints:   res.SweepPoints,
		Rebinds:       res.Rebinds,
		SweepCompiles: res.SweepCompiles,
	}
	if len(res.Counts) > 0 {
		resp.Counts = make(map[string]int, len(res.Counts))
		for idx, n := range res.Counts {
			resp.Counts[sampling.Bitstring(idx, resp.NumQubits)] = n
		}
	}
	if full {
		resp.Probabilities = res.Probabilities
	} else if len(res.Probabilities) > 0 {
		resp.Top = topProbs(res.Probabilities, k, resp.NumQubits)
	}
	sv, grad, sc := res.SweepValues, res.Gradient, res.SweepCounts
	if !full {
		if len(sv) > k {
			sv, resp.Truncated = sv[:k], true
		}
		if len(grad) > k {
			grad, resp.Truncated = grad[:k], true
		}
		if len(sc) > k {
			sc, resp.Truncated = sc[:k], true
		}
	}
	resp.SweepValues = sv
	resp.Gradient = grad
	if len(sc) > 0 {
		resp.SweepCounts = make([]map[string]int, len(sc))
		for i, cts := range sc {
			m := make(map[string]int, len(cts))
			for idx, n := range cts {
				m[sampling.Bitstring(idx, resp.NumQubits)] = n
			}
			resp.SweepCounts[i] = m
		}
	}
	return resp
}

// topHeap is a bounded min-heap on (probability, index): the root is
// the current weakest of the kept top-k entries. "Worse" means lower
// probability, ties broken by larger index, so the surviving set (and
// hence the sorted output) matches a full descending sort.
type topHeap []TopProb

func (h topHeap) Len() int { return len(h) }
func (h topHeap) Less(a, b int) bool {
	if h[a].Probability != h[b].Probability {
		return h[a].Probability < h[b].Probability
	}
	return h[a].Index > h[b].Index
}
func (h topHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *topHeap) Push(x any)   { *h = append(*h, x.(TopProb)) }
func (h *topHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h topHeap) worseThan(p float64, i uint64) bool {
	if h[0].Probability != p {
		return h[0].Probability < p
	}
	return h[0].Index > i
}

// topProbs returns the k highest-probability basis states in
// descending order (ties broken by index). One O(n log k) pass — no
// index-slice allocation, which matters for 2^28-amplitude results.
func topProbs(probs []float64, k int, nq int) []TopProb {
	h := make(topHeap, 0, k)
	for i, p := range probs {
		if p == 0 {
			continue
		}
		switch {
		case len(h) < k:
			heap.Push(&h, TopProb{Index: uint64(i), Probability: p})
		case h.worseThan(p, uint64(i)):
			h[0] = TopProb{Index: uint64(i), Probability: p}
			heap.Fix(&h, 0)
		}
	}
	out := make([]TopProb, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(TopProb)
	}
	for i := range out {
		out[i].Bitstring = sampling.Bitstring(out[i].Index, nq)
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeInvalidRequest, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// StoreResponse is the GET /v1/store payload: what the persistent
// artifact store holds on disk.
type StoreResponse struct {
	Enabled       bool   `json:"enabled"`
	Dir           string `json:"dir,omitempty"`
	ResultEntries int    `json:"result_entries"`
	PlanEntries   int    `json:"plan_entries"`
	Bytes         int64  `json:"bytes"`
	// MaxBytes is the on-disk budget (0 = unbounded); the GC fields
	// report its enforcement and ManifestRecords/BootScanned how the
	// index was built at the last open.
	MaxBytes            int64  `json:"max_bytes"`
	GCEvictions         uint64 `json:"gc_evictions"`
	GCEvictedBytes      int64  `json:"gc_evicted_bytes"`
	GCRejected          uint64 `json:"gc_rejected"`
	ManifestRecords     uint64 `json:"manifest_records"`
	ManifestCompactions uint64 `json:"manifest_compactions"`
	BootScanned         bool   `json:"boot_scanned"`
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeInvalidRequest, errors.New("GET required"))
		return
	}
	resp := StoreResponse{}
	if s.store != nil {
		ss := s.store.Stats()
		resp = StoreResponse{
			Enabled:             true,
			Dir:                 ss.Dir,
			ResultEntries:       ss.ResultEntries,
			PlanEntries:         ss.PlanEntries,
			Bytes:               ss.Bytes,
			MaxBytes:            ss.MaxBytes,
			GCEvictions:         ss.GCEvictions,
			GCEvictedBytes:      ss.GCEvictedBytes,
			GCRejected:          ss.GCRejected,
			ManifestRecords:     ss.ManifestRecords,
			ManifestCompactions: ss.ManifestCompactions,
			BootScanned:         ss.BootScanned,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
