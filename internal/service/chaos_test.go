package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qgear/internal/circuit"
	"qgear/internal/faultfs"
)

// The chaos suite (everything matching -run 'TestChaos') is the
// robustness harness behind `make ci-chaos`: seeded fault injection in
// the store, injected panics and stalls in the execute path, and tight
// deadlines — asserting the server's survival invariants: no worker
// death, no hung Wait, no torn artifact ever served, and fallbacks
// bit-identical to a clean run.

// chaosWait waits for a job with a hard timeout: a hang here is
// exactly the failure mode the chaos suite exists to rule out.
func chaosWait(t *testing.T, s *Server, id string) JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("job %s hung: %v", id, err)
	}
	return info
}

// TestChaosPanicIsolation injects a panic into the execute path and
// asserts the blast radius: the panicking job and every single-flight
// member on its key fail with the panic message, the worker survives,
// and a later resubmission of the same circuit re-executes cleanly
// with bit-identical output.
func TestChaosPanicIsolation(t *testing.T) {
	var armed atomic.Bool
	cfg := Config{WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	cfg.ExecHook = func() {
		if armed.Load() {
			panic("chaos: injected execution panic")
		}
	}
	s := newTestServer(t, cfg)
	c := testCircuit(t, 8, 10, 42)

	// A wave of identical submissions rides one flight into the panic.
	armed.Store(true)
	const members = 6
	var wg sync.WaitGroup
	ids := make([]string, members)
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := s.Submit(c, SubmitOptions{Shots: 100, Seed: 9})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = info.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		info := chaosWait(t, s, id)
		if info.State != StateFailed {
			t.Fatalf("job %s: state %s, want failed", id, info.State)
		}
		if _, err := s.Result(id); !errors.Is(err, ErrPanic) {
			t.Fatalf("job %s error %v, want ErrPanic", id, err)
		}
	}
	if st := s.Stats(); st.PanicsRecovered == 0 {
		t.Fatal("no panics counted as recovered")
	}

	// The worker survived: an unrelated circuit executes.
	armed.Store(false)
	other := testCircuit(t, 8, 10, 43)
	if _, _, err := s.Run(context.Background(), other, SubmitOptions{Shots: 50, Seed: 1}); err != nil {
		t.Fatalf("server did not keep serving after panic: %v", err)
	}

	// The failed key was not poisoned: resubmitting re-executes, and
	// the result is bit-identical to a clean server's.
	res, info, err := s.Run(context.Background(), c, SubmitOptions{Shots: 100, Seed: 9})
	if err != nil {
		t.Fatalf("resubmission after panic: %v", err)
	}
	if info.State != StateDone {
		t.Fatalf("resubmission state %s", info.State)
	}
	clean := newTestServer(t, Config{WorkerPool: 1, MaxBatch: 1, TileBits: 4})
	want, _, err := clean.Run(context.Background(), c, SubmitOptions{Shots: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Probabilities, want.Probabilities) {
		t.Fatal("post-panic re-execution diverged from clean run")
	}
	if !reflect.DeepEqual(res.Counts, want.Counts) {
		t.Fatal("post-panic shot counts diverged from clean run")
	}
}

// TestChaosDeadlineRunning stalls the execute path past a per-job
// deadline and asserts the job stops cooperatively: it fails with
// ErrDeadlineExceeded, the running-stage cancellation counter moves,
// and the worker goes on to serve the next job.
func TestChaosDeadlineRunning(t *testing.T) {
	var stall atomic.Bool
	cfg := Config{WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	cfg.ExecHook = func() {
		if stall.Load() {
			time.Sleep(80 * time.Millisecond)
		}
	}
	s := newTestServer(t, cfg)
	c := testCircuit(t, 8, 10, 7)

	stall.Store(true)
	info, err := s.Submit(c, SubmitOptions{Shots: 100, Seed: 1, TimeoutMs: 10})
	if err != nil {
		t.Fatal(err)
	}
	fin := chaosWait(t, s, info.ID)
	if fin.State != StateFailed {
		t.Fatalf("state %s, want failed", fin.State)
	}
	if _, err := s.Result(info.ID); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("error %v, want ErrDeadlineExceeded", err)
	}
	st := s.Stats()
	if st.CancelledRunning == 0 {
		t.Fatal("running-stage cancellation not counted")
	}

	// The budget-free resubmission completes.
	stall.Store(false)
	if _, _, err := s.Run(context.Background(), c, SubmitOptions{Shots: 100, Seed: 1}); err != nil {
		t.Fatalf("post-deadline resubmission: %v", err)
	}
}

// TestChaosDeadlineQueueExpiry parks a short-deadline job behind a
// slow one: it must be dropped at dequeue — counted under the queue
// stage, never executed — and still resolve its waiters.
func TestChaosDeadlineQueueExpiry(t *testing.T) {
	var stall atomic.Bool
	cfg := Config{WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	cfg.ExecHook = func() {
		if stall.Load() {
			time.Sleep(80 * time.Millisecond)
		}
	}
	s := newTestServer(t, cfg)

	stall.Store(true)
	blocker, err := s.Submit(testCircuit(t, 8, 10, 100), SubmitOptions{Shots: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Queued behind the stalled blocker with a 1ms budget: expired long
	// before the worker reaches it.
	doomed, err := s.Submit(testCircuit(t, 8, 10, 101), SubmitOptions{Shots: 50, Seed: 1, TimeoutMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	stalledDone := chaosWait(t, s, doomed.ID)
	if stalledDone.State != StateFailed {
		t.Fatalf("expired job state %s, want failed", stalledDone.State)
	}
	if _, err := s.Result(doomed.ID); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired job error %v, want ErrDeadlineExceeded", err)
	}
	chaosWait(t, s, blocker.ID)
	st := s.Stats()
	if st.CancelledQueue == 0 {
		t.Fatal("queue-stage cancellation not counted")
	}
	if st.Executed != 1 {
		t.Fatalf("executed %d, want 1 (the expired job must never run)", st.Executed)
	}
}

// TestChaosAdmissionTooLarge prices an over-budget circuit at Submit:
// rejected synchronously with ErrTooLarge, counted by reason, and the
// queue untouched.
func TestChaosAdmissionTooLarge(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 1, MaxStateBytes: 1 << 20, TileBits: 4})
	big := circuit.GHZ(20, false) // 24 MiB working set against a 1 MiB budget
	if _, err := s.Submit(big, SubmitOptions{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error %v, want ErrTooLarge", err)
	}
	st := s.Stats()
	if st.RejectedTooLarge != 1 {
		t.Fatalf("rejected_too_large %d, want 1", st.RejectedTooLarge)
	}
	if st.Submitted != 0 || st.QueueDepth != 0 {
		t.Fatalf("rejected submission leaked into the pipeline: %+v", st)
	}
	// Within budget still flows.
	if _, _, err := s.Run(context.Background(), circuit.GHZ(8, false), SubmitOptions{Shots: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosHTTPStatusCodes pins the failure-mode status codes of the
// HTTP surface: 422 for over-budget, 504 for deadline-exceeded
// results, and 429 with a Retry-After hint when the queue sheds.
func TestChaosHTTPStatusCodes(t *testing.T) {
	var stall atomic.Bool
	cfg := Config{WorkerPool: 1, MaxBatch: 1, QueueSize: 1, MaxStateBytes: 1 << 20, TileBits: 4}
	cfg.ExecHook = func() {
		if stall.Load() {
			time.Sleep(60 * time.Millisecond)
		}
	}
	s, ts := newHTTPServer(t, cfg)

	// 422: priced out at admission.
	_, code := postJob(t, ts.URL, SubmitRequest{Circuit: FromCircuit(circuit.GHZ(20, false))})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget submission returned %d, want 422", code)
	}

	// 504: deadline blown mid-run.
	stall.Store(true)
	info, code := postJob(t, ts.URL, SubmitRequest{
		Circuit: FromCircuit(testCircuit(t, 8, 10, 5)), Shots: 50, TimeoutMs: 10,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submission returned %d", code)
	}
	fin := pollDone(t, ts.URL, info.ID)
	if fin.State != StateFailed {
		t.Fatalf("state %s, want failed", fin.State)
	}
	resp, err := http.Get(ts.URL + "/v1/results/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-exceeded result returned %d, want 504", resp.StatusCode)
	}

	// 429 + Retry-After: flood a 1-slot queue while the worker stalls.
	var saw429 bool
	for i := 0; i < 64 && !saw429; i++ {
		req := SubmitRequest{Circuit: FromCircuit(testCircuit(t, 8, 10, uint64(200+i))), Shots: 10}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if ra := resp.Header.Get("Retry-After"); ra != retryAfterSeconds {
				t.Fatalf("429 Retry-After = %q, want %q", ra, retryAfterSeconds)
			}
		}
		resp.Body.Close()
	}
	stall.Store(false)
	if !saw429 {
		t.Fatal("queue never shed under flood")
	}

	// The server is still healthy after all of it.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after chaos", hresp.StatusCode)
	}
	_ = s
}

// TestChaosStoreFaultsUnderLoad drives concurrent distinct submissions
// over a store whose filesystem injects seeded errors, short writes,
// and latency. Every job must still complete with results identical to
// a fault-free server's, and the injector must actually have fired.
func TestChaosStoreFaultsUnderLoad(t *testing.T) {
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{
		Seed: 0xC0FFEE,
		// No OpMeta faults: a MkdirAll/ReadDir fault at open time fails
		// server construction by design — this test targets the serving
		// path, where read/write faults must never surface to a client.
		PerOp: map[faultfs.Op]faultfs.Rates{
			faultfs.OpWrite: {ErrPerMille: 300, ShortPerMille: 300, Latency: time.Millisecond},
			faultfs.OpRead:  {ErrPerMille: 300, CorruptPerMille: 300},
		},
	})
	// A result cache this small evicts almost every entry, so wave one
	// spills to the store (write faults) and wave two's cache misses go
	// through store loads (read faults) before falling back.
	cfg := Config{
		StoreDir: t.TempDir(), StoreFS: inj, MaxCacheBytes: 8 << 10,
		WorkerPool: 2, MaxBatch: 2, TileBits: 4,
	}
	s := newTestServer(t, cfg)
	clean := newTestServer(t, Config{WorkerPool: 2, MaxBatch: 2, TileBits: 4})

	circs := storeTestCircuits(12, 8)
	wave := func(label string) {
		var wg sync.WaitGroup
		for i, c := range circs {
			wg.Add(1)
			go func(i int, c *circuit.Circuit) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				res, _, err := s.Run(ctx, c, SubmitOptions{Shots: 200, Seed: uint64(i)})
				if err != nil {
					t.Errorf("%s circuit %d under store faults: %v", label, i, err)
					return
				}
				want, _, err := clean.Run(ctx, c, SubmitOptions{Shots: 200, Seed: uint64(i)})
				if err != nil {
					t.Errorf("%s circuit %d clean reference: %v", label, i, err)
					return
				}
				if !reflect.DeepEqual(res.Probabilities, want.Probabilities) {
					t.Errorf("%s circuit %d probabilities diverged under store faults", label, i)
				}
				if !reflect.DeepEqual(res.Counts, want.Counts) {
					t.Errorf("%s circuit %d counts diverged under store faults", label, i)
				}
			}(i, c)
		}
		wg.Wait()
	}
	wave("fill")
	// Let the spiller drain the eviction backlog so wave two's misses
	// actually reach disk (and its injected read faults).
	time.Sleep(50 * time.Millisecond)
	wave("reload")
	if t.Failed() {
		t.FailNow()
	}
	if inj.FaultCount() == 0 {
		t.Fatal("fault injector never fired — the test exercised nothing")
	}
	st := s.Stats()
	t.Logf("faults=%d store: hits=%d misses=%d spills=%d errors=%d quarantines=%d",
		inj.FaultCount(), st.StoreHits, st.StoreMisses, st.StoreSpills, st.StoreErrors, st.StoreQuarantines)
}

// TestChaosCorruptStoreQuarantine warm-restarts over a store whose
// every read comes back bit-flipped: integrity checks must quarantine
// the artifacts and fall back to re-simulation, bit-identical to the
// run that produced them.
func TestChaosCorruptStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	base := Config{StoreDir: dir, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	circs := storeTestCircuits(4, 8)
	ctx := context.Background()

	s1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]struct {
		probs  []float64
		counts any
	}, len(circs))
	for i, c := range circs {
		res, _, err := s1.Run(ctx, c, SubmitOptions{Shots: 100, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		refs[i].probs = res.Probabilities
		refs[i].counts = res.Counts
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	corrupt := faultfs.New(faultfs.OS{}, faultfs.Config{
		Seed:  1,
		PerOp: map[faultfs.Op]faultfs.Rates{faultfs.OpRead: {CorruptPerMille: 1000}},
	})
	cfg2 := base
	cfg2.StoreFS = corrupt
	s2 := newTestServer(t, cfg2)
	for i, c := range circs {
		res, _, err := s2.Run(ctx, c, SubmitOptions{Shots: 100, Seed: uint64(i)})
		if err != nil {
			t.Fatalf("circuit %d did not fall back past corruption: %v", i, err)
		}
		if !reflect.DeepEqual(res.Probabilities, refs[i].probs) {
			t.Fatalf("circuit %d fallback probabilities diverged", i)
		}
		if !reflect.DeepEqual(res.Counts, refs[i].counts) {
			t.Fatalf("circuit %d fallback counts diverged", i)
		}
	}
	st := s2.Stats()
	if st.StoreHits != 0 {
		t.Fatalf("%d store hits from corrupt artifacts", st.StoreHits)
	}
	if st.StoreErrors == 0 {
		t.Fatal("corruption was not counted as store errors")
	}
	if st.Executed != uint64(len(circs)) {
		t.Fatalf("executed %d, want %d fallback re-simulations", st.Executed, len(circs))
	}
}
