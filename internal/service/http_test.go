package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qgear/internal/circuit"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, base string, req SubmitRequest) (JobInfo, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info JobInfo
	_ = json.NewDecoder(resp.Body).Decode(&info)
	return info, resp.StatusCode
}

func pollDone(t *testing.T, base, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.State == StateDone || info.State == StateFailed {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobInfo{}
}

func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHTTPServeGHZ16Waves is the serving-layer acceptance test: 100
// concurrent GHZ-16 submissions through the HTTP API, then a second
// identical wave that must be served from the content-addressed cache
// with a hit rate above 50% as reported by /v1/stats.
func TestHTTPServeGHZ16Waves(t *testing.T) {
	_, ts := newHTTPServer(t, Config{FusionWindow: 2})
	const clients = 100
	circs := make([]*WireCircuit, clients)
	for i := range circs {
		c := circuit.GHZ(16, false)
		c.RZ(1e-6*float64(i+1), 0) // distinct content address per client
		circs[i] = FromCircuit(c)
	}
	runWave := func() {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				info, code := postJob(t, ts.URL, SubmitRequest{Circuit: circs[i]})
				if code != http.StatusAccepted {
					errs <- fmt.Errorf("client %d: HTTP %d", i, code)
					return
				}
				if fin := pollDone(t, ts.URL, info.ID); fin.State != StateDone {
					errs <- fmt.Errorf("client %d: job %s state %q: %s", i, fin.ID, fin.State, fin.Error)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	runWave()
	wave1 := getStats(t, ts.URL)
	if wave1.Submitted != clients {
		t.Fatalf("wave 1 submitted %d, want %d", wave1.Submitted, clients)
	}

	runWave()
	wave2 := getStats(t, ts.URL)
	dHits := (wave2.CacheHits + wave2.SingleFlightHits) - (wave1.CacheHits + wave1.SingleFlightHits)
	dSub := wave2.Submitted - wave1.Submitted
	if dSub != clients {
		t.Fatalf("wave 2 submitted %d, want %d", dSub, clients)
	}
	rate := float64(dHits) / float64(dSub)
	t.Logf("wave 2: %d/%d served without re-simulation (%.0f%%), lifetime hit rate %.0f%%",
		dHits, dSub, rate*100, wave2.HitRate*100)
	if rate <= 0.5 {
		t.Fatalf("second-wave hit rate %.2f, want > 0.5", rate)
	}
	if wave2.Failed != 0 {
		t.Fatalf("%d jobs failed", wave2.Failed)
	}
}

func TestHTTPResultShapes(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})
	qasm := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	info, code := postJob(t, ts.URL, SubmitRequest{QASM: qasm, Shots: 1000, Seed: 5})
	if code != http.StatusAccepted {
		t.Fatalf("submit HTTP %d", code)
	}
	if fin := pollDone(t, ts.URL, info.ID); fin.State != StateDone {
		t.Fatalf("job: %+v", fin)
	}

	resp, err := http.Get(ts.URL + "/v1/results/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rr ResultResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.NumQubits != 2 || len(rr.Top) != 2 {
		t.Fatalf("result %+v", rr)
	}
	// Bell state: only 00 and 11 appear.
	total := 0
	for bits, n := range rr.Counts {
		if bits != "00" && bits != "11" {
			t.Fatalf("unexpected outcome %q", bits)
		}
		total += n
	}
	if total != 1000 {
		t.Fatalf("counts total %d", total)
	}
	if len(rr.Probabilities) != 0 {
		t.Fatal("full vector returned without ?full=1")
	}

	resp, err = http.Get(ts.URL + "/v1/results/" + info.ID + "?full=1")
	if err != nil {
		t.Fatal(err)
	}
	var full ResultResponse
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(full.Probabilities) != 4 {
		t.Fatalf("full vector has %d entries", len(full.Probabilities))
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both forms", `{"qasm":"x","circuit":{"qubits":1,"ops":[]}}`, http.StatusBadRequest},
		{"bad gate", `{"circuit":{"qubits":1,"clbits":0,"ops":[{"gate":"warp","qubits":[0]}]}}`, http.StatusBadRequest},
		{"bad qubit", `{"circuit":{"qubits":1,"clbits":0,"ops":[{"gate":"h","qubits":[4]}]}}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	for _, path := range []string{"/v1/jobs/j-missing", "/v1/results/j-missing"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}

// TestHTTPResultPending covers the not-finished path: a queued job's
// result endpoint answers 202 with the job snapshot.
func TestHTTPResultPending(t *testing.T) {
	s, ts := newHTTPServer(t, Config{WorkerPool: 1, MaxBatch: 1, QueueSize: 8})
	// A slow job keeps the worker busy so the next job stays queued.
	slow := circuit.GHZ(18, false)
	for i := 0; i < 40; i++ {
		slow.H(0).H(0)
	}
	info1, code := postJob(t, ts.URL, SubmitRequest{Circuit: FromCircuit(slow)})
	if code != http.StatusAccepted {
		t.Fatalf("HTTP %d", code)
	}
	info2, code := postJob(t, ts.URL, SubmitRequest{Circuit: FromCircuit(circuit.GHZ(6, false))})
	if code != http.StatusAccepted {
		t.Fatalf("HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/results/" + info2.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("pending result: HTTP %d", resp.StatusCode)
	}
	pollDone(t, ts.URL, info1.ID)
	pollDone(t, ts.URL, info2.ID)
	_ = s
}
