package service

import (
	"context"
	"math"
	"os"
	"strconv"
	"testing"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/observable"
)

// sweepAnsatz is a small parameterized circuit: RY layer, CX ladder,
// RZ/RX layer — enough structure to exercise tile, global, and
// exchange binding sites on every engine.
func sweepAnsatz(nq int) *circuit.Circuit {
	c := circuit.New(nq, 0)
	for q := 0; q < nq; q++ {
		c.RY(0.1*float64(q+1), q)
	}
	for q := 0; q+1 < nq; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < nq; q++ {
		c.RZ(0.2*float64(q+1), q)
	}
	return c
}

func angleGrid(nParams, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pt := make([]float64, nParams)
		for j := range pt {
			pt[j] = 0.05*float64(i+1) + 0.01*float64(j)
		}
		pts[i] = pt
	}
	return pts
}

// TestServiceSweepAllEngines: the sweep job kind through the full
// service path on all four engines, differenced against individually
// submitted expectation jobs at the same points — values bit-identical.
func TestServiceSweepAllEngines(t *testing.T) {
	const nq, points = 5, 8
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	for _, tc := range []struct {
		target  backend.Target
		devices int
	}{
		{backend.TargetAer, 1},
		{backend.TargetNvidia, 1},
		{backend.TargetNvidiaMQPU, 2},
		{backend.TargetNvidiaMGPU, 2},
	} {
		t.Run(string(tc.target), func(t *testing.T) {
			c := sweepAnsatz(nq)
			pts := angleGrid(c.NumParams(), points)
			sweepSrv := newTestServer(t, Config{Target: tc.target, Devices: tc.devices, Workers: 2, TileBits: 3})
			res, info, err := sweepSrv.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, SweepPoints: pts})
			if err != nil {
				t.Fatal(err)
			}
			if info.State != StateDone {
				t.Fatalf("info = %+v", info)
			}
			if len(res.SweepValues) != points || res.SweepPoints != points {
				t.Fatalf("%d values / %d points recorded for %d submitted", len(res.SweepValues), res.SweepPoints, points)
			}
			// Individual expectation jobs on a separate server (so the
			// sweep server's caches can't serve them).
			indSrv := newTestServer(t, Config{Target: tc.target, Devices: tc.devices, Workers: 2, TileBits: 3})
			for i, pt := range pts {
				bound, err := c.BindParams(pt)
				if err != nil {
					t.Fatal(err)
				}
				ind, _, err := indSrv.Run(context.Background(), bound, SubmitOptions{Hamiltonian: h})
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(res.SweepValues[i]) != math.Float64bits(*ind.ExpValue) {
					t.Fatalf("point %d: sweep %v != individual job %v", i, res.SweepValues[i], *ind.ExpValue)
				}
			}
			st := sweepSrv.Stats()
			if st.SweepJobs != 1 || st.SweepExecuted != 1 || st.SweepPointsRun != points {
				t.Errorf("sweep counters: jobs=%d executed=%d points=%d", st.SweepJobs, st.SweepExecuted, st.SweepPointsRun)
			}
		})
	}
}

// TestServiceSweepCompileOnce is the compile-once acceptance check: an
// N-point TFIM sweep performs exactly one plan compile, and the same N
// points submitted as individual expectation jobs afterwards still
// compile nothing — every one rebinds the structurally-cached plan to
// bit-identical values. N defaults small for test runs;
// QGEAR_SWEEP_ACCEPTANCE_POINTS=1000 scales it up for make ci-sweep.
func TestServiceSweepCompileOnce(t *testing.T) {
	points := 48
	if v := os.Getenv("QGEAR_SWEEP_ACCEPTANCE_POINTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad QGEAR_SWEEP_ACCEPTANCE_POINTS %q", v)
		}
		points = n
	}
	const nq = 5
	c := sweepAnsatz(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	pts := angleGrid(c.NumParams(), points)

	s := newTestServer(t, Config{Target: backend.TargetNvidia, Workers: 2, TileBits: 3})
	res, _, err := s.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, SweepPoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebinds != points || res.SweepCompiles != 0 {
		t.Fatalf("sweep: want %d rebinds / 0 per-point compiles, got %d/%d", points, res.Rebinds, res.SweepCompiles)
	}
	st := s.Stats()
	if st.PlanCacheMisses != 1 {
		t.Fatalf("after the sweep: plan compiles = %d, want exactly 1", st.PlanCacheMisses)
	}

	// The same points as individual expectation jobs: every submission
	// has a distinct exact fingerprint but the same structural one, so
	// the plan cache serves all of them by rebinding — still 1 compile.
	for i, pt := range pts {
		bound, err := c.BindParams(pt)
		if err != nil {
			t.Fatal(err)
		}
		ind, _, err := s.Run(context.Background(), bound, SubmitOptions{Hamiltonian: h})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.SweepValues[i]) != math.Float64bits(*ind.ExpValue) {
			t.Fatalf("point %d: sweep %v != rebound-plan job %v", i, res.SweepValues[i], *ind.ExpValue)
		}
	}
	st = s.Stats()
	if st.PlanCacheMisses != 1 {
		t.Errorf("after %d individual jobs: plan compiles = %d, want still 1", points, st.PlanCacheMisses)
	}
	if st.PlanRebinds < uint64(points) {
		t.Errorf("plan rebinds = %d, want >= %d (one per structural cache hit)", st.PlanRebinds, points)
	}
}

// TestServiceSweepCached: an identical sweep resubmission is a result
// cache hit — no new points run.
func TestServiceSweepCached(t *testing.T) {
	const nq = 4
	c := sweepAnsatz(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	pts := anglesGridOrDie(c, 6)
	s := newTestServer(t, Config{Target: backend.TargetNvidia, Workers: 1, TileBits: 3})
	first, _, err := s.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, SweepPoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	again, info, err := s.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, SweepPoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Fatal("identical sweep resubmission was not served from cache")
	}
	for i := range first.SweepValues {
		if math.Float64bits(first.SweepValues[i]) != math.Float64bits(again.SweepValues[i]) {
			t.Fatalf("cached sweep value %d differs", i)
		}
	}
	if st := s.Stats(); st.SweepPointsRun != uint64(len(pts)) {
		t.Errorf("points run = %d, want %d (cache hit must not re-run)", st.SweepPointsRun, len(pts))
	}
}

func anglesGridOrDie(c *circuit.Circuit, n int) [][]float64 {
	return angleGrid(c.NumParams(), n)
}

// TestServiceGradientJob: the derived gradient job kind end to end,
// differenced against the backend entry point.
func TestServiceGradientJob(t *testing.T) {
	const nq = 4
	c := sweepAnsatz(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	s := newTestServer(t, Config{Target: backend.TargetNvidia, Workers: 1, TileBits: 3})
	res, info, err := s.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("info = %+v", info)
	}
	ref, err := backend.RunGradient(c, h, c.ParamValues(), backend.Config{
		Target: backend.TargetNvidia, Workers: 1, TileBits: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(*res.ExpValue) != math.Float64bits(*ref.ExpValue) {
		t.Fatalf("base value %v != backend %v", *res.ExpValue, *ref.ExpValue)
	}
	if len(res.Gradient) != len(ref.Gradient) {
		t.Fatalf("gradient lengths %d vs %d", len(res.Gradient), len(ref.Gradient))
	}
	for j := range ref.Gradient {
		if math.Float64bits(res.Gradient[j]) != math.Float64bits(ref.Gradient[j]) {
			t.Fatalf("gradient[%d] %v != backend %v", j, res.Gradient[j], ref.Gradient[j])
		}
	}
	if st := s.Stats(); st.GradientJobs != 1 || st.GradientExecuted != 1 {
		t.Errorf("gradient counters: jobs=%d executed=%d", st.GradientJobs, st.GradientExecuted)
	}
}

// TestServiceSweepStoreWarmRestart: a sweep artifact spills to the
// persistent store on shutdown and a fresh server answers the same
// submission from disk, bit-identically, without re-running points —
// for both ⟨H⟩ sweeps and sampled-histogram sweeps.
func TestServiceSweepStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	const nq = 4
	c := sweepAnsatz(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	pts := anglesGridOrDie(c, 5)
	cfg := Config{Target: backend.TargetNvidia, Workers: 1, TileBits: 3, StoreDir: dir, CacheSize: 1}

	s1 := newTestServer(t, cfg)
	expRes, _, err := s1.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, SweepPoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	cntRes, _, err := s1.Run(context.Background(), c, SubmitOptions{SweepPoints: pts, Shots: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gradRes, _, err := s1.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := newTestServer(t, cfg)
	expAgain, info, err := s2.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, SweepPoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Fatal("warm-restarted sweep was re-executed")
	}
	for i := range expRes.SweepValues {
		if math.Float64bits(expRes.SweepValues[i]) != math.Float64bits(expAgain.SweepValues[i]) {
			t.Fatalf("sweep value %d changed across restart", i)
		}
	}
	cntAgain, _, err := s2.Run(context.Background(), c, SubmitOptions{SweepPoints: pts, Shots: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(cntAgain.SweepCounts) != len(cntRes.SweepCounts) {
		t.Fatalf("histogram counts lost across restart: %d vs %d", len(cntAgain.SweepCounts), len(cntRes.SweepCounts))
	}
	for i := range cntRes.SweepCounts {
		if len(cntRes.SweepCounts[i]) != len(cntAgain.SweepCounts[i]) {
			t.Fatalf("point %d: histogram key sets differ across restart", i)
		}
		for k, n := range cntRes.SweepCounts[i] {
			if cntAgain.SweepCounts[i][k] != n {
				t.Fatalf("point %d key %b: %d != %d across restart", i, k, cntAgain.SweepCounts[i][k], n)
			}
		}
	}
	gradAgain, _, err := s2.Run(context.Background(), c, SubmitOptions{Hamiltonian: h, Gradient: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := range gradRes.Gradient {
		if math.Float64bits(gradRes.Gradient[j]) != math.Float64bits(gradAgain.Gradient[j]) {
			t.Fatalf("gradient[%d] changed across restart", j)
		}
	}
	if st := s2.Stats(); st.SweepPointsRun != 0 {
		t.Errorf("restarted server ran %d points; all three jobs should be store hits", st.SweepPointsRun)
	}
}

// TestServiceSweepValidation covers sweep/gradient admission rules.
func TestServiceSweepValidation(t *testing.T) {
	c := sweepAnsatz(3)
	h := observable.TransverseFieldIsing(3, 1.0, 0.7)
	s := newTestServer(t, Config{Target: backend.TargetAer, MaxSweepPoints: 4})
	bad := [][]float64{make([]float64, c.NumParams()+2)}
	if _, err := s.Submit(c, SubmitOptions{Hamiltonian: h, SweepPoints: bad}); err == nil {
		t.Error("wrong-arity sweep point accepted")
	}
	if _, err := s.Submit(c, SubmitOptions{Hamiltonian: h, SweepPoints: anglesGridOrDie(c, 5)}); err == nil {
		t.Error("sweep exceeding MaxSweepPoints accepted")
	}
	if _, err := s.Submit(c, SubmitOptions{SweepPoints: anglesGridOrDie(c, 2)}); err == nil {
		t.Error("sampling sweep without shots accepted")
	}
	if _, err := s.Submit(c, SubmitOptions{Gradient: true}); err == nil {
		t.Error("gradient without hamiltonian accepted")
	}
	free := circuit.GHZ(3, false)
	if _, err := s.Submit(free, SubmitOptions{Hamiltonian: h, Gradient: true}); err == nil {
		t.Error("gradient of a parameter-free circuit accepted")
	}
}
