package service

import (
	"time"

	"qgear/internal/telemetry"
)

// registerMetrics publishes every server counter through the telemetry
// registry. All scalar families are callback instruments reading the
// same fields that back /v1/stats — the two surfaces are one set of
// counters viewed two ways, so they can never disagree. Callbacks
// take s.mu at scrape time; that is safe against the serving path
// because the exposition renderer never holds the registry lock while
// invoking them (see telemetry.Registry.WritePrometheus).
func (s *Server) registerMetrics() {
	r := s.reg
	// locked adapts a counter read into a scrape callback.
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}

	// Job flow.
	r.CounterFunc("qgear_jobs_submitted_total", "Jobs accepted by Submit.", nil,
		locked(func() float64 { return float64(s.submitted) }))
	r.CounterFunc("qgear_jobs_completed_total", "Jobs finished successfully.", nil,
		locked(func() float64 { return float64(s.completed) }))
	r.CounterFunc("qgear_jobs_failed_total", "Jobs finished with an error.", nil,
		locked(func() float64 { return float64(s.failed) }))
	r.CounterFunc("qgear_jobs_executed_total", "Jobs that reached a fresh execution (not served by cache, single-flight, or store).", nil,
		locked(func() float64 { return float64(s.executed) }))
	r.CounterFunc("qgear_expectation_jobs_total", "Expectation-value jobs submitted.", nil,
		locked(func() float64 { return float64(s.expSubmitted) }))
	r.CounterFunc("qgear_expectation_executed_total", "Expectation-value jobs freshly evaluated.", nil,
		locked(func() float64 { return float64(s.expExecuted) }))
	r.CounterFunc("qgear_sweep_jobs_total", "Sweep jobs submitted.", nil,
		locked(func() float64 { return float64(s.sweepSubmitted) }))
	r.CounterFunc("qgear_sweep_executed_total", "Sweep jobs freshly executed.", nil,
		locked(func() float64 { return float64(s.sweepExecuted) }))
	r.CounterFunc("qgear_sweep_points_total", "Sweep points freshly executed (rebind + run).", nil,
		locked(func() float64 { return float64(s.sweepPointsRun) }))
	r.CounterFunc("qgear_gradient_jobs_total", "Parameter-shift gradient jobs submitted.", nil,
		locked(func() float64 { return float64(s.gradSubmitted) }))
	r.CounterFunc("qgear_plan_rebinds_total", "Structural plan-cache hits served by rebinding a cached skeleton.", nil,
		locked(func() float64 { return float64(s.planRebinds) }))
	r.CounterFunc("qgear_singleflight_hits_total", "Submissions attached to an identical in-flight job.", nil,
		locked(func() float64 { return float64(s.sfHits) }))
	r.CounterFunc("qgear_batches_total", "Coalesced batches executed.", nil,
		locked(func() float64 { return float64(s.batches) }))
	r.CounterFunc("qgear_batched_jobs_total", "Jobs executed through coalesced batches.", nil,
		locked(func() float64 { return float64(s.batchedJobs) }))

	// Resilience: panic isolation, admission rejections, cancellation.
	r.CounterFunc("qgear_panics_recovered_total", "Execution panics recovered at the worker boundary (job failed, worker survived).", nil,
		locked(func() float64 { return float64(s.panicsRecovered) }))
	r.CounterFunc("qgear_jobs_rejected_total", "Submissions rejected, labeled by reason.", telemetry.Labels{"reason": "queue_full"},
		locked(func() float64 { return float64(s.rejectedQueueFull) }))
	r.CounterFunc("qgear_jobs_rejected_total", "Submissions rejected, labeled by reason.", telemetry.Labels{"reason": "too_large"},
		locked(func() float64 { return float64(s.rejectedTooLarge) }))
	r.CounterFunc("qgear_jobs_rejected_total", "Submissions rejected, labeled by reason.", telemetry.Labels{"reason": "invalid"},
		locked(func() float64 { return float64(s.rejectedInvalid) }))
	r.CounterFunc("qgear_jobs_cancelled_total", "Jobs failed on their deadline, labeled by where the budget ran out.", telemetry.Labels{"stage": "queue"},
		locked(func() float64 { return float64(s.cancelledQueue) }))
	r.CounterFunc("qgear_jobs_cancelled_total", "Jobs failed on their deadline, labeled by where the budget ran out.", telemetry.Labels{"stage": "running"},
		locked(func() float64 { return float64(s.cancelledRunning) }))

	// Caches, labeled by which cache.
	result := telemetry.Labels{"cache": "result"}
	plan := telemetry.Labels{"cache": "plan"}
	r.CounterFunc("qgear_cache_hits_total", "Cache hits, labeled by cache (result includes spill-lookaside hits).", result,
		locked(func() float64 { return float64(s.cacheHits) }))
	r.CounterFunc("qgear_cache_hits_total", "Cache hits, labeled by cache (result includes spill-lookaside hits).", plan,
		locked(func() float64 { return float64(s.planHits) }))
	r.CounterFunc("qgear_cache_misses_total", "Plan-cache misses (compilations that could not be served from memory).", plan,
		locked(func() float64 { return float64(s.planMisses) }))
	r.CounterFunc("qgear_cache_evictions_total", "Entries evicted, labeled by cache.", result,
		locked(func() float64 { return float64(s.cache.Evictions()) }))
	r.CounterFunc("qgear_cache_evictions_total", "Entries evicted, labeled by cache.", plan,
		locked(func() float64 { return float64(s.plans.Evictions()) }))
	r.CounterFunc("qgear_cache_evicted_bytes_total", "Accounted bytes of evicted entries, labeled by cache.", result,
		locked(func() float64 { return float64(s.cacheEvictedBytes) }))
	r.CounterFunc("qgear_cache_evicted_bytes_total", "Accounted bytes of evicted entries, labeled by cache.", plan,
		locked(func() float64 { return float64(s.planEvictedBytes) }))
	r.GaugeFunc("qgear_cache_entries", "Resident entries, labeled by cache.", result,
		locked(func() float64 { return float64(s.cache.Len()) }))
	r.GaugeFunc("qgear_cache_entries", "Resident entries, labeled by cache.", plan,
		locked(func() float64 { return float64(s.plans.Len()) }))
	r.GaugeFunc("qgear_cache_bytes", "Resident accounted bytes, labeled by cache.", result,
		locked(func() float64 { return float64(s.cache.Bytes()) }))
	r.GaugeFunc("qgear_cache_bytes", "Resident accounted bytes, labeled by cache.", plan,
		locked(func() float64 { return float64(s.plans.Bytes()) }))
	r.GaugeFunc("qgear_cache_max_bytes", "Configured byte bound (0 = unbounded), labeled by cache.", result,
		func() float64 { return float64(s.cfg.MaxCacheBytes) })
	r.GaugeFunc("qgear_cache_max_bytes", "Configured byte bound (0 = unbounded), labeled by cache.", plan,
		func() float64 { return float64(s.cfg.MaxPlanCacheBytes) })

	// Persistent store.
	r.CounterFunc("qgear_store_hits_total", "Persistent-store hits, labeled by artifact kind.", telemetry.Labels{"kind": "result"},
		locked(func() float64 { return float64(s.storeHits) }))
	r.CounterFunc("qgear_store_hits_total", "Persistent-store hits, labeled by artifact kind.", telemetry.Labels{"kind": "plan"},
		locked(func() float64 { return float64(s.planStoreHits) }))
	r.CounterFunc("qgear_store_misses_total", "Result-cache misses the store could not answer either.", nil,
		locked(func() float64 { return float64(s.storeMisses) }))
	r.CounterFunc("qgear_store_spills_total", "Artifacts written to the persistent store.", nil,
		locked(func() float64 { return float64(s.storeSpills) }))
	r.CounterFunc("qgear_store_spill_drops_total", "Eviction spills shed under backlog pressure.", nil,
		locked(func() float64 { return float64(s.storeSpillDrops) }))
	r.CounterFunc("qgear_store_errors_total", "Store loads or writes that failed (I/O or integrity).", nil,
		locked(func() float64 { return float64(s.storeErrors) }))
	r.CounterFunc("qgear_store_quarantines_total", "Provably corrupt store files dropped.", nil,
		locked(func() float64 { return float64(s.storeQuarantines) }))
	r.GaugeFunc("qgear_store_bytes", "Bytes resident in the persistent store.", nil,
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().Bytes)
		})
	r.GaugeFunc("qgear_store_entries", "Persistent-store entries, labeled by artifact kind.", telemetry.Labels{"kind": "result"},
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().ResultEntries)
		})
	r.GaugeFunc("qgear_store_entries", "Persistent-store entries, labeled by artifact kind.", telemetry.Labels{"kind": "plan"},
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().PlanEntries)
		})
	r.GaugeFunc("qgear_store_max_bytes", "Configured on-disk store budget (0 = unbounded).", nil,
		func() float64 { return float64(s.cfg.MaxStoreBytes) })
	r.CounterFunc("qgear_store_gc_total", "Artifacts evicted from disk by the store byte-budget GC.", nil,
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().GCEvictions)
		})
	r.CounterFunc("qgear_store_gc_bytes_total", "Bytes reclaimed from disk by the store byte-budget GC.", nil,
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().GCEvictedBytes)
		})
	r.CounterFunc("qgear_store_gc_rejected_total", "Saves refused because the artifact could not fit under the store budget.", nil,
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().GCRejected)
		})
	r.CounterFunc("qgear_store_admission_skips_total", "Results not persisted because recomputing them is cheaper than a median store load.", nil,
		locked(func() float64 { return float64(s.storeAdmissionSkips) }))
	// Store-load latency: the measured half of the admission rule.
	s.storeLoad = r.Histogram("qgear_store_load_seconds",
		"Latency of successful result loads from the persistent store.", nil)

	// Distributed-execution communication (nvidia-mgpu).
	r.CounterFunc("qgear_mgpu_exchanges_total", "Pairwise buffer exchanges across completed distributed executions.", nil,
		locked(func() float64 { return float64(s.mgpuExchanges) }))
	r.CounterFunc("qgear_mgpu_avoided_exchanges_total", "Exchanges elided by the avoided-exchange optimization.", nil,
		locked(func() float64 { return float64(s.mgpuAvoided) }))
	r.CounterFunc("qgear_mgpu_bytes_sent_total", "Bytes moved by distributed buffer exchanges.", nil,
		locked(func() float64 { return float64(s.mgpuBytesSent) }))

	// Queue and worker pool.
	r.GaugeFunc("qgear_queue_depth", "Jobs waiting in the bounded queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("qgear_queue_capacity", "Configured queue bound.", nil,
		func() float64 { return float64(s.cfg.QueueSize) })
	r.GaugeFunc("qgear_workers", "Configured worker-pool size.", nil,
		func() float64 { return float64(s.cfg.WorkerPool) })
	r.GaugeFunc("qgear_workers_busy", "Workers currently executing a batch.", nil,
		func() float64 { return float64(s.busy.Load()) })
	r.GaugeFunc("qgear_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("qgear_build_info", "Serving-layer version as a label; value is always 1.", telemetry.Labels{"version": Version},
		func() float64 { return 1 })

	// Stage-latency histograms, resolved once so the per-span hot path
	// (observeStages runs for every span of every job) indexes a
	// read-only map instead of building a label map and taking the
	// registry lock. Pre-registering also makes every stage series
	// visible on /metrics from the first scrape.
	s.stageLatency = make(map[string]*telemetry.Histogram)
	for _, stage := range telemetry.Stages() {
		s.stageLatency[stage] = r.Histogram("qgear_stage_duration_seconds",
			"Pipeline stage latency, labeled by stage.",
			telemetry.Labels{"stage": stage})
	}

	r.RegisterRuntime()
}
