package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"qgear/internal/backend"
	"qgear/internal/observable"
)

// The PR-9 API surface: polymorphic job kinds, the uniform error
// envelope, legacy-body deprecation, and the wait_ms long-poll.

func wireAnsatz(nq int) *WireCircuit {
	return FromCircuit(sweepAnsatz(nq))
}

func decodeError(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body did not parse as the error envelope: %v", err)
	}
	return e
}

// TestHTTPErrorEnvelopeGolden: every failure mode answers with the
// exact {"error":{"code","message",...}} JSON shape and its documented
// machine-readable code.
func TestHTTPErrorEnvelopeGolden(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})

	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"bad json", "POST", "/v1/jobs", `{`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown kind", "POST", "/v1/jobs", `{"kind":"warp"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown field", "POST", "/v1/jobs", `{"kind":"simulate","bogus":1}`, http.StatusBadRequest, CodeInvalidRequest},
		{"missing circuit", "POST", "/v1/jobs", `{"kind":"simulate"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"sweep without points", "POST", "/v1/jobs", `{"kind":"sweep","qasm":"OPENQASM 2.0;\nqreg q[1];\nrx(0.5) q[0];\n"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"job not found", "GET", "/v1/jobs/j-missing", "", http.StatusNotFound, CodeNotFound},
		{"result not found", "GET", "/v1/results/j-missing", "", http.StatusNotFound, CodeNotFound},
		{"bad wait_ms", "GET", "/v1/jobs/j-x?wait_ms=banana", "", http.StatusBadRequest, CodeInvalidRequest},
		{"method", "GET", "/v1/jobs", "", http.StatusMethodNotAllowed, CodeInvalidRequest},
	} {
		var resp *http.Response
		var err error
		if tc.method == "POST" {
			resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		} else {
			resp, err = http.Get(ts.URL + tc.path)
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		e := decodeError(t, resp)
		resp.Body.Close()
		if e.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Error.Code, tc.code)
		}
		if e.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		if tc.code != CodeQueueFull && e.Error.RetryAfterMs != 0 {
			t.Errorf("%s: unexpected retry_after_ms %d", tc.name, e.Error.RetryAfterMs)
		}
	}
}

// TestHTTPQueueFullEnvelope: 429 carries both the Retry-After header
// and retry_after_ms inside the envelope.
func TestHTTPQueueFullEnvelope(t *testing.T) {
	s, ts := newHTTPServer(t, Config{WorkerPool: 1, MaxBatch: 1, QueueSize: 1})
	// Stall the worker with slow jobs, then overfill the queue.
	var infos []JobInfo
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"kind":"simulate","qasm":"OPENQASM 2.0;\nqreg q[14];\nh q[%d];\n","shots":1,"seed":%d}`, i%14, i)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if got := resp.Header.Get("Retry-After"); got == "" {
				t.Error("429 without Retry-After header")
			}
			e := decodeError(t, resp)
			resp.Body.Close()
			if e.Error.Code != CodeQueueFull {
				t.Fatalf("429 code %q, want %q", e.Error.Code, CodeQueueFull)
			}
			if e.Error.RetryAfterMs <= 0 {
				t.Fatalf("429 envelope without retry_after_ms: %+v", e.Error)
			}
			_ = s
			return
		}
		var info JobInfo
		_ = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		infos = append(infos, info)
	}
	t.Skip("queue never filled on this machine")
}

// TestHTTPLegacyBodyDeprecation: bodies without "kind" still work,
// parse leniently (unknown fields tolerated), and carry the
// Deprecation header on the 202.
func TestHTTPLegacyBodyDeprecation(t *testing.T) {
	_, ts := newHTTPServer(t, Config{})
	body := `{"qasm":"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n","shots":32,"seed":1,"some_future_field":true}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy body: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy body accepted without a Deprecation header")
	}

	// The same body with kind set is strict: the unknown field is fatal
	// and the response carries no Deprecation header.
	strict := `{"kind":"simulate","qasm":"OPENQASM 2.0;\nqreg q[1];\nh q[0];\n","some_future_field":true}`
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(strict))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("strict body with unknown field: HTTP %d, want 400", resp2.StatusCode)
	}
	if resp2.Header.Get("Deprecation") != "" {
		t.Error("kind-bearing body marked deprecated")
	}

	// An explicit kind gets no Deprecation header on success.
	modern := `{"kind":"simulate","qasm":"OPENQASM 2.0;\nqreg q[1];\nh q[0];\n"}`
	resp3, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(modern))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted || resp3.Header.Get("Deprecation") != "" {
		t.Fatalf("modern body: HTTP %d, Deprecation %q", resp3.StatusCode, resp3.Header.Get("Deprecation"))
	}
}

// TestHTTPSweepJobKind: the sweep kind end to end over the wire,
// including the truncation rules shared with probability vectors.
func TestHTTPSweepJobKind(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Target: backend.TargetNvidia, Workers: 1, TileBits: 3})
	const nq, points = 4, 40
	c := sweepAnsatz(nq)
	h := observable.TransverseFieldIsing(nq, 1.0, 0.7)
	req := SubmitRequest{
		Kind:        "sweep",
		Circuit:     FromCircuit(c),
		Hamiltonian: FromHamiltonian(h),
		Points:      angleGrid(c.NumParams(), points),
	}
	info, status := postJob(t, ts.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit: HTTP %d", status)
	}
	info = pollDone(t, ts.URL, info.ID)
	if info.State != StateDone {
		t.Fatalf("sweep job: %+v", info)
	}

	// Default view truncates the 40-point vector to 16 values.
	var rr ResultResponse
	getJSON(t, ts.URL+"/v1/results/"+info.ID, &rr)
	if rr.SweepPoints != points {
		t.Fatalf("sweep_points = %d, want %d", rr.SweepPoints, points)
	}
	if len(rr.SweepValues) != 16 || !rr.Truncated {
		t.Fatalf("default view: %d values, truncated=%v; want 16/true", len(rr.SweepValues), rr.Truncated)
	}
	// ?full=1 returns every point.
	var full ResultResponse
	getJSON(t, ts.URL+"/v1/results/"+info.ID+"?full=1", &full)
	if len(full.SweepValues) != points || full.Truncated {
		t.Fatalf("full view: %d values, truncated=%v", len(full.SweepValues), full.Truncated)
	}
	// ?top=N widens the window.
	var topped ResultResponse
	getJSON(t, ts.URL+"/v1/results/"+info.ID+"?top=25", &topped)
	if len(topped.SweepValues) != 25 || !topped.Truncated {
		t.Fatalf("top=25 view: %d values, truncated=%v", len(topped.SweepValues), topped.Truncated)
	}
	for i, v := range full.SweepValues[:16] {
		if math.Float64bits(v) != math.Float64bits(rr.SweepValues[i]) {
			t.Fatalf("truncated view diverges at %d", i)
		}
	}
	if rr.Rebinds != points {
		t.Errorf("rebinds = %d, want %d", rr.Rebinds, points)
	}
}

// TestHTTPGradientJobKind: the gradient kind over the wire.
func TestHTTPGradientJobKind(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Target: backend.TargetNvidia, Workers: 1, TileBits: 3})
	c := sweepAnsatz(4)
	req := SubmitRequest{
		Kind:        "gradient",
		Circuit:     FromCircuit(c),
		Hamiltonian: FromHamiltonian(observable.TransverseFieldIsing(4, 1.0, 0.7)),
	}
	info, status := postJob(t, ts.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("gradient submit: HTTP %d", status)
	}
	info = pollDone(t, ts.URL, info.ID)
	if info.State != StateDone {
		t.Fatalf("gradient job: %+v", info)
	}
	var rr ResultResponse
	getJSON(t, ts.URL+"/v1/results/"+info.ID, &rr)
	if len(rr.Gradient) != c.NumParams() {
		t.Fatalf("gradient has %d entries for %d params", len(rr.Gradient), c.NumParams())
	}
	if rr.ExpValue == nil {
		t.Fatal("gradient result without its base expectation value")
	}
}

// TestHTTPLongPoll: GET /v1/jobs/{id}?wait_ms blocks until the job
// finishes (or the clamped budget runs out) instead of demanding a
// busy-poll loop.
func TestHTTPLongPoll(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Target: backend.TargetNvidia, Workers: 1, MaxWaitMs: 2000})
	req := SubmitRequest{
		Kind: "simulate",
		QASM: "OPENQASM 2.0;\nqreg q[12];\nh q[0];\ncx q[0],q[1];\n",
	}
	info, status := postJob(t, ts.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", status)
	}
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "?wait_ms=1500")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll: HTTP %d", resp.StatusCode)
	}
	var got JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone && time.Since(start) < 1200*time.Millisecond {
		t.Fatalf("long-poll returned %q after only %v", got.State, time.Since(start))
	}
	// A negative budget is invalid_request.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + info.ID + "?wait_ms=-5")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative wait_ms: HTTP %d, want 400", resp2.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
