package service

import (
	"qgear/internal/backend"
	"qgear/internal/store"
)

// The server's two in-memory caches are byte-accounted, cost-aware
// instances of store.Cache: the result cache (canonical (fingerprint,
// options) hashes from core.CacheKey → completed simulation results)
// and the compiled-plan cache ((fingerprint, tile width) →
// backend.Compiled execution IR). Every entry is charged its real
// resident size — a 2^n probability vector is 8·2^n bytes, a plan its
// segment arrays — and eviction weighs recompute cost per byte
// (Greedy-Dual-Size), so a cheap giant entry leaves before an
// expensive small one. Evicted and shutdown-time entries flow to the
// persistent store when one is configured. Neither cache is safe for
// concurrent use on its own; the Server serializes access under its
// mutex.
type (
	resultCache = store.Cache[*backend.Result]
	planCache   = store.Cache[*backend.Compiled]
)

// Accounting note: seed-variant entries of one fingerprint produced by
// a coalesced batch share one underlying probability slice but are
// each charged its full size. The overstatement is deliberate — it is
// the safe side (resident memory can only be below the budget, never
// above it), it disappears as soon as any variant is evicted, and
// per-entry accounting stays O(1) with no slice-identity refcounting.

// resultCost models a result's recompute cost: simulation work is
// proportional to gate count × state size. A deterministic model (not
// the measured wall-clock, which is noisy at millisecond scale) keeps
// eviction decisions reproducible across runs and machines; entries
// with equal shape tie exactly and fall back to LRU. Expectation
// results carry no probability vector but cost the same simulation to
// recompute, so their state size comes from the recorded qubit count —
// a few dozen resident bytes protecting a 2^n-scale recompute makes
// them close to free to keep, which is exactly right.
func resultCost(res *backend.Result) float64 {
	size := len(res.Probabilities)
	if size == 0 && res.NumQubits > 0 && res.NumQubits < 63 {
		size = 1 << uint(res.NumQubits)
	}
	return float64(1+res.KernelStats.EmittedOps) * float64(size)
}

// planCost models a compiled plan's recompute cost: transformation and
// planning are linear passes over the instruction stream.
func planCost(comp *backend.Compiled) float64 {
	return float64(1 + len(comp.Kernel.Instrs))
}
