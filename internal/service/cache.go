package service

import (
	"container/list"

	"qgear/internal/backend"
)

// lruCache is a small generic LRU keyed by content-address strings.
// The server uses two instances: the result cache (canonical
// (fingerprint, options) hashes from core.CacheKey → completed
// simulation results) and the compiled-plan cache ((fingerprint,
// tile width) → backend.Compiled execution IR). Least-recently-used
// entries are evicted once the capacity is exceeded. It is not safe
// for concurrent use; the Server serializes access under its mutex.
type lruCache[V any] struct {
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry[V any] struct {
	key string
	val V
}

// newLRUCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every Get misses, Add is a no-op).
func newLRUCache[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// resultCache and planCache are the two instantiations the server
// holds; named so the Server struct reads clearly.
type (
	resultCache = lruCache[*backend.Result]
	planCache   = lruCache[*backend.Compiled]
)

// Get returns the cached value for key and refreshes its recency.
func (c *lruCache[V]) Get(key string) (V, bool) {
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry[V]).val, true
}

// Add inserts (or refreshes) key's value, evicting the LRU entry when
// over capacity.
func (c *lruCache[V]) Add(key string, val V) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry[V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry[V]).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *lruCache[V]) Len() int { return c.ll.Len() }

// Keys returns cache keys from most to least recently used (test hook
// for eviction-order assertions).
func (c *lruCache[V]) Keys() []string {
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry[V]).key)
	}
	return keys
}
