package service

import (
	"container/list"

	"qgear/internal/backend"
)

// lruCache is a content-addressed result cache: cache keys are the
// canonical (circuit fingerprint, options) hashes from core.CacheKey,
// values are completed simulation results. Least-recently-used entries
// are evicted once the capacity is exceeded. It is not safe for
// concurrent use; the Server serializes access under its mutex.
type lruCache struct {
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key string
	res *backend.Result
}

// newLRUCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every Get misses, Add is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result for key and refreshes its recency.
func (c *lruCache) Get(key string) (*backend.Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Add inserts (or refreshes) key's result, evicting the LRU entry when
// over capacity.
func (c *lruCache) Add(key string, res *backend.Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int { return c.ll.Len() }

// Keys returns cache keys from most to least recently used (test hook
// for eviction-order assertions).
func (c *lruCache) Keys() []string {
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}
