package service

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/faultfs"
)

// Fabricated results on either side of a ~16ms median load latency:
// recomputing the cheap one is faster than loading it back.
var (
	fakeCheapResult  = backend.Result{Target: backend.TargetNvidia, Probabilities: []float64{1, 0}, Duration: time.Millisecond}
	fakeCostlyResult = backend.Result{Target: backend.TargetNvidia, Probabilities: []float64{1, 0}, Duration: time.Second}
)

// diskStoreBytes sums the artifact files under a store directory —
// the footprint -max-store-bytes promises to bound. In-flight temp
// files are counted too (their bytes are covered by the store's
// reservation accounting); entries that vanish mid-walk (concurrent
// GC deletes) are skipped.
func diskStoreBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.Contains(d.Name(), ".") || d.Name() == "manifest.qgm" {
			return nil
		}
		info, err := d.Info()
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestChaosStoreGCFaultingDeletes runs waves of distinct circuits
// through a byte-bounded store whose deletes fail half the time: the
// on-disk footprint must never exceed the budget (failed deletes stay
// charged; saves are refused sooner than overshooting), while serving
// stays correct and bit-identical to a clean server.
func TestChaosStoreGCFaultingDeletes(t *testing.T) {
	inj := faultfs.New(faultfs.OS{}, faultfs.Config{
		Seed: 0xDE1E7E,
		// Only deletes fault: this test targets the GC's accounting,
		// not the read/write paths (chaos-covered elsewhere).
		PerOp: map[faultfs.Op]faultfs.Rates{
			faultfs.OpRemove: {ErrPerMille: 500},
		},
	})
	dir := t.TempDir()
	const budget = 8 << 10
	// The tiny result cache evicts nearly everything, so each wave
	// spills to the store and keeps the GC churning against the budget.
	cfg := Config{
		StoreDir: dir, StoreFS: inj, MaxStoreBytes: budget, MaxCacheBytes: 8 << 10,
		WorkerPool: 2, MaxBatch: 2, TileBits: 4,
	}
	s := newTestServer(t, cfg)
	clean := newTestServer(t, Config{WorkerPool: 2, MaxBatch: 2, TileBits: 4})

	for wave := 0; wave < 3; wave++ {
		circs := storeTestCircuits(8, 8)
		for i := range circs {
			circs[i].RZ(1e-3*float64(wave+1), 1) // distinct work per wave
		}
		var wg sync.WaitGroup
		for i, c := range circs {
			wg.Add(1)
			go func(i int, c *circuit.Circuit) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				res, _, err := s.Run(ctx, c, SubmitOptions{Shots: 200, Seed: uint64(i)})
				if err != nil {
					t.Errorf("wave %d circuit %d: %v", wave, i, err)
					return
				}
				want, _, err := clean.Run(ctx, c, SubmitOptions{Shots: 200, Seed: uint64(i)})
				if err != nil {
					t.Errorf("wave %d circuit %d clean reference: %v", wave, i, err)
					return
				}
				if !reflect.DeepEqual(res.Probabilities, want.Probabilities) {
					t.Errorf("wave %d circuit %d probabilities diverged", wave, i)
				}
			}(i, c)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		// Drain the spiller, then audit the disk against the budget.
		time.Sleep(50 * time.Millisecond)
		if got := diskStoreBytes(t, dir); got > budget {
			t.Fatalf("wave %d: store grew to %d bytes on disk, budget %d", wave, got, budget)
		}
	}
	if inj.FaultCount() == 0 {
		t.Fatal("delete-fault injector never fired — the test exercised nothing")
	}
	st := s.Stats()
	if st.StoreSpills == 0 {
		t.Fatal("no spills reached the store")
	}
	if st.StoreGCEvictions == 0 && st.StoreGCRejected == 0 {
		t.Fatal("budget pressure never engaged the GC")
	}
	t.Logf("faults=%d spills=%d gc: evictions=%d evicted_bytes=%d rejected=%d disk=%d/%d",
		inj.FaultCount(), st.StoreSpills, st.StoreGCEvictions, st.StoreGCEvictedBytes,
		st.StoreGCRejected, diskStoreBytes(t, dir), budget)
}

// TestChaosManifestReplayAfterKill abandons a server without Close —
// the kill -9 shape — and warm-starts a second one over the same
// store: the boot must come from the manifest journal alone (zero
// directory scans, proven by the injector's ReadDir counter) and the
// stored artifacts must serve bit-identically.
func TestChaosManifestReplayAfterKill(t *testing.T) {
	dir := t.TempDir()
	// The tiny cache forces eviction-spills, so artifacts reach disk
	// while the server is live (Close — the orderly spill path — is
	// exactly what this test denies itself).
	base := Config{StoreDir: dir, MaxCacheBytes: 4 << 10, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	circs := storeTestCircuits(6, 8)
	ctx := context.Background()

	s1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(circs))
	for i, c := range circs {
		res, _, err := s1.Run(ctx, c, SubmitOptions{Shots: 150, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Probabilities
	}
	// Wait for the async spiller to land artifacts, then walk away
	// without Close: goroutines, spill backlog, everything abandoned.
	deadline := time.Now().Add(5 * time.Second)
	for s1.Stats().StoreResultEntries < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("spiller landed only %d artifacts", s1.Stats().StoreResultEntries)
		}
		time.Sleep(10 * time.Millisecond)
	}
	landed := s1.Stats().StoreResultEntries

	inj := faultfs.New(faultfs.OS{}, faultfs.Config{})
	cfg2 := base
	cfg2.StoreFS = inj
	s2 := newTestServer(t, cfg2)
	if got := inj.ReadDirCalls(); got != 0 {
		t.Fatalf("boot after kill scanned the store: %d ReadDir calls, want manifest replay", got)
	}
	st := s2.Stats()
	if st.StoreBootScanned {
		t.Fatal("boot after kill reported a scan fallback")
	}
	if st.StoreResultEntries < landed {
		t.Fatalf("replay found %d artifacts, killed server had landed %d", st.StoreResultEntries, landed)
	}
	served := 0
	for i, c := range circs {
		res, info, err := s2.Run(ctx, c, SubmitOptions{Shots: 150, Seed: uint64(i)})
		if err != nil {
			t.Fatalf("circuit %d after kill: %v", i, err)
		}
		if !reflect.DeepEqual(res.Probabilities, want[i]) {
			t.Fatalf("circuit %d diverged across the kill", i)
		}
		if info.Cached {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no submission was answered from the replayed store")
	}
	if s2.Stats().StoreHits == 0 {
		t.Fatal("replayed store produced no hits")
	}
}

// TestStoreAdmissionSkipsCheapResults drives enough store loads to
// establish a median load latency, then verifies that results whose
// recorded compute time is far below it are not persisted (the spill
// is skipped and counted), while expensive results still are.
func TestStoreAdmissionSkipsCheapResults(t *testing.T) {
	cfg := Config{StoreDir: t.TempDir(), MaxCacheBytes: 4 << 10, WorkerPool: 1, MaxBatch: 1, TileBits: 4}
	s := newTestServer(t, cfg)
	// Seed the load histogram past the admission threshold by
	// observing synthetic loads, exactly as serveFromStore would.
	for i := 0; i < 64; i++ {
		s.storeLoad.Observe(10 * time.Millisecond)
	}
	if s.admitResultSpill(&fakeCheapResult) {
		t.Fatal("a result cheaper to recompute than the median load was admitted")
	}
	if !s.admitResultSpill(&fakeCostlyResult) {
		t.Fatal("an expensive result was refused")
	}
	before := s.Stats().StoreAdmissionSkips
	s.mu.Lock()
	s.enqueueSpillLocked(spillItem{key: "cheap", result: &fakeCheapResult})
	s.mu.Unlock()
	if got := s.Stats().StoreAdmissionSkips; got != before+1 {
		t.Fatalf("admission skip not counted: %d -> %d", before, got)
	}
}
