package service

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"qgear/internal/backend"
	"qgear/internal/circuit"
	"qgear/internal/randcirc"
)

// newTestServer builds a server with small, deterministic sizing.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testCircuit(t *testing.T, qubits, blocks int, seed uint64) *circuit.Circuit {
	t.Helper()
	c, err := randcirc.Generate(randcirc.Spec{Qubits: qubits, Blocks: blocks, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunMatchesBackend(t *testing.T) {
	s := newTestServer(t, Config{FusionWindow: 2})
	c := circuit.GHZ(10, false)
	res, info, err := s.Run(context.Background(), c, SubmitOptions{Shots: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone || info.Cached {
		t.Fatalf("info = %+v", info)
	}
	ref, err := backend.Run(c, backend.Config{Target: backend.TargetNvidia, FusionWindow: 2, Shots: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probabilities) != len(ref.Probabilities) {
		t.Fatalf("prob lengths %d vs %d", len(res.Probabilities), len(ref.Probabilities))
	}
	for i := range res.Probabilities {
		if res.Probabilities[i] != ref.Probabilities[i] {
			t.Fatalf("prob[%d] = %g, want %g", i, res.Probabilities[i], ref.Probabilities[i])
		}
	}
	if len(res.Counts) != len(ref.Counts) {
		t.Fatalf("counts differ: %v vs %v", res.Counts, ref.Counts)
	}
	for k, v := range ref.Counts {
		if res.Counts[k] != v {
			t.Fatalf("counts[%d] = %d, want %d", k, res.Counts[k], v)
		}
	}
}

// TestSingleFlight races concurrent submissions of one content address:
// exactly one simulation must run, everyone else attaches or hits.
func TestSingleFlight(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 2, BatchWindow: 20 * time.Millisecond})
	c := testCircuit(t, 12, 30, 1)
	const n = 32
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := s.Submit(c, SubmitOptions{Shots: 100, Seed: 3})
			ids[i], errs[i] = info.ID, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		info, err := s.Wait(ctx, id)
		if err != nil || info.State != StateDone {
			t.Fatalf("job %s: %+v, %v", id, info, err)
		}
	}
	st := s.Stats()
	if st.Executed != 1 {
		t.Fatalf("executed %d simulations for %d identical submissions", st.Executed, n)
	}
	if got := st.CacheHits + st.SingleFlightHits; got != n-1 {
		t.Fatalf("hits+joins = %d, want %d", got, n-1)
	}
	// Every result pointer resolves and agrees.
	first, err := s.Result(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		r, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if r.Counts.Total() != first.Counts.Total() {
			t.Fatalf("diverging results across single-flight jobs")
		}
	}
}

// TestLRUEvictionOrder checks the cache's recency discipline end to
// end: a re-submission refreshes recency, so the cold entry is the one
// evicted.
func TestLRUEvictionOrder(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 2, WorkerPool: 1, MaxBatch: 1})
	ctx := context.Background()
	a := testCircuit(t, 8, 10, 1)
	b := testCircuit(t, 8, 10, 2)
	c := testCircuit(t, 8, 10, 3)
	keyOf := func(circ *circuit.Circuit) string { return s.key(circ, SubmitOptions{}) }

	for _, circ := range []*circuit.Circuit{a, b} {
		if _, _, err := s.Run(ctx, circ, SubmitOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a: now b is least recently used.
	if _, info, err := s.Run(ctx, a, SubmitOptions{}); err != nil || !info.Cached {
		t.Fatalf("expected cache hit for a: %+v, %v", info, err)
	}
	// c evicts b.
	if _, _, err := s.Run(ctx, c, SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []string{keyOf(c), keyOf(a)}
	got := s.cacheKeys()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("cache order %v, want %v", got, want)
	}
	st := s.Stats()
	if st.CacheEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.CacheEvictions)
	}
	// b is gone: resubmitting executes again.
	before := s.Stats().Executed
	if _, info, err := s.Run(ctx, b, SubmitOptions{}); err != nil || info.Cached {
		t.Fatalf("expected miss for evicted b: %+v, %v", info, err)
	}
	if after := s.Stats().Executed; after != before+1 {
		t.Fatalf("executed %d -> %d, want +1", before, after)
	}
}

// TestBatchMatchesSequential coalesces a burst of distinct jobs into
// shared core.Run calls and verifies each job's probabilities and
// counts are bit-identical to a standalone backend.Run.
func TestBatchMatchesSequential(t *testing.T) {
	s := newTestServer(t, Config{
		Target:       backend.TargetNvidiaMQPU,
		Devices:      4,
		WorkerPool:   1,
		MaxBatch:     8,
		BatchWindow:  200 * time.Millisecond,
		FusionWindow: 2,
	})
	const n = 6
	circs := make([]*circuit.Circuit, n)
	for i := range circs {
		circs[i] = testCircuit(t, 10, 20, uint64(100+i))
	}
	ids := make([]string, n)
	for i, c := range circs {
		info, err := s.Submit(c, SubmitOptions{Shots: 200, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range ids {
		if info, err := s.Wait(ctx, id); err != nil || info.State != StateDone {
			t.Fatalf("job %s: %+v, %v", id, info, err)
		}
	}
	st := s.Stats()
	if st.BatchedJobs != n {
		t.Fatalf("batched jobs %d, want %d", st.BatchedJobs, n)
	}
	if st.Batches >= n {
		t.Fatalf("no coalescing: %d batches for %d jobs", st.Batches, n)
	}
	for i, id := range ids {
		got, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		// Reference runs on the server's own target/devices: coalesced
		// execution must match a standalone mqpu Run bit for bit,
		// including the mqpu per-device shot-sampling split.
		ref, err := backend.Run(circs[i], backend.Config{
			Target: backend.TargetNvidiaMQPU, Devices: 4, FusionWindow: 2, Shots: 200, Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref.Probabilities {
			if got.Probabilities[j] != ref.Probabilities[j] {
				t.Fatalf("job %d prob[%d]: %g vs %g", i, j, got.Probabilities[j], ref.Probabilities[j])
			}
		}
		if len(got.Counts) != len(ref.Counts) {
			t.Fatalf("job %d: counts size %d vs %d", i, len(got.Counts), len(ref.Counts))
		}
		for k, v := range ref.Counts {
			if got.Counts[k] != v {
				t.Fatalf("job %d counts[%d]: %d vs %d", i, k, got.Counts[k], v)
			}
		}
	}
}

// TestGracefulShutdownDrains submits a burst and closes immediately:
// every accepted job must still reach a terminal state before Close
// returns, and post-close submissions are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 2, QueueSize: 64})
	const n = 12
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		info, err := s.Submit(testCircuit(t, 12, 20, uint64(i)), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		info, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateDone {
			t.Fatalf("job %s left in state %q after Close", id, info.State)
		}
	}
	if _, err := s.Submit(circuit.GHZ(4, false), SubmitOptions{}); err != ErrClosed {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
}

// TestFailureIsolation: a job that exceeds the single-device qubit
// limit fails alone; batch-mates coalesced with it still succeed.
func TestFailureIsolation(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 1, MaxBatch: 4, BatchWindow: 200 * time.Millisecond})
	good := circuit.GHZ(8, false)
	bad := circuit.GHZ(30, false) // over statevec.MaxQubits
	badInfo, err := s.Submit(bad, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	goodInfo, err := s.Submit(good, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	bi, err := s.Wait(ctx, badInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bi.State != StateFailed || bi.Error == "" {
		t.Fatalf("bad job: %+v", bi)
	}
	gi, err := s.Wait(ctx, goodInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gi.State != StateDone {
		t.Fatalf("good batch-mate failed too: %+v", gi)
	}
	if _, err := s.Result(badInfo.ID); err == nil {
		t.Fatal("failed job returned a result")
	}
	st := s.Stats()
	if st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("failed %d completed %d, want 1/1", st.Failed, st.Completed)
	}
}

func TestQueueBackpressure(t *testing.T) {
	s := newTestServer(t, Config{WorkerPool: 1, QueueSize: 1, MaxBatch: 1})
	// Occupy the worker with a slow job.
	slow, err := s.Submit(testCircuit(t, 16, 120, 99), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the worker pick it up
	// Fill the queue, then overflow it.
	var sawFull bool
	for i := 0; i < 3; i++ {
		_, err := s.Submit(testCircuit(t, 8, 5, uint64(i)), SubmitOptions{})
		if err == ErrQueueFull {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("bounded queue accepted more than its capacity while the worker was busy")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if info, err := s.Wait(ctx, slow.ID); err != nil || info.State != StateDone {
		t.Fatalf("slow job: %+v, %v", info, err)
	}
}

func TestSeedNormalizationSharesKey(t *testing.T) {
	s := newTestServer(t, Config{})
	c := circuit.GHZ(6, false)
	// Shots == 0: seeds must not split the content address.
	if s.key(c, SubmitOptions{Seed: 1}) != s.key(c, SubmitOptions{Seed: 2}) {
		t.Fatal("probabilities-only submissions with different seeds got different keys")
	}
	// With shots, the seed matters.
	if s.key(c, SubmitOptions{Shots: 10, Seed: 1}) == s.key(c, SubmitOptions{Shots: 10, Seed: 2}) {
		t.Fatal("sampled submissions with different seeds share a key")
	}
	// And shots themselves matter.
	if s.key(c, SubmitOptions{}) == s.key(c, SubmitOptions{Shots: 10}) {
		t.Fatal("shots ignored in key")
	}
}

func TestStatsShape(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, _, err := s.Run(context.Background(), circuit.GHZ(6, false), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run(context.Background(), circuit.GHZ(6, false), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Submitted != 2 || st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.HitRate-0.5) > 1e-9 {
		t.Fatalf("hit rate %g, want 0.5", st.HitRate)
	}
	h, ok := st.Latency[string(backend.TargetNvidia)]
	if !ok || h.Count != 1 {
		t.Fatalf("execution latency histogram missing: %+v", st.Latency)
	}
	hc, ok := st.Latency["cache"]
	if !ok || hc.Count != 1 {
		t.Fatalf("cache latency histogram missing: %+v", st.Latency)
	}
	if len(h.Counts) != len(h.UpperBoundsUS) {
		t.Fatal("histogram shape mismatch")
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total != h.Count {
		t.Fatalf("histogram counts sum %d != count %d", total, h.Count)
	}
}

func TestJobRetention(t *testing.T) {
	s := newTestServer(t, Config{MaxRetainedJobs: 3, CacheSize: -1})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 5; i++ {
		c := circuit.GHZ(4, false)
		c.RZ(float64(i+1)*0.1, 0) // distinct fingerprints
		_, info, err := s.Run(ctx, c, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if _, err := s.Job(ids[0]); err != ErrNotFound {
		t.Fatalf("oldest job should be forgotten, got %v", err)
	}
	if _, err := s.Job(ids[4]); err != nil {
		t.Fatalf("newest job missing: %v", err)
	}
}

func TestFingerprintProperties(t *testing.T) {
	a := circuit.GHZ(8, true)
	b := circuit.GHZ(8, true)
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on the circuit name")
	}
	c := circuit.GHZ(8, false)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("measured and unmeasured GHZ share a fingerprint")
	}
	d := circuit.GHZ(9, false)
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("different widths share a fingerprint")
	}
	e := circuit.New(4, 0).RY(0.5, 0)
	f := circuit.New(4, 0).RY(0.5000001, 0)
	if e.Fingerprint() == f.Fingerprint() {
		t.Fatal("different parameters share a fingerprint")
	}
	if len(a.Fingerprint()) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex string", a.Fingerprint())
	}
}

func TestInvalidSubmissions(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Submit(nil, SubmitOptions{}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := s.Submit(circuit.GHZ(4, false), SubmitOptions{Shots: -1}); err == nil {
		t.Fatal("negative shots accepted")
	}
	broken := &circuit.Circuit{NumQubits: 2, Ops: []circuit.Op{{Gate: 200}}}
	if _, err := s.Submit(broken, SubmitOptions{}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	if _, err := New(Config{Target: "warp-drive"}); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := New(Config{Target: backend.TargetNvidiaMGPU, Devices: 3}); err == nil {
		t.Fatal("mgpu with non-power-of-two devices accepted")
	}
	if _, err := s.Job("j-nope"); err != ErrNotFound {
		t.Fatalf("unknown job: %v", err)
	}
}
