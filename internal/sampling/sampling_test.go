package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"qgear/internal/qmath"
)

func TestBitstring(t *testing.T) {
	if s := Bitstring(0b101, 4); s != "0101" {
		t.Fatalf("Bitstring = %q", s)
	}
	if s := Bitstring(0, 3); s != "000" {
		t.Fatalf("Bitstring = %q", s)
	}
}

func TestCountsTotalAndTopK(t *testing.T) {
	c := Counts{0: 10, 1: 30, 2: 20}
	if c.Total() != 60 {
		t.Fatal("Total wrong")
	}
	top := c.TopK(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Fatalf("TopK wrong: %v", top)
	}
	if got := c.TopK(10); len(got) != 3 {
		t.Fatal("TopK should clamp")
	}
}

func TestTopKTieBreak(t *testing.T) {
	c := Counts{5: 10, 2: 10, 9: 10}
	top := c.TopK(3)
	if top[0] != 2 || top[1] != 5 || top[2] != 9 {
		t.Fatalf("ties must break by index: %v", top)
	}
}

func TestMarginal(t *testing.T) {
	// 3-qubit counts; marginalize to qubits {2, 0}: out bit0 = in bit2,
	// out bit1 = in bit0.
	c := Counts{0b101: 7, 0b100: 3, 0b010: 5}
	m := c.Marginal([]int{2, 0})
	// 0b101: bit2=1 -> out bit0 =1; bit0=1 -> out bit1=1 => 0b11
	// 0b100: bit2=1, bit0=0 => 0b01
	// 0b010: bit2=0, bit0=0 => 0b00
	if m[0b11] != 7 || m[0b01] != 3 || m[0b00] != 5 {
		t.Fatalf("marginal wrong: %v", m)
	}
	if m.Total() != c.Total() {
		t.Fatal("marginal lost shots")
	}
}

func TestSamplersMatchDistribution(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.0, 0.4, 0.3}
	const shots = 200000
	for name, sampler := range map[string]func([]float64, int, *qmath.RNG) (Counts, error){
		"cumulative": SampleCumulative,
		"alias":      SampleAlias,
	} {
		rng := qmath.NewRNG(42)
		c, err := sampler(probs, shots, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Total() != shots {
			t.Fatalf("%s: total %d != %d", name, c.Total(), shots)
		}
		if c[2] != 0 {
			t.Fatalf("%s: sampled zero-probability outcome", name)
		}
		for i, p := range probs {
			got := float64(c[uint64(i)]) / shots
			if math.Abs(got-p) > 0.01 {
				t.Fatalf("%s: outcome %d freq %g, want %g", name, i, got, p)
			}
		}
	}
}

func TestSampleUnnormalizedInput(t *testing.T) {
	// Distributions with fp drift (sum != 1) must still sample.
	probs := []float64{2, 6}
	rng := qmath.NewRNG(7)
	c, err := SampleAlias(probs, 40000, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := float64(c[1]) / 40000
	if math.Abs(f-0.75) > 0.02 {
		t.Fatalf("unnormalized sampling freq %g, want 0.75", f)
	}
}

func TestSamplerErrors(t *testing.T) {
	rng := qmath.NewRNG(1)
	if _, err := SampleCumulative([]float64{0.5, -0.1}, 10, rng); err == nil {
		t.Fatal("negative prob accepted")
	}
	if _, err := SampleAlias([]float64{-1}, 10, rng); err == nil {
		t.Fatal("negative prob accepted")
	}
	if _, err := SampleCumulative([]float64{0, 0}, 10, rng); err == nil {
		t.Fatal("zero distribution accepted")
	}
	if _, err := NewAliasTable(nil); err == nil {
		t.Fatal("empty distribution accepted")
	}
	if _, err := SampleCumulative([]float64{1}, -1, rng); err == nil {
		t.Fatal("negative shots accepted")
	}
	if _, err := SampleAlias([]float64{1}, -1, rng); err == nil {
		t.Fatal("negative shots accepted")
	}
}

func TestSampleDispatch(t *testing.T) {
	probs := make([]float64, 8)
	for i := range probs {
		probs[i] = 1
	}
	rng := qmath.NewRNG(3)
	// Small shots -> cumulative path; large -> alias path. Both must
	// return exactly `shots` samples.
	for _, shots := range []int{10, 5000} {
		c, err := Sample(probs, shots, rng)
		if err != nil {
			t.Fatal(err)
		}
		if c.Total() != shots {
			t.Fatalf("total %d != %d", c.Total(), shots)
		}
	}
}

func TestAliasTableProperty(t *testing.T) {
	// Property: for random distributions, the alias table preserves
	// per-outcome probability within sampling error.
	f := func(seed uint32) bool {
		r := qmath.NewRNG(uint64(seed))
		probs := make([]float64, 6)
		for i := range probs {
			probs[i] = r.Float64()
		}
		probs[r.Intn(6)] += 1 // ensure non-zero total, uneven shape
		tab, err := NewAliasTable(probs)
		if err != nil {
			return false
		}
		var total float64
		for _, p := range probs {
			total += p
		}
		const shots = 30000
		counts := make([]int, 6)
		for s := 0; s < shots; s++ {
			counts[tab.Draw(r)]++
		}
		for i, p := range probs {
			want := p / total
			got := float64(counts[i]) / shots
			if math.Abs(got-want) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{0b11: 5, 0b00: 3}
	s := c.String()
	if s != `{"11": 5, "00": 3}` {
		t.Fatalf("String = %s", s)
	}
}
