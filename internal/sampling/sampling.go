// Package sampling draws measurement shots from a state-vector
// probability distribution — the "sampling shots from this unitary"
// half of the paper's QCrank runtime budget (§3), which for large
// images rivals the unitary computation itself.
//
// Two samplers are provided: a cumulative-distribution binary-search
// sampler (simple, O(log N) per shot) and an alias-table sampler (O(1)
// per shot after O(N) setup), the right tool for the paper's 3M–98M
// shot QCrank runs. Both are deterministic given an RNG.
package sampling

import (
	"fmt"
	"sort"
	"strings"

	"qgear/internal/qmath"
)

// Counts maps basis-state index to observed shot count.
type Counts map[uint64]int

// Total returns the number of shots recorded.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// TopK returns the k most frequent outcomes in descending count order
// (ties broken by index for determinism).
func (c Counts) TopK(k int) []uint64 {
	keys := make([]uint64, 0, len(c))
	for key := range c {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c[keys[i]] != c[keys[j]] {
			return c[keys[i]] > c[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > len(keys) {
		k = len(keys)
	}
	return keys[:k]
}

// Bitstring renders basis index i as an n-character bitstring with
// qubit 0 rightmost (Qiskit little-endian display convention).
func Bitstring(i uint64, n int) string {
	var b strings.Builder
	for q := n - 1; q >= 0; q-- {
		if i>>uint(q)&1 == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// String renders counts sorted by frequency, e.g. `{"00": 512, "11": 488}`.
func (c Counts) String() string {
	keys := c.TopK(len(c))
	n := 1
	for _, k := range keys {
		for k >= 1<<uint(n) {
			n++
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%q: %d", Bitstring(k, n), c[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Marginal reduces counts to the listed qubits: output bit j of each
// key is input bit qubits[j]. QCrank's decoder uses this to split shots
// into (address, data) parts.
func (c Counts) Marginal(qubits []int) Counts {
	out := make(Counts, len(c))
	for key, n := range c {
		var m uint64
		for j, q := range qubits {
			m |= (key >> uint(q) & 1) << uint(j)
		}
		out[m] += n
	}
	return out
}

// SampleCumulative draws shots by binary search over the cumulative
// distribution of probs. probs must be non-negative; it is normalized
// internally so small fp drift in Σp is tolerated.
func SampleCumulative(probs []float64, shots int, rng *qmath.RNG) (Counts, error) {
	if shots < 0 {
		return nil, fmt.Errorf("sampling: negative shots %d", shots)
	}
	cum := make([]float64, len(probs))
	var acc float64
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("sampling: negative probability at %d", i)
		}
		acc += p
		cum[i] = acc
	}
	if acc <= 0 {
		return nil, fmt.Errorf("sampling: zero total probability")
	}
	counts := make(Counts)
	for s := 0; s < shots; s++ {
		x := rng.Float64() * acc
		idx := sort.SearchFloat64s(cum, x)
		if idx == len(cum) {
			idx = len(cum) - 1
		}
		// SearchFloat64s returns the first i with cum[i] >= x; skip
		// zero-probability plateaus that can alias onto the boundary.
		for idx < len(probs)-1 && probs[idx] == 0 {
			idx++
		}
		counts[uint64(idx)]++
	}
	return counts, nil
}

// AliasTable is a Walker alias table for O(1) categorical sampling.
type AliasTable struct {
	prob  []float64
	alias []int
}

// NewAliasTable builds the table in O(N).
func NewAliasTable(probs []float64) (*AliasTable, error) {
	n := len(probs)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty distribution")
	}
	var total float64
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("sampling: negative probability at %d", i)
		}
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: zero total probability")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range probs {
		scaled[i] = p / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// Draw returns one sample.
func (t *AliasTable) Draw(rng *qmath.RNG) uint64 {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return uint64(i)
	}
	return uint64(t.alias[i])
}

// SampleAlias draws shots with an alias table.
func SampleAlias(probs []float64, shots int, rng *qmath.RNG) (Counts, error) {
	if shots < 0 {
		return nil, fmt.Errorf("sampling: negative shots %d", shots)
	}
	t, err := NewAliasTable(probs)
	if err != nil {
		return nil, err
	}
	counts := make(Counts)
	for s := 0; s < shots; s++ {
		counts[t.Draw(rng)]++
	}
	return counts, nil
}

// Sample picks the faster sampler for the workload: alias for shot
// counts that amortize the table build, cumulative otherwise.
func Sample(probs []float64, shots int, rng *qmath.RNG) (Counts, error) {
	if shots > len(probs)/4 && shots > 1024 {
		return SampleAlias(probs, shots, rng)
	}
	return SampleCumulative(probs, shots, rng)
}
