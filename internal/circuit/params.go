package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// Parameterized-circuit support: a circuit with rotation gates is a
// *shape* (gate sequence, operands) plus a flat vector of parameter
// values, read off the ops in program order. The structural fingerprint
// hashes the shape with the values erased, so every point of a
// parameter sweep shares one address — the key the compiled-plan cache
// uses to serve a 10k-point sweep with a single compilation.

// structuralVersion tags the StructuralFingerprint byte layout,
// independent of the exact-fingerprint version: the two encodings hash
// different information and must never collide across releases
// separately.
const structuralVersion = 1

// structuralDomain separates the structural hash domain from
// Fingerprint's: a fully-bound circuit with zero parameters must not
// share an address between the two schemes.
var structuralDomain = []byte("qgear-structural|")

// paramSlot marks one erased parameter value in the structural
// encoding. Only the slot *count* of each op is hashed — values are
// what sweeps vary.
const paramSlot = 0xFF

// StructuralFingerprint returns the content hash of the circuit's
// shape: register sizes and every operation's gate type, qubit
// operands, and measurement destination, with the parameter values of
// parameterized gates (ParamCount > 0) replaced by slot markers. Two
// circuits share a structural fingerprint iff one can be turned into
// the other by changing rotation angles alone — exactly the set of
// circuits one compiled plan skeleton can serve through rebinding.
func (c *Circuit) StructuralFingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write(structuralDomain)
	h.Write([]byte{structuralVersion})
	wInt(c.NumQubits)
	wInt(c.NumClbits)
	wInt(len(c.Ops))
	for _, op := range c.Ops {
		h.Write([]byte{byte(op.Gate)})
		wInt(len(op.Qubits))
		for _, q := range op.Qubits {
			wInt(q)
		}
		if op.Gate.ParamCount() > 0 {
			// Erase the values; keep the slot count so shapes with
			// different parameter arities stay distinct.
			wInt(len(op.Params))
			for range op.Params {
				h.Write([]byte{paramSlot})
			}
		} else {
			// Non-parameterized ops hash their (fixed) params exactly as
			// Fingerprint does, so malformed extra params still split keys.
			wInt(len(op.Params))
			for _, p := range op.Params {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
				h.Write(buf[:])
			}
		}
		wInt(op.Clbit)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// NumParams returns the total number of free parameters: the summed
// parameter counts of every parameterized gate, in program order — the
// length of the flat vector BindParams consumes and ParamValues
// produces.
func (c *Circuit) NumParams() int {
	n := 0
	for _, op := range c.Ops {
		if op.Gate.ParamCount() > 0 {
			n += len(op.Params)
		}
	}
	return n
}

// ParamValues returns the circuit's current parameter values as the
// flat vector (program order), the point this circuit represents in
// its structural family's parameter space.
func (c *Circuit) ParamValues() []float64 {
	vals := make([]float64, 0, c.NumParams())
	for _, op := range c.Ops {
		if op.Gate.ParamCount() > 0 {
			vals = append(vals, op.Params...)
		}
	}
	return vals
}

// BindParams returns a copy of the circuit with its free parameters
// replaced by vals (flat vector, program order). The copy shares no
// slices with the receiver. len(vals) must equal NumParams.
func (c *Circuit) BindParams(vals []float64) (*Circuit, error) {
	if want := c.NumParams(); len(vals) != want {
		return nil, fmt.Errorf("circuit %q: binding %d values to %d parameter slots", c.Name, len(vals), want)
	}
	out := c.Copy()
	i := 0
	for oi := range out.Ops {
		op := &out.Ops[oi]
		if op.Gate.ParamCount() > 0 {
			copy(op.Params, vals[i:i+len(op.Params)])
			i += len(op.Params)
		}
	}
	return out, nil
}
