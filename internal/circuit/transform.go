package circuit

import (
	"fmt"
	"math"

	"qgear/internal/gate"
)

// Inverse returns the adjoint circuit: ops reversed with each gate
// replaced by its adjoint. It fails if the circuit contains
// measurements, which have no inverse.
func (c *Circuit) Inverse() (*Circuit, error) {
	out := New(c.NumQubits, c.NumClbits)
	out.Name = c.Name + "_dg"
	for i := len(c.Ops) - 1; i >= 0; i-- {
		op := c.Ops[i]
		if op.Gate == gate.Barrier {
			out.Barrier()
			continue
		}
		adjT, adjP, ok := gate.AdjointParams(op.Gate, op.Params)
		if !ok {
			return nil, fmt.Errorf("circuit: cannot invert non-unitary op %v", op.Gate)
		}
		out.Append(adjT, op.Qubits, adjP)
	}
	return out, nil
}

// Compose appends all ops of other to a copy of c. Register sizes must
// match other's requirements.
func (c *Circuit) Compose(other *Circuit) (*Circuit, error) {
	if other.NumQubits > c.NumQubits || other.NumClbits > c.NumClbits {
		return nil, fmt.Errorf("circuit: compose target too small (%d/%d qubits, %d/%d clbits)",
			c.NumQubits, other.NumQubits, c.NumClbits, other.NumClbits)
	}
	out := c.Copy()
	for _, op := range other.Ops {
		if op.Gate == gate.Barrier {
			out.Barrier()
			continue
		}
		if op.Gate == gate.Measure {
			out.Measure(op.Qubits[0], op.Clbit)
			continue
		}
		out.Append(op.Gate, op.Qubits, op.Params)
	}
	return out, nil
}

// Basis identifies a transpilation target gate set.
type Basis int

const (
	// BasisNative is the paper's native set of Eq. (8):
	// {h, ry, rz, cx} plus measure/barrier. Everything else decomposes,
	// possibly up to an unobservable global phase.
	BasisNative Basis = iota
	// BasisKernel is the set the CUDA-Q-like kernel IR executes
	// directly: {h, x, y, z, rx, ry, rz, p, cr1, cx, cz, swap, u3} plus
	// measure/barrier; transpiling to it is the identity.
	BasisKernel
)

// nativeSet reports whether g is directly representable in BasisNative.
func nativeSet(g gate.Type) bool {
	switch g {
	case gate.H, gate.RY, gate.RZ, gate.CX, gate.Measure, gate.Barrier:
		return true
	}
	return false
}

// Transpile rewrites the circuit into the target basis. The
// decompositions are exact up to global phase, which no state-vector
// observable can see; the simulator tests verify probability
// equivalence. This mirrors the paper's step of transpiling QPY
// circuits "from native gate sets" before tensor encoding (§2.1).
func (c *Circuit) Transpile(b Basis) *Circuit {
	if b == BasisKernel {
		return c.Copy()
	}
	out := New(c.NumQubits, c.NumClbits)
	out.Name = c.Name + "_native"
	for _, op := range c.Ops {
		transpileOp(out, op)
	}
	return out
}

// transpileOp appends the BasisNative decomposition of op to out.
func transpileOp(out *Circuit, op Op) {
	if nativeSet(op.Gate) {
		switch op.Gate {
		case gate.Barrier:
			out.Barrier()
		case gate.Measure:
			out.Measure(op.Qubits[0], op.Clbit)
		default:
			out.Append(op.Gate, op.Qubits, op.Params)
		}
		return
	}
	q := op.Qubits
	switch op.Gate {
	case gate.I:
		// drop
	case gate.X:
		// X = H Z H = H RZ(π) H up to phase.
		out.H(q[0]).RZ(math.Pi, q[0]).H(q[0])
	case gate.Y:
		// Y = RZ(π) X up to phase.
		out.H(q[0]).RZ(math.Pi, q[0]).H(q[0]).RZ(math.Pi, q[0])
	case gate.Z:
		out.RZ(math.Pi, q[0])
	case gate.S:
		out.RZ(math.Pi/2, q[0])
	case gate.Sdg:
		out.RZ(-math.Pi/2, q[0])
	case gate.T:
		out.RZ(math.Pi/4, q[0])
	case gate.Tdg:
		out.RZ(-math.Pi/4, q[0])
	case gate.P:
		// p(λ) == rz(λ) up to global phase e^{iλ/2}.
		out.RZ(op.Params[0], q[0])
	case gate.RX:
		// RX(θ) = RZ(-π/2) · RY(θ) · RZ(π/2): first-applied gate first.
		out.RZ(math.Pi/2, q[0]).RY(op.Params[0], q[0]).RZ(-math.Pi/2, q[0])
	case gate.U3:
		// U3(θ,φ,λ) = RZ(φ) · RY(θ) · RZ(λ) up to global phase.
		out.RZ(op.Params[2], q[0]).RY(op.Params[0], q[0]).RZ(op.Params[1], q[0])
	case gate.CZ:
		// CZ = (I⊗H) CX (I⊗H).
		out.H(q[1]).CX(q[0], q[1]).H(q[1])
	case gate.CP:
		// cp(λ) = p(λ/2)_c · cx · p(-λ/2)_t · cx · p(λ/2)_t.
		la := op.Params[0]
		out.RZ(la/2, q[0]).CX(q[0], q[1]).RZ(-la/2, q[1]).CX(q[0], q[1]).RZ(la/2, q[1])
	case gate.CRY:
		// cry(θ) = ry(θ/2)_t · cx · ry(-θ/2)_t · cx.
		th := op.Params[0]
		out.RY(th/2, q[1]).CX(q[0], q[1]).RY(-th/2, q[1]).CX(q[0], q[1])
	case gate.SWAP:
		out.CX(q[0], q[1]).CX(q[1], q[0]).CX(q[0], q[1])
	default:
		panic(fmt.Sprintf("circuit: no BasisNative decomposition for %v", op.Gate))
	}
}

// GHZ returns the (nq)-qubit GHZ-state preparation circuit from the
// paper's Fig. 2b listing: h(q0) followed by a cx fan-out, then
// measure_all if measure is set.
func GHZ(nq int, measure bool) *Circuit {
	c := New(nq, 0)
	c.Name = fmt.Sprintf("ghz_%dq", nq)
	c.H(0)
	for i := 1; i < nq; i++ {
		c.CX(0, i)
	}
	if measure {
		c.MeasureAll()
	}
	return c
}
