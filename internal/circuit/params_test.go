package circuit

import (
	"math"
	"math/rand"
	"testing"

	"qgear/internal/gate"
)

// randomShape builds a random parameterized circuit from a seeded
// stream: a mix of parameterized rotations, fixed gates, and measures.
func randomShape(rng *rand.Rand, nq int) *Circuit {
	c := New(nq, nq)
	ops := 5 + rng.Intn(20)
	for i := 0; i < ops; i++ {
		q := rng.Intn(nq)
		switch rng.Intn(6) {
		case 0:
			c.RX(rng.Float64(), q)
		case 1:
			c.RY(rng.Float64(), q)
		case 2:
			c.RZ(rng.Float64(), q)
		case 3:
			c.H(q)
		case 4:
			c.CX(q, (q+1)%nq)
		case 5:
			c.CP(rng.Float64(), q, (q+1)%nq)
		}
	}
	return c
}

// TestStructuralFingerprintValueInvariance: rebinding any parameter
// vector never moves a circuit out of its structural family.
func TestStructuralFingerprintValueInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		c := randomShape(rng, 2+rng.Intn(4))
		fp := c.StructuralFingerprint()
		n := c.NumParams()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		bound, err := c.BindParams(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got := bound.StructuralFingerprint(); got != fp {
			t.Fatalf("trial %d: rebinding changed the structural fingerprint", trial)
		}
		if n > 0 && c.ParamValues()[0] != vals[0] && bound.Fingerprint() == c.Fingerprint() {
			t.Fatalf("trial %d: distinct values share the exact fingerprint", trial)
		}
	}
}

// TestStructuralFingerprintCollisionFuzz: independently drawn shapes
// must not collide, and every single-op structural mutation (gate
// type, operand, arity) must change the hash.
func TestStructuralFingerprintCollisionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[string]string)
	for trial := 0; trial < 500; trial++ {
		c := randomShape(rng, 2+rng.Intn(4))
		fp := c.StructuralFingerprint()
		sig := shapeSig(c)
		if prev, ok := seen[fp]; ok && prev != sig {
			t.Fatalf("trial %d: structural collision between distinct shapes", trial)
		}
		seen[fp] = sig
	}

	// Directed mutations on one base shape.
	base := New(3, 3)
	base.H(0)
	base.RX(0.5, 1)
	base.CX(0, 2)
	fp := base.StructuralFingerprint()
	mutations := map[string]*Circuit{}
	m := base.Copy()
	m.Ops[0].Gate = gate.X
	mutations["gate type"] = m
	m = base.Copy()
	m.Ops[2].Qubits = []int{0, 1}
	mutations["operand"] = m
	m = base.Copy()
	m.RZ(0.1, 0)
	mutations["extra op"] = m
	m = New(4, 3)
	m.H(0)
	m.RX(0.5, 1)
	m.CX(0, 2)
	mutations["register width"] = m
	for name, mc := range mutations {
		if mc.StructuralFingerprint() == fp {
			t.Errorf("mutating %s left the structural fingerprint unchanged", name)
		}
	}

	// The structural and exact domains are separated even for
	// parameter-free circuits.
	free := New(2, 0)
	free.H(0)
	free.CX(0, 1)
	if free.StructuralFingerprint() == free.Fingerprint() {
		t.Error("structural and exact fingerprints share an address")
	}
}

// shapeSig is an explicit (non-hashed) shape encoding used to detect
// genuine collisions in the fuzz loop.
func shapeSig(c *Circuit) string {
	sig := make([]byte, 0, 64)
	sig = append(sig, byte(c.NumQubits), byte(c.NumClbits))
	for _, op := range c.Ops {
		sig = append(sig, byte(op.Gate), byte(len(op.Qubits)))
		for _, q := range op.Qubits {
			sig = append(sig, byte(q))
		}
		if op.Gate.ParamCount() > 0 {
			sig = append(sig, byte(len(op.Params)))
		} else {
			for _, p := range op.Params {
				b := math.Float64bits(p)
				sig = append(sig, byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
					byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
			}
		}
		sig = append(sig, byte(op.Clbit))
	}
	return string(sig)
}

// TestBindParams covers the flat-vector contract: program order,
// length checking, and no aliasing with the source circuit.
func TestBindParams(t *testing.T) {
	c := New(2, 0)
	c.RX(0.1, 0)
	c.H(1)
	c.CP(0.2, 0, 1)
	c.RZ(0.3, 1)
	if got := c.NumParams(); got != 3 {
		t.Fatalf("NumParams = %d, want 3", got)
	}
	want := []float64{0.1, 0.2, 0.3}
	for i, v := range c.ParamValues() {
		if v != want[i] {
			t.Fatalf("ParamValues[%d] = %g, want %g", i, v, want[i])
		}
	}
	bound, err := c.BindParams([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if vals := bound.ParamValues(); vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("bound values = %v", vals)
	}
	if vals := c.ParamValues(); vals[0] != 0.1 {
		t.Fatal("BindParams mutated the source circuit")
	}
	if _, err := c.BindParams([]float64{1}); err == nil {
		t.Fatal("BindParams accepted a short vector")
	}
}
