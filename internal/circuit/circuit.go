// Package circuit implements the "object based" circuit layer of the
// paper (Fig. 2b, left side): a Qiskit-like builder API over a list of
// gate operations. Q-GEAR's job is to take these high-level objects and
// transform them into kernel-based representations (internal/kernel),
// so this package deliberately mirrors the Qiskit surface the paper's
// listings use (qc.h(0), qc.cx(0, i), qc.measure_all()).
package circuit

import (
	"fmt"
	"strings"

	"qgear/internal/gate"
)

// Op is a single circuit operation: a gate type, its qubit operands
// (for controlled gates, Qubits[0] is the control and Qubits[1] the
// target), real parameters, and — for measurements — the classical bit
// receiving the result.
type Op struct {
	Gate   gate.Type
	Qubits []int
	Params []float64
	Clbit  int // destination classical bit for Measure ops
}

// Circuit is an ordered list of operations over NumQubits qubits and
// NumClbits classical bits.
type Circuit struct {
	Name      string
	NumQubits int
	NumClbits int
	Ops       []Op
}

// New returns an empty circuit with nq qubits and nc classical bits.
func New(nq, nc int) *Circuit {
	if nq < 0 || nc < 0 {
		panic("circuit: negative register size")
	}
	return &Circuit{NumQubits: nq, NumClbits: nc}
}

// Copy returns a deep copy of the circuit.
func (c *Circuit) Copy() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	out.Ops = make([]Op, len(c.Ops))
	for i, op := range c.Ops {
		out.Ops[i] = Op{
			Gate:   op.Gate,
			Qubits: append([]int(nil), op.Qubits...),
			Params: append([]float64(nil), op.Params...),
			Clbit:  op.Clbit,
		}
	}
	return out
}

func (c *Circuit) checkQubit(q int) {
	if q < 0 || q >= c.NumQubits {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
	}
}

// Append adds a validated operation.
func (c *Circuit) Append(g gate.Type, qubits []int, params []float64) *Circuit {
	if !g.Valid() {
		panic(fmt.Sprintf("circuit: invalid gate %v", g))
	}
	if g != gate.Barrier && len(qubits) != g.Arity() {
		panic(fmt.Sprintf("circuit: %v wants %d qubits, got %d", g, g.Arity(), len(qubits)))
	}
	if len(params) != g.ParamCount() {
		panic(fmt.Sprintf("circuit: %v wants %d params, got %d", g, g.ParamCount(), len(params)))
	}
	for _, q := range qubits {
		c.checkQubit(q)
	}
	if len(qubits) == 2 && qubits[0] == qubits[1] {
		panic(fmt.Sprintf("circuit: %v with identical operands %d", g, qubits[0]))
	}
	c.Ops = append(c.Ops, Op{Gate: g, Qubits: append([]int(nil), qubits...), Params: append([]float64(nil), params...)})
	return c
}

// H appends a Hadamard gate.
func (c *Circuit) H(q int) *Circuit { return c.Append(gate.H, []int{q}, nil) }

// X appends a Pauli-X gate.
func (c *Circuit) X(q int) *Circuit { return c.Append(gate.X, []int{q}, nil) }

// Y appends a Pauli-Y gate.
func (c *Circuit) Y(q int) *Circuit { return c.Append(gate.Y, []int{q}, nil) }

// Z appends a Pauli-Z gate.
func (c *Circuit) Z(q int) *Circuit { return c.Append(gate.Z, []int{q}, nil) }

// S appends an S gate.
func (c *Circuit) S(q int) *Circuit { return c.Append(gate.S, []int{q}, nil) }

// T appends a T gate.
func (c *Circuit) T(q int) *Circuit { return c.Append(gate.T, []int{q}, nil) }

// RX appends an X-rotation by theta.
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.Append(gate.RX, []int{q}, []float64{theta})
}

// RY appends a Y-rotation by theta.
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.Append(gate.RY, []int{q}, []float64{theta})
}

// RZ appends a Z-rotation by theta.
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.Append(gate.RZ, []int{q}, []float64{theta})
}

// P appends a phase gate diag(1, e^{iλ}).
func (c *Circuit) P(lambda float64, q int) *Circuit {
	return c.Append(gate.P, []int{q}, []float64{lambda})
}

// U3 appends a generic single-qubit rotation.
func (c *Circuit) U3(theta, phi, lambda float64, q int) *Circuit {
	return c.Append(gate.U3, []int{q}, []float64{theta, phi, lambda})
}

// CX appends a controlled-X with control ctrl and target tgt.
func (c *Circuit) CX(ctrl, tgt int) *Circuit { return c.Append(gate.CX, []int{ctrl, tgt}, nil) }

// CZ appends a controlled-Z.
func (c *Circuit) CZ(ctrl, tgt int) *Circuit { return c.Append(gate.CZ, []int{ctrl, tgt}, nil) }

// CP appends the controlled phase rotation cr1(λ) of Eq. (9).
func (c *Circuit) CP(lambda float64, ctrl, tgt int) *Circuit {
	return c.Append(gate.CP, []int{ctrl, tgt}, []float64{lambda})
}

// CRY appends a controlled Y-rotation.
func (c *Circuit) CRY(theta float64, ctrl, tgt int) *Circuit {
	return c.Append(gate.CRY, []int{ctrl, tgt}, []float64{theta})
}

// SWAP appends a swap gate.
func (c *Circuit) SWAP(a, b int) *Circuit { return c.Append(gate.SWAP, []int{a, b}, nil) }

// Barrier appends a full-register barrier (a depth synchronization
// marker, like the dashed columns in Fig. 2a).
func (c *Circuit) Barrier() *Circuit {
	c.Ops = append(c.Ops, Op{Gate: gate.Barrier})
	return c
}

// Measure appends a measurement of qubit q into classical bit cb.
func (c *Circuit) Measure(q, cb int) *Circuit {
	c.checkQubit(q)
	if cb < 0 || cb >= c.NumClbits {
		panic(fmt.Sprintf("circuit: clbit %d out of range [0,%d)", cb, c.NumClbits))
	}
	c.Ops = append(c.Ops, Op{Gate: gate.Measure, Qubits: []int{q}, Clbit: cb})
	return c
}

// MeasureAll measures qubit i into classical bit i for every qubit,
// growing the classical register if needed (Qiskit's measure_all).
func (c *Circuit) MeasureAll() *Circuit {
	if c.NumClbits < c.NumQubits {
		c.NumClbits = c.NumQubits
	}
	for q := 0; q < c.NumQubits; q++ {
		c.Measure(q, q)
	}
	return c
}

// Validate checks a circuit that was built outside the panic-guarded
// builder (e.g. loaded from a QPY file) and returns the first
// inconsistency found.
func (c *Circuit) Validate() error {
	if c.NumQubits < 0 || c.NumClbits < 0 {
		return fmt.Errorf("circuit %q: negative register size", c.Name)
	}
	for i, op := range c.Ops {
		if !op.Gate.Valid() {
			return fmt.Errorf("circuit %q op %d: invalid gate %d", c.Name, i, uint8(op.Gate))
		}
		if op.Gate != gate.Barrier && len(op.Qubits) != op.Gate.Arity() {
			return fmt.Errorf("circuit %q op %d: %v wants %d qubits, has %d",
				c.Name, i, op.Gate, op.Gate.Arity(), len(op.Qubits))
		}
		if len(op.Params) != op.Gate.ParamCount() {
			return fmt.Errorf("circuit %q op %d: %v wants %d params, has %d",
				c.Name, i, op.Gate, op.Gate.ParamCount(), len(op.Params))
		}
		for _, q := range op.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit %q op %d: qubit %d out of range", c.Name, i, q)
			}
		}
		if len(op.Qubits) == 2 && op.Qubits[0] == op.Qubits[1] {
			return fmt.Errorf("circuit %q op %d: duplicate operand %d", c.Name, i, op.Qubits[0])
		}
		if op.Gate == gate.Measure && (op.Clbit < 0 || op.Clbit >= c.NumClbits) {
			return fmt.Errorf("circuit %q op %d: clbit %d out of range", c.Name, i, op.Clbit)
		}
	}
	return nil
}

// String renders the circuit as one op per line, e.g. "cx q1, q3".
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q: %d qubits, %d clbits, %d ops\n", c.Name, c.NumQubits, c.NumClbits, len(c.Ops))
	for _, op := range c.Ops {
		b.WriteString("  ")
		b.WriteString(op.Gate.String())
		if len(op.Params) > 0 {
			b.WriteString("(")
			for i, p := range op.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%.6g", p)
			}
			b.WriteString(")")
		}
		for i, q := range op.Qubits {
			if i == 0 {
				b.WriteString(" ")
			} else {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "q%d", q)
		}
		if op.Gate == gate.Measure {
			fmt.Fprintf(&b, " -> c%d", op.Clbit)
		}
		b.WriteString("\n")
	}
	return b.String()
}
