package circuit

import "qgear/internal/gate"

// GateCounts returns the number of occurrences of each gate type.
func (c *Circuit) GateCounts() map[gate.Type]int {
	m := make(map[gate.Type]int)
	for _, op := range c.Ops {
		m[op.Gate]++
	}
	return m
}

// CountTwoQubit returns the number of two-qubit entangling gates — the
// quantity the paper's Table 2 reports as "n2q gates" and the QCrank
// cost driver (one CX per gray pixel).
func (c *Circuit) CountTwoQubit() int {
	n := 0
	for _, op := range c.Ops {
		if op.Gate.IsEntangling() {
			n++
		}
	}
	return n
}

// NumOps returns the number of operations excluding barriers.
func (c *Circuit) NumOps() int {
	n := 0
	for _, op := range c.Ops {
		if op.Gate != gate.Barrier {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the longest chain of
// ops sharing qubits, with barriers forcing a global synchronization
// level, matching Qiskit's depth().
func (c *Circuit) Depth() int {
	if c.NumQubits == 0 {
		return 0
	}
	level := make([]int, c.NumQubits)
	maxd := 0
	for _, op := range c.Ops {
		if op.Gate == gate.Barrier {
			m := 0
			for _, l := range level {
				if l > m {
					m = l
				}
			}
			for i := range level {
				level[i] = m
			}
			continue
		}
		m := 0
		for _, q := range op.Qubits {
			if level[q] > m {
				m = level[q]
			}
		}
		m++
		for _, q := range op.Qubits {
			level[q] = m
		}
		if m > maxd {
			maxd = m
		}
	}
	return maxd
}

// TwoQubitDepth returns the depth counting only two-qubit gates — the
// paper's "2q gates depth" (Fig. 6 panels), which for QCrank equals the
// sequence length because the CX ladders on different data qubits run
// in parallel.
func (c *Circuit) TwoQubitDepth() int {
	if c.NumQubits == 0 {
		return 0
	}
	level := make([]int, c.NumQubits)
	maxd := 0
	for _, op := range c.Ops {
		if !op.Gate.IsEntangling() {
			continue
		}
		m := 0
		for _, q := range op.Qubits {
			if level[q] > m {
				m = level[q]
			}
		}
		m++
		for _, q := range op.Qubits {
			level[q] = m
		}
		if m > maxd {
			maxd = m
		}
	}
	return maxd
}

// HasMeasurements reports whether any measurement op is present.
func (c *Circuit) HasMeasurements() bool {
	for _, op := range c.Ops {
		if op.Gate == gate.Measure {
			return true
		}
	}
	return false
}

// MeasuredQubits returns (qubit, clbit) pairs in program order.
func (c *Circuit) MeasuredQubits() (qubits, clbits []int) {
	for _, op := range c.Ops {
		if op.Gate == gate.Measure {
			qubits = append(qubits, op.Qubits[0])
			clbits = append(clbits, op.Clbit)
		}
	}
	return qubits, clbits
}

// RemoveMeasurements returns a copy without measure ops; the kernel
// transformation uses it when the caller wants the pure unitary.
func (c *Circuit) RemoveMeasurements() *Circuit {
	out := c.Copy()
	ops := out.Ops[:0]
	for _, op := range out.Ops {
		if op.Gate != gate.Measure {
			ops = append(ops, op)
		}
	}
	out.Ops = ops
	return out
}

// RemoveBarriers returns a copy without barrier ops.
func (c *Circuit) RemoveBarriers() *Circuit {
	out := c.Copy()
	ops := out.Ops[:0]
	for _, op := range out.Ops {
		if op.Gate != gate.Barrier {
			ops = append(ops, op)
		}
	}
	out.Ops = ops
	return out
}
