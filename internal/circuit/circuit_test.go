package circuit

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"qgear/internal/gate"
	"qgear/internal/qmath"
)

// mat4Of computes the 4×4 unitary of a two-qubit circuit (qubits 0 and
// 1, q0 = low bit) by multiplying op matrices; a test-only reference
// independent of the simulator.
func mat4Of(t *testing.T, c *Circuit) gate.Mat4 {
	t.Helper()
	if c.NumQubits != 2 {
		t.Fatalf("mat4Of wants 2 qubits, got %d", c.NumQubits)
	}
	u := gate.Identity4()
	for _, op := range c.Ops {
		var m gate.Mat4
		switch {
		case op.Gate == gate.Barrier:
			continue
		case op.Gate.Arity() == 1:
			g := gate.Matrix1(op.Gate, op.Params)
			if op.Qubits[0] == 0 {
				m = gate.Kron(gate.Identity2(), g)
			} else {
				m = gate.Kron(g, gate.Identity2())
			}
		case op.Gate == gate.SWAP:
			m = gate.Matrix2(gate.SWAP, nil)
		default:
			// Controlled gate: extract the target unitary.
			var tgt gate.Mat2
			switch op.Gate {
			case gate.CX:
				tgt = gate.Matrix1(gate.X, nil)
			case gate.CZ:
				tgt = gate.Matrix1(gate.Z, nil)
			case gate.CP:
				tgt = gate.Matrix1(gate.P, op.Params)
			case gate.CRY:
				tgt = gate.Matrix1(gate.RY, op.Params)
			default:
				t.Fatalf("mat4Of: unhandled %v", op.Gate)
			}
			if op.Qubits[0] == 1 {
				m = gate.ControlledOnHigh(tgt)
			} else {
				m = gate.ControlledOnLow(tgt)
			}
		}
		u = m.Mul(u)
	}
	return u
}

// equalUpToPhase4 reports whether a == e^{iφ}·b for some φ.
func equalUpToPhase4(a, b gate.Mat4, tol float64) bool {
	var phase complex128
	found := false
	for i := range a {
		if cmplx.Abs(b[i]) > 1e-9 {
			phase = a[i] / b[i]
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-phase*b[i]) > tol {
			return false
		}
	}
	return true
}

func TestBuilderBasics(t *testing.T) {
	c := New(3, 3)
	c.H(0).CX(0, 1).RY(0.5, 2).Measure(2, 0)
	if len(c.Ops) != 4 {
		t.Fatalf("want 4 ops, got %d", len(c.Ops))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Ops[1].Qubits[0] != 0 || c.Ops[1].Qubits[1] != 1 {
		t.Fatal("cx operands wrong")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("qubit range", func() { New(2, 0).H(2) })
	mustPanic("negative qubit", func() { New(2, 0).H(-1) })
	mustPanic("same operands", func() { New(2, 0).CX(1, 1) })
	mustPanic("clbit range", func() { New(2, 1).Measure(0, 5) })
	mustPanic("negative registers", func() { New(-1, 0) })
}

func TestCopyIsDeep(t *testing.T) {
	c := New(2, 0).RY(0.5, 0)
	d := c.Copy()
	d.Ops[0].Params[0] = 9
	d.Ops[0].Qubits[0] = 1
	if c.Ops[0].Params[0] != 0.5 || c.Ops[0].Qubits[0] != 0 {
		t.Fatal("Copy shares backing arrays")
	}
}

func TestGHZShape(t *testing.T) {
	c := GHZ(5, true)
	counts := c.GateCounts()
	if counts[gate.H] != 1 || counts[gate.CX] != 4 || counts[gate.Measure] != 5 {
		t.Fatalf("GHZ counts wrong: %v", counts)
	}
	if c.NumClbits != 5 {
		t.Fatal("MeasureAll should grow the classical register")
	}
	if !c.HasMeasurements() {
		t.Fatal("HasMeasurements false")
	}
	qs, cs := c.MeasuredQubits()
	for i := range qs {
		if qs[i] != i || cs[i] != i {
			t.Fatal("measure_all mapping wrong")
		}
	}
}

func TestDepth(t *testing.T) {
	if d := GHZ(4, false).Depth(); d != 4 {
		t.Fatalf("GHZ(4) depth = %d, want 4", d)
	}
	// Parallel single-qubit layers count once.
	c := New(3, 0).H(0).H(1).H(2)
	if d := c.Depth(); d != 1 {
		t.Fatalf("parallel H depth = %d, want 1", d)
	}
	// Barrier forces alignment: h(0); barrier; h(1) has depth 2.
	c2 := New(2, 0).H(0).Barrier().H(1)
	if d := c2.Depth(); d != 2 {
		t.Fatalf("barrier depth = %d, want 2", d)
	}
	// Without the barrier it would be 1.
	c3 := New(2, 0).H(0).H(1)
	if d := c3.Depth(); d != 1 {
		t.Fatalf("no-barrier depth = %d, want 1", d)
	}
	if d := New(0, 0).Depth(); d != 0 {
		t.Fatal("empty circuit depth != 0")
	}
}

func TestTwoQubitDepth(t *testing.T) {
	if d := GHZ(4, false).TwoQubitDepth(); d != 3 {
		t.Fatalf("GHZ(4) 2q-depth = %d, want 3", d)
	}
	// Disjoint CX pairs run in parallel: depth 1.
	c := New(4, 0).CX(0, 1).CX(2, 3)
	if d := c.TwoQubitDepth(); d != 1 {
		t.Fatalf("parallel CX 2q-depth = %d, want 1", d)
	}
	if n := c.CountTwoQubit(); n != 2 {
		t.Fatalf("CountTwoQubit = %d", n)
	}
}

func TestNumOpsExcludesBarriers(t *testing.T) {
	c := New(2, 0).H(0).Barrier().CX(0, 1)
	if n := c.NumOps(); n != 2 {
		t.Fatalf("NumOps = %d, want 2", n)
	}
}

func TestRemoveHelpers(t *testing.T) {
	c := GHZ(3, true).Barrier()
	u := c.RemoveMeasurements()
	if u.HasMeasurements() {
		t.Fatal("measurements not removed")
	}
	nb := c.RemoveBarriers()
	for _, op := range nb.Ops {
		if op.Gate == gate.Barrier {
			t.Fatal("barrier not removed")
		}
	}
	// The original is untouched.
	if !c.HasMeasurements() {
		t.Fatal("RemoveMeasurements mutated the original")
	}
}

func TestInverseIsIdentity(t *testing.T) {
	c := New(2, 0)
	c.H(0).RY(0.7, 1).CX(0, 1).CP(0.3, 1, 0).T(0).SWAP(0, 1).RZ(-1.2, 0)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	comp, err := c.Compose(inv)
	if err != nil {
		t.Fatal(err)
	}
	u := mat4Of(t, comp)
	if !equalUpToPhase4(u, gate.Identity4(), 1e-10) {
		t.Fatalf("circuit·inverse != I:\n%v", u)
	}
}

func TestInverseRejectsMeasurement(t *testing.T) {
	if _, err := GHZ(2, true).Inverse(); err == nil {
		t.Fatal("expected error inverting measured circuit")
	}
}

func TestComposeSizeCheck(t *testing.T) {
	small := New(1, 0)
	big := New(3, 0)
	if _, err := small.Compose(big); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := big.Compose(small); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := []Circuit{
		{NumQubits: 2, Ops: []Op{{Gate: gate.Type(200), Qubits: []int{0}}}},
		{NumQubits: 2, Ops: []Op{{Gate: gate.CX, Qubits: []int{0}}}},
		{NumQubits: 2, Ops: []Op{{Gate: gate.RY, Qubits: []int{0}}}},
		{NumQubits: 2, Ops: []Op{{Gate: gate.H, Qubits: []int{7}}}},
		{NumQubits: 2, Ops: []Op{{Gate: gate.CX, Qubits: []int{1, 1}}}},
		{NumQubits: 2, NumClbits: 1, Ops: []Op{{Gate: gate.Measure, Qubits: []int{0}, Clbit: 3}}},
		{NumQubits: -1},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTranspileProducesNativeSet(t *testing.T) {
	c := New(2, 2)
	c.H(0).X(1).Y(0).Z(1).S(0).T(1).RX(0.3, 0).RY(0.4, 1).RZ(0.5, 0)
	c.P(0.6, 1).U3(0.1, 0.2, 0.3, 0).CX(0, 1).CZ(1, 0).CP(0.7, 0, 1)
	c.CRY(0.8, 1, 0).SWAP(0, 1).Barrier().Measure(0, 0)
	nat := c.Transpile(BasisNative)
	if err := nat.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, op := range nat.Ops {
		switch op.Gate {
		case gate.H, gate.RY, gate.RZ, gate.CX, gate.Measure, gate.Barrier:
		default:
			t.Fatalf("non-native gate %v survived transpile", op.Gate)
		}
	}
	// BasisKernel transpile is the identity.
	k := c.Transpile(BasisKernel)
	if len(k.Ops) != len(c.Ops) {
		t.Fatal("kernel transpile should not rewrite")
	}
}

func TestTranspilePreservesUnitary(t *testing.T) {
	// Every decomposable gate, checked as a 2-qubit matrix up to global
	// phase against the untranspiled circuit.
	builders := map[string]func(*Circuit){
		"x":    func(c *Circuit) { c.X(0) },
		"y":    func(c *Circuit) { c.Y(1) },
		"z":    func(c *Circuit) { c.Z(0) },
		"s":    func(c *Circuit) { c.S(0) },
		"sdg":  func(c *Circuit) { c.Append(gate.Sdg, []int{0}, nil) },
		"t":    func(c *Circuit) { c.T(1) },
		"tdg":  func(c *Circuit) { c.Append(gate.Tdg, []int{1}, nil) },
		"rx":   func(c *Circuit) { c.RX(0.9, 0) },
		"p":    func(c *Circuit) { c.P(1.1, 1) },
		"u3":   func(c *Circuit) { c.U3(0.4, 1.5, -0.6, 0) },
		"cz":   func(c *Circuit) { c.CZ(0, 1) },
		"cp":   func(c *Circuit) { c.CP(0.77, 1, 0) },
		"cry":  func(c *Circuit) { c.CRY(-1.1, 0, 1) },
		"swap": func(c *Circuit) { c.SWAP(0, 1) },
		"mix": func(c *Circuit) {
			c.H(0).RX(0.3, 1).CP(0.5, 0, 1).U3(1, 2, 3, 0).SWAP(0, 1).CZ(1, 0)
		},
	}
	for name, build := range builders {
		orig := New(2, 0)
		build(orig)
		nat := orig.Transpile(BasisNative)
		if !equalUpToPhase4(mat4Of(t, nat), mat4Of(t, orig), 1e-9) {
			t.Errorf("%s: transpiled unitary differs", name)
		}
	}
}

func TestTranspileRandomCircuitsProperty(t *testing.T) {
	// Random 2-qubit circuits keep their unitary (up to phase) and land
	// in the native set.
	r := qmath.NewRNG(1234)
	for trial := 0; trial < 40; trial++ {
		c := New(2, 0)
		for i := 0; i < 12; i++ {
			switch r.Intn(8) {
			case 0:
				c.H(r.Intn(2))
			case 1:
				c.RX(r.Angle(), r.Intn(2))
			case 2:
				c.RY(r.Angle(), r.Intn(2))
			case 3:
				c.RZ(r.Angle(), r.Intn(2))
			case 4:
				c.CX(0, 1)
			case 5:
				c.CP(r.Angle(), 1, 0)
			case 6:
				c.SWAP(0, 1)
			case 7:
				c.U3(r.Angle(), r.Angle(), r.Angle(), r.Intn(2))
			}
		}
		nat := c.Transpile(BasisNative)
		if !equalUpToPhase4(mat4Of(t, nat), mat4Of(t, c), 1e-8) {
			t.Fatalf("trial %d: transpile changed the unitary", trial)
		}
	}
}

func TestStringRendering(t *testing.T) {
	c := New(2, 2)
	c.Name = "demo"
	c.H(0).CP(0.25, 0, 1).Measure(1, 0)
	s := c.String()
	for _, want := range []string{"demo", "h q0", "cr1(0.25) q0, q1", "measure q1 -> c0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
