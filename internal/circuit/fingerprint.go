package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable content hash of the circuit: the qubit
// and classical register sizes plus every operation (gate type, qubit
// operands, exact parameter bits, and measurement destination). Two
// circuits share a fingerprint iff they describe the same computation,
// independent of Name and of how the object was built or loaded —
// the key property a content-addressed result cache needs.
//
// The encoding is versioned: the leading byte bumps if the layout ever
// changes, so persisted fingerprints cannot silently collide across
// releases.
func (c *Circuit) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write([]byte{fingerprintVersion})
	wInt(c.NumQubits)
	wInt(c.NumClbits)
	wInt(len(c.Ops))
	for _, op := range c.Ops {
		h.Write([]byte{byte(op.Gate)})
		wInt(len(op.Qubits))
		for _, q := range op.Qubits {
			wInt(q)
		}
		wInt(len(op.Params))
		for _, p := range op.Params {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:])
		}
		wInt(op.Clbit)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprintVersion tags the Fingerprint byte layout.
const fingerprintVersion = 1
