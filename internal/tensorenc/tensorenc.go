// Package tensorenc implements the circuit encoding of §2.1 and
// Appendix B/D.1 of the paper: a quantum circuit list is converted into
// a three-dimensional tensor whose first dimension encodes per-circuit
// properties (circuit type, qubit count, gate count), second dimension
// the gate specifications (gate category, control qubit, target qubit),
// and third dimension the unified gate parameters.
//
// The tensors are pre-allocated at a fixed capacity d satisfying
// Lemma B.2 (d ≥ max(|G|, |C|)) and overridden in place as circuits are
// processed, which is what makes the conversion time constant per gate
// and independent of entanglement depth (Appendix C). The encoding
// persists to the HDF5-lite container with the Eq. (8) one-hot matrix
// and generation metadata attached.
package tensorenc

import (
	"fmt"
	"strings"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/hdf5"
)

// Circuit type ids stored in the circ_type tensor (first dimension of
// the encoding; "the type of circuit" in §2.1).
const (
	TypeOther int64 = iota
	TypeRandom
	TypeQFT
	TypeQCrank
)

// InferType maps a circuit name to its type id by prefix convention:
// the workload generators name their outputs "random_*", "qft_*",
// "qcrank_*".
func InferType(name string) int64 {
	switch {
	case strings.HasPrefix(name, "random"):
		return TypeRandom
	case strings.HasPrefix(name, "qft"):
		return TypeQFT
	case strings.HasPrefix(name, "qcrank"):
		return TypeQCrank
	default:
		return TypeOther
	}
}

// emptySlot marks unused tensor rows beyond a circuit's gate count.
const emptySlot int64 = -1

// noQubit marks an absent control/target operand.
const noQubit int64 = -1

// Encoding is the in-memory three-dimensional tensor set. All slices
// are row-major with the circuit index outermost.
type Encoding struct {
	NumCircuits int
	Capacity    int // d of Lemma B.2

	// CircType holds (type id, num qubits, gate count) per circuit.
	CircType []int64 // [NumCircuits][3]
	// GateType holds (gate id, control/aux, target) per gate slot; the
	// aux slot carries the classical bit for measure ops.
	GateType []int64 // [NumCircuits][Capacity][3]
	// GateParam holds one rotation angle per gate slot.
	GateParam []float64 // [NumCircuits][Capacity]
	// Names preserves circuit names (joined metadata, not part of the
	// numeric tensors).
	Names []string
}

// Encode builds the tensor encoding of the circuit list with the given
// capacity; capacity <= 0 auto-sizes to the largest gate count, per
// Lemma B.2. Gates with more than one parameter (u3) are rejected —
// callers transpile to the native basis first, matching the paper's
// "transpiled from native gate sets" step.
func Encode(circuits []*circuit.Circuit, capacity int) (*Encoding, error) {
	maxGates := 0
	for _, c := range circuits {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("tensorenc: %w", err)
		}
		if n := len(c.Ops); n > maxGates {
			maxGates = n
		}
	}
	if capacity <= 0 {
		capacity = maxGates
	}
	if capacity < maxGates {
		return nil, fmt.Errorf("tensorenc: capacity %d violates Lemma B.2: largest circuit has %d gates", capacity, maxGates)
	}
	n := len(circuits)
	e := &Encoding{
		NumCircuits: n,
		Capacity:    capacity,
		CircType:    make([]int64, n*3),
		GateType:    make([]int64, n*capacity*3),
		GateParam:   make([]float64, n*capacity),
		Names:       make([]string, n),
	}
	// Pre-fill gate slots with the empty marker; encoding then
	// overrides in place (the fixed-size override strategy of the
	// Lemma B.2 proof).
	for i := range e.GateType {
		e.GateType[i] = emptySlot
	}
	for ci, c := range circuits {
		e.Names[ci] = c.Name
		e.CircType[ci*3+0] = InferType(c.Name)
		e.CircType[ci*3+1] = int64(c.NumQubits)
		e.CircType[ci*3+2] = int64(len(c.Ops))
		for gi, op := range c.Ops {
			if op.Gate.ParamCount() > 1 {
				return nil, fmt.Errorf("tensorenc: circuit %q op %d: %v has %d params; transpile to the native basis first",
					c.Name, gi, op.Gate, op.Gate.ParamCount())
			}
			base := (ci*capacity + gi) * 3
			e.GateType[base+0] = int64(op.Gate)
			switch {
			case op.Gate == gate.Measure:
				e.GateType[base+1] = int64(op.Clbit)
				e.GateType[base+2] = int64(op.Qubits[0])
			case len(op.Qubits) == 2:
				e.GateType[base+1] = int64(op.Qubits[0])
				e.GateType[base+2] = int64(op.Qubits[1])
			case len(op.Qubits) == 1:
				e.GateType[base+1] = noQubit
				e.GateType[base+2] = int64(op.Qubits[0])
			default: // barrier
				e.GateType[base+1] = noQubit
				e.GateType[base+2] = noQubit
			}
			if len(op.Params) == 1 {
				e.GateParam[ci*capacity+gi] = op.Params[0]
			}
		}
	}
	return e, nil
}

// Decode reconstructs the circuit list from the tensors.
func (e *Encoding) Decode() ([]*circuit.Circuit, error) {
	if len(e.CircType) != e.NumCircuits*3 ||
		len(e.GateType) != e.NumCircuits*e.Capacity*3 ||
		len(e.GateParam) != e.NumCircuits*e.Capacity {
		return nil, fmt.Errorf("tensorenc: tensor dimensions inconsistent with header (%d circuits × %d capacity)",
			e.NumCircuits, e.Capacity)
	}
	out := make([]*circuit.Circuit, e.NumCircuits)
	for ci := 0; ci < e.NumCircuits; ci++ {
		nq := int(e.CircType[ci*3+1])
		ng := int(e.CircType[ci*3+2])
		if ng > e.Capacity {
			return nil, fmt.Errorf("tensorenc: circuit %d claims %d gates beyond capacity %d", ci, ng, e.Capacity)
		}
		c := &circuit.Circuit{NumQubits: nq}
		if ci < len(e.Names) {
			c.Name = e.Names[ci]
		}
		for gi := 0; gi < ng; gi++ {
			base := (ci*e.Capacity + gi) * 3
			gid := e.GateType[base+0]
			if gid == emptySlot {
				return nil, fmt.Errorf("tensorenc: circuit %d gate %d is an empty slot inside the declared gate count", ci, gi)
			}
			g := gate.Type(gid)
			if !g.Valid() {
				return nil, fmt.Errorf("tensorenc: circuit %d gate %d: invalid gate id %d", ci, gi, gid)
			}
			op := circuit.Op{Gate: g}
			a, b := e.GateType[base+1], e.GateType[base+2]
			switch {
			case g == gate.Measure:
				op.Qubits = []int{int(b)}
				op.Clbit = int(a)
				if op.Clbit >= c.NumClbits {
					c.NumClbits = op.Clbit + 1
				}
			case g == gate.Barrier:
			case g.Arity() == 2:
				op.Qubits = []int{int(a), int(b)}
			default:
				op.Qubits = []int{int(b)}
			}
			if g.ParamCount() == 1 {
				op.Params = []float64{e.GateParam[ci*e.Capacity+gi]}
			}
			c.Ops = append(c.Ops, op)
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("tensorenc: decoded circuit %d invalid: %w", ci, err)
		}
		out[ci] = c
	}
	return out, nil
}

// Dataset and attribute names inside the HDF5 container.
const (
	DSCircType  = "circ_type"
	DSGateType  = "gate_type"
	DSGateParam = "gate_param"
	DSNames     = "names"
	DSOneHot    = "one_hot"
	AttrNumCirc = "num_circ"
	AttrCap     = "capacity"
	AttrVersion = "version"
)

// ToHDF5 packs the encoding into an HDF5-lite file under the given
// group path, including the Eq. (8) one-hot matrix and metadata
// attributes.
func (e *Encoding) ToHDF5(group string) (*hdf5.File, error) {
	f := hdf5.NewFile()
	p := func(name string) string { return group + "/" + name }
	if err := f.PutInt64s(p(DSCircType), e.CircType, e.NumCircuits, 3); err != nil {
		return nil, err
	}
	if err := f.PutInt64s(p(DSGateType), e.GateType, e.NumCircuits, e.Capacity, 3); err != nil {
		return nil, err
	}
	if err := f.PutFloat64s(p(DSGateParam), e.GateParam, e.NumCircuits, e.Capacity); err != nil {
		return nil, err
	}
	if err := f.PutUint8s(p(DSNames), []byte(strings.Join(e.Names, "\n"))); err != nil {
		return nil, err
	}
	oh := gate.OneHot()
	flat := make([]float64, 0, gate.OneHotSize*gate.OneHotSize)
	for i := 0; i < gate.OneHotSize; i++ {
		flat = append(flat, oh[i][:]...)
	}
	if err := f.PutFloat64s(p(DSOneHot), flat, gate.OneHotSize, gate.OneHotSize); err != nil {
		return nil, err
	}
	if err := f.SetAttr(group, AttrNumCirc, hdf5.IntAttr(int64(e.NumCircuits))); err != nil {
		return nil, err
	}
	if err := f.SetAttr(group, AttrCap, hdf5.IntAttr(int64(e.Capacity))); err != nil {
		return nil, err
	}
	if err := f.SetAttr(group, AttrVersion, hdf5.IntAttr(1)); err != nil {
		return nil, err
	}
	return f, nil
}

// FromHDF5 unpacks an encoding from the given group of an HDF5-lite
// file.
func FromHDF5(f *hdf5.File, group string) (*Encoding, error) {
	p := func(name string) string { return group + "/" + name }
	nAttr, err := f.Attr(group, AttrNumCirc)
	if err != nil {
		return nil, err
	}
	capAttr, err := f.Attr(group, AttrCap)
	if err != nil {
		return nil, err
	}
	e := &Encoding{NumCircuits: int(nAttr.I), Capacity: int(capAttr.I)}
	if e.NumCircuits < 0 || e.Capacity < 0 {
		return nil, fmt.Errorf("tensorenc: negative dimensions in metadata")
	}
	var shape []int
	if e.CircType, shape, err = f.Int64s(p(DSCircType)); err != nil {
		return nil, err
	}
	if len(shape) != 2 || shape[0] != e.NumCircuits || shape[1] != 3 {
		return nil, fmt.Errorf("tensorenc: circ_type shape %v inconsistent with %d circuits", shape, e.NumCircuits)
	}
	if e.GateType, shape, err = f.Int64s(p(DSGateType)); err != nil {
		return nil, err
	}
	if len(shape) != 3 || shape[0] != e.NumCircuits || shape[1] != e.Capacity || shape[2] != 3 {
		return nil, fmt.Errorf("tensorenc: gate_type shape %v inconsistent", shape)
	}
	if e.GateParam, shape, err = f.Float64s(p(DSGateParam)); err != nil {
		return nil, err
	}
	if len(shape) != 2 || shape[0] != e.NumCircuits || shape[1] != e.Capacity {
		return nil, fmt.Errorf("tensorenc: gate_param shape %v inconsistent", shape)
	}
	raw, _, err := f.Uint8s(p(DSNames))
	if err != nil {
		return nil, err
	}
	if len(raw) > 0 {
		e.Names = strings.Split(string(raw), "\n")
	}
	if len(e.Names) < e.NumCircuits {
		pad := make([]string, e.NumCircuits-len(e.Names))
		e.Names = append(e.Names, pad...)
	}
	return e, nil
}

// SaveFile writes the encoding to an HDF5-lite file at path with flate
// compression (the Appendix C configuration).
func (e *Encoding) SaveFile(path, group string) error {
	f, err := e.ToHDF5(group)
	if err != nil {
		return err
	}
	return f.SaveFile(path, hdf5.SaveOptions{Compression: hdf5.CompressionFlate})
}

// LoadFile reads an encoding back from path.
func LoadFile(path, group string) (*Encoding, error) {
	f, err := hdf5.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return FromHDF5(f, group)
}
