package tensorenc

import (
	"path/filepath"
	"reflect"
	"testing"

	"qgear/internal/circuit"
	"qgear/internal/gate"
	"qgear/internal/hdf5"
	"qgear/internal/qmath"
)

func sampleCircuits() []*circuit.Circuit {
	a := circuit.GHZ(4, true)
	a.Name = "random_short_0"
	b := circuit.New(3, 1)
	b.Name = "qft_3q"
	b.H(0).CP(0.5, 0, 1).RY(1.25, 2).Barrier().Measure(2, 0)
	c := circuit.New(2, 0)
	c.Name = "qcrank_img"
	c.RY(0.7, 0).CX(0, 1).RZ(-0.3, 1)
	return []*circuit.Circuit{a, b, c}
}

func normalize(c *circuit.Circuit) *circuit.Circuit {
	out := c.Copy()
	for i := range out.Ops {
		if len(out.Ops[i].Qubits) == 0 {
			out.Ops[i].Qubits = nil
		}
		if len(out.Ops[i].Params) == 0 {
			out.Ops[i].Params = nil
		}
	}
	return out
}

func TestInferType(t *testing.T) {
	cases := map[string]int64{
		"random_short_0": TypeRandom,
		"qft_30q":        TypeQFT,
		"qcrank_zebra":   TypeQCrank,
		"ghz_5q":         TypeOther,
	}
	for name, want := range cases {
		if got := InferType(name); got != want {
			t.Errorf("InferType(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleCircuits()
	e, err := Encode(want, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumCircuits != 3 {
		t.Fatalf("NumCircuits = %d", e.NumCircuits)
	}
	// Auto capacity = largest circuit (GHZ(4): 1 h + 3 cx + 4 measure = 8).
	if e.Capacity != 8 {
		t.Fatalf("Capacity = %d, want 8", e.Capacity)
	}
	got, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		w := normalize(want[i])
		g := normalize(got[i])
		// Decode reconstructs NumClbits from the measures actually
		// present, which can be tighter than the builder's register.
		w.NumClbits = g.NumClbits
		if !reflect.DeepEqual(w, g) {
			t.Errorf("circuit %d:\nwant %+v\ngot  %+v", i, w, g)
		}
	}
}

func TestCircTypeRows(t *testing.T) {
	e, err := Encode(sampleCircuits(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: random type, 4 qubits, 8 gates.
	if e.CircType[0] != TypeRandom || e.CircType[1] != 4 || e.CircType[2] != 8 {
		t.Fatalf("circ_type row 0 = %v", e.CircType[:3])
	}
	// Row 1: qft type, 3 qubits, 5 gates.
	if e.CircType[3] != TypeQFT || e.CircType[4] != 3 || e.CircType[5] != 5 {
		t.Fatalf("circ_type row 1 = %v", e.CircType[3:6])
	}
}

func TestEmptySlotsPadding(t *testing.T) {
	e, err := Encode(sampleCircuits(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.Capacity != 16 {
		t.Fatal("explicit capacity ignored")
	}
	// Circuit 2 has 3 gates; slots 3..15 must be empty markers.
	for gi := 3; gi < 16; gi++ {
		if e.GateType[(2*16+gi)*3] != emptySlot {
			t.Fatalf("slot %d not empty", gi)
		}
	}
	// Decode must still work with padding present.
	if _, err := e.Decode(); err != nil {
		t.Fatal(err)
	}
}

func TestLemmaB2CapacityViolation(t *testing.T) {
	if _, err := Encode(sampleCircuits(), 2); err == nil {
		t.Fatal("undersized capacity accepted (violates Lemma B.2)")
	}
}

func TestEncodeRejectsMultiParamGates(t *testing.T) {
	c := circuit.New(1, 0).U3(1, 2, 3, 0)
	if _, err := Encode([]*circuit.Circuit{c}, 0); err == nil {
		t.Fatal("u3 accepted without transpile")
	}
	// After transpiling to the native basis it encodes fine.
	if _, err := Encode([]*circuit.Circuit{c.Transpile(circuit.BasisNative)}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsInvalidCircuit(t *testing.T) {
	bad := &circuit.Circuit{NumQubits: 1, Ops: []circuit.Op{{Gate: gate.H, Qubits: []int{9}}}}
	if _, err := Encode([]*circuit.Circuit{bad}, 0); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	e, err := Encode(sampleCircuits(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a gate id inside the declared gate range.
	e2 := *e
	e2.GateType = append([]int64(nil), e.GateType...)
	e2.GateType[0] = 200
	if _, err := e2.Decode(); err == nil {
		t.Fatal("invalid gate id accepted")
	}
	// Gate count beyond capacity.
	e3 := *e
	e3.CircType = append([]int64(nil), e.CircType...)
	e3.CircType[2] = int64(e.Capacity + 5)
	if _, err := e3.Decode(); err == nil {
		t.Fatal("oversized gate count accepted")
	}
	// Inconsistent tensor lengths.
	e4 := *e
	e4.GateParam = e4.GateParam[:1]
	if _, err := e4.Decode(); err == nil {
		t.Fatal("inconsistent tensors accepted")
	}
	// Empty slot inside the declared range.
	e5 := *e
	e5.GateType = append([]int64(nil), e.GateType...)
	e5.GateType[0] = emptySlot
	if _, err := e5.Decode(); err == nil {
		t.Fatal("empty slot inside gate range accepted")
	}
}

func TestHDF5RoundTrip(t *testing.T) {
	e, err := Encode(sampleCircuits(), 12)
	if err != nil {
		t.Fatal(err)
	}
	f, err := e.ToHDF5("circuits")
	if err != nil {
		t.Fatal(err)
	}
	// The one-hot matrix of Eq. (8) must be present and identity.
	oh, shape, err := f.Float64s("circuits/" + DSOneHot)
	if err != nil || shape[0] != gate.OneHotSize {
		t.Fatalf("one-hot missing: %v", err)
	}
	for i := 0; i < gate.OneHotSize; i++ {
		if oh[i*gate.OneHotSize+i] != 1 {
			t.Fatal("one-hot diagonal wrong")
		}
	}
	back, err := FromHDF5(f, "circuits")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, back) {
		t.Fatalf("hdf5 round trip differs:\n%+v\n%+v", e, back)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "enc.h5")
	e, err := Encode(sampleCircuits(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveFile(path, "circ"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, "circ")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 || cs[0].Name != "random_short_0" {
		t.Fatal("file round trip lost circuits")
	}
}

func TestFromHDF5ShapeValidation(t *testing.T) {
	e, err := Encode(sampleCircuits(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := e.ToHDF5("g")
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the circuit count in the metadata.
	if err := f.SetAttr("g", AttrNumCirc, hdf5.IntAttr(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := FromHDF5(f, "g"); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	r := qmath.NewRNG(2026)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(5)
		nops := r.Intn(40)
		c := circuit.New(n, n)
		c.Name = "random_prop"
		for i := 0; i < nops; i++ {
			q := r.Intn(n)
			q2 := (q + 1 + r.Intn(n-1)) % n
			switch r.Intn(6) {
			case 0:
				c.H(q)
			case 1:
				c.RY(r.Angle(), q)
			case 2:
				c.RZ(r.Angle(), q)
			case 3:
				c.CX(q, q2)
			case 4:
				c.Barrier()
			case 5:
				c.Measure(q, r.Intn(n))
			}
		}
		e, err := Encode([]*circuit.Circuit{c}, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Decode()
		if err != nil {
			t.Fatal(err)
		}
		w := normalize(c)
		g := normalize(got[0])
		w.NumClbits = g.NumClbits
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("trial %d: round trip differs", trial)
		}
	}
}
