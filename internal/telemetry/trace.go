package telemetry

import "time"

// The pipeline stage names a job trace can carry. Every span recorded
// anywhere in the pipeline uses one of these, and the service
// aggregates them into the qgear_stage_duration_seconds{stage=...}
// histogram family — the per-stage breakdown is the measurement
// substrate for kernel-tuning work (you cannot tune what you cannot
// measure).
const (
	// StageQueueWait is submit → worker dequeue.
	StageQueueWait = "queue_wait"
	// StagePlanCache is compiled-plan resolution overhead: cache
	// lookup, single-flight waits, and spill-lookaside checks — minus
	// any fresh compile or store load, which get their own spans.
	StagePlanCache = "plan_cache"
	// StageCompile is a fresh circuit→kernel transform + plan compile.
	StageCompile = "compile"
	// StageExecute is gate execution proper (plan or per-gate sweep).
	// On the distributed target it excludes exchange waits, which are
	// reported under StageExchange.
	StageExecute = "execute"
	// StageExchange is the root rank's pairwise buffer-exchange wait
	// inside a distributed execution.
	StageExchange = "exchange"
	// StageTranspile is the pennylane target's per-gate re-lowering
	// overhead (the §4 diagnosis), kept separate from execution.
	StageTranspile = "transpile"
	// StageReadout is probability readout from the final state
	// (including lazy permutation materialization).
	StageReadout = "readout"
	// StageSample is shot sampling from the probability vector.
	StageSample = "sample"
	// StageExpectation is the Pauli-term reduction of an
	// expectation-value job.
	StageExpectation = "expectation_reduce"
	// StageRebind is parameter rebinding during a sweep: patching a
	// compiled plan's value-derived matrices to a new sweep point
	// without re-planning. One aggregated span covers all points of a
	// sweep job.
	StageRebind = "rebind"
	// StageStoreLoad is a persistent-store artifact load (result or
	// plan).
	StageStoreLoad = "store_load"
	// StageSpill is a persistent-store artifact write. Spills happen
	// off the serving path, so the stage appears in the registry
	// histograms but never in a job trace.
	StageSpill = "spill"
)

// Stages lists every pipeline stage name, in pipeline order. Servers
// pre-register one stage-latency histogram per entry so the per-span
// hot path can index a plain map instead of taking the registry lock.
func Stages() []string {
	return []string{
		StageQueueWait, StagePlanCache, StageCompile, StageRebind,
		StageExecute, StageExchange, StageTranspile, StageReadout,
		StageSample, StageExpectation, StageStoreLoad, StageSpill,
	}
}

// Span is one timed pipeline stage of a job. Durations are integer
// nanoseconds so span sums are exact.
type Span struct {
	Stage      string `json:"stage"`
	DurationNS int64  `json:"ns"`
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Trace is the ordered stage breakdown of one job, attached to
// backend.Result and returned in the /v1/results payload. Stages are
// sequential and non-overlapping, so the span sum never exceeds the
// job's wall time. A Trace is built single-threaded while its job
// executes and read-only afterwards; results served from the cache
// share the original execution's trace (the Cached flag on the job
// marks that case).
type Trace struct {
	Spans []Span `json:"spans"`
}

// Add appends a span. Zero and negative durations are dropped — a
// stage that did not happen (cache hit, no shots) simply has no span.
func (t *Trace) Add(stage string, d time.Duration) {
	if d <= 0 {
		return
	}
	t.Spans = append(t.Spans, Span{Stage: stage, DurationNS: int64(d)})
}

// Append copies every span of other onto t (no-op for a nil other).
func (t *Trace) Append(other *Trace) {
	if other == nil {
		return
	}
	t.Spans = append(t.Spans, other.Spans...)
}

// Sum returns the total traced time — at most the job's wall time,
// since stages are sequential.
func (t *Trace) Sum() time.Duration {
	if t == nil {
		return 0
	}
	var ns int64
	for _, s := range t.Spans {
		ns += s.DurationNS
	}
	return time.Duration(ns)
}

// Clone returns an independent copy (nil in, nil out).
func (t *Trace) Clone() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{Spans: append([]Span(nil), t.Spans...)}
}
