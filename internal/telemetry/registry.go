// Package telemetry is the zero-dependency metrics substrate of the
// serving layer: a registry of counters, gauges, and exponential
// latency histograms with Prometheus text-format exposition, plus the
// per-job stage Trace that travels with backend results.
//
// Three metric flavors cover every signal the server produces:
//
//   - direct instruments (Counter, Gauge, Histogram) are lock-free
//     atomics, cheap enough for per-job hot paths;
//   - callback instruments (CounterFunc, GaugeFunc) are read at scrape
//     time, so counters that already live behind the server's mutex
//     (cache hits, store spills, ...) are exposed without duplicate
//     bookkeeping — /metrics and /v1/stats can never disagree;
//   - histograms share the power-of-two microsecond bucket shape of
//     the service latency histograms, exposed cumulatively in seconds
//     with a proper +Inf bucket.
//
// Exposition never invokes callbacks while holding the registry lock
// (the structure is snapshotted first), so a callback is free to take
// the server mutex even though server code registers metrics and
// observes histograms concurrently with scrapes.
package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels name one series within a metric family. A nil or empty map is
// the unlabeled series.
type Labels map[string]string

// Kind is the exposition type of a metric family.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (negative deltas are ignored:
// counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: HELP, TYPE, and every label combination
// observed under it.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
}

// series is one label combination of a family. Exactly one of the
// value fields is populated, matching the family kind (fn may stand in
// for counter or gauge).
type series struct {
	pairs   []string // rendered `name="escaped"` pairs, sorted by label name
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// renderPairs validates and renders labels as sorted, escaped
// `name="value"` pairs. The joined form keys the series map.
func renderPairs(labels Labels) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRE.MatchString(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = k + `="` + escapeLabelValue(labels[k]) + `"`
	}
	return pairs
}

// escapeLabelValue applies the exposition-format label escapes:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// bindSeries resolves the series for (name, labels), creating family
// and series as needed, and invokes bind on it while r.mu is still
// held. Lazy instrument creation must be atomic with the lookup: two
// first-use callers racing on the same series would otherwise each
// allocate an instrument, silently splitting observations between
// them (and the unsynchronized write would race with snapshot()).
// A name reused with a different kind panics — that is a programming
// error, not a runtime condition.
func (r *Registry) bindSeries(name, help string, kind Kind, labels Labels, bind func(*series)) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	pairs := renderPairs(labels)
	key := strings.Join(pairs, ",")
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{pairs: pairs}
		f.series[key] = s
	}
	bind(s)
}

// Counter returns the counter for (name, labels), creating it on first
// use. Repeat calls return the same instance.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	var c *Counter
	r.bindSeries(name, help, KindCounter, labels, func(s *series) {
		if s.counter == nil && s.fn == nil {
			s.counter = &Counter{}
		}
		if s.counter == nil {
			panic(fmt.Sprintf("telemetry: metric %q series already bound to a callback", name))
		}
		c = s.counter
	})
	return c
}

// CounterFunc registers a callback-backed counter series: fn is read
// at every scrape and must be monotonically non-decreasing.
// Re-registering the same series replaces the callback.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.bindSeries(name, help, KindCounter, labels, func(s *series) {
		if s.counter != nil {
			panic(fmt.Sprintf("telemetry: metric %q series already bound to a direct counter", name))
		}
		s.fn = fn
	})
}

// Gauge returns the gauge for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	var g *Gauge
	r.bindSeries(name, help, KindGauge, labels, func(s *series) {
		if s.gauge == nil && s.fn == nil {
			s.gauge = &Gauge{}
		}
		if s.gauge == nil {
			panic(fmt.Sprintf("telemetry: metric %q series already bound to a callback", name))
		}
		g = s.gauge
	})
	return g
}

// GaugeFunc registers a callback-backed gauge series, read at every
// scrape. Re-registering the same series replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.bindSeries(name, help, KindGauge, labels, func(s *series) {
		if s.gauge != nil {
			panic(fmt.Sprintf("telemetry: metric %q series already bound to a direct gauge", name))
		}
		s.fn = fn
	})
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. The bucket shape is fixed: power-of-two microsecond
// bounds from 1µs to ~0.5s plus +Inf (see HistogramBuckets).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	var h *Histogram
	r.bindSeries(name, help, KindHistogram, labels, func(s *series) {
		if s.hist == nil {
			s.hist = &Histogram{}
		}
		h = s.hist
	})
	return h
}

// famSnap/serSnap are the scrape-time copies rendered without the
// registry lock, so callback metrics may take locks of their own.
type famSnap struct {
	name, help string
	kind       Kind
	series     []serSnap
}

type serSnap struct {
	pairs   []string
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// snapshot copies the registry structure under the lock.
func (r *Registry) snapshot() []famSnap {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]famSnap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fs := famSnap{name: f.name, help: f.help, kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			fs.series = append(fs.series, serSnap{pairs: s.pairs, counter: s.counter, gauge: s.gauge, fn: s.fn, hist: s.hist})
		}
		out = append(out, fs)
	}
	r.mu.Unlock()
	return out
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelBlock renders pairs (plus an optional extra pair, e.g. le=...)
// as the {..} block, or the empty string for the unlabeled series.
func labelBlock(pairs []string, extra string) string {
	if len(pairs) == 0 && extra == "" {
		return ""
	}
	all := pairs
	if extra != "" {
		all = append(append([]string(nil), pairs...), extra)
	}
	return "{" + strings.Join(all, ",") + "}"
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): one HELP and one TYPE line per family,
// families sorted by name, series sorted by label signature,
// histograms rendered cumulatively with le bounds in seconds and a
// final +Inf bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf bytes.Buffer
	for _, f := range r.snapshot() {
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHistogram(&buf, f.name, s.pairs, s.hist.Snapshot())
			case s.fn != nil:
				fmt.Fprintf(&buf, "%s%s %s\n", f.name, labelBlock(s.pairs, ""), formatValue(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&buf, "%s%s %s\n", f.name, labelBlock(s.pairs, ""), formatValue(s.counter.Value()))
			case s.gauge != nil:
				fmt.Fprintf(&buf, "%s%s %s\n", f.name, labelBlock(s.pairs, ""), formatValue(s.gauge.Value()))
			}
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with
// le in seconds, then _sum (seconds) and _count.
func writeHistogram(buf *bytes.Buffer, name string, pairs []string, d HistogramData) {
	var cum uint64
	for i, c := range d.Counts {
		cum += c
		le := `le="` + formatValue(BucketBoundSeconds(i)) + `"`
		fmt.Fprintf(buf, "%s_bucket%s %d\n", name, labelBlock(pairs, le), cum)
	}
	fmt.Fprintf(buf, "%s_sum%s %s\n", name, labelBlock(pairs, ""), formatValue(float64(d.SumNS)/1e9))
	fmt.Fprintf(buf, "%s_count%s %d\n", name, labelBlock(pairs, ""), d.N)
}

// Handler serves the registry at a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}
