package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memStatsTTL bounds how often a scrape re-reads runtime.MemStats —
// the read briefly stops the world, so several memstats-backed series
// in one scrape share a single read.
const memStatsTTL = 100 * time.Millisecond

// RegisterRuntime adds the Go runtime metric families: goroutine
// count, heap/total allocation, GC cycles and pause time, and process
// uptime. All memstats-backed series share one cached ReadMemStats per
// scrape window.
func (r *Registry) RegisterRuntime() {
	start := time.Now()
	var mu sync.Mutex
	var ms runtime.MemStats
	var last time.Time
	mem := func(read func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			if last.IsZero() || time.Since(last) > memStatsTTL {
				runtime.ReadMemStats(&ms)
				last = time.Now()
			}
			return read(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.Sys) }))
	r.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }))
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		mem(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	r.GaugeFunc("process_uptime_seconds", "Seconds since this registry was created.", nil,
		func() float64 { return time.Since(start).Seconds() })
}
