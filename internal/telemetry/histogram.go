package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the number of finite power-of-two microsecond
// buckets in every telemetry histogram: bucket i (i >= 1) counts
// observations with ceil(log2(µs)) == i, i.e. durations in
// (2^(i-1), 2^i] µs; bucket 0 counts observations of at most 1µs.
// Upper bounds are inclusive, matching Prometheus le semantics: an
// observation of exactly 2^i µs lands in bucket i, not i+1. The
// finite span runs 1µs .. 2^19µs (≈ 0.52s); one final overflow bucket
// with an upper bound of +Inf catches everything slower. This is the
// same shape the service layer's /v1/stats latency histograms have
// always used — the two surfaces report through one implementation.
const HistogramBuckets = 20

// Histogram is a fixed-shape exponential latency histogram, safe for
// concurrent Observe and Snapshot (all fields are atomics; a snapshot
// is per-field consistent, not a global atomic cut, which Prometheus
// scraping tolerates by design).
type Histogram struct {
	counts [HistogramBuckets + 1]atomic.Uint64
	sumNS  atomic.Int64
	n      atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	var b int
	if us > 0 {
		// ceil(log2) with an inclusive upper bound: 1µs -> 0, 2µs -> 1,
		// 3µs -> 2, 1ms -> 10 — exactly 2^i µs stays in bucket i, since
		// Prometheus le bounds are inclusive.
		b = bits.Len64(uint64(us) - 1)
	}
	if b > HistogramBuckets {
		b = HistogramBuckets
	}
	h.counts[b].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// HistogramData is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the Prometheus exposition cumulates
// them at render time.
type HistogramData struct {
	Counts [HistogramBuckets + 1]uint64
	SumNS  int64
	N      uint64
}

// Snapshot copies the current histogram state.
func (h *Histogram) Snapshot() HistogramData {
	var d HistogramData
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	d.SumNS = h.sumNS.Load()
	d.N = h.n.Load()
	return d
}

// Mean returns the mean observation in microseconds (0 when empty).
func (d HistogramData) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return float64(d.SumNS) / 1e3 / float64(d.N)
}

// BucketUpperBoundsUS returns the bucket upper bounds in microseconds:
// 1, 2, 4, ..., 2^19, +Inf. The final bound is genuinely +Inf — the
// overflow bucket has no finite upper edge (JSON surfaces encode it as
// the string "+Inf", Prometheus as le="+Inf").
func BucketUpperBoundsUS() []float64 {
	out := make([]float64, HistogramBuckets+1)
	for i := 0; i < HistogramBuckets; i++ {
		out[i] = float64(uint64(1) << uint(i))
	}
	out[HistogramBuckets] = math.Inf(1)
	return out
}

// BucketBoundSeconds returns bucket i's upper bound in seconds (+Inf
// for the overflow bucket) — the le value of the Prometheus
// exposition.
func BucketBoundSeconds(i int) float64 {
	if i >= HistogramBuckets {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) / 1e6
}
