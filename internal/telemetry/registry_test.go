package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.", Labels{"kind": "read"})
	c.Add(3)
	c.Inc()
	g := r.Gauge("test_depth", "Depth.", nil)
	g.Set(7)
	g.Add(-2)
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		`test_ops_total{kind="read"} 4` + "\n",
		"# TYPE test_depth gauge\n",
		"test_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if c.Value() != 4 {
		t.Errorf("counter value = %v, want 4", c.Value())
	}
	c.Add(-5) // counters never go down
	if c.Value() != 4 {
		t.Errorf("counter accepted negative delta: %v", c.Value())
	}
}

// TestHelpTypePairing asserts every family is announced exactly once:
// one HELP line and one TYPE line, HELP first, before any of its
// samples — the format contract scrapers depend on.
func TestHelpTypePairing(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", Labels{"x": "1"}).Inc()
	r.Counter("a_total", "A.", Labels{"x": "2"}).Inc()
	r.Gauge("b", "B.", nil).Set(1)
	r.Histogram("c_seconds", "C.", nil).Observe(time.Millisecond)
	out := render(t, r)

	seenHelp := map[string]int{}
	seenType := map[string]int{}
	sampleSeen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name := strings.Fields(rest)[0]
			seenHelp[name]++
			if sampleSeen[name] {
				t.Errorf("HELP for %s after its samples", name)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name := strings.Fields(rest)[0]
			seenType[name]++
			if seenHelp[name] == 0 {
				t.Errorf("TYPE for %s before HELP", name)
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		name = strings.TrimSuffix(name, "_bucket")
		name = strings.TrimSuffix(name, "_sum")
		name = strings.TrimSuffix(name, "_count")
		sampleSeen[name] = true
		if seenType[name] != 1 {
			t.Errorf("sample %q not preceded by exactly one TYPE (%d)", line, seenType[name])
		}
	}
	for _, name := range []string{"a_total", "b", "c_seconds"} {
		if seenHelp[name] != 1 || seenType[name] != 1 {
			t.Errorf("family %s: HELP x%d TYPE x%d, want 1 and 1", name, seenHelp[name], seenType[name])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Escapes.", Labels{"path": "a\\b\"c\nd"}).Inc()
	out := render(t, r)
	want := `esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series %q missing in:\n%s", want, out)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("h", "line one\nline two \\ done", nil).Set(1)
	out := render(t, r)
	if !strings.Contains(out, `# HELP h line one\nline two \\ done`) {
		t.Errorf("HELP escaping wrong in:\n%s", out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", Labels{"stage": "execute"})
	h.Observe(1 * time.Microsecond)   // boundary: le=1µs is inclusive -> bucket 0
	h.Observe(3 * time.Microsecond)   // (2,4]µs -> bucket 2
	h.Observe(100 * time.Millisecond) // 1e5 µs -> bucket 17
	h.Observe(time.Hour)              // overflow
	out := render(t, r)

	// Cumulative buckets: the +Inf bucket equals _count.
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf",stage="execute"} 4`) &&
		!strings.Contains(out, `lat_seconds_bucket{stage="execute",le="+Inf"} 4`) {
		t.Errorf("+Inf bucket missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_count{stage="execute"} 4`) {
		t.Errorf("_count missing:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_sum{") {
		t.Errorf("_sum missing:\n%s", out)
	}
	// Cumulative monotonicity across rendered buckets.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
	if last != 4 {
		t.Errorf("final cumulative bucket = %d, want 4", last)
	}
}

// TestHistogramBoundaryInclusive pins the le semantics: an observation
// of exactly 2^i µs belongs to bucket i (Prometheus upper bounds are
// inclusive), and the next-larger duration starts bucket i+1.
func TestHistogramBoundaryInclusive(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond)                     // sub-µs (truncates to 0µs) -> bucket 0
	h.Observe(1 * time.Microsecond)                      // exactly 2^0 µs -> bucket 0
	h.Observe(2 * time.Microsecond)                      // exactly 2^1 µs -> bucket 1
	h.Observe(3 * time.Microsecond)                      // (2,4]µs -> bucket 2
	h.Observe(4 * time.Microsecond)                      // exactly 2^2 µs -> bucket 2
	h.Observe(5 * time.Microsecond)                      // (4,8]µs -> bucket 3
	h.Observe(time.Duration(1<<19) * time.Microsecond)   // exactly the largest finite bound
	h.Observe(time.Duration(1<<19+1) * time.Microsecond) // one past it -> overflow
	d := h.Snapshot()
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 1, HistogramBuckets - 1: 1, HistogramBuckets: 1}
	for i, c := range d.Counts {
		if c != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, c, want[i])
		}
	}
}

func TestBucketBounds(t *testing.T) {
	bounds := BucketUpperBoundsUS()
	if len(bounds) != HistogramBuckets+1 {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), HistogramBuckets+1)
	}
	if bounds[0] != 1 {
		t.Errorf("bounds[0] = %v, want 1", bounds[0])
	}
	if !math.IsInf(bounds[HistogramBuckets], 1) {
		t.Errorf("final bound = %v, want +Inf", bounds[HistogramBuckets])
	}
	for i := 1; i < HistogramBuckets; i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Errorf("bounds[%d] = %v, want %v", i, bounds[i], 2*bounds[i-1])
		}
	}
	if !math.IsInf(BucketBoundSeconds(HistogramBuckets), 1) {
		t.Errorf("BucketBoundSeconds(overflow) = %v, want +Inf", BucketBoundSeconds(HistogramBuckets))
	}
	if got, want := BucketBoundSeconds(0), 1e-6; math.Abs(got-want) > 1e-12 {
		t.Errorf("BucketBoundSeconds(0) = %v, want %v", got, want)
	}
}

// TestMonotonicAcrossScrapes differentiates two scrapes: counter series
// must never decrease between them, and the histogram count must grow
// with observations.
func TestMonotonicAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "Mono.", nil)
	var backing float64
	r.CounterFunc("cb_total", "Callback.", nil, func() float64 { return backing })
	h := r.Histogram("mono_seconds", "Mono latency.", nil)

	parse := func(out, name string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				fmt.Sscanf(line[len(name)+1:], "%g", &v)
				return v
			}
		}
		t.Fatalf("series %s missing in:\n%s", name, out)
		return 0
	}

	c.Add(2)
	backing = 5
	h.Observe(time.Millisecond)
	out1 := render(t, r)
	c.Add(3)
	backing = 9
	h.Observe(time.Millisecond)
	out2 := render(t, r)

	for _, name := range []string{"mono_total", "cb_total", "mono_seconds_count"} {
		v1, v2 := parse(out1, name), parse(out2, name)
		if v2 < v1 {
			t.Errorf("%s decreased across scrapes: %v -> %v", name, v1, v2)
		}
	}
	if parse(out2, "mono_total") != 5 || parse(out2, "cb_total") != 9 {
		t.Errorf("unexpected counter values in second scrape:\n%s", out2)
	}
}

// TestConcurrentObserveScrape exercises the registry under -race:
// writers hammer counters, gauges, and histograms (including lazy
// series creation) while readers scrape.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("race_total", "R.", Labels{"w": fmt.Sprint(w)}).Inc()
				r.Gauge("race_gauge", "R.", nil).Set(float64(i))
				r.Histogram("race_seconds", "R.", Labels{"stage": fmt.Sprint(i % 3)}).Observe(time.Microsecond * time.Duration(i%100+1))
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestCallbackReplacedOnReregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("cb", "C.", nil, func() float64 { return 1 })
	r.GaugeFunc("cb", "C.", nil, func() float64 { return 2 })
	if out := render(t, r); !strings.Contains(out, "cb 2\n") {
		t.Errorf("re-registered callback not replaced:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("k_total", "K.", nil)
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as gauge did not panic")
		}
	}()
	r.Gauge("k_total", "K.", nil)
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "H.", nil).Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	resp2, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 405 {
		t.Errorf("POST /metrics = %d, want 405", resp2.StatusCode)
	}
}

func TestTrace(t *testing.T) {
	tr := &Trace{}
	tr.Add(StageQueueWait, 2*time.Millisecond)
	tr.Add(StageExecute, 5*time.Millisecond)
	tr.Add(StageSample, 0)             // dropped
	tr.Add(StageReadout, -time.Second) // dropped
	if len(tr.Spans) != 2 {
		t.Fatalf("len(spans) = %d, want 2", len(tr.Spans))
	}
	if tr.Sum() != 7*time.Millisecond {
		t.Errorf("sum = %v, want 7ms", tr.Sum())
	}
	cl := tr.Clone()
	cl.Add(StageSample, time.Millisecond)
	if len(tr.Spans) != 2 || len(cl.Spans) != 3 {
		t.Errorf("clone not independent: %d vs %d spans", len(tr.Spans), len(cl.Spans))
	}
	var nilTrace *Trace
	if nilTrace.Sum() != 0 || nilTrace.Clone() != nil {
		t.Error("nil trace helpers not nil-safe")
	}
	other := &Trace{}
	other.Append(tr)
	other.Append(nil)
	if other.Sum() != tr.Sum() {
		t.Errorf("append sum = %v, want %v", other.Sum(), tr.Sum())
	}
}
