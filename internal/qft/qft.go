// Package qft generates Quantum Fourier Transform circuits and kernels
// per Appendix D.2 of the paper: a Hadamard on each qubit interleaved
// with controlled arbitrary rotations cr1(λ) (Eq. 9) between each
// qubit i and all higher qubits j, with angles decreasing as
// 2π/2^(j-i+1) — O(n²) gates. The kernel generator exposes the
// paper's tuning hooks: gate fusion (= 5) and pruning of negligible
// rotation angles.
package qft

import (
	"fmt"
	"math"

	"qgear/internal/circuit"
	"qgear/internal/kernel"
)

// Circuit returns the n-qubit QFT as an object-based circuit. With
// reverse set, trailing swaps put the output in natural bit order (the
// paper's "QFT circuit reverse activation" pipeline flag).
func Circuit(n int, reverse bool) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("qft: need at least 1 qubit, have %d", n)
	}
	c := circuit.New(n, 0)
	c.Name = fmt.Sprintf("qft_%dq", n)
	for j := n - 1; j >= 0; j-- {
		c.H(j)
		for k := j - 1; k >= 0; k-- {
			// Angle 2π/2^(j-k+1) between qubits k and j.
			c.CP(2*math.Pi/math.Exp2(float64(j-k+1)), k, j)
		}
	}
	if reverse {
		for i := 0; i < n/2; i++ {
			c.SWAP(i, n-1-i)
		}
	}
	return c, nil
}

// GateCount returns the primitive gate count of the n-qubit QFT
// without the reversal swaps: n Hadamards + n(n-1)/2 controlled
// rotations.
func GateCount(n int) int { return n + n*(n-1)/2 }

// Kernel builds the QFT directly as a CUDA-Q-style kernel with the
// paper's default tuning (gate fusion = 5); PruneAngle > 0 drops the
// deep, negligible cr1 rotations, trading fidelity for speed exactly
// as Appendix D.2 describes.
func Kernel(n int, reverse bool, opts kernel.Options) (*kernel.Kernel, kernel.Stats, error) {
	c, err := Circuit(n, reverse)
	if err != nil {
		return nil, kernel.Stats{}, err
	}
	return kernel.FromCircuit(c, opts)
}

// DefaultKernelOptions is the Appendix D.2 configuration.
func DefaultKernelOptions() kernel.Options {
	return kernel.Options{FusionWindow: 5}
}

// Inverse returns the inverse QFT circuit.
func Inverse(n int, reverse bool) (*circuit.Circuit, error) {
	c, err := Circuit(n, reverse)
	if err != nil {
		return nil, err
	}
	inv, err := c.Inverse()
	if err != nil {
		return nil, err
	}
	inv.Name = fmt.Sprintf("qft_inv_%dq", n)
	return inv, nil
}
