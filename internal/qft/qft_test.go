package qft

import (
	"math"
	"math/cmplx"
	"testing"

	"qgear/internal/kernel"
	"qgear/internal/statevec"
)

// runCircuitState executes the QFT circuit on |basis>.
func runState(t *testing.T, n int, basis uint64, reverse bool) *statevec.State {
	t.Helper()
	c, err := Circuit(n, reverse)
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.MustNew(n, 1)
	if err := s.PrepareBasis(basis); err != nil {
		t.Fatal(err)
	}
	for _, op := range c.Ops {
		s.ApplyGate(op.Gate, op.Qubits, op.Params)
	}
	return s
}

func TestQFTMatchesDFTMatrix(t *testing.T) {
	// QFT|x> = (1/√N) Σ_k e^{2πi·xk/N}|k> in natural bit order with
	// the reversal swaps enabled.
	for _, n := range []int{1, 2, 3, 4} {
		N := 1 << uint(n)
		for x := 0; x < N; x++ {
			s := runState(t, n, uint64(x), true)
			for k := 0; k < N; k++ {
				want := cmplx.Exp(complex(0, 2*math.Pi*float64(x)*float64(k)/float64(N))) / complex(math.Sqrt(float64(N)), 0)
				if cmplx.Abs(s.Amp(uint64(k))-want) > 1e-10 {
					t.Fatalf("n=%d x=%d k=%d: amp %v, want %v", n, x, k, s.Amp(uint64(k)), want)
				}
			}
		}
	}
}

func TestQFTOnZeroIsUniform(t *testing.T) {
	s := runState(t, 5, 0, false)
	w := 1 / math.Sqrt(32)
	for i := 0; i < 32; i++ {
		if cmplx.Abs(s.Amp(uint64(i))-complex(w, 0)) > 1e-12 {
			t.Fatalf("QFT|0> not uniform at %d", i)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	n := 5
	fwd, err := Circuit(n, true)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(n, true)
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.MustNew(n, 1)
	if err := s.PrepareBasis(19); err != nil {
		t.Fatal(err)
	}
	for _, op := range fwd.Ops {
		s.ApplyGate(op.Gate, op.Qubits, op.Params)
	}
	for _, op := range inv.Ops {
		s.ApplyGate(op.Gate, op.Qubits, op.Params)
	}
	if cmplx.Abs(s.Amp(19)-1) > 1e-10 {
		t.Fatalf("QFT·QFT† != I: amp(19) = %v", s.Amp(19))
	}
}

func TestGateCount(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		c, err := Circuit(n, false)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(c.Ops); got != GateCount(n) {
			t.Fatalf("n=%d: %d ops, want %d", n, got, GateCount(n))
		}
	}
	// Table 1's QFT row: "max gate depth 528" at the top of the 16–33
	// qubit sweep; GateCount(32) = 32 + 496 = 528.
	if GateCount(32) != 528 {
		t.Fatalf("GateCount(32) = %d, want 528 (Table 1)", GateCount(32))
	}
}

func TestKernelWithFusionMatchesCircuit(t *testing.T) {
	n := 6
	k, st, err := Kernel(n, true, DefaultKernelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.FusedGroups == 0 {
		t.Fatal("fusion=5 produced no fused groups")
	}
	plain := runState(t, n, 11, true)
	s := statevec.MustNew(n, 1)
	if err := s.PrepareBasis(11); err != nil {
		t.Fatal(err)
	}
	if err := kernel.Execute(k, s); err != nil {
		t.Fatal(err)
	}
	f, err := s.Fidelity(plain)
	if err != nil {
		t.Fatal(err)
	}
	if f < 1-1e-10 {
		t.Fatalf("fused QFT kernel fidelity %g", f)
	}
}

func TestPruningTradesFidelityForGates(t *testing.T) {
	// Deep QFT rotations shrink as 2π/2^(j-i+1); pruning at 1e-2 drops
	// the long tail with tiny fidelity loss.
	n := 12
	full, _, err := Kernel(n, false, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, st, err := Kernel(n, false, kernel.Options{PruneAngle: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if st.PrunedGates == 0 {
		t.Fatal("nothing pruned")
	}
	if pruned.NumGates() >= full.NumGates() {
		t.Fatal("pruning did not reduce gate count")
	}
	a := statevec.MustNew(n, 1)
	b := statevec.MustNew(n, 1)
	if err := a.PrepareBasis(1234); err != nil {
		t.Fatal(err)
	}
	if err := b.PrepareBasis(1234); err != nil {
		t.Fatal(err)
	}
	if err := kernel.Execute(full, a); err != nil {
		t.Fatal(err)
	}
	if err := kernel.Execute(pruned, b); err != nil {
		t.Fatal(err)
	}
	f, err := a.Fidelity(b)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.999 {
		t.Fatalf("pruning at 1e-2 lost too much fidelity: %g", f)
	}
}

func TestBadSizes(t *testing.T) {
	if _, err := Circuit(0, false); err == nil {
		t.Fatal("0-qubit QFT accepted")
	}
	if _, _, err := Kernel(-1, false, kernel.Options{}); err == nil {
		t.Fatal("negative QFT accepted")
	}
	if _, err := Inverse(0, false); err == nil {
		t.Fatal("0-qubit inverse accepted")
	}
}
